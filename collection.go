package skybench

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"skybench/internal/planner"
	"skybench/internal/point"
	"skybench/internal/shard"
)

// DefaultCacheCapacity is the per-collection result-cache size used
// when CollectionOptions.CacheCapacity is zero.
const DefaultCacheCapacity = 64

// CollectionOptions configures a collection at Attach time.
type CollectionOptions struct {
	// Shards splits the collection into that many contiguous partitions
	// (≤ 1 keeps it unsharded). Queries fan out one Engine run per
	// shard, concurrently, and the per-shard results are merged into
	// the exact global result — identical, as a set, to the unsharded
	// answer, with exact dominator counts for k-skyband queries (the
	// soundness argument is in DESIGN.md §10). Shards larger than the
	// row count are clamped so every shard is non-empty.
	Shards int
	// CacheCapacity bounds the collection's result cache: 0 selects
	// DefaultCacheCapacity, negative disables caching entirely.
	CacheCapacity int
	// DefaultTimeout overrides the Store's StoreOptions.DefaultTimeout
	// for this collection: 0 inherits the Store's, negative disables the
	// default deadline entirely. A deadline already on the query's
	// context always wins.
	DefaultTimeout time.Duration
	// CloseOnDrop transfers ownership of the backing StreamSource to the
	// Store: dropping the collection (or closing the Store) calls the
	// source's Close method, if it has one. This is how durable stream
	// collections get their WAL cleanly closed at Store shutdown.
	CloseOnDrop bool
}

// StreamSource is the live backing a Collection accepts in place of an
// immutable Dataset — the read-side contract stream.SkylineIndex (and
// anything shaped like it) satisfies. A source owns a mutating set of
// d-dimensional points and can materialize it consistently.
type StreamSource interface {
	// D returns the dimensionality of the source's points.
	D() int
	// LiveEpoch returns the membership epoch of the live point set: a
	// counter that advances on every mutation that changes which points
	// are live (every insert and every successful delete). It must be
	// safe to call concurrently with mutations and must not block on
	// the source's write lock, so cached-result revalidation stays
	// cheap.
	LiveEpoch() uint64
	// LiveSnapshot atomically materializes the live set: n×D original
	// (un-staged) coordinates in row-major vals, per-row stable IDs,
	// and the LiveEpoch value the materialization corresponds to. The
	// returned slices are caller-owned. Row order must be deterministic
	// for an unchanged epoch.
	LiveSnapshot() (vals []float64, ids []uint64, epoch uint64)
}

// colSnapshot freezes one membership epoch of a collection: the rows as
// an immutable Dataset, the per-shard partitions aliasing it, and (for
// stream-backed collections) the stable ID of each row. Static
// collections have exactly one snapshot for their whole life.
type colSnapshot struct {
	epoch uint64
	ds    *Dataset
	ids   []uint64 // stream-backed only; nil for static collections
	parts []*Dataset
	offs  []int // global row offset of each part
}

// partition splits the snapshot into p contiguous shard datasets
// aliasing the snapshot's storage (no copying).
func (s *colSnapshot) partition(p int) {
	ranges := shard.Split(s.ds.n, p)
	if len(ranges) <= 1 {
		return
	}
	s.parts = make([]*Dataset, len(ranges))
	s.offs = make([]int, len(ranges))
	d := s.ds.d
	for i, r := range ranges {
		s.parts[i] = &Dataset{vals: s.ds.vals[r.Lo*d : r.Hi*d : r.Hi*d], n: r.Len(), d: d}
		s.offs[i] = r.Lo
	}
}

// Collection is one named queryable point set inside a Store: an
// immutable Dataset or a live StreamSource behind a single query
// surface, optionally sharded, with epoch-keyed result caching.
//
// Run and Submit are safe for concurrent use by any number of
// goroutines. Results are *QueryResult handles that may be shared by
// the cache across callers: they are immutable — never write to their
// Indices or Counts; use Result.Clone for a mutable copy.
type Collection struct {
	name   string
	eng    *Engine
	shards int

	owner       *Store        // nil for collections outside a Store
	timeout     time.Duration // default per-query deadline (0 = none)
	closeOnDrop bool          // Drop/Close also closes the source

	src    StreamSource  // nil for static collections
	static *colSnapshot  // non-nil for static collections
	remote RemoteBackend // non-nil for cluster-backed collections

	snapMu sync.Mutex                  // serializes stream materialization
	snap   atomic.Pointer[colSnapshot] // current stream snapshot

	cmu      sync.Mutex
	entries  map[fingerprint]cacheEntry
	stale    map[fingerprint]cacheEntry // last result per fingerprint, any epoch
	cacheCap int                        // ≤ 0 disables caching
	hits     atomic.Uint64
	misses   atomic.Uint64

	costs costTracker // rolling per-algorithm execution costs

	planMu sync.Mutex       // guards plan creation and re-profiling
	plan   *planner.Planner // adaptive planner; nil until first needed

	inflight atomic.Int64 // queries currently executing via Run/Submit

	dropped atomic.Bool
	srcOnce sync.Once
}

// closeSource closes the backing StreamSource or RemoteBackend if the
// collection owns it (CollectionOptions.CloseOnDrop) and it is
// closeable. Idempotent.
func (c *Collection) closeSource() {
	if !c.closeOnDrop || (c.src == nil && c.remote == nil) {
		return
	}
	c.srcOnce.Do(func() {
		if cl, ok := c.src.(interface{ Close() }); ok {
			cl.Close()
		}
		if cl, ok := c.remote.(interface{ Close() }); ok {
			cl.Close()
		}
	})
}

type cacheEntry struct {
	epoch uint64
	r     *QueryResult
}

// Name returns the name the collection is attached under.
func (c *Collection) Name() string { return c.name }

// Shards returns the partition count queries fan out over (1 =
// unsharded).
func (c *Collection) Shards() int { return c.shards }

// StreamBacked reports whether the collection is backed by a live
// StreamSource rather than an immutable Dataset.
func (c *Collection) StreamBacked() bool { return c.src != nil }

// Epoch returns the collection's current membership epoch: always 0
// for a static collection, the backing source's LiveEpoch for a
// stream-backed one, the workers' last agreed epoch for a
// cluster-backed one. Cached results are keyed by it.
func (c *Collection) Epoch() uint64 {
	if c.remote != nil {
		return c.remote.Epoch()
	}
	if c.src == nil {
		return 0
	}
	return c.src.LiveEpoch()
}

// N returns the current number of points (taking a fresh stream
// snapshot if the backing mutated since the last query).
func (c *Collection) N() (int, error) {
	if c.remote != nil {
		return c.remote.Len(), nil
	}
	snap, err := c.snapshot()
	if err != nil {
		return 0, err
	}
	return snap.ds.n, nil
}

// D returns the dimensionality of the collection's points.
func (c *Collection) D() int {
	if c.remote != nil {
		return c.remote.D()
	}
	if c.src != nil {
		return c.src.D()
	}
	return c.static.ds.d
}

// snapshot returns the collection's current frozen membership,
// materializing the stream backing only when its epoch advanced. The
// fast path (static, or stream with unchanged epoch) allocates nothing.
func (c *Collection) snapshot() (*colSnapshot, error) {
	if c.static != nil {
		return c.static, nil
	}
	if s := c.snap.Load(); s != nil && s.epoch == c.src.LiveEpoch() {
		return s, nil
	}
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	if s := c.snap.Load(); s != nil && s.epoch == c.src.LiveEpoch() {
		return s, nil
	}
	vals, ids, epoch := c.src.LiveSnapshot()
	n := len(ids)
	ds, err := DatasetFromFlat(vals, n, c.src.D())
	if err != nil {
		return nil, err
	}
	s := &colSnapshot{epoch: epoch, ds: ds, ids: ids}
	s.partition(c.shards)
	c.snap.Store(s)
	return s, nil
}

// snapRes carries a materialized snapshot across the goroutine boundary
// in snapshotCtx.
type snapRes struct {
	s   *colSnapshot
	err error
}

// snapshotCtx is snapshot with deadline awareness: materializing a
// stream snapshot blocks on the source's write lock (a rebuilding
// stream can hold it for a while), so when ctx can expire the wait
// happens on a side goroutine and the query abandons it on time. The
// abandoned materialization still completes in the background and is
// cached, so the next query finds it warm. The fast paths — static
// collection, unchanged epoch, or an un-cancelable context — stay
// inline and allocation-free.
func (c *Collection) snapshotCtx(ctx context.Context) (*colSnapshot, error) {
	if c.static != nil {
		return c.static, nil
	}
	if s := c.snap.Load(); s != nil && s.epoch == c.src.LiveEpoch() {
		return s, nil
	}
	if ctx.Done() == nil {
		return c.snapshot()
	}
	ch := make(chan snapRes, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- snapRes{err: panicErr(r, debug.Stack())}
			}
		}()
		s, err := c.snapshot()
		ch <- snapRes{s: s, err: err}
	}()
	select {
	case r := <-ch:
		return r.s, r.err
	case <-ctx.Done():
		return nil, canceledErr(ctx.Err())
	}
}

// fingerprint is the canonical cache key of a query: every field that
// can change the result, canonicalized (k ≤ 1 → 1, all-Min preference
// vectors → empty) so equivalent queries share an entry. Threads,
// ReuseIndices, Trace, and Progressive never enter the key — the first
// three don't change the result (Trace only changes how it is
// delivered), and progressive queries bypass the cache because their
// callbacks must fire on every Run.
type fingerprint struct {
	algo   Algorithm
	k      int
	alpha  int
	beta   int
	pivot  PivotStrategy
	seed   int64
	abl    Ablation
	nprefs int8
	// fan is the fan-out when it differs from the collection's default
	// (zero otherwise): the planner may downshift an Auto query to an
	// unsharded run, whose result order (the algorithm's natural order,
	// not ascending row order) must never be served to a query that ran
	// at the default fan-out.
	fan   int
	prefs [point.MaxDims]int8
}

// queryFingerprint canonicalizes q into a cache key for a d-dimensional
// collection, reporting false for queries that must not be cached:
// progressive delivery, and invalid shapes the execution path rejects —
// a wrong-length preference vector in particular must not be cacheable,
// or its all-Min spelling would collapse into the valid empty-prefs key
// and serve a cached success where a cold Run errors.
func queryFingerprint(q *Query, d int) (fingerprint, bool) {
	var fp fingerprint
	if q.Progressive != nil || q.SkybandK < 0 || len(q.Prefs) > point.MaxDims {
		return fp, false
	}
	// Auto never reaches the cache unresolved — run() rewrites the query
	// to the planned concrete algorithm before fingerprinting, so cached
	// entries are shared with explicit runs of the same plan. Seeing
	// Auto here (the stale-fallback path) means there is no resolved
	// plan to key on.
	if q.Algorithm == Auto {
		return fp, false
	}
	if len(q.Prefs) != 0 && len(q.Prefs) != d {
		return fp, false
	}
	fp.algo = q.Algorithm
	fp.k = q.SkybandK
	if fp.k < 1 {
		fp.k = 1
	}
	if q.Alpha > 0 {
		fp.alpha = q.Alpha
	}
	if q.Beta > 0 {
		fp.beta = q.Beta
	}
	fp.pivot = q.Pivot
	fp.seed = q.Seed
	fp.abl = q.Ablation
	for i, p := range q.Prefs {
		fp.prefs[i] = int8(p)
		if p != Min {
			fp.nprefs = int8(len(q.Prefs))
		}
	}
	if fp.nprefs == 0 {
		// All-Min (or empty) preference vectors are the same query;
		// clear the scratch so the two spellings share one key.
		fp.prefs = [point.MaxDims]int8{}
	}
	return fp, true
}

// QueryResult is the outcome of a Collection query: the Result plus the
// membership epoch it answers for and accessors resolving result
// positions back to rows and stream IDs.
//
// Aliasing rule: a QueryResult may be shared by the collection's cache
// across any number of callers — it is immutable. Read Indices, Counts,
// and Stats freely from any goroutine; never write to them. Clone (on
// the embedded Result) detaches mutable copies.
type QueryResult struct {
	Result
	// Epoch is the collection membership epoch the result was computed
	// at; it matches Collection.Epoch() for as long as the result is
	// current.
	Epoch uint64
	// Stale marks a result served by graceful degradation: the query
	// opted in with Query.AllowStale and the collection answered from
	// the last cached result for this query shape — possibly computed at
	// an earlier epoch — because computing fresh failed with overload or
	// a missed deadline.
	Stale bool
	// Partial marks a degraded cluster answer: one or more workers
	// failed and the collection's partial policy merged the surviving
	// ones, so the rows placed on the failed workers are missing.
	// Always false for local collections and under the fail-fast
	// policy, where a worker failure is an error instead.
	Partial bool
	// Plan is the adaptive planner's decision for an Algorithm: Auto
	// query (also mirrored into Trace.Planner when the query was
	// traced); nil for queries that named their algorithm. It is set on
	// cache hits too — the decision was made even though the answer was
	// already known.
	Plan *PlannerTrace

	snap *colSnapshot // local collections: frozen snapshot rows resolve against
	rows [][]float64  // remote results: per-result-point coordinates
	rids []uint64     // remote results: per-result-point stream IDs (optional)
}

// Len returns the number of result points.
func (r *QueryResult) Len() int { return len(r.Indices) }

// Row returns the coordinates of the p-th result point (original,
// un-staged values, whatever the query's preferences). The slice
// aliases the result's frozen snapshot — or, for cluster-backed
// collections, the coordinates shipped back with the worker responses:
// read-only, valid forever either way.
func (r *QueryResult) Row(p int) []float64 {
	if r.snap == nil {
		return r.rows[p]
	}
	return r.snap.ds.Row(r.Indices[p])
}

// ID returns the stable stream ID of the p-th result point of a
// stream-backed collection (it matches stream.ID). For static
// collections there are no IDs and ok is false — Indices themselves
// are the stable handle there.
func (r *QueryResult) ID(p int) (id uint64, ok bool) {
	if r.snap == nil {
		if r.rids == nil {
			return 0, false
		}
		return r.rids[p], true
	}
	if r.snap.ids == nil {
		return 0, false
	}
	return r.snap.ids[r.Indices[p]], true
}

// Run answers one query over the collection's current membership.
// Identical queries against an unchanged collection are served from the
// epoch-keyed cache without recomputing (and without allocating); a
// membership change invalidates automatically because the stale epoch
// no longer matches. See the immutability rule on QueryResult.
//
// For sharded collections the query fans out per shard over the
// Engine and the per-shard results are merged exactly; Result.Indices
// come back in ascending row order. Progressive delivery needs an
// unsharded collection (batches from concurrent shards would interleave
// meaninglessly) and bypasses the cache.
func (c *Collection) Run(ctx context.Context, q Query) (*QueryResult, error) {
	c.inflight.Add(1)
	defer c.inflight.Add(-1)
	// Apply the collection's default deadline when the caller's context
	// carries none; an explicit caller deadline always wins.
	if c.timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.timeout)
			defer cancel()
		}
	}
	r, err := c.run(ctx, q)
	if err != nil {
		return c.staleFallback(&q, err)
	}
	return r, nil
}

// run is Run without the deadline and graceful-degradation wrappers.
func (c *Collection) run(ctx context.Context, q Query) (*QueryResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, canceledErr(err)
	}
	if c.dropped.Load() {
		return nil, fmt.Errorf("%w: collection %q", ErrClosed, c.name)
	}
	if c.remote != nil {
		return c.runRemote(ctx, q)
	}
	snap, err := c.snapshotCtx(ctx)
	if err != nil {
		return nil, err
	}
	// Resolve Auto before fingerprinting: the cache is keyed by the
	// concrete plan, so Auto queries share entries with explicit runs of
	// the same algorithm, and a later hit is attributed to the plan that
	// computed it.
	fanout := len(snap.parts)
	if fanout < 1 {
		fanout = 1
	}
	var planTrace *PlannerTrace
	if q.Algorithm == Auto {
		fanout, planTrace = c.decide(snap, &q)
	}
	fp, cacheable := fingerprint{}, false
	if c.cacheCap > 0 {
		fp, cacheable = queryFingerprint(&q, snap.ds.d)
		if len(snap.parts) > 1 && fanout <= 1 {
			// A planner-downshifted unsharded run returns the algorithm's
			// natural order, not the sharded ascending order — key it
			// separately (see fingerprint.fan).
			fp.fan = 1
		}
	}
	if cacheable {
		if r := c.lookup(fp, snap.epoch); r != nil {
			if q.Trace {
				r = r.withCacheHitTrace(&q)
				if planTrace != nil {
					r.Plan = planTrace
					r.Result.Trace.Planner = planTrace
				}
			} else if planTrace != nil {
				cp := *r
				cp.Plan = planTrace
				r = &cp
			}
			return r, nil
		}
	}
	res, err := c.execute(ctx, snap, q, fanout)
	if err != nil {
		return nil, err
	}
	c.costs.record(q.Algorithm, res.Stats.Elapsed, res.Stats.DominanceTests)
	if planTrace != nil {
		c.observePlan(planTrace, res.Stats.Elapsed)
	}
	if res.Trace != nil {
		res.Trace.Epoch = snap.epoch
		res.Trace.Planner = planTrace
	}
	r := &QueryResult{Result: res, Epoch: snap.epoch, Plan: planTrace, snap: snap}
	if cacheable {
		// The cache shares its entries across callers, traced and
		// untraced alike, so the stored copy never carries a trace or a
		// planner decision: both describe the first caller's run, not a
		// later hit.
		cached := r
		if res.Trace != nil || planTrace != nil {
			cp := *r
			cp.Result.Trace = nil
			cp.Plan = nil
			cached = &cp
		}
		c.store(fp, snap.epoch, cached)
	}
	return r, nil
}

// plannerSeed derives a deterministic per-collection seed for the
// planner's ε-greedy coin, so planning decisions replay identically for
// a given collection name and query order.
func plannerSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// plannerFor returns the collection's planner, creating it (profiling
// the snapshot) on first use, and re-profiling when a stream-backed
// collection's size drifted ~4× from the profiled one — skyline
// cardinality extrapolates on n, so a profile taken at 1k rows misprices
// the set at 100k.
func (c *Collection) plannerFor(snap *colSnapshot) *planner.Planner {
	c.planMu.Lock()
	defer c.planMu.Unlock()
	if c.plan == nil {
		prof := planner.ProfileFlat(snap.ds.vals, snap.ds.n, snap.ds.d)
		c.plan = planner.New(prof, planner.Config{Seed: plannerSeed(c.name)})
		return c.plan
	}
	if c.src != nil {
		prof := c.plan.Profile()
		n := snap.ds.n
		if prof.N > 0 && (n >= prof.N*4 || n*4 <= prof.N) {
			c.plan.SetProfile(planner.ProfileFlat(snap.ds.vals, snap.ds.n, snap.ds.d))
		}
	}
	return c.plan
}

// decide resolves an Algorithm: Auto query in place: the planner picks
// the concrete algorithm, the fan-out (possibly overriding the
// configured shard count down to 1), and the α/β tuning — explicit
// caller-set tuning fields always win. It returns the fan-out to
// execute at and the decision trace.
func (c *Collection) decide(snap *colSnapshot, q *Query) (int, *PlannerTrace) {
	pl := c.plannerFor(snap)
	maxShards := 1
	// Progressive delivery needs an unsharded run, so the planner only
	// chooses between unsharded arms for it.
	if len(snap.parts) > 1 && q.Progressive == nil {
		maxShards = len(snap.parts)
	}
	dec := pl.Decide(c.costs.plannerRows(), maxShards)
	q.Algorithm = Hybrid
	if dec.Algorithm == planner.AlgoQFlow {
		q.Algorithm = QFlow
	}
	if q.Alpha <= 0 {
		q.Alpha = dec.Alpha
	}
	if q.Beta <= 0 && !q.Ablation.NoPrefilter {
		if dec.NoPrefilter {
			q.Ablation.NoPrefilter = true
		} else if dec.Beta > 0 {
			q.Beta = dec.Beta
		}
	}
	prof := pl.Profile()
	pt := &PlannerTrace{
		Class:       prof.Class,
		MeanRho:     prof.MeanRho,
		SkylineFrac: prof.SkylineFrac,
		SkylineEst:  prof.SkylineEst,
		SampleN:     prof.SampleN,
		Algorithm:   q.Algorithm.String(),
		Shards:      dec.Shards,
		Alpha:       q.Alpha,
		Beta:        q.Beta,
		NoPrefilter: q.Ablation.NoPrefilter,
		Explore:     dec.Explore,
		Reason:      dec.Reason,
	}
	if len(dec.Candidates) > 0 {
		pt.Candidates = make([]PlannerCandidate, len(dec.Candidates))
		for i, cand := range dec.Candidates {
			pt.Candidates[i] = PlannerCandidate{
				Algorithm: cand.Algorithm,
				Shards:    cand.Shards,
				Predicted: cand.Predicted,
				Source:    cand.Source,
				Samples:   cand.Samples,
			}
		}
	}
	return dec.Shards, pt
}

// observePlan books one executed Auto run's measured latency into the
// planner's arm history.
func (c *Collection) observePlan(pt *PlannerTrace, elapsed time.Duration) {
	c.planMu.Lock()
	pl := c.plan
	c.planMu.Unlock()
	if pl != nil {
		pl.Observe(pt.Algorithm, pt.Shards, elapsed)
	}
}

// withCacheHitTrace wraps a shared cached result in a shallow copy
// carrying a minimal cache-hit trace: the identity of the answer
// (algorithm, epoch, sizes) without work counters — the work happened
// on the query that populated the cache. The shared entry itself is
// never touched, so untraced hits stay allocation-free.
func (r *QueryResult) withCacheHitTrace(q *Query) *QueryResult {
	cp := *r
	cp.Result.Trace = &QueryTrace{
		Algorithm: q.Algorithm.String(),
		SkybandK:  q.SkybandK,
		CacheHit:  true,
		Stale:     r.Stale,
		Epoch:     r.Epoch,
		InputSize: r.Stats.InputSize,
		Output:    len(r.Indices),
	}
	return &cp
}

// staleFallback is graceful degradation: when a query that opted in
// with AllowStale fails because the Store is overloaded or its deadline
// passed (a mid-rebuild stream holding its lock past the deadline looks
// identical from here), serve the last cached result for the same query
// shape — possibly from an earlier epoch — marked Stale. Hard failures
// (bad query, closed collection, panic) never degrade.
func (c *Collection) staleFallback(q *Query, err error) (*QueryResult, error) {
	if !q.AllowStale || c.cacheCap <= 0 {
		return nil, err
	}
	if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrDeadlineExceeded) {
		return nil, err
	}
	fp, ok := queryFingerprint(q, c.D())
	if !ok {
		return nil, err
	}
	c.cmu.Lock()
	e, ok := c.stale[fp]
	c.cmu.Unlock()
	if !ok {
		return nil, err
	}
	// Shallow copy so the Stale mark never taints the shared cached
	// entry (which may still be current and served fresh by lookup).
	r := *e.r
	r.Stale = true
	if q.Trace {
		return r.withCacheHitTrace(q), nil
	}
	return &r, nil
}

// lookup serves a cache hit, or nil on miss/stale. The hit path is
// allocation-free.
func (c *Collection) lookup(fp fingerprint, epoch uint64) *QueryResult {
	c.cmu.Lock()
	e, ok := c.entries[fp]
	c.cmu.Unlock()
	if ok && e.epoch == epoch {
		c.hits.Add(1)
		return e.r
	}
	c.misses.Add(1)
	return nil
}

// store inserts a freshly computed result. Entries at other epochs are
// purged on every insert, not just at capacity: a stale entry can never
// hit again (lookup requires the current epoch) yet pins its epoch's
// whole materialized snapshot — for stream-backed collections that is a
// full copy of the live set. If the cache is still full afterwards an
// arbitrary current-epoch entry is evicted.
func (c *Collection) store(fp fingerprint, epoch uint64, r *QueryResult) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	for k, e := range c.entries {
		if e.epoch != epoch {
			delete(c.entries, k)
		}
	}
	if len(c.entries) >= c.cacheCap {
		for k := range c.entries {
			delete(c.entries, k)
			break
		}
	}
	c.entries[fp] = cacheEntry{epoch: epoch, r: r}
	// The stale side map keeps the latest result per query shape across
	// epochs, feeding AllowStale degradation. It never pins more than
	// cacheCap snapshots.
	if _, ok := c.stale[fp]; !ok && len(c.stale) >= c.cacheCap {
		for k := range c.stale {
			delete(c.stale, k)
			break
		}
	}
	c.stale[fp] = cacheEntry{epoch: epoch, r: r}
}

// CacheStats reports a collection's result-cache counters.
type CacheStats struct {
	// Hits counts queries served from the cache; Misses counts cache
	// lookups that had to compute (stale epochs included).
	Hits, Misses uint64
	// Entries is the current number of cached results.
	Entries int
}

// CacheStats returns the collection's cache counters.
func (c *Collection) CacheStats() CacheStats {
	c.cmu.Lock()
	n := len(c.entries)
	c.cmu.Unlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}

// CollectionStats is a one-call snapshot of a collection's serving
// state — everything an info endpoint or metrics scrape needs, gathered
// together instead of poking N, D, Epoch, CacheStats, and the admission
// counters individually and racing mutations in between.
type CollectionStats struct {
	// Name is the name the collection is attached under.
	Name string
	// N is the current number of points; D their dimensionality.
	N, D int
	// Epoch is the membership epoch (always 0 for static collections).
	Epoch uint64
	// Shards is the partition count queries fan out over (1 = unsharded).
	Shards int
	// StreamBacked reports a live StreamSource backing.
	StreamBacked bool
	// Cache holds the result-cache counters.
	Cache CacheStats
	// Inflight is the number of queries executing on the collection
	// right now (Run and admitted Submits).
	Inflight int64
	// Costs holds the collection's rolling per-algorithm execution
	// costs (count, mean/p50/p99 latency, mean dominance tests) — the
	// planner's input. Sorted by algorithm name; nil before the first
	// executed query.
	Costs []AlgorithmCost
	// Planner holds the adaptive planner's data profile and decision
	// tallies; nil until the first Algorithm: Auto query (or, for static
	// collections, after the eager profile at Attach).
	Planner *PlannerStats
	// Durability holds WAL and checkpoint statistics for collections
	// whose backing source persists itself (a durable
	// stream.SkylineIndex); nil otherwise.
	Durability *DurabilityStats
	// Placement describes the worker placement, health, and fan-out
	// counters of a cluster-backed collection; nil for local ones.
	Placement *PlacementStats
}

// PlannerStats is the observable state of a collection's adaptive
// planner: the attach-time data profile and how its decisions have
// distributed so far.
type PlannerStats struct {
	// Class is the profiled correlation class ("correlated",
	// "independent", "anticorrelated"); MeanSpearman the mean pairwise
	// Spearman rank correlation it derives from.
	Class        string
	MeanSpearman float64
	// SkylineFrac and SkylineEst are the estimated skyline fraction and
	// cardinality of the full set; SampleN the profiled sample size.
	SkylineFrac float64
	SkylineEst  int
	SampleN     int
	// Decisions tallies Auto decisions by chosen plan, sorted for
	// stable rendering.
	Decisions []PlannerDecision
}

// PlannerDecision is one (plan, explore-mode) decision tally.
type PlannerDecision struct {
	Algorithm string
	Shards    int
	Explore   bool
	Count     uint64
}

// DurabilityStats reports the persistence-layer counters of a durable
// collection backing: WAL fsync work, on-disk segment footprint, and
// checkpoint cost. stream.SkylineIndex implements the provider side;
// anything else backing a Collection can too.
type DurabilityStats struct {
	// WALFsyncs counts fsync calls the WAL issued; WALFsyncTime is the
	// total wall-clock time spent inside them.
	WALFsyncs    uint64
	WALFsyncTime time.Duration
	// WALSegments is the current number of on-disk WAL segments.
	WALSegments int
	// Checkpoints counts checkpoints taken; CheckpointTime is the total
	// time spent writing them and LastCheckpoint the duration of the
	// most recent one.
	Checkpoints    uint64
	CheckpointTime time.Duration
	LastCheckpoint time.Duration
}

// durabilityProvider is the optional StreamSource facet a durable
// backing implements to surface persistence counters (ok reports
// whether durability is configured at all).
type durabilityProvider interface {
	DurabilityStats() (DurabilityStats, bool)
}

// Stats returns a consistent snapshot of the collection's serving
// state. For a stream-backed collection whose source can report its
// live count directly (stream.SkylineIndex can) nothing is
// materialized; otherwise N comes from the current frozen snapshot,
// materializing it if the membership epoch advanced.
func (c *Collection) Stats() (CollectionStats, error) {
	st := CollectionStats{
		Name:         c.name,
		D:            c.D(),
		Shards:       c.shards,
		StreamBacked: c.src != nil,
		Cache:        c.CacheStats(),
		Inflight:     c.inflight.Load(),
		Costs:        c.costs.stats(),
	}
	c.planMu.Lock()
	pl := c.plan
	c.planMu.Unlock()
	if pl != nil {
		prof := pl.Profile()
		ps := &PlannerStats{
			Class:        prof.Class,
			MeanSpearman: prof.MeanRho,
			SkylineFrac:  prof.SkylineFrac,
			SkylineEst:   prof.SkylineEst,
			SampleN:      prof.SampleN,
		}
		for _, dc := range pl.DecisionCounts() {
			ps.Decisions = append(ps.Decisions, PlannerDecision{
				Algorithm: dc.Algorithm,
				Shards:    dc.Shards,
				Explore:   dc.Explore,
				Count:     dc.Count,
			})
		}
		st.Planner = ps
	}
	if dp, ok := c.src.(durabilityProvider); ok {
		if ds, ok := dp.DurabilityStats(); ok {
			st.Durability = &ds
		}
	}
	if c.remote != nil {
		pl := c.remote.Placement()
		st.Placement = &pl
	}
	if c.dropped.Load() {
		return st, fmt.Errorf("%w: collection %q", ErrClosed, c.name)
	}
	if c.remote != nil {
		st.N = c.remote.Len()
		st.Epoch = c.remote.Epoch()
		return st, nil
	}
	if c.src == nil {
		st.N = c.static.ds.n
		return st, nil
	}
	if src, ok := c.src.(interface{ Len() int }); ok {
		st.Epoch = c.src.LiveEpoch()
		st.N = src.Len()
		return st, nil
	}
	snap, err := c.snapshot()
	if err != nil {
		return st, err
	}
	st.N = snap.ds.n
	st.Epoch = snap.epoch
	return st, nil
}

// execute computes a query over one frozen snapshot: directly for
// unsharded collections (or when the planner downshifted fanout to 1),
// fan-out + exact merge for sharded ones.
func (c *Collection) execute(ctx context.Context, snap *colSnapshot, q Query, fanout int) (Result, error) {
	if len(snap.parts) <= 1 || fanout <= 1 {
		q.ReuseIndices = false // results may outlive any engine context
		return c.eng.exec(ctx, snap.ds, q)
	}
	if q.Progressive != nil {
		return Result{}, fmt.Errorf("%w: progressive delivery needs an unsharded collection", ErrBadQuery)
	}
	start := time.Now()

	// Fan out one engine run per shard; each leases its own computation
	// context from the engine's free-list. Shard runs never build their
	// own traces — the composite trace below is assembled from their
	// always-on stats.
	q.ReuseIndices = false
	traced := q.Trace
	q.Trace = false
	results := make([]Result, len(snap.parts))
	errs := make([]error, len(snap.parts))
	var wg sync.WaitGroup
	for i := range snap.parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// exec contains panics from inside the engine; this recover
			// is the belt over anything outside it, so a poisoned shard
			// can only ever fail its own query — never leak a panic onto
			// an unsupervised goroutine and crash the process.
			defer func() {
				if r := recover(); r != nil {
					errs[i] = panicErr(r, debug.Stack())
				}
			}()
			results[i], errs[i] = c.eng.exec(ctx, snap.parts[i], q)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	// Candidates: the union of per-shard results, as global row indices.
	k := q.SkybandK
	if k < 1 {
		k = 1
	}
	total := 0
	var dts uint64
	for _, r := range results {
		total += len(r.Indices)
		dts += r.Stats.DominanceTests
	}
	cand := make([]int, 0, total)
	for si, r := range results {
		off := snap.offs[si]
		for _, li := range r.Indices {
			cand = append(cand, off+li)
		}
	}

	// Re-stage the candidate rows under the query's preferences — the
	// merge recount must compare in the same transformed space the
	// shards computed in.
	d := snap.ds.d
	ops, err := q.opsInto(nil)
	if err != nil {
		return Result{}, err
	}
	de := d
	staged := len(ops) > 0 && !point.IdentityOps(ops)
	if staged {
		de = point.EffectiveDims(ops)
	}
	raw := make([]float64, len(cand)*d)
	for p, gi := range cand {
		copy(raw[p*d:(p+1)*d], snap.ds.vals[gi*d:(gi+1)*d])
	}
	buf := raw
	if staged {
		buf = make([]float64, len(cand)*de)
		point.StagePrefs(buf, raw, len(cand), d, ops)
	}

	keep, counts, mergePath, err := c.mergeCandidates(ctx, buf, len(cand), de, k, &dts)
	if err != nil {
		return Result{}, err
	}
	idx := make([]int, len(keep))
	for j, p := range keep {
		idx[j] = cand[p]
	}
	shard.SortByIndex(idx, counts)

	res := Result{Indices: idx, Counts: counts}
	res.Stats = Stats{
		DominanceTests: dts,
		SkylineSize:    len(idx),
		InputSize:      snap.ds.n,
		Threads:        c.eng.threads,
		Elapsed:        time.Since(start),
	}
	// Aggregate the per-shard work counters and phase timings into the
	// collection-level stats (phase durations sum across shards, so they
	// read as total work, not wall clock).
	for _, r := range results {
		res.Stats.PrefilterPruned += r.Stats.PrefilterPruned
		res.Stats.Phase1Survivors += r.Stats.Phase1Survivors
		res.Stats.Phase2Survivors += r.Stats.Phase2Survivors
		res.Stats.SortTime += r.Stats.SortTime
		res.Stats.Timings.add(r.Stats.Timings)
	}
	if traced {
		tr := traceFromResult(q.Algorithm, q.SkybandK, &res)
		tr.MergePath = mergePath
		tr.Shards = make([]ShardTrace, len(results))
		for i, r := range results {
			tr.Shards[i] = ShardTrace{
				Shard:           i,
				InputSize:       r.Stats.InputSize,
				Output:          len(r.Indices),
				DominanceTests:  r.Stats.DominanceTests,
				PrefilterPruned: r.Stats.PrefilterPruned,
				Elapsed:         r.Stats.Elapsed,
			}
		}
		res.Trace = tr
	}
	return res, nil
}

// mergeCandidates computes the exact k-skyband of the nc staged
// candidates (the union of per-shard bands), returning candidate
// positions, exact counts (nil for k ≤ 1), and the merge-path label for
// the trace, by whichever merge path fits the union size
// (shard.MergeKernelMax). Both paths implement the same DESIGN.md §10
// recount; shard.MergeBand is the reference the property tests pin.
func (c *Collection) mergeCandidates(ctx context.Context, buf []float64, nc, de, k int, dts *uint64) ([]int, []int32, string, error) {
	if nc <= shard.MergeKernelMax {
		keep, counts, err := shard.MergeBand(ctx, buf, nc, de, k, dts)
		if err != nil {
			return nil, nil, "", canceledErr(err)
		}
		return keep, counts, shard.MergePathKernel, nil
	}
	ds, err := DatasetFromFlat(buf, nc, de)
	if err != nil {
		return nil, nil, "", err
	}
	q := Query{}
	if k > 1 {
		q.SkybandK = k
	}
	res, err := c.eng.exec(ctx, ds, q)
	if err != nil {
		return nil, nil, "", err
	}
	*dts += res.Stats.DominanceTests
	return res.Indices, res.Counts, shard.MergePathEngine, nil
}

// Future is the handle of one asynchronously submitted query. Wait (or
// Done + Result) delivers the outcome exactly as Run would have.
type Future struct {
	done chan struct{}
	res  *QueryResult
	err  error
}

// Done returns a channel closed when the query has finished.
func (f *Future) Done() <-chan struct{} { return f.done }

// Result blocks until the query finishes and returns its outcome.
func (f *Future) Result() (*QueryResult, error) {
	<-f.done
	return f.res, f.err
}

// Wait blocks until the query finishes or ctx is done, whichever comes
// first. A ctx abort abandons only the wait — the submitted query keeps
// running under its own context and the Future stays usable.
func (f *Future) Wait(ctx context.Context) (*QueryResult, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		return nil, canceledErr(ctx.Err())
	}
}

// Submit starts the query on its own goroutine and returns a Future for
// it — the async form of Run, sharing the same cache and shard fan-out.
// The query runs under ctx: cancel it to abandon the computation.
//
// Submissions pass through the Store's admission control
// (StoreOptions.MaxInflight/MaxQueue): beyond the queue bound the
// Future fails immediately with ErrOverloaded, and after Store.Close it
// fails immediately with ErrClosed — both decided synchronously on the
// submitting goroutine, never by a panic. Failed admission still honors
// Query.AllowStale.
func (c *Collection) Submit(ctx context.Context, q Query) *Future {
	f := &Future{done: make(chan struct{})}
	adm, err := c.owner.beginAdmit()
	if err != nil {
		f.res, f.err = c.staleFallback(&q, err)
		close(f.done)
		return f
	}
	go func() {
		defer close(f.done)
		// A panic anywhere below must resolve this Future, not crash the
		// process or wedge Wait; it poisons only this query.
		defer func() {
			if r := recover(); r != nil {
				f.res, f.err = nil, panicErr(r, debug.Stack())
			}
			adm.release()
		}()
		if err := adm.wait(ctx); err != nil {
			f.res, f.err = c.staleFallback(&q, err)
			return
		}
		f.res, f.err = c.Run(ctx, q)
	}()
	return f
}

// SubmitBatch submits every query concurrently and returns their
// Futures in order — the batch form of Submit for callers answering
// one request with several queries (multiple k cuts, several subspace
// preferences, …). The engine's context free-list and shared worker
// pool keep the fan-out from oversubscribing the machine; the Store's
// admission bounds apply per query, so an oversized batch partially
// admits and the overflow fails fast with ErrOverloaded.
func (c *Collection) SubmitBatch(ctx context.Context, qs []Query) []*Future {
	fs := make([]*Future, len(qs))
	for i, q := range qs {
		fs[i] = c.Submit(ctx, q)
	}
	return fs
}
