package skybench

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"skybench/internal/core"
	"skybench/internal/faults"
	"skybench/internal/par"
	"skybench/internal/point"
	"skybench/internal/stats"
)

// engineFaults is the Engine's fault-injection hook. It is nil outside
// tests (a nil injector is inert and free); robustness tests arm it via
// an export_test.go setter to place panics, errors, and stalls at the
// "engine.run" site.
var engineFaults *faults.Injector

// Engine is the prepare-once, query-many serving interface: construct a
// Dataset once, then call Run for every query against it. An Engine is
// safe for concurrent use by any number of goroutines — it keeps a
// free-list of computation contexts (each holding the scratch state of
// one in-flight query) over a single shared worker pool, so concurrent
// queries reuse warm scratch instead of allocating, and the machine
// runs one thread team rather than one per caller.
//
// Run honors context cancellation and deadlines: the Hybrid and Q-Flow
// hot paths poll a cancellation flag at every α-block boundary and
// periodically inside their parallel phases, so a canceled query
// returns ctx.Err() promptly instead of finishing the computation.
// Baseline algorithms check cancellation only on entry.
//
// The zero-allocation steady state of the hot paths is preserved: a
// warm Engine serving repeated Hybrid or Q-Flow queries with
// Query.ReuseIndices set performs no allocations per Run (with a
// plain context.Context that has no Done channel, e.g.
// context.Background()).
type Engine struct {
	threads int

	mu     sync.Mutex
	pool   *par.Pool
	free   []*engineCtx
	closed bool
}

// engineCtx is the per-query scratch bundle an Engine hands out from
// its free-list: one core computation context plus the staging buffer
// for preference transforms and a cancellation flag.
type engineCtx struct {
	core     *core.Context
	st       stats.Stats
	buf      []float64 // preference-staged copy of the dataset
	ops      []point.PrefOp
	poisoned bool // query panicked on this context; do not recycle it
}

// NewEngine creates an Engine whose worker pool has the given number of
// threads (≤ 0 selects all usable CPUs). Per-query thread counts are
// capped at this budget. Close releases the pool; an Engine dropped
// without Close is cleaned up by the garbage collector.
func NewEngine(threads int) *Engine {
	if threads <= 0 {
		threads = par.DefaultThreads()
	}
	return &Engine{threads: threads}
}

// Threads returns the Engine's thread budget.
func (e *Engine) Threads() int { return e.threads }

// Close releases the Engine's worker pool. The Engine must not be used
// afterwards; in-flight queries must have completed.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	for _, ec := range e.free {
		ec.core.Close()
	}
	e.free = nil
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
}

// acquire pops a warm context from the free-list, creating the shared
// pool and a fresh context on first need. Steady state performs no
// allocation.
func (e *Engine) acquire() (*engineCtx, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("%w: Engine", ErrClosed)
	}
	if n := len(e.free); n > 0 {
		ec := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ec, nil
	}
	if e.pool == nil {
		e.pool = par.NewPool(e.threads)
	}
	return &engineCtx{core: core.NewContextShared(e.pool)}, nil
}

// Prewarm pre-creates n computation contexts on the free-list so a
// burst of concurrent queries — a sharded Collection fanning out P
// shard runs at once — leases warm scratch instead of allocating
// contexts under load. It is never required; the free-list grows on
// demand anyway.
func (e *Engine) Prewarm(n int) {
	warm := make([]*engineCtx, 0, n)
	for i := 0; i < n; i++ {
		ec, err := e.acquire()
		if err != nil {
			break
		}
		warm = append(warm, ec)
	}
	for _, ec := range warm {
		e.release(ec)
	}
}

// checkOpen reports an error once the Engine has been closed (the
// pool-less baseline path does not go through acquire).
func (e *Engine) checkOpen() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("%w: Engine", ErrClosed)
	}
	return nil
}

// release returns a context to the free-list for the next query.
func (e *Engine) release(ec *engineCtx) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		ec.core.Close()
		return
	}
	e.free = append(e.free, ec)
}

// Run answers one query over ds. Result.Indices are positions in ds
// (also under Max/Ignore preferences — staging preserves row order) and
// are caller-owned unless q.ReuseIndices is set. When ctx is canceled
// or its deadline passes, Run returns an error wrapping both
// ErrCanceled and ctx.Err() promptly — before starting any work if ctx
// is already dead, and from the hot paths' cancellation checkpoints
// otherwise. All other errors wrap the typed sentinels in errors.go.
//
// Run is the single-partition primitive of the serving stack: it
// executes exactly what one shard of a Store collection executes, and
// is equivalent to querying a single-shard anonymous Collection with
// result caching disabled. Services hosting several datasets, sharding
// large ones, or wanting cross-query caching should front the Engine
// with a Store.
func (e *Engine) Run(ctx context.Context, ds *Dataset, q Query) (Result, error) {
	return e.exec(ctx, ds, q)
}

// exec is the execution core behind Engine.Run and behind every shard
// run a Collection fans out.
func (e *Engine) exec(ctx context.Context, ds *Dataset, q Query) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, canceledErr(err)
	}
	if ds == nil {
		return Result{}, fmt.Errorf("%w: nil Dataset", ErrBadDataset)
	}
	// An empty Dataset has no dimensionality to validate preferences
	// against; every query over it is an empty skyline.
	if ds.n == 0 {
		return Result{}, nil
	}
	if len(q.Prefs) != 0 && len(q.Prefs) != ds.d {
		return Result{}, fmt.Errorf("%w: %d preferences for %d dimensions", ErrBadQuery, len(q.Prefs), ds.d)
	}

	// Auto is a Store-level meta-algorithm: the collection's planner
	// resolves it to a concrete algorithm before the engine ever sees
	// the query. A bare Engine has no profile or cost history to plan
	// from, so reaching here with Auto is a caller error.
	if q.Algorithm == Auto {
		return Result{}, fmt.Errorf("%w: Algorithm %s requires a Store collection (the planner lives there); pick a concrete algorithm for Engine.Run", ErrBadQuery, Auto)
	}
	// Only the Hybrid/Q-Flow hot paths use the pool-backed contexts;
	// baselines spawn their own short-lived goroutines and allocate per
	// run anyway, so they skip the pool and scratch entirely.
	hot := q.Algorithm == Hybrid || q.Algorithm == QFlow
	if q.SkybandK < 0 {
		return Result{}, fmt.Errorf("%w: negative SkybandK %d", ErrBadQuery, q.SkybandK)
	}
	if q.SkybandK > 1 && !hot {
		return Result{}, fmt.Errorf("%w: algorithm %s does not support k-skyband queries (SkybandK=%d); use %s or %s", ErrBadQuery, q.Algorithm, q.SkybandK, Hybrid, QFlow)
	}
	var ec *engineCtx
	if hot {
		var err error
		if ec, err = e.acquire(); err != nil {
			return Result{}, err
		}
		defer func() {
			// A context whose query panicked is discarded, not recycled:
			// the panic may have left its scratch state (bucket arrays,
			// partial heaps, the shared pool's region bookkeeping) torn,
			// and a poisoned context handed to the next query would turn
			// one contained failure into silent corruption.
			if ec.poisoned {
				ec.core.Close()
				return
			}
			e.release(ec)
		}()
	} else if err := e.checkOpen(); err != nil {
		return Result{}, err
	}

	return e.execGuarded(ctx, ec, hot, ds, q)
}

// execGuarded is the compute section of exec, with panic containment: a
// panic anywhere in preference staging or the algorithms — including
// one rethrown as *par.WorkerPanic from a parallel-region worker — is
// converted into an error wrapping ErrQueryPanic, carrying the panic
// value and the panicking goroutine's stack. Only the offending query
// fails; the Engine and its pool stay serviceable.
func (e *Engine) execGuarded(ctx context.Context, ec *engineCtx, hot bool, ds *Dataset, q Query) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ec != nil {
				ec.poisoned = true
			}
			res, err = Result{}, panicErr(r, debug.Stack())
		}
	}()

	// Stage the preference transform (at most once per query; all-Min
	// queries serve straight from the Dataset's storage).
	vals, d := ds.vals, ds.d
	var scratch []point.PrefOp
	if hot {
		scratch = ec.ops[:0]
	}
	ops, err := q.opsInto(scratch)
	if err != nil {
		return Result{}, err
	}
	if hot && ops != nil {
		ec.ops = ops // retain grown scratch capacity
	}
	if len(ops) > 0 && !point.IdentityOps(ops) {
		de := point.EffectiveDims(ops)
		if de == 0 {
			return Result{}, fmt.Errorf("%w: query ignores every dimension", ErrBadQuery)
		}
		var dst []float64
		if hot {
			ec.buf = growFloats(ec.buf, ds.n*de)
			dst = ec.buf
		} else {
			dst = make([]float64, ds.n*de)
		}
		point.StagePrefs(dst, ds.vals, ds.n, d, ops)
		vals, d = dst, de
	}
	m := point.FromFlat(vals, ds.n, d)

	threads := q.Threads
	if threads <= 0 || threads > e.threads {
		threads = e.threads
	}

	// Bridge ctx onto the hot paths' polling flag. The watcher goroutine
	// and its flag exist only when ctx can actually be canceled, so
	// context.Background() keeps the allocation-free steady state. The
	// flag is per-run (not stored on the engineCtx) so a watcher that is
	// scheduled late — after this run finished and the context was
	// recycled to a later query — stores into a dead flag instead of
	// aborting that query.
	var cancel *atomic.Bool
	var watcherDone chan struct{}
	if done := ctx.Done(); done != nil {
		cancel = new(atomic.Bool)
		watcherDone = make(chan struct{})
		go func(flag *atomic.Bool) {
			select {
			case <-done:
				flag.Store(true)
			case <-watcherDone:
			}
		}(cancel)
		// Deferred (not inline after the run) so the watcher is released
		// even when the run panics out through the recover above.
		defer close(watcherDone)
	}

	if err := faults.Check(engineFaults, "engine.run"); err != nil {
		return Result{}, err
	}
	if hot {
		res, err = runOnContext(ec, m, q, threads, cancel)
	} else {
		res, err = runBaseline(m, q, threads)
	}

	if cerr := ctx.Err(); cerr != nil {
		// The run may have been abandoned mid-flight; its partial result
		// must not escape.
		return Result{}, canceledErr(cerr)
	}
	if err != nil {
		return Result{}, err
	}
	// Detach the context-path result unless the caller opted into the
	// zero-copy alias; baseline indices are freshly allocated already.
	if !q.ReuseIndices && (q.Algorithm == Hybrid || q.Algorithm == QFlow) {
		res.Indices = append([]int(nil), res.Indices...)
		if res.Counts != nil {
			res.Counts = append([]int32(nil), res.Counts...)
		}
	}
	// Materialize the trace last, from the always-on counters, so only
	// traced queries pay the allocation (the zero-alloc guards run with
	// Trace unset).
	if q.Trace {
		res.Trace = traceFromResult(q.Algorithm, q.SkybandK, &res)
	}
	return res, nil
}

// runOnContext executes a hot-path query on an acquired context, with
// cancellation plumbed through.
func runOnContext(ec *engineCtx, m point.Matrix, q Query, threads int, cancel *atomic.Bool) (Result, error) {
	switch q.Algorithm {
	case Hybrid:
		ec.st = stats.Stats{}
		start := time.Now()
		idx := ec.core.Hybrid(m, core.HybridOptions{
			Threads:       threads,
			Alpha:         q.Alpha,
			Pivot:         q.Pivot.internal(),
			Beta:          q.Beta,
			Seed:          q.Seed,
			SkybandK:      q.SkybandK,
			NoPrefilter:   q.Ablation.NoPrefilter,
			NoMS:          q.Ablation.NoMS,
			NoLevel2:      q.Ablation.NoLevel2,
			NoPhase2Split: q.Ablation.NoPhase2Split,
			Stats:         &ec.st,
			Progressive:   q.Progressive,
			Cancel:        cancel,
		})
		res := assembleResult(idx, &ec.st, m.N(), time.Since(start))
		res.Counts = ec.core.Counts()
		return res, nil
	case QFlow:
		ec.st = stats.Stats{}
		start := time.Now()
		idx := ec.core.QFlow(m, core.QFlowOptions{
			Threads:     threads,
			Alpha:       q.Alpha,
			SkybandK:    q.SkybandK,
			Stats:       &ec.st,
			Progressive: q.Progressive,
			Cancel:      cancel,
		})
		res := assembleResult(idx, &ec.st, m.N(), time.Since(start))
		res.Counts = ec.core.Counts()
		return res, nil
	default:
		panic(fmt.Sprintf("skybench: runOnContext called for non-hot-path algorithm %d", int(q.Algorithm)))
	}
}

// opsInto translates the query's preferences into staging ops, appending
// to a caller-provided scratch slice so a warm Engine can do it without
// allocating. It returns nil when the query has no explicit preferences.
// Length validation against the dataset happens in Run.
func (q *Query) opsInto(scratch []point.PrefOp) ([]point.PrefOp, error) {
	if len(q.Prefs) == 0 {
		return nil, nil
	}
	ops := scratch
	for i, p := range q.Prefs {
		op, err := p.op()
		if err != nil {
			return nil, fmt.Errorf("%w: %v on dimension %d", ErrBadQuery, err, i)
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// growFloats returns s resized to n, reallocating only when capacity is
// short.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
