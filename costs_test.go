package skybench

import (
	"math/rand"
	"testing"
	"time"
)

// refPercentile is the nearest-rank definition stated independently of
// the implementation: the smallest sample at rank ceil(p·n/100).
func refPercentile(sorted []int64, p int) int64 {
	n := len(sorted)
	rank := (n*p + 99) / 100 // ceil(p·n/100)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// TestCostPercentileNearestRank pins the nearest-rank indexing of the
// window percentiles over the wn table from the issue: the old
// floor-rank form s[(wn-1)·p/100] under-reported P99 for every window
// under 100 samples (wn=10 indexed the 9th-smallest of 10 instead of
// the maximum).
func TestCostPercentileNearestRank(t *testing.T) {
	for _, wn := range []int{1, 2, 10, 99, 100, 256} {
		var tr costTracker
		// Latencies 1..wn ns, recorded in shuffled order so the test
		// exercises the sort, not insertion order.
		perm := rand.New(rand.NewSource(int64(wn))).Perm(wn)
		for _, p := range perm {
			tr.record(Hybrid, time.Duration(p+1), 0)
		}
		sorted := make([]int64, wn)
		for i := range sorted {
			sorted[i] = int64(i + 1)
		}
		rows := tr.stats()
		if len(rows) != 1 {
			t.Fatalf("wn=%d: %d rows, want 1", wn, len(rows))
		}
		if got, want := int64(rows[0].P50Latency), refPercentile(sorted, 50); got != want {
			t.Errorf("wn=%d: P50 = %d, want %d", wn, got, want)
		}
		if got, want := int64(rows[0].P99Latency), refPercentile(sorted, 99); got != want {
			t.Errorf("wn=%d: P99 = %d, want %d", wn, got, want)
		}
		// The headline case of the bug: any window under 100 samples must
		// report the true maximum as P99.
		if wn < 100 {
			if got := int64(rows[0].P99Latency); got != int64(wn) {
				t.Errorf("wn=%d: P99 = %d, want the window maximum %d", wn, got, wn)
			}
		}
	}
}

// TestCostWindowedDominanceTests checks that the dominance-test signal
// decays at the same costWindow rate as the latency percentiles, while
// the lifetime mean keeps the full history.
func TestCostWindowedDominanceTests(t *testing.T) {
	var tr costTracker
	// costWindow runs at 1000 DTs each, then costWindow more at 0: the
	// window now holds only the second half.
	for i := 0; i < costWindow; i++ {
		tr.record(QFlow, time.Millisecond, 1000)
	}
	for i := 0; i < costWindow; i++ {
		tr.record(QFlow, time.Millisecond, 0)
	}
	rows := tr.stats()
	if len(rows) != 1 {
		t.Fatalf("%d rows, want 1", len(rows))
	}
	row := rows[0]
	if row.WindowedMeanDominanceTests != 0 {
		t.Errorf("windowed mean = %v after the window rolled over, want 0", row.WindowedMeanDominanceTests)
	}
	if row.MeanDominanceTests != 500 {
		t.Errorf("lifetime mean = %v, want 500", row.MeanDominanceTests)
	}
	if row.Count != uint64(2*costWindow) {
		t.Errorf("lifetime count = %d, want %d", row.Count, 2*costWindow)
	}

	// A partially filled window averages exactly what was recorded.
	var tr2 costTracker
	for i := 0; i < 10; i++ {
		tr2.record(Hybrid, time.Millisecond, uint64(i))
	}
	rows2 := tr2.stats()
	if got, want := rows2[0].WindowedMeanDominanceTests, 4.5; got != want {
		t.Errorf("partial-window mean = %v, want %v", got, want)
	}
}
