package skybench_test

import (
	"math"
	"testing"

	"skybench"
)

func TestNewDatasetValidation(t *testing.T) {
	if _, err := skybench.NewDataset([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := skybench.NewDataset([][]float64{{}}); err == nil {
		t.Error("zero-dimensional points accepted")
	}
	wide := make([]float64, 64)
	if _, err := skybench.NewDataset([][]float64{wide}); err == nil {
		t.Error("over-wide points accepted")
	}
	ds, err := skybench.NewDataset(nil)
	if err != nil || ds.N() != 0 {
		t.Errorf("empty input: ds=%v err=%v, want empty dataset", ds, err)
	}
}

func TestNewDatasetCopies(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}}
	ds, err := skybench.NewDataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	rows[0][0] = 99 // must not affect the dataset
	if got := ds.Row(0)[0]; got != 1 {
		t.Errorf("Dataset shares caller storage: Row(0)[0] = %v, want 1", got)
	}
	if ds.N() != 2 || ds.D() != 2 {
		t.Errorf("shape = %d×%d, want 2×2", ds.N(), ds.D())
	}
}

func TestDatasetFromFlat(t *testing.T) {
	flat := []float64{1, 2, 3, 4, 5, 6}
	ds, err := skybench.DatasetFromFlat(flat, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3 || ds.D() != 2 {
		t.Fatalf("shape = %d×%d, want 3×2", ds.N(), ds.D())
	}
	if r := ds.Row(2); r[0] != 5 || r[1] != 6 {
		t.Errorf("Row(2) = %v, want [5 6]", r)
	}
	if _, err := skybench.DatasetFromFlat(flat, 2, 2); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := skybench.DatasetFromFlat(nil, 1, 0); err == nil {
		t.Error("zero dimensionality accepted")
	}
}

func TestDatasetRejectsNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	// A NaN point is never dominated and never dominates (every
	// comparison is false), so admitting one would silently corrupt
	// skylines; both constructors must reject NaN and ±Inf.
	for name, rows := range map[string][][]float64{
		"nan":      {{1, 2}, {nan, 0}},
		"plus-inf": {{1, inf}},
		"neg-inf":  {{-inf, 0}, {1, 2}},
	} {
		if _, err := skybench.NewDataset(rows); err == nil {
			t.Errorf("NewDataset accepted %s", name)
		}
	}
	for name, flat := range map[string][]float64{
		"nan":      {1, 2, nan, 0},
		"plus-inf": {inf, 2, 3, 4},
		"neg-inf":  {1, 2, 3, -inf},
	} {
		if _, err := skybench.DatasetFromFlat(flat, 2, 2); err == nil {
			t.Errorf("DatasetFromFlat accepted %s", name)
		}
	}
	// The legacy surfaces funnel through the same validators.
	if _, err := skybench.Compute([][]float64{{nan, 1}}, skybench.Options{}); err == nil {
		t.Error("Compute accepted NaN")
	}
}
