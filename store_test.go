package skybench_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"skybench"
	"skybench/stream"
)

// storeTestData builds a deterministic synthetic dataset through the
// public generator.
func storeTestData(t testing.TB, dist string, n, d int, seed int64) [][]float64 {
	t.Helper()
	rows, err := skybench.GenerateDataset(dist, n, d, seed)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// bandMap keys a band result by row index for order-insensitive
// comparison of membership and counts.
func bandMap(idx []int, counts []int32) map[int]int32 {
	m := make(map[int]int32, len(idx))
	for p, i := range idx {
		if counts != nil {
			m[i] = counts[p]
		} else {
			m[i] = 0
		}
	}
	return m
}

// TestStoreShardedMatchesUnsharded is the acceptance property: for
// every distribution × preference vector × k × shard count, the sharded
// collection's result must be set-identical to the unsharded Engine
// answer, with identical dominator counts for skybands.
func TestStoreShardedMatchesUnsharded(t *testing.T) {
	const n, d = 2500, 5
	st := skybench.NewStore(4)
	defer st.Close()
	ctx := context.Background()

	prefsCases := map[string][]skybench.Pref{
		"all-min": nil,
		"mixed":   {skybench.Min, skybench.Max, skybench.Min, skybench.Max, skybench.Min},
		"subspace": {skybench.Min, skybench.Ignore, skybench.Max,
			skybench.Ignore, skybench.Min},
	}

	for _, dist := range []string{"correlated", "independent", "anticorrelated"} {
		rows := storeTestData(t, dist, n, d, 7)
		ds, err := skybench.NewDataset(rows)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := st.Attach(dist+"-ref", ds, skybench.CollectionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 4, 7} {
			col, err := st.Attach(fmt.Sprintf("%s-%d", dist, shards), ds,
				skybench.CollectionOptions{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			for name, prefs := range prefsCases {
				for _, k := range []int{1, 2, 4} {
					q := skybench.Query{Prefs: prefs, SkybandK: k}
					want, err := ref.Run(ctx, q)
					if err != nil {
						t.Fatal(err)
					}
					got, err := col.Run(ctx, q)
					if err != nil {
						t.Fatalf("%s/%s shards=%d k=%d: %v", dist, name, shards, k, err)
					}
					wm, gm := bandMap(want.Indices, want.Counts), bandMap(got.Indices, got.Counts)
					if len(wm) != len(gm) {
						t.Fatalf("%s/%s shards=%d k=%d: %d points sharded, %d unsharded",
							dist, name, shards, k, len(gm), len(wm))
					}
					for i, c := range wm {
						if gc, ok := gm[i]; !ok || gc != c {
							t.Fatalf("%s/%s shards=%d k=%d: row %d count %d vs unsharded %d (present=%v)",
								dist, name, shards, k, i, gm[i], c, ok)
						}
					}
					if !slices.IsSorted(got.Indices) {
						t.Fatalf("%s/%s shards=%d k=%d: sharded indices not ascending", dist, name, shards, k)
					}
					if got.Stats.InputSize != n {
						t.Fatalf("%s/%s shards=%d k=%d: InputSize %d, want %d", dist, name, shards, k, got.Stats.InputSize, n)
					}
				}
			}
		}
	}
}

// TestStoreShardedLargeUnion forces the merge's engine path (union
// larger than the kernel cutoff): anticorrelated data whose skyline is
// a large fraction of the input. Sharded results must still match.
func TestStoreShardedLargeUnion(t *testing.T) {
	const n, d = 8000, 7
	rows := storeTestData(t, "anticorrelated", n, d, 13)
	ds, err := skybench.NewDataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	st := skybench.NewStore(4)
	defer st.Close()
	ref, err := st.Attach("ref", ds, skybench.CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	col, err := st.Attach("sharded", ds, skybench.CollectionOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, k := range []int{1, 2} {
		q := skybench.Query{SkybandK: k}
		want, err := ref.Run(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if want.Len() <= 1024 {
			t.Fatalf("k=%d: band has %d points — workload too small to exercise the engine merge", k, want.Len())
		}
		got, err := col.Run(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		wm, gm := bandMap(want.Indices, want.Counts), bandMap(got.Indices, got.Counts)
		if len(wm) != len(gm) {
			t.Fatalf("k=%d: %d points sharded, %d unsharded", k, len(gm), len(wm))
		}
		for i, c := range wm {
			if gm[i] != c {
				t.Fatalf("k=%d: row %d count %d, unsharded %d", k, i, gm[i], c)
			}
		}
	}
}

// TestStoreShardedGolden pins sharded results to the committed golden
// files: P=4 skylines and k-skybands must reproduce the brute-force
// oracle's membership and counts index-for-index.
func TestStoreShardedGolden(t *testing.T) {
	st := skybench.NewStore(2)
	defer st.Close()
	ctx := context.Background()
	for _, c := range goldenCases {
		g := loadGolden(t, c.name)
		ds, err := skybench.NewDataset(g.Rows)
		if err != nil {
			t.Fatal(err)
		}
		col, err := st.Attach(c.name, ds, skybench.CollectionOptions{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		res, err := col.Run(ctx, skybench.Query{})
		if err != nil {
			t.Fatal(err)
		}
		if got := sortedInts(res.Indices); !slices.Equal(got, g.Skyline) {
			t.Fatalf("%s: sharded skyline %v, golden %v", c.name, got, g.Skyline)
		}
		for _, k := range goldenKs {
			want := g.Skyband[fmt.Sprint(k)]
			res, err := col.Run(ctx, skybench.Query{SkybandK: k})
			if err != nil {
				t.Fatal(err)
			}
			gm, wm := bandMap(res.Indices, res.Counts), bandMap(want.Indices, want.Counts)
			if len(gm) != len(wm) {
				t.Fatalf("%s k=%d: sharded band size %d, golden %d", c.name, k, len(gm), len(wm))
			}
			for i, cnt := range wm {
				if gm[i] != cnt {
					t.Fatalf("%s k=%d: row %d count %d, golden %d", c.name, k, i, gm[i], cnt)
				}
			}
		}
	}
}

// TestStoreCacheHitZeroAlloc is the acceptance bound on the cache: a
// repeated identical untraced query on an unchanged collection must be
// a hit that performs zero shard work — same immutable result handle,
// no allocations at all. This also pins the tracing design's overhead
// contract: with Query.Trace off (the default here), the cost counters
// and cache-hit path stay allocation-free.
func TestStoreCacheHitZeroAlloc(t *testing.T) {
	rows := storeTestData(t, "independent", 5000, 6, 3)
	ds, err := skybench.NewDataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	st := skybench.NewStore(4)
	defer st.Close()
	col, err := st.Attach("hot", ds, skybench.CollectionOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := skybench.Query{SkybandK: 2}
	first, err := col.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	base := col.CacheStats()

	var got *skybench.QueryResult
	allocs := testing.AllocsPerRun(100, func() {
		r, err := col.Run(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		got = r
	})
	if allocs != 0 {
		t.Errorf("cache hit allocates %.1f per call, want 0", allocs)
	}
	if got != first {
		t.Error("cache hit returned a different result handle — shard work was redone")
	}
	stats := col.CacheStats()
	if stats.Hits <= base.Hits {
		t.Errorf("hits did not advance: %+v -> %+v", base, stats)
	}
	if stats.Misses != base.Misses {
		t.Errorf("repeated identical query counted a miss: %+v -> %+v", base, stats)
	}
	if got.Trace != nil {
		t.Error("untraced cache hit carries a trace")
	}

	// A traced repeat of the same query is still a hit (Trace is a
	// delivery option, not part of the fingerprint) and comes back with
	// a minimal cache-hit trace on a fresh handle, leaving the cached
	// entry trace-free for the untraced fast path.
	tq := q
	tq.Trace = true
	tr1, err := col.Run(ctx, tq)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Trace == nil || !tr1.Trace.CacheHit {
		t.Fatalf("traced repeat: trace = %+v, want a cache-hit trace", tr1.Trace)
	}
	if tr1 == first {
		t.Error("traced cache hit returned the shared cached handle — its trace would leak to untraced callers")
	}
	if hs := col.CacheStats(); hs.Misses != base.Misses {
		t.Errorf("traced repeat counted a miss: %+v -> %+v", base, hs)
	}
	after, err := col.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if after != first || after.Trace != nil {
		t.Error("untraced query after a traced hit no longer gets the clean cached handle")
	}

	// An equivalent canonical spelling (k=0 vs k=1, explicit all-Min
	// prefs vs empty) shares the cache entry.
	r0, err := col.Run(ctx, skybench.Query{SkybandK: 1})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := col.Run(ctx, skybench.Query{
		Prefs: []skybench.Pref{skybench.Min, skybench.Min, skybench.Min,
			skybench.Min, skybench.Min, skybench.Min}})
	if err != nil {
		t.Fatal(err)
	}
	if r0 != r1 {
		t.Error("canonically equivalent queries did not share a cache entry")
	}

	// A wrong-length all-Min preference vector is invalid and must stay
	// invalid with a warm cache — it must not collapse into the valid
	// empty-prefs entry.
	badPrefs := skybench.Query{Prefs: []skybench.Pref{skybench.Min, skybench.Min}}
	if _, err := col.Run(ctx, badPrefs); !errors.Is(err, skybench.ErrBadQuery) {
		t.Errorf("wrong-length all-Min prefs on a warm cache: err = %v, want ErrBadQuery", err)
	}
}

// TestStoreStreamCacheInvalidation drives a stream-backed collection
// through inserts and deletes and checks that every membership change
// invalidates cached results, while unchanged epochs keep serving the
// same handle — and that every answer matches a fresh Engine run over
// the live set.
func TestStoreStreamCacheInvalidation(t *testing.T) {
	ix, err := stream.New(3, stream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	rng := rand.New(rand.NewSource(11))
	var ids []stream.ID
	for i := 0; i < 300; i++ {
		id, err := ix.Insert([]float64{rng.Float64(), rng.Float64(), rng.Float64()})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	st := skybench.NewStore(2)
	defer st.Close()
	col, err := st.AttachStream("live", ix, skybench.CollectionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := skybench.Query{SkybandK: 2}

	oracle := func() map[string]int32 {
		vals, _, _ := ix.LiveSnapshot()
		n := len(vals) / 3
		ds, err := skybench.DatasetFromFlat(vals, n, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := st.Engine().Run(ctx, ds, q)
		if err != nil {
			t.Fatal(err)
		}
		m := make(map[string]int32, len(res.Indices))
		for p, i := range res.Indices {
			m[fmt.Sprint(ds.Row(i))] = res.Counts[p]
		}
		return m
	}
	check := func(r *skybench.QueryResult) {
		t.Helper()
		want := bandByCoords(t, r)
		w := oracle()
		if len(want) != len(w) {
			t.Fatalf("stream query: %d band points, oracle %d", len(want), len(w))
		}
		for key, c := range w {
			if want[key] != c {
				t.Fatalf("stream query: point %s count %d, oracle %d", key, want[key], c)
			}
		}
	}

	r1, err := col.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	check(r1)
	r2, err := col.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r1 {
		t.Error("unchanged stream collection recomputed instead of hitting the cache")
	}

	// A dominated insert changes no skyline membership but does change
	// the live set — the cache must still invalidate (a k=2 band can
	// change, and so can other cached fingerprints).
	if _, err := ix.Insert([]float64{0.99, 0.99, 0.99}); err != nil {
		t.Fatal(err)
	}
	r3, err := col.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("insert did not invalidate the cached result")
	}
	if r3.Epoch == r1.Epoch {
		t.Error("epoch did not advance across an insert")
	}
	check(r3)

	for _, id := range ids[:40] {
		if !ix.Delete(id) {
			t.Fatalf("delete of live id %d failed", id)
		}
	}
	r4, err := col.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r4 == r3 {
		t.Error("deletes did not invalidate the cached result")
	}
	check(r4)

	// Result positions resolve to stable stream IDs.
	for p := 0; p < r4.Len(); p++ {
		id, ok := r4.ID(p)
		if !ok {
			t.Fatal("stream-backed result has no IDs")
		}
		vals, ok := ix.Values(stream.ID(id))
		if !ok {
			t.Fatalf("result ID %d is not live", id)
		}
		if fmt.Sprint(vals) != fmt.Sprint(r4.Row(p)) {
			t.Fatalf("result ID %d values %v, row %v", id, vals, r4.Row(p))
		}
	}
}

// bandByCoords keys a QueryResult's band by coordinate string — stream
// row order and dataset row order differ, so comparisons go by value.
func bandByCoords(t *testing.T, r *skybench.QueryResult) map[string]int32 {
	t.Helper()
	m := make(map[string]int32, r.Len())
	for p := 0; p < r.Len(); p++ {
		var c int32
		if r.Counts != nil {
			c = r.Counts[p]
		}
		m[fmt.Sprint(r.Row(p))] = c
	}
	return m
}

// TestStoreErrors exercises the typed sentinel errors across the Store
// surface.
func TestStoreErrors(t *testing.T) {
	rows := storeTestData(t, "independent", 100, 3, 5)
	ds, err := skybench.NewDataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	st := skybench.NewStore(2)
	ctx := context.Background()

	if _, err := st.Attach("a", nil, skybench.CollectionOptions{}); !errors.Is(err, skybench.ErrBadDataset) {
		t.Errorf("nil dataset: err = %v, want ErrBadDataset", err)
	}
	if _, err := st.AttachStream("a", nil, skybench.CollectionOptions{}); !errors.Is(err, skybench.ErrBadDataset) {
		t.Errorf("nil source: err = %v, want ErrBadDataset", err)
	}
	col, err := st.Attach("a", ds, skybench.CollectionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Attach("a", ds, skybench.CollectionOptions{}); !errors.Is(err, skybench.ErrDuplicateCollection) {
		t.Errorf("duplicate attach: err = %v, want ErrDuplicateCollection", err)
	}
	if _, err := st.Collection("missing"); !errors.Is(err, skybench.ErrUnknownCollection) {
		t.Errorf("unknown lookup: err = %v, want ErrUnknownCollection", err)
	}
	if err := st.Drop("missing"); !errors.Is(err, skybench.ErrUnknownCollection) {
		t.Errorf("unknown drop: err = %v, want ErrUnknownCollection", err)
	}
	if got, err := st.Collection("a"); err != nil || got != col {
		t.Errorf("lookup = (%v, %v), want the attached handle", got, err)
	}
	if names := st.Names(); !slices.Equal(names, []string{"a"}) {
		t.Errorf("Names() = %v, want [a]", names)
	}

	// Progressive delivery is incompatible with sharded fan-out.
	prog := skybench.Query{Progressive: func([]int) {}}
	if _, err := col.Run(ctx, prog); !errors.Is(err, skybench.ErrBadQuery) {
		t.Errorf("progressive sharded query: err = %v, want ErrBadQuery", err)
	}
	// Bad queries surface the engine's typed errors through the shards.
	if _, err := col.Run(ctx, skybench.Query{SkybandK: -3}); !errors.Is(err, skybench.ErrBadQuery) {
		t.Errorf("negative k: err = %v, want ErrBadQuery", err)
	}
	if _, err := col.Run(ctx, skybench.Query{Algorithm: skybench.Algorithm(77)}); !errors.Is(err, skybench.ErrUnknownAlgorithm) {
		t.Errorf("unknown algorithm: err = %v, want ErrUnknownAlgorithm", err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := col.Run(canceled, skybench.Query{}); !errors.Is(err, skybench.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("canceled query: err = %v, want ErrCanceled wrapping context.Canceled", err)
	}

	if err := st.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := col.Run(ctx, skybench.Query{}); !errors.Is(err, skybench.ErrClosed) {
		t.Errorf("dropped collection query: err = %v, want ErrClosed", err)
	}
	st.Close()
	if _, err := st.Attach("b", ds, skybench.CollectionOptions{}); !errors.Is(err, skybench.ErrClosed) {
		t.Errorf("attach after Close: err = %v, want ErrClosed", err)
	}
	if _, err := st.Collection("a"); !errors.Is(err, skybench.ErrClosed) {
		t.Errorf("lookup after Close: err = %v, want ErrClosed", err)
	}
}

// TestCollectionSubmit covers the async surface: futures deliver what
// Run would, batches fan out, and Wait detaches on a dead context
// without killing the query.
func TestCollectionSubmit(t *testing.T) {
	rows := storeTestData(t, "anticorrelated", 2000, 4, 9)
	ds, err := skybench.NewDataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	st := skybench.NewStore(2)
	defer st.Close()
	col, err := st.Attach("async", ds, skybench.CollectionOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	want, err := col.Run(ctx, skybench.Query{})
	if err != nil {
		t.Fatal(err)
	}
	f := col.Submit(ctx, skybench.Query{})
	got, err := f.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("future did not serve the cached handle Run produced")
	}

	qs := []skybench.Query{{}, {SkybandK: 2}, {Algorithm: skybench.QFlow}}
	for i, f := range col.SubmitBatch(ctx, qs) {
		res, err := f.Wait(ctx)
		if err != nil {
			t.Fatalf("batch query %d: %v", i, err)
		}
		if res.Len() == 0 {
			t.Fatalf("batch query %d: empty result", i)
		}
	}

	// Wait with a dead context abandons the wait, not the future.
	slow := col.Submit(ctx, skybench.Query{SkybandK: 4})
	deadCtx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := slow.Wait(deadCtx); !errors.Is(err, skybench.ErrCanceled) {
		t.Errorf("Wait on dead context: err = %v, want ErrCanceled", err)
	}
	if res, err := slow.Result(); err != nil || res == nil {
		t.Errorf("future died with its waiter: (%v, %v)", res, err)
	}
}

// TestStoreConcurrent is the race-detector workload named in CI: many
// goroutines querying a Store hosting a sharded static collection and a
// stream-backed collection, while a writer mutates the stream — cache
// hits, invalidations, snapshot materialization, and shard fan-out all
// interleaving.
func TestStoreConcurrent(t *testing.T) {
	rows := storeTestData(t, "independent", 4000, 4, 21)
	ds, err := skybench.NewDataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := stream.New(4, stream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	var mu sync.Mutex
	var live []stream.ID
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 1000; i++ {
		id, err := ix.Insert([]float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()})
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
	}

	st := skybench.NewStore(4)
	defer st.Close()
	static, err := st.Attach("static", ds, skybench.CollectionOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := st.AttachStream("live", ix, skybench.CollectionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: continuous inserts and deletes on the stream collection,
	// running until the readers are done.
	go func() {
		defer close(writerDone)
		wrng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if wrng.Float64() < 0.4 {
				mu.Lock()
				if len(live) > 0 {
					p := wrng.Intn(len(live))
					id := live[p]
					live[p] = live[len(live)-1]
					live = live[:len(live)-1]
					mu.Unlock()
					ix.Delete(id)
					continue
				}
				mu.Unlock()
			}
			id, err := ix.Insert([]float64{wrng.Float64(), wrng.Float64(), wrng.Float64(), wrng.Float64()})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			live = append(live, id)
			mu.Unlock()
		}
	}()

	queries := []skybench.Query{{}, {SkybandK: 2}, {Algorithm: skybench.QFlow},
		{Prefs: []skybench.Pref{skybench.Min, skybench.Max, skybench.Min, skybench.Ignore}}}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				q := queries[(g+i)%len(queries)]
				if res, err := static.Run(ctx, q); err != nil || res.Len() == 0 {
					t.Errorf("static query: (%v, %v)", res, err)
					return
				}
				if res, err := streamed.Run(ctx, q); err != nil {
					t.Errorf("stream query: %v", err)
					return
				} else if res.Len() == 0 {
					t.Error("stream query: empty result over a non-empty live set")
					return
				}
			}
		}(g)
	}
	wg.Wait() // readers finish first; then stop the writer
	close(stop)
	<-writerDone

	if hits := static.CacheStats().Hits; hits == 0 {
		t.Error("concurrent identical static queries never hit the cache")
	}
}

// TestStoreLegacyEquivalence pins the layering contract: Engine.Run and
// an unsharded, cache-disabled collection answer identically.
func TestStoreLegacyEquivalence(t *testing.T) {
	rows := storeTestData(t, "correlated", 1500, 4, 17)
	ds, err := skybench.NewDataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	eng := skybench.NewEngine(2)
	defer eng.Close()
	st := skybench.NewStoreWithEngine(eng)
	defer st.Close()
	col, err := st.Attach("plain", ds, skybench.CollectionOptions{CacheCapacity: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, q := range []skybench.Query{{}, {SkybandK: 3}, {Algorithm: skybench.BNL}} {
		want, err := eng.Run(ctx, ds, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := col.Run(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got.Indices, want.Indices) || !slices.Equal(got.Counts, want.Counts) {
			t.Fatalf("query %+v: collection diverges from Engine.Run", q)
		}
		if got.Epoch != 0 {
			t.Fatalf("static collection epoch = %d, want 0", got.Epoch)
		}
	}
	// NewStoreWithEngine leaves the engine to its owner.
	st.Close()
	if _, err := eng.Run(ctx, ds, skybench.Query{}); err != nil {
		t.Fatalf("store close killed the caller-owned engine: %v", err)
	}
}
