package skybench_test

import (
	"testing"

	"skybench"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/verify"
)

func genRows(dist dataset.Distribution, n, d int, seed int64) [][]float64 {
	m := dataset.Generate(dist, n, d, seed)
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		copy(row, m.Row(i))
		rows[i] = row
	}
	return rows
}

// Every algorithm exposed by the public API must agree with the oracle
// on every distribution — the central cross-algorithm equivalence test.
func TestAllAlgorithmsMatchOracle(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		rows := genRows(dist, 600, 5, 99)
		want := verify.BruteForce(point.FromRows(rows))
		for _, alg := range skybench.Algorithms {
			res, err := skybench.Compute(rows, skybench.Options{Algorithm: alg, Threads: 3})
			if err != nil {
				t.Fatalf("%v on %v: %v", alg, dist, err)
			}
			if !verify.SameSkyline(res.Indices, want) {
				t.Fatalf("%v on %v: wrong skyline (got %d points, want %d)",
					alg, dist, len(res.Indices), len(want))
			}
		}
	}
}

func TestComputeEmpty(t *testing.T) {
	res, err := skybench.Compute(nil, skybench.Options{})
	if err != nil || len(res.Indices) != 0 {
		t.Fatalf("empty: %v, %v", res.Indices, err)
	}
}

func TestComputeValidation(t *testing.T) {
	if _, err := skybench.Compute([][]float64{{1, 2}, {3}}, skybench.Options{}); err == nil {
		t.Error("ragged input accepted")
	}
	if _, err := skybench.Compute([][]float64{{}}, skybench.Options{}); err == nil {
		t.Error("zero-dimensional input accepted")
	}
	wide := make([]float64, 40)
	if _, err := skybench.Compute([][]float64{wide}, skybench.Options{}); err == nil {
		t.Error("over-wide input accepted")
	}
	if _, err := skybench.Compute([][]float64{{1}}, skybench.Options{Algorithm: skybench.Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestSkylineConvenience(t *testing.T) {
	idx, err := skybench.Skyline([][]float64{{1, 2}, {2, 1}, {3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !verify.SameSkyline(idx, []int{0, 1}) {
		t.Fatalf("Skyline = %v", idx)
	}
}

func TestStatsExposed(t *testing.T) {
	rows := genRows(dataset.Independent, 3000, 6, 5)
	res, err := skybench.Compute(rows, skybench.Options{Algorithm: skybench.Hybrid, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.InputSize != 3000 || s.SkylineSize != len(res.Indices) {
		t.Errorf("sizes: %+v", s)
	}
	if s.DominanceTests == 0 {
		t.Error("no DTs reported")
	}
	if s.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
	if s.Timings.PhaseOne <= 0 {
		t.Error("no Phase I time for Hybrid")
	}
}

func TestAlgorithmNamesRoundTrip(t *testing.T) {
	for _, alg := range skybench.Algorithms {
		got, err := skybench.ParseAlgorithm(alg.String())
		if err != nil || got != alg {
			t.Errorf("round trip %v: %v, %v", alg, got, err)
		}
	}
	if _, err := skybench.ParseAlgorithm("nope"); err == nil {
		t.Error("bogus name accepted")
	}
}

func TestPivotStrategies(t *testing.T) {
	rows := genRows(dataset.Anticorrelated, 500, 4, 7)
	want := verify.BruteForce(point.FromRows(rows))
	for _, p := range []skybench.PivotStrategy{
		skybench.PivotMedian, skybench.PivotBalanced, skybench.PivotManhattan,
		skybench.PivotVolume, skybench.PivotRandom,
	} {
		res, err := skybench.Compute(rows, skybench.Options{Pivot: p, Seed: 11})
		if err != nil || !verify.SameSkyline(res.Indices, want) {
			t.Errorf("pivot %v: wrong result (%v)", p, err)
		}
	}
}

func TestProgressiveViaAPI(t *testing.T) {
	rows := genRows(dataset.Independent, 2000, 5, 3)
	var streamed []int
	res, err := skybench.Compute(rows, skybench.Options{
		Algorithm: skybench.QFlow,
		Alpha:     128,
		Progressive: func(confirmed []int) {
			streamed = append(streamed, confirmed...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !verify.SameSkyline(streamed, res.Indices) {
		t.Fatal("progressive stream disagrees with final result")
	}
}

func TestGenerateDataset(t *testing.T) {
	rows, err := skybench.GenerateDataset("anticorrelated", 100, 4, 1)
	if err != nil || len(rows) != 100 || len(rows[0]) != 4 {
		t.Fatalf("GenerateDataset: %v, %d rows", err, len(rows))
	}
	if _, err := skybench.GenerateDataset("bogus", 10, 2, 1); err == nil {
		t.Error("bogus distribution accepted")
	}
}

func TestDominatesExposed(t *testing.T) {
	if !skybench.Dominates([]float64{1, 1}, []float64{2, 2}) {
		t.Error("Dominates broken")
	}
}

func TestMaximizationViaNegation(t *testing.T) {
	// The documented idiom: negate attributes to prefer larger values.
	rows := [][]float64{{-10, -1}, {-1, -10}, {-5, -5}, {-1, -1}}
	idx, err := skybench.Skyline(rows)
	if err != nil {
		t.Fatal(err)
	}
	if !verify.SameSkyline(idx, []int{0, 1, 2}) {
		t.Fatalf("maximization: %v", idx)
	}
}
