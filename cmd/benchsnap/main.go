// Command benchsnap measures the hot-path algorithms on a fixed workload
// grid and writes a BENCH_<date>.json snapshot, so the repository records
// a performance trajectory PR over PR. Commit the emitted file; compare
// two snapshots by eye or with jq.
//
// Usage:
//
//	benchsnap                       # default grid, BENCH_<date>.json
//	benchsnap -out BENCH_x.json -reps 5 -note "after kernel rework"
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"skybench"

	"skybench/internal/dataset"
)

// entry is one measured cell of the snapshot grid.
type entry struct {
	Algorithm string  `json:"algorithm"`
	Dist      string  `json:"dist"`
	N         int     `json:"n"`
	D         int     `json:"d"`
	K         int     `json:"skyband_k,omitempty"` // ≥ 2 marks a skyband cell
	Shards    int     `json:"shards,omitempty"`    // ≥ 1 marks a store-served sharded cell
	Threads   int     `json:"threads"`
	Reps      int     `json:"reps"`
	BestMs    float64 `json:"best_ms"`
	AvgMs     float64 `json:"avg_ms"`
	DTs       uint64  `json:"dominance_tests"`
	Skyline   int     `json:"skyline_size"`
	// Chosen records the plan an Algorithm: Auto cell converged to
	// (e.g. "hybrid/1 no_prefilter"); empty for fixed-algorithm cells.
	Chosen string `json:"chosen_plan,omitempty"`
}

type snapshot struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Note       string  `json:"note,omitempty"`
	Entries    []entry `json:"entries"`
}

func main() {
	var (
		out     = flag.String("out", "", "output path (default BENCH_<date>.json)")
		n       = flag.Int("n", 100000, "cardinality of the default workload")
		d       = flag.Int("d", 8, "dimensionality of the default workload")
		t       = flag.Int("t", 8, "threads for the parallel algorithms")
		reps    = flag.Int("reps", 3, "repetitions per cell (best and average reported)")
		seed    = flag.Int64("seed", 42, "dataset generator seed")
		note    = flag.String("note", "", "freeform note stored in the snapshot")
		full    = flag.Bool("full", false, "also measure the parallel baselines (slower)")
		kList   = flag.String("k", "4,16", "comma-separated skyband k values also measured for hybrid/qflow (empty = none)")
		pList   = flag.String("shards", "1,2,4", "comma-separated shard counts measured through a Store collection into BENCH_<date>_shard.json (empty = skip)")
		planner = flag.Bool("planner", true, "measure the adaptive planner (Algorithm Auto) against its fixed arms into BENCH_<date>_planner.json")
	)
	flag.Parse()

	algos := []skybench.Algorithm{skybench.Hybrid, skybench.QFlow}
	if *full {
		algos = append(algos, skybench.PSkyline, skybench.PBSkyTree, skybench.PSFS, skybench.APSkyline)
	}

	snap := snapshot{
		Date:       time.Now().UTC().Format("2006-01-02T15:04:05Z"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       *note,
	}

	var ks []int
	if *kList != "" {
		for _, part := range strings.Split(*kList, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || k < 2 {
				fmt.Fprintf(os.Stderr, "benchsnap: -k entries must be integers >= 2, got %q\n", part)
				os.Exit(1)
			}
			ks = append(ks, k)
		}
	}
	var shardPs []int
	if *pList != "" {
		for _, part := range strings.Split(*pList, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || p < 1 {
				fmt.Fprintf(os.Stderr, "benchsnap: -shards entries must be integers >= 1, got %q\n", part)
				os.Exit(1)
			}
			shardPs = append(shardPs, p)
		}
	}

	ctx := skybench.NewContext()
	defer ctx.Close()
	eng := skybench.NewEngine(*t)
	defer eng.Close()
	for _, dist := range dataset.AllDistributions {
		m := dataset.Generate(dist, *n, *d, *seed)
		for _, alg := range algos {
			e := entry{
				Algorithm: alg.String(), Dist: dist.String(),
				N: *n, D: *d, Threads: *t, Reps: *reps,
			}
			var total time.Duration
			best := time.Duration(0)
			for r := 0; r < *reps; r++ {
				res, err := ctx.ComputeFlat(m.Flat(), m.N(), m.D(),
					skybench.Options{Algorithm: alg, Threads: *t})
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchsnap: %s/%s: %v\n", alg, dist, err)
					os.Exit(1)
				}
				el := res.Stats.Elapsed
				total += el
				if best == 0 || el < best {
					best = el
				}
				e.DTs = res.Stats.DominanceTests
				e.Skyline = res.Stats.SkylineSize
			}
			e.BestMs = float64(best.Nanoseconds()) / 1e6
			e.AvgMs = float64(total.Nanoseconds()) / float64(*reps) / 1e6
			snap.Entries = append(snap.Entries, e)
			fmt.Printf("%-10s %-14s n=%d d=%d t=%d  best=%.2fms avg=%.2fms |SKY|=%d\n",
				e.Algorithm, e.Dist, e.N, e.D, e.Threads, e.BestMs, e.AvgMs, e.Skyline)
		}

		// Skyband cost curve: the same workload through the k-skyband
		// query path (Hybrid and QFlow only — the baselines don't count
		// dominators).
		ds, err := skybench.DatasetFromFlat(m.Flat(), m.N(), m.D())
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		for _, alg := range []skybench.Algorithm{skybench.Hybrid, skybench.QFlow} {
			for _, k := range ks {
				e := entry{
					Algorithm: alg.String(), Dist: dist.String(),
					N: *n, D: *d, K: k, Threads: *t, Reps: *reps,
				}
				q := skybench.Query{Algorithm: alg, SkybandK: k, ReuseIndices: true}
				var total time.Duration
				best := time.Duration(0)
				for r := 0; r < *reps; r++ {
					res, err := eng.Run(context.Background(), ds, q)
					if err != nil {
						fmt.Fprintf(os.Stderr, "benchsnap: %s/%s k=%d: %v\n", alg, dist, k, err)
						os.Exit(1)
					}
					el := res.Stats.Elapsed
					total += el
					if best == 0 || el < best {
						best = el
					}
					e.DTs = res.Stats.DominanceTests
					e.Skyline = res.Stats.SkylineSize
				}
				e.BestMs = float64(best.Nanoseconds()) / 1e6
				e.AvgMs = float64(total.Nanoseconds()) / float64(*reps) / 1e6
				snap.Entries = append(snap.Entries, e)
				fmt.Printf("%-10s %-14s n=%d d=%d k=%d t=%d  best=%.2fms avg=%.2fms |BAND|=%d\n",
					e.Algorithm, e.Dist, e.N, e.D, e.K, e.Threads, e.BestMs, e.AvgMs, e.Skyline)
			}
		}
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("2006-01-02"))
	}
	writeSnap(path, &snap)

	// Adaptive-planner rows: Algorithm Auto on a sharded collection,
	// measured after a fixed warm-up spends the planner's explore budget
	// and fills its cost history, next to the four fixed arms it chooses
	// between. Recorded as a separate BENCH_<date>_planner.json; the
	// chosen_plan column pins what Auto converged to so regressions in
	// the decision itself (not just its latency) show up in the diff.
	if *planner {
		const plannerShards = 4
		const plannerWarmup = 12
		planSnap := snapshot{
			Date: snap.Date, GoVersion: snap.GoVersion, GOOS: snap.GOOS,
			GOARCH: snap.GOARCH, NumCPU: snap.NumCPU, GOMAXPROCS: snap.GOMAXPROCS,
			Note: *note,
		}
		pst := skybench.NewStore(*t)
		for _, dist := range dataset.AllDistributions {
			m := dataset.Generate(dist, *n, *d, *seed)
			ds, err := skybench.DatasetFromFlat(m.Flat(), m.N(), m.D())
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsnap:", err)
				os.Exit(1)
			}
			type armSpec struct {
				alg skybench.Algorithm
				p   int
			}
			for _, a := range []armSpec{
				{skybench.Hybrid, 1}, {skybench.Hybrid, plannerShards},
				{skybench.QFlow, 1}, {skybench.QFlow, plannerShards},
			} {
				col, err := pst.Attach(fmt.Sprintf("plan-%s-%s-p%d", dist, a.alg, a.p), ds,
					skybench.CollectionOptions{Shards: a.p, CacheCapacity: -1})
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchsnap:", err)
					os.Exit(1)
				}
				e := entry{
					Algorithm: a.alg.String(), Dist: dist.String(),
					N: *n, D: *d, Shards: a.p, Threads: *t, Reps: *reps,
				}
				best, avg, last := measureStore(col, skybench.Query{Algorithm: a.alg}, *reps)
				e.BestMs, e.AvgMs = msFloat(best), msFloat(avg)
				e.DTs, e.Skyline = last.Stats.DominanceTests, len(last.Indices)
				planSnap.Entries = append(planSnap.Entries, e)
				fmt.Printf("%-10s %-14s n=%d d=%d shards=%d t=%d  best=%.2fms avg=%.2fms |SKY|=%d\n",
					e.Algorithm, e.Dist, e.N, e.D, e.Shards, e.Threads, e.BestMs, e.AvgMs, e.Skyline)
			}

			col, err := pst.Attach("plan-"+dist.String()+"-auto", ds,
				skybench.CollectionOptions{Shards: plannerShards, CacheCapacity: -1})
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsnap:", err)
				os.Exit(1)
			}
			q := skybench.Query{Algorithm: skybench.Auto}
			for i := 0; i < plannerWarmup; i++ {
				if _, err := col.Run(context.Background(), q); err != nil {
					fmt.Fprintf(os.Stderr, "benchsnap: auto warmup %s: %v\n", dist, err)
					os.Exit(1)
				}
			}
			e := entry{
				Algorithm: "auto", Dist: dist.String(),
				N: *n, D: *d, Shards: plannerShards, Threads: *t, Reps: *reps,
			}
			best, avg, last := measureStore(col, q, *reps)
			e.BestMs, e.AvgMs = msFloat(best), msFloat(avg)
			e.DTs, e.Skyline = last.Stats.DominanceTests, len(last.Indices)
			if last.Plan != nil {
				e.Chosen = fmt.Sprintf("%s/%d", last.Plan.Algorithm, last.Plan.Shards)
				if last.Plan.NoPrefilter {
					e.Chosen += " no_prefilter"
				}
			}
			planSnap.Entries = append(planSnap.Entries, e)
			fmt.Printf("%-10s %-14s n=%d d=%d shards=%d t=%d  best=%.2fms avg=%.2fms |SKY|=%d  chose %s\n",
				e.Algorithm, e.Dist, e.N, e.D, e.Shards, e.Threads, e.BestMs, e.AvgMs, e.Skyline, e.Chosen)
		}
		pst.Close()
		writeSnap(strings.TrimSuffix(path, ".json")+"_planner.json", &planSnap)
	}

	// Sharded serving rows: the same workloads through a Store
	// collection (caching disabled so every rep measures real fan-out +
	// merge work), recorded as a separate BENCH_<date>_shard.json so the
	// sharded trajectory is comparable PR over PR on its own.
	if len(shardPs) == 0 {
		return
	}
	shardSnap := snapshot{
		Date: snap.Date, GoVersion: snap.GoVersion, GOOS: snap.GOOS,
		GOARCH: snap.GOARCH, NumCPU: snap.NumCPU, GOMAXPROCS: snap.GOMAXPROCS,
		Note: *note,
	}
	st := skybench.NewStore(*t)
	defer st.Close()
	cctx := context.Background()
	for _, dist := range dataset.AllDistributions {
		m := dataset.Generate(dist, *n, *d, *seed)
		ds, err := skybench.DatasetFromFlat(m.Flat(), m.N(), m.D())
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		for _, alg := range []skybench.Algorithm{skybench.Hybrid, skybench.QFlow} {
			for _, p := range shardPs {
				col, err := st.Attach(fmt.Sprintf("%s-%s-p%d", dist, alg, p), ds,
					skybench.CollectionOptions{Shards: p, CacheCapacity: -1})
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchsnap:", err)
					os.Exit(1)
				}
				e := entry{
					Algorithm: alg.String(), Dist: dist.String(),
					N: *n, D: *d, Shards: p, Threads: *t, Reps: *reps,
				}
				q := skybench.Query{Algorithm: alg}
				var total time.Duration
				best := time.Duration(0)
				for r := 0; r < *reps; r++ {
					start := time.Now()
					res, err := col.Run(cctx, q)
					if err != nil {
						fmt.Fprintf(os.Stderr, "benchsnap: %s/%s shards=%d: %v\n", alg, dist, p, err)
						os.Exit(1)
					}
					el := time.Since(start)
					total += el
					if best == 0 || el < best {
						best = el
					}
					e.DTs = res.Stats.DominanceTests
					e.Skyline = len(res.Indices)
				}
				e.BestMs = float64(best.Nanoseconds()) / 1e6
				e.AvgMs = float64(total.Nanoseconds()) / float64(*reps) / 1e6
				shardSnap.Entries = append(shardSnap.Entries, e)
				fmt.Printf("%-10s %-14s n=%d d=%d shards=%d t=%d  best=%.2fms avg=%.2fms |SKY|=%d\n",
					e.Algorithm, e.Dist, e.N, e.D, e.Shards, e.Threads, e.BestMs, e.AvgMs, e.Skyline)
			}
		}
	}
	shardPath := strings.TrimSuffix(path, ".json") + "_shard.json"
	writeSnap(shardPath, &shardSnap)
}

// measureStore times reps runs of q through col by wall clock (so an
// Algorithm: Auto cell is charged for its planning overhead too) and
// returns the best and average durations with the final result.
func measureStore(col *skybench.Collection, q skybench.Query, reps int) (best, avg time.Duration, last *skybench.QueryResult) {
	var total time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		res, err := col.Run(context.Background(), q)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: %s: %v\n", q.Algorithm, err)
			os.Exit(1)
		}
		el := time.Since(start)
		total += el
		if best == 0 || el < best {
			best = el
		}
		last = res
	}
	return best, total / time.Duration(reps), last
}

// msFloat converts a duration to fractional milliseconds.
func msFloat(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// writeSnap marshals a snapshot to disk.
func writeSnap(path string, snap *snapshot) {
	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}
