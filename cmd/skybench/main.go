// Command skybench runs one skyline algorithm over one dataset and
// reports the result with timing and dominance-test statistics.
//
// Usage:
//
//	skybench -algo hybrid -dist anticorrelated -n 100000 -d 8 -t 4
//	skybench -algo bskytree -input points.csv -print
//	skybench -n 100000 -d 6 -max 2,5 -dims 0,2,3,5   # maximize & project
//	skybench -n 1000000 -d 10 -timeout 500ms         # deadline-bounded
//	skybench -n 100000 -d 8 -k 4 -top 10             # 4-skyband, 10 best
//	skybench -n 1000000 -d 8 -shards 4 -cache        # sharded store serving
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"skybench"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/verify"
)

func main() {
	var (
		algoName  = flag.String("algo", "hybrid", "algorithm: "+strings.Join(skybench.AlgorithmNames(), "|"))
		distName  = flag.String("dist", "independent", "synthetic distribution: correlated|independent|anticorrelated")
		n         = flag.Int("n", 100000, "synthetic cardinality")
		d         = flag.Int("d", 8, "synthetic dimensionality")
		seed      = flag.Int64("seed", 42, "generator seed")
		input     = flag.String("input", "", "CSV dataset to load instead of generating")
		threads   = flag.Int("t", 0, "threads (0 = all CPUs)")
		alpha     = flag.Int("alpha", 0, "alpha block size override (0 = paper default)")
		pivotName = flag.String("pivot", "median", "hybrid pivot: median|balanced|manhattan|volume|random")
		maxList   = flag.String("max", "", "comma-separated dimension indices to maximize instead of minimize")
		dimsList  = flag.String("dims", "", "comma-separated dimension indices to keep (subspace skyline; others are ignored)")
		kband     = flag.Int("k", 1, "k-skyband parameter: report points with fewer than k dominators (1 = skyline; k >= 2 needs hybrid or qflow)")
		topW      = flag.Int("top", 0, "print the w band members with fewest dominators (requires -k >= 2)")
		shards    = flag.Int("shards", 1, "serve through a Store collection split into this many partitions (fan out + exact merge; 1 = direct engine)")
		useCache  = flag.Bool("cache", false, "serve through a Store collection with result caching, run the query twice, and report hit/miss stats")
		timeout   = flag.Duration("timeout", 0, "cancel the query after this duration (0 = no deadline)")
		printSky  = flag.Bool("print", false, "print skyline points")
		check     = flag.Bool("check", false, "verify the result against a brute-force oracle (O(n²); small inputs only)")
	)
	flag.Parse()

	alg, err := skybench.ParseAlgorithm(*algoName)
	if err != nil {
		fatal(err)
	}
	if *topW > 0 && *kband < 2 {
		fatal(fmt.Errorf("-top ranks band members by dominator count and needs -k >= 2 (got -k %d)", *kband))
	}
	pv, err := skybench.ParsePivot(*pivotName)
	if err != nil {
		fatal(err)
	}

	var m point.Matrix
	if *input != "" {
		m, err = dataset.ReadFile(*input)
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", *input, err))
		}
	} else {
		dist, err := dataset.ParseDistribution(*distName)
		if err != nil {
			fatal(err)
		}
		m = dataset.Generate(dist, *n, *d, *seed)
	}

	prefs, err := parsePrefs(*maxList, *dimsList, m.D())
	if err != nil {
		fatal(err)
	}

	ds, err := skybench.DatasetFromFlat(m.Flat(), m.N(), m.D())
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	q := skybench.Query{
		Algorithm: alg,
		Prefs:     prefs,
		Alpha:     *alpha,
		Pivot:     pv,
		Seed:      *seed,
		SkybandK:  *kband,
	}

	var res skybench.Result
	var plan *skybench.PlannerTrace
	var cacheStats skybench.CacheStats
	// Auto needs the Store's planner — a bare engine rejects it.
	storeServed := *shards > 1 || *useCache || alg == skybench.Auto
	if storeServed {
		// Store-served path: one named collection, sharded fan-out with
		// exact merge, optional result caching.
		st := skybench.NewStore(*threads)
		defer st.Close()
		cacheCap := -1
		if *useCache {
			cacheCap = 0 // default capacity
		}
		col, err := st.Attach("cli", ds, skybench.CollectionOptions{
			Shards:        *shards,
			CacheCapacity: cacheCap,
		})
		if err != nil {
			fatal(err)
		}
		qr, err := col.Run(ctx, q)
		if err != nil {
			fatal(err)
		}
		if *useCache {
			// Second identical run: an unchanged collection must hit.
			if qr, err = col.Run(ctx, q); err != nil {
				fatal(err)
			}
			cacheStats = col.CacheStats()
		}
		res = qr.Result
		plan = qr.Plan
	} else {
		eng := skybench.NewEngine(*threads)
		defer eng.Close()
		if res, err = eng.Run(ctx, ds, q); err != nil {
			fatal(err)
		}
	}

	s := res.Stats
	label := "skyline    "
	if *kband > 1 {
		label = fmt.Sprintf("%d-skyband  ", *kband)
	}
	fmt.Printf("algorithm   : %s\n", alg)
	if plan != nil {
		fmt.Printf("plan        : %s shards=%d alpha=%d beta=%d no_prefilter=%v explore=%v (class=%s sky_est=%d)\n",
			plan.Algorithm, plan.Shards, plan.Alpha, plan.Beta, plan.NoPrefilter, plan.Explore, plan.Class, plan.SkylineEst)
	}
	fmt.Printf("input       : %d points × %d dims\n", s.InputSize, m.D())
	if prefs != nil {
		fmt.Printf("preferences : %s\n", describePrefs(prefs))
	}
	fmt.Printf("%s : %d points (%.2f%%)\n", label, s.SkylineSize, 100*float64(s.SkylineSize)/float64(s.InputSize))
	if storeServed {
		fmt.Printf("shards      : %d (store-served)\n", *shards)
	}
	if *useCache {
		fmt.Printf("cache       : hits=%d misses=%d entries=%d\n",
			cacheStats.Hits, cacheStats.Misses, cacheStats.Entries)
	}
	fmt.Printf("elapsed     : %v\n", s.Elapsed)
	fmt.Printf("dom. tests  : %d\n", s.DominanceTests)
	tm := s.Timings
	if tm.PhaseOne > 0 || tm.PhaseTwo > 0 {
		fmt.Printf("phases      : init=%v prefilter=%v pivot=%v phase1=%v phase2=%v compress=%v other=%v\n",
			tm.Init, tm.Prefilter, tm.Pivot, tm.PhaseOne, tm.PhaseTwo, tm.Compress, tm.Other)
	}
	if *check {
		staged := transformed(m, prefs)
		var ok bool
		var oracleSize int
		if *kband > 1 {
			wantIdx, wantCnt := verify.BruteForceSkyband(staged, *kband)
			ok = verify.SameBand(res.Indices, res.Counts, wantIdx, wantCnt)
			oracleSize = len(wantIdx)
		} else {
			want := verify.BruteForce(staged)
			ok = verify.SameSkyline(res.Indices, want)
			oracleSize = len(want)
		}
		if ok {
			fmt.Println("check       : OK (matches brute-force oracle)")
		} else {
			fmt.Printf("check       : FAILED (got %d points, oracle says %d)\n", len(res.Indices), oracleSize)
			os.Exit(1)
		}
	}
	if *topW > 0 {
		countOf := make(map[int]int32, len(res.Indices))
		for p, idx := range res.Indices {
			countOf[idx] = res.Counts[p]
		}
		for rank, i := range res.TopK(*topW) {
			fmt.Printf("top %-3d     : row %d (%d dominators) %v\n", rank+1, i, countOf[i], m.Row(i))
		}
	}
	if *printSky {
		for p, i := range res.Indices {
			if res.Counts != nil {
				fmt.Println(m.Row(i), "dominators:", res.Counts[p])
			} else {
				fmt.Println(m.Row(i))
			}
		}
	}
}

// parsePrefs combines -max and -dims into a per-dimension preference
// vector, or nil when both flags are empty (minimize everything).
func parsePrefs(maxList, dimsList string, d int) ([]skybench.Pref, error) {
	if maxList == "" && dimsList == "" {
		return nil, nil
	}
	prefs := make([]skybench.Pref, d)
	if dimsList != "" {
		keep, err := parseDims(dimsList, d)
		if err != nil {
			return nil, err
		}
		for i := range prefs {
			prefs[i] = skybench.Ignore
		}
		for _, i := range keep {
			prefs[i] = skybench.Min
		}
	}
	if maxList != "" {
		maxes, err := parseDims(maxList, d)
		if err != nil {
			return nil, err
		}
		for _, i := range maxes {
			if prefs[i] == skybench.Ignore {
				return nil, fmt.Errorf("dimension %d is both maximized (-max) and dropped (-dims)", i)
			}
			prefs[i] = skybench.Max
		}
	}
	return prefs, nil
}

// parseDims parses a comma-separated list of dimension indices in [0, d).
func parseDims(list string, d int) ([]int, error) {
	parts := strings.Split(list, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad dimension index %q: %w", p, err)
		}
		if v < 0 || v >= d {
			return nil, fmt.Errorf("dimension index %d out of range [0, %d)", v, d)
		}
		out = append(out, v)
	}
	return out, nil
}

func describePrefs(prefs []skybench.Pref) string {
	parts := make([]string, len(prefs))
	for i, p := range prefs {
		parts[i] = fmt.Sprintf("%d:%s", i, p)
	}
	return strings.Join(parts, " ")
}

// transformed applies the preference rewrite to m so the brute-force
// oracle sees exactly what the engine computed over.
func transformed(m point.Matrix, prefs []skybench.Pref) point.Matrix {
	if prefs == nil {
		return m
	}
	ops := make([]point.PrefOp, len(prefs))
	for i, p := range prefs {
		switch p {
		case skybench.Min:
			ops[i] = point.PrefKeep
		case skybench.Max:
			ops[i] = point.PrefNegate
		case skybench.Ignore:
			ops[i] = point.PrefDrop
		default:
			// parsePrefs only emits the three values above; a new Pref
			// must be wired here or the oracle would silently minimize.
			panic(fmt.Sprintf("unhandled preference %v", p))
		}
	}
	de := point.EffectiveDims(ops)
	dst := make([]float64, m.N()*de)
	point.StagePrefs(dst, m.Flat(), m.N(), m.D(), ops)
	return point.FromFlat(dst, m.N(), de)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skybench:", err)
	os.Exit(1)
}
