// Command skybench runs one skyline algorithm over one dataset and
// reports the result with timing and dominance-test statistics.
//
// Usage:
//
//	skybench -algo hybrid -dist anticorrelated -n 100000 -d 8 -t 4
//	skybench -algo bskytree -input points.csv -print
package main

import (
	"flag"
	"fmt"
	"os"

	"skybench"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/verify"
)

func main() {
	var (
		algoName  = flag.String("algo", "hybrid", "algorithm: hybrid|qflow|pskyline|pbskytree|psfs|apskyline|bskytree|bnl|sfs|salsa|less|dnc")
		distName  = flag.String("dist", "independent", "synthetic distribution: correlated|independent|anticorrelated")
		n         = flag.Int("n", 100000, "synthetic cardinality")
		d         = flag.Int("d", 8, "synthetic dimensionality")
		seed      = flag.Int64("seed", 42, "generator seed")
		input     = flag.String("input", "", "CSV dataset to load instead of generating")
		threads   = flag.Int("t", 0, "threads (0 = all CPUs)")
		alpha     = flag.Int("alpha", 0, "alpha block size override (0 = paper default)")
		pivotName = flag.String("pivot", "median", "hybrid pivot: median|balanced|manhattan|volume|random")
		printSky  = flag.Bool("print", false, "print skyline points")
		check     = flag.Bool("check", false, "verify the result against a brute-force oracle (O(n²); small inputs only)")
	)
	flag.Parse()

	alg, err := skybench.ParseAlgorithm(*algoName)
	if err != nil {
		fatal(err)
	}
	pv, err := parsePivot(*pivotName)
	if err != nil {
		fatal(err)
	}

	var m point.Matrix
	if *input != "" {
		m, err = dataset.ReadFile(*input)
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", *input, err))
		}
	} else {
		dist, err := dataset.ParseDistribution(*distName)
		if err != nil {
			fatal(err)
		}
		m = dataset.Generate(dist, *n, *d, *seed)
	}

	res, err := skybench.Compute(m.Rows(), skybench.Options{
		Algorithm: alg,
		Threads:   *threads,
		Alpha:     *alpha,
		Pivot:     pv,
		Seed:      *seed,
	})
	if err != nil {
		fatal(err)
	}

	s := res.Stats
	fmt.Printf("algorithm   : %s\n", alg)
	fmt.Printf("input       : %d points × %d dims\n", s.InputSize, m.D())
	fmt.Printf("skyline     : %d points (%.2f%%)\n", s.SkylineSize, 100*float64(s.SkylineSize)/float64(s.InputSize))
	fmt.Printf("elapsed     : %v\n", s.Elapsed)
	fmt.Printf("dom. tests  : %d\n", s.DominanceTests)
	tm := s.Timings
	if tm.PhaseOne > 0 || tm.PhaseTwo > 0 {
		fmt.Printf("phases      : init=%v prefilter=%v pivot=%v phase1=%v phase2=%v compress=%v other=%v\n",
			tm.Init, tm.Prefilter, tm.Pivot, tm.PhaseOne, tm.PhaseTwo, tm.Compress, tm.Other)
	}
	if *check {
		want := verify.BruteForce(m)
		if verify.SameSkyline(res.Indices, want) {
			fmt.Println("check       : OK (matches brute-force oracle)")
		} else {
			fmt.Printf("check       : FAILED (got %d points, oracle says %d)\n", len(res.Indices), len(want))
			os.Exit(1)
		}
	}
	if *printSky {
		for _, i := range res.Indices {
			fmt.Println(m.Row(i))
		}
	}
}

func parsePivot(s string) (skybench.PivotStrategy, error) {
	switch s {
	case "median":
		return skybench.PivotMedian, nil
	case "balanced":
		return skybench.PivotBalanced, nil
	case "manhattan":
		return skybench.PivotManhattan, nil
	case "volume":
		return skybench.PivotVolume, nil
	case "random":
		return skybench.PivotRandom, nil
	}
	return 0, fmt.Errorf("unknown pivot strategy %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skybench:", err)
	os.Exit(1)
}
