// Command skyserved serves skybench collections over HTTP+JSON: the
// wire protocol of the serve package (queries, point mutations, delta
// subscriptions, admin, Prometheus metrics) over a Store configured
// from flags.
//
//	skyserved -addr :8080 \
//	  -static hotels=testdata/hotels.csv,shards=2 \
//	  -stream ticks=/var/lib/skybench/ticks,d=3 \
//	  -max-inflight 8 -max-queue 64 -default-timeout 2s \
//	  -log-events events.ndjson -slow-query 100ms -pprof
//
// A -stream directory holding durable state is recovered; one without
// is initialized fresh (d= is required then). -slow-query traces every
// query server-side and attaches the full trace to the event-log record
// of any query at least that slow; -pprof mounts the net/http/pprof
// profiling endpoints under /debug/pprof/. SIGINT/SIGTERM shuts down
// gracefully: stop accepting, drain in-flight queries under -drain,
// close delta subscribers, checkpoint and close durable collections,
// flush and close the event log.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"skybench"
	"skybench/internal/cluster"
	"skybench/serve"
	"skybench/stream"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ";") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("skyserved: ")

	var (
		addr        = flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		threads     = flag.Int("threads", 0, "engine thread budget (0 = all usable CPUs)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing queries (0 = unlimited)")
		maxQueue    = flag.Int("max-queue", 0, "max queries queued for an execution slot before 429")
		defTimeout  = flag.Duration("default-timeout", 0, "default per-query deadline (0 = none)")
		deltaQueue  = flag.Int("delta-queue", 0, "per-subscriber delta queue bound (0 = default)")
		eventsPath  = flag.String("log-events", "", "append one NDJSON event per request to this file")
		slowQuery   = flag.Duration("slow-query", 0, "trace every query and log the full trace for queries at least this slow (0 = off)")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profiling endpoints; enable only on trusted networks)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		statics     multiFlag
		streams     multiFlag
		clusters    multiFlag
	)
	flag.Var(&statics, "static", "attach a static collection: name=file.csv[,shards=N,cache=N] (repeatable)")
	flag.Var(&streams, "stream", "attach a durable stream collection: name=dir[,d=N,k=N,fsync=os|always|interval,checkpoint=N,shards=N,cache=N] (repeatable; recovers existing state, creates fresh with d=)")
	flag.Var(&clusters, "cluster", "coordinator mode: shard a CSV across worker skyserveds and serve the merged collection: name=file.csv@http://w1|http://w2[,policy=failfast|partial,margin=5ms,retries=N,worker-shards=N,cache=N] (repeatable)")
	flag.Parse()

	st := skybench.NewStoreWithOptions(skybench.StoreOptions{
		Threads:        *threads,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *defTimeout,
	})

	opts := serve.Options{DeltaQueue: *deltaQueue, SlowQuery: *slowQuery}
	if *eventsPath != "" {
		f, err := os.OpenFile(*eventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("opening event log: %v", err)
		}
		// The event log takes ownership of the file: its Close during
		// graceful shutdown flushes the write buffer and closes it.
		opts.Events = serve.NewEventLog(f)
	}
	// Coordinator mode is also reachable over the wire (skyctl cluster
	// attach): the hook distributes the CSV and attaches the coordinator
	// exactly like the -cluster flag does at boot.
	var srv *serve.Server
	opts.AttachCluster = func(name string, spec *serve.ClusterSpec, colOpts skybench.CollectionOptions) error {
		return attachClusterSpec(srv, name, spec, colOpts)
	}
	srv = serve.New(st, opts)

	for _, spec := range statics {
		if err := attachStatic(srv, spec); err != nil {
			log.Fatalf("-static %s: %v", spec, err)
		}
	}
	for _, spec := range streams {
		if err := attachStream(srv, spec); err != nil {
			log.Fatalf("-stream %s: %v", spec, err)
		}
	}
	for _, spec := range clusters {
		if err := attachCluster(srv, spec); err != nil {
			log.Fatalf("-cluster %s: %v", spec, err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("listening on %s (%d collections)", ln.Addr(), len(st.Names()))

	// The served handler: the API mux, optionally wrapped in an outer
	// mux that also mounts the pprof profiling endpoints.
	var handler http.Handler = srv
	if *pprofOn {
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", srv)
		handler = outer
		log.Printf("pprof enabled under /debug/pprof/")
	}

	hs := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("%v: draining (budget %v)", s, *drain)
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	}

	// Graceful shutdown, in dependency order: release the long-lived
	// delta handlers (Drain), let the HTTP server wait out in-flight
	// requests under the drain budget, then close the Store — which
	// checkpoints and closes every durable collection it owns.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	srv.Close()
	if err := opts.Events.Close(); err != nil {
		log.Printf("closing event log: %v", err)
	}
	log.Printf("shutdown complete")
}

// attachStatic parses and attaches one -static spec:
// name=file.csv[,shards=N,cache=N].
func attachStatic(srv *serve.Server, spec string) error {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return errors.New("want name=file.csv[,options]")
	}
	parts := strings.Split(rest, ",")
	path := parts[0]
	var opts skybench.CollectionOptions
	for _, kv := range parts[1:] {
		k, v, err := splitOpt(kv)
		if err != nil {
			return err
		}
		switch k {
		case "shards":
			opts.Shards, err = strconv.Atoi(v)
		case "cache":
			opts.CacheCapacity, err = strconv.Atoi(v)
		default:
			return fmt.Errorf("unknown option %q", k)
		}
		if err != nil {
			return fmt.Errorf("option %s: %v", k, err)
		}
	}
	_, err := srv.AttachStaticFile(name, path, opts)
	return err
}

// attachStream parses and attaches one -stream spec:
// name=dir[,d=N,k=N,fsync=...,checkpoint=N,shards=N,cache=N].
// Existing durable state in dir is recovered; otherwise a fresh index
// is created (requiring d).
func attachStream(srv *serve.Server, spec string) error {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return errors.New("want name=dir[,options]")
	}
	parts := strings.Split(rest, ",")
	dir := parts[0]
	var (
		d, k     int
		colOpts  skybench.CollectionOptions
		durOpts  stream.Durability
		haveFsnc bool
	)
	for _, kv := range parts[1:] {
		key, v, err := splitOpt(kv)
		if err != nil {
			return err
		}
		switch key {
		case "d":
			d, err = strconv.Atoi(v)
		case "k":
			k, err = strconv.Atoi(v)
		case "fsync":
			haveFsnc = true
			switch v {
			case "os":
				durOpts.Fsync = stream.FsyncOS
			case "always":
				durOpts.Fsync = stream.FsyncAlways
			case "interval":
				durOpts.Fsync = stream.FsyncInterval
			default:
				return fmt.Errorf("fsync %q (want os|always|interval)", v)
			}
		case "checkpoint":
			durOpts.CheckpointEvery, err = strconv.Atoi(v)
		case "shards":
			colOpts.Shards, err = strconv.Atoi(v)
		case "cache":
			colOpts.CacheCapacity, err = strconv.Atoi(v)
		default:
			return fmt.Errorf("unknown option %q", key)
		}
		if err != nil {
			return fmt.Errorf("option %s: %v", key, err)
		}
	}
	cfg := stream.Config{SkybandK: k}
	if haveFsnc || durOpts.CheckpointEvery != 0 {
		durOpts.Dir = dir
		cfg.Durable = &durOpts
	}
	// Create a fresh durable index when the directory has no state; the
	// d= option supplies the shape (recovery reads it from disk).
	_, err := srv.AttachDurable(name, dir, true, d, cfg, colOpts)
	return err
}

// attachCluster parses and attaches one -cluster spec:
// name=file.csv@http://w1|http://w2[,policy=...,margin=...,retries=N,worker-shards=N,cache=N].
// Workers are |-separated so the comma can keep separating options.
func attachCluster(srv *serve.Server, spec string) error {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return errors.New("want name=file.csv@worker|worker[,options]")
	}
	parts := strings.Split(rest, ",")
	path, workerList, ok := strings.Cut(parts[0], "@")
	if !ok || path == "" || workerList == "" {
		return errors.New("want name=file.csv@worker|worker[,options]")
	}
	cs := &serve.ClusterSpec{Path: path, Workers: strings.Split(workerList, "|")}
	var opts skybench.CollectionOptions
	for _, kv := range parts[1:] {
		k, v, err := splitOpt(kv)
		if err != nil {
			return err
		}
		switch k {
		case "policy":
			cs.Policy = v
		case "margin":
			var dur time.Duration
			dur, err = time.ParseDuration(v)
			cs.MarginMs = dur.Milliseconds()
		case "retries":
			cs.Retries, err = strconv.Atoi(v)
		case "worker-shards":
			cs.WorkerShards, err = strconv.Atoi(v)
		case "cache":
			opts.CacheCapacity, err = strconv.Atoi(v)
		default:
			return fmt.Errorf("unknown option %q", k)
		}
		if err != nil {
			return fmt.Errorf("option %s: %v", k, err)
		}
	}
	return attachClusterSpec(srv, name, cs, opts)
}

// attachClusterSpec realizes a ClusterSpec (from the -cluster flag or a
// wire attach): distribute the CSV's contiguous shards across the
// workers, build a coordinator over the resulting placement, and attach
// it as a cluster-backed collection the coordinator owns.
func attachClusterSpec(srv *serve.Server, name string, spec *serve.ClusterSpec, opts skybench.CollectionOptions) error {
	if spec == nil || spec.Path == "" || len(spec.Workers) == 0 {
		return fmt.Errorf("%w: cluster spec needs a csv path and at least one worker", skybench.ErrBadQuery)
	}
	policy, err := cluster.ParsePolicy(spec.Policy)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	specs, n, d, err := cluster.Distribute(ctx, spec.Path, cluster.DistributeOptions{
		Collection:   name,
		Workers:      spec.Workers,
		WorkerShards: spec.WorkerShards,
		Replace:      true,
	})
	if err != nil {
		return fmt.Errorf("distributing %s: %w", spec.Path, err)
	}
	co, err := cluster.New(cluster.Config{
		Collection: name,
		D:          d,
		Workers:    specs,
		Policy:     policy,
		Margin:     time.Duration(spec.MarginMs) * time.Millisecond,
		Retries:    spec.Retries,
		Engine:     srv.Store().Engine(),
	})
	if err != nil {
		return err
	}
	opts.CloseOnDrop = true
	if _, err := srv.Store().AttachRemote(name, co, opts); err != nil {
		co.Close()
		return err
	}
	log.Printf("cluster %s: %d rows across %d workers (policy %s)", name, n, len(specs), policy)
	return nil
}

// splitOpt splits one k=v option token.
func splitOpt(kv string) (k, v string, err error) {
	k, v, ok := strings.Cut(kv, "=")
	if !ok || k == "" || v == "" {
		return "", "", fmt.Errorf("malformed option %q (want key=value)", kv)
	}
	return k, v, nil
}
