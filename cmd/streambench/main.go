// Command streambench measures incremental skyline maintenance against
// the recompute-from-scratch alternative on a reproducible update trace.
//
// It replays a trace (generated in-process, or from a datagen -stream
// file via -input) into a stream.SkylineIndex — or a stream.Window when
// -window is set — reporting warm-up and update throughput with p50/p90/
// p99/max per-operation latency, then times sampled full Engine.Run
// recomputes over the same live set to price the recompute-per-update
// baseline the index replaces.
//
// With -wal the index runs durably: every update is written ahead to a
// segmented WAL (with periodic checkpoints) in the given directory, so
// the run also prices crash safety against the in-memory numbers. A
// killed durable run is recovered and verified by -recover, which
// restores the directory, cross-checks the restored band against a
// fresh Engine.Run over the recovered live set, and exits non-zero on
// any mismatch — the CI kill-and-recover step drives exactly that.
//
// Usage:
//
//	streambench -dist independent -n 100000 -updates 100000 -d 8
//	streambench -churn 0.2 -readers 2 -json result.json
//	streambench -window 10000 -updates 100000 -d 8
//	streambench -input trace.csv -baseline-samples 8
//	streambench -wal /tmp/sb-wal -fsync os -updates 200000
//	streambench -wal /tmp/sb-wal -recover
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"skybench"
	"skybench/internal/dataset"
	istream "skybench/internal/stream"
	"skybench/stream"
)

type result struct {
	Dist      string  `json:"dist"`
	N         int     `json:"n"`
	Updates   int     `json:"updates"`
	D         int     `json:"d"`
	Churn     float64 `json:"churn"`
	Window    int     `json:"window,omitempty"`
	K         int     `json:"skyband_k,omitempty"`
	Threads   int     `json:"threads"`
	Seed      int64   `json:"seed"`
	Threshold float64 `json:"recompute_threshold"`
	WAL       string  `json:"wal,omitempty"`
	Fsync     string  `json:"fsync,omitempty"`

	WarmSeconds    float64 `json:"warm_seconds"`
	WarmPerSec     float64 `json:"warm_ops_per_sec"`
	UpdateSeconds  float64 `json:"update_seconds"`
	UpdatePerSec   float64 `json:"update_ops_per_sec"`
	P50Micros      float64 `json:"p50_us"`
	P90Micros      float64 `json:"p90_us"`
	P99Micros      float64 `json:"p99_us"`
	MaxMicros      float64 `json:"max_us"`
	SnapshotsRead  int64   `json:"snapshots_read,omitempty"`
	Live           int     `json:"live"`
	SkylineSize    int     `json:"skyline_size"`
	Rebuilds       uint64  `json:"rebuilds"`
	Resurrections  uint64  `json:"resurrections"`
	DominanceTests uint64  `json:"dominance_tests"`
	Entered        uint64  `json:"entered"`
	Left           uint64  `json:"left"`

	BaselineSamples int     `json:"baseline_samples"`
	BaselineMeanMS  float64 `json:"baseline_mean_ms"`
	BaselinePerSec  float64 `json:"baseline_ops_per_sec"`
	Speedup         float64 `json:"speedup_vs_recompute_per_update"`
}

func main() {
	var (
		distName  = flag.String("dist", "independent", "distribution: correlated|independent|anticorrelated")
		n         = flag.Int("n", 100000, "warm-up inserts before measurement")
		updates   = flag.Int("updates", 100000, "measured update operations")
		d         = flag.Int("d", 8, "dimensionality")
		churn     = flag.Float64("churn", 0.0, "fraction of updates that delete a random live point")
		window    = flag.Int("window", 0, "sliding-window capacity (0 = unbounded index; implies insert-only trace)")
		threads   = flag.Int("threads", 0, "engine threads for recomputes (0 = all CPUs)")
		seed      = flag.Int64("seed", 42, "trace seed")
		threshold = flag.Float64("rebuild", 0, "recompute-escalation threshold (0 = default 0.5, <0 = never)")
		kband     = flag.Int("k", 1, "k-skyband parameter maintained by the index (1 = skyline)")
		readers   = flag.Int("readers", 0, "concurrent snapshot-reader goroutines during the update phase")
		samples   = flag.Int("baseline-samples", 16, "sampled Engine.Run recomputes pricing the baseline (0 = skip)")
		input     = flag.String("input", "", "replay a datagen -stream trace file instead of generating one")
		jsonOut   = flag.String("json", "", "also write the result as JSON to this path")
		walDir    = flag.String("wal", "", "durable mode: write-ahead log + checkpoints in this directory")
		fsyncStr  = flag.String("fsync", "os", "durable fsync policy: os|always|interval")
		ckEvery   = flag.Int("checkpoint-every", 0, "checkpoint after this many applied records (0 = default, <0 = never)")
		doRecover = flag.Bool("recover", false, "recover the -wal directory, verify it against a fresh recompute, and exit")
	)
	flag.Parse()

	if *doRecover {
		if *walDir == "" {
			fatal(fmt.Errorf("-recover requires -wal"))
		}
		recoverAndVerify(*walDir, *threads)
		return
	}

	var tr *istream.Trace
	dist := *distName
	if *input != "" {
		var err error
		if tr, err = istream.ReadTraceFile(*input); err != nil {
			fatal(err)
		}
		dist = "file:" + *input
		*d = tr.D
		*n = tr.Warm
		*updates = tr.Updates()
	} else {
		dd, err := dataset.ParseDistribution(*distName)
		if err != nil {
			fatal(err)
		}
		ch := *churn
		if *window > 0 {
			ch = 0 // the window generates its own deletes by eviction
		}
		tr = istream.GenerateTrace(dd, *n, *updates, *d, ch, *seed)
	}

	eng := skybench.NewEngine(*threads)
	defer eng.Close()
	cfg := stream.Config{Engine: eng, RecomputeThreshold: *threshold, SkybandK: *kband}
	if *walDir != "" {
		fs, err := parseFsync(*fsyncStr)
		if err != nil {
			fatal(err)
		}
		cfg.Durable = &stream.Durability{Dir: *walDir, Fsync: fs, CheckpointEvery: *ckEvery}
	}

	var ix *stream.SkylineIndex
	var win *stream.Window
	apply := func(op istream.Op) error { // index mode
		if op.Kind == istream.OpDelete {
			ix.Delete(stream.ID(op.Key))
			return nil
		}
		_, err := ix.Insert(op.Row)
		return err
	}
	if *window > 0 {
		var err error
		if win, err = stream.NewWindow(*window, *d, cfg); err != nil {
			fatal(err)
		}
		defer win.Close()
		apply = func(op istream.Op) error {
			if op.Kind == istream.OpDelete {
				return fmt.Errorf("window mode cannot replay explicit deletes (trace op key %d)", op.Key)
			}
			_, err := win.Push(op.Row)
			return err
		}
	} else {
		var err error
		if ix, err = stream.New(*d, cfg); err != nil {
			fatal(err)
		}
		defer ix.Close()
	}
	snapshot := func() *stream.Snapshot {
		if win != nil {
			return win.Snapshot()
		}
		return ix.Snapshot()
	}
	stats := func() stream.Stats {
		if win != nil {
			return win.Stats()
		}
		return ix.Stats()
	}

	// Trace keys map 1:1 onto index IDs (both assigned sequentially from
	// 1 in insert order); the mirror below tracks the live rows flat for
	// the baseline recomputes.
	mirror := newMirror(*d, *kband, *window)

	// Warm-up.
	warmStart := time.Now()
	for _, op := range tr.Ops[:tr.Warm] {
		if err := apply(op); err != nil {
			fatal(err)
		}
		mirror.apply(op)
	}
	warmSecs := time.Since(warmStart).Seconds()

	// Concurrent snapshot readers (if any) poll for the whole update
	// phase — they are the "many readers" half of the concurrency
	// contract and give -race runs something to bite on.
	var snapsRead atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < *readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := snapshot()
				for i := 0; i < s.Len(); i++ {
					_ = s.Row(i)[0]
				}
				snapsRead.Add(1)
			}
		}()
	}

	// Measured update phase, with sampled baseline recomputes at evenly
	// spaced positions (measured outside the update clock).
	updateOps := tr.Ops[tr.Warm:]
	lat := make([]int64, 0, len(updateOps))
	every := 0
	if *samples > 0 && len(updateOps) > 0 {
		every = max(1, len(updateOps) / *samples)
	}
	var baseTotal time.Duration
	baseRuns := 0
	var updateTotal time.Duration
	for i, op := range updateOps {
		t0 := time.Now()
		if err := apply(op); err != nil {
			fatal(err)
		}
		el := time.Since(t0)
		updateTotal += el
		lat = append(lat, el.Nanoseconds())
		mirror.apply(op)

		if every > 0 && i%every == every-1 && baseRuns < *samples {
			baseTotal += mirror.recompute(eng)
			baseRuns++
		}
	}
	close(stop)
	wg.Wait()

	st := stats()
	snap := snapshot()
	// Report the trace's actual delete fraction, not the flag: window
	// mode forces churn to 0 (eviction generates the deletes) and
	// -input traces carry their own mix.
	effChurn := 0.0
	if u := tr.Updates(); u > 0 {
		dels := 0
		for _, op := range updateOps {
			if op.Kind == istream.OpDelete {
				dels++
			}
		}
		effChurn = float64(dels) / float64(u)
	}
	res := result{
		Dist: dist, N: *n, Updates: *updates, D: *d, Churn: effChurn,
		K:      *kband,
		Window: *window, Threads: eng.Threads(), Seed: *seed,
		Threshold:     *threshold,
		WAL:           *walDir,
		Fsync:         fsyncName(*walDir, *fsyncStr),
		WarmSeconds:   warmSecs,
		UpdateSeconds: updateTotal.Seconds(),
		SnapshotsRead: snapsRead.Load(),
		Live:          st.Live, SkylineSize: snap.Len(),
		Rebuilds: st.Rebuilds, Resurrections: st.Resurrections,
		DominanceTests: st.DominanceTests,
		Entered:        st.Entered, Left: st.Left,
		BaselineSamples: baseRuns,
	}
	if tr.Warm > 0 && warmSecs > 0 {
		res.WarmPerSec = float64(tr.Warm) / warmSecs
	}
	if len(lat) > 0 && updateTotal > 0 {
		res.UpdatePerSec = float64(len(lat)) / updateTotal.Seconds()
		slices.Sort(lat)
		res.P50Micros = percentile(lat, 0.50)
		res.P90Micros = percentile(lat, 0.90)
		res.P99Micros = percentile(lat, 0.99)
		res.MaxMicros = float64(lat[len(lat)-1]) / 1e3
	}
	if baseRuns > 0 {
		mean := baseTotal / time.Duration(baseRuns)
		res.BaselineMeanMS = float64(mean.Nanoseconds()) / 1e6
		res.BaselinePerSec = 1 / mean.Seconds()
		if res.BaselinePerSec > 0 {
			res.Speedup = res.UpdatePerSec / res.BaselinePerSec
		}
	}

	report(res)
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// percentile interpolates the q-quantile of sorted nanosecond latencies,
// in microseconds.
func percentile(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := min(lo+1, len(sorted)-1)
	frac := pos - float64(lo)
	return (float64(sorted[lo])*(1-frac) + float64(sorted[hi])*frac) / 1e3
}

// mirror tracks the live rows flat so baseline recomputes see exactly
// the state the index holds. Unbounded mode swap-removes by key; window
// mode is a fixed-size ring (evict oldest = overwrite one slot), since
// a window trace never carries explicit deletes.
type mirror struct {
	d      int
	k      int // band parameter the baseline recompute must match
	window int
	vals   []float64
	keys   []uint64
	at     map[uint64]int // unbounded mode only
	head   int            // window mode only
	count  int
}

func newMirror(d, k, window int) *mirror {
	mr := &mirror{d: d, k: k, window: window}
	if window > 0 {
		mr.vals = make([]float64, window*d)
		mr.keys = make([]uint64, window)
	} else {
		mr.at = make(map[uint64]int)
	}
	return mr
}

func (mr *mirror) apply(op istream.Op) {
	if mr.window > 0 {
		if op.Kind != istream.OpInsert {
			return // the driver already rejected deletes in window mode
		}
		slot := (mr.head + mr.count) % mr.window
		if mr.count == mr.window {
			slot = mr.head // overwrite the evicted oldest
			mr.head = (mr.head + 1) % mr.window
		} else {
			mr.count++
		}
		mr.keys[slot] = op.Key
		copy(mr.vals[slot*mr.d:(slot+1)*mr.d], op.Row)
		return
	}
	switch op.Kind {
	case istream.OpInsert:
		mr.at[op.Key] = len(mr.keys)
		mr.keys = append(mr.keys, op.Key)
		mr.vals = append(mr.vals, op.Row...)
		mr.count++
	case istream.OpDelete:
		i, ok := mr.at[op.Key]
		if !ok {
			return
		}
		last := len(mr.keys) - 1
		mr.keys[i] = mr.keys[last]
		mr.at[mr.keys[i]] = i
		copy(mr.vals[i*mr.d:(i+1)*mr.d], mr.vals[last*mr.d:(last+1)*mr.d])
		mr.keys = mr.keys[:last]
		mr.vals = mr.vals[:last*mr.d]
		delete(mr.at, op.Key)
		mr.count--
	}
}

// recompute prices one from-scratch skyline over the current live set —
// the unit of the recompute-per-update baseline.
func (mr *mirror) recompute(eng *skybench.Engine) time.Duration {
	n := mr.count
	if n == 0 {
		return 0
	}
	// Copy (un-rotating the window ring) so the Dataset's adopted
	// storage is never written again — the mirror keeps mutating after
	// this sample.
	flat := make([]float64, 0, n*mr.d)
	if mr.window > 0 {
		tail := min(mr.window-mr.head, n)
		flat = append(flat, mr.vals[mr.head*mr.d:(mr.head+tail)*mr.d]...)
		flat = append(flat, mr.vals[:(n-tail)*mr.d]...)
	} else {
		flat = append(flat, mr.vals...)
	}
	ds, err := skybench.DatasetFromFlat(flat, n, mr.d)
	if err != nil {
		fatal(err)
	}
	q := skybench.Query{}
	if mr.k > 1 {
		q.SkybandK = mr.k
	}
	t0 := time.Now()
	if _, err := eng.Run(context.Background(), ds, q); err != nil {
		fatal(err)
	}
	return time.Since(t0)
}

func report(r result) {
	fmt.Printf("streambench: %s n=%d updates=%d d=%d churn=%.2f", r.Dist, r.N, r.Updates, r.D, r.Churn)
	if r.K > 1 {
		fmt.Printf(" k=%d", r.K)
	}
	if r.Window > 0 {
		fmt.Printf(" window=%d", r.Window)
	}
	fmt.Printf(" threads=%d (GOMAXPROCS=%d)\n", r.Threads, runtime.GOMAXPROCS(0))
	fmt.Printf("  warm:     %d inserts in %.3fs (%.0f ops/s)\n", r.N, r.WarmSeconds, r.WarmPerSec)
	fmt.Printf("  updates:  %d ops in %.3fs (%.0f ops/s)  p50=%.1fµs p90=%.1fµs p99=%.1fµs max=%.1fµs\n",
		r.Updates, r.UpdateSeconds, r.UpdatePerSec, r.P50Micros, r.P90Micros, r.P99Micros, r.MaxMicros)
	fmt.Printf("  state:    live=%d skyline=%d rebuilds=%d resurrections=%d entered=%d left=%d dts=%d\n",
		r.Live, r.SkylineSize, r.Rebuilds, r.Resurrections, r.Entered, r.Left, r.DominanceTests)
	if r.WAL != "" {
		fmt.Printf("  durable:  wal=%s fsync=%s\n", r.WAL, r.Fsync)
	}
	if r.SnapshotsRead > 0 {
		fmt.Printf("  readers:  %d snapshots read concurrently\n", r.SnapshotsRead)
	}
	if r.BaselineSamples > 0 {
		fmt.Printf("  baseline: recompute-per-update via Engine.Run = %.2fms/op (%.1f ops/s, %d samples)\n",
			r.BaselineMeanMS, r.BaselinePerSec, r.BaselineSamples)
		fmt.Printf("  speedup:  %.0fx incremental vs recompute-per-update\n", r.Speedup)
	}
}

// parseFsync maps the -fsync flag onto the stream package's policies.
func parseFsync(s string) (stream.Fsync, error) {
	switch s {
	case "os":
		return stream.FsyncOS, nil
	case "always":
		return stream.FsyncAlways, nil
	case "interval":
		return stream.FsyncInterval, nil
	}
	return 0, fmt.Errorf("unknown -fsync policy %q (want os|always|interval)", s)
}

// fsyncName reports the fsync policy for the result record: empty when
// the run was not durable (so the field is omitted from JSON).
func fsyncName(walDir, fsync string) string {
	if walDir == "" {
		return ""
	}
	return fsync
}

// recoverAndVerify restores a durable directory and cross-checks the
// recovered band against a fresh Engine.Run over the recovered live
// set. Any divergence — recovery error, corrupt state, band mismatch —
// exits non-zero; this is the oracle the CI kill-and-recover step
// relies on.
func recoverAndVerify(dir string, threads int) {
	eng := skybench.NewEngine(threads)
	defer eng.Close()

	t0 := time.Now()
	ix, err := stream.Recover(dir, stream.Config{Engine: eng})
	if err != nil {
		fatal(err)
	}
	defer ix.Close()
	recSecs := time.Since(t0).Seconds()

	vals, ids, _ := ix.LiveSnapshot()
	snap := ix.Snapshot()
	fmt.Printf("streambench: recovered %s in %.3fs: live=%d band=%d d=%d k=%d epoch=%d\n",
		dir, recSecs, len(ids), snap.Len(), ix.D(), ix.BandK(), ix.LiveEpoch())

	if len(ids) == 0 {
		if snap.Len() != 0 {
			fatal(fmt.Errorf("recovered band has %d entries over an empty live set", snap.Len()))
		}
		fmt.Println("  verify:   empty live set, nothing to cross-check")
		return
	}

	ds, err := skybench.DatasetFromFlat(vals, len(ids), ix.D())
	if err != nil {
		fatal(err)
	}
	q := skybench.Query{Prefs: ix.Prefs()}
	if k := ix.BandK(); k > 1 {
		q.SkybandK = k
	}
	res, err := eng.Run(context.Background(), ds, q)
	if err != nil {
		fatal(err)
	}

	want := make(map[uint64]struct{}, len(res.Indices))
	for _, i := range res.Indices {
		want[ids[i]] = struct{}{}
	}
	if len(want) != snap.Len() {
		fatal(fmt.Errorf("recovered band has %d entries, fresh recompute found %d", snap.Len(), len(want)))
	}
	for i := 0; i < snap.Len(); i++ {
		if _, ok := want[uint64(snap.ID(i))]; !ok {
			fatal(fmt.Errorf("recovered band contains id %d, which a fresh recompute excludes", snap.ID(i)))
		}
	}
	fmt.Printf("  verify:   band matches a fresh recompute over %d live points\n", len(ids))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streambench:", err)
	os.Exit(1)
}
