// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section VII). Each experiment prints the same rows/series
// as the corresponding figure or table; EXPERIMENTS.md records
// paper-vs-measured comparisons.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig5
//	experiments -exp all -n 50000 -dmax 12 -tmax 8
//	experiments -exp fig6 -paperscale   # hours of runtime; see DESIGN.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"skybench/internal/bench"
)

func main() {
	var (
		expName    = flag.String("exp", "all", "experiment name (see -list) or 'all'")
		list       = flag.Bool("list", false, "list available experiments")
		n          = flag.Int("n", 0, "override base cardinality")
		d          = flag.Int("d", 0, "override base dimensionality")
		dmax       = flag.Int("dmax", 0, "cap the dimensionality sweep")
		tmax       = flag.Int("tmax", 0, "override max thread count")
		reps       = flag.Int("reps", 1, "repetitions averaged per cell")
		seed       = flag.Int64("seed", 42, "dataset seed")
		realScale  = flag.Float64("realscale", 0, "real-data stand-in scale (0,1]")
		paperScale = flag.Bool("paperscale", false, "use the paper's original workload sizes")
		maxList    = flag.String("max", "", "comma-separated dimension indices to maximize in every workload")
		dimsList   = flag.String("dims", "", "comma-separated dimension indices to keep (subspace workloads)")
		updates    = flag.Int("updates", 0, "override the stream experiment's measured update count")
		churn      = flag.Float64("churn", -1, "override the stream experiment's delete fraction [0,1]")
		kList      = flag.String("k", "", "comma-separated k sweep for the skyband experiment (default 1,2,4,8,16)")
		streamK    = flag.Int("streamk", 0, "band parameter maintained by the stream experiment (0/1 = skyline)")
		shardList  = flag.String("shards", "", "comma-separated shard-count sweep for the shard experiment (default 1,2,4,8)")
	)
	flag.Parse()

	if *list {
		for _, exp := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", exp.Name, exp.Desc)
		}
		return
	}

	cfg := bench.Default()
	if *paperScale {
		cfg = bench.PaperScale()
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *d > 0 {
		cfg.D = *d
	}
	if *dmax > 0 {
		var dims []int
		for _, x := range cfg.Dims {
			if x <= *dmax {
				dims = append(dims, x)
			}
		}
		cfg.Dims = dims
	}
	if *tmax > 0 {
		cfg.MaxThreads = *tmax
		var ts []int
		for _, t := range cfg.Threads {
			if t <= *tmax {
				ts = append(ts, t)
			}
		}
		cfg.Threads = ts
	}
	cfg.Reps = *reps
	cfg.Seed = *seed
	if *realScale > 0 {
		cfg.RealScale = *realScale
	}
	if *updates > 0 {
		cfg.StreamUpdates = *updates
	}
	if *churn >= 0 {
		if *churn > 1 {
			fmt.Fprintf(os.Stderr, "experiments: -churn must be in [0,1], got %v\n", *churn)
			os.Exit(1)
		}
		cfg.StreamChurn = *churn
	}
	var err error
	if cfg.MaxDims, err = parseDimList(*maxList); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: -max: %v\n", err)
		os.Exit(1)
	}
	if cfg.SubDims, err = parseDimList(*dimsList); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: -dims: %v\n", err)
		os.Exit(1)
	}
	if cfg.SkybandKs, err = parseIntList(*kList, "k value"); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: -k: %v\n", err)
		os.Exit(1)
	}
	for _, k := range cfg.SkybandKs {
		if k < 1 {
			fmt.Fprintf(os.Stderr, "experiments: -k entries must be >= 1, got %d\n", k)
			os.Exit(1)
		}
	}
	cfg.StreamSkybandK = *streamK
	if cfg.Shards, err = parseIntList(*shardList, "shard count"); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: -shards: %v\n", err)
		os.Exit(1)
	}
	for _, p := range cfg.Shards {
		if p < 1 {
			fmt.Fprintf(os.Stderr, "experiments: -shards entries must be >= 1, got %d\n", p)
			os.Exit(1)
		}
	}

	ran := false
	for _, exp := range bench.Experiments() {
		if *expName == "all" || strings.EqualFold(*expName, exp.Name) {
			exp.Run(cfg, os.Stdout)
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *expName)
		os.Exit(1)
	}
}

// parseDimList parses a comma-separated list of dimension indices (""
// is nil). Unlike cmd/skybench's strict parseDims, indices are not
// range-checked here: each experiment picks its own dimensionality, so
// the harness validates per sweep (and refuses empty subspaces).
func parseDimList(list string) ([]int, error) {
	return parseIntList(list, "dimension index")
}

// parseIntList parses a comma-separated list of non-negative integers,
// naming the entries in diagnostics ("" is nil).
func parseIntList(list, what string) ([]int, error) {
	if list == "" {
		return nil, nil
	}
	parts := strings.Split(list, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad %s %q", what, p)
		}
		if v < 0 {
			return nil, fmt.Errorf("negative %s %d", what, v)
		}
		out = append(out, v)
	}
	return out, nil
}
