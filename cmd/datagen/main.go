// Command datagen writes synthetic skyline workloads (and the real-data
// stand-ins) to CSV files for use with cmd/skybench -input or external
// tools. With -stream it instead emits a timestamped update trace (warm
// inserts followed by an insert/delete mix of configurable churn) in the
// format cmd/streambench -input replays, so benchmarks and tests share
// byte-identical workloads.
//
// Usage:
//
//	datagen -dist anticorrelated -n 1000000 -d 12 -o anti_1m_12.csv
//	datagen -real weather -scale 0.25 -o weather_quarter.csv
//	datagen -stream -n 100000 -updates 100000 -churn 0.2 -d 8 -o trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/stream"
)

func main() {
	var (
		distName = flag.String("dist", "independent", "distribution: correlated|independent|anticorrelated")
		n        = flag.Int("n", 100000, "cardinality (with -stream: warm-up inserts)")
		d        = flag.Int("d", 8, "dimensionality")
		seed     = flag.Int64("seed", 42, "generator seed")
		realName = flag.String("real", "", "real-data stand-in instead: nba|house|weather")
		scale    = flag.Float64("scale", 1, "scale factor for -real (0,1]")
		levels   = flag.Int("quantize", 0, "quantize to this many value levels (0 = off)")
		streamTr = flag.Bool("stream", false, "emit a timestamped update trace instead of a dataset")
		updates  = flag.Int("updates", 100000, "with -stream: operations after warm-up")
		churn    = flag.Float64("churn", 0.2, "with -stream: fraction of updates that delete a random live point")
		out      = flag.String("o", "", "output CSV path (required)")
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("-o output path is required"))
	}

	if *streamTr {
		if *realName != "" {
			fatal(fmt.Errorf("-stream and -real are mutually exclusive"))
		}
		if *churn < 0 || *churn > 1 {
			fatal(fmt.Errorf("-churn must be in [0,1], got %v", *churn))
		}
		dist, err := dataset.ParseDistribution(*distName)
		if err != nil {
			fatal(err)
		}
		tr := stream.GenerateTrace(dist, *n, *updates, *d, *churn, *seed)
		if err := stream.WriteTraceFile(*out, tr); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace: %d warm inserts + %d updates (churn %.2f), d=%d to %s\n",
			tr.Warm, tr.Updates(), *churn, tr.D, *out)
		return
	}

	var m point.Matrix
	switch *realName {
	case "":
		dist, err := dataset.ParseDistribution(*distName)
		if err != nil {
			fatal(err)
		}
		m = dataset.Generate(dist, *n, *d, *seed)
		if *levels > 0 {
			dataset.Quantize(m, *levels)
		}
	case "nba":
		m = dataset.NBA.Load(*scale)
	case "house":
		m = dataset.House.Load(*scale)
	case "weather":
		m = dataset.Weather.Load(*scale)
	default:
		fatal(fmt.Errorf("unknown real dataset %q", *realName))
	}

	if err := dataset.WriteFile(*out, m); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d points × %d dims to %s\n", m.N(), m.D(), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
