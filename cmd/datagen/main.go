// Command datagen writes synthetic skyline workloads (and the real-data
// stand-ins) to CSV files for use with cmd/skybench -input or external
// tools.
//
// Usage:
//
//	datagen -dist anticorrelated -n 1000000 -d 12 -o anti_1m_12.csv
//	datagen -real weather -scale 0.25 -o weather_quarter.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"skybench/internal/dataset"
	"skybench/internal/point"
)

func main() {
	var (
		distName = flag.String("dist", "independent", "distribution: correlated|independent|anticorrelated")
		n        = flag.Int("n", 100000, "cardinality")
		d        = flag.Int("d", 8, "dimensionality")
		seed     = flag.Int64("seed", 42, "generator seed")
		realName = flag.String("real", "", "real-data stand-in instead: nba|house|weather")
		scale    = flag.Float64("scale", 1, "scale factor for -real (0,1]")
		levels   = flag.Int("quantize", 0, "quantize to this many value levels (0 = off)")
		out      = flag.String("o", "", "output CSV path (required)")
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("-o output path is required"))
	}

	var m point.Matrix
	switch *realName {
	case "":
		dist, err := dataset.ParseDistribution(*distName)
		if err != nil {
			fatal(err)
		}
		m = dataset.Generate(dist, *n, *d, *seed)
		if *levels > 0 {
			dataset.Quantize(m, *levels)
		}
	case "nba":
		m = dataset.NBA.Load(*scale)
	case "house":
		m = dataset.House.Load(*scale)
	case "weather":
		m = dataset.Weather.Load(*scale)
	default:
		fatal(fmt.Errorf("unknown real dataset %q", *realName))
	}

	if err := dataset.WriteFile(*out, m); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d points × %d dims to %s\n", m.N(), m.D(), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
