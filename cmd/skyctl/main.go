// Command skyctl is the command-line client for skyserved, built on the
// serve/client package.
//
//	skyctl -addr http://localhost:8080 ls
//	skyctl query hotels -prefs min,min -k 2 -top 5
//	skyctl insert ticks -p 0.1,0.9,0.3 -p 0.5,0.2,0.8
//	skyctl del ticks 7
//	skyctl subscribe ticks -n 10
//	skyctl attach prices -dir /var/lib/skybench/prices -d 4
//	skyctl drop prices
//	skyctl metrics
//	skyctl cluster ls
//	skyctl cluster status hotels
//	skyctl cluster attach hotels -file hotels.csv -workers http://w1:8081,http://w2:8082
//
// Every non-2xx response prints the server's error code and message and
// exits non-zero.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"skybench/serve"
	"skybench/serve/client"
	"skybench/serve/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("skyctl: ")

	addr := flag.String("addr", envOr("SKYSERVED_ADDR", "http://localhost:8080"), "skyserved base URL (or $SKYSERVED_ADDR)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	c := client.New(*addr)
	cmd, args := flag.Arg(0), flag.Args()[1:]

	var err error
	switch cmd {
	case "ls":
		err = cmdList(c)
	case "info":
		err = cmdInfo(c, args)
	case "query":
		err = cmdQuery(c, args)
	case "insert":
		err = cmdInsert(c, args)
	case "del":
		err = cmdDelete(c, args)
	case "subscribe":
		err = cmdSubscribe(c, args)
	case "attach":
		err = cmdAttach(c, args)
	case "drop":
		err = cmdDrop(c, args)
	case "metrics":
		err = cmdMetrics(c, args)
	case "cluster":
		err = cmdCluster(c, args)
	default:
		log.Printf("unknown command %q", cmd)
		usage()
		os.Exit(2)
	}
	// Shed idle keep-alive connections before exiting (before the Fatal
	// below, which skips defers): a stranded conn would otherwise hold
	// up a draining server's graceful shutdown.
	c.Close()
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: skyctl [-addr URL] <command> [flags]

commands:
  ls                         list collections
  info <collection>          describe one collection
  query <collection>         run a skyline / k-skyband / top-k query
  insert <collection>        insert points (-p x,y,... repeatable, or -csv file)
  del <collection> <id>      delete one point by stream ID
  subscribe <collection>     stream skyline delta events
  attach <collection>        attach a collection (-file csv | -dir waldir)
  drop <collection>          drop a collection
  metrics                    dump the Prometheus metrics text (-lint to validate it)
  cluster ls                 list cluster-backed collections on the coordinator
  cluster status <name>      show a cluster collection's placement and worker health
  cluster attach <name>      attach a cluster collection (-file csv -workers url,url)
`)
	flag.PrintDefaults()
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// collectionArg peels the leading collection name off a subcommand's
// arguments.
func collectionArg(cmd string, args []string) (string, []string, error) {
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return "", nil, fmt.Errorf("usage: skyctl %s <collection> [flags]", cmd)
	}
	return args[0], args[1:], nil
}

func cmdList(c *client.Client) error {
	infos, err := c.List(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %10s %4s %8s %7s %7s\n", "NAME", "N", "D", "EPOCH", "SHARDS", "KIND")
	for _, in := range infos {
		kind := "static"
		switch {
		case in.Cluster != nil:
			kind = "cluster"
		case in.StreamBacked:
			kind = "stream"
			if in.Durable {
				kind = "durable"
			}
		}
		fmt.Printf("%-20s %10d %4d %8d %7d %7s\n", in.Name, in.N, in.D, in.Epoch, in.Shards, kind)
	}
	return nil
}

func cmdInfo(c *client.Client, args []string) error {
	name, _, err := collectionArg("info", args)
	if err != nil {
		return err
	}
	info, err := c.Info(context.Background(), name)
	if err != nil {
		return err
	}
	return printJSON(info)
}

func cmdQuery(c *client.Client, args []string) error {
	name, rest, err := collectionArg("query", args)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	algo := fs.String("algo", "", "algorithm (hybrid, qflow, ...)")
	prefs := fs.String("prefs", "", "comma-separated per-dimension preferences (min,max,ignore)")
	k := fs.Int("k", 0, "k-skyband parameter (0 = plain skyline)")
	top := fs.Int("top", 0, "return only the top-N least-dominated points")
	stale := fs.Bool("stale", false, "allow a stale cached answer under overload")
	noValues := fs.Bool("no-values", false, "omit point coordinates from the response")
	trace := fs.Bool("trace", false, "request an execution trace and pretty-print it to stderr")
	timeout := fs.Duration("timeout", 0, "per-query deadline (0 = server default)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	req := &serve.QueryRequest{
		Algorithm:  *algo,
		SkybandK:   *k,
		Top:        *top,
		AllowStale: *stale,
		OmitValues: *noValues,
		Trace:      *trace,
	}
	if *prefs != "" {
		req.Prefs = strings.Split(*prefs, ",")
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := c.Query(ctx, name, req)
	if err != nil {
		return err
	}
	if *trace && res.Trace != nil {
		// The trace goes to stderr so the JSON result on stdout stays
		// machine-consumable.
		fmt.Fprintln(os.Stderr, res.Trace.String())
	}
	return printJSON(res)
}

func cmdInsert(c *client.Client, args []string) error {
	name, rest, err := collectionArg("insert", args)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("insert", flag.ExitOnError)
	var pointFlags multiFlag
	fs.Var(&pointFlags, "p", "one point as comma-separated values (repeatable)")
	csvPath := fs.String("csv", "", "read points from a headerless CSV file")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	var points [][]float64
	for _, p := range pointFlags {
		vals, err := parsePoint(p)
		if err != nil {
			return err
		}
		points = append(points, vals)
	}
	if *csvPath != "" {
		data, err := os.ReadFile(*csvPath)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			vals, err := parsePoint(line)
			if err != nil {
				return err
			}
			points = append(points, vals)
		}
	}
	if len(points) == 0 {
		return fmt.Errorf("no points given (use -p or -csv)")
	}
	ids, err := c.Insert(context.Background(), name, points)
	if err != nil {
		return err
	}
	return printJSON(serve.InsertResponse{IDs: ids})
}

func parsePoint(s string) ([]float64, error) {
	fields := strings.Split(s, ",")
	vals := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("point %q: %v", s, err)
		}
		vals[i] = v
	}
	return vals, nil
}

func cmdDelete(c *client.Client, args []string) error {
	name, rest, err := collectionArg("del", args)
	if err != nil {
		return err
	}
	if len(rest) != 1 {
		return fmt.Errorf("usage: skyctl del <collection> <id>")
	}
	id, err := strconv.ParseUint(rest[0], 10, 64)
	if err != nil {
		return fmt.Errorf("id %q: %v", rest[0], err)
	}
	if err := c.Delete(context.Background(), name, id); err != nil {
		return err
	}
	fmt.Printf("deleted %d\n", id)
	return nil
}

func cmdSubscribe(c *client.Client, args []string) error {
	name, rest, err := collectionArg("subscribe", args)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("subscribe", flag.ExitOnError)
	n := fs.Int("n", 0, "exit after this many events (0 = run until interrupted)")
	wait := fs.Duration("wait", 0, "overall subscription timeout (0 = run until interrupted)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	ctx := context.Background()
	if *wait > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *wait)
		defer cancel()
	}
	sub, err := c.Subscribe(ctx, name)
	if err != nil {
		return err
	}
	defer sub.Close()
	enc := json.NewEncoder(os.Stdout)
	for count := 0; *n == 0 || count < *n; count++ {
		ev, err := sub.Next()
		if err != nil {
			return fmt.Errorf("subscription ended: %v", err)
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

func cmdAttach(c *client.Client, args []string) error {
	name, rest, err := collectionArg("attach", args)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("attach", flag.ExitOnError)
	file := fs.String("file", "", "server-side CSV file for a static collection")
	dir := fs.String("dir", "", "server-side WAL directory for a durable stream collection")
	create := fs.Bool("create", true, "create fresh durable state when dir holds none")
	d := fs.Int("d", 0, "dimensionality (required when creating)")
	k := fs.Int("k", 0, "k-skyband parameter maintained by the stream index")
	prefs := fs.String("prefs", "", "comma-separated preferences for the stream index")
	fsync := fs.String("fsync", "", "durable fsync policy: os, always, interval")
	shards := fs.Int("shards", 0, "query-time shard count")
	cache := fs.Int("cache", 0, "result-cache capacity")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	req := &serve.AttachRequest{Shards: *shards, CacheCapacity: *cache}
	switch {
	case *file != "" && *dir == "":
		req.Static = &serve.StaticSpec{Path: *file}
	case *dir != "" && *file == "":
		req.Stream = &serve.StreamSpec{Dir: *dir, Create: *create, D: *d, SkybandK: *k, Fsync: *fsync}
		if *prefs != "" {
			req.Stream.Prefs = strings.Split(*prefs, ",")
		}
	default:
		return fmt.Errorf("exactly one of -file or -dir is required")
	}
	info, err := c.Attach(context.Background(), name, req)
	if err != nil {
		return err
	}
	return printJSON(info)
}

func cmdDrop(c *client.Client, args []string) error {
	name, _, err := collectionArg("drop", args)
	if err != nil {
		return err
	}
	if err := c.Drop(context.Background(), name); err != nil {
		return err
	}
	fmt.Printf("dropped %s\n", name)
	return nil
}

func cmdMetrics(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	lint := fs.Bool("lint", false, "validate the exposition (types, help, histogram consistency) instead of printing it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	text, err := c.Metrics(context.Background())
	if err != nil {
		return err
	}
	if *lint {
		if err := metrics.Lint(strings.NewReader(text)); err != nil {
			return fmt.Errorf("metrics lint: %v", err)
		}
		fmt.Println("metrics ok")
		return nil
	}
	fmt.Print(text)
	return nil
}

// cmdCluster dispatches the cluster subcommands: ls, status, attach.
func cmdCluster(c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: skyctl cluster <ls|status|attach> [args]")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "ls":
		return cmdClusterList(c)
	case "status":
		return cmdClusterStatus(c, rest)
	case "attach":
		return cmdClusterAttach(c, rest)
	}
	return fmt.Errorf("unknown cluster subcommand %q (want ls, status, or attach)", sub)
}

func cmdClusterList(c *client.Client) error {
	infos, err := c.List(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %10s %4s %8s %8s %8s %8s\n", "NAME", "N", "D", "WORKERS", "POLICY", "HEALTHY", "PARTIALS")
	for _, in := range infos {
		cl := in.Cluster
		if cl == nil {
			continue
		}
		healthy := 0
		for _, w := range cl.Workers {
			if w.Healthy {
				healthy++
			}
		}
		fmt.Printf("%-20s %10d %4d %8d %8s %5d/%-2d %8d\n",
			in.Name, in.N, in.D, len(cl.Workers), cl.Policy, healthy, len(cl.Workers), cl.Partials)
	}
	return nil
}

func cmdClusterStatus(c *client.Client, args []string) error {
	name, _, err := collectionArg("cluster status", args)
	if err != nil {
		return err
	}
	info, err := c.Info(context.Background(), name)
	if err != nil {
		return err
	}
	cl := info.Cluster
	if cl == nil {
		return fmt.Errorf("collection %q is not cluster-backed", name)
	}
	fmt.Printf("collection %s: n=%d d=%d epoch=%d policy=%s partials=%d\n",
		info.Name, info.N, info.D, info.Epoch, cl.Policy, cl.Partials)
	fmt.Printf("%-4s %-32s %12s %8s %9s %9s %8s\n", "ID", "ADDR", "ROWS", "UP", "QUERIES", "FAILURES", "RETRIES")
	for i, w := range cl.Workers {
		up := "up"
		if !w.Healthy {
			up = "DOWN"
		}
		fmt.Printf("%-4d %-32s [%d,%d) %8s %9d %9d %8d\n",
			i, w.Addr, w.Lo, w.Hi, up, w.Queries, w.Failures, w.Retries)
	}
	return nil
}

func cmdClusterAttach(c *client.Client, args []string) error {
	name, rest, err := collectionArg("cluster attach", args)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("cluster attach", flag.ExitOnError)
	file := fs.String("file", "", "coordinator-side CSV file to shard across the workers")
	workers := fs.String("workers", "", "comma-separated worker base URLs, in placement order")
	policy := fs.String("policy", "", "degraded-answer policy: failfast (default) or partial")
	margin := fs.Duration("margin", 0, "deadline margin reserved for the merge and return trip")
	retries := fs.Int("retries", 0, "transport retries per worker call (0 = default)")
	workerShards := fs.Int("worker-shards", 0, "in-process shard count on each worker")
	cache := fs.Int("cache", 0, "coordinator result-cache capacity")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *file == "" || *workers == "" {
		return fmt.Errorf("cluster attach needs -file and -workers")
	}
	req := &serve.AttachRequest{
		CacheCapacity: *cache,
		Cluster: &serve.ClusterSpec{
			Path:         *file,
			Workers:      strings.Split(*workers, ","),
			Policy:       *policy,
			MarginMs:     margin.Milliseconds(),
			Retries:      *retries,
			WorkerShards: *workerShards,
		},
	}
	info, err := c.Attach(context.Background(), name, req)
	if err != nil {
		return err
	}
	return printJSON(info)
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ";") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
