package skybench

import (
	"fmt"

	"skybench/internal/point"
)

// Pref states how a query treats one dimension. The dominance kernels
// only ever minimize; an Engine realizes Max and Ignore by rewriting the
// dataset once during staging (negating maximized columns, dropping
// ignored ones), so callers never negate or project columns themselves
// and the hot path stays preference-free.
type Pref int8

const (
	// Min prefers smaller values on the dimension (the default).
	Min Pref = iota
	// Max prefers larger values on the dimension.
	Max
	// Ignore excludes the dimension from dominance entirely — the
	// query's skyline is the subspace skyline over the remaining
	// dimensions.
	Ignore
)

// String returns the preference's name.
func (p Pref) String() string {
	switch p {
	case Min:
		return "min"
	case Max:
		return "max"
	case Ignore:
		return "ignore"
	}
	return fmt.Sprintf("pref(%d)", int(p))
}

// op is the single Pref → staging-transform mapping; everything that
// realizes preferences goes through it so the two can never diverge.
func (p Pref) op() (point.PrefOp, error) {
	switch p {
	case Min:
		return point.PrefKeep, nil
	case Max:
		return point.PrefNegate, nil
	case Ignore:
		return point.PrefDrop, nil
	}
	return 0, fmt.Errorf("invalid preference %d", int(p))
}

// Query describes one skyline computation over a Dataset. The zero
// value runs Hybrid with the paper's defaults, minimizing every
// dimension, on the Engine's thread budget.
type Query struct {
	// Algorithm selects the skyline algorithm (default Hybrid).
	Algorithm Algorithm
	// Prefs states the per-dimension preference. Empty means minimize
	// every dimension; otherwise it must have exactly Dataset.D entries
	// and at least one of them must not be Ignore. Result indices always
	// refer to the original dataset rows, whatever the preferences.
	Prefs []Pref
	// SkybandK generalizes the query from the skyline to the k-skyband:
	// the result is every point strictly dominated by fewer than
	// SkybandK others (under the query's preferences), with exact
	// per-point dominator counts in Result.Counts and Result.TopK
	// ranking the band. 0 and 1 both select the plain skyline path —
	// bit-identical results, no counts. Values ≥ 2 are served by the
	// Hybrid and QFlow algorithms only; other algorithms return an
	// error. Negative values are invalid.
	SkybandK int
	// Threads caps the worker count for this query (≤ 0 uses the
	// Engine's thread budget; values above it are clamped to it).
	Threads int
	// Alpha overrides the α-block size of Hybrid and QFlow (≤ 0 keeps
	// the paper's defaults: 2^10 for Hybrid, 2^13 for QFlow).
	Alpha int
	// Beta overrides Hybrid's pre-filter queue size (≤ 0 keeps β = 8).
	Beta int
	// Pivot selects Hybrid's pivot strategy (default PivotMedian).
	Pivot PivotStrategy
	// Seed drives the PivotRandom strategy deterministically.
	Seed int64
	// Progressive, when non-nil and the algorithm supports it (Hybrid,
	// QFlow), receives batches of confirmed skyline indices as blocks
	// complete. It is called on the querying goroutine. The batch slice
	// aliases internal storage that a later query recycles — it is valid
	// only for the duration of the callback; copy it to retain it.
	Progressive func(confirmed []int)
	// Ablation disables individual Hybrid design components for
	// experimentation. Production users should leave it zero.
	Ablation Ablation
	// ReuseIndices opts into the zero-copy result path: Result.Indices
	// aliases Engine-internal storage that is recycled by a later query
	// — from ANY goroutine — instead of being freshly allocated. It is
	// only meaningful when the Engine's queries are serialized (a
	// single-caller serving loop, like the legacy Context); on an Engine
	// shared by concurrent callers a recycled context can clobber the
	// aliased indices while they are being read. See the aliasing rule
	// on Result.Indices.
	ReuseIndices bool
	// Trace asks for an EXPLAIN ANALYZE-style account of the run in
	// Result.Trace (algorithm, per-phase wall clock, dominance tests,
	// prune hits, per-phase survivors; for Collection queries also
	// cache/epoch status, per-shard breakdown, and merge path). Like
	// the delivery options below it never affects which result is
	// computed or how Collections cache it; untraced queries pay
	// nothing — the trace object is only allocated when Trace is set.
	Trace bool
	// AllowStale opts a Collection query into graceful degradation:
	// when computing fresh fails with ErrOverloaded or
	// ErrDeadlineExceeded, serve the collection's last cached result for
	// this query shape — possibly computed at an earlier membership
	// epoch — with QueryResult.Stale set, instead of the error. It never
	// affects which fresh results are computed or cached, and it has no
	// effect on Engine.Run (the Engine has no cache to degrade to).
	AllowStale bool
}

// legacyQuery maps the legacy Options shape onto a Query (the
// compatibility wrappers funnel through this).
func legacyQuery(opt Options) Query {
	return Query{
		Algorithm:   opt.Algorithm,
		Threads:     opt.Threads,
		Alpha:       opt.Alpha,
		Beta:        opt.Beta,
		Pivot:       opt.Pivot,
		Seed:        opt.Seed,
		Progressive: opt.Progressive,
		Ablation:    opt.Ablation,
	}
}
