package skybench

import (
	"fmt"
	"time"

	"skybench/internal/core"
	"skybench/internal/point"
	"skybench/internal/stats"
)

// Context is a reusable computation context for services that answer many
// skyline queries: it holds a persistent worker pool and every scratch
// buffer the Hybrid and Q-Flow hot paths need, so repeated Compute calls
// reach steady state with zero allocations and no goroutine spawns.
//
// A Context is not safe for concurrent use; create one per worker
// goroutine. Result.Indices returned by a Context aliases its internal
// storage and is valid until the next Compute call on the same Context.
// Close releases the worker pool; forgotten Contexts are also cleaned up
// by the garbage collector.
//
// Algorithms other than Hybrid and QFlow fall back to the regular
// allocating path (they are baselines, not the serving hot path).
type Context struct {
	core *core.Context
	st   stats.Stats
	buf  []float64 // staging copy of Compute's [][]float64 input
}

// NewContext creates an empty Context. Buffers and the worker pool are
// sized lazily by the first Compute call.
func NewContext() *Context {
	return &Context{core: core.NewContext()}
}

// Close releases the Context's worker pool. The Context must not be used
// afterwards.
func (c *Context) Close() { c.core.Close() }

// Compute is Context-reusing Compute: identical semantics to the package
// function, but scratch state persists across calls. The input rows are
// staged into an internal flat buffer (reused, not retained); callers
// that already hold row-major data should use ComputeFlat to skip the
// copy.
func (c *Context) Compute(data [][]float64, opt Options) (Result, error) {
	if len(data) == 0 {
		return Result{}, nil
	}
	d := len(data[0])
	if d == 0 {
		return Result{}, fmt.Errorf("skybench: points must have at least one dimension")
	}
	for i, row := range data {
		if len(row) != d {
			return Result{}, fmt.Errorf("skybench: point %d has %d dimensions, want %d", i, len(row), d)
		}
	}
	if d > point.MaxDims {
		return Result{}, fmt.Errorf("skybench: at most %d dimensions supported, got %d", point.MaxDims, d)
	}
	n := len(data)
	if cap(c.buf) < n*d {
		c.buf = make([]float64, n*d)
	}
	c.buf = c.buf[:n*d]
	for i, row := range data {
		copy(c.buf[i*d:(i+1)*d], row)
	}
	return c.ComputeFlat(c.buf, n, d, opt)
}

// ComputeFlat runs the selected algorithm over n points of d dimensions
// stored row-major in vals (len(vals) must be n*d), avoiding any input
// copy. Smaller values are preferred on every dimension. For Hybrid and
// QFlow the call performs zero steady-state allocations once the Context
// is warm.
func (c *Context) ComputeFlat(vals []float64, n, d int, opt Options) (Result, error) {
	if n == 0 {
		return Result{}, nil
	}
	if d <= 0 {
		return Result{}, fmt.Errorf("skybench: points must have at least one dimension")
	}
	if len(vals) != n*d {
		return Result{}, fmt.Errorf("skybench: flat input has %d values, want n*d = %d", len(vals), n*d)
	}
	if d > point.MaxDims {
		return Result{}, fmt.Errorf("skybench: at most %d dimensions supported, got %d", point.MaxDims, d)
	}
	m := point.FromFlat(vals, n, d)
	switch opt.Algorithm {
	case Hybrid:
		c.st = stats.Stats{}
		start := time.Now()
		idx := c.core.Hybrid(m, core.HybridOptions{
			Threads:       opt.Threads,
			Alpha:         opt.Alpha,
			Pivot:         opt.Pivot.internal(),
			Beta:          opt.Beta,
			Seed:          opt.Seed,
			NoPrefilter:   opt.Ablation.NoPrefilter,
			NoMS:          opt.Ablation.NoMS,
			NoLevel2:      opt.Ablation.NoLevel2,
			NoPhase2Split: opt.Ablation.NoPhase2Split,
			Stats:         &c.st,
			Progressive:   opt.Progressive,
		})
		return assembleResult(idx, &c.st, n, time.Since(start)), nil
	case QFlow:
		c.st = stats.Stats{}
		start := time.Now()
		idx := c.core.QFlow(m, core.QFlowOptions{
			Threads:     opt.Threads,
			Alpha:       opt.Alpha,
			Stats:       &c.st,
			Progressive: opt.Progressive,
		})
		return assembleResult(idx, &c.st, n, time.Since(start)), nil
	default:
		return computeMatrix(m, opt)
	}
}
