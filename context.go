package skybench

import (
	"context"

	"skybench/internal/par"
)

// Context is the legacy reusable computation context, retained as a thin
// compatibility wrapper over the Engine/Dataset/Query API: it is a
// single-caller Engine whose queries always take the zero-copy result
// path. It keeps the persistent worker pool and every scratch buffer the
// Hybrid and Q-Flow hot paths need, so repeated Compute calls reach
// steady state with zero allocations and no goroutine spawns.
//
// A Context is not safe for concurrent use; create one per worker
// goroutine, or use an Engine, which is. Result.Indices returned by a
// Context aliases its internal storage and is valid until the next
// Compute/ComputeFlat call on the same Context (the aliasing rule on
// Result.Indices; Result.Clone detaches a result). Close releases the
// worker pool; forgotten Contexts are also cleaned up by the garbage
// collector.
//
// Algorithms other than Hybrid and QFlow fall back to the regular
// allocating path (they are baselines, not the serving hot path).
type Context struct {
	eng *Engine
	ds  Dataset   // reusable dataset header over the caller's flat data
	buf []float64 // staging copy of Compute's [][]float64 input
}

// NewContext creates an empty Context. Buffers and the worker pool are
// sized lazily by the first Compute call.
func NewContext() *Context {
	return &Context{}
}

// Close releases the Context's worker pool. The Context must not be used
// afterwards.
func (c *Context) Close() {
	if c.eng != nil {
		c.eng.Close()
		c.eng = nil
	}
}

// Compute is Context-reusing Compute: identical semantics to the package
// function, but scratch state persists across calls and the result
// aliases it (see the aliasing rule on Result.Indices). The input rows
// are staged into an internal flat buffer (reused, not retained);
// callers that already hold row-major data should use ComputeFlat to
// skip the copy.
func (c *Context) Compute(data [][]float64, opt Options) (Result, error) {
	if len(data) == 0 {
		return Result{}, nil
	}
	d, err := validateRows(data)
	if err != nil {
		return Result{}, err
	}
	n := len(data)
	if cap(c.buf) < n*d {
		c.buf = make([]float64, n*d)
	}
	c.buf = c.buf[:n*d]
	for i, row := range data {
		copy(c.buf[i*d:(i+1)*d], row)
	}
	return c.ComputeFlat(c.buf, n, d, opt)
}

// ComputeFlat runs the selected algorithm over n points of d dimensions
// stored row-major in vals (len(vals) must be n*d), avoiding any input
// copy. Smaller values are preferred on every dimension. For Hybrid and
// QFlow the call performs zero steady-state allocations once the Context
// is warm.
func (c *Context) ComputeFlat(vals []float64, n, d int, opt Options) (Result, error) {
	if n == 0 {
		return Result{}, nil
	}
	if err := validateFlat(vals, n, d); err != nil {
		return Result{}, err
	}
	// Legacy thread semantics: any requested thread count is honored.
	// The engine (and its pool) is rebuilt only when the request grows
	// past the current budget; smaller requests run on fewer workers of
	// the existing pool via Query.Threads, keeping all scratch warm.
	threads := opt.Threads
	if threads <= 0 {
		threads = par.DefaultThreads()
	}
	if c.eng == nil || threads > c.eng.threads {
		if c.eng != nil {
			c.eng.Close()
		}
		c.eng = NewEngine(threads)
	}
	// The Dataset header is rebuilt in place per call (the values are
	// not retained past the call), keeping this entry point
	// allocation-free.
	c.ds = Dataset{vals: vals, n: n, d: d}
	q := legacyQuery(opt)
	q.Threads = threads
	q.ReuseIndices = true
	return c.eng.Run(context.Background(), &c.ds, q)
}
