package skybench

import (
	"context"
	"errors"
	"fmt"

	"skybench/internal/par"
)

// Typed sentinel errors for every failure class the serving surfaces
// report. All API-boundary errors — Engine, Store/Collection, and the
// skybench/stream package — wrap exactly one of these, so callers
// branch with errors.Is instead of matching message strings:
//
//	res, err := col.Run(ctx, q)
//	switch {
//	case errors.Is(err, skybench.ErrCanceled):   // deadline or cancel
//	case errors.Is(err, skybench.ErrBadQuery):   // fix the query
//	case errors.Is(err, skybench.ErrClosed):     // handle shutdown
//	}
//
// The dynamic message carries the diagnostic detail (which dimension,
// which algorithm, …); the sentinel carries the class.
var (
	// ErrClosed reports use of an Engine, Store, Collection, or stream
	// index after its Close (or after the collection was dropped).
	ErrClosed = errors.New("skybench: used after Close")

	// ErrBadDataset reports input data that cannot form a Dataset:
	// inconsistent or unsupported dimensionality, non-finite values, or
	// a shape mismatch in the flat constructors.
	ErrBadDataset = errors.New("skybench: invalid dataset")

	// ErrBadPoint reports a single invalid point handed to a mutating
	// stream operation (wrong dimensionality or non-finite values).
	ErrBadPoint = errors.New("skybench: invalid point")

	// ErrBadQuery reports a query (or stream/collection configuration)
	// that is inconsistent with its target: wrong preference count,
	// every dimension ignored, negative or unsupported SkybandK, and
	// the like.
	ErrBadQuery = errors.New("skybench: invalid query")

	// ErrUnknownAlgorithm reports an Algorithm value or CLI name that
	// does not identify any implemented algorithm.
	ErrUnknownAlgorithm = errors.New("skybench: unknown algorithm")

	// ErrCanceled reports a query abandoned because its context was
	// canceled or its deadline passed. Errors wrapping it also wrap the
	// context's own error, so errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) keep working.
	ErrCanceled = errors.New("skybench: query canceled")

	// ErrUnknownCollection reports a Store lookup or drop of a name no
	// collection is attached under.
	ErrUnknownCollection = errors.New("skybench: unknown collection")

	// ErrDuplicateCollection reports an Attach under a name that is
	// already taken.
	ErrDuplicateCollection = errors.New("skybench: duplicate collection")

	// ErrDeadlineExceeded reports a query abandoned specifically because
	// its deadline passed (the collection's default timeout, or one the
	// caller set on the context). Errors reporting it also wrap
	// ErrCanceled and context.DeadlineExceeded, so all three errors.Is
	// spellings work.
	ErrDeadlineExceeded = errors.New("skybench: query deadline exceeded")

	// ErrOverloaded reports a query rejected by the Store's bounded
	// admission queue (StoreOptions.MaxInflight/MaxQueue): too many
	// queries already running and too many already waiting. Back off and
	// retry, or opt into a stale cached result with Query.AllowStale.
	ErrOverloaded = errors.New("skybench: store overloaded")

	// ErrQueryPanic reports a query whose execution panicked. The panic
	// is contained: its value and stack are captured in the error, only
	// the offending query fails, and the Engine, Store, and every other
	// collection stay serviceable.
	ErrQueryPanic = errors.New("skybench: query panicked")

	// ErrWorkerUnavailable reports a cluster query that could not get an
	// answer from a required worker process: transport failure after the
	// client's bounded retries, a non-query error from the worker, or a
	// worker deadline too small to attempt. Under the fail-fast policy
	// any worker failure surfaces as this error; under the partial
	// policy it surfaces only when every worker failed.
	ErrWorkerUnavailable = errors.New("skybench: cluster worker unavailable")

	// ErrEpochSkew reports cluster worker responses computed at
	// different membership epochs. Merging them would silently mix two
	// point sets, so the coordinator rejects the fan-out instead —
	// epoch-consistent stream shipping is the documented non-goal this
	// error fences off (DESIGN.md §15).
	ErrEpochSkew = errors.New("skybench: cluster epoch skew across workers")

	// ErrCorruptWAL reports durable stream state that cannot be
	// recovered: a write-ahead-log record damaged before the final torn
	// frame, a checkpoint failing its integrity check, or recovered
	// state inconsistent with its own checkpoint. (A torn final record
	// is NOT corruption — crashes legitimately tear the last frame, and
	// recovery truncates it.)
	ErrCorruptWAL = errors.New("skybench: corrupt write-ahead log")
)

// canceledErr wraps a context error so it satisfies
// errors.Is(err, ErrCanceled) and errors.Is(err, cause) — and, when the
// cause is a missed deadline, errors.Is(err, ErrDeadlineExceeded) too.
func canceledErr(cause error) error {
	if errors.Is(cause, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w: %w", ErrCanceled, ErrDeadlineExceeded, cause)
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// panicErr converts a recovered panic value into an ErrQueryPanic error
// carrying the panic payload and the captured stack. Panics that
// crossed a parallel-region barrier arrive as *par.WorkerPanic with the
// worker's own stack; everything else gets the recovering goroutine's.
func panicErr(v any, stack []byte) error {
	if wp, ok := v.(*par.WorkerPanic); ok {
		return fmt.Errorf("%w: %v\n%s", ErrQueryPanic, wp.Value, wp.Stack)
	}
	return fmt.Errorf("%w: %v\n%s", ErrQueryPanic, v, stack)
}
