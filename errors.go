package skybench

import (
	"errors"
	"fmt"
)

// Typed sentinel errors for every failure class the serving surfaces
// report. All API-boundary errors — Engine, Store/Collection, and the
// skybench/stream package — wrap exactly one of these, so callers
// branch with errors.Is instead of matching message strings:
//
//	res, err := col.Run(ctx, q)
//	switch {
//	case errors.Is(err, skybench.ErrCanceled):   // deadline or cancel
//	case errors.Is(err, skybench.ErrBadQuery):   // fix the query
//	case errors.Is(err, skybench.ErrClosed):     // handle shutdown
//	}
//
// The dynamic message carries the diagnostic detail (which dimension,
// which algorithm, …); the sentinel carries the class.
var (
	// ErrClosed reports use of an Engine, Store, Collection, or stream
	// index after its Close (or after the collection was dropped).
	ErrClosed = errors.New("skybench: used after Close")

	// ErrBadDataset reports input data that cannot form a Dataset:
	// inconsistent or unsupported dimensionality, non-finite values, or
	// a shape mismatch in the flat constructors.
	ErrBadDataset = errors.New("skybench: invalid dataset")

	// ErrBadPoint reports a single invalid point handed to a mutating
	// stream operation (wrong dimensionality or non-finite values).
	ErrBadPoint = errors.New("skybench: invalid point")

	// ErrBadQuery reports a query (or stream/collection configuration)
	// that is inconsistent with its target: wrong preference count,
	// every dimension ignored, negative or unsupported SkybandK, and
	// the like.
	ErrBadQuery = errors.New("skybench: invalid query")

	// ErrUnknownAlgorithm reports an Algorithm value or CLI name that
	// does not identify any implemented algorithm.
	ErrUnknownAlgorithm = errors.New("skybench: unknown algorithm")

	// ErrCanceled reports a query abandoned because its context was
	// canceled or its deadline passed. Errors wrapping it also wrap the
	// context's own error, so errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) keep working.
	ErrCanceled = errors.New("skybench: query canceled")

	// ErrUnknownCollection reports a Store lookup or drop of a name no
	// collection is attached under.
	ErrUnknownCollection = errors.New("skybench: unknown collection")

	// ErrDuplicateCollection reports an Attach under a name that is
	// already taken.
	ErrDuplicateCollection = errors.New("skybench: duplicate collection")
)

// canceledErr wraps a context error so it satisfies both
// errors.Is(err, ErrCanceled) and errors.Is(err, cause).
func canceledErr(cause error) error {
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}
