package skybench_test

import (
	"context"
	"errors"
	"testing"

	"skybench"
	"skybench/stream"
)

// TestCollectionStatsStatic: Stats on a static collection reports shape,
// sharding, cache counters, and a zero epoch, in one coherent struct.
func TestCollectionStatsStatic(t *testing.T) {
	st := skybench.NewStore(2)
	defer st.Close()
	rows := storeTestData(t, "independent", 300, 3, 21)
	ds, err := skybench.NewDataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	col, err := st.Attach("hotels", ds, skybench.CollectionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}

	s, err := col.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "hotels" || s.N != 300 || s.D != 3 || s.Shards != 2 || s.StreamBacked || s.Epoch != 0 {
		t.Fatalf("static stats = %+v", s)
	}
	if s.Inflight != 0 {
		t.Fatalf("idle collection reports inflight %d", s.Inflight)
	}

	// Cache counters flow through: one miss, then one hit.
	ctx := context.Background()
	if _, err := col.Run(ctx, skybench.Query{}); err != nil {
		t.Fatal(err)
	}
	if _, err := col.Run(ctx, skybench.Query{}); err != nil {
		t.Fatal(err)
	}
	s, err = col.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Cache.Hits != 1 || s.Cache.Misses != 1 || s.Cache.Entries != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss / 1 entry", s.Cache)
	}
}

// TestCollectionStatsStream: a stream-backed collection's Stats tracks
// the live point count and epoch without forcing a materialization, and
// a dropped collection still describes itself while erroring.
func TestCollectionStatsStream(t *testing.T) {
	st := skybench.NewStore(2)
	defer st.Close()
	ix, err := stream.New(2, stream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	col, err := st.AttachStream("live", ix, skybench.CollectionOptions{CloseOnDrop: true})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ix.InsertBatch([][]float64{{1, 9}, {9, 1}, {5, 5}}); err != nil {
		t.Fatal(err)
	}
	s, err := col.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !s.StreamBacked || s.N != 3 || s.D != 2 {
		t.Fatalf("stream stats = %+v", s)
	}
	if s.Epoch != ix.LiveEpoch() {
		t.Fatalf("stats epoch %d, index live epoch %d", s.Epoch, ix.LiveEpoch())
	}

	if _, err := ix.Insert([]float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	s2, err := col.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s2.N != 4 || s2.Epoch <= s.Epoch {
		t.Fatalf("after insert: %+v (was epoch %d)", s2, s.Epoch)
	}

	if err := st.Drop("live"); err != nil {
		t.Fatal(err)
	}
	s3, err := col.Stats()
	if !errors.Is(err, skybench.ErrClosed) {
		t.Fatalf("Stats on dropped collection: err=%v, want ErrClosed", err)
	}
	if s3.Name != "live" {
		t.Fatalf("dropped Stats lost identity: %+v", s3)
	}
}

// TestStoreNamesSorted: Names must enumerate in ascending lexicographic
// order regardless of attach order.
func TestStoreNamesSorted(t *testing.T) {
	st := skybench.NewStore(1)
	defer st.Close()
	rows := storeTestData(t, "independent", 10, 2, 22)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		ds, err := skybench.NewDataset(rows)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Attach(name, ds, skybench.CollectionOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	got := st.Names()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}
