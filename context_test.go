package skybench_test

import (
	"testing"

	"skybench"
)

func contextTestData(t testing.TB, n, d int) [][]float64 {
	t.Helper()
	data, err := skybench.GenerateDataset("independent", n, d, 42)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestContextMatchesCompute cross-checks the reusable Context against the
// one-shot Compute path for both hot-path algorithms and a baseline
// (which takes the fallback path).
func TestContextMatchesCompute(t *testing.T) {
	ctx := skybench.NewContext()
	defer ctx.Close()
	for _, alg := range []skybench.Algorithm{skybench.Hybrid, skybench.QFlow, skybench.SFS} {
		for _, n := range []int{1, 100, 5000} {
			data := contextTestData(t, n, 6)
			opt := skybench.Options{Algorithm: alg, Threads: 4}
			want, err := skybench.Compute(data, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ctx.Compute(data, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIndexSet(got.Indices, want.Indices) {
				t.Fatalf("alg=%s n=%d: context selects %d points, one-shot selects %d",
					alg, n, len(got.Indices), len(want.Indices))
			}
		}
	}
}

// TestContextComputeFlat checks the zero-copy entry point and its input
// validation.
func TestContextComputeFlat(t *testing.T) {
	ctx := skybench.NewContext()
	defer ctx.Close()
	data := contextTestData(t, 1000, 5)
	flat := make([]float64, 0, 5000)
	for _, row := range data {
		flat = append(flat, row...)
	}
	want, err := skybench.Compute(data, skybench.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ctx.ComputeFlat(flat, 1000, 5, skybench.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIndexSet(got.Indices, want.Indices) {
		t.Fatal("ComputeFlat disagrees with Compute")
	}
	if _, err := ctx.ComputeFlat(flat, 999, 5, skybench.Options{}); err == nil {
		t.Error("ComputeFlat accepted a mismatched n*d")
	}
	if _, err := ctx.ComputeFlat(flat[:0], 0, 5, skybench.Options{}); err != nil {
		t.Errorf("ComputeFlat rejected an empty input: %v", err)
	}
}

// TestContextComputeZeroAlloc is the issue's acceptance guard at the
// public API: a warm Context serving repeated queries must not allocate,
// for either hot-path algorithm, including the [][]float64 staging copy.
func TestContextComputeZeroAlloc(t *testing.T) {
	ctx := skybench.NewContext()
	defer ctx.Close()
	data := contextTestData(t, 20000, 8)
	for _, alg := range []skybench.Algorithm{skybench.Hybrid, skybench.QFlow} {
		opt := skybench.Options{Algorithm: alg, Threads: 4}
		if _, err := ctx.Compute(data, opt); err != nil { // warm scratch
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := ctx.Compute(data, opt); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("alg=%s: Context.Compute allocates %.1f per call, want 0", alg, allocs)
		}
	}
}

func sameIndexSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]bool, len(a))
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		if !seen[v] {
			return false
		}
	}
	return true
}
