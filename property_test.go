package skybench_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"skybench"

	"skybench/internal/point"
	"skybench/internal/verify"
)

// Property: all nine algorithms agree with the brute-force oracle and
// with each other on arbitrary small grid datasets (ties, duplicates,
// and dominance chains included).
func TestPropertyAllAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(90)
		d := 1 + rng.Intn(5)
		rows := make([][]float64, n)
		for i := range rows {
			row := make([]float64, d)
			for j := range row {
				row[j] = float64(rng.Intn(4))
			}
			rows[i] = row
		}
		want := verify.BruteForce(point.FromRows(rows))
		for _, alg := range skybench.Algorithms {
			res, err := skybench.Compute(rows, skybench.Options{
				Algorithm: alg,
				Threads:   1 + rng.Intn(4),
				Alpha:     1 + rng.Intn(64),
			})
			if err != nil {
				return false
			}
			if !verify.SameSkyline(res.Indices, want) {
				t.Logf("seed=%d alg=%v: got %d points, want %d", seed, alg, len(res.Indices), len(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the skyline is idempotent — computing the skyline of the
// skyline returns every point (all skyline points are mutually
// non-dominating by construction).
func TestPropertySkylineIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(120)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{float64(rng.Intn(6)), float64(rng.Intn(6)), float64(rng.Intn(6))}
		}
		first, err := skybench.Compute(rows, skybench.Options{})
		if err != nil {
			return false
		}
		sub := make([][]float64, len(first.Indices))
		for k, i := range first.Indices {
			sub[k] = rows[i]
		}
		second, err := skybench.Compute(sub, skybench.Options{})
		if err != nil {
			return false
		}
		return len(second.Indices) == len(sub)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the skyline is invariant under input permutation (as a set
// of point values).
func TestPropertyPermutationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(80)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{float64(rng.Intn(5)), float64(rng.Intn(5))}
		}
		perm := rng.Perm(n)
		shuffled := make([][]float64, n)
		for i, p := range perm {
			shuffled[i] = rows[p]
		}
		a, err1 := skybench.Compute(rows, skybench.Options{})
		b, err2 := skybench.Compute(shuffled, skybench.Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return verify.SamePoints(point.FromRows(rows), a.Indices, point.FromRows(shuffled), b.Indices)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a dominated point never changes the skyline; adding
// a point that dominates everything replaces it entirely.
func TestPropertyMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{1 + float64(rng.Intn(5)), 1 + float64(rng.Intn(5))}
		}
		base, err := skybench.Compute(rows, skybench.Options{})
		if err != nil {
			return false
		}
		// Append a point worse than everything: skyline unchanged.
		worse := append(append([][]float64{}, rows...), []float64{100, 100})
		withWorse, err := skybench.Compute(worse, skybench.Options{})
		if err != nil || len(withWorse.Indices) != len(base.Indices) {
			return false
		}
		// Append a point better than everything: skyline collapses to it.
		better := append(append([][]float64{}, rows...), []float64{0, 0})
		withBetter, err := skybench.Compute(better, skybench.Options{})
		if err != nil || len(withBetter.Indices) != 1 || withBetter.Indices[0] != n {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
