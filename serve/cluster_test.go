// Cluster-facing serving surface, tested with a fake RemoteBackend so
// the wire semantics — Partial round trip, Cluster info block, the
// worker_unavailable/epoch_skew error rows, cluster metrics — are
// pinned independently of the real coordinator (which has its own
// tests in internal/cluster).
package serve_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"skybench"
	"skybench/serve"
	"skybench/serve/metrics"
)

// fakeRemote is a canned RemoteBackend: fixed placement, fixed answer,
// optionally failing or partial.
type fakeRemote struct {
	n, d    int
	epoch   uint64
	partial bool
	err     error
}

func (f *fakeRemote) D() int        { return f.d }
func (f *fakeRemote) Len() int      { return f.n }
func (f *fakeRemote) Epoch() uint64 { return f.epoch }

func (f *fakeRemote) Run(ctx context.Context, q skybench.Query) (*skybench.QueryResult, error) {
	if f.err != nil {
		return nil, f.err
	}
	res := skybench.Result{Indices: []int{0, 2}}
	res.Stats.InputSize = f.n
	res.Stats.DominanceTests = 7
	res.Stats.SkylineSize = 2
	rows := [][]float64{{1, 9}, {2, 8}}
	return skybench.NewRemoteQueryResult(res, f.epoch, f.partial, rows, nil), nil
}

func (f *fakeRemote) Placement() skybench.PlacementStats {
	return skybench.PlacementStats{
		Policy:   "partial",
		Partials: 3,
		Workers: []skybench.WorkerPlacement{
			{Addr: "http://w0", Lo: 0, Hi: 2, Healthy: true, Queries: 5, Retries: 1},
			{Addr: "http://w1", Lo: 2, Hi: 4, Healthy: false, Queries: 5, Failures: 2},
		},
	}
}

func TestClusterBackedServing(t *testing.T) {
	srv, c := newTestServer(t, skybench.StoreOptions{}, serve.Options{})
	fake := &fakeRemote{n: 4, d: 2, epoch: 9, partial: true}
	if _, err := srv.Store().AttachRemote("cl", fake, skybench.CollectionOptions{}); err != nil {
		t.Fatalf("AttachRemote: %v", err)
	}
	ctx := context.Background()

	res, err := c.Query(ctx, "cl", nil)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.Partial {
		t.Error("Partial flag lost on the wire")
	}
	if res.Epoch != 9 || res.Count != 2 || res.Indices[1] != 2 {
		t.Errorf("response = %+v, want epoch 9, indices [0 2]", res)
	}
	if len(res.Values) != 2 || res.Values[1][0] != 2 {
		t.Errorf("values = %v, want the backend's rows", res.Values)
	}

	info, err := c.Info(ctx, "cl")
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if info.Cluster == nil {
		t.Fatal("collection info carries no cluster section")
	}
	if info.Cluster.Policy != "partial" || info.Cluster.Partials != 3 || len(info.Cluster.Workers) != 2 {
		t.Errorf("cluster info = %+v", info.Cluster)
	}
	w1 := info.Cluster.Workers[1]
	if w1.Addr != "http://w1" || w1.Healthy || w1.Failures != 2 || w1.Lo != 2 || w1.Hi != 4 {
		t.Errorf("worker 1 info = %+v", w1)
	}
	if info.N != 4 || info.Epoch != 9 {
		t.Errorf("info N=%d epoch=%d, want 4/9", info.N, info.Epoch)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, want := range []string{
		`skyserved_cluster_workers{collection="cl"} 2`,
		`skyserved_cluster_partial_results{collection="cl"} 3`,
		`skyserved_cluster_worker_up{collection="cl",worker="0"} 1`,
		`skyserved_cluster_worker_up{collection="cl",worker="1"} 0`,
		`skyserved_cluster_worker_rows{collection="cl",worker="1"} 2`,
		`skyserved_cluster_worker_failures{collection="cl",worker="1"} 2`,
		`skyserved_cluster_worker_retries{collection="cl",worker="0"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if err := metrics.Lint(strings.NewReader(text)); err != nil {
		t.Errorf("cluster exposition fails lint: %v", err)
	}
}

// TestClusterErrorRows pins the wire mapping of the two cluster
// sentinels: worker_unavailable → 502, epoch_skew → 409, both
// recoverable to errors.Is through the client.
func TestClusterErrorRows(t *testing.T) {
	srv, c := newTestServer(t, skybench.StoreOptions{}, serve.Options{})
	ctx := context.Background()
	down := &fakeRemote{n: 4, d: 2, err: fmt.Errorf("%w: worker w1: connection refused", skybench.ErrWorkerUnavailable)}
	skewed := &fakeRemote{n: 4, d: 2, err: fmt.Errorf("%w: worker w1 answered at epoch 3, others at 2", skybench.ErrEpochSkew)}
	if _, err := srv.Store().AttachRemote("down", down, skybench.CollectionOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Store().AttachRemote("skewed", skewed, skybench.CollectionOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, "down", nil); !errors.Is(err, skybench.ErrWorkerUnavailable) {
		t.Errorf("down err = %v, want ErrWorkerUnavailable", err)
	}
	if _, err := c.Query(ctx, "skewed", nil); !errors.Is(err, skybench.ErrEpochSkew) {
		t.Errorf("skewed err = %v, want ErrEpochSkew", err)
	}
}

// TestClusterAttachGating pins the attach-body rules: a ClusterSpec
// needs the coordinator hook, and the three backings stay mutually
// exclusive.
func TestClusterAttachGating(t *testing.T) {
	_, c := newTestServer(t, skybench.StoreOptions{}, serve.Options{})
	ctx := context.Background()

	spec := &serve.ClusterSpec{Path: "/tmp/nope.csv", Workers: []string{"http://w0"}}
	if _, err := c.Attach(ctx, "cl", &serve.AttachRequest{Cluster: spec}); !errors.Is(err, skybench.ErrBadQuery) {
		t.Errorf("cluster attach without hook: err = %v, want ErrBadQuery", err)
	}
	if _, err := c.Attach(ctx, "both", &serve.AttachRequest{
		Static:  &serve.StaticSpec{Path: "x.csv"},
		Cluster: spec,
	}); !errors.Is(err, skybench.ErrBadQuery) {
		t.Errorf("two backings: err = %v, want ErrBadQuery", err)
	}

	// With a hook installed, the spec is handed through verbatim.
	var gotName string
	var gotSpec *serve.ClusterSpec
	var srv2 *serve.Server
	srv2, c2 := newTestServer(t, skybench.StoreOptions{}, serve.Options{
		AttachCluster: func(name string, s *serve.ClusterSpec, opts skybench.CollectionOptions) error {
			gotName, gotSpec = name, s
			_, err := srv2.Store().AttachRemote(name, &fakeRemote{n: 4, d: 2}, skybench.CollectionOptions{})
			return err
		},
	})
	info, err := c2.Attach(ctx, "cl", &serve.AttachRequest{Cluster: spec})
	if err != nil {
		t.Fatalf("cluster attach with hook: %v", err)
	}
	if gotName != "cl" || gotSpec == nil || len(gotSpec.Workers) != 1 {
		t.Errorf("hook saw name=%q spec=%+v", gotName, gotSpec)
	}
	if info.Cluster == nil {
		t.Errorf("attach response info lacks cluster section: %+v", info)
	}
}
