// Delta subscriptions: GET /v1/collections/{name}/deltas streams the
// index's entered/left membership deltas to the client as NDJSON (the
// default) or Server-Sent Events (?format=sse, or an Accept header
// naming text/event-stream).
//
// The backpressure rule: delta callbacks run under the index's write
// lock, on the mutator's goroutine, so a subscriber must never be
// allowed to stall them. Each subscription therefore owns a bounded
// queue (Options.DeltaQueue); the callback does a non-blocking send,
// and on overflow the subscriber is marked lapsed and disconnected —
// the index and every other subscriber proceed untouched. A client that
// is disconnected this way reconnects and re-reads current membership
// via a query; there is no replay.
package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"

	"skybench/stream"
)

func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request, obs *observation) {
	name := r.PathValue("name")
	ix, err := s.mutableIndex(name)
	if err != nil {
		writeError(w, obs, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, obs, errors.New("response writer cannot stream")) // → 500 internal
		return
	}
	sse := r.URL.Query().Get("format") == "sse" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")

	// The subscription queue. The OnDelta callback runs under the index
	// lock: copy the points (their Values alias index-owned storage that
	// is reused after the callback returns) and hand off without ever
	// blocking.
	events := make(chan DeltaEvent, s.opts.DeltaQueue)
	lapsed := make(chan struct{})
	var lapseOnce sync.Once
	var seq uint64 // mutated only under the index lock — serialized
	cancel := ix.OnDelta(func(entered, left []stream.Point) {
		seq++
		ev := DeltaEvent{Seq: seq, Entered: copyPoints(entered), Left: copyPoints(left)}
		select {
		case events <- ev:
		default:
			lapseOnce.Do(func() { close(lapsed) })
		}
	})
	defer cancel()

	gauge := s.subs.With(name)
	gauge.Add(1)
	defer gauge.Add(-1)

	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		select {
		case ev := <-events:
			if err := writeDelta(w, &ev, sse); err != nil {
				return // client went away
			}
			flusher.Flush()
		case <-lapsed:
			// The queue overflowed while this subscriber lagged: cut it
			// loose rather than slow the index. Closing the response body
			// is the signal; the client reconnects and re-syncs.
			s.subDrops.With(name).Inc()
			obs.code = "slow_subscriber"
			return
		case <-r.Context().Done():
			return
		case <-s.done:
			return // server draining
		}
	}
}

// writeDelta renders one event in the negotiated framing.
func writeDelta(w io.Writer, ev *DeltaEvent, sse bool) error {
	if sse {
		if _, err := io.WriteString(w, "data: "); err != nil {
			return err
		}
	}
	if err := json.NewEncoder(w).Encode(ev); err != nil { // Encode appends the line break
		return err
	}
	if sse {
		_, err := io.WriteString(w, "\n")
		return err
	}
	return nil
}

// copyPoints deep-copies index-owned points into wire form.
func copyPoints(ps []stream.Point) []PointData {
	if len(ps) == 0 {
		return nil
	}
	out := make([]PointData, len(ps))
	for i, p := range ps {
		out[i] = PointData{ID: uint64(p.ID), Values: append([]float64(nil), p.Values...)}
	}
	return out
}
