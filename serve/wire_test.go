package serve

import (
	"errors"
	"fmt"
	"net/http"
	"testing"

	"skybench"
)

// TestErrorTable drives the sentinel → (status, code) mapping with every
// row, both bare and wrapped the way real call sites produce them, and
// checks the code → sentinel inverse so client-side errors.Is agrees
// with the server.
func TestErrorTable(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{skybench.ErrOverloaded, http.StatusTooManyRequests, "overloaded"},
		{skybench.ErrDeadlineExceeded, http.StatusGatewayTimeout, "deadline_exceeded"},
		{skybench.ErrUnknownCollection, http.StatusNotFound, "unknown_collection"},
		{ErrUnknownPoint, http.StatusNotFound, "unknown_point"},
		{skybench.ErrDuplicateCollection, http.StatusConflict, "duplicate_collection"},
		{skybench.ErrBadQuery, http.StatusBadRequest, "bad_query"},
		{skybench.ErrBadPoint, http.StatusBadRequest, "bad_point"},
		{skybench.ErrBadDataset, http.StatusBadRequest, "bad_dataset"},
		{skybench.ErrUnknownAlgorithm, http.StatusBadRequest, "unknown_algorithm"},
		{skybench.ErrQueryPanic, http.StatusInternalServerError, "query_panic"},
		{skybench.ErrClosed, http.StatusServiceUnavailable, "closed"},
		{skybench.ErrCorruptWAL, http.StatusInternalServerError, "corrupt_wal"},
		{skybench.ErrCanceled, statusCanceled, "canceled"},
	}
	for _, c := range cases {
		t.Run(c.code, func(t *testing.T) {
			for _, err := range []error{c.err, fmt.Errorf("wrapped: %w", c.err)} {
				status, code := StatusForError(err)
				if status != c.status || code != c.code {
					t.Errorf("StatusForError(%v) = (%d, %q), want (%d, %q)", err, status, code, c.status, c.code)
				}
			}
			sentinel := SentinelForCode(c.code)
			if !errors.Is(c.err, sentinel) {
				t.Errorf("SentinelForCode(%q) = %v, does not match %v", c.code, sentinel, c.err)
			}
		})
	}

	// A deadline error wraps ErrCanceled too — the table must still say
	// 504, not 499 (row order).
	both := fmt.Errorf("op: %w", skybench.ErrDeadlineExceeded)
	if status, code := StatusForError(both); status != http.StatusGatewayTimeout || code != "deadline_exceeded" {
		t.Errorf("deadline error mapped to (%d, %q), want (504, deadline_exceeded)", status, code)
	}
	if status, code := StatusForError(errors.New("novel")); status != http.StatusInternalServerError || code != "internal" {
		t.Errorf("untyped error mapped to (%d, %q), want (500, internal)", status, code)
	}
	if SentinelForCode("internal") != nil || SentinelForCode("nope") != nil {
		t.Error("unknown codes must map to a nil sentinel")
	}
}

// TestQueryFingerprint: identical result-determining fields fingerprint
// identically (including delivery-option differences), different ones
// differently.
func TestQueryFingerprint(t *testing.T) {
	a := &QueryRequest{Algorithm: "hybrid", Prefs: []string{"min", "max"}, SkybandK: 2}
	b := &QueryRequest{Algorithm: "HYBRID", Prefs: []string{"min", "max"}, SkybandK: 2, OmitValues: true, AllowStale: true}
	if QueryFingerprint(a) != QueryFingerprint(b) {
		t.Error("fingerprints differ on delivery options / case only")
	}
	c := &QueryRequest{Algorithm: "hybrid", Prefs: []string{"min", "max"}, SkybandK: 3}
	if QueryFingerprint(a) == QueryFingerprint(c) {
		t.Error("fingerprints collide across different SkybandK")
	}
	if got := QueryFingerprint(&QueryRequest{}); len(got) != 16 {
		t.Errorf("fingerprint %q, want 16 hex chars", got)
	}
}

// TestToQuery covers the wire → Query conversion edges the error table
// test doesn't reach through HTTP.
func TestToQuery(t *testing.T) {
	q, err := toQuery(&QueryRequest{Prefs: []string{"min", "MAX", "ignore"}, SkybandK: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []skybench.Pref{skybench.Min, skybench.Max, skybench.Ignore}
	for i, p := range want {
		if q.Prefs[i] != p {
			t.Fatalf("prefs = %v, want %v", q.Prefs, want)
		}
	}
	if q.SkybandK != 2 {
		t.Fatalf("SkybandK = %d, want 2", q.SkybandK)
	}
	for _, bad := range []*QueryRequest{
		{Prefs: []string{"sideways"}},
		{SkybandK: -1},
		{Algorithm: "no-such-algorithm"},
		{Pivot: "no-such-pivot"},
	} {
		if _, err := toQuery(bad); err == nil {
			t.Errorf("toQuery(%+v) accepted", bad)
		} else if status, _ := StatusForError(err); status != http.StatusBadRequest {
			t.Errorf("toQuery(%+v) error %v maps to %d, want 400", bad, err, status)
		}
	}
}
