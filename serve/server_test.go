// End-to-end tests: a real Store behind a real HTTP server, driven
// through the typed client — the full wire round trip, including the
// error taxonomy, delta subscriptions, backpressure disconnects, and
// graceful shutdown with durable recovery.
package serve_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skybench"
	"skybench/serve"
	"skybench/serve/client"
	"skybench/serve/metrics"
	"skybench/stream"
)

// newTestServer stands up a serve.Server over a fresh Store behind
// httptest, returning the typed client pointed at it.
func newTestServer(t *testing.T, storeOpts skybench.StoreOptions, opts serve.Options) (*serve.Server, *client.Client) {
	t.Helper()
	st := skybench.NewStoreWithOptions(storeOpts)
	srv := serve.New(st, opts)
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, client.New(hs.URL)
}

// genCSV writes n pseudo-random d-dimensional rows as a headerless CSV
// and returns its path.
func genCSV(t *testing.T, n, d int, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%.6f", rng.Float64())
		}
		b.WriteByte('\n')
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestStaticQueryRoundTrip: a static CSV collection served over the
// wire must return exactly the result the in-process API computes.
func TestStaticQueryRoundTrip(t *testing.T) {
	srv, c := newTestServer(t, skybench.StoreOptions{Threads: 2}, serve.Options{})
	path := genCSV(t, 500, 3, 1)
	col, err := srv.AttachStaticFile("hotels", path, skybench.CollectionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := col.Run(context.Background(), skybench.Query{SkybandK: 2})
	if err != nil {
		t.Fatal(err)
	}

	res, err := c.Query(context.Background(), "hotels", &serve.QueryRequest{SkybandK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want.Len() || len(res.Indices) != want.Len() {
		t.Fatalf("wire count = %d, in-process = %d", res.Count, want.Len())
	}
	wantSet := make(map[int]bool, want.Len())
	for _, idx := range want.Indices {
		wantSet[idx] = true
	}
	for i, idx := range res.Indices {
		if !wantSet[idx] {
			t.Fatalf("wire index %d not in in-process result", idx)
		}
		if len(res.Values[i]) != 3 {
			t.Fatalf("values[%d] has %d dims, want 3", i, len(res.Values[i]))
		}
	}
	if res.Counts == nil {
		t.Fatal("k-skyband response missing counts")
	}
	if res.Stats.InputSize <= 0 {
		t.Fatalf("stats input size = %d, want > 0", res.Stats.InputSize)
	}

	// Top cut: fewest dominators first, capped length.
	top, err := c.Query(context.Background(), "hotels", &serve.QueryRequest{SkybandK: 2, Top: 3, OmitValues: true})
	if err != nil {
		t.Fatal(err)
	}
	if top.Count != 3 || len(top.Indices) != 3 || top.Values != nil {
		t.Fatalf("top response: count=%d indices=%d values=%v", top.Count, len(top.Indices), top.Values)
	}
	for i := 1; i < len(top.Counts); i++ {
		if top.Counts[i] < top.Counts[i-1] {
			t.Fatalf("top counts not ascending: %v", top.Counts)
		}
	}
}

// TestStreamMutateThenQuery: inserts and deletes through the wire must
// advance the epoch and be reflected by the next query — the
// mutate-then-query consistency contract.
func TestStreamMutateThenQuery(t *testing.T) {
	_, c := newTestServer(t, skybench.StoreOptions{Threads: 2}, serve.Options{})
	ctx := context.Background()
	if _, err := c.Attach(ctx, "live", &serve.AttachRequest{Stream: &serve.StreamSpec{D: 2}}); err != nil {
		t.Fatal(err)
	}

	ids, err := c.Insert(ctx, "live", [][]float64{{5, 5}, {1, 9}, {9, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("insert returned %d ids, want 3", len(ids))
	}
	res, err := c.Query(ctx, "live", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 || len(res.IDs) != 3 {
		t.Fatalf("skyline of anti-correlated triple: count=%d ids=%v", res.Count, res.IDs)
	}
	epoch1 := res.Epoch

	// Insert a dominating point: (0,0) evicts all three.
	if _, err := c.Insert(ctx, "live", [][]float64{{0, 0}}); err != nil {
		t.Fatal(err)
	}
	res2, err := c.Query(ctx, "live", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Count != 1 {
		t.Fatalf("after dominating insert: count=%d, want 1", res2.Count)
	}
	if res2.Epoch <= epoch1 {
		t.Fatalf("epoch did not advance across mutation: %d -> %d", epoch1, res2.Epoch)
	}

	// Delete the dominator: the three originals resurface.
	if err := c.Delete(ctx, "live", res2.IDs[0]); err != nil {
		t.Fatal(err)
	}
	res3, err := c.Query(ctx, "live", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Count != 3 || res3.Epoch <= res2.Epoch {
		t.Fatalf("after delete: count=%d epoch %d -> %d", res3.Count, res2.Epoch, res3.Epoch)
	}

	info, err := c.Info(ctx, "live")
	if err != nil {
		t.Fatal(err)
	}
	if !info.StreamBacked || info.N != 3 || info.D != 2 {
		t.Fatalf("info = %+v", info)
	}
}

// TestDurableAttachRecover: a durable collection created over the wire,
// dropped (checkpointing), and re-attached from the same directory must
// come back with its points.
func TestDurableAttachRecover(t *testing.T) {
	_, c := newTestServer(t, skybench.StoreOptions{Threads: 2}, serve.Options{})
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "wal")

	info, err := c.Attach(ctx, "ticks", &serve.AttachRequest{
		Stream: &serve.StreamSpec{Dir: dir, Create: true, D: 2, Fsync: "always"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Durable {
		t.Fatalf("created collection not durable: %+v", info)
	}
	if _, err := c.Insert(ctx, "ticks", [][]float64{{1, 9}, {9, 1}, {5, 5}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop(ctx, "ticks"); err != nil {
		t.Fatal(err)
	}
	// Same directory, no create: recovery path.
	if _, err := c.Attach(ctx, "ticks2", &serve.AttachRequest{Stream: &serve.StreamSpec{Dir: dir}}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(ctx, "ticks2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 {
		t.Fatalf("recovered skyline count = %d, want 3", res.Count)
	}
}

// TestErrorMappingOverWire: each reachable error class must cross the
// wire with its table status and come back as the right sentinel for
// errors.Is.
func TestErrorMappingOverWire(t *testing.T) {
	srv, c := newTestServer(t, skybench.StoreOptions{Threads: 2}, serve.Options{})
	ctx := context.Background()
	path := genCSV(t, 50, 2, 2)
	if _, err := srv.AttachStaticFile("frozen", path, skybench.CollectionOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attach(ctx, "live", &serve.AttachRequest{Stream: &serve.StreamSpec{D: 2}}); err != nil {
		t.Fatal(err)
	}

	check := func(name string, err error, status int, sentinel error) {
		t.Helper()
		var api *client.APIError
		if !errors.As(err, &api) {
			t.Fatalf("%s: error %v (%T) is not an APIError", name, err, err)
		}
		if api.Status != status {
			t.Errorf("%s: status %d, want %d (%s)", name, api.Status, status, api.Code)
		}
		if sentinel != nil && !errors.Is(err, sentinel) {
			t.Errorf("%s: %v does not match sentinel %v over the wire", name, err, sentinel)
		}
	}

	_, err := c.Query(ctx, "nope", nil)
	check("unknown collection", err, http.StatusNotFound, skybench.ErrUnknownCollection)

	_, err = c.Query(ctx, "frozen", &serve.QueryRequest{Prefs: []string{"sideways", "min"}})
	check("bad pref", err, http.StatusBadRequest, skybench.ErrBadQuery)

	_, err = c.Query(ctx, "frozen", &serve.QueryRequest{Algorithm: "no-such"})
	check("bad algorithm", err, http.StatusBadRequest, skybench.ErrUnknownAlgorithm)

	_, err = c.Insert(ctx, "frozen", [][]float64{{1, 2}})
	check("insert into static", err, http.StatusBadRequest, skybench.ErrBadQuery)

	_, err = c.Insert(ctx, "live", [][]float64{{1, 2, 3}})
	check("wrong dimensionality", err, http.StatusBadRequest, skybench.ErrBadPoint)

	err = c.Delete(ctx, "live", 424242)
	check("unknown point", err, http.StatusNotFound, serve.ErrUnknownPoint)

	_, err = c.Attach(ctx, "live", &serve.AttachRequest{Stream: &serve.StreamSpec{D: 2}})
	check("duplicate attach", err, http.StatusConflict, skybench.ErrDuplicateCollection)

	_, err = c.Attach(ctx, "empty", &serve.AttachRequest{})
	check("empty attach", err, http.StatusBadRequest, skybench.ErrBadQuery)

	_, err = c.Attach(ctx, "missing", &serve.AttachRequest{Static: &serve.StaticSpec{Path: filepath.Join(t.TempDir(), "absent.csv")}})
	check("missing static file", err, http.StatusBadRequest, skybench.ErrBadDataset)

	err = c.Drop(ctx, "nope")
	check("drop unknown", err, http.StatusNotFound, skybench.ErrUnknownCollection)
}

// gateSource is a StreamSource whose materialization blocks until its
// gate opens — the deterministic way to hold a query in flight while
// the test probes overload and deadline behavior through the wire.
type gateSource struct {
	d    int
	gate chan struct{}
	vals []float64
	ids  []uint64
}

func newGateSource(d, n int) *gateSource {
	s := &gateSource{d: d, gate: make(chan struct{})}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			s.vals = append(s.vals, rng.Float64())
		}
		s.ids = append(s.ids, uint64(i+1))
	}
	return s
}

func (s *gateSource) D() int            { return s.d }
func (s *gateSource) LiveEpoch() uint64 { return 1 }
func (s *gateSource) LiveSnapshot() ([]float64, []uint64, uint64) {
	<-s.gate
	return append([]float64(nil), s.vals...), append([]uint64(nil), s.ids...), 1
}

// TestDeadlineOverWire: a wire deadline header on a stalled query must
// fire server-side and come back as 504 deadline_exceeded.
func TestDeadlineOverWire(t *testing.T) {
	srv, c := newTestServer(t, skybench.StoreOptions{Threads: 2}, serve.Options{})
	src := newGateSource(2, 100)
	if _, err := srv.Store().AttachStream("gated", src, skybench.CollectionOptions{}); err != nil {
		t.Fatal(err)
	}
	defer close(src.gate) // release the abandoned materialization

	req, err := http.NewRequest(http.MethodPost, srvURL(c)+"/v1/collections/gated/query", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(serve.DeadlineHeader, "50")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled query with 50ms wire deadline: status %d, want 504", resp.StatusCode)
	}

	// The client's context deadline reaches the server the same way.
	cctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, qerr := c.Query(cctx, "gated", nil); !errors.Is(qerr, skybench.ErrDeadlineExceeded) && !errors.Is(qerr, context.DeadlineExceeded) {
		t.Fatalf("client-deadline query = %v, want a deadline error", qerr)
	}
}

// TestOverloadOverWire: with one admission slot and no queue, a second
// query behind a stalled one must be rejected synchronously with 429.
func TestOverloadOverWire(t *testing.T) {
	srv, c := newTestServer(t,
		skybench.StoreOptions{Threads: 2, MaxInflight: 1, MaxQueue: 0},
		serve.Options{})
	src := newGateSource(2, 100)
	if _, err := srv.Store().AttachStream("gated", src, skybench.CollectionOptions{}); err != nil {
		t.Fatal(err)
	}
	// A second, fast collection to probe with: admission is store-wide,
	// so while the gated query holds the slot, probes 429 — and they
	// never block on the gate themselves.
	if _, err := srv.AttachStaticFile("fast", genCSV(t, 50, 2, 6), skybench.CollectionOptions{}); err != nil {
		t.Fatal(err)
	}

	// Park one query on the gate, and wait until it visibly holds the
	// only inflight slot (Store.Inflight) before probing — otherwise the
	// probe can slip in first.
	parked := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), "gated", nil)
		parked <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Store().Inflight() == 0 {
		select {
		case err := <-parked:
			t.Fatalf("parked query returned before blocking: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("parked query never acquired the admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Every further query is now rejected synchronously.
	_, err := c.Query(context.Background(), "fast", nil)
	if !errors.Is(err, skybench.ErrOverloaded) {
		t.Fatalf("probe under load = %v, want ErrOverloaded", err)
	}
	var api *client.APIError
	if !errors.As(err, &api) || api.Status != http.StatusTooManyRequests {
		t.Fatalf("overload error = %v, want APIError 429", err)
	}

	close(src.gate) // release the parked query; it must now succeed
	if err := <-parked; err != nil {
		t.Fatalf("parked query failed after release: %v", err)
	}
}

// panicSource panics during its next materialization when armed — the
// query-execution panic the Submit path must contain and report as
// ErrQueryPanic rather than crash the server.
type panicSource struct {
	d     int
	armed atomic.Bool
}

func (s *panicSource) D() int            { return s.d }
func (s *panicSource) LiveEpoch() uint64 { return 1 }
func (s *panicSource) LiveSnapshot() ([]float64, []uint64, uint64) {
	if s.armed.CompareAndSwap(true, false) {
		panic("injected materialization fault")
	}
	return []float64{1, 2}, []uint64{1}, 1
}

// TestQueryPanicOverWire: a panic inside query execution must cross the
// wire as 500 query_panic, match ErrQueryPanic, and leave the server
// serving.
func TestQueryPanicOverWire(t *testing.T) {
	srv, c := newTestServer(t, skybench.StoreOptions{Threads: 2}, serve.Options{})
	src := &panicSource{d: 2}
	// Cache disabled so both queries reach the source.
	if _, err := srv.Store().AttachStream("volatile", src, skybench.CollectionOptions{CacheCapacity: -1}); err != nil {
		t.Fatal(err)
	}
	src.armed.Store(true)
	_, err := c.Query(context.Background(), "volatile", nil)
	if !errors.Is(err, skybench.ErrQueryPanic) {
		t.Fatalf("query under injected panic = %v, want ErrQueryPanic", err)
	}
	var api *client.APIError
	if !errors.As(err, &api) || api.Status != http.StatusInternalServerError || api.Code != "query_panic" {
		t.Fatalf("panic mapped as %v, want 500 query_panic", err)
	}
	if res, err := c.Query(context.Background(), "volatile", nil); err != nil || res.Count == 0 {
		t.Fatalf("server did not survive the panic: res=%v err=%v", res, err)
	}
}

// TestDeltaSubscription: a subscriber must see the exact entered/left
// sequence its mutations imply, including re-admission on delete.
func TestDeltaSubscription(t *testing.T) {
	_, c := newTestServer(t, skybench.StoreOptions{Threads: 2}, serve.Options{})
	ctx := context.Background()
	if _, err := c.Attach(ctx, "live", &serve.AttachRequest{Stream: &serve.StreamSpec{D: 2}}); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(ctx, "live")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	if _, err := c.Insert(ctx, "live", [][]float64{{5, 5}}); err != nil {
		t.Fatal(err)
	}
	ev, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 1 || len(ev.Entered) != 1 || len(ev.Left) != 0 ||
		ev.Entered[0].Values[0] != 5 || ev.Entered[0].Values[1] != 5 {
		t.Fatalf("event 1 = %+v, want entered (5,5)", ev)
	}
	first := ev.Entered[0].ID

	// A dominating point evicts (5,5).
	ids, err := c.Insert(ctx, "live", [][]float64{{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ev, err = sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 2 || len(ev.Entered) != 1 || len(ev.Left) != 1 ||
		ev.Entered[0].ID != ids[0] || ev.Left[0].ID != first {
		t.Fatalf("event 2 = %+v, want (1,1) in / (5,5) out", ev)
	}

	// A dominated insert changes nothing: no event for it. Deleting the
	// dominator then re-admits (5,5) — but not (6,6), which (5,5) still
	// dominates — so the next event is the delete's, with Seq 3.
	if _, err := c.Insert(ctx, "live", [][]float64{{6, 6}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, "live", ids[0]); err != nil {
		t.Fatal(err)
	}
	ev, err = sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 3 || len(ev.Entered) != 1 || len(ev.Left) != 1 ||
		ev.Entered[0].ID != first || ev.Left[0].ID != ids[0] {
		t.Fatalf("event 3 = %+v, want (5,5) re-admitted / (1,1) out (and no event for the dominated insert)", ev)
	}
}

// TestSlowSubscriberDisconnect: a subscriber that never drains its
// queue must be cut loose — the server counts the drop and the index
// keeps accepting mutations unhindered.
func TestSlowSubscriberDisconnect(t *testing.T) {
	srv, c := newTestServer(t, skybench.StoreOptions{Threads: 2}, serve.Options{DeltaQueue: 1})
	ctx := context.Background()
	if _, err := c.Attach(ctx, "live", &serve.AttachRequest{Stream: &serve.StreamSpec{D: 2}}); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(ctx, "live")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close() // never reads: the 1-slot queue overflows

	// Anti-diagonal points never dominate each other, so every insert
	// fires an event. A whole batch applies under one index lock hold —
	// hundreds of back-to-back callbacks the 1-slot queue cannot absorb.
	deadline := time.Now().Add(10 * time.Second)
	dropped := false
	for i := 0; !dropped; i++ {
		batch := make([][]float64, 200)
		for j := range batch {
			x := float64(i*len(batch) + j)
			batch[j] = []float64{x, -x}
		}
		if _, err := c.Insert(ctx, "live", batch); err != nil {
			t.Fatal(err)
		}
		text, err := c.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		dropped = strings.Contains(text, `skyserved_delta_dropped_total{collection="live"} `)
		if time.Now().After(deadline) {
			t.Fatal("subscriber never disconnected")
		}
	}
	// The index stayed healthy throughout.
	res, err := c.Query(ctx, "live", nil)
	if err != nil || res.Count == 0 {
		t.Fatalf("query after disconnect: res=%v err=%v", res, err)
	}
	_ = srv
}

// TestGracefulShutdown: Drain + http.Server.Shutdown + Close must end
// delta subscriptions, finish in-flight work, and leave the durable
// directory recoverable.
func TestGracefulShutdown(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	st := skybench.NewStoreWithOptions(skybench.StoreOptions{Threads: 2})
	srv := serve.New(st, serve.Options{})
	if _, err := srv.AttachDurable("ticks", dir, true, 2, stream.Config{}, skybench.CollectionOptions{}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)

	c := client.New("http://" + ln.Addr().String())
	ctx := context.Background()
	if _, err := c.Insert(ctx, "ticks", [][]float64{{1, 9}, {9, 1}}); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(ctx, "ticks")
	if err != nil {
		t.Fatal(err)
	}
	subEnded := make(chan error, 1)
	go func() {
		for {
			if _, err := sub.Next(); err != nil {
				subEnded <- err
				return
			}
		}
	}()

	// The shutdown sequence skyserved runs on SIGTERM.
	srv.Drain()
	err = c.Healthz(ctx)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %v, want 503 APIError", err)
	}
	// Close sheds the client's idle keep-alive connections before
	// Shutdown. Without it, a connection the client dialed but never
	// reused (the probe above races a fresh dial against the conn the
	// drain just freed) sits in StateNew on the server and Shutdown
	// waits its full grace for it.
	c.Close()
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		t.Fatalf("drain incomplete: %v", err)
	}
	srv.Close()

	select {
	case <-subEnded:
	case <-time.After(5 * time.Second):
		t.Fatal("delta subscription outlived shutdown")
	}
	if _, err := c.Insert(ctx, "ticks", [][]float64{{2, 2}}); err == nil {
		t.Fatal("insert succeeded after shutdown")
	}

	// The durable directory recovers cleanly with both points.
	ix, err := stream.Recover(dir, stream.Config{})
	if err != nil {
		t.Fatalf("recover after shutdown: %v", err)
	}
	defer ix.Close()
	if ix.Len() != 2 {
		t.Fatalf("recovered %d points, want 2", ix.Len())
	}
}

// TestListAndMetrics: the listing is sorted, and the metrics endpoint
// exposes the request counters and scrape-time collection gauges.
func TestListAndMetrics(t *testing.T) {
	srv, c := newTestServer(t, skybench.StoreOptions{Threads: 2}, serve.Options{})
	ctx := context.Background()
	path := genCSV(t, 100, 2, 4)
	if _, err := srv.AttachStaticFile("zeta", path, skybench.CollectionOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attach(ctx, "alpha", &serve.AttachRequest{Stream: &serve.StreamSpec{D: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, "zeta", nil); err != nil {
		t.Fatal(err)
	}

	infos, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "zeta" {
		t.Fatalf("listing = %+v, want [alpha zeta]", infos)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`skyserved_requests_total{collection="zeta",endpoint="query"} 1`,
		`skyserved_collection_points{collection="zeta"} 100`,
		"skyserved_request_duration_seconds_bucket",
		"skyserved_store_inflight 0",
		`skyserved_query_algorithm_seconds_count{collection="zeta",algorithm="hybrid"} 1`,
		`skyserved_query_dominance_tests_count{collection="zeta",algorithm="hybrid"} 1`,
		"skyserved_goroutines ",
		"skyserved_heap_alloc_bytes ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if err := metrics.Lint(strings.NewReader(text)); err != nil {
		t.Errorf("live exposition fails lint: %v", err)
	}
}

// TestQueryTraceRoundTrip: Query.Trace survives the wire exactly. A
// traced miss returns a full trace; a traced repeat is a cache hit
// whose minimal trace is deterministic, so the in-process trace and the
// client-decoded trace for the same query must be deeply equal — the
// acceptance bound on the trace's JSON encoding (durations as integer
// nanoseconds, no lossy fields).
func TestQueryTraceRoundTrip(t *testing.T) {
	srv, c := newTestServer(t, skybench.StoreOptions{Threads: 2}, serve.Options{})
	path := genCSV(t, 500, 3, 9)
	if _, err := srv.AttachStaticFile("hotels", path, skybench.CollectionOptions{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := &serve.QueryRequest{SkybandK: 2, Trace: true}

	res1, err := c.Query(ctx, "hotels", req)
	if err != nil {
		t.Fatal(err)
	}
	tr := res1.Trace
	if tr == nil {
		t.Fatal("traced query returned no trace")
	}
	if tr.CacheHit {
		t.Error("first traced query marked as cache hit")
	}
	if tr.DominanceTests != res1.Stats.DominanceTests || tr.Elapsed <= 0 {
		t.Errorf("wire trace disagrees with stats: %+v vs %+v", tr, res1.Stats)
	}
	if len(tr.Shards) != 2 {
		t.Errorf("trace has %d shard entries, want 2", len(tr.Shards))
	}

	// In-process traced repeat: a cache hit with a deterministic
	// minimal trace.
	col, err := srv.Store().Collection("hotels")
	if err != nil {
		t.Fatal(err)
	}
	inproc, err := col.Run(ctx, skybench.Query{SkybandK: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if inproc.Trace == nil || !inproc.Trace.CacheHit {
		t.Fatalf("in-process repeat: trace = %+v, want cache-hit trace", inproc.Trace)
	}

	// The same repeat over the wire must decode to the identical trace.
	res2, err := c.Query(ctx, "hotels", req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2.Trace, inproc.Trace) {
		t.Errorf("trace did not round-trip the wire:\n  wire:       %+v\n  in-process: %+v", res2.Trace, inproc.Trace)
	}

	// An untraced request stays trace-free.
	res3, err := c.Query(ctx, "hotels", &serve.QueryRequest{SkybandK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Trace != nil {
		t.Error("untraced query carried a trace")
	}
}

// TestEventLog: with an event log attached, each request appends one
// well-formed NDJSON line carrying the query fingerprint and outcome.
func TestEventLog(t *testing.T) {
	var buf safeBuffer
	evlog := serve.NewEventLog(&buf)
	srv, c := newTestServer(t, skybench.StoreOptions{Threads: 2}, serve.Options{Events: evlog})
	path := genCSV(t, 100, 2, 5)
	if _, err := srv.AttachStaticFile("hotels", path, skybench.CollectionOptions{}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := &serve.QueryRequest{SkybandK: 2}
	if _, err := c.Query(ctx, "hotels", req); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, "hotels", req); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, "nope", nil); err == nil {
		t.Fatal("expected 404")
	}

	if err := evlog.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("event log has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	fp := serve.QueryFingerprint(req)
	if !strings.Contains(lines[0], fp) || !strings.Contains(lines[1], fp) {
		t.Errorf("query events missing fingerprint %s:\n%s", fp, buf.String())
	}
	if !strings.Contains(lines[1], `"cacheHit":true`) {
		t.Errorf("repeat query not logged as a cache hit: %s", lines[1])
	}
	if !strings.Contains(lines[2], `"status":404`) || !strings.Contains(lines[2], `"code":"unknown_collection"`) {
		t.Errorf("404 event malformed: %s", lines[2])
	}
}

// TestSlowQueryLog: with a slow-query threshold set, every query is
// traced server-side and a query at/over the threshold gets its full
// trace attached to its event-log record — without the trace leaking
// into responses that did not ask for one.
func TestSlowQueryLog(t *testing.T) {
	var buf safeBuffer
	evlog := serve.NewEventLog(&buf)
	srv, c := newTestServer(t, skybench.StoreOptions{Threads: 2},
		serve.Options{Events: evlog, SlowQuery: time.Nanosecond})
	path := genCSV(t, 200, 2, 3)
	if _, err := srv.AttachStaticFile("hotels", path, skybench.CollectionOptions{}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := c.Query(ctx, "hotels", &serve.QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("server-forced tracing leaked into an untraced response")
	}
	if err := evlog.Flush(); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	for _, want := range []string{`"algorithm":"hybrid"`, `"trace":{`, `"dominance_tests":`} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-query event missing %s:\n%s", want, line)
		}
	}
}

// safeBuffer is a strings.Builder safe for the concurrent writes the
// event log performs.
type safeBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// srvURL digs the base URL back out of a client for the raw-HTTP cases.
func srvURL(c *client.Client) string { return c.BaseURL() }

// TestAutoQueryWire: an Algorithm "auto" query over the wire must carry
// the planner's decision in the response, tally it in the
// per-decision metric family, and surface the collection's profile and
// decision counts through info.
func TestAutoQueryWire(t *testing.T) {
	srv, c := newTestServer(t, skybench.StoreOptions{Threads: 2}, serve.Options{})
	path := genCSV(t, 800, 4, 17)
	if _, err := srv.AttachStaticFile("hotels", path, skybench.CollectionOptions{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	res, err := c.Query(ctx, "hotels", &serve.QueryRequest{Algorithm: "auto", Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Planner == nil {
		t.Fatal("auto query response carries no planner decision")
	}
	if res.Planner.Algorithm != "hybrid" && res.Planner.Algorithm != "qflow" {
		t.Errorf("planner chose %q, want a hot-path algorithm", res.Planner.Algorithm)
	}
	if res.Trace == nil || res.Trace.Planner == nil {
		t.Fatal("traced auto query carries no trace.planner")
	}
	if !reflect.DeepEqual(res.Trace.Planner, res.Planner) {
		t.Errorf("trace.planner and response planner diverge:\n%+v\n%+v", res.Trace.Planner, res.Planner)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`skyserved_planner_decisions_total{collection="hotels",algorithm=%q`, res.Planner.Algorithm)
	if !strings.Contains(text, want) {
		t.Errorf("exposition lacks %s", want)
	}
	// Cost attribution must follow the resolved algorithm, never "auto".
	if strings.Contains(text, `algorithm="auto"`) {
		t.Error(`exposition attributes cost to algorithm="auto"`)
	}
	if err := metrics.Lint(strings.NewReader(text)); err != nil {
		t.Errorf("exposition with planner family does not lint: %v", err)
	}

	info, err := c.Info(ctx, "hotels")
	if err != nil {
		t.Fatal(err)
	}
	if info.Planner == nil {
		t.Fatal("collection info carries no planner section after an auto query")
	}
	if info.Planner.Class == "" || info.Planner.SampleN == 0 {
		t.Errorf("planner info missing profile: %+v", info.Planner)
	}
	var total uint64
	for _, d := range info.Planner.Decisions {
		total += d.Count
	}
	if total != 1 {
		t.Errorf("planner decision counts sum to %d, want 1", total)
	}
}
