package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"skybench"
	"skybench/serve"
)

// flakyRT is a RoundTripper that fails the first `failures` requests
// with a transport error (no HTTP response), then delegates. It also
// counts every request that reached it.
type flakyRT struct {
	mu       sync.Mutex
	failures int
	calls    int
	next     http.RoundTripper
}

func (f *flakyRT) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.calls++
	fail := f.failures > 0
	if fail {
		f.failures--
	}
	f.mu.Unlock()
	if fail {
		return nil, errors.New("flaky: connection reset by peer")
	}
	return f.next.RoundTrip(req)
}

func (f *flakyRT) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// newRetryHarness starts a stub server answering every query with a
// fixed result and wires a client to it through a flakyRT that fails
// the first `failures` requests.
func newRetryHarness(t *testing.T, failures int) (*Client, *flakyRT, *int) {
	t.Helper()
	requests := 0
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		requests++
		mu.Unlock()
		_ = json.NewEncoder(w).Encode(&serve.QueryResponse{
			Collection: "c", Count: 1, Indices: []int{0},
		})
	}))
	t.Cleanup(srv.Close)
	rt := &flakyRT{failures: failures, next: srv.Client().Transport}
	c := NewWithHTTPClient(srv.URL, &http.Client{Transport: rt})
	t.Cleanup(c.Close)
	return c, rt, &requests
}

func TestRetryTransientQuery(t *testing.T) {
	c, rt, requests := newRetryHarness(t, 2)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond})
	res, err := c.Query(context.Background(), "c", nil)
	if err != nil {
		t.Fatalf("Query after retries: %v", err)
	}
	if res.Count != 1 {
		t.Fatalf("Count = %d, want 1", res.Count)
	}
	if got := c.RetryCount(); got != 2 {
		t.Fatalf("RetryCount = %d, want 2", got)
	}
	if rt.callCount() != 3 || *requests != 1 {
		t.Fatalf("attempts = %d (server saw %d), want 3 attempts / 1 served", rt.callCount(), *requests)
	}
}

func TestRetryDisabledByDefault(t *testing.T) {
	c, rt, _ := newRetryHarness(t, 1)
	if _, err := c.Query(context.Background(), "c", nil); err == nil {
		t.Fatal("Query should surface the transport error without a policy")
	}
	if rt.callCount() != 1 {
		t.Fatalf("attempts = %d, want 1", rt.callCount())
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	c, rt, _ := newRetryHarness(t, 10)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond})
	if _, err := c.Query(context.Background(), "c", nil); err == nil {
		t.Fatal("Query should fail once attempts are exhausted")
	}
	if rt.callCount() != 3 {
		t.Fatalf("attempts = %d, want 3", rt.callCount())
	}
}

func TestMutationsNeverRetry(t *testing.T) {
	c, rt, _ := newRetryHarness(t, 10)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond})
	if _, err := c.Insert(context.Background(), "c", [][]float64{{1, 2}}); err == nil {
		t.Fatal("Insert should fail without retrying")
	}
	if rt.callCount() != 1 {
		t.Fatalf("Insert attempts = %d, want 1 (mutations must not retry)", rt.callCount())
	}
	if err := c.Drop(context.Background(), "c"); err == nil {
		t.Fatal("Drop should fail without retrying")
	}
	if rt.callCount() != 2 {
		t.Fatalf("total attempts = %d, want 2", rt.callCount())
	}
	if got := c.RetryCount(); got != 0 {
		t.Fatalf("RetryCount = %d, want 0", got)
	}
}

func TestGETsRetry(t *testing.T) {
	c, rt, _ := newRetryHarness(t, 1)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond})
	// The stub answers every path with a QueryResponse, which decodes
	// fine into the list shape's ignored fields — only transport
	// behavior matters here.
	if _, err := c.List(context.Background()); err != nil {
		t.Fatalf("List after one retry: %v", err)
	}
	if rt.callCount() != 2 {
		t.Fatalf("attempts = %d, want 2", rt.callCount())
	}
}

func TestAPIErrorsNeverRetry(t *testing.T) {
	requests := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests++
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_, _ = w.Write([]byte(`{"error":{"code":"unknown_collection","message":"no such collection"}}`))
	}))
	defer srv.Close()
	c := NewWithHTTPClient(srv.URL, srv.Client())
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond})
	_, err := c.Query(context.Background(), "nope", nil)
	if !errors.Is(err, skybench.ErrUnknownCollection) {
		t.Fatalf("err = %v, want ErrUnknownCollection", err)
	}
	if requests != 1 {
		t.Fatalf("server saw %d requests, want 1 (server answers are authoritative)", requests)
	}
}

func TestRetryBackoffHonorsContext(t *testing.T) {
	c, _, _ := newRetryHarness(t, 10)
	// A backoff far beyond the deadline: the sleep must be cut short by
	// the context, not served in full.
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 5, Backoff: time.Hour, MaxBackoff: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Query(ctx, "c", nil)
	if err == nil {
		t.Fatal("Query should fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Query blocked %v in backoff past its deadline", elapsed)
	}
}

func TestExpiredContextNotRetried(t *testing.T) {
	// A transport failure caused by the context itself (deadline fired
	// mid-request) must not be retried: the budget is gone.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(200 * time.Millisecond)
	}))
	defer srv.Close()
	rt := &flakyRT{next: srv.Client().Transport}
	c := NewWithHTTPClient(srv.URL, &http.Client{Transport: rt})
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.Query(ctx, "c", nil); err == nil {
		t.Fatal("Query should fail on its deadline")
	}
	if rt.callCount() != 1 {
		t.Fatalf("attempts = %d, want 1 (expired context must not retry)", rt.callCount())
	}
	if got := c.RetryCount(); got != 0 {
		t.Fatalf("RetryCount = %d, want 0", got)
	}
}
