// Package client is the typed Go client for skyserved. It speaks the
// serve wire protocol and maps wire error codes back onto the skybench
// sentinel errors, so calling a remote Store feels like calling a local
// one:
//
//	c := client.New("http://localhost:8080")
//	res, err := c.Query(ctx, "hotels", &serve.QueryRequest{SkybandK: 2})
//	if errors.Is(err, skybench.ErrOverloaded) { backoff() }
//
// A context deadline on any call is forwarded to the server in the
// X-Skybench-Deadline-Ms header, so the server stops working on a query
// the client has already given up on.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"skybench/serve"
)

// Client is a skyserved API client. Safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retry   RetryPolicy
	retries atomic.Uint64
}

// RetryPolicy bounds the client's automatic retries of transient
// transport failures (connection refused/reset, a dropped keep-alive —
// anything where no HTTP response arrived). Only idempotent calls
// retry: every GET plus Query, which is a read despite its POST
// spelling. Mutations (Insert, Delete, Attach, Drop) never retry — a
// request that died mid-flight may still have been applied. Responses
// the server actually produced, error or not, never retry either: the
// server's answer is authoritative, and its own error taxonomy
// (overloaded, deadline) tells the caller what to do. Retries honor the
// call's context — its deadline keeps counting down across attempts and
// cancels a pending backoff sleep.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included);
	// values ≤ 1 disable retrying.
	MaxAttempts int
	// Backoff is the sleep before the first retry, doubling on each
	// subsequent one. 0 selects 10ms.
	Backoff time.Duration
	// MaxBackoff caps the doubling. 0 selects 500ms.
	MaxBackoff time.Duration
}

// SetRetryPolicy configures automatic retries. Configure before sharing
// the client across goroutines; the zero policy (the default) disables
// retrying.
func (c *Client) SetRetryPolicy(p RetryPolicy) { c.retry = p }

// RetryCount reports the total number of retry attempts the client has
// spent (first tries not included).
func (c *Client) RetryCount() uint64 { return c.retries.Load() }

// New creates a client for the server at baseURL (e.g.
// "http://localhost:8080"). The client owns a private transport (not
// http.DefaultTransport) so Close can actually release its idle
// connections without touching unrelated traffic in the process.
func New(baseURL string) *Client {
	return NewWithHTTPClient(baseURL, &http.Client{
		Transport: &http.Transport{Proxy: http.ProxyFromEnvironment},
	})
}

// NewWithHTTPClient creates a client with an explicit *http.Client
// (custom transport, timeout policy, ...).
func NewWithHTTPClient(baseURL string, hc *http.Client) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// BaseURL returns the server base URL the client was created with.
func (c *Client) BaseURL() string { return c.base }

// Close releases the client's idle keep-alive connections. Call it when
// done with the client — especially before the server shuts down: a
// kept-alive connection the client dialed but never reused sits in
// StateNew on the server, and http.Server.Shutdown waits its full grace
// period for such connections. (The Client remains usable after Close;
// subsequent calls simply dial fresh connections.)
func (c *Client) Close() {
	c.hc.CloseIdleConnections()
}

// Healthz probes the server's health endpoint: nil when the server is
// up and serving, an *APIError carrying the HTTP status otherwise (503
// while the server is draining).
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// APIError is a non-2xx response decoded from the wire. Unwrap returns
// the skybench sentinel for the wire code, so errors.Is(err,
// skybench.ErrOverloaded) etc. work across the network.
type APIError struct {
	Status  int    // HTTP status
	Code    string // stable wire code ("overloaded", "unknown_collection", ...)
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("skyserved: %s (%d %s)", e.Message, e.Status, e.Code)
}

func (e *APIError) Unwrap() error { return serve.SentinelForCode(e.Code) }

// do issues one JSON round trip: method + path, optional request body,
// optional decoded response body. Calls marked idempotent retry
// transient transport failures per the client's RetryPolicy.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return err
		}
	}
	attempts := 1
	if idempotent && c.retry.MaxAttempts > 1 {
		attempts = c.retry.MaxAttempts
	}
	backoff := c.retry.Backoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	maxBackoff := c.retry.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 500 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return lastErr
			case <-t.C:
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
		var body io.Reader
		if in != nil {
			body = bytes.NewReader(data) // fresh reader: the last attempt consumed it
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
		if err != nil {
			return err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		setDeadlineHeader(req, ctx)
		resp, err := c.hc.Do(req)
		if err != nil {
			// No response arrived. Retry only while the caller's context is
			// still live — a fired deadline (or cancel) is not transient and
			// the remaining budget is gone anyway.
			lastErr = err
			if ctx.Err() != nil {
				return err
			}
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return decodeAPIError(resp)
		}
		if out == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return lastErr
}

// setDeadlineHeader forwards the context deadline, when one is set, as
// the wire deadline header (rounded up to a whole millisecond so a
// tight-but-live deadline never truncates to the rejected 0).
func setDeadlineHeader(req *http.Request, ctx context.Context) {
	dl, ok := ctx.Deadline()
	if !ok {
		return
	}
	ms := time.Until(dl).Milliseconds() + 1
	if ms < 1 {
		ms = 1
	}
	req.Header.Set(serve.DeadlineHeader, strconv.FormatInt(ms, 10))
}

// decodeAPIError turns a non-2xx response into an *APIError.
func decodeAPIError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var eb serve.ErrorBody
	if json.Unmarshal(data, &eb) == nil && eb.Error.Code != "" {
		return &APIError{Status: resp.StatusCode, Code: eb.Error.Code, Message: eb.Error.Message}
	}
	return &APIError{Status: resp.StatusCode, Code: "internal", Message: strings.TrimSpace(string(data))}
}

// Query runs one query against the named collection. A nil request runs
// the default query (hybrid skyline, minimize every dimension).
func (c *Client) Query(ctx context.Context, collection string, req *serve.QueryRequest) (*serve.QueryResponse, error) {
	if req == nil {
		req = &serve.QueryRequest{}
	}
	var out serve.QueryResponse
	if err := c.do(ctx, http.MethodPost, c.colPath(collection)+"/query", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Insert appends a batch of points to a stream-backed collection and
// returns their assigned IDs.
func (c *Client) Insert(ctx context.Context, collection string, points [][]float64) ([]uint64, error) {
	var out serve.InsertResponse
	err := c.do(ctx, http.MethodPost, c.colPath(collection)+"/points", &serve.InsertRequest{Points: points}, &out, false)
	if err != nil {
		return nil, err
	}
	return out.IDs, nil
}

// Delete removes one point by stream ID.
func (c *Client) Delete(ctx context.Context, collection string, id uint64) error {
	path := fmt.Sprintf("%s/points/%d", c.colPath(collection), id)
	return c.do(ctx, http.MethodDelete, path, nil, nil, false)
}

// Attach creates a collection on the server (PUT /v1/collections/{name}).
func (c *Client) Attach(ctx context.Context, collection string, req *serve.AttachRequest) (*serve.CollectionInfo, error) {
	var out serve.CollectionInfo
	if err := c.do(ctx, http.MethodPut, c.colPath(collection), req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Drop detaches a collection.
func (c *Client) Drop(ctx context.Context, collection string) error {
	return c.do(ctx, http.MethodDelete, c.colPath(collection), nil, nil, false)
}

// Info describes one collection.
func (c *Client) Info(ctx context.Context, collection string) (*serve.CollectionInfo, error) {
	var out serve.CollectionInfo
	if err := c.do(ctx, http.MethodGet, c.colPath(collection), nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// List enumerates the server's collections, sorted by name.
func (c *Client) List(ctx context.Context) ([]serve.CollectionInfo, error) {
	var out serve.CollectionList
	if err := c.do(ctx, http.MethodGet, "/v1/collections", nil, &out, true); err != nil {
		return nil, err
	}
	return out.Collections, nil
}

// Metrics fetches the raw Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return "", decodeAPIError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Subscription is a live delta feed. Read events with Next until it
// fails; Close releases the connection. The server disconnects a
// subscription whose events aren't consumed fast enough (its queue
// overflowed) — Next then returns an error and the caller re-syncs by
// reconnecting and querying current membership.
type Subscription struct {
	body io.ReadCloser
	dec  *json.Decoder
}

// Subscribe opens the NDJSON delta feed of a stream-backed collection.
// Cancel ctx (or Close the subscription) to end it.
func (c *Client) Subscribe(ctx context.Context, collection string) (*Subscription, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+c.colPath(collection)+"/deltas", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		return nil, decodeAPIError(resp)
	}
	return &Subscription{
		body: resp.Body,
		dec:  json.NewDecoder(bufio.NewReader(resp.Body)),
	}, nil
}

// Next blocks for the next delta event. io.EOF (or a wrapped transport
// error) means the server ended the subscription.
func (s *Subscription) Next() (*serve.DeltaEvent, error) {
	var ev serve.DeltaEvent
	if err := s.dec.Decode(&ev); err != nil {
		return nil, err
	}
	return &ev, nil
}

// Close ends the subscription.
func (s *Subscription) Close() error { return s.body.Close() }

// colPath builds the URL path for a collection, escaping the name.
func (c *Client) colPath(collection string) string {
	return "/v1/collections/" + url.PathEscape(collection)
}
