// Package serve exposes a skybench.Store over HTTP+JSON: the network
// half that turns the in-process serving facade (sharded exact-merge
// queries, epoch-keyed caching, typed failure taxonomy, durable stream
// collections) into a service.
//
// Endpoints (DESIGN.md §12 documents the wire shapes):
//
//	POST   /v1/collections/{name}/query        one query (full Query surface)
//	POST   /v1/collections/{name}/points       batch insert (group commit)
//	DELETE /v1/collections/{name}/points/{id}  delete one point by stream ID
//	GET    /v1/collections/{name}/deltas       entered/left events (SSE or NDJSON)
//	PUT    /v1/collections/{name}              attach (static file / stream dir)
//	DELETE /v1/collections/{name}              drop
//	GET    /v1/collections/{name}              collection info
//	GET    /v1/collections                     list collections
//	GET    /metrics                            Prometheus text format
//	GET    /healthz                            liveness
//
// Errors carry the same taxonomy the Go API has: every response maps a
// skybench sentinel error onto a status code and a stable wire code
// through the single table in StatusForError, and serve/client maps the
// code back so errors.Is works across the network.
//
// Per-request deadlines arrive in the X-Skybench-Deadline-Ms header and
// are mapped onto the query's context.Context, flowing through the same
// cancellation checkpoints in-process callers use. Delta subscriptions
// are fed from a bounded per-subscriber queue: a consumer too slow to
// keep up is disconnected rather than ever back-pressuring the index.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"skybench"
	"skybench/internal/dataset"
	"skybench/serve/metrics"
	"skybench/stream"
)

// DefaultDeltaQueue is the per-subscriber event queue bound used when
// Options.DeltaQueue is zero.
const DefaultDeltaQueue = 256

// dtBuckets is the bucket layout for the per-query dominance-test
// histogram: decade steps spanning a trivial query to a full quadratic
// recount on the largest supported inputs.
var dtBuckets = []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}

// Options configures a Server.
type Options struct {
	// DeltaQueue bounds each delta subscriber's event queue: a
	// subscriber whose queue overflows is disconnected (the backpressure
	// rule — a slow consumer never blocks the index or its peers).
	// 0 selects DefaultDeltaQueue.
	DeltaQueue int
	// Events, when non-nil, receives one NDJSON event per served
	// request (the SABRE-style log cmd/loadbench replays).
	Events *EventLog
	// SlowQuery, when > 0, is the slow-query threshold: every query is
	// traced server-side (skybench.Query.Trace is forced on, whether or
	// not the request asked for a trace back), and a query whose service
	// time reaches the threshold gets its full trace attached to its
	// event-log record. The response carries a trace only when the
	// request asked for one.
	SlowQuery time.Duration
	// AttachCluster, when non-nil, realizes wire attach requests that
	// carry a ClusterSpec: distribute the CSV across the spec's workers
	// and attach a coordinator-backed collection under name. skyserved's
	// coordinator mode installs the hook; without it cluster attach
	// requests are rejected. (The hook lives outside this package so
	// serve does not depend on the coordinator implementation.)
	AttachCluster func(name string, spec *ClusterSpec, opts skybench.CollectionOptions) error
}

// Server is the HTTP serving surface over one Store. Create with New,
// expose via its http.Handler implementation, and shut down with Drain
// (stop delta subscribers so http.Server.Shutdown can complete) then
// Close (close the Store, checkpointing durable collections).
type Server struct {
	st   *skybench.Store
	opts Options
	mux  *http.ServeMux

	done      chan struct{} // closed by Drain: long-lived handlers exit
	drainOnce sync.Once
	closeOnce sync.Once

	reg         *metrics.Registry
	reqs        *metrics.CounterVec   // {collection, endpoint}
	errs        *metrics.CounterVec   // {collection, code}
	lat         *metrics.HistogramVec // {collection, endpoint}
	subs        *metrics.GaugeVec     // {collection}
	subDrops    *metrics.CounterVec   // {collection}
	cacheHits   *metrics.GaugeVec     // {collection} — sampled at scrape
	cacheMisses *metrics.GaugeVec
	cacheSize   *metrics.GaugeVec
	inflight    *metrics.GaugeVec
	points      *metrics.GaugeVec
	epoch       *metrics.GaugeVec
	storeInfl   *metrics.GaugeVec // no labels
	storeQueue  *metrics.GaugeVec

	// Engine cost telemetry, observed per executed (non-cache-hit) query.
	phaseDur *metrics.HistogramVec // {collection, phase}
	algoDur  *metrics.HistogramVec // {collection, algorithm}
	algoDTs  *metrics.HistogramVec // {collection, algorithm}

	// Adaptive planner decisions, counted per algorithm "auto" query.
	planDecisions *metrics.CounterVec // {collection, algorithm, explore}

	// Durability gauges, sampled at scrape from CollectionStats.
	walFsyncs   *metrics.GaugeVec // {collection}
	walFsyncNs  *metrics.GaugeVec
	walSegments *metrics.GaugeVec
	checkpoints *metrics.GaugeVec
	checkpntNs  *metrics.GaugeVec

	// Go runtime gauges, sampled at scrape.
	goroutines *metrics.GaugeVec // no labels
	heapBytes  *metrics.GaugeVec
	gcCycles   *metrics.GaugeVec
	gcPauseNs  *metrics.GaugeVec

	// Cluster gauges, sampled at scrape from PlacementStats (lifetime
	// counters exported as gauges, matching the cache/durability idiom).
	clWorkers  *metrics.GaugeVec // {collection}
	clPartials *metrics.GaugeVec // {collection}
	clUp       *metrics.GaugeVec // {collection, worker}
	clRows     *metrics.GaugeVec
	clQueries  *metrics.GaugeVec
	clFailures *metrics.GaugeVec
	clRetries  *metrics.GaugeVec

	mu      sync.Mutex
	streams map[string]*stream.SkylineIndex // mutable collections by name
}

// New creates a Server over st. The Store stays owned by the Server
// from here on: Close closes it.
func New(st *skybench.Store, opts Options) *Server {
	if opts.DeltaQueue <= 0 {
		opts.DeltaQueue = DefaultDeltaQueue
	}
	s := &Server{
		st:      st,
		opts:    opts,
		done:    make(chan struct{}),
		reg:     metrics.NewRegistry(),
		streams: make(map[string]*stream.SkylineIndex),
	}
	r := s.reg
	s.reqs = r.NewCounterVec("skyserved_requests_total", "Requests served, by collection and endpoint.", "collection", "endpoint")
	s.errs = r.NewCounterVec("skyserved_errors_total", "Error responses, by collection and wire error code.", "collection", "code")
	s.lat = r.NewHistogramVec("skyserved_request_duration_seconds", "Request service time in seconds.", nil, "collection", "endpoint")
	s.subs = r.NewGaugeVec("skyserved_delta_subscribers", "Live delta subscribers.", "collection")
	s.subDrops = r.NewCounterVec("skyserved_delta_dropped_total", "Delta subscribers disconnected for falling behind.", "collection")
	s.cacheHits = r.NewGaugeVec("skyserved_cache_hits", "Result-cache hits (lifetime, sampled at scrape).", "collection")
	s.cacheMisses = r.NewGaugeVec("skyserved_cache_misses", "Result-cache misses (lifetime, sampled at scrape).", "collection")
	s.cacheSize = r.NewGaugeVec("skyserved_cache_entries", "Cached results at scrape time.", "collection")
	s.inflight = r.NewGaugeVec("skyserved_collection_inflight", "Queries executing at scrape time.", "collection")
	s.points = r.NewGaugeVec("skyserved_collection_points", "Live points at scrape time.", "collection")
	s.epoch = r.NewGaugeVec("skyserved_collection_epoch", "Membership epoch at scrape time.", "collection")
	s.storeInfl = r.NewGaugeVec("skyserved_store_inflight", "Submitted queries holding an admission slot.")
	s.storeQueue = r.NewGaugeVec("skyserved_store_queue_depth", "Submitted queries waiting for an admission slot.")
	s.phaseDur = r.NewHistogramVec("skyserved_query_phase_seconds", "Engine time per execution phase, executed queries only.", nil, "collection", "phase")
	s.algoDur = r.NewHistogramVec("skyserved_query_algorithm_seconds", "Engine service time by algorithm, executed queries only.", nil, "collection", "algorithm")
	s.algoDTs = r.NewHistogramVec("skyserved_query_dominance_tests", "Dominance tests per executed query, by algorithm.", dtBuckets, "collection", "algorithm")
	s.planDecisions = r.NewCounterVec("skyserved_planner_decisions_total", "Adaptive planner decisions for algorithm auto queries, by chosen algorithm and explore flag.", "collection", "algorithm", "explore")
	s.walFsyncs = r.NewGaugeVec("skyserved_wal_fsyncs", "WAL fsyncs (lifetime, sampled at scrape).", "collection")
	s.walFsyncNs = r.NewGaugeVec("skyserved_wal_fsync_nanoseconds", "Total time in WAL fsyncs (lifetime, sampled at scrape).", "collection")
	s.walSegments = r.NewGaugeVec("skyserved_wal_segments", "Live WAL segment files at scrape time.", "collection")
	s.checkpoints = r.NewGaugeVec("skyserved_checkpoints", "Checkpoints written (lifetime, sampled at scrape).", "collection")
	s.checkpntNs = r.NewGaugeVec("skyserved_checkpoint_nanoseconds", "Total time writing checkpoints (lifetime, sampled at scrape).", "collection")
	s.goroutines = r.NewGaugeVec("skyserved_goroutines", "Goroutines at scrape time.")
	s.heapBytes = r.NewGaugeVec("skyserved_heap_alloc_bytes", "Heap bytes allocated and in use at scrape time.")
	s.gcCycles = r.NewGaugeVec("skyserved_gc_cycles", "Completed GC cycles at scrape time.")
	s.gcPauseNs = r.NewGaugeVec("skyserved_gc_pause_nanoseconds", "Cumulative GC stop-the-world pause at scrape time.")
	s.clWorkers = r.NewGaugeVec("skyserved_cluster_workers", "Placed cluster workers at scrape time.", "collection")
	s.clPartials = r.NewGaugeVec("skyserved_cluster_partial_results", "Partial (degraded) cluster answers served (lifetime, sampled at scrape).", "collection")
	s.clUp = r.NewGaugeVec("skyserved_cluster_worker_up", "1 when the worker's last health probe succeeded.", "collection", "worker")
	s.clRows = r.NewGaugeVec("skyserved_cluster_worker_rows", "Rows placed on the worker.", "collection", "worker")
	s.clQueries = r.NewGaugeVec("skyserved_cluster_worker_queries", "Fan-out calls sent to the worker (lifetime, sampled at scrape).", "collection", "worker")
	s.clFailures = r.NewGaugeVec("skyserved_cluster_worker_failures", "Fan-out calls the worker failed (lifetime, sampled at scrape).", "collection", "worker")
	s.clRetries = r.NewGaugeVec("skyserved_cluster_worker_retries", "Transport retries toward the worker (lifetime, sampled at scrape).", "collection", "worker")

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/collections/{name}/query", s.instrument("query", s.handleQuery))
	mux.HandleFunc("POST /v1/collections/{name}/points", s.instrument("insert", s.handleInsert))
	mux.HandleFunc("DELETE /v1/collections/{name}/points/{id}", s.instrument("delete", s.handleDeletePoint))
	mux.HandleFunc("GET /v1/collections/{name}/deltas", s.instrument("deltas", s.handleDeltas))
	mux.HandleFunc("PUT /v1/collections/{name}", s.instrument("attach", s.handleAttach))
	mux.HandleFunc("DELETE /v1/collections/{name}", s.instrument("drop", s.handleDrop))
	mux.HandleFunc("GET /v1/collections/{name}", s.instrument("info", s.handleInfo))
	mux.HandleFunc("GET /v1/collections", s.instrument("list", s.handleList))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-s.done: // draining: tell load balancers to stop routing here
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
		default:
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, "ok\n")
		}
	})
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Store returns the served Store (for embedding applications that
// attach collections directly).
func (s *Server) Store() *skybench.Store { return s.st }

// Drain begins graceful shutdown: delta subscriptions and other
// long-lived handlers are told to finish, so a subsequent
// http.Server.Shutdown — which waits for every active handler — can
// drain the in-flight request queue and complete. Idempotent.
func (s *Server) Drain() {
	s.drainOnce.Do(func() { close(s.done) })
}

// Close finishes shutdown: Drain, then close the Store — which drops
// every collection and, for durable stream collections it owns, takes a
// final checkpoint and closes the WAL so a restart recovers without
// replay. Call after http.Server.Shutdown has returned (queries still
// executing must have finished). Idempotent.
func (s *Server) Close() {
	s.Drain()
	s.closeOnce.Do(func() { s.st.Close() })
}

// --- collection management ----------------------------------------------

// AttachStaticFile loads a headerless CSV file and attaches it as an
// immutable collection.
func (s *Server) AttachStaticFile(name, path string, opts skybench.CollectionOptions) (*skybench.Collection, error) {
	m, err := dataset.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: reading %s: %v", skybench.ErrBadDataset, path, err)
	}
	ds, err := skybench.DatasetFromFlat(m.Flat(), m.N(), m.D())
	if err != nil {
		return nil, err
	}
	return s.st.Attach(name, ds, opts)
}

// AttachStreamIndex attaches a live SkylineIndex as a mutable
// collection: the server routes point inserts/deletes and delta
// subscriptions for name to it. own transfers ownership (the index is
// closed when the collection is dropped or the Store closes).
func (s *Server) AttachStreamIndex(name string, ix *stream.SkylineIndex, own bool, opts skybench.CollectionOptions) (*skybench.Collection, error) {
	opts.CloseOnDrop = own
	col, err := s.st.AttachStream(name, ix, opts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.streams[name] = ix
	s.mu.Unlock()
	return col, nil
}

// AttachDurable attaches a durable stream collection from dir: existing
// state is recovered (stream.Recover, so d may be zero — the directory
// knows its own shape); a directory with no state is refused unless
// create is set, in which case a fresh d-dimensional durable index is
// created there (cfg.Durable supplies the WAL policy; its Dir may be
// empty). The server owns the result either way — dropping the
// collection or closing the Store checkpoints and closes the WAL.
func (s *Server) AttachDurable(name, dir string, create bool, d int, cfg stream.Config, opts skybench.CollectionOptions) (*skybench.Collection, error) {
	var ix *stream.SkylineIndex
	var err error
	if stream.HasState(dir) {
		ix, err = stream.Recover(dir, cfg)
	} else if create {
		if d < 1 {
			return nil, fmt.Errorf("%w: creating a durable collection needs a dimensionality", skybench.ErrBadQuery)
		}
		if cfg.Durable == nil {
			cfg.Durable = &stream.Durability{}
		}
		cfg.Durable.Dir = dir
		ix, err = stream.New(d, cfg)
	} else {
		return nil, fmt.Errorf("%w: no durable stream state in %q (set create to initialize one)", skybench.ErrBadDataset, dir)
	}
	if err != nil {
		return nil, err
	}
	col, err := s.AttachStreamIndex(name, ix, true, opts)
	if err != nil {
		ix.Close()
		return nil, err
	}
	return col, nil
}

// Drop detaches the named collection and forgets its stream routing.
func (s *Server) Drop(name string) error {
	if err := s.st.Drop(name); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.streams, name)
	s.mu.Unlock()
	return nil
}

// streamIndex returns the mutable index serving name, or nil.
func (s *Server) streamIndex(name string) *stream.SkylineIndex {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[name]
}

// --- request plumbing ----------------------------------------------------

// observation carries one request's outcome from its handler to the
// instrumentation wrapper.
type observation struct {
	collection  string
	status      int
	code        string
	fingerprint string
	algorithm   string
	cacheHit    bool
	trace       *skybench.QueryTrace // for the slow-query log, when traced
}

// instrument wraps a handler with metrics and event logging: request
// and error counters, the latency histogram, and one event-log line per
// request.
func (s *Server) instrument(endpoint string, fn func(http.ResponseWriter, *http.Request, *observation)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		obs := &observation{collection: r.PathValue("name"), status: http.StatusOK}
		start := time.Now()
		fn(w, r, obs)
		elapsed := time.Since(start)
		s.reqs.With(obs.collection, endpoint).Inc()
		if obs.code != "" {
			s.errs.With(obs.collection, obs.code).Inc()
		}
		s.lat.With(obs.collection, endpoint).Observe(elapsed.Seconds())
		ev := Event{
			Collection:  obs.collection,
			Endpoint:    endpoint,
			Fingerprint: obs.fingerprint,
			Algorithm:   obs.algorithm,
			Status:      obs.status,
			Code:        obs.code,
			LatencyNs:   elapsed.Nanoseconds(),
			CacheHit:    obs.cacheHit,
		}
		// The slow-query log: a query at or over the threshold carries
		// its full trace (present on obs because SlowQuery forces
		// tracing), so the event line alone explains where the time went.
		if s.opts.SlowQuery > 0 && elapsed >= s.opts.SlowQuery {
			ev.Trace = obs.trace
		}
		s.opts.Events.Log(ev)
	}
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps err through the error table and writes the error
// body, recording status and code on the observation.
func writeError(w http.ResponseWriter, obs *observation, err error) {
	status, code := StatusForError(err)
	obs.status, obs.code = status, code
	writeJSON(w, status, ErrorBody{Error: ErrorInfo{Code: code, Message: err.Error()}})
}

// decodeJSON decodes the request body into v; an empty body leaves v at
// its zero value.
func decodeJSON(r *http.Request, v any) error {
	if r.Body == nil {
		return nil
	}
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil || errors.Is(err, io.EOF) {
		return nil
	}
	return fmt.Errorf("%w: malformed JSON body: %v", skybench.ErrBadQuery, err)
}

// requestCtx applies the wire deadline header, when present, to the
// request context.
func requestCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	ctx := r.Context()
	h := r.Header.Get(DeadlineHeader)
	if h == "" {
		return ctx, func() {}, nil
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms <= 0 {
		return nil, nil, fmt.Errorf("%w: header %s=%q (want a positive integer of milliseconds)", skybench.ErrBadQuery, DeadlineHeader, h)
	}
	ctx, cancel := context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
	return ctx, cancel, nil
}

// --- handlers ------------------------------------------------------------

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, obs *observation) {
	name := r.PathValue("name")
	col, err := s.st.Collection(name)
	if err != nil {
		writeError(w, obs, err)
		return
	}
	var req QueryRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, obs, err)
		return
	}
	obs.fingerprint = QueryFingerprint(&req)
	q, err := toQuery(&req)
	if err != nil {
		writeError(w, obs, err)
		return
	}
	ctx, cancel, err := requestCtx(r)
	if err != nil {
		writeError(w, obs, err)
		return
	}
	defer cancel()
	obs.algorithm = q.Algorithm.String()
	// Under a slow-query threshold every query is traced server-side so
	// a slow one can be explained after the fact; the response still
	// only carries a trace when the request asked for one.
	if s.opts.SlowQuery > 0 {
		q.Trace = true
	}
	// Submit (rather than Run) routes the query through the Store's
	// admission control, so MaxInflight/MaxQueue overload comes back as
	// a synchronous 429 and the server cannot oversubscribe the engine.
	hits0 := col.CacheStats().Hits
	res, err := col.Submit(ctx, q).Result()
	if err != nil {
		writeError(w, obs, err)
		return
	}
	obs.cacheHit = col.CacheStats().Hits > hits0
	obs.trace = res.Trace
	if res.Plan != nil {
		// An "auto" query resolved to a concrete plan: count the decision
		// and attribute the engine cost (and the event-log record) to the
		// algorithm that actually ran, not the "auto" placeholder.
		s.planDecisions.With(name, res.Plan.Algorithm, strconv.FormatBool(res.Plan.Explore)).Inc()
		obs.algorithm = res.Plan.Algorithm
	}
	if !obs.cacheHit {
		s.observeQueryCost(name, obs.algorithm, &res.Stats)
	}
	writeJSON(w, http.StatusOK, buildQueryResponse(name, res, &req))
}

// observeQueryCost books one executed query's engine cost into the
// per-phase and per-algorithm histogram families. Cache hits are not
// observed — they did no engine work, and their stats describe the
// original execution, not this request.
func (s *Server) observeQueryCost(collection, algorithm string, st *skybench.Stats) {
	s.algoDur.With(collection, algorithm).Observe(st.Elapsed.Seconds())
	s.algoDTs.With(collection, algorithm).Observe(float64(st.DominanceTests))
	for _, ph := range []struct {
		name string
		d    time.Duration
	}{
		{"init", st.Timings.Init},
		{"prefilter", st.Timings.Prefilter},
		{"pivot", st.Timings.Pivot},
		{"phase1", st.Timings.PhaseOne},
		{"phase2", st.Timings.PhaseTwo},
		{"compress", st.Timings.Compress},
		{"other", st.Timings.Other},
	} {
		if ph.d > 0 {
			s.phaseDur.With(collection, ph.name).Observe(ph.d.Seconds())
		}
	}
}

// buildQueryResponse renders a QueryResult on the wire, applying the
// request's Top cut (fewest dominators first) when asked.
func buildQueryResponse(name string, res *skybench.QueryResult, req *QueryRequest) *QueryResponse {
	n := res.Len()
	pos := make([]int, n)
	for i := range pos {
		pos[i] = i
	}
	if req.Top > 0 && req.Top < n {
		if res.Counts != nil {
			sort.SliceStable(pos, func(a, b int) bool { return res.Counts[pos[a]] < res.Counts[pos[b]] })
		}
		pos = pos[:req.Top]
	}
	resp := &QueryResponse{
		Collection: name,
		Epoch:      res.Epoch,
		Stale:      res.Stale,
		Partial:    res.Partial,
		Count:      len(pos),
		Indices:    make([]int, len(pos)),
		Stats: QueryStats{
			DominanceTests: res.Stats.DominanceTests,
			InputSize:      res.Stats.InputSize,
			Threads:        res.Stats.Threads,
			ElapsedNs:      res.Stats.Elapsed.Nanoseconds(),
		},
	}
	for i, p := range pos {
		resp.Indices[i] = res.Indices[p]
	}
	if res.Counts != nil {
		resp.Counts = make([]int32, len(pos))
		for i, p := range pos {
			resp.Counts[i] = res.Counts[p]
		}
	}
	if len(pos) > 0 {
		if _, ok := res.ID(pos[0]); ok {
			resp.IDs = make([]uint64, len(pos))
			for i, p := range pos {
				resp.IDs[i], _ = res.ID(p)
			}
		}
	}
	if !req.OmitValues {
		resp.Values = make([][]float64, len(pos))
		for i, p := range pos {
			resp.Values[i] = res.Row(p)
		}
	}
	if req.Trace {
		resp.Trace = res.Trace
	}
	resp.Planner = res.Plan
	return resp
}

// mutableIndex resolves the stream index serving name, distinguishing
// "unknown collection" from "not mutable over the wire".
func (s *Server) mutableIndex(name string) (*stream.SkylineIndex, error) {
	if ix := s.streamIndex(name); ix != nil {
		return ix, nil
	}
	if _, err := s.st.Collection(name); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("%w: collection %q is not mutable over the wire (static, or stream-attached outside the server)", skybench.ErrBadQuery, name)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request, obs *observation) {
	name := r.PathValue("name")
	ix, err := s.mutableIndex(name)
	if err != nil {
		writeError(w, obs, err)
		return
	}
	var req InsertRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, obs, err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, obs, fmt.Errorf("%w: empty points batch", skybench.ErrBadQuery))
		return
	}
	ids, err := ix.InsertBatch(req.Points)
	if err != nil {
		writeError(w, obs, err)
		return
	}
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	writeJSON(w, http.StatusOK, InsertResponse{IDs: out})
}

func (s *Server) handleDeletePoint(w http.ResponseWriter, r *http.Request, obs *observation) {
	name := r.PathValue("name")
	ix, err := s.mutableIndex(name)
	if err != nil {
		writeError(w, obs, err)
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, obs, fmt.Errorf("%w: point id %q", skybench.ErrBadQuery, r.PathValue("id")))
		return
	}
	if !ix.Delete(stream.ID(id)) {
		// A false return is either "not live" or, on a durable index, a
		// rejected mutation (WAL append failure) with the point still
		// live — Err plus liveness disambiguates.
		if err := ix.Err(); err != nil && ix.Contains(stream.ID(id)) {
			writeError(w, obs, err)
			return
		}
		writeError(w, obs, fmt.Errorf("%w: %d in collection %q", ErrUnknownPoint, id, name))
		return
	}
	writeJSON(w, http.StatusOK, DeleteResponse{Deleted: true})
}

func (s *Server) handleAttach(w http.ResponseWriter, r *http.Request, obs *observation) {
	name := r.PathValue("name")
	var req AttachRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, obs, err)
		return
	}
	backings := 0
	for _, set := range []bool{req.Static != nil, req.Stream != nil, req.Cluster != nil} {
		if set {
			backings++
		}
	}
	if backings != 1 {
		writeError(w, obs, fmt.Errorf("%w: attach body needs exactly one of static, stream, or cluster", skybench.ErrBadQuery))
		return
	}
	opts := skybench.CollectionOptions{
		Shards:         req.Shards,
		CacheCapacity:  req.CacheCapacity,
		DefaultTimeout: time.Duration(req.DefaultTimeoutMs) * time.Millisecond,
	}
	var err error
	switch {
	case req.Static != nil:
		_, err = s.AttachStaticFile(name, req.Static.Path, opts)
	case req.Stream != nil:
		err = s.attachStreamSpec(name, req.Stream, opts)
	default:
		if s.opts.AttachCluster == nil {
			err = fmt.Errorf("%w: this server is not running in coordinator mode (no cluster attach hook)", skybench.ErrBadQuery)
		} else {
			err = s.opts.AttachCluster(name, req.Cluster, opts)
		}
	}
	if err != nil {
		writeError(w, obs, err)
		return
	}
	info, err := s.collectionInfo(name)
	if err != nil {
		writeError(w, obs, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// attachStreamSpec realizes a StreamSpec: recover/create a durable
// index, or create an in-memory one.
func (s *Server) attachStreamSpec(name string, spec *StreamSpec, opts skybench.CollectionOptions) error {
	prefs, err := prefsFromWire(spec.Prefs)
	if err != nil {
		return err
	}
	cfg := stream.Config{Prefs: prefs, SkybandK: spec.SkybandK}
	if spec.Dir == "" {
		if spec.D < 1 {
			return fmt.Errorf("%w: an in-memory stream collection needs a dimensionality", skybench.ErrBadQuery)
		}
		ix, err := stream.New(spec.D, cfg)
		if err != nil {
			return err
		}
		if _, err := s.AttachStreamIndex(name, ix, true, opts); err != nil {
			ix.Close()
			return err
		}
		return nil
	}
	dur := &stream.Durability{Dir: spec.Dir, CheckpointEvery: spec.CheckpointEvery}
	switch spec.Fsync {
	case "", "os":
		dur.Fsync = stream.FsyncOS
	case "always":
		dur.Fsync = stream.FsyncAlways
	case "interval":
		dur.Fsync = stream.FsyncInterval
	default:
		return fmt.Errorf("%w: fsync %q (want os|always|interval)", skybench.ErrBadQuery, spec.Fsync)
	}
	cfg.Durable = dur
	_, err = s.AttachDurable(name, spec.Dir, spec.Create, spec.D, cfg, opts)
	return err
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request, obs *observation) {
	name := r.PathValue("name")
	if err := s.Drop(name); err != nil {
		writeError(w, obs, err)
		return
	}
	writeJSON(w, http.StatusOK, DropResponse{Dropped: true})
}

// collectionInfo builds the wire description of one collection.
func (s *Server) collectionInfo(name string) (CollectionInfo, error) {
	col, err := s.st.Collection(name)
	if err != nil {
		return CollectionInfo{}, err
	}
	cs, err := col.Stats()
	if err != nil {
		return CollectionInfo{}, err
	}
	info := CollectionInfo{
		Name:         cs.Name,
		N:            cs.N,
		D:            cs.D,
		Epoch:        cs.Epoch,
		Shards:       cs.Shards,
		StreamBacked: cs.StreamBacked,
		Inflight:     cs.Inflight,
		Cache:        CacheInfo{Hits: cs.Cache.Hits, Misses: cs.Cache.Misses, Entries: cs.Cache.Entries},
		Subscribers:  s.subs.With(name).Value(),
	}
	for _, ac := range cs.Costs {
		info.Costs = append(info.Costs, AlgorithmCostInfo{
			Algorithm:                  ac.Algorithm,
			Count:                      ac.Count,
			MeanLatencyNs:              ac.MeanLatency.Nanoseconds(),
			P50LatencyNs:               ac.P50Latency.Nanoseconds(),
			P99LatencyNs:               ac.P99Latency.Nanoseconds(),
			MeanDominanceTests:         ac.MeanDominanceTests,
			WindowedMeanDominanceTests: ac.WindowedMeanDominanceTests,
		})
	}
	if ps := cs.Planner; ps != nil {
		pi := &PlannerInfo{
			Class:        ps.Class,
			MeanSpearman: ps.MeanSpearman,
			SkylineFrac:  ps.SkylineFrac,
			SkylineEst:   ps.SkylineEst,
			SampleN:      ps.SampleN,
		}
		for _, d := range ps.Decisions {
			pi.Decisions = append(pi.Decisions, PlannerDecisionInfo{
				Algorithm: d.Algorithm,
				Shards:    d.Shards,
				Explore:   d.Explore,
				Count:     d.Count,
			})
		}
		info.Planner = pi
	}
	if pl := cs.Placement; pl != nil {
		ci := &ClusterInfo{Policy: pl.Policy, Partials: pl.Partials}
		for _, wp := range pl.Workers {
			ci.Workers = append(ci.Workers, ClusterWorkerInfo{
				Addr:     wp.Addr,
				Lo:       wp.Lo,
				Hi:       wp.Hi,
				Healthy:  wp.Healthy,
				Queries:  wp.Queries,
				Failures: wp.Failures,
				Retries:  wp.Retries,
			})
		}
		info.Cluster = ci
	}
	if ds := cs.Durability; ds != nil {
		info.Durability = &DurabilityInfo{
			WALFsyncs:        ds.WALFsyncs,
			WALFsyncNs:       ds.WALFsyncTime.Nanoseconds(),
			WALSegments:      ds.WALSegments,
			Checkpoints:      ds.Checkpoints,
			CheckpointNs:     ds.CheckpointTime.Nanoseconds(),
			LastCheckpointNs: ds.LastCheckpoint.Nanoseconds(),
		}
	}
	if ix := s.streamIndex(name); ix != nil {
		info.Durable = ix.Durable()
	}
	return info, nil
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request, obs *observation) {
	info, err := s.collectionInfo(r.PathValue("name"))
	if err != nil {
		writeError(w, obs, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request, obs *observation) {
	names := s.st.Names() // sorted — the listing order is part of the API
	list := CollectionList{Collections: make([]CollectionInfo, 0, len(names))}
	for _, name := range names {
		info, err := s.collectionInfo(name)
		if err != nil {
			continue // dropped between Names and here
		}
		list.Collections = append(list.Collections, info)
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Refresh the scrape-time gauges from the Store before rendering.
	for _, name := range s.st.Names() {
		col, err := s.st.Collection(name)
		if err != nil {
			continue
		}
		cs, err := col.Stats()
		if err != nil {
			continue
		}
		s.cacheHits.With(name).Set(int64(cs.Cache.Hits))
		s.cacheMisses.With(name).Set(int64(cs.Cache.Misses))
		s.cacheSize.With(name).Set(int64(cs.Cache.Entries))
		s.inflight.With(name).Set(cs.Inflight)
		s.points.With(name).Set(int64(cs.N))
		s.epoch.With(name).Set(int64(cs.Epoch))
		if pl := cs.Placement; pl != nil {
			s.clWorkers.With(name).Set(int64(len(pl.Workers)))
			s.clPartials.With(name).Set(int64(pl.Partials))
			for i, wp := range pl.Workers {
				wl := strconv.Itoa(i)
				up := int64(0)
				if wp.Healthy {
					up = 1
				}
				s.clUp.With(name, wl).Set(up)
				s.clRows.With(name, wl).Set(int64(wp.Hi - wp.Lo))
				s.clQueries.With(name, wl).Set(int64(wp.Queries))
				s.clFailures.With(name, wl).Set(int64(wp.Failures))
				s.clRetries.With(name, wl).Set(int64(wp.Retries))
			}
		}
		if ds := cs.Durability; ds != nil {
			s.walFsyncs.With(name).Set(int64(ds.WALFsyncs))
			s.walFsyncNs.With(name).Set(ds.WALFsyncTime.Nanoseconds())
			s.walSegments.With(name).Set(int64(ds.WALSegments))
			s.checkpoints.With(name).Set(int64(ds.Checkpoints))
			s.checkpntNs.With(name).Set(ds.CheckpointTime.Nanoseconds())
		}
	}
	s.storeInfl.With().Set(int64(s.st.Inflight()))
	s.storeQueue.With().Set(int64(s.st.QueueDepth()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.goroutines.With().Set(int64(runtime.NumGoroutine()))
	s.heapBytes.With().Set(int64(ms.HeapAlloc))
	s.gcCycles.With().Set(int64(ms.NumGC))
	s.gcPauseNs.With().Set(int64(ms.PauseTotalNs))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteText(w)
}
