// Per-request event logging, following the SABRE idiom: a standard,
// line-oriented event log every run emits in the same shape, so
// downstream tooling (plotting, comparison, and — the design target —
// the cmd/loadbench replay harness of ROADMAP item 5) consumes one
// format regardless of which server produced it.
package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"

	"skybench"
)

// Event is one served request in the NDJSON event log (skyserved
// -log-events): exactly one JSON object per line, in completion order.
// This is the input format a workload-replay harness consumes: TS and
// LatencyNs reconstruct the arrival process, Collection + Endpoint +
// Fingerprint identify the request class, and Status/Code/CacheHit give
// the per-class outcome rates to compare against.
type Event struct {
	// TS is the request completion time, RFC 3339 with nanoseconds.
	TS string `json:"ts"`
	// Collection is the target collection ("" for store-wide endpoints
	// like the listing).
	Collection string `json:"collection,omitempty"`
	// Endpoint is the request class: "query", "insert", "delete",
	// "deltas", "attach", "drop", "info", "list".
	Endpoint string `json:"endpoint"`
	// Fingerprint is the stable query fingerprint (QueryFingerprint);
	// query events only.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Algorithm is the algorithm the query resolved to (after
	// defaulting); query events only.
	Algorithm string `json:"algorithm,omitempty"`
	// Status is the HTTP status served; Code the wire error code for
	// non-2xx outcomes.
	Status int    `json:"status"`
	Code   string `json:"code,omitempty"`
	// LatencyNs is the server-side service time in nanoseconds (for
	// delta subscriptions: the connection lifetime).
	LatencyNs int64 `json:"latencyNs"`
	// CacheHit marks a query answered from the collection's result
	// cache. Best-effort under concurrency: it is derived from the
	// cache counters around the call, so two exactly-concurrent queries
	// of the same shape can misattribute one hit.
	CacheHit bool `json:"cacheHit,omitempty"`
	// Trace is the full execution trace of a slow query — attached only
	// when the server runs with a slow-query threshold
	// (Options.SlowQuery) and the request took at least that long.
	Trace *skybench.QueryTrace `json:"trace,omitempty"`
}

// EventLog serializes Events as NDJSON onto one writer, buffered.
// Safe for concurrent use; a nil *EventLog discards everything, so
// callers never branch. The buffer means a line is not on disk until
// Flush (or Close) — the server flushes during graceful drain so a
// SIGTERM never truncates the log mid-line.
type EventLog struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer // underlying writer, when it needs closing
	enc *json.Encoder
}

// NewEventLog creates an event log writing to w. If w is also an
// io.Closer, Close closes it after the final flush.
func NewEventLog(w io.Writer) *EventLog {
	bw := bufio.NewWriter(w)
	l := &EventLog{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		l.c = c
	}
	return l
}

// Log appends one event (filling TS if unset). Encoding errors are
// dropped: the event log is observability, never worth failing a
// request over.
func (l *EventLog) Log(ev Event) {
	if l == nil {
		return
	}
	if ev.TS == "" {
		ev.TS = time.Now().UTC().Format(time.RFC3339Nano)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.enc.Encode(&ev)
}

// Flush writes any buffered events through to the underlying writer.
// Nil-safe.
func (l *EventLog) Flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Flush()
}

// Close flushes and, when the underlying writer is an io.Closer,
// closes it. Nil-safe and idempotent for the flush; the underlying
// Close's idempotence is the writer's business.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	err := l.Flush()
	if l.c != nil {
		if cerr := l.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
