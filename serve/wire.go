// Wire protocol: the JSON shapes skyserved speaks and the single
// error-mapping table between the skybench sentinel errors and HTTP
// status codes. serve/client shares these types, so the Go client and
// the server can never disagree about a field name. DESIGN.md §12
// documents the protocol.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"

	"skybench"
)

// DeadlineHeader carries a per-request deadline in integer
// milliseconds. The server maps it onto the query's context.Context, so
// it flows through the same cancellation checkpoints as a native
// context deadline and a missed deadline comes back as 504.
const DeadlineHeader = "X-Skybench-Deadline-Ms"

// ErrUnknownPoint reports a point-delete for an ID that is not live in
// the collection — the one serving-layer error class that has no
// skybench sentinel (the Go API returns a bool there).
var ErrUnknownPoint = errors.New("serve: unknown point id")

// QueryRequest is the body of POST /v1/collections/{name}/query. The
// zero value (or an empty body) runs the default query: Hybrid,
// minimize every dimension, plain skyline.
type QueryRequest struct {
	// Algorithm names the algorithm ("hybrid", "qflow", ...; default
	// hybrid), exactly as skybench.ParseAlgorithm accepts.
	Algorithm string `json:"algorithm,omitempty"`
	// Prefs holds one per-dimension preference, "min", "max", or
	// "ignore"; empty minimizes every dimension.
	Prefs []string `json:"prefs,omitempty"`
	// SkybandK generalizes the query to the k-skyband, as
	// skybench.Query.SkybandK.
	SkybandK int `json:"skybandK,omitempty"`
	// Top, when > 0, returns only the Top result points with the fewest
	// dominators (ties broken by result order) — the wire form of
	// Result.TopK. The response comes back in ascending-count order.
	Top int `json:"top,omitempty"`
	// Alpha, Beta, Pivot, and Seed override the algorithm's tuning
	// parameters, as the corresponding skybench.Query fields.
	Alpha int    `json:"alpha,omitempty"`
	Beta  int    `json:"beta,omitempty"`
	Pivot string `json:"pivot,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	// AllowStale opts into graceful degradation, as
	// skybench.Query.AllowStale: on overload or a missed deadline the
	// last cached result for this query shape is served with
	// "stale": true instead of a 429/504.
	AllowStale bool `json:"allowStale,omitempty"`
	// OmitValues drops the per-point coordinate arrays from the
	// response — indices, IDs, and counts only — for callers that keep
	// their own copy of the data.
	OmitValues bool `json:"omitValues,omitempty"`
	// Trace requests an EXPLAIN ANALYZE-style execution trace in the
	// response (skybench.Query.Trace). A delivery option: it never
	// changes what is computed or cached, and is excluded from the query
	// fingerprint.
	Trace bool `json:"trace,omitempty"`
}

// QueryStats is the measurement block of a QueryResponse.
type QueryStats struct {
	DominanceTests uint64 `json:"dominanceTests"`
	InputSize      int    `json:"inputSize"`
	Threads        int    `json:"threads"`
	ElapsedNs      int64  `json:"elapsedNs"`
}

// QueryResponse is the result of one query.
type QueryResponse struct {
	Collection string `json:"collection"`
	// Epoch is the membership epoch the result answers for; Stale marks
	// a graceful-degradation answer from an earlier epoch.
	Epoch uint64 `json:"epoch"`
	Stale bool   `json:"stale,omitempty"`
	// Partial marks a degraded cluster answer: one or more workers
	// failed and the collection's partial policy merged the rest, so
	// the rows placed on the failed workers are missing. Never set for
	// local collections.
	Partial bool `json:"partial,omitempty"`
	// Count is the number of result points.
	Count int `json:"count"`
	// Indices are snapshot row positions (the stable handle for static
	// collections); IDs are the stream IDs of the same points, present
	// only for stream-backed collections. Counts are per-point dominator
	// counts, present only for k-skyband queries; Values the per-point
	// coordinates unless the request set omitValues.
	Indices []int       `json:"indices"`
	IDs     []uint64    `json:"ids,omitempty"`
	Counts  []int32     `json:"counts,omitempty"`
	Values  [][]float64 `json:"values,omitempty"`
	Stats   QueryStats  `json:"stats"`
	// Trace is the execution trace, present only when the request set
	// trace. skybench.QueryTrace marshals durations as integer
	// nanoseconds, so the trace round-trips the wire exactly.
	Trace *skybench.QueryTrace `json:"trace,omitempty"`
	// Planner is the adaptive planner's decision, present only for
	// algorithm "auto" requests (traced or not).
	Planner *skybench.PlannerTrace `json:"planner,omitempty"`
}

// InsertRequest is the body of POST /v1/collections/{name}/points: a
// batch of points, inserted atomically through the index's group-commit
// path (one fsync per batch on a durable collection).
type InsertRequest struct {
	Points [][]float64 `json:"points"`
}

// InsertResponse returns the assigned stream IDs, in input order.
type InsertResponse struct {
	IDs []uint64 `json:"ids"`
}

// DeleteResponse acknowledges DELETE .../points/{id}.
type DeleteResponse struct {
	Deleted bool `json:"deleted"`
}

// DropResponse acknowledges DELETE /v1/collections/{name}.
type DropResponse struct {
	Dropped bool `json:"dropped"`
}

// CacheInfo mirrors skybench.CacheStats on the wire.
type CacheInfo struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// AlgorithmCostInfo mirrors skybench.AlgorithmCost on the wire: one
// collection's rolling execution-cost statistics for one algorithm.
type AlgorithmCostInfo struct {
	Algorithm          string  `json:"algorithm"`
	Count              uint64  `json:"count"`
	MeanLatencyNs      int64   `json:"meanLatencyNs"`
	P50LatencyNs       int64   `json:"p50LatencyNs"`
	P99LatencyNs       int64   `json:"p99LatencyNs"`
	MeanDominanceTests float64 `json:"meanDominanceTests"`
	// WindowedMeanDominanceTests is the mean dominance-test count over
	// the same window the latency percentiles cover.
	WindowedMeanDominanceTests float64 `json:"windowedMeanDominanceTests"`
}

// PlannerInfo mirrors skybench.PlannerStats on the wire: the adaptive
// planner's data profile and decision tallies.
type PlannerInfo struct {
	Class        string                `json:"class"`
	MeanSpearman float64               `json:"meanSpearman"`
	SkylineFrac  float64               `json:"skylineFrac"`
	SkylineEst   int                   `json:"skylineEst"`
	SampleN      int                   `json:"sampleN"`
	Decisions    []PlannerDecisionInfo `json:"decisions,omitempty"`
}

// PlannerDecisionInfo is one (plan, explore-mode) decision tally.
type PlannerDecisionInfo struct {
	Algorithm string `json:"algorithm"`
	Shards    int    `json:"shards"`
	Explore   bool   `json:"explore,omitempty"`
	Count     uint64 `json:"count"`
}

// DurabilityInfo mirrors skybench.DurabilityStats on the wire.
type DurabilityInfo struct {
	WALFsyncs        uint64 `json:"walFsyncs"`
	WALFsyncNs       int64  `json:"walFsyncNs"`
	WALSegments      int    `json:"walSegments"`
	Checkpoints      uint64 `json:"checkpoints"`
	CheckpointNs     int64  `json:"checkpointNs"`
	LastCheckpointNs int64  `json:"lastCheckpointNs,omitempty"`
}

// CollectionInfo describes one collection (GET /v1/collections and
// GET /v1/collections/{name}).
type CollectionInfo struct {
	Name         string    `json:"name"`
	N            int       `json:"n"`
	D            int       `json:"d"`
	Epoch        uint64    `json:"epoch"`
	Shards       int       `json:"shards"`
	StreamBacked bool      `json:"streamBacked"`
	Durable      bool      `json:"durable,omitempty"`
	Inflight     int64     `json:"inflight"`
	Cache        CacheInfo `json:"cache"`
	Subscribers  int64     `json:"subscribers,omitempty"`
	// Costs are the collection's per-algorithm rolling cost statistics,
	// one row per algorithm that has executed at least once.
	Costs []AlgorithmCostInfo `json:"costs,omitempty"`
	// Planner is the adaptive planner's profile and decision tallies,
	// absent until the collection has been profiled.
	Planner *PlannerInfo `json:"planner,omitempty"`
	// Durability carries WAL and checkpoint counters for durable
	// stream collections; absent otherwise.
	Durability *DurabilityInfo `json:"durability,omitempty"`
	// Cluster carries the worker placement and fan-out counters of a
	// cluster-backed collection; absent for local ones.
	Cluster *ClusterInfo `json:"cluster,omitempty"`
}

// ClusterInfo mirrors skybench.PlacementStats on the wire: how a
// cluster-backed collection's rows are placed across worker processes
// and how the fan-out has fared.
type ClusterInfo struct {
	// Policy is the degraded-answer policy: "failfast" or "partial".
	Policy string `json:"policy"`
	// Partials counts degraded (partial) answers served so far.
	Partials uint64 `json:"partials,omitempty"`
	// Workers describes each worker in placement order.
	Workers []ClusterWorkerInfo `json:"workers"`
}

// ClusterWorkerInfo is one worker's slice of a cluster placement.
type ClusterWorkerInfo struct {
	Addr    string `json:"addr"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	Healthy bool   `json:"healthy"`
	Queries uint64 `json:"queries"`
	// Failures counts fan-out calls that produced no mergeable answer;
	// Retries the transport retries spent on the worker.
	Failures uint64 `json:"failures,omitempty"`
	Retries  uint64 `json:"retries,omitempty"`
}

// CollectionList is the body of GET /v1/collections, sorted by name.
type CollectionList struct {
	Collections []CollectionInfo `json:"collections"`
}

// StaticSpec attaches an immutable collection from a headerless CSV
// file on the server's filesystem.
type StaticSpec struct {
	Path string `json:"path"`
}

// StreamSpec attaches a live stream-backed collection. With Dir set the
// directory's durable state is recovered (stream.Recover) — or, when it
// holds none and Create is set, a fresh durable index is created there.
// Without Dir an in-memory index is created. D is required when
// creating; recovery adopts the directory's recorded shape and rejects
// a conflicting one.
type StreamSpec struct {
	Dir      string   `json:"dir,omitempty"`
	Create   bool     `json:"create,omitempty"`
	D        int      `json:"d,omitempty"`
	SkybandK int      `json:"skybandK,omitempty"`
	Prefs    []string `json:"prefs,omitempty"`
	// Fsync is the WAL policy for durable indexes: "os" (default),
	// "always", or "interval".
	Fsync string `json:"fsync,omitempty"`
	// CheckpointEvery is the checkpoint cadence in applied records
	// (0 = default, negative = manual only).
	CheckpointEvery int `json:"checkpointEvery,omitempty"`
}

// ClusterSpec attaches a cluster-backed collection: the server splits
// the CSV at Path into one contiguous shard per worker, ships each
// shard to its worker through the attach endpoint, and serves queries
// by fanning out and merging exactly. Workers must be able to read the
// server's scratch directory (single-host clusters or a shared
// filesystem) — the shards travel by path, not by value.
type ClusterSpec struct {
	// Path is a headerless CSV on the server's filesystem holding the
	// full point set.
	Path string `json:"path"`
	// Workers are the worker base URLs, in placement order.
	Workers []string `json:"workers"`
	// Policy is the degraded-answer policy: "failfast" (default — any
	// worker failure fails the query) or "partial" (merge the surviving
	// workers and flag the response partial).
	Policy string `json:"policy,omitempty"`
	// MarginMs is the RTT-and-merge margin subtracted from the request
	// deadline when deriving per-worker budgets (default 5).
	MarginMs int64 `json:"marginMs,omitempty"`
	// Retries bounds transport retries per worker call (default 2).
	Retries int `json:"retries,omitempty"`
	// WorkerShards is the worker-local Shards option for the shipped
	// collections (0 = unsharded workers).
	WorkerShards int `json:"workerShards,omitempty"`
}

// AttachRequest is the body of PUT /v1/collections/{name}: exactly one
// of Static, Stream, or Cluster, plus collection options.
type AttachRequest struct {
	Static  *StaticSpec  `json:"static,omitempty"`
	Stream  *StreamSpec  `json:"stream,omitempty"`
	Cluster *ClusterSpec `json:"cluster,omitempty"`
	// Shards, CacheCapacity, and DefaultTimeoutMs map onto
	// skybench.CollectionOptions.
	Shards           int   `json:"shards,omitempty"`
	CacheCapacity    int   `json:"cacheCapacity,omitempty"`
	DefaultTimeoutMs int64 `json:"defaultTimeoutMs,omitempty"`
}

// PointData is one point in a delta event.
type PointData struct {
	ID     uint64    `json:"id"`
	Values []float64 `json:"values"`
}

// DeltaEvent is one skyline membership change on a delta subscription
// (GET /v1/collections/{name}/deltas): the points that entered and left
// after one mutation. Seq numbers the events of one subscription
// consecutively from 1, so a consumer can detect its own gap if it ever
// reconnects.
type DeltaEvent struct {
	Seq     uint64      `json:"seq"`
	Entered []PointData `json:"entered,omitempty"`
	Left    []PointData `json:"left,omitempty"`
}

// ErrorInfo is the error body every non-2xx response carries. Code is
// the stable machine-readable class (the wire form of the skybench
// sentinel errors — see StatusForError); Message the human diagnostic.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorBody wraps ErrorInfo in the response envelope.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// statusCanceled is the non-standard 499 "client closed request" status
// (nginx convention) reported when a query's context was canceled for a
// reason other than a deadline — normally because the client went away,
// so in practice nobody sees it; it exists to keep the event log and
// metrics honest.
const statusCanceled = 499

// errorTable is the single sentinel → (status, code) mapping, in match
// order. Order matters for the wrapping sentinels: every
// ErrDeadlineExceeded also wraps ErrCanceled, so the deadline row comes
// first.
var errorTable = []struct {
	sentinel error
	status   int
	code     string
}{
	{skybench.ErrOverloaded, http.StatusTooManyRequests, "overloaded"},
	{skybench.ErrDeadlineExceeded, http.StatusGatewayTimeout, "deadline_exceeded"},
	{skybench.ErrUnknownCollection, http.StatusNotFound, "unknown_collection"},
	{ErrUnknownPoint, http.StatusNotFound, "unknown_point"},
	{skybench.ErrDuplicateCollection, http.StatusConflict, "duplicate_collection"},
	{skybench.ErrWorkerUnavailable, http.StatusBadGateway, "worker_unavailable"},
	{skybench.ErrEpochSkew, http.StatusConflict, "epoch_skew"},
	{skybench.ErrBadQuery, http.StatusBadRequest, "bad_query"},
	{skybench.ErrBadPoint, http.StatusBadRequest, "bad_point"},
	{skybench.ErrBadDataset, http.StatusBadRequest, "bad_dataset"},
	{skybench.ErrUnknownAlgorithm, http.StatusBadRequest, "unknown_algorithm"},
	{skybench.ErrQueryPanic, http.StatusInternalServerError, "query_panic"},
	{skybench.ErrClosed, http.StatusServiceUnavailable, "closed"},
	{skybench.ErrCorruptWAL, http.StatusInternalServerError, "corrupt_wal"},
	{skybench.ErrCanceled, statusCanceled, "canceled"},
}

// StatusForError maps an error from the serving surfaces onto its HTTP
// status code and stable wire code, through the one table both
// directions share. Errors outside the typed taxonomy map to 500 /
// "internal".
func StatusForError(err error) (status int, code string) {
	for _, row := range errorTable {
		if errors.Is(err, row.sentinel) {
			return row.status, row.code
		}
	}
	return http.StatusInternalServerError, "internal"
}

// SentinelForCode maps a wire error code back onto the skybench
// sentinel it was produced from, so client-side errors.Is works across
// the network exactly as it does in-process. Unknown codes (and
// "internal") return nil.
func SentinelForCode(code string) error {
	for _, row := range errorTable {
		if row.code == code {
			return row.sentinel
		}
	}
	return nil
}

// prefsFromWire parses a wire preference vector ("min"/"max"/"ignore",
// case-insensitive) into skybench preferences.
func prefsFromWire(prefs []string) ([]skybench.Pref, error) {
	if len(prefs) == 0 {
		return nil, nil
	}
	out := make([]skybench.Pref, len(prefs))
	for i, s := range prefs {
		switch strings.ToLower(s) {
		case "min":
			out[i] = skybench.Min
		case "max":
			out[i] = skybench.Max
		case "ignore":
			out[i] = skybench.Ignore
		default:
			return nil, fmt.Errorf("%w: preference %q on dimension %d (want min|max|ignore)", skybench.ErrBadQuery, s, i)
		}
	}
	return out, nil
}

// prefsToWire renders skybench preferences as their wire spelling.
func prefsToWire(prefs []skybench.Pref) []string {
	if len(prefs) == 0 {
		return nil
	}
	out := make([]string, len(prefs))
	for i, p := range prefs {
		out[i] = p.String()
	}
	return out
}

// toQuery converts a wire query into a skybench.Query.
func toQuery(req *QueryRequest) (skybench.Query, error) {
	var q skybench.Query
	if req.Algorithm != "" {
		alg, err := skybench.ParseAlgorithm(req.Algorithm)
		if err != nil {
			return q, err
		}
		q.Algorithm = alg
	}
	prefs, err := prefsFromWire(req.Prefs)
	if err != nil {
		return q, err
	}
	q.Prefs = prefs
	if req.SkybandK < 0 {
		return q, fmt.Errorf("%w: negative skybandK %d", skybench.ErrBadQuery, req.SkybandK)
	}
	q.SkybandK = req.SkybandK
	q.Alpha = req.Alpha
	q.Beta = req.Beta
	if req.Pivot != "" {
		pv, err := skybench.ParsePivot(req.Pivot)
		if err != nil {
			return q, fmt.Errorf("%w: %v", skybench.ErrBadQuery, err)
		}
		q.Pivot = pv
	}
	q.Seed = req.Seed
	q.AllowStale = req.AllowStale
	q.Trace = req.Trace
	return q, nil
}

// QueryFingerprint is the stable short fingerprint of a wire query's
// result-determining fields: the per-request event log records it so a
// replay harness (ROADMAP item 5's cmd/loadbench) can group identical
// queries, and it deliberately ignores delivery options (omitValues,
// allowStale, trace) that don't change what is computed.
func QueryFingerprint(req *QueryRequest) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%d|%d|%s|%d",
		strings.ToLower(req.Algorithm), strings.ToLower(strings.Join(req.Prefs, ",")),
		req.SkybandK, req.Top, req.Alpha, req.Beta, strings.ToLower(req.Pivot), req.Seed)
	return fmt.Sprintf("%016x", h.Sum64())
}
