package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestTextExposition(t *testing.T) {
	r := NewRegistry()
	reqs := r.NewCounterVec("requests_total", "Requests.", "collection", "endpoint")
	gauge := r.NewGaugeVec("inflight", "Inflight.", "collection")
	hist := r.NewHistogramVec("latency_seconds", "Latency.", []float64{0.1, 1}, "endpoint")

	reqs.With("hotels", "query").Add(3)
	reqs.With("ticks", "insert").Inc()
	gauge.With("hotels").Set(2)
	gauge.With("hotels").Add(-1)
	hist.With("query").Observe(0.05)
	hist.With("query").Observe(0.5)
	hist.With("query").Observe(5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		`requests_total{collection="hotels",endpoint="query"} 3`,
		`requests_total{collection="ticks",endpoint="insert"} 1`,
		`inflight{collection="hotels"} 1`,
		`latency_seconds_bucket{endpoint="query",le="0.1"} 1`,
		`latency_seconds_bucket{endpoint="query",le="1"} 2`,
		`latency_seconds_bucket{endpoint="query",le="+Inf"} 3`,
		`latency_seconds_sum{endpoint="query"} 5.55`,
		`latency_seconds_count{endpoint="query"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("c_total", "C.", "name")
	v.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if want := `c_total{name="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %q\n%s", want, b.String())
	}
}

func TestZeroLabelFamilies(t *testing.T) {
	r := NewRegistry()
	g := r.NewGaugeVec("depth", "Depth.")
	g.With().Set(7)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "depth 7") {
		t.Errorf("zero-label gauge rendered wrong:\n%s", b.String())
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("ops_total", "Ops.", "kind")
	h := r.NewHistogramVec("lat", "Lat.", nil, "kind")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.With("a").Inc()
				h.With("a").Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := c.With("a").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := h.With("a").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestDuplicateFamilyPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Error("duplicate family did not panic")
		}
	}()
	r.NewGaugeVec("x_total", "X again.")
}
