// Prometheus text-format (version 0.0.4) parsing and linting: the
// consumer-side complement of WriteText. CI scrapes a live skyserved
// and lints the exposition through Lint, so a malformed family, a
// sample that escapes its family, or a non-monotone histogram fails
// the build instead of a dashboard.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Sample is one parsed sample line: a metric name (family name plus
// any _bucket/_sum/_count suffix), its label pairs in source order, and
// the value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label is one name="value" pair.
type Label struct {
	Name, Value string
}

// Get returns the value of the named label and whether it was present.
func (s *Sample) Get(name string) (string, bool) {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

// Family is one parsed metric family: its # HELP / # TYPE header and
// the samples that belong to it, in source order.
type Family struct {
	Name    string
	Help    string
	Type    string // counter | gauge | histogram | summary | untyped
	Samples []Sample
}

// Parse reads a Prometheus text exposition and returns its families in
// source order. It enforces the format's syntax: every sample belongs
// to the family most recently declared with # TYPE (allowing the
// histogram/summary suffixes), names are valid metric identifiers,
// label blocks are well-formed, and values parse as floats. Semantic
// consistency (bucket monotonicity and the like) is Lint's job.
func Parse(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var fams []Family
	byName := map[string]int{}
	var cur *Family
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		fail := func(format string, args ...any) ([]Family, error) {
			return nil, fmt.Errorf("line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validMetricName(name) {
				return fail("invalid metric name %q in %s line", name, fields[1])
			}
			if fields[1] == "HELP" {
				if i, ok := byName[name]; ok {
					if fams[i].Help != "" {
						return fail("second HELP for family %s", name)
					}
					if len(fields) == 4 {
						fams[i].Help = fields[3]
					}
					cur = &fams[i]
					continue
				}
				f := Family{Name: name}
				if len(fields) == 4 {
					f.Help = fields[3]
				}
				byName[name] = len(fams)
				fams = append(fams, f)
				cur = &fams[len(fams)-1]
				continue
			}
			// TYPE
			if len(fields) < 4 {
				return fail("TYPE line for %s is missing a type", name)
			}
			t := strings.TrimSpace(fields[3])
			switch t {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fail("unknown type %q for family %s", t, name)
			}
			if i, ok := byName[name]; ok {
				if fams[i].Type != "" {
					return fail("second TYPE for family %s", name)
				}
				if len(fams[i].Samples) > 0 {
					return fail("TYPE for family %s after its samples", name)
				}
				fams[i].Type = t
				cur = &fams[i]
				continue
			}
			byName[name] = len(fams)
			fams = append(fams, Family{Name: name, Type: t})
			cur = &fams[len(fams)-1]
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return fail("%v", err)
		}
		if cur == nil || !sampleInFamily(s.Name, cur) {
			// An untyped, headerless family is legal in the format; track
			// it so the linter can flag it.
			if i, ok := byName[s.Name]; ok && sampleInFamily(s.Name, &fams[i]) {
				fams[i].Samples = append(fams[i].Samples, s)
				continue
			}
			if cur != nil {
				return fail("sample %s does not belong to family %s", s.Name, cur.Name)
			}
			byName[s.Name] = len(fams)
			fams = append(fams, Family{Name: s.Name, Samples: []Sample{s}})
			cur = &fams[len(fams)-1]
			continue
		}
		cur.Samples = append(cur.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// sampleInFamily reports whether a sample name belongs to the family:
// the name itself (summaries put their quantile series there), or — for
// histograms and summaries — the conventional suffixed series.
func sampleInFamily(name string, f *Family) bool {
	if name == f.Name {
		return true
	}
	switch f.Type {
	case "histogram":
		return name == f.Name+"_bucket" || name == f.Name+"_sum" || name == f.Name+"_count"
	case "summary":
		return name == f.Name+"_sum" || name == f.Name+"_count"
	}
	return false
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseSample parses one sample line: name[{labels}] value [timestamp].
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	brace := strings.IndexByte(rest, '{')
	space := strings.IndexByte(rest, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		s.Name = rest[:brace]
		var err error
		rest, err = parseLabels(rest[brace:], &s)
		if err != nil {
			return s, err
		}
	} else {
		if space < 0 {
			return s, fmt.Errorf("sample %q has no value", line)
		}
		s.Name = rest[:space]
		rest = rest[space:]
	}
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %s has %d value fields, want value [timestamp]", s.Name, len(fields))
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %s: %v", s.Name, err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("sample %s: bad timestamp %q", s.Name, fields[1])
		}
	}
	return s, nil
}

// parseLabels consumes a {name="value",...} block, returning the
// remainder of the line.
func parseLabels(rest string, s *Sample) (string, error) {
	rest = rest[1:] // consume '{'
	for {
		rest = strings.TrimLeft(rest, " ")
		if len(rest) > 0 && rest[0] == '}' {
			return rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return rest, fmt.Errorf("unterminated label block")
		}
		name := strings.TrimSpace(rest[:eq])
		if !validLabelName(name) {
			return rest, fmt.Errorf("invalid label name %q", name)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return rest, fmt.Errorf("label %s: value is not quoted", name)
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if len(rest) == 0 {
				return rest, fmt.Errorf("label %s: unterminated value", name)
			}
			c := rest[0]
			if c == '"' {
				rest = rest[1:]
				break
			}
			if c == '\\' {
				if len(rest) < 2 {
					return rest, fmt.Errorf("label %s: dangling escape", name)
				}
				switch rest[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return rest, fmt.Errorf("label %s: unknown escape \\%c", name, rest[1])
				}
				rest = rest[2:]
				continue
			}
			val.WriteByte(c)
			rest = rest[1:]
		}
		s.Labels = append(s.Labels, Label{Name: name, Value: val.String()})
		rest = strings.TrimLeft(rest, " ")
		if len(rest) > 0 && rest[0] == ',' {
			rest = rest[1:]
			continue
		}
		if len(rest) > 0 && rest[0] == '}' {
			return rest[1:], nil
		}
		return rest, fmt.Errorf("label %s: expected ',' or '}'", name)
	}
}

// parseValue parses a sample value, accepting the format's +Inf/-Inf/
// NaN spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

// Lint parses a Prometheus text exposition and checks the semantic
// rules Parse cannot: every family is typed and carries help text,
// counter and histogram values are non-negative and finite, and each
// histogram series has monotone cumulative buckets, a +Inf bucket, and
// matching _count and _sum samples. It returns the first violation.
func Lint(r io.Reader) error {
	fams, err := Parse(r)
	if err != nil {
		return err
	}
	if len(fams) == 0 {
		return fmt.Errorf("exposition has no metric families")
	}
	for i := range fams {
		f := &fams[i]
		if f.Type == "" {
			return fmt.Errorf("family %s has no TYPE line", f.Name)
		}
		if f.Help == "" {
			return fmt.Errorf("family %s has no HELP line", f.Name)
		}
		switch f.Type {
		case "counter":
			for _, s := range f.Samples {
				if s.Value < 0 || math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
					return fmt.Errorf("counter %s has value %v", f.Name, s.Value)
				}
			}
		case "histogram":
			if err := lintHistogram(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// lintHistogram checks one histogram family series-by-series (a series
// is one combination of the non-le labels).
func lintHistogram(f *Family) error {
	type series struct {
		lastLe    float64
		lastCum   float64
		infCum    float64
		hasInf    bool
		count     float64
		hasCount  bool
		hasSum    bool
		bucketSeq int
	}
	bySeries := map[string]*series{}
	get := func(s *Sample) *series {
		var b strings.Builder
		for _, l := range s.Labels {
			if l.Name == "le" {
				continue
			}
			b.WriteString(l.Name)
			b.WriteByte('=')
			b.WriteString(l.Value)
			b.WriteByte(';')
		}
		key := b.String()
		sr := bySeries[key]
		if sr == nil {
			sr = &series{lastLe: math.Inf(-1)}
			bySeries[key] = sr
		}
		return sr
	}
	for i := range f.Samples {
		s := &f.Samples[i]
		sr := get(s)
		switch s.Name {
		case f.Name + "_bucket":
			leStr, ok := s.Get("le")
			if !ok {
				return fmt.Errorf("histogram %s: bucket without le label", f.Name)
			}
			le, err := parseValue(leStr)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", f.Name, leStr)
			}
			if le <= sr.lastLe {
				return fmt.Errorf("histogram %s: bucket bounds not ascending (le=%q)", f.Name, leStr)
			}
			if s.Value < sr.lastCum {
				return fmt.Errorf("histogram %s: cumulative bucket counts decrease at le=%q", f.Name, leStr)
			}
			sr.lastLe, sr.lastCum = le, s.Value
			if math.IsInf(le, 1) {
				sr.hasInf, sr.infCum = true, s.Value
			}
			sr.bucketSeq++
		case f.Name + "_count":
			sr.hasCount, sr.count = true, s.Value
		case f.Name + "_sum":
			sr.hasSum = true
		}
	}
	for key, sr := range bySeries {
		if sr.bucketSeq == 0 {
			return fmt.Errorf("histogram %s{%s}: no buckets", f.Name, key)
		}
		if !sr.hasInf {
			return fmt.Errorf("histogram %s{%s}: missing +Inf bucket", f.Name, key)
		}
		if !sr.hasCount || !sr.hasSum {
			return fmt.Errorf("histogram %s{%s}: missing _count or _sum", f.Name, key)
		}
		if sr.infCum != sr.count {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %v != count %v", f.Name, key, sr.infCum, sr.count)
		}
	}
	return nil
}
