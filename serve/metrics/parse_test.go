package metrics

import (
	"math"
	"strings"
	"testing"
)

// TestParseWriteTextRoundTrip feeds WriteText's own output — shaped
// like the server's registry, including the per-phase and per-algorithm
// cost families — back through Parse and Lint: the library must consume
// what it produces.
func TestParseWriteTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	reqs := r.NewCounterVec("skyserved_requests_total", "Requests served.", "collection", "endpoint")
	phase := r.NewHistogramVec("skyserved_query_phase_seconds", "Engine time per phase.", nil, "collection", "phase")
	dts := r.NewHistogramVec("skyserved_query_dominance_tests", "Dominance tests per query.", []float64{1e2, 1e4, 1e6}, "collection", "algorithm")
	wal := r.NewGaugeVec("skyserved_wal_fsyncs", "WAL fsyncs.", "collection")
	gor := r.NewGaugeVec("skyserved_goroutines", "Goroutines.")

	reqs.With("hotels", "query").Add(4)
	phase.With("hotels", "phase1").Observe(0.002)
	phase.With("hotels", "phase2").Observe(0.02)
	dts.With("hotels", "hybrid").Observe(12345)
	dts.With("hotels", "qflow").Observe(99)
	wal.With("ticks").Set(17)
	gor.With().Set(9)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	fams, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("Parse rejected WriteText output: %v\n%s", err, out)
	}
	byName := map[string]*Family{}
	for i := range fams {
		byName[fams[i].Name] = &fams[i]
	}
	if f := byName["skyserved_requests_total"]; f == nil || f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != 4 {
		t.Errorf("requests family parsed wrong: %+v", f)
	}
	if f := byName["skyserved_query_phase_seconds"]; f == nil || f.Type != "histogram" {
		t.Fatalf("phase family parsed wrong: %+v", byName["skyserved_query_phase_seconds"])
	} else {
		// Two series × (len(DefBuckets) + +Inf buckets + sum + count).
		want := 2 * (len(DefBuckets) + 3)
		if len(f.Samples) != want {
			t.Errorf("phase family has %d samples, want %d", len(f.Samples), want)
		}
	}
	if f := byName["skyserved_query_dominance_tests"]; f == nil {
		t.Fatal("dominance-test family missing")
	} else {
		var infs int
		for _, s := range f.Samples {
			if le, ok := s.Get("le"); ok && le == "+Inf" {
				infs++
				if alg, ok := s.Get("algorithm"); !ok || (alg != "hybrid" && alg != "qflow") {
					t.Errorf("bucket with unexpected algorithm label: %+v", s)
				}
			}
		}
		if infs != 2 {
			t.Errorf("dominance-test family has %d +Inf buckets, want 2", infs)
		}
	}
	if f := byName["skyserved_goroutines"]; f == nil || len(f.Samples) != 1 || len(f.Samples[0].Labels) != 0 {
		t.Errorf("label-free gauge parsed wrong: %+v", f)
	}

	if err := Lint(strings.NewReader(out)); err != nil {
		t.Errorf("Lint rejected WriteText output: %v\n%s", err, out)
	}
}

func TestParseSampleSyntax(t *testing.T) {
	text := `# HELP m Help text.
# TYPE m gauge
m{a="x\"y\\z\nw",b="v"} 1.5 1700000000
m +Inf
m -Inf
m NaN
`
	fams, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || len(fams[0].Samples) != 4 {
		t.Fatalf("parsed %+v", fams)
	}
	s := fams[0].Samples[0]
	if v, _ := s.Get("a"); v != "x\"y\\z\nw" {
		t.Errorf("escaped label decoded as %q", v)
	}
	if !math.IsInf(fams[0].Samples[1].Value, 1) || !math.IsInf(fams[0].Samples[2].Value, -1) || !math.IsNaN(fams[0].Samples[3].Value) {
		t.Errorf("special values decoded as %+v", fams[0].Samples[1:])
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for name, text := range map[string]string{
		"bad metric name":    "# TYPE 0bad counter\n0bad 1\n",
		"bad type":           "# TYPE m widget\nm 1\n",
		"sample out of fam":  "# TYPE m counter\nother_total 1\n",
		"bad label name":     "# TYPE m gauge\nm{0x=\"v\"} 1\n",
		"unquoted label":     "# TYPE m gauge\nm{a=v} 1\n",
		"unterminated value": "# TYPE m gauge\nm{a=\"v} 1\n",
		"no value":           "# TYPE m gauge\nm{a=\"v\"}\n",
		"bad value":          "# TYPE m gauge\nm zero\n",
		"second type":        "# TYPE m gauge\n# TYPE m counter\nm 1\n",
	} {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, text)
		}
	}
}

func TestLintRejectsInconsistent(t *testing.T) {
	for name, text := range map[string]string{
		"untyped family":   "# HELP m Help.\nm 1\n",
		"no help":          "# TYPE m counter\nm 1\n",
		"negative counter": "# HELP m Help.\n# TYPE m counter\nm -1\n",
		"no +Inf bucket": `# HELP h Help.
# TYPE h histogram
h_bucket{le="1"} 1
h_sum 0.5
h_count 1
`,
		"shrinking buckets": `# HELP h Help.
# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 2
h_count 5
`,
		"inf-count mismatch": `# HELP h Help.
# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="+Inf"} 2
h_sum 1
h_count 3
`,
		"missing sum": `# HELP h Help.
# TYPE h histogram
h_bucket{le="+Inf"} 1
h_count 1
`,
	} {
		if err := Lint(strings.NewReader(text)); err == nil {
			t.Errorf("%s: lint passed:\n%s", name, text)
		}
	}
	good := `# HELP h Help.
# TYPE h histogram
h_bucket{c="x",le="1"} 1
h_bucket{c="x",le="+Inf"} 2
h_sum{c="x"} 1.5
h_count{c="x"} 2
h_bucket{c="y",le="1"} 0
h_bucket{c="y",le="+Inf"} 0
h_sum{c="y"} 0
h_count{c="y"} 0
`
	if err := Lint(strings.NewReader(good)); err != nil {
		t.Errorf("well-formed multi-series histogram rejected: %v", err)
	}
}
