// Package metrics is the small, dependency-free metrics library behind
// skyserved's /metrics endpoint: labeled counters, gauges, and
// fixed-bucket histograms with Prometheus text exposition.
//
// It exists so the serving layer can report per-collection request
// counts, typed-error counts, and latency distributions without pulling
// a metrics dependency into the module — and without the Store or
// Engine knowing metrics exist at all: the core packages stay
// dependency-free and the server observes them from the outside.
//
// All metric operations are safe for concurrent use and lock-free on
// the hot path (atomics only); creating a new label combination takes a
// per-family mutex once, after which the returned handle is cached by
// the caller or re-looked-up cheaply.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of float64 observations
// (typically latencies in seconds, following the Prometheus
// convention).
type Histogram struct {
	bounds []float64 // ascending upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if i := sort.SearchFloat64s(h.bounds, v); i < len(h.bounds) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets is the default latency bucket layout, in seconds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// family is one named metric family: a type, a help string, a label
// schema, and the per-label-combination children in creation order.
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels []string
	bounds []float64 // histogram families only

	mu       sync.Mutex
	order    []string // label keys in first-seen order, for stable output
	children map[string]any
}

// child returns the metric for the given label values, creating it on
// first use.
func (f *family) child(vals []string, mk func() any) any {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s takes %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.children[key]
	if !ok {
		m = mk()
		f.children[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per label,
// in schema order), creating it on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues, func() any { return new(Gauge) }).(*Gauge)
}

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues, func() any {
		return &Histogram{bounds: v.f.bounds, counts: make([]atomic.Uint64, len(v.f.bounds))}
	}).(*Histogram)
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Families render in registration order,
// children in first-seen order, so scrapes are stable and diffable.
type Registry struct {
	mu   sync.Mutex
	fams []*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, g := range r.fams {
		if g.name == f.name {
			panic("metrics: duplicate family " + f.name)
		}
	}
	r.fams = append(r.fams, f)
}

// NewCounterVec registers a counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, typ: "counter", labels: labels, children: map[string]any{}}
	r.add(f)
	return &CounterVec{f}
}

// NewGaugeVec registers a gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	f := &family{name: name, help: help, typ: "gauge", labels: labels, children: map[string]any{}}
	r.add(f)
	return &GaugeVec{f}
}

// NewHistogramVec registers a histogram family with the given ascending
// bucket bounds (nil selects DefBuckets).
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	f := &family{name: name, help: help, typ: "histogram", labels: labels, bounds: bounds, children: map[string]any{}}
	r.add(f)
	return &HistogramVec{f}
}

// WriteText renders every registered family in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		order := append([]string(nil), f.order...)
		children := make([]any, len(order))
		for i, key := range order {
			children[i] = f.children[key]
		}
		f.mu.Unlock()
		if len(order) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for i, key := range order {
			vals := strings.Split(key, "\x00")
			switch m := children[i].(type) {
			case *Counter:
				b.WriteString(f.name)
				writeLabels(&b, f.labels, vals, "")
				fmt.Fprintf(&b, " %d\n", m.Value())
			case *Gauge:
				b.WriteString(f.name)
				writeLabels(&b, f.labels, vals, "")
				fmt.Fprintf(&b, " %d\n", m.Value())
			case *Histogram:
				var cum uint64
				for j, bound := range f.bounds {
					cum += m.counts[j].Load()
					b.WriteString(f.name + "_bucket")
					writeLabels(&b, f.labels, vals, strconv.FormatFloat(bound, 'g', -1, 64))
					fmt.Fprintf(&b, " %d\n", cum)
				}
				b.WriteString(f.name + "_bucket")
				writeLabels(&b, f.labels, vals, "+Inf")
				fmt.Fprintf(&b, " %d\n", m.Count())
				b.WriteString(f.name + "_sum")
				writeLabels(&b, f.labels, vals, "")
				fmt.Fprintf(&b, " %s\n", strconv.FormatFloat(m.Sum(), 'g', -1, 64))
				b.WriteString(f.name + "_count")
				writeLabels(&b, f.labels, vals, "")
				fmt.Fprintf(&b, " %d\n", m.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeLabels renders a {k="v",...} label block; le, when non-empty, is
// appended as the histogram bucket bound label.
func writeLabels(b *strings.Builder, names, vals []string, le string) {
	if len(names) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// escapeLabel escapes a label value per the text-format rules.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
