package skybench

import (
	"context"
	"fmt"
	"time"
)

// RemoteBackend is the third kind of backing a Collection accepts,
// next to an immutable Dataset and a live StreamSource: a point set
// whose rows live in other processes and whose queries are answered by
// fanning out over a transport and merging remotely computed bands.
// The cluster coordinator (internal/cluster) is the implementation;
// the interface lives here so the Store never imports the transport.
//
// A backend's Run must uphold the Collection result contract: Indices
// are global row indices in ascending order, Counts (k-skyband) are
// exact global dominator counts, and the answer is set- and
// count-identical to a single-node run over the same rows — unless it
// is explicitly flagged Partial. Implementations are responsible for
// their own failure containment; the Collection contributes the
// epoch-keyed result cache, default deadlines, admission control, and
// stats surfacing on top.
type RemoteBackend interface {
	// D returns the dimensionality of the backend's points.
	D() int
	// Len returns the total number of rows placed across workers.
	Len() int
	// Epoch returns the last membership epoch the workers agreed on
	// (0 until the first successful query for static placements).
	// Cached results are keyed by it.
	Epoch() uint64
	// Run answers one query over the placed rows. Partial answers must
	// be flagged on the returned QueryResult (NewRemoteQueryResult),
	// never silently merged short.
	Run(ctx context.Context, q Query) (*QueryResult, error)
	// Placement describes the current worker placement and health for
	// stats and info surfaces.
	Placement() PlacementStats
}

// PlacementStats describes how a cluster-backed collection's rows are
// placed across worker processes, and how the fan-out has fared —
// surfaced through CollectionStats.Placement and the info endpoints.
type PlacementStats struct {
	// Policy is the degraded-answer policy: "failfast" (any worker
	// failure fails the query with ErrWorkerUnavailable) or "partial"
	// (merge the surviving workers and flag the result Partial).
	Policy string
	// Partials counts degraded answers served so far.
	Partials uint64
	// Workers describes each worker in placement order.
	Workers []WorkerPlacement
}

// WorkerPlacement is one worker's slice of a cluster placement.
type WorkerPlacement struct {
	// Addr is the worker's base URL.
	Addr string
	// Lo and Hi are the contiguous global row range [Lo, Hi) placed on
	// the worker.
	Lo, Hi int
	// Healthy is the outcome of the most recent health probe (true
	// until the first probe fails).
	Healthy bool
	// Queries counts query round trips sent to the worker, Failures
	// the ones that produced no mergeable answer, and Retries the
	// transport retries the client spent on the worker.
	Queries, Failures, Retries uint64
}

// NewRemoteQueryResult assembles the QueryResult a RemoteBackend
// returns from Run. res carries the merged global result (ascending
// Indices, exact Counts, aggregated Stats, optional Trace); epoch is
// the worker-agreed membership epoch; partial flags a degraded answer;
// rows holds the coordinates of each result point (parallel to
// res.Indices — remote results have no local snapshot to resolve rows
// against); ids optionally carries stable stream IDs, also parallel to
// res.Indices, nil when the placement is static.
func NewRemoteQueryResult(res Result, epoch uint64, partial bool, rows [][]float64, ids []uint64) *QueryResult {
	return &QueryResult{Result: res, Epoch: epoch, Partial: partial, rows: rows, rids: ids}
}

// AttachRemote registers a RemoteBackend — typically a
// cluster.Coordinator fanning a query out to worker skyserved
// processes — as a named collection. Queries route through the
// backend; the Store-side collection wraps it with the epoch-keyed
// result cache, default deadlines, admission control, and the stats
// surface. With CollectionOptions.CloseOnDrop, dropping the collection
// (or closing the Store) also closes the backend if it has a Close
// method — stopping its health probes.
func (s *Store) AttachRemote(name string, rb RemoteBackend, opts CollectionOptions) (*Collection, error) {
	if rb == nil {
		return nil, fmt.Errorf("%w: nil RemoteBackend", ErrBadDataset)
	}
	opts.Shards = 1 // fan-out shape belongs to the backend's placement
	c := s.newCollection(name, opts)
	c.remote = rb
	if err := s.add(name, c); err != nil {
		return nil, err
	}
	return c, nil
}

// ClusterBacked reports whether the collection is backed by a
// RemoteBackend (a cluster placement) rather than local rows.
func (c *Collection) ClusterBacked() bool { return c.remote != nil }

// runRemote answers a query through the collection's RemoteBackend,
// wrapping it in the same epoch-keyed caching as local execution. The
// backend owns fan-out, merge, and failure policy; partial (degraded)
// answers are never cached — the missing rows may be back on the next
// query, and a cache must not pin a degraded answer for a healthy
// cluster.
func (c *Collection) runRemote(ctx context.Context, q Query) (*QueryResult, error) {
	if q.Progressive != nil {
		return nil, fmt.Errorf("%w: progressive delivery needs a local collection", ErrBadQuery)
	}
	fp, cacheable := fingerprint{}, false
	if c.cacheCap > 0 {
		fp, cacheable = queryFingerprint(&q, c.remote.D())
	}
	if cacheable {
		if r := c.lookup(fp, c.remote.Epoch()); r != nil {
			if q.Trace {
				r = r.withCacheHitTrace(&q)
			}
			return r, nil
		}
	}
	start := time.Now()
	r, err := c.remote.Run(ctx, q)
	if err != nil {
		return nil, err
	}
	c.costs.record(q.Algorithm, time.Since(start), r.Stats.DominanceTests)
	if cacheable && !r.Partial {
		// Key the entry at the epoch the answer was actually computed at
		// (the workers may have advanced past the epoch probed above).
		cached := r
		if r.Result.Trace != nil {
			cp := *r
			cp.Result.Trace = nil
			cached = &cp
		}
		c.store(fp, r.Epoch, cached)
	}
	return r, nil
}
