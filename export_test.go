package skybench

import "skybench/internal/faults"

// SetEngineFaults arms (or clears, with nil) the Engine's fault-injection
// hook for the robustness tests in package skybench_test.
func SetEngineFaults(in *faults.Injector) { engineFaults = in }
