// Package skybench is a Go reproduction of SkyBench, the multicore
// skyline computation suite of Chester, Šidlauskas, Assent and Bøgh
// ("Scalable Parallelization of Skyline Computation for Multi-core
// Processors", ICDE 2015).
//
// The skyline of a dataset is the subset of points not dominated by any
// other point: p dominates q when p is no worse than q on every
// dimension and strictly better on at least one (smaller values are
// preferred; negate attributes to maximize).
//
// The package provides the paper's two contributions — the Q-Flow
// block-parallel flow of control and the full Hybrid algorithm with its
// two-level partition index over a shared global skyline — together with
// every baseline of the paper's evaluation (PSkyline, BSkyTree,
// PBSkyTree) and the classic sequential algorithms (BNL, SFS, SaLSa,
// LESS).
//
// Quick start (one-shot):
//
//	res, err := skybench.Compute(data, skybench.Options{})
//	if err != nil { ... }
//	for _, i := range res.Indices { ... } // skyline rows of data
//
// Serving many queries, use the prepare-once query-many API:
//
//	ds, _ := skybench.NewDataset(data)
//	eng := skybench.NewEngine(0)
//	defer eng.Close()
//	res, err := eng.Run(ctx, ds, skybench.Query{
//		Prefs: []skybench.Pref{skybench.Min, skybench.Max, skybench.Ignore},
//	})
//
// Engine is safe for concurrent use, honors context cancellation and
// deadlines, and supports per-dimension preferences (maximize, ignore)
// without caller-side column rewrites. Compute, Skyline, and Context are
// retained as thin compatibility wrappers over the same machinery.
//
// Services hosting several datasets front the engine with a Store: named
// Collections (immutable Datasets or live stream indexes via
// AttachStream), optional sharded fan-out with exact merge, epoch-keyed
// result caching, and async futures:
//
//	st := skybench.NewStore(0)
//	defer st.Close()
//	hotels, _ := st.Attach("hotels", ds, skybench.CollectionOptions{Shards: 4})
//	res, err := hotels.Run(ctx, skybench.Query{SkybandK: 2})
//
// All API errors wrap the typed sentinels in errors.go (ErrBadQuery,
// ErrCanceled, ErrUnknownCollection, …) for errors.Is dispatch.
package skybench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"skybench/internal/algo/apskyline"
	"skybench/internal/algo/bnl"
	"skybench/internal/algo/bskytree"
	"skybench/internal/algo/dnc"
	"skybench/internal/algo/less"
	"skybench/internal/algo/psfs"
	"skybench/internal/algo/pskyline"
	"skybench/internal/algo/salsa"
	"skybench/internal/algo/sfs"
	"skybench/internal/dataset"
	"skybench/internal/pivot"
	"skybench/internal/point"
	"skybench/internal/stats"
)

// Algorithm selects which skyline algorithm Compute runs.
type Algorithm int

const (
	// Hybrid is the paper's full algorithm (Section VI): Q-Flow plus
	// point-based partitioning and the M(S) skyline index. The default
	// and the best performer on all non-trivial workloads.
	Hybrid Algorithm = iota
	// QFlow is the simplified block-parallel algorithm (Section V).
	QFlow
	// PSkyline is the divide-and-conquer multicore baseline (Im & Park).
	PSkyline
	// BSkyTree is the state-of-the-art sequential algorithm (Lee &
	// Hwang); Threads is ignored.
	BSkyTree
	// PBSkyTree is the paper's parallelization of BSkyTree (Appendix A).
	PBSkyTree
	// BNL is Börzsönyi et al.'s block-nested-loops baseline; sequential.
	BNL
	// SFS is the sort-filter skyline of Chomicki et al.; sequential.
	SFS
	// SaLSa is Bartolini et al.'s sort-and-limit algorithm; sequential.
	SaLSa
	// LESS is Godfrey et al.'s linear elimination sort; sequential.
	LESS
	// DnC is Börzsönyi et al.'s original divide-and-conquer algorithm;
	// sequential.
	DnC
	// PSFS is Im & Park's parallel SFS, the naive baseline the paper
	// calls "a weaker version of our Q-Flow".
	PSFS
	// APSkyline is Liknes et al.'s angle-based multicore
	// divide-and-conquer (equi-depth first-angle variant).
	APSkyline
	// Auto delegates the algorithm choice (and shard fan-out and α/β
	// tuning) to the collection's adaptive planner, which combines an
	// attach-time data profile with the rolling per-algorithm cost
	// history. Auto is only valid on Store collections — a plain
	// Engine.Run has no profile or history to plan from and rejects it
	// with ErrBadQuery. It is deliberately absent from Algorithms: it is
	// a meta-algorithm, not an extra comparison point.
	Auto
)

var algoNames = map[Algorithm]string{
	Hybrid: "hybrid", QFlow: "qflow", PSkyline: "pskyline",
	BSkyTree: "bskytree", PBSkyTree: "pbskytree",
	BNL: "bnl", SFS: "sfs", SaLSa: "salsa", LESS: "less", DnC: "dnc",
	PSFS: "psfs", APSkyline: "apskyline", Auto: "auto",
}

// String returns the algorithm's CLI name.
func (a Algorithm) String() string {
	if s, ok := algoNames[a]; ok {
		return s
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// ParseAlgorithm converts a CLI name into an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for a, name := range algoNames {
		if name == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("%w: %q (known: %v)", ErrUnknownAlgorithm, s, AlgorithmNames())
}

// AlgorithmNames returns the CLI names of every available algorithm in
// sorted order — the round-trip companion of ParseAlgorithm, for flag
// usage strings and validation messages.
func AlgorithmNames() []string {
	names := make([]string, 0, len(algoNames))
	for _, name := range algoNames {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Algorithms lists every available algorithm, parallel ones first.
var Algorithms = []Algorithm{
	Hybrid, QFlow, PSkyline, PBSkyTree, PSFS, APSkyline,
	BSkyTree, BNL, SFS, SaLSa, LESS, DnC,
}

// PivotStrategy selects how Hybrid picks its level-1 partitioning pivot
// (Section VII-C2 of the paper).
type PivotStrategy int

const (
	// PivotMedian uses the per-dimension median — the paper's default
	// and consistently best choice.
	PivotMedian PivotStrategy = iota
	// PivotBalanced uses BSkyTree's minimum-range skyline point.
	PivotBalanced
	// PivotManhattan uses the minimum-L1 point.
	PivotManhattan
	// PivotVolume uses the point with maximal dominated volume.
	PivotVolume
	// PivotRandom uses a refined random skyline point.
	PivotRandom
)

func (p PivotStrategy) internal() pivot.Strategy {
	switch p {
	case PivotBalanced:
		return pivot.Balanced
	case PivotManhattan:
		return pivot.Manhattan
	case PivotVolume:
		return pivot.Volume
	case PivotRandom:
		return pivot.Random
	default:
		return pivot.Median
	}
}

// String returns the strategy's CLI name.
func (p PivotStrategy) String() string { return p.internal().String() }

// pivotNames lists every pivot strategy (in declaration order).
var pivotNames = []PivotStrategy{
	PivotMedian, PivotBalanced, PivotManhattan, PivotVolume, PivotRandom,
}

// ParsePivot converts a CLI name into a PivotStrategy — the round-trip
// inverse of PivotStrategy.String.
func ParsePivot(s string) (PivotStrategy, error) {
	for _, p := range pivotNames {
		if p.String() == s {
			return p, nil
		}
	}
	names := make([]string, len(pivotNames))
	for i, p := range pivotNames {
		names[i] = p.String()
	}
	return 0, fmt.Errorf("%w: unknown pivot strategy %q (known: %v)", ErrBadQuery, s, names)
}

// Options configures Compute. The zero value runs Hybrid with the
// paper's defaults on all available CPUs.
type Options struct {
	// Algorithm selects the skyline algorithm (default Hybrid).
	Algorithm Algorithm
	// Threads is the worker count for parallel algorithms (≤ 0 selects
	// GOMAXPROCS). Sequential algorithms ignore it.
	Threads int
	// Alpha overrides the α-block size of Hybrid and QFlow (≤ 0 keeps
	// the paper's defaults: 2^10 for Hybrid, 2^13 for QFlow).
	Alpha int
	// Pivot selects Hybrid's pivot strategy (default PivotMedian).
	Pivot PivotStrategy
	// Beta overrides Hybrid's pre-filter queue size (≤ 0 keeps β = 8).
	Beta int
	// Seed drives the PivotRandom strategy deterministically.
	Seed int64
	// Progressive, when non-nil and the algorithm supports it (Hybrid,
	// QFlow), receives batches of confirmed skyline indices as blocks
	// complete. Batches are valid only for the duration of the callback;
	// copy them to retain them.
	Progressive func(confirmed []int)
	// Ablation disables individual Hybrid design components for
	// experimentation. Production users should leave it zero.
	Ablation Ablation
}

// Ablation switches off individual components of the Hybrid algorithm so
// their contribution can be measured (the ablation benchmarks in
// DESIGN.md). Every combination still computes the exact skyline.
type Ablation struct {
	// NoPrefilter disables the β-queue pre-filter of Section VI-A1.
	NoPrefilter bool
	// NoMS disables the M(S) two-level index; Phase I degrades to a
	// linear scan with level-1 mask filtering.
	NoMS bool
	// NoLevel2 keeps M(S) but disables level-2 re-partitioning.
	NoLevel2 bool
	// NoPhase2Split disables Phase II's three-loop decomposition;
	// every preceding block peer gets a full dominance test.
	NoPhase2Split bool
}

// PhaseTimings breaks a run's wall-clock time into the phases reported
// in the paper's Figures 7 and 8. The JSON shape (integer nanoseconds
// per phase) is the one QueryTrace puts on the wire.
type PhaseTimings struct {
	Init      time.Duration `json:"init_ns"`      // L1 computation + sorting
	Prefilter time.Duration `json:"prefilter_ns"` // β-queue pre-filter (Hybrid)
	Pivot     time.Duration `json:"pivot_ns"`     // pivot selection + partitioning (Hybrid)
	PhaseOne  time.Duration `json:"phase1_ns"`    // comparisons against the global skyline
	PhaseTwo  time.Duration `json:"phase2_ns"`    // peer comparisons / merge
	Compress  time.Duration `json:"compress_ns"`  // α-block compression
	Other     time.Duration `json:"other_ns"`     // structure updates and bookkeeping
}

// add accumulates o into t (summing per-shard breakdowns).
func (t *PhaseTimings) add(o PhaseTimings) {
	t.Init += o.Init
	t.Prefilter += o.Prefilter
	t.Pivot += o.Pivot
	t.PhaseOne += o.PhaseOne
	t.PhaseTwo += o.PhaseTwo
	t.Compress += o.Compress
	t.Other += o.Other
}

// Stats reports measurements of one Compute run.
type Stats struct {
	// DominanceTests is the number of full point-vs-point dominance
	// tests performed — the machine-independent cost metric.
	DominanceTests uint64
	// SkylineSize is the number of skyline points found.
	SkylineSize int
	// InputSize is the number of input points.
	InputSize int
	// Threads is the effective worker count.
	Threads int
	// PrefilterPruned is the number of input points discarded by the
	// β-queue prefilter before the main algorithm ran (Hybrid only).
	PrefilterPruned int
	// Phase1Survivors is the total number of block points surviving
	// Phase I across all α-blocks (Hybrid and QFlow only).
	Phase1Survivors int
	// Phase2Survivors is the total number of points surviving Phase II
	// across all α-blocks; for a completed run this equals SkylineSize.
	Phase2Survivors int
	// SortTime is the wall-clock time of the sort step (a subset of
	// Timings.Init that the paper's decomposition folds away).
	SortTime time.Duration
	// Timings is the per-phase wall-clock breakdown (parallel
	// algorithms only; sequential baselines report zero).
	Timings PhaseTimings
	// Elapsed is the total wall-clock time of the computation.
	Elapsed time.Duration
}

// Result is the outcome of a skyline computation.
type Result struct {
	// Indices are the positions of the skyline points in the input, in
	// the algorithm's natural output order.
	//
	// Aliasing rule (stated here once; every entry point refers to it):
	// Indices is caller-owned — valid forever — for the one-shot
	// functions (Compute, Skyline) and for Engine.Run by default. It
	// aliases reusable internal storage — valid only until the producer
	// serves its next query, from any goroutine — for
	// Context.Compute/ComputeFlat and for Engine.Run when
	// Query.ReuseIndices is set; the zero-copy path is therefore only
	// for callers that serialize their queries. Clone detaches a result
	// from that storage.
	Indices []int
	// Counts holds the exact dominator count of each returned point,
	// parallel to Indices, for k-skyband queries (Query.SkybandK ≥ 2):
	// Counts[i] is the number of input points that strictly dominate
	// Indices[i] under the query's preferences, always < SkybandK.
	// Skyline queries leave Counts nil — every skyline point trivially
	// has zero dominators. Counts follows the same aliasing rule as
	// Indices.
	Counts []int32
	// Stats holds measurements of the run.
	Stats Stats
	// Trace, when the query set Query.Trace, is the EXPLAIN ANALYZE-
	// style account of the run; nil otherwise. The trace is freshly
	// allocated per traced query and caller-owned.
	Trace *QueryTrace
}

// Clone returns a deep copy of the Result whose Indices and Counts are
// caller-owned regardless of which entry point produced them — the
// escape hatch for holding onto a zero-copy result past the producer's
// next query.
func (r Result) Clone() Result {
	r.Indices = append([]int(nil), r.Indices...)
	if r.Counts != nil {
		r.Counts = append([]int32(nil), r.Counts...)
	}
	r.Trace = r.Trace.Clone()
	return r
}

// TopK returns the indices of the w result points with the fewest
// dominators — the top-k dominance cut of a skyband result, the ranking
// behind paginated "best, then next-best" serving. Ties keep the
// result's own order (the ranking is stable), and w larger than the
// band returns every member. For a skyline result (nil Counts) every
// point has zero dominators, so TopK is simply the first w indices. The
// returned slice is freshly allocated and caller-owned.
func (r Result) TopK(w int) []int {
	if w > len(r.Indices) {
		w = len(r.Indices)
	}
	if w <= 0 {
		return nil
	}
	if r.Counts == nil {
		return append([]int(nil), r.Indices[:w]...)
	}
	order := make([]int, len(r.Indices))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return r.Counts[order[a]] < r.Counts[order[b]]
	})
	out := make([]int, w)
	for i := 0; i < w; i++ {
		out[i] = r.Indices[order[i]]
	}
	return out
}

// Compute runs the selected skyline algorithm over data, a slice of
// points with equal dimensionality. It returns the indices of the
// skyline points (caller-owned; see the aliasing rule on
// Result.Indices). Smaller values are preferred on every dimension.
//
// Compute is the legacy one-shot entry point, retained as a thin wrapper
// over the Engine/Dataset/Query API: it re-validates and re-stages the
// input and spins up workers on every call. Services answering repeated
// queries should hold an Engine and share Datasets across queries.
func Compute(data [][]float64, opt Options) (Result, error) {
	if len(data) == 0 {
		return Result{}, nil
	}
	ds, err := NewDataset(data)
	if err != nil {
		return Result{}, err
	}
	eng := NewEngine(opt.Threads)
	defer eng.Close()
	return eng.Run(context.Background(), ds, legacyQuery(opt))
}

// Skyline is a convenience wrapper running Hybrid with defaults and
// returning just the skyline indices (caller-owned). Legacy; see
// Compute.
func Skyline(data [][]float64) ([]int, error) {
	res, err := Compute(data, Options{})
	return res.Indices, err
}

// runBaseline executes the non-hot-path algorithms, which allocate per
// run and ignore mid-flight cancellation (they are the paper's
// comparison points, not the serving path).
func runBaseline(m point.Matrix, q Query, threads int) (Result, error) {
	var st stats.Stats
	start := time.Now()
	var idx []int
	switch q.Algorithm {
	case PSkyline:
		idx = pskyline.SkylineStats(m, threads, &st)
	case BSkyTree:
		var dts uint64
		idx, dts = bskytree.SkylineDT(m, nil)
		st.DominanceTests = dts
	case PBSkyTree:
		var dts uint64
		idx, dts = bskytree.ParallelSkylineDT(m, threads, nil)
		st.DominanceTests = dts
	case BNL:
		idx, st.DominanceTests = bnl.SkylineDT(m)
	case SFS:
		idx, st.DominanceTests = sfs.SkylineDT(m)
	case SaLSa:
		idx, st.DominanceTests, _ = salsa.SkylineDT(m)
	case LESS:
		idx, st.DominanceTests = less.SkylineDT(m, q.Beta)
	case DnC:
		idx, st.DominanceTests = dnc.SkylineDT(m)
	case PSFS:
		idx, st.DominanceTests = psfs.SkylineDT(m, threads)
	case APSkyline:
		idx, st.DominanceTests = apskyline.SkylineDT(m, threads)
	default:
		return Result{}, fmt.Errorf("%w: %d", ErrUnknownAlgorithm, int(q.Algorithm))
	}
	return assembleResult(idx, &st, m.N(), time.Since(start)), nil
}

// assembleResult converts internal stats into the public Result shape.
func assembleResult(idx []int, st *stats.Stats, n int, elapsed time.Duration) Result {
	st.InputSize = n
	st.SkylineSize = len(idx)
	return Result{
		Indices: idx,
		Stats: Stats{
			DominanceTests:  st.DominanceTests,
			SkylineSize:     len(idx),
			InputSize:       n,
			Threads:         st.Threads,
			PrefilterPruned: st.Cost.PrefilterPruned,
			Phase1Survivors: st.Cost.Phase1Survivors,
			Phase2Survivors: st.Cost.Phase2Survivors,
			SortTime:        st.Cost.Sort,
			Elapsed:         elapsed,
			Timings: PhaseTimings{
				Init:      st.Phases[stats.PhaseInit],
				Prefilter: st.Phases[stats.PhasePrefilt],
				Pivot:     st.Phases[stats.PhasePivot],
				PhaseOne:  st.Phases[stats.PhaseOne],
				PhaseTwo:  st.Phases[stats.PhaseTwo],
				Compress:  st.Phases[stats.PhaseCompress],
				Other:     st.Phases[stats.PhaseOther],
			},
		},
	}
}

// GenerateDataset produces one of the paper's synthetic workloads:
// dist is "correlated", "independent", or "anticorrelated"; the result
// is n points of d dimensions in [0,1), deterministic in seed. It exists
// so examples and downstream users can exercise realistic workloads
// without reimplementing the Börzsönyi generator.
func GenerateDataset(dist string, n, d int, seed int64) ([][]float64, error) {
	dd, err := dataset.ParseDistribution(dist)
	if err != nil {
		return nil, err
	}
	m := dataset.Generate(dd, n, d, seed)
	rows := make([][]float64, m.N())
	for i := range rows {
		row := make([]float64, d)
		copy(row, m.Row(i))
		rows[i] = row
	}
	return rows, nil
}

// Dominates reports whether point p dominates point q under the
// minimization convention (Definition 2 of the paper). Exposed for
// downstream code that needs to reason about individual pairs.
func Dominates(p, q []float64) bool { return point.Dominates(p, q) }
