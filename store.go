package skybench

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Store is the multi-collection serving facade: one handle hosting any
// number of named Collections — each an immutable Dataset or a live
// stream source, optionally sharded — over a single shared Engine (one
// worker pool, one context free-list) so concurrent queries across
// every collection share warm scratch and one thread team.
//
//	st := skybench.NewStore(0)
//	defer st.Close()
//	hotels, _ := st.Attach("hotels", ds, skybench.CollectionOptions{Shards: 4})
//	res, err := hotels.Run(ctx, skybench.Query{SkybandK: 2})
//
// A Store is safe for concurrent use: attach, drop, and query from any
// number of goroutines. Dropping or closing marks the affected
// collections closed; queries already holding a *Collection fail with
// ErrClosed instead of touching freed state.
type Store struct {
	eng    *Engine
	ownEng bool

	// Admission control (StoreOptions.MaxInflight/MaxQueue). tokens is a
	// counting semaphore that is never closed — shutdown is signaled by
	// closedCh instead, so a Submit racing Close can never hit a
	// send-on-closed-channel panic; it deterministically observes
	// ErrClosed.
	tokens     chan struct{}
	maxQueue   int
	defTimeout time.Duration
	waiters    atomic.Int64
	closedCh   chan struct{}
	closeOnce  sync.Once

	mu     sync.RWMutex
	cols   map[string]*Collection
	closed bool
}

// StoreOptions configures a Store's engine and its failure-containment
// policies. The zero value matches NewStore(0): all CPUs, no admission
// bound, no default deadline.
type StoreOptions struct {
	// Threads is the shared Engine's thread budget (≤ 0 selects all
	// usable CPUs). Ignored when Engine is set.
	Threads int
	// Engine, when non-nil, serves the Store through an existing Engine
	// the caller keeps ownership of (Store.Close does not close it).
	Engine *Engine
	// MaxInflight bounds how many submitted queries may execute
	// concurrently (Submit/SubmitBatch; synchronous Run is the caller's
	// own concurrency and is not throttled). ≤ 0 means unlimited.
	MaxInflight int
	// MaxQueue bounds how many submitted queries may wait for an
	// inflight slot once MaxInflight are running; a submission beyond
	// the bound fails fast with ErrOverloaded instead of queuing without
	// limit. ≤ 0 rejects as soon as MaxInflight are running. Meaningless
	// unless MaxInflight > 0.
	MaxQueue int
	// DefaultTimeout, when > 0, is the per-query deadline applied to
	// every Run/Submit whose context does not already carry one.
	// Exceeding it fails the query with an error wrapping both
	// ErrCanceled and ErrDeadlineExceeded. Collections can override it
	// via CollectionOptions.DefaultTimeout.
	DefaultTimeout time.Duration
}

// NewStore creates a Store whose shared Engine has the given thread
// budget (≤ 0 selects all usable CPUs).
func NewStore(threads int) *Store {
	return NewStoreWithOptions(StoreOptions{Threads: threads})
}

// NewStoreWithEngine creates a Store serving through an existing Engine
// (shared with whatever other load it carries). The caller keeps
// ownership: Store.Close does not close it.
func NewStoreWithEngine(eng *Engine) *Store {
	return NewStoreWithOptions(StoreOptions{Engine: eng})
}

// NewStoreWithOptions creates a Store with explicit admission and
// deadline policies.
func NewStoreWithOptions(opts StoreOptions) *Store {
	s := &Store{
		cols:       make(map[string]*Collection),
		closedCh:   make(chan struct{}),
		defTimeout: opts.DefaultTimeout,
	}
	if opts.Engine != nil {
		s.eng = opts.Engine
	} else {
		s.eng = NewEngine(opts.Threads)
		s.ownEng = true
	}
	if opts.MaxInflight > 0 {
		s.tokens = make(chan struct{}, opts.MaxInflight)
		if opts.MaxQueue > 0 {
			s.maxQueue = opts.MaxQueue
		}
	}
	return s
}

// Engine returns the Store's shared Engine.
func (s *Store) Engine() *Engine { return s.eng }

// Inflight returns the number of submitted queries currently holding an
// admission slot. Always 0 when admission is unbounded (MaxInflight ≤
// 0) — synchronous Run calls are the caller's own concurrency and are
// counted per collection instead (CollectionStats.Inflight).
func (s *Store) Inflight() int {
	if s.tokens == nil {
		return 0
	}
	return len(s.tokens)
}

// QueueDepth returns the number of submitted queries waiting for an
// admission slot (bounded by StoreOptions.MaxQueue). Always 0 when
// admission is unbounded.
func (s *Store) QueueDepth() int {
	n := s.waiters.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Attach registers ds as a named collection and returns its handle.
// The Dataset is adopted as-is (immutable, shareable); opts selects
// sharding and caching. Attaching a name twice fails with
// ErrDuplicateCollection.
func (s *Store) Attach(name string, ds *Dataset, opts CollectionOptions) (*Collection, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil Dataset", ErrBadDataset)
	}
	c := s.newCollection(name, opts)
	c.static = &colSnapshot{ds: ds}
	c.static.partition(c.shards)
	if err := s.add(name, c); err != nil {
		return nil, err
	}
	// Profile eagerly: a static collection's membership never changes,
	// so the planner's data profile is paid for once at attach time and
	// the first Algorithm: Auto query plans from it immediately.
	// (Stream-backed collections profile lazily on first Auto query —
	// their membership at attach time may be empty.)
	c.plannerFor(c.static)
	return c, nil
}

// AttachStream registers a live source (typically a
// *stream.SkylineIndex) as a named collection. Queries run over the
// source's full live point set, materialized at most once per
// membership epoch; cached results invalidate automatically when the
// epoch advances.
func (s *Store) AttachStream(name string, src StreamSource, opts CollectionOptions) (*Collection, error) {
	if src == nil {
		return nil, fmt.Errorf("%w: nil StreamSource", ErrBadDataset)
	}
	c := s.newCollection(name, opts)
	c.src = src
	if err := s.add(name, c); err != nil {
		return nil, err
	}
	return c, nil
}

// newCollection builds a collection shell with normalized options.
func (s *Store) newCollection(name string, opts CollectionOptions) *Collection {
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	cacheCap := opts.CacheCapacity
	if cacheCap == 0 {
		cacheCap = DefaultCacheCapacity
	}
	timeout := opts.DefaultTimeout
	if timeout == 0 {
		timeout = s.defTimeout
	}
	if timeout < 0 {
		timeout = 0
	}
	c := &Collection{
		name:        name,
		eng:         s.eng,
		shards:      shards,
		owner:       s,
		timeout:     timeout,
		closeOnDrop: opts.CloseOnDrop,
	}
	if cacheCap > 0 {
		c.cacheCap = cacheCap
		c.entries = make(map[fingerprint]cacheEntry)
		c.stale = make(map[fingerprint]cacheEntry)
	}
	// A sharded collection's first query fans out `shards` concurrent
	// engine runs at once; pre-lease that many contexts so the burst
	// hits warm scratch instead of allocating under load.
	if shards > 1 {
		s.eng.Prewarm(shards)
	}
	return c
}

// add registers the collection under its name.
func (s *Store) add(name string, c *Collection) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: Store", ErrClosed)
	}
	if _, ok := s.cols[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateCollection, name)
	}
	s.cols[name] = c
	return nil
}

// Collection returns the named collection, or ErrUnknownCollection.
func (s *Store) Collection(name string) (*Collection, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, fmt.Errorf("%w: Store", ErrClosed)
	}
	c, ok := s.cols[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCollection, name)
	}
	return c, nil
}

// Names returns the attached collection names in sorted (ascending
// lexicographic) order — a stable enumeration that listing endpoints
// and metrics scrapes can rely on across calls.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.cols))
	for name := range s.cols {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Drop detaches the named collection; subsequent queries on handles to
// it fail with ErrClosed. The backing Dataset or stream source is
// untouched (it belongs to the caller) unless the collection was
// attached with CloseOnDrop.
func (s *Store) Drop(name string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("%w: Store", ErrClosed)
	}
	c, ok := s.cols[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownCollection, name)
	}
	delete(s.cols, name)
	c.dropped.Store(true)
	s.mu.Unlock()
	c.closeSource() // outside the lock: a source Close may take its write lock
	return nil
}

// Close drops every collection and, when the Store owns its Engine
// (NewStore), closes it. In-flight queries must have completed, as for
// Engine.Close; queries submitted after (or racing) Close fail with
// ErrClosed — never a panic.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.closeOnce.Do(func() { close(s.closedCh) })
	var owned []*Collection
	for name, c := range s.cols {
		c.dropped.Store(true)
		owned = append(owned, c)
		delete(s.cols, name)
	}
	if s.ownEng {
		s.eng.Close()
	}
	s.mu.Unlock()
	for _, c := range owned {
		c.closeSource()
	}
}

// admission is one submitted query's reservation in the Store's bounded
// queue: either it already holds an inflight token, or it is a counted
// waiter entitled to block for one.
type admission struct {
	s      *Store
	held   bool // an inflight token is held
	queued bool // registered as a waiter (counted against MaxQueue)
}

// beginAdmit is the synchronous half of admission, run on the
// submitter's goroutine so its failures are deterministic: a Store
// already closed fails with ErrClosed, a full queue with ErrOverloaded —
// before any goroutine is spawned. A nil Store (engine-only Collection)
// and an unbounded Store admit trivially.
func (s *Store) beginAdmit() (admission, error) {
	if s == nil {
		return admission{}, nil
	}
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return admission{}, fmt.Errorf("%w: Store", ErrClosed)
	}
	if s.tokens == nil {
		return admission{}, nil
	}
	select {
	case s.tokens <- struct{}{}:
		return admission{s: s, held: true}, nil
	default:
	}
	if int(s.waiters.Add(1)) > s.maxQueue {
		s.waiters.Add(-1)
		return admission{}, fmt.Errorf("%w: %d queries running and %d queued", ErrOverloaded, cap(s.tokens), s.maxQueue)
	}
	return admission{s: s, queued: true}, nil
}

// wait blocks until the admission holds an inflight token, the Store
// closes, or ctx is done. On success the caller must call release.
func (a *admission) wait(ctx context.Context) error {
	if a.s == nil || a.held {
		return nil
	}
	defer a.s.waiters.Add(-1)
	a.queued = false
	select {
	case a.s.tokens <- struct{}{}:
		a.held = true
		return nil
	case <-a.s.closedCh:
		return fmt.Errorf("%w: Store", ErrClosed)
	case <-ctx.Done():
		return canceledErr(ctx.Err())
	}
}

// release returns the inflight token.
func (a *admission) release() {
	if a.held {
		a.held = false
		<-a.s.tokens
	}
}
