package skybench

import (
	"fmt"
	"sort"
	"sync"
)

// Store is the multi-collection serving facade: one handle hosting any
// number of named Collections — each an immutable Dataset or a live
// stream source, optionally sharded — over a single shared Engine (one
// worker pool, one context free-list) so concurrent queries across
// every collection share warm scratch and one thread team.
//
//	st := skybench.NewStore(0)
//	defer st.Close()
//	hotels, _ := st.Attach("hotels", ds, skybench.CollectionOptions{Shards: 4})
//	res, err := hotels.Run(ctx, skybench.Query{SkybandK: 2})
//
// A Store is safe for concurrent use: attach, drop, and query from any
// number of goroutines. Dropping or closing marks the affected
// collections closed; queries already holding a *Collection fail with
// ErrClosed instead of touching freed state.
type Store struct {
	eng    *Engine
	ownEng bool

	mu     sync.RWMutex
	cols   map[string]*Collection
	closed bool
}

// NewStore creates a Store whose shared Engine has the given thread
// budget (≤ 0 selects all usable CPUs).
func NewStore(threads int) *Store {
	return &Store{eng: NewEngine(threads), ownEng: true, cols: make(map[string]*Collection)}
}

// NewStoreWithEngine creates a Store serving through an existing Engine
// (shared with whatever other load it carries). The caller keeps
// ownership: Store.Close does not close it.
func NewStoreWithEngine(eng *Engine) *Store {
	return &Store{eng: eng, cols: make(map[string]*Collection)}
}

// Engine returns the Store's shared Engine.
func (s *Store) Engine() *Engine { return s.eng }

// Attach registers ds as a named collection and returns its handle.
// The Dataset is adopted as-is (immutable, shareable); opts selects
// sharding and caching. Attaching a name twice fails with
// ErrDuplicateCollection.
func (s *Store) Attach(name string, ds *Dataset, opts CollectionOptions) (*Collection, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil Dataset", ErrBadDataset)
	}
	c := s.newCollection(name, opts)
	c.static = &colSnapshot{ds: ds}
	c.static.partition(c.shards)
	if err := s.add(name, c); err != nil {
		return nil, err
	}
	return c, nil
}

// AttachStream registers a live source (typically a
// *stream.SkylineIndex) as a named collection. Queries run over the
// source's full live point set, materialized at most once per
// membership epoch; cached results invalidate automatically when the
// epoch advances.
func (s *Store) AttachStream(name string, src StreamSource, opts CollectionOptions) (*Collection, error) {
	if src == nil {
		return nil, fmt.Errorf("%w: nil StreamSource", ErrBadDataset)
	}
	c := s.newCollection(name, opts)
	c.src = src
	if err := s.add(name, c); err != nil {
		return nil, err
	}
	return c, nil
}

// newCollection builds a collection shell with normalized options.
func (s *Store) newCollection(name string, opts CollectionOptions) *Collection {
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	cacheCap := opts.CacheCapacity
	if cacheCap == 0 {
		cacheCap = DefaultCacheCapacity
	}
	c := &Collection{name: name, eng: s.eng, shards: shards}
	if cacheCap > 0 {
		c.cacheCap = cacheCap
		c.entries = make(map[fingerprint]cacheEntry)
	}
	// A sharded collection's first query fans out `shards` concurrent
	// engine runs at once; pre-lease that many contexts so the burst
	// hits warm scratch instead of allocating under load.
	if shards > 1 {
		s.eng.Prewarm(shards)
	}
	return c
}

// add registers the collection under its name.
func (s *Store) add(name string, c *Collection) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: Store", ErrClosed)
	}
	if _, ok := s.cols[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateCollection, name)
	}
	s.cols[name] = c
	return nil
}

// Collection returns the named collection, or ErrUnknownCollection.
func (s *Store) Collection(name string) (*Collection, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, fmt.Errorf("%w: Store", ErrClosed)
	}
	c, ok := s.cols[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCollection, name)
	}
	return c, nil
}

// Names returns the attached collection names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.cols))
	for name := range s.cols {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Drop detaches the named collection; subsequent queries on handles to
// it fail with ErrClosed. The backing Dataset or stream source is
// untouched (it belongs to the caller).
func (s *Store) Drop(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: Store", ErrClosed)
	}
	c, ok := s.cols[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownCollection, name)
	}
	delete(s.cols, name)
	c.dropped.Store(true)
	return nil
}

// Close drops every collection and, when the Store owns its Engine
// (NewStore), closes it. In-flight queries must have completed, as for
// Engine.Close.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for name, c := range s.cols {
		c.dropped.Store(true)
		delete(s.cols, name)
	}
	if s.ownEng {
		s.eng.Close()
	}
}
