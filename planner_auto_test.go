package skybench_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"skybench"
)

// replayEvent is one query of an NDJSON-serialized workload trace: the
// shape knobs a client would vary, one JSON object per line. The trace
// below is self-authored (the server's event log records only a query
// fingerprint hash, which cannot be inverted back into a query), but
// the replay loop consumes it exactly the way a captured log would be.
type replayEvent struct {
	K    int `json:"k"`
	Reps int `json:"reps"`
}

// plannerReplayTrace is a mixed workload: mostly plain skylines with
// interleaved k-skyband bursts, and enough repetitions that the
// planner's explore budget is spent and its cost history fills past
// MinSamples for the exploited arm.
const plannerReplayTrace = `{"k":1,"reps":4}
{"k":2,"reps":2}
{"k":1,"reps":3}
{"k":3,"reps":2}
{"k":1,"reps":4}
{"k":2,"reps":1}
{"k":1,"reps":4}
`

// decodeReplayTrace expands the NDJSON trace into the query sequence.
func decodeReplayTrace(t *testing.T) []skybench.Query {
	t.Helper()
	var qs []skybench.Query
	sc := bufio.NewScanner(strings.NewReader(plannerReplayTrace))
	for sc.Scan() {
		var ev replayEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line %q: %v", sc.Text(), err)
		}
		for i := 0; i < ev.Reps; i++ {
			qs = append(qs, skybench.Query{SkybandK: ev.K})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(qs) < 18 {
		t.Fatalf("trace expands to %d queries, want a mixed workload of at least 18", len(qs))
	}
	return qs
}

// runReplay replays the query sequence with a fixed algorithm choice
// applied on top and returns total wall time (which, unlike
// Stats.Elapsed, charges Auto for its planning overhead too).
func runReplay(t *testing.T, col *skybench.Collection, base []skybench.Query, alg skybench.Algorithm) time.Duration {
	t.Helper()
	ctx := context.Background()
	var total time.Duration
	for _, q := range base {
		q.Algorithm = alg
		start := time.Now()
		if _, err := col.Run(ctx, q); err != nil {
			t.Fatalf("%v replay: %v", alg, err)
		}
		total += time.Since(start)
	}
	return total
}

// TestPlannerOracleReplay is the planner's oracle property: replaying
// the same mixed trace, Algorithm Auto's total latency must stay within
// a bounded factor of the best fixed hot-path algorithm on every
// distribution — adaptivity may cost its explore budget but must never
// degenerate to the worst arm. Caching is disabled so every query pays
// for a real execution, and every Auto answer is checked bit-identical
// to its resolved plan run explicitly.
func TestPlannerOracleReplay(t *testing.T) {
	const n, d = 4000, 6
	trace := decodeReplayTrace(t)
	st := skybench.NewStore(2)
	defer st.Close()

	for _, dist := range []string{"correlated", "independent", "anticorrelated"} {
		t.Run(dist, func(t *testing.T) {
			rows := storeTestData(t, dist, n, d, 9)
			ds, err := skybench.NewDataset(rows)
			if err != nil {
				t.Fatal(err)
			}
			attach := func(suffix string) *skybench.Collection {
				col, err := st.Attach(dist+"-"+suffix, ds, skybench.CollectionOptions{CacheCapacity: -1})
				if err != nil {
					t.Fatal(err)
				}
				return col
			}

			fixed := map[skybench.Algorithm]time.Duration{
				skybench.Hybrid: runReplay(t, attach("hybrid"), trace, skybench.Hybrid),
				skybench.QFlow:  runReplay(t, attach("qflow"), trace, skybench.QFlow),
			}
			best := fixed[skybench.Hybrid]
			for _, el := range fixed {
				if el < best {
					best = el
				}
			}

			auto := attach("auto")
			ctx := context.Background()
			var autoTotal time.Duration
			for _, q := range trace {
				q.Algorithm = skybench.Auto
				start := time.Now()
				res, err := auto.Run(ctx, q)
				autoTotal += time.Since(start)
				if err != nil {
					t.Fatalf("auto replay: %v", err)
				}
				if res.Plan == nil {
					t.Fatal("auto result carries no Plan")
				}
				checkPlanExactness(t, auto, q, res)
			}

			// 4× plus absolute slack: wide enough for scheduler noise on a
			// loaded 1-CPU -race run, tight enough that picking the losing
			// arm on anticorrelated data (Q-Flow is ~10× Hybrid there)
			// still fails.
			bound := 4*best + 250*time.Millisecond
			t.Logf("%s: auto=%v hybrid=%v qflow=%v bound=%v",
				dist, autoTotal, fixed[skybench.Hybrid], fixed[skybench.QFlow], bound)
			if autoTotal > bound {
				t.Errorf("auto total %v exceeds %v (best fixed %v)", autoTotal, bound, best)
			}
		})
	}
}

// checkPlanExactness re-runs an Auto answer's resolved plan as an
// explicit query and requires the bit-identical result — Auto must be
// pure dispatch, never a different computation.
func checkPlanExactness(t *testing.T, col *skybench.Collection, q skybench.Query, res *skybench.QueryResult) {
	t.Helper()
	alg, err := skybench.ParseAlgorithm(res.Plan.Algorithm)
	if err != nil {
		t.Fatalf("plan algorithm %q: %v", res.Plan.Algorithm, err)
	}
	explicit := q
	explicit.Algorithm = alg
	explicit.Alpha = res.Plan.Alpha
	explicit.Beta = res.Plan.Beta
	explicit.Ablation.NoPrefilter = res.Plan.NoPrefilter
	want, err := col.Run(context.Background(), explicit)
	if err != nil {
		t.Fatalf("explicit %v replay: %v", alg, err)
	}
	if len(want.Indices) != len(res.Indices) {
		t.Fatalf("auto returned %d points, explicit %v returned %d",
			len(res.Indices), alg, len(want.Indices))
	}
	for p := range want.Indices {
		if res.Indices[p] != want.Indices[p] {
			t.Fatalf("auto/explicit results diverge at position %d: row %d vs %d",
				p, res.Indices[p], want.Indices[p])
		}
		if res.Counts != nil && res.Counts[p] != want.Counts[p] {
			t.Fatalf("auto/explicit dominator counts diverge at position %d: %d vs %d",
				p, res.Counts[p], want.Counts[p])
		}
	}
}

// TestPlannerShardOverride: on a sharded collection the planner may
// fan a query out below CollectionOptions.Shards. For Hybrid the model
// always prices the unsharded arm cheaper (fan-out has never paid off
// for it in the benchmarks), so the exploited plan must downshift to
// one shard — and the downshifted answer must still match the
// membership of the same query run at the collection's default fan-out.
func TestPlannerShardOverride(t *testing.T) {
	const n, d = 3000, 5
	rows := storeTestData(t, "correlated", n, d, 11)
	ds, err := skybench.NewDataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	st := skybench.NewStore(2)
	defer st.Close()
	col, err := st.Attach("sharded-auto", ds, skybench.CollectionOptions{Shards: 2, CacheCapacity: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	downshifted := 0
	for i := 0; i < 12; i++ {
		res, err := col.Run(ctx, skybench.Query{Algorithm: skybench.Auto, SkybandK: 1 + i%2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan == nil {
			t.Fatal("auto result carries no Plan")
		}
		if res.Plan.Shards < 1 || res.Plan.Shards > 2 {
			t.Fatalf("plan fan-out %d outside [1, Shards]", res.Plan.Shards)
		}
		// While every candidate is still model-priced the model taxes
		// sharded Hybrid ×1.4, so an exploit decision must downshift.
		// ε-greedy explores and decisions made after measured history
		// replaces the model may legitimately keep fan-out 2 (noisy
		// timings on a loaded box can rank the arms either way).
		allModel := true
		for _, c := range res.Plan.Candidates {
			if c.Source != "model" {
				allModel = false
				break
			}
		}
		if !res.Plan.Explore && allModel && res.Plan.Shards != 1 {
			t.Errorf("model-priced exploit %d kept fan-out %d; the model prices hybrid/1 under hybrid/2", i, res.Plan.Shards)
		}
		if res.Plan.Shards == 1 {
			downshifted++
		}

		// Membership must be independent of the chosen fan-out (only
		// ordering may differ between merge paths).
		explicit := skybench.Query{SkybandK: 1 + i%2}
		explicit.Algorithm = skybench.Hybrid
		explicit.Alpha = res.Plan.Alpha
		explicit.Beta = res.Plan.Beta
		explicit.Ablation.NoPrefilter = res.Plan.NoPrefilter
		want, err := col.Run(ctx, explicit)
		if err != nil {
			t.Fatal(err)
		}
		got, ref := bandMap(res.Indices, res.Counts), bandMap(want.Indices, want.Counts)
		if len(got) != len(ref) {
			t.Fatalf("decision %d: auto returned %d points, explicit sharded run %d", i, len(got), len(ref))
		}
		for idx, cnt := range ref {
			if gc, ok := got[idx]; !ok || gc != cnt {
				t.Fatalf("decision %d: row %d count %d vs %d (present=%v)", i, idx, gc, cnt, ok)
			}
		}
	}
	if downshifted == 0 {
		t.Error("planner never downshifted a sharded hybrid query to one shard")
	}

	stats, err := col.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Planner == nil {
		t.Fatal("collection stats carry no planner section")
	}
	var tallied uint64
	for _, dec := range stats.Planner.Decisions {
		tallied += dec.Count
	}
	if tallied != 12 {
		t.Errorf("planner decision counts sum to %d, want 12", tallied)
	}
}

// TestEngineRejectsAuto: Auto is a Store-level meta-algorithm — the
// bare Engine has no planner and must refuse it loudly rather than
// silently running some default.
func TestEngineRejectsAuto(t *testing.T) {
	rows := storeTestData(t, "independent", 100, 3, 5)
	ds, err := skybench.NewDataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	eng := skybench.NewEngine(1)
	defer eng.Close()
	_, err = eng.Run(context.Background(), ds, skybench.Query{Algorithm: skybench.Auto})
	if !errors.Is(err, skybench.ErrBadQuery) {
		t.Fatalf("Engine.Run(Auto) = %v, want ErrBadQuery", err)
	}
	if err == nil || !strings.Contains(err.Error(), "auto") {
		t.Errorf("error %v does not name the auto algorithm", err)
	}
}

// TestAutoCacheSharesResolvedPlan: an Auto query and the identical
// explicit query resolving to the same plan must share one cache entry
// (the fingerprint is taken after planning), and an Auto cache hit
// still reports the decision in Plan.
func TestAutoCacheSharesResolvedPlan(t *testing.T) {
	rows := storeTestData(t, "correlated", 2000, 4, 13)
	ds, err := skybench.NewDataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	st := skybench.NewStore(2)
	defer st.Close()
	col, err := st.Attach("auto-cache", ds, skybench.CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	first, err := col.Run(ctx, skybench.Query{Algorithm: skybench.Auto})
	if err != nil {
		t.Fatal(err)
	}
	if first.Plan == nil {
		t.Fatal("auto result carries no Plan")
	}
	// Run until the planner repeats a plan it has cached a result for —
	// with one candidate arm exploited nearly always this happens within
	// a few queries even if an early decision explored.
	var hit *skybench.QueryResult
	for i := 0; i < 10; i++ {
		res, err := col.Run(ctx, skybench.Query{Algorithm: skybench.Auto})
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan == nil {
			t.Fatal("auto result lost its Plan")
		}
		if cs := col.CacheStats(); cs.Hits > 0 {
			hit = res
			break
		}
	}
	if hit == nil {
		t.Fatal(fmt.Errorf("10 identical auto queries never hit the cache (stats %+v)", col.CacheStats()))
	}
	if hit.Plan.Algorithm == "" {
		t.Error("cache-hit Plan lost its resolved algorithm")
	}
}
