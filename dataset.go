package skybench

import (
	"fmt"

	"skybench/internal/point"
)

// Dataset is a validated, immutable collection of points that an Engine
// can answer many queries over. Validation (consistent dimensionality,
// supported dimension count) happens exactly once, at construction, so a
// serving loop pays nothing per query for it; the values are stored
// row-major in one flat allocation, the layout every hot path in this
// repository consumes directly.
//
// A Dataset is safe for concurrent use by any number of queries on any
// number of Engines. Do not mutate the values after construction:
// NewDataset copies its input and is always safe, DatasetFromFlat adopts
// the caller's slice to stay zero-copy and trusts the caller to leave it
// alone.
type Dataset struct {
	vals []float64
	n, d int
}

// NewDataset validates rows (every point must have the same nonzero
// dimensionality, at most MaxDims) and copies them into a new Dataset.
// An empty input yields an empty Dataset, over which every query returns
// an empty skyline.
func NewDataset(rows [][]float64) (*Dataset, error) {
	if len(rows) == 0 {
		return &Dataset{}, nil
	}
	d, err := validateRows(rows)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, len(rows)*d)
	for i, row := range rows {
		copy(vals[i*d:(i+1)*d], row)
	}
	return &Dataset{vals: vals, n: len(rows), d: d}, nil
}

// validateRows checks a non-empty row-of-slices input (consistent,
// nonzero, supported dimensionality; finite values) and returns its
// dimensionality. Shared by NewDataset and the legacy Context.Compute so
// the two surfaces cannot drift.
func validateRows(rows [][]float64) (int, error) {
	d := len(rows[0])
	if d == 0 {
		return 0, fmt.Errorf("%w: points must have at least one dimension", ErrBadDataset)
	}
	for i, row := range rows {
		if len(row) != d {
			return 0, fmt.Errorf("%w: point %d has %d dimensions, want %d", ErrBadDataset, i, len(row), d)
		}
		for j, v := range row {
			if !point.Finite(v) {
				return 0, fmt.Errorf("%w: point %d has non-finite value %v on dimension %d", ErrBadDataset, i, v, j)
			}
		}
	}
	if d > point.MaxDims {
		return 0, fmt.Errorf("%w: at most %d dimensions supported, got %d", ErrBadDataset, point.MaxDims, d)
	}
	return d, nil
}

// DatasetFromFlat builds a Dataset around n points of d dimensions
// stored row-major in vals (len(vals) must be n*d) without copying.
//
// Ownership rule (the write-side mirror of the aliasing rule on
// Result.Indices): the Dataset adopts vals — it holds the slice itself,
// not a copy — so from this call on the slice belongs to the Dataset and
// the caller must never write to it again, from any goroutine, for as
// long as the Dataset (or any Result computed over it) is in use.
// Callers that cannot guarantee that should use NewDataset, which
// always copies.
func DatasetFromFlat(vals []float64, n, d int) (*Dataset, error) {
	if n == 0 {
		return &Dataset{}, nil
	}
	if err := validateFlat(vals, n, d); err != nil {
		return nil, err
	}
	return &Dataset{vals: vals, n: n, d: d}, nil
}

// validateFlat checks a non-empty flat row-major input (shape plus
// finite values: NaN poisons dominance tests — every comparison against
// it is false, so a NaN point is never dominated and never dominates —
// and ±Inf breaks the L1-norm filters and the Max-preference negation).
// Shared by DatasetFromFlat and the legacy Context.ComputeFlat.
func validateFlat(vals []float64, n, d int) error {
	if d <= 0 {
		return fmt.Errorf("%w: points must have at least one dimension", ErrBadDataset)
	}
	if len(vals) != n*d {
		return fmt.Errorf("%w: flat input has %d values, want n*d = %d", ErrBadDataset, len(vals), n*d)
	}
	if d > point.MaxDims {
		return fmt.Errorf("%w: at most %d dimensions supported, got %d", ErrBadDataset, point.MaxDims, d)
	}
	for i, v := range vals {
		if !point.Finite(v) {
			return fmt.Errorf("%w: point %d has non-finite value %v on dimension %d", ErrBadDataset, i/d, v, i%d)
		}
	}
	return nil
}

// N returns the number of points.
func (ds *Dataset) N() int { return ds.n }

// D returns the dimensionality.
func (ds *Dataset) D() int { return ds.d }

// Row returns point i as a slice aliasing the Dataset's storage.
//
// Aliasing rule (mirroring the one stated on Result.Indices): the slice
// is a view, not a copy. Reading it is valid for the life of the Dataset
// and safe from any goroutine; writing to it is never allowed — it would
// break the immutability every concurrent query depends on. Callers that
// need a mutable row must copy it.
func (ds *Dataset) Row(i int) []float64 {
	return ds.vals[i*ds.d : (i+1)*ds.d : (i+1)*ds.d]
}

// matrix returns the dataset as the internal matrix type (aliasing, not
// copying).
func (ds *Dataset) matrix() point.Matrix {
	return point.FromFlat(ds.vals, ds.n, ds.d)
}
