package skybench

import (
	"fmt"

	"skybench/internal/point"
)

// Dataset is a validated, immutable collection of points that an Engine
// can answer many queries over. Validation (consistent dimensionality,
// supported dimension count) happens exactly once, at construction, so a
// serving loop pays nothing per query for it; the values are stored
// row-major in one flat allocation, the layout every hot path in this
// repository consumes directly.
//
// A Dataset is safe for concurrent use by any number of queries on any
// number of Engines. Do not mutate the values after construction:
// NewDataset copies its input and is always safe, DatasetFromFlat adopts
// the caller's slice to stay zero-copy and trusts the caller to leave it
// alone.
type Dataset struct {
	vals []float64
	n, d int
}

// NewDataset validates rows (every point must have the same nonzero
// dimensionality, at most MaxDims) and copies them into a new Dataset.
// An empty input yields an empty Dataset, over which every query returns
// an empty skyline.
func NewDataset(rows [][]float64) (*Dataset, error) {
	if len(rows) == 0 {
		return &Dataset{}, nil
	}
	d, err := validateRows(rows)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, len(rows)*d)
	for i, row := range rows {
		copy(vals[i*d:(i+1)*d], row)
	}
	return &Dataset{vals: vals, n: len(rows), d: d}, nil
}

// validateRows checks a non-empty row-of-slices input (consistent,
// nonzero, supported dimensionality) and returns its dimensionality.
// Shared by NewDataset and the legacy Context.Compute so the two
// surfaces cannot drift.
func validateRows(rows [][]float64) (int, error) {
	d := len(rows[0])
	if d == 0 {
		return 0, fmt.Errorf("skybench: points must have at least one dimension")
	}
	for i, row := range rows {
		if len(row) != d {
			return 0, fmt.Errorf("skybench: point %d has %d dimensions, want %d", i, len(row), d)
		}
	}
	if d > point.MaxDims {
		return 0, fmt.Errorf("skybench: at most %d dimensions supported, got %d", point.MaxDims, d)
	}
	return d, nil
}

// DatasetFromFlat builds a Dataset around n points of d dimensions
// stored row-major in vals (len(vals) must be n*d) without copying. The
// Dataset adopts the slice: the caller must not modify it afterwards.
func DatasetFromFlat(vals []float64, n, d int) (*Dataset, error) {
	if n == 0 {
		return &Dataset{}, nil
	}
	if err := validateFlat(vals, n, d); err != nil {
		return nil, err
	}
	return &Dataset{vals: vals, n: n, d: d}, nil
}

// validateFlat checks a non-empty flat row-major input. Shared by
// DatasetFromFlat and the legacy Context.ComputeFlat.
func validateFlat(vals []float64, n, d int) error {
	if d <= 0 {
		return fmt.Errorf("skybench: points must have at least one dimension")
	}
	if len(vals) != n*d {
		return fmt.Errorf("skybench: flat input has %d values, want n*d = %d", len(vals), n*d)
	}
	if d > point.MaxDims {
		return fmt.Errorf("skybench: at most %d dimensions supported, got %d", point.MaxDims, d)
	}
	return nil
}

// N returns the number of points.
func (ds *Dataset) N() int { return ds.n }

// D returns the dimensionality.
func (ds *Dataset) D() int { return ds.d }

// Row returns point i as a slice aliasing the Dataset's storage. Treat
// it as read-only; mutating it breaks the immutability every concurrent
// query depends on.
func (ds *Dataset) Row(i int) []float64 {
	return ds.vals[i*ds.d : (i+1)*ds.d : (i+1)*ds.d]
}

// matrix returns the dataset as the internal matrix type (aliasing, not
// copying).
func (ds *Dataset) matrix() point.Matrix {
	return point.FromFlat(ds.vals, ds.n, ds.d)
}
