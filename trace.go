package skybench

import (
	"fmt"
	"strings"
	"time"
)

// QueryTrace is an EXPLAIN ANALYZE-style account of one answered query:
// which algorithm ran, where its wall-clock time went, how much work
// (dominance tests, prune hits, per-phase survivors) it did, and — for
// Collection queries — whether the answer came from the epoch-keyed
// cache and how a sharded fan-out was merged.
//
// A trace is only materialized when Query.Trace is set; untraced
// queries pay nothing beyond the engine's always-on counters, so the
// zero-allocation steady state of the hot paths is preserved. All
// durations marshal as integer nanoseconds, so a trace round-trips
// exactly over the JSON wire protocol.
type QueryTrace struct {
	// Algorithm is the CLI name of the algorithm that answered the
	// query (the algorithm of the original computation, for cache hits).
	Algorithm string `json:"algorithm"`
	// SkybandK echoes the query's band width for k-skyband queries.
	SkybandK int `json:"skyband_k,omitempty"`
	// CacheHit reports that a Collection answered from its epoch-keyed
	// result cache without computing. A cache-hit trace carries the
	// identity of the answer (algorithm, epoch, sizes) but no phase
	// timings or work counters — the work happened on an earlier query.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Stale reports that the answer was a stale-fallback (AllowStale)
	// served after fresh computation failed.
	Stale bool `json:"stale,omitempty"`
	// Partial marks a degraded cluster answer: one or more workers
	// failed and the collection's partial policy merged the rest, so
	// the rows placed on the failed workers are missing.
	Partial bool `json:"partial,omitempty"`
	// Epoch is the collection membership epoch the answer reflects
	// (zero for plain Engine runs).
	Epoch uint64 `json:"epoch,omitempty"`
	// InputSize and Output are the number of points entering the
	// computation and the number returned.
	InputSize int `json:"input_size"`
	Output    int `json:"output"`
	// Threads is the effective worker count of the run.
	Threads int `json:"threads,omitempty"`
	// DominanceTests counts full point-vs-point dominance tests — the
	// machine-independent work metric (paper Section IV-A).
	DominanceTests uint64 `json:"dominance_tests"`
	// PrefilterPruned is the number of input points the β-queue
	// prefilter discarded before the main algorithm ran.
	PrefilterPruned int `json:"prefilter_pruned,omitempty"`
	// Phase1Survivors and Phase2Survivors are the total points
	// surviving Phase I (vs the global skyline) and Phase II (vs block
	// peers) across all α-blocks.
	Phase1Survivors int `json:"phase1_survivors,omitempty"`
	Phase2Survivors int `json:"phase2_survivors,omitempty"`
	// Sort is the time spent in the sort step (Hybrid's three-key radix
	// + per-run L1 sorts, Q-Flow's L1 radix), a subset of Phases.Init.
	Sort time.Duration `json:"sort_ns,omitempty"`
	// Elapsed is the total wall-clock time of the computation (for a
	// sharded query: the whole fan-out, merge included).
	Elapsed time.Duration `json:"elapsed_ns"`
	// Phases is the per-phase wall-clock breakdown (summed across
	// shards for a sharded query).
	Phases PhaseTimings `json:"phases"`
	// MergePath records how a sharded Collection merged its per-shard
	// bands: shard.MergePathKernel ("kernel", flat recount kernel) or
	// shard.MergePathEngine ("engine", full engine recompute over the
	// candidate union). Empty for unsharded queries.
	MergePath string `json:"merge_path,omitempty"`
	// Shards breaks a sharded fan-out down per shard.
	Shards []ShardTrace `json:"shards,omitempty"`
	// Workers breaks a cluster fan-out down per worker process — one
	// level above Shards: each worker owns a contiguous row range and
	// may itself have fanned out locally. Only cluster-backed
	// collections set it.
	Workers []WorkerTrace `json:"workers,omitempty"`
	// Planner records the adaptive planner's decision for an
	// Algorithm: Auto query — profile inputs, candidate scores, and the
	// chosen plan. Nil for queries that named their algorithm.
	Planner *PlannerTrace `json:"planner,omitempty"`
}

// PlannerTrace is the planner's account of one Auto decision: what it
// knew (the data profile), what it considered (the scored candidates),
// and what it chose (algorithm, fan-out, tuning, explore/exploit).
type PlannerTrace struct {
	// Class, MeanRho, SkylineFrac, SkylineEst and SampleN are the
	// attach-time data-profile inputs (see planner.Profile).
	Class       string  `json:"class"`
	MeanRho     float64 `json:"mean_spearman"`
	SkylineFrac float64 `json:"skyline_frac"`
	SkylineEst  int     `json:"skyline_est"`
	SampleN     int     `json:"sample_n"`
	// Algorithm, Shards, Alpha, Beta and NoPrefilter are the chosen
	// plan as it was written into the executed query.
	Algorithm   string `json:"algorithm"`
	Shards      int    `json:"shards"`
	Alpha       int    `json:"alpha,omitempty"`
	Beta        int    `json:"beta,omitempty"`
	NoPrefilter bool   `json:"no_prefilter,omitempty"`
	// Explore marks an ε-greedy exploration of an under-sampled arm;
	// Reason says why the plan won in either mode.
	Explore bool   `json:"explore,omitempty"`
	Reason  string `json:"reason"`
	// Candidates are every arm the planner scored.
	Candidates []PlannerCandidate `json:"candidates,omitempty"`
}

// PlannerCandidate is one scored (algorithm, fan-out) arm.
type PlannerCandidate struct {
	Algorithm string `json:"algorithm"`
	Shards    int    `json:"shards"`
	// Predicted is the arm's predicted latency: its own windowed p50
	// when Source is "history", the profile-driven cost model's price
	// when Source is "model".
	Predicted time.Duration `json:"predicted_ns"`
	Source    string        `json:"source"`
	Samples   int           `json:"samples"`
}

// ShardTrace is the per-shard slice of a sharded query's trace.
type ShardTrace struct {
	// Shard is the shard's ordinal in the collection's partition.
	Shard int `json:"shard"`
	// InputSize and Output are the shard's point count and the size of
	// its local band.
	InputSize int `json:"input_size"`
	Output    int `json:"output"`
	// DominanceTests is the shard run's dominance-test count.
	DominanceTests uint64 `json:"dominance_tests"`
	// PrefilterPruned is the shard run's prefilter prune count.
	PrefilterPruned int `json:"prefilter_pruned,omitempty"`
	// Elapsed is the shard run's wall-clock time.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// WorkerTrace is the per-worker slice of a cluster query's trace: one
// remote skyserved process answering for one contiguous row-range
// shard over the wire protocol.
type WorkerTrace struct {
	// Worker is the worker's ordinal in the coordinator's placement.
	Worker int `json:"worker"`
	// Addr is the worker's base URL.
	Addr string `json:"addr"`
	// Lo and Hi are the global row range [Lo, Hi) placed on the worker.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// InputSize and Output are the worker's point count and the size of
	// its local band (zero when the worker failed).
	InputSize int `json:"input_size"`
	Output    int `json:"output"`
	// DominanceTests is the worker run's reported dominance-test count.
	DominanceTests uint64 `json:"dominance_tests"`
	// Wire is the whole wire round trip as the coordinator saw it
	// (serialize, transport, worker compute, parse); Elapsed is the
	// worker's own reported compute time, so Wire − Elapsed bounds the
	// transport-and-queue overhead.
	Wire    time.Duration `json:"wire_ns"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// Retries counts the transport retries the client spent on the call.
	Retries int `json:"retries,omitempty"`
	// Failed marks a worker that produced no mergeable answer (transport
	// failure, deadline, epoch skew); Err carries its failure message.
	Failed bool   `json:"failed,omitempty"`
	Err    string `json:"err,omitempty"`
}

// traceFromResult materializes the trace of one engine run from the
// result's always-on statistics. Called only for traced queries, so
// untraced runs never pay the allocation.
func traceFromResult(algo Algorithm, k int, res *Result) *QueryTrace {
	s := &res.Stats
	return &QueryTrace{
		Algorithm:       algo.String(),
		SkybandK:        k,
		InputSize:       s.InputSize,
		Output:          len(res.Indices),
		Threads:         s.Threads,
		DominanceTests:  s.DominanceTests,
		PrefilterPruned: s.PrefilterPruned,
		Phase1Survivors: s.Phase1Survivors,
		Phase2Survivors: s.Phase2Survivors,
		Sort:            s.SortTime,
		Elapsed:         s.Elapsed,
		Phases:          s.Timings,
	}
}

// String renders the trace as a compact multi-line EXPLAIN ANALYZE-style
// report (the same rendering skyctl query -trace prints).
func (t *QueryTrace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "algorithm=%s", t.Algorithm)
	if t.SkybandK > 1 {
		fmt.Fprintf(&b, " skyband_k=%d", t.SkybandK)
	}
	if t.Epoch != 0 {
		fmt.Fprintf(&b, " epoch=%d", t.Epoch)
	}
	if t.CacheHit {
		b.WriteString(" cache=hit")
	}
	if t.Stale {
		b.WriteString(" stale=true")
	}
	if t.Partial {
		b.WriteString(" partial=true")
	}
	if p := t.Planner; p != nil {
		fmt.Fprintf(&b, "\nplanner: class=%s rho=%.3f sky_frac=%.3f sky_est=%d sample=%d",
			p.Class, p.MeanRho, p.SkylineFrac, p.SkylineEst, p.SampleN)
		fmt.Fprintf(&b, "\nplanner: chose %s shards=%d alpha=%d beta=%d no_prefilter=%v explore=%v (%s)",
			p.Algorithm, p.Shards, p.Alpha, p.Beta, p.NoPrefilter, p.Explore, p.Reason)
		for _, c := range p.Candidates {
			fmt.Fprintf(&b, "\n  candidate %s/%d: predicted=%v source=%s samples=%d",
				c.Algorithm, c.Shards, c.Predicted.Round(time.Microsecond), c.Source, c.Samples)
		}
	}
	fmt.Fprintf(&b, "\ninput=%d output=%d elapsed=%v", t.InputSize, t.Output, t.Elapsed.Round(time.Microsecond))
	if t.CacheHit {
		return b.String()
	}
	fmt.Fprintf(&b, " threads=%d", t.Threads)
	fmt.Fprintf(&b, "\ndominance_tests=%d prefilter_pruned=%d phase1_survivors=%d phase2_survivors=%d",
		t.DominanceTests, t.PrefilterPruned, t.Phase1Survivors, t.Phase2Survivors)
	p := t.Phases
	fmt.Fprintf(&b, "\nphases: init=%v (sort=%v) prefilter=%v pivot=%v phase1=%v phase2=%v compress=%v other=%v",
		p.Init.Round(time.Microsecond), t.Sort.Round(time.Microsecond),
		p.Prefilter.Round(time.Microsecond), p.Pivot.Round(time.Microsecond),
		p.PhaseOne.Round(time.Microsecond), p.PhaseTwo.Round(time.Microsecond),
		p.Compress.Round(time.Microsecond), p.Other.Round(time.Microsecond))
	if len(t.Workers) > 0 {
		fmt.Fprintf(&b, "\nmerge=%s workers=%d", t.MergePath, len(t.Workers))
		for _, w := range t.Workers {
			fmt.Fprintf(&b, "\n  worker %d %s rows=[%d,%d): input=%d output=%d dts=%d wire=%v elapsed=%v",
				w.Worker, w.Addr, w.Lo, w.Hi, w.InputSize, w.Output, w.DominanceTests,
				w.Wire.Round(time.Microsecond), w.Elapsed.Round(time.Microsecond))
			if w.Retries > 0 {
				fmt.Fprintf(&b, " retries=%d", w.Retries)
			}
			if w.Failed {
				fmt.Fprintf(&b, " FAILED(%s)", w.Err)
			}
		}
	} else if t.MergePath != "" {
		fmt.Fprintf(&b, "\nmerge=%s shards=%d", t.MergePath, len(t.Shards))
		for _, s := range t.Shards {
			fmt.Fprintf(&b, "\n  shard %d: input=%d output=%d dts=%d pruned=%d elapsed=%v",
				s.Shard, s.InputSize, s.Output, s.DominanceTests, s.PrefilterPruned,
				s.Elapsed.Round(time.Microsecond))
		}
	}
	return b.String()
}

// Clone returns a deep copy of the trace (detaching the Shards and
// Workers slices and the planner decision).
func (t *QueryTrace) Clone() *QueryTrace {
	if t == nil {
		return nil
	}
	c := *t
	if t.Shards != nil {
		c.Shards = append([]ShardTrace(nil), t.Shards...)
	}
	if t.Workers != nil {
		c.Workers = append([]WorkerTrace(nil), t.Workers...)
	}
	if t.Planner != nil {
		p := *t.Planner
		if p.Candidates != nil {
			p.Candidates = append([]PlannerCandidate(nil), p.Candidates...)
		}
		c.Planner = &p
	}
	return &c
}
