package skybench_test

import (
	"context"
	"errors"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skybench"
	"skybench/internal/faults"
)

// gateSource is a StreamSource whose materialization can be stalled at
// will — the deterministic stand-in for a stream index holding its
// write lock through a long rebuild, which is how deadline and
// overload behavior gets exercised without sleeps in the hot path.
type gateSource struct {
	d     int
	epoch atomic.Uint64
	block atomic.Bool
	gate  chan struct{} // blocked LiveSnapshot calls wait here

	mu   sync.Mutex
	vals []float64
	ids  []uint64
}

func newGateSource(rows [][]float64) *gateSource {
	s := &gateSource{d: len(rows[0]), gate: make(chan struct{})}
	for i, r := range rows {
		s.vals = append(s.vals, r...)
		s.ids = append(s.ids, uint64(i+1))
	}
	s.epoch.Store(1)
	return s
}

func (s *gateSource) D() int            { return s.d }
func (s *gateSource) LiveEpoch() uint64 { return s.epoch.Load() }

func (s *gateSource) LiveSnapshot() ([]float64, []uint64, uint64) {
	if s.block.Load() {
		<-s.gate
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return slices.Clone(s.vals), slices.Clone(s.ids), s.epoch.Load()
}

// TestStorePanicIsolation: an injected panic inside one engine run must
// surface as ErrQueryPanic on that query alone — the sibling collection
// keeps serving, and so does the panicked collection on its next query
// (the poisoned engine context is discarded, not recycled).
func TestStorePanicIsolation(t *testing.T) {
	in := faults.New(1)
	in.Arm(faults.Plan{Site: "engine.run", Panic: true, Count: 1})
	skybench.SetEngineFaults(in)
	defer skybench.SetEngineFaults(nil)

	st := skybench.NewStore(2)
	defer st.Close()
	rowsA := storeTestData(t, "independent", 400, 3, 11)
	rowsB := storeTestData(t, "anticorrelated", 400, 3, 12)
	dsA, _ := skybench.NewDataset(rowsA)
	dsB, _ := skybench.NewDataset(rowsB)
	// Cache disabled so every Run reaches the engine (and the fault site).
	colA, err := st.Attach("a", dsA, skybench.CollectionOptions{CacheCapacity: -1})
	if err != nil {
		t.Fatal(err)
	}
	colB, err := st.Attach("b", dsB, skybench.CollectionOptions{CacheCapacity: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := colA.Run(ctx, skybench.Query{}); !errors.Is(err, skybench.ErrQueryPanic) {
		t.Fatalf("query under injected panic = %v, want ErrQueryPanic", err)
	}
	// The panic poisoned exactly one query: both collections serve.
	if res, err := colB.Run(ctx, skybench.Query{}); err != nil || res.Len() == 0 {
		t.Fatalf("sibling collection after panic: res=%v err=%v", res, err)
	}
	if res, err := colA.Run(ctx, skybench.Query{}); err != nil || res.Len() == 0 {
		t.Fatalf("panicked collection's next query: res=%v err=%v", res, err)
	}
	if got := in.Hits("engine.run"); got == 0 {
		t.Fatal("engine.run fault site never hit")
	}
}

// TestStoreDeadline: a stalled stream materialization must fail the
// query when its deadline passes, with an error naming both the cancel
// family and the deadline specifically.
func TestStoreDeadline(t *testing.T) {
	st := skybench.NewStoreWithOptions(skybench.StoreOptions{Threads: 2, DefaultTimeout: 25 * time.Millisecond})
	defer st.Close()
	src := newGateSource(storeTestData(t, "independent", 200, 3, 5))
	col, err := st.AttachStream("live", src, skybench.CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src.block.Store(true)
	defer close(src.gate) // release the abandoned materialization

	_, err = col.Run(context.Background(), skybench.Query{})
	if !errors.Is(err, skybench.ErrDeadlineExceeded) {
		t.Fatalf("stalled query = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, skybench.ErrCanceled) {
		t.Fatalf("deadline error %v must also wrap ErrCanceled", err)
	}
	// An explicit caller deadline wins over the collection default.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := col.Run(ctx, skybench.Query{}); !errors.Is(err, skybench.ErrDeadlineExceeded) {
		t.Fatalf("caller-deadline query = %v, want ErrDeadlineExceeded", err)
	}
	if e := time.Since(start); e > 20*time.Millisecond {
		t.Fatalf("caller 5ms deadline honored after %v", e)
	}
}

// TestStoreStaleFallback: with AllowStale, a query that misses its
// deadline serves the last cached result for its shape — marked Stale,
// from the older epoch — instead of the error; without AllowStale the
// error stands. The shared cache entry itself must never be tainted.
func TestStoreStaleFallback(t *testing.T) {
	st := skybench.NewStoreWithOptions(skybench.StoreOptions{Threads: 2, DefaultTimeout: 25 * time.Millisecond})
	defer st.Close()
	src := newGateSource(storeTestData(t, "anticorrelated", 300, 3, 6))
	col, err := st.AttachStream("live", src, skybench.CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Warm the cache at epoch 1.
	fresh, err := col.Run(ctx, skybench.Query{SkybandK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Stale {
		t.Fatal("fresh result marked stale")
	}

	// Epoch advances and materialization stalls: fresh is impossible.
	src.epoch.Store(2)
	src.block.Store(true)
	defer close(src.gate)

	if _, err := col.Run(ctx, skybench.Query{SkybandK: 2}); !errors.Is(err, skybench.ErrDeadlineExceeded) {
		t.Fatalf("without AllowStale = %v, want ErrDeadlineExceeded", err)
	}
	res, err := col.Run(ctx, skybench.Query{SkybandK: 2, AllowStale: true})
	if err != nil {
		t.Fatalf("AllowStale degradation failed: %v", err)
	}
	if !res.Stale {
		t.Fatal("degraded result not marked Stale")
	}
	if res.Epoch != fresh.Epoch {
		t.Fatalf("stale result from epoch %d, want cached epoch %d", res.Epoch, fresh.Epoch)
	}
	if !slices.Equal(res.Indices, fresh.Indices) {
		t.Fatal("stale result differs from the cached one")
	}
	if fresh.Stale {
		t.Fatal("degradation tainted the shared cache entry")
	}
	// A different query shape has no cached result: the error stands
	// even with AllowStale.
	if _, err := col.Run(ctx, skybench.Query{SkybandK: 3, AllowStale: true}); !errors.Is(err, skybench.ErrDeadlineExceeded) {
		t.Fatalf("AllowStale with cold shape = %v, want ErrDeadlineExceeded", err)
	}
}

// TestStoreOverload: admission control under MaxInflight/MaxQueue —
// beyond the queue bound submissions fail fast with ErrOverloaded,
// decided synchronously; AllowStale degrades an overloaded submission
// to the cached result; and draining the inflight slot re-admits.
func TestStoreOverload(t *testing.T) {
	st := skybench.NewStoreWithOptions(skybench.StoreOptions{Threads: 2, MaxInflight: 1, MaxQueue: 1})
	defer st.Close()
	src := newGateSource(storeTestData(t, "independent", 300, 3, 8))
	col, err := st.AttachStream("live", src, skybench.CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Warm the cache, then stall the source and invalidate.
	fresh, err := col.Run(ctx, skybench.Query{})
	if err != nil {
		t.Fatal(err)
	}
	src.epoch.Store(2)
	src.block.Store(true)

	// Inflight slot taken (the submission stalls inside the source);
	// queue slot taken; the third submission must fail immediately.
	f1 := col.Submit(ctx, skybench.Query{})
	f2 := col.Submit(ctx, skybench.Query{})
	f3 := col.Submit(ctx, skybench.Query{})
	select {
	case <-f3.Done():
	default:
		t.Fatal("over-bound submission did not fail synchronously")
	}
	if _, err := f3.Result(); !errors.Is(err, skybench.ErrOverloaded) {
		t.Fatalf("over-bound submission = %v, want ErrOverloaded", err)
	}
	// Overload + AllowStale degrades to the cached result immediately.
	f4 := col.Submit(ctx, skybench.Query{AllowStale: true})
	res, err := f4.Result()
	if err != nil || !res.Stale || res.Epoch != fresh.Epoch {
		t.Fatalf("overloaded AllowStale = (%+v, %v), want stale epoch-%d result", res, err, fresh.Epoch)
	}

	// Unblock: the stalled and queued submissions complete fresh.
	src.block.Store(false)
	close(src.gate)
	for i, f := range []*skybench.Future{f1, f2} {
		if res, err := f.Result(); err != nil || res.Stale {
			t.Fatalf("submission %d after drain: res=%+v err=%v", i+1, res, err)
		}
	}
	// Capacity is back.
	if _, err := col.Submit(ctx, skybench.Query{}).Result(); err != nil {
		t.Fatalf("post-drain submission: %v", err)
	}
}

// TestSubmitAfterClose: submissions against a closed Store resolve
// deterministically with ErrClosed — synchronously, and never by
// panicking on a closed channel.
func TestSubmitAfterClose(t *testing.T) {
	st := skybench.NewStoreWithOptions(skybench.StoreOptions{Threads: 1, MaxInflight: 2})
	ds, _ := skybench.NewDataset(storeTestData(t, "correlated", 100, 3, 3))
	col, err := st.Attach("c", ds, skybench.CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	f := col.Submit(context.Background(), skybench.Query{})
	select {
	case <-f.Done():
	default:
		t.Fatal("post-Close submission did not resolve synchronously")
	}
	if _, err := f.Result(); !errors.Is(err, skybench.ErrClosed) {
		t.Fatalf("post-Close submission = %v, want ErrClosed", err)
	}
	if _, err := col.Run(context.Background(), skybench.Query{}); !errors.Is(err, skybench.ErrClosed) {
		t.Fatalf("post-Close Run = %v, want ErrClosed", err)
	}
}

// TestSubmitCloseRace: many goroutines hammer Submit while the Store
// closes concurrently. Every Future must resolve — success or ErrClosed
// (or context cancellation from the admission wait), never a panic and
// never a hang. The Store serves through a caller-owned Engine, so the
// race covers admission and collection shutdown, the paths Close
// actually contends on, without violating the engine's own close
// contract for in-flight queries.
func TestSubmitCloseRace(t *testing.T) {
	rows := storeTestData(t, "independent", 200, 3, 4)
	eng := skybench.NewEngine(2)
	defer eng.Close()
	for iter := 0; iter < 25; iter++ {
		st := skybench.NewStoreWithOptions(skybench.StoreOptions{Engine: eng, MaxInflight: 2, MaxQueue: 2})
		ds, _ := skybench.NewDataset(rows)
		col, err := st.Attach("c", ds, skybench.CollectionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 4; i++ {
					f := col.Submit(context.Background(), skybench.Query{})
					res, err := f.Result()
					switch {
					case err == nil:
						if res == nil || res.Len() == 0 {
							t.Error("successful submission with empty result")
							return
						}
					case errors.Is(err, skybench.ErrClosed) || errors.Is(err, skybench.ErrOverloaded) || errors.Is(err, skybench.ErrCanceled):
						// Legitimate shutdown/admission outcomes.
					default:
						t.Errorf("submission racing Close = %v", err)
						return
					}
				}
			}()
		}
		close(start)
		st.Close()
		wg.Wait()
	}
}

// TestRunCanceledContext: a pre-canceled context fails immediately
// with the cancel family, not a deadline error and not a hang.
func TestRunCanceledContext(t *testing.T) {
	st := skybench.NewStore(1)
	defer st.Close()
	ds, _ := skybench.NewDataset(storeTestData(t, "independent", 100, 3, 2))
	col, err := st.Attach("c", ds, skybench.CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := col.Run(ctx, skybench.Query{}); !errors.Is(err, skybench.ErrCanceled) {
		t.Fatalf("pre-canceled Run = %v, want ErrCanceled", err)
	}
	if _, err := col.Submit(ctx, skybench.Query{}).Result(); !errors.Is(err, skybench.ErrCanceled) {
		t.Fatalf("pre-canceled Submit = %v, want ErrCanceled", err)
	}
}
