package skybench

import (
	"sort"
	"sync"
	"time"

	"skybench/internal/planner"
)

// costWindow is the number of recent latency samples each (collection,
// algorithm) pair retains for the percentile estimates. A fixed ring
// keeps recording O(1) and allocation-free after the first sample.
const costWindow = 256

// AlgorithmCost is one collection's rolling cost statistics for one
// algorithm: how often it ran, how long it took, and how much work it
// did. This is the per-collection execution history the adaptive
// planner (ROADMAP item 3) consumes to pick an algorithm per query;
// it is exposed through CollectionStats.Costs.
type AlgorithmCost struct {
	// Algorithm is the algorithm's CLI name.
	Algorithm string
	// Count is the number of executed (non-cache-hit) runs recorded.
	Count uint64
	// MeanLatency is the mean wall-clock time over all recorded runs.
	MeanLatency time.Duration
	// P50Latency and P99Latency are nearest-rank percentile estimates
	// over the last costWindow runs.
	P50Latency time.Duration
	P99Latency time.Duration
	// MeanDominanceTests is the lifetime mean dominance-test count per
	// run — the machine-independent cost signal, kept lifetime for
	// `skyctl info`.
	MeanDominanceTests float64
	// WindowedMeanDominanceTests is the mean dominance-test count over
	// the same last-costWindow runs the latency percentiles cover, so
	// all planner signals decay at the same rate.
	WindowedMeanDominanceTests float64
}

// costTracker accumulates per-algorithm execution costs for one
// collection. Recording happens on every executed query (cache hits
// record nothing — they did no work); reading sorts and copies under
// the lock, which only Stats() does.
type costTracker struct {
	mu    sync.Mutex
	algos map[Algorithm]*algoCost
}

type algoCost struct {
	count    uint64
	totalNs  int64
	totalDTs uint64
	window   [costWindow]int64  // latency ring, nanoseconds
	dwin     [costWindow]uint64 // dominance-test ring, same positions
	wn       int                // filled length
	wi       int                // next write position
}

// record books one executed run.
func (t *costTracker) record(a Algorithm, elapsed time.Duration, dts uint64) {
	t.mu.Lock()
	c := t.algos[a]
	if c == nil {
		if t.algos == nil {
			t.algos = make(map[Algorithm]*algoCost)
		}
		c = &algoCost{}
		t.algos[a] = c
	}
	c.count++
	c.totalNs += int64(elapsed)
	c.totalDTs += dts
	c.window[c.wi] = int64(elapsed)
	c.dwin[c.wi] = dts
	c.wi = (c.wi + 1) % costWindow
	if c.wn < costWindow {
		c.wn++
	}
	t.mu.Unlock()
}

// stats snapshots the tracker as AlgorithmCost rows sorted by algorithm
// name. Percentiles come from the retained window (nearest-rank).
func (t *costTracker) stats() []AlgorithmCost {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.algos) == 0 {
		return nil
	}
	out := make([]AlgorithmCost, 0, len(t.algos))
	var scratch [costWindow]int64
	for a, c := range t.algos {
		s := scratch[:c.wn]
		copy(s, c.window[:c.wn])
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		row := AlgorithmCost{
			Algorithm:          a.String(),
			Count:              c.count,
			MeanLatency:        time.Duration(c.totalNs / int64(c.count)),
			MeanDominanceTests: float64(c.totalDTs) / float64(c.count),
		}
		if c.wn > 0 {
			row.P50Latency = time.Duration(s[percentileIndex(c.wn, 50)])
			row.P99Latency = time.Duration(s[percentileIndex(c.wn, 99)])
			var dsum uint64
			for _, d := range c.dwin[:c.wn] {
				dsum += d
			}
			row.WindowedMeanDominanceTests = float64(dsum) / float64(c.wn)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Algorithm < out[j].Algorithm })
	return out
}

// percentileIndex is the zero-based nearest-rank index of the p-th
// percentile in a sorted sample of n elements: ceil(p·n/100)−1, clamped
// to the sample. The previous floor-rank form, s[(n−1)·p/100],
// under-reported the tail for any window under 100 samples (n=10, p=99
// indexed the 9th-smallest of 10 instead of the maximum).
func percentileIndex(n, p int) int {
	idx := (n*p+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	if idx > n-1 {
		idx = n - 1
	}
	return idx
}

// plannerRows snapshots the tracker in the planner's input shape:
// windowed signals only (p50 latency, windowed mean dominance tests),
// both decaying at the same costWindow rate.
func (t *costTracker) plannerRows() []planner.CostRow {
	rows := t.stats()
	if len(rows) == 0 {
		return nil
	}
	out := make([]planner.CostRow, len(rows))
	for i, r := range rows {
		out[i] = planner.CostRow{
			Algorithm: r.Algorithm,
			Count:     r.Count,
			P50:       r.P50Latency,
			MeanDTs:   r.WindowedMeanDominanceTests,
		}
	}
	return out
}
