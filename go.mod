module skybench

go 1.24
