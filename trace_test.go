package skybench_test

import (
	"context"
	"testing"

	"skybench"
)

// bruteSkylineSize computes the skyline size by the O(n²) definition —
// the oracle the traced counters are checked against.
func bruteSkylineSize(data [][]float64) int {
	size := 0
	for i, p := range data {
		dominated := false
		for j, q := range data {
			if i != j && skybench.Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			size++
		}
	}
	return size
}

// TestQueryTraceOracle checks a traced single-context run against the
// brute-force oracle and the trace's own arithmetic: the output size is
// the true skyline size, the counters agree with Result.Stats, and the
// per-phase survivor counts telescope (input ≥ phase-1 survivors ≥
// phase-2 survivors = output).
func TestQueryTraceOracle(t *testing.T) {
	for _, dist := range []string{"independent", "anticorrelated"} {
		data, err := skybench.GenerateDataset(dist, 1500, 4, 7)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteSkylineSize(data)
		ds, err := skybench.NewDataset(data)
		if err != nil {
			t.Fatal(err)
		}
		eng := skybench.NewEngine(4)
		ctx := context.Background()
		for _, alg := range []skybench.Algorithm{skybench.Hybrid, skybench.QFlow} {
			res, err := eng.Run(ctx, ds, skybench.Query{Algorithm: alg, Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			tr := res.Trace
			if tr == nil {
				t.Fatalf("%s/%s: no trace on a traced run", dist, alg)
			}
			if tr.Output != want || len(res.Indices) != want {
				t.Errorf("%s/%s: trace output %d, result %d, brute force %d",
					dist, alg, tr.Output, len(res.Indices), want)
			}
			if tr.Algorithm != alg.String() {
				t.Errorf("%s/%s: trace algorithm %q", dist, alg, tr.Algorithm)
			}
			if tr.InputSize != len(data) {
				t.Errorf("%s/%s: trace input %d, want %d", dist, alg, tr.InputSize, len(data))
			}
			if tr.DominanceTests != res.Stats.DominanceTests || tr.DominanceTests == 0 {
				t.Errorf("%s/%s: trace counts %d dominance tests, stats %d",
					dist, alg, tr.DominanceTests, res.Stats.DominanceTests)
			}
			// The survivor counts must telescope down to the skyline.
			if tr.Phase2Survivors != want {
				t.Errorf("%s/%s: phase-2 survivors %d, want skyline size %d",
					dist, alg, tr.Phase2Survivors, want)
			}
			if tr.Phase1Survivors < tr.Phase2Survivors {
				t.Errorf("%s/%s: phase-1 survivors %d < phase-2 survivors %d",
					dist, alg, tr.Phase1Survivors, tr.Phase2Survivors)
			}
			if tr.PrefilterPruned < 0 || tr.PrefilterPruned > len(data)-want {
				t.Errorf("%s/%s: prefilter pruned %d of %d with %d skyline points",
					dist, alg, tr.PrefilterPruned, len(data), want)
			}
			if tr.Elapsed <= 0 {
				t.Errorf("%s/%s: non-positive elapsed %v", dist, alg, tr.Elapsed)
			}
			if tr.CacheHit {
				t.Errorf("%s/%s: engine-level trace marked as cache hit", dist, alg)
			}
			if s := tr.String(); s == "" {
				t.Errorf("%s/%s: empty trace rendering", dist, alg)
			}
		}
		eng.Close()
	}
}

// TestQueryTraceSharded checks the composite trace of a sharded
// collection run: one ShardTrace per shard, shard inputs partitioning
// the dataset, a recorded merge path, and the same brute-force output.
func TestQueryTraceSharded(t *testing.T) {
	data, err := skybench.GenerateDataset("anticorrelated", 3000, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteSkylineSize(data)
	ds, err := skybench.NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	st := skybench.NewStore(4)
	defer st.Close()
	col, err := st.Attach("sharded", ds, skybench.CollectionOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := col.Run(context.Background(), skybench.Query{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("no trace on a traced sharded run")
	}
	if tr.Output != want || res.Len() != want {
		t.Errorf("output %d (result %d), brute force %d", tr.Output, res.Len(), want)
	}
	if len(tr.Shards) != 3 {
		t.Fatalf("trace has %d shard entries, want 3", len(tr.Shards))
	}
	inputs, shardDTs := 0, uint64(0)
	for i, sh := range tr.Shards {
		if sh.Shard != i {
			t.Errorf("shard %d recorded as %d", i, sh.Shard)
		}
		if sh.InputSize <= 0 || sh.Output <= 0 || sh.DominanceTests == 0 {
			t.Errorf("shard %d trace is degenerate: %+v", i, sh)
		}
		inputs += sh.InputSize
		shardDTs += sh.DominanceTests
	}
	if inputs != len(data) {
		t.Errorf("shard inputs sum to %d, want %d", inputs, len(data))
	}
	// The collection-level count includes the merge recount on top of
	// the per-shard work.
	if tr.DominanceTests < shardDTs {
		t.Errorf("total dominance tests %d < per-shard sum %d", tr.DominanceTests, shardDTs)
	}
	if tr.MergePath != "kernel" && tr.MergePath != "engine" {
		t.Errorf("merge path %q, want kernel or engine", tr.MergePath)
	}
}
