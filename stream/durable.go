// Durability for SkylineIndex: a write-ahead log plus checkpointed
// snapshots, so a stream collection survives process crashes.
//
// Every mutation is appended to a segmented, CRC-framed WAL before it
// is applied in memory (write-ahead ordering: a crash can lose an
// un-acknowledged mutation, never acknowledge a lost one).
// InsertBatch appends its records as one group commit — under
// FsyncAlways a batch of N inserts costs a single fsync. Periodically
// (Durability.CheckpointEvery applied records, or Checkpoint on
// demand) the index serializes its full live set, band membership, and
// epoch counters into a checkpoint file, then drops the WAL segments
// the checkpoint supersedes, bounding both recovery time and disk use.
//
// Recover(dir, cfg) restores: it validates the directory's meta file
// against cfg, loads the newest checkpoint (verifying its whole-file
// CRC and that the restored band is point- and count-identical to the
// one the checkpoint recorded), replays the WAL tail, truncates a torn
// final record (a crash mid-append legitimately tears the last frame),
// and reopens the WAL for appends. Damage anywhere before the final
// frame — or a checkpoint that fails verification — is unrecoverable
// data loss and surfaces as skybench.ErrCorruptWAL rather than being
// silently skipped.
//
// A durable index stores original (un-staged) coordinates in both WAL
// and checkpoints, so recovery re-stages under the index's preferences
// and numeric behavior cannot drift between a fresh index and a
// recovered one. Window ring positions are not durable — durability
// covers the point set, not the eviction order of a Window wrapper.
package stream

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"skybench"
	"skybench/internal/faults"
	"skybench/internal/wal"
)

// Fsync selects when the durable index fsyncs its WAL.
type Fsync int

const (
	// FsyncOS (the default) issues buffered writes and lets the kernel
	// flush: acknowledged mutations survive a process crash but not a
	// power failure. This is the policy that keeps durable throughput
	// within a small factor of in-memory throughput.
	FsyncOS Fsync = iota
	// FsyncAlways fsyncs every append (once per InsertBatch — group
	// commit): acknowledged mutations survive power failure, at the cost
	// of one disk flush per operation.
	FsyncAlways
	// FsyncInterval fsyncs from a background loop every SyncInterval:
	// bounded loss under power failure, near-FsyncOS throughput.
	FsyncInterval
)

// Durability configures crash safety for a SkylineIndex (Config.Durable).
type Durability struct {
	// Dir is the directory holding the WAL segments, checkpoints, and
	// meta file. Required. One directory per index.
	Dir string
	// Fsync selects the WAL fsync policy.
	Fsync Fsync
	// SyncInterval is the FsyncInterval period (default 50ms).
	SyncInterval time.Duration
	// SegmentBytes is the WAL segment rotation size (default 4 MiB).
	SegmentBytes int64
	// CheckpointEvery checkpoints after that many applied records
	// (default 8192; negative disables automatic checkpoints — Close and
	// explicit Checkpoint calls still write them).
	CheckpointEvery int

	// faults arms the WAL's injection sites in package-internal tests.
	faults *faults.Injector
}

const (
	defaultCheckpointEvery = 8192

	metaName   = "meta.json"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"

	ckptMagic   = 0x53424350 // "SBCP" little-endian
	ckptVersion = 1

	recInsert byte = 'i'
	recDelete byte = 'd'
)

var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

// durableState is the WAL-side state of a durable SkylineIndex,
// guarded by the index lock.
type durableState struct {
	dir     string
	log     *wal.Log
	every   int // checkpoint cadence in applied records (≤ 0 = manual only)
	since   int // records applied since the last checkpoint
	lastErr error
	buf     []byte   // single-record encode scratch
	recs    [][]byte // batch encode scratch

	// Checkpoint cost counters, reported through DurabilityStats.
	ckpts      uint64 // completed checkpoints
	ckptNs     int64  // total time spent writing them
	lastCkptNs int64  // duration of the most recent one
}

func (dcfg *Durability) walOptions() wal.Options {
	opts := wal.Options{SegmentBytes: dcfg.SegmentBytes, Interval: dcfg.SyncInterval, Faults: dcfg.faults}
	switch dcfg.Fsync {
	case FsyncAlways:
		opts.Sync = wal.SyncAlways
	case FsyncInterval:
		opts.Sync = wal.SyncInterval
	default:
		opts.Sync = wal.SyncOS
	}
	return opts
}

func (dcfg *Durability) cadence() int {
	switch {
	case dcfg.CheckpointEvery < 0:
		return 0
	case dcfg.CheckpointEvery == 0:
		return defaultCheckpointEvery
	default:
		return dcfg.CheckpointEvery
	}
}

// wrapWal maps WAL-layer errors onto the public sentinels.
func wrapWal(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, wal.ErrCorrupt) {
		return fmt.Errorf("%w: %w", skybench.ErrCorruptWAL, err)
	}
	return err
}

// metaFile pins the immutable identity of a durable index so Recover
// can refuse a directory whose contents answer a different question
// than the caller is asking.
type metaFile struct {
	Version int   `json:"version"`
	D       int   `json:"d"`
	K       int   `json:"k"`
	Prefs   []int `json:"prefs,omitempty"`
}

func writeMeta(dir string, m metaFile) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, metaName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, metaName))
}

func readMeta(dir string) (metaFile, error) {
	var m metaFile
	data, err := os.ReadFile(filepath.Join(dir, metaName))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("%w: unreadable meta file: %v", skybench.ErrCorruptWAL, err)
	}
	if m.Version != 1 || m.D < 1 || m.K < 1 {
		return m, fmt.Errorf("%w: implausible meta file %+v", skybench.ErrCorruptWAL, m)
	}
	return m, nil
}

// initDurable sets up durability for a freshly created (empty) index.
// It refuses a directory that already holds durable state — silently
// appending a second life onto an existing log would interleave two
// histories; Recover is the only door back into existing state.
func (x *SkylineIndex) initDurable(dcfg Durability) error {
	if dcfg.Dir == "" {
		return fmt.Errorf("%w: Durability.Dir is required", skybench.ErrBadQuery)
	}
	if _, err := os.Stat(filepath.Join(dcfg.Dir, metaName)); err == nil {
		return fmt.Errorf("%w: %q already holds durable stream state; use stream.Recover", skybench.ErrBadQuery, dcfg.Dir)
	}
	log, err := wal.Open(dcfg.Dir, dcfg.walOptions())
	if err != nil {
		return wrapWal(err)
	}
	if log.NextLSN() > 0 {
		log.Close()
		return fmt.Errorf("%w: %q holds WAL records but no meta file", skybench.ErrCorruptWAL, dcfg.Dir)
	}
	m := metaFile{Version: 1, D: x.d, K: x.k}
	for _, op := range x.prefInts() {
		m.Prefs = append(m.Prefs, op)
	}
	if err := writeMeta(dcfg.Dir, m); err != nil {
		log.Close()
		return err
	}
	x.dur = &durableState{dir: dcfg.Dir, log: log, every: dcfg.cadence()}
	return nil
}

// prefInts returns the index's configured preferences as ints for the
// meta file, canonicalized: nil when every dimension is plain Min, so
// an explicit all-Min vector and an empty one record identically.
func (x *SkylineIndex) prefInts() []int {
	allMin := true
	for _, p := range x.prefs {
		if p != skybench.Min {
			allMin = false
		}
	}
	if allMin {
		return nil
	}
	out := make([]int, len(x.prefs))
	for i, p := range x.prefs {
		out[i] = int(p)
	}
	return out
}

// --- WAL record encoding -------------------------------------------------

// A record is: one op byte, a uvarint ID, and (inserts only) d
// little-endian float64 original coordinates.

func appendInsertRec(buf []byte, id ID, p []float64) []byte {
	buf = append(buf, recInsert)
	buf = binary.AppendUvarint(buf, uint64(id))
	for _, v := range p {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func appendDeleteRec(buf []byte, id ID) []byte {
	buf = append(buf, recDelete)
	return binary.AppendUvarint(buf, uint64(id))
}

func decodeRec(payload []byte, d int) (op byte, id ID, vals []float64, err error) {
	if len(payload) < 2 {
		return 0, 0, nil, fmt.Errorf("record of %d bytes", len(payload))
	}
	op = payload[0]
	raw, n := binary.Uvarint(payload[1:])
	if n <= 0 || raw == 0 {
		return 0, 0, nil, fmt.Errorf("bad record ID")
	}
	id = ID(raw)
	rest := payload[1+n:]
	switch op {
	case recDelete:
		if len(rest) != 0 {
			return 0, 0, nil, fmt.Errorf("delete record with %d trailing bytes", len(rest))
		}
	case recInsert:
		if len(rest) != d*8 {
			return 0, 0, nil, fmt.Errorf("insert record payload of %d bytes, want %d", len(rest), d*8)
		}
		vals = make([]float64, d)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
		}
	default:
		return 0, 0, nil, fmt.Errorf("unknown record op %q", op)
	}
	return op, id, vals, nil
}

// --- mutation-side WAL hooks --------------------------------------------

// durInsert appends the insert record for the ID the next insert will
// assign, before the in-memory apply. A failed append was rolled back
// by the WAL (the mutation is rejected, the index unharmed) unless the
// log reports a sticky failure.
func (x *SkylineIndex) durInsert(id ID, p []float64) error {
	dur := x.dur
	dur.buf = appendInsertRec(dur.buf[:0], id, p)
	if _, err := dur.log.Append(dur.buf); err != nil {
		err = fmt.Errorf("stream: durable insert rejected: %w", err)
		dur.lastErr = err
		return err
	}
	dur.lastErr = nil
	return nil
}

// durInsertBatch group-commits one record per row (IDs are predicted:
// the lock is held, so the rows take consecutive IDs from x.next).
func (x *SkylineIndex) durInsertBatch(rows [][]float64) error {
	dur := x.dur
	if cap(dur.recs) < len(rows) {
		dur.recs = make([][]byte, len(rows))
	}
	recs := dur.recs[:len(rows)]
	for i, p := range rows {
		recs[i] = appendInsertRec(recs[i][:0], x.next+ID(i), p)
	}
	if _, err := dur.log.AppendBatch(recs); err != nil {
		err = fmt.Errorf("stream: durable batch insert rejected: %w", err)
		dur.lastErr = err
		return err
	}
	dur.lastErr = nil
	return nil
}

func (x *SkylineIndex) durDelete(id ID) error {
	dur := x.dur
	dur.buf = appendDeleteRec(dur.buf[:0], id)
	if _, err := dur.log.Append(dur.buf); err != nil {
		err = fmt.Errorf("stream: durable delete rejected: %w", err)
		dur.lastErr = err
		return err
	}
	dur.lastErr = nil
	return nil
}

// durApplied advances the checkpoint cadence after n applied records.
// A failed automatic checkpoint is recorded, not fatal: the WAL still
// holds every record, so durability is intact — only recovery time and
// disk use degrade until a later checkpoint succeeds.
func (x *SkylineIndex) durApplied(n int) {
	dur := x.dur
	dur.since += n
	if dur.every > 0 && dur.since >= dur.every {
		if err := x.checkpointLocked(); err != nil {
			dur.lastErr = fmt.Errorf("stream: checkpoint failed: %w", err)
		}
	}
}

// Err reports the index's durability health: nil for in-memory
// indexes and healthy durable ones. Non-nil when the WAL is poisoned
// (a failed append could not be rolled back — every further mutation
// will be rejected) or when the most recent durable operation failed
// (cleared by the next success).
func (x *SkylineIndex) Err() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.dur == nil {
		return nil
	}
	if err := x.dur.log.Err(); err != nil {
		return err
	}
	return x.dur.lastErr
}

// Durable reports whether the index persists its mutations.
func (x *SkylineIndex) Durable() bool { return x.dur != nil }

// HasState reports whether dir holds a durable index's identity record —
// i.e. whether Recover would find existing state there rather than fail
// with ErrBadDataset. Callers choosing between recovering and creating a
// fresh durable index use this to branch.
func HasState(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, metaName))
	return err == nil
}

// --- checkpoints ---------------------------------------------------------

func ckptName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, lsn, ckptSuffix)
}

func parseCkptName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(ckptPrefix):len(name)-len(ckptSuffix)], 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// listCkpts returns the LSNs of the directory's checkpoints, ascending.
func listCkpts(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		if lsn, ok := parseCkptName(e.Name()); ok {
			out = append(out, lsn)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// checkpoint is the decoded content of a checkpoint file.
type checkpoint struct {
	d, k      int
	lsn       uint64 // WAL replay resumes here
	nextID    uint64
	liveEpoch uint64 // LiveEpoch counter at checkpoint time
	bandEpoch uint64 // band membership epoch at checkpoint time
	ids       []uint64
	vals      []float64 // len(ids)×d originals, row-major
	bandIDs   []uint64  // band membership, for post-restore verification
	bandCnt   []uint32  // dominator counts, parallel to bandIDs
}

// Checkpoint forces one checkpoint now: the full live set and band
// membership are serialized (atomically: temp file + rename), then the
// WAL segments it supersedes are dropped. A no-op for in-memory
// indexes.
func (x *SkylineIndex) Checkpoint() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return fmt.Errorf("%w: stream.SkylineIndex", skybench.ErrClosed)
	}
	if x.dur == nil {
		return nil
	}
	return x.checkpointLocked()
}

func (x *SkylineIndex) checkpointLocked() error {
	dur := x.dur
	start := time.Now()
	lsn := dur.log.NextLSN()
	slots := x.core.AppendLiveSlots(nil)
	sky := x.core.Skyline()

	buf := make([]byte, 0, 64+len(slots)*(8+x.d*8)+len(sky)*12)
	le := binary.LittleEndian
	buf = le.AppendUint32(buf, ckptMagic)
	buf = le.AppendUint32(buf, ckptVersion)
	buf = le.AppendUint32(buf, uint32(x.d))
	buf = le.AppendUint32(buf, uint32(x.k))
	buf = le.AppendUint64(buf, lsn)
	buf = le.AppendUint64(buf, uint64(x.next))
	buf = le.AppendUint64(buf, x.version.Load())
	buf = le.AppendUint64(buf, x.epoch.Load())
	buf = le.AppendUint64(buf, uint64(len(slots)))
	for _, slot := range slots {
		buf = le.AppendUint64(buf, uint64(x.ids[slot]))
		for _, v := range x.origRow(slot) {
			buf = le.AppendUint64(buf, math.Float64bits(v))
		}
	}
	buf = le.AppendUint64(buf, uint64(len(sky)))
	for _, slot := range sky {
		buf = le.AppendUint64(buf, uint64(x.ids[slot]))
		var c int32
		if x.k > 1 {
			c = x.core.DominatorCount(slot)
		}
		buf = le.AppendUint32(buf, uint32(c))
	}
	buf = le.AppendUint32(buf, crc32.Checksum(buf, ckptCRC))

	path := filepath.Join(dur.dir, ckptName(lsn))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}

	// The new checkpoint supersedes everything older. Cleanup failures
	// are ignorable: stale files waste disk, not correctness (recovery
	// always picks the newest checkpoint).
	if old, err := listCkpts(dur.dir); err == nil {
		for _, o := range old {
			if o < lsn {
				os.Remove(filepath.Join(dur.dir, ckptName(o)))
			}
		}
	}
	dur.log.TruncateBefore(lsn)
	dur.since = 0
	el := int64(time.Since(start))
	dur.ckpts++
	dur.ckptNs += el
	dur.lastCkptNs = el
	return nil
}

// DurabilityStats reports the index's WAL and checkpoint cost counters.
// ok is false for in-memory indexes, which have nothing to report. A
// Collection backed by a durable index surfaces these through
// CollectionStats.Durability.
func (x *SkylineIndex) DurabilityStats() (skybench.DurabilityStats, bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.dur == nil {
		return skybench.DurabilityStats{}, false
	}
	ws := x.dur.log.Stats()
	return skybench.DurabilityStats{
		WALFsyncs:      ws.Fsyncs,
		WALFsyncTime:   ws.FsyncTime,
		WALSegments:    ws.Segments,
		Checkpoints:    x.dur.ckpts,
		CheckpointTime: time.Duration(x.dur.ckptNs),
		LastCheckpoint: time.Duration(x.dur.lastCkptNs),
	}, true
}

func readCheckpoint(path string) (*checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	corrupt := func(what string) (*checkpoint, error) {
		return nil, fmt.Errorf("%w: checkpoint %s: %s", skybench.ErrCorruptWAL, filepath.Base(path), what)
	}
	if len(data) < 52 {
		return corrupt("truncated")
	}
	le := binary.LittleEndian
	body, sum := data[:len(data)-4], le.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, ckptCRC) != sum {
		return corrupt("CRC mismatch")
	}
	if le.Uint32(body[0:]) != ckptMagic || le.Uint32(body[4:]) != ckptVersion {
		return corrupt("bad magic or version")
	}
	ck := &checkpoint{
		d:         int(le.Uint32(body[8:])),
		k:         int(le.Uint32(body[12:])),
		lsn:       le.Uint64(body[16:]),
		nextID:    le.Uint64(body[24:]),
		liveEpoch: le.Uint64(body[32:]),
		bandEpoch: le.Uint64(body[40:]),
	}
	if ck.d < 1 {
		return corrupt("implausible dimensionality")
	}
	off := 48
	n := int(le.Uint64(body[off:]))
	off += 8
	rowBytes := 8 + ck.d*8
	if n < 0 || len(body)-off < n*rowBytes {
		return corrupt("live set overruns file")
	}
	ck.ids = make([]uint64, n)
	ck.vals = make([]float64, n*ck.d)
	for i := 0; i < n; i++ {
		ck.ids[i] = le.Uint64(body[off:])
		off += 8
		for j := 0; j < ck.d; j++ {
			ck.vals[i*ck.d+j] = math.Float64frombits(le.Uint64(body[off:]))
			off += 8
		}
	}
	if len(body)-off < 8 {
		return corrupt("band section missing")
	}
	m := int(le.Uint64(body[off:]))
	off += 8
	if m < 0 || len(body)-off != m*12 {
		return corrupt("band section size mismatch")
	}
	ck.bandIDs = make([]uint64, m)
	ck.bandCnt = make([]uint32, m)
	for i := 0; i < m; i++ {
		ck.bandIDs[i] = le.Uint64(body[off:])
		ck.bandCnt[i] = le.Uint32(body[off+8:])
		off += 12
	}
	return ck, nil
}

// --- recovery ------------------------------------------------------------

// Recover restores a durable SkylineIndex from dir: newest checkpoint,
// then the WAL tail, truncating a torn final record. cfg plays the
// same role as in New; its Prefs and SkybandK may be left zero to
// adopt the recovered values, but when set they must match what the
// directory was created with (mismatches fail with ErrBadQuery — the
// directory's points answer a different query). The recovered index
// appends to the same directory; an index recovered while another
// process holds the directory is undefined.
func Recover(dir string, cfg Config) (*SkylineIndex, error) {
	meta, err := readMeta(dir)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: no durable stream state in %q", skybench.ErrBadDataset, dir)
	}
	if err != nil {
		return nil, err
	}

	// Reconcile cfg with the directory's recorded identity.
	if k := canonK(cfg.SkybandK); cfg.SkybandK != 0 && k != meta.K {
		return nil, fmt.Errorf("%w: SkybandK %d, but %q was created with %d", skybench.ErrBadQuery, k, dir, meta.K)
	}
	if len(cfg.Prefs) != 0 {
		given := make([]int, len(cfg.Prefs))
		allMin := true
		for i, p := range cfg.Prefs {
			given[i] = int(p)
			if p != skybench.Min {
				allMin = false
			}
		}
		recorded := meta.Prefs
		if allMin && recorded == nil {
			// All-Min and empty are the same preference vector.
		} else if !intsEqual(given, recorded) {
			return nil, fmt.Errorf("%w: preferences %v, but %q was created with %v", skybench.ErrBadQuery, given, dir, recorded)
		}
	} else if len(meta.Prefs) != 0 {
		cfg.Prefs = make([]skybench.Pref, len(meta.Prefs))
		for i, v := range meta.Prefs {
			cfg.Prefs[i] = skybench.Pref(v)
		}
	}
	cfg.SkybandK = meta.K

	dcfg := Durability{Dir: dir}
	if cfg.Durable != nil {
		dcfg = *cfg.Durable
		if dcfg.Dir == "" {
			dcfg.Dir = dir
		} else if dcfg.Dir != dir {
			return nil, fmt.Errorf("%w: Recover dir %q disagrees with Durability.Dir %q", skybench.ErrBadQuery, dir, dcfg.Dir)
		}
	}

	// Build the in-memory index with delta delivery suppressed: replayed
	// history is not live traffic, and a subscriber must not observe it.
	cfgBuild := cfg
	cfgBuild.Durable = nil
	cfgBuild.OnDelta = nil
	x, err := New(meta.D, cfgBuild)
	if err != nil {
		return nil, err
	}

	// Open the WAL first: it validates every segment, truncates a torn
	// final frame, and fails on real corruption before any state loads.
	log, err := wal.Open(dir, dcfg.walOptions())
	if err != nil {
		return nil, wrapWal(err)
	}
	fail := func(err error) (*SkylineIndex, error) {
		log.Close()
		return nil, err
	}

	var from uint64
	cks, err := listCkpts(dir)
	if err != nil {
		return fail(err)
	}
	if len(cks) > 0 {
		ck, err := readCheckpoint(filepath.Join(dir, ckptName(cks[len(cks)-1])))
		if err != nil {
			return fail(err)
		}
		if ck.d != meta.D || ck.k != meta.K {
			return fail(fmt.Errorf("%w: checkpoint shape (d=%d, k=%d) disagrees with meta (d=%d, k=%d)", skybench.ErrCorruptWAL, ck.d, ck.k, meta.D, meta.K))
		}
		for i, id := range ck.ids {
			x.insertRecovered(ID(id), ck.vals[i*ck.d:(i+1)*ck.d])
		}
		if uint64(x.next) < ck.nextID {
			x.next = ID(ck.nextID)
		}
		if err := x.verifyBand(ck); err != nil {
			return fail(err)
		}
		x.version.Store(ck.liveEpoch)
		x.epoch.Store(ck.bandEpoch)
		from = ck.lsn
	}

	if _, err := wal.Replay(dir, from, func(lsn uint64, payload []byte) error {
		return x.applyRecord(lsn, payload)
	}); err != nil {
		return fail(wrapWal(err))
	}

	x.dur = &durableState{dir: dir, log: log, every: dcfg.cadence()}
	x.onDelta = cfg.OnDelta
	return x, nil
}

func canonK(k int) int {
	if k < 1 {
		return 1
	}
	return k
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applyRecord replays one WAL record during recovery (index lock not
// yet shared — recovery owns the index exclusively). Every failure is
// corruption: records were only ever appended for validated mutations.
func (x *SkylineIndex) applyRecord(lsn uint64, payload []byte) error {
	op, id, vals, err := decodeRec(payload, x.d)
	if err != nil {
		return fmt.Errorf("%w: record %d: %v", skybench.ErrCorruptWAL, lsn, err)
	}
	switch op {
	case recInsert:
		if _, ok := x.loc[id]; ok {
			return fmt.Errorf("%w: record %d re-inserts live ID %d", skybench.ErrCorruptWAL, lsn, id)
		}
		x.insertRecovered(id, vals)
	case recDelete:
		slot, ok := x.loc[id]
		if !ok {
			return fmt.Errorf("%w: record %d deletes unknown ID %d", skybench.ErrCorruptWAL, lsn, id)
		}
		x.deleteSlotLocked(id, slot)
	}
	return nil
}

// verifyBand proves the restored index agrees with the checkpoint's
// recorded band membership and dominator counts — the integrity check
// that catches a checkpoint whose live set and band drifted apart
// (disk corruption the CRC caught nothing of, or a software bug).
func (x *SkylineIndex) verifyBand(ck *checkpoint) error {
	sky := x.core.Skyline()
	if len(sky) != len(ck.bandIDs) {
		return fmt.Errorf("%w: restored band has %d points, checkpoint recorded %d", skybench.ErrCorruptWAL, len(sky), len(ck.bandIDs))
	}
	want := make(map[uint64]uint32, len(ck.bandIDs))
	for i, id := range ck.bandIDs {
		want[id] = ck.bandCnt[i]
	}
	for _, slot := range sky {
		id := uint64(x.ids[slot])
		cnt, ok := want[id]
		if !ok {
			return fmt.Errorf("%w: restored band contains ID %d the checkpoint did not record", skybench.ErrCorruptWAL, id)
		}
		var c int32
		if x.k > 1 {
			c = x.core.DominatorCount(slot)
		}
		if uint32(c) != cnt {
			return fmt.Errorf("%w: ID %d restored with %d dominators, checkpoint recorded %d", skybench.ErrCorruptWAL, id, c, cnt)
		}
	}
	return nil
}

// AttachRecovered recovers the durable index in dir and attaches it to
// the Store under name — the one-call path a restarting service uses
// to bring its stream collections back. The Store takes ownership of
// the recovered index (CloseOnDrop is forced on), so dropping the
// collection or closing the Store checkpoints and closes the WAL.
func AttachRecovered(st *skybench.Store, name, dir string, cfg Config, opts skybench.CollectionOptions) (*skybench.Collection, *SkylineIndex, error) {
	x, err := Recover(dir, cfg)
	if err != nil {
		return nil, nil, err
	}
	opts.CloseOnDrop = true
	col, err := st.AttachStream(name, x, opts)
	if err != nil {
		x.Close()
		return nil, nil, err
	}
	return col, x, nil
}
