package stream

import (
	"slices"
	"testing"

	"skybench"
)

// TestSkybandIndexEdgeCases is the table-driven edge sweep of the
// streaming band surface: degenerate inputs and band parameters at the
// boundaries of the maintenance rules.
func TestSkybandIndexEdgeCases(t *testing.T) {
	type step struct {
		row  []float64 // insert when non-nil
		del  int       // 1-based insertion order to delete when > 0
		want []int     // expected band as 1-based insertion orders, sorted
	}
	cases := []struct {
		name  string
		d, k  int
		steps []step
	}{
		{
			name: "empty-then-single", d: 3, k: 2,
			steps: []step{
				{row: []float64{1, 2, 3}, want: []int{1}},
				{del: 1, want: nil},
			},
		},
		{
			name: "all-identical", d: 2, k: 2,
			steps: []step{
				{row: []float64{5, 5}, want: []int{1}},
				{row: []float64{5, 5}, want: []int{1, 2}},
				{row: []float64{5, 5}, want: []int{1, 2, 3}},
				{del: 2, want: []int{1, 3}},
			},
		},
		{
			// Duplicates on the band boundary: both copies of the
			// dominated pair share the count and move in lockstep.
			name: "dup-boundary", d: 2, k: 2,
			steps: []step{
				{row: []float64{1, 1}, want: []int{1}},
				{row: []float64{2, 2}, want: []int{1, 2}},
				{row: []float64{2, 2}, want: []int{1, 2, 3}},
				{row: []float64{0, 0}, want: []int{1, 4}}, // 2,3 now have 2 dominators
				{del: 1, want: []int{2, 3, 4}},            // both duplicates promote together
			},
		},
		{
			name: "d1-chain", d: 1, k: 2,
			steps: []step{
				{row: []float64{3}, want: []int{1}},
				{row: []float64{2}, want: []int{1, 2}},
				{row: []float64{1}, want: []int{2, 3}}, // {3} has 2 dominators
				{del: 3, want: []int{1, 2}},            // {3} promoted back
			},
		},
		{
			name: "k-geq-n", d: 2, k: 100,
			steps: []step{
				{row: []float64{1, 1}, want: []int{1}},
				{row: []float64{2, 2}, want: []int{1, 2}},
				{row: []float64{3, 3}, want: []int{1, 2, 3}},
				{del: 1, want: []int{2, 3}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ix, err := New(tc.d, Config{SkybandK: tc.k})
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()
			var ids []ID
			for si, st := range tc.steps {
				if st.row != nil {
					id, err := ix.Insert(st.row)
					if err != nil {
						t.Fatalf("step %d: %v", si, err)
					}
					ids = append(ids, id)
				} else {
					if !ix.Delete(ids[st.del-1]) {
						t.Fatalf("step %d: delete of live point failed", si)
					}
				}
				snap := ix.Snapshot()
				got := make([]int, snap.Len())
				for i := 0; i < snap.Len(); i++ {
					got[i] = int(snap.ID(i)) // IDs are 1-based insertion order
					if c := snap.Count(i); c >= tc.k {
						t.Fatalf("step %d: band member %d with count %d >= k=%d", si, snap.ID(i), c, tc.k)
					}
				}
				slices.Sort(got)
				if !slices.Equal(got, st.want) {
					t.Fatalf("step %d: band %v, want %v", si, got, st.want)
				}
			}
		})
	}
}

// TestSkybandConfigValidation pins the Config.SkybandK error surface
// and the BandK accessor.
func TestSkybandConfigValidation(t *testing.T) {
	if _, err := New(3, Config{SkybandK: -2}); err == nil {
		t.Fatalf("negative SkybandK accepted")
	}
	for _, k := range []int{0, 1} {
		ix, err := New(3, Config{SkybandK: k})
		if err != nil {
			t.Fatal(err)
		}
		if ix.BandK() != 1 {
			t.Fatalf("SkybandK=%d: BandK()=%d, want 1", k, ix.BandK())
		}
		ix.Close()
	}
	ix, err := New(2, Config{SkybandK: 3, Prefs: []skybench.Pref{skybench.Max, skybench.Min}})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.BandK() != 3 {
		t.Fatalf("BandK()=%d, want 3", ix.BandK())
	}
	// Under (Max, Min): {9,0} dominates both others; {9,1} additionally
	// dominates {8,2} (higher on the maximized dim, lower on the
	// minimized one). Counts: {8,2}→2, {9,1}→1, {9,0}→0 — all < k=3.
	a, _ := ix.Insert([]float64{8, 2})
	b, _ := ix.Insert([]float64{9, 1})
	dom, _ := ix.Insert([]float64{9, 0})
	for _, id := range []ID{a, b, dom} {
		if !ix.InSkyline(id) {
			t.Fatalf("id %d should be in the band at k=3", id)
		}
	}
	snap := ix.Snapshot()
	for i := 0; i < snap.Len(); i++ {
		var want int
		switch snap.ID(i) {
		case a:
			want = 2
		case b:
			want = 1
		}
		if got := snap.Count(i); got != want {
			t.Fatalf("id %d count %d, want %d", snap.ID(i), got, want)
		}
	}
}
