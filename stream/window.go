package stream

import (
	"fmt"

	"skybench"
)

// Window is a sliding-window skyline: a SkylineIndex fed through a
// fixed-capacity ring buffer, so Push evicts the oldest point once the
// window is full — the "most recent W updates" workload of streaming
// skyline services.
//
// Push must be called from one goroutine at a time (the ring is not
// internally locked); Snapshot and the other read methods delegate to
// the underlying index and are safe concurrently with the writer. A
// full-window Push is an eviction followed by an insertion — two
// mutations, so a concurrent reader can observe the intermediate
// snapshot in which the oldest point has left and the new one has not
// yet arrived.
type Window struct {
	x     *SkylineIndex
	ring  []ID
	head  int
	count int
}

// NewWindow creates a sliding window holding at most capacity points.
func NewWindow(capacity, d int, cfg Config) (*Window, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("%w: window capacity must be at least 1, got %d", skybench.ErrBadQuery, capacity)
	}
	x, err := New(d, cfg)
	if err != nil {
		return nil, err
	}
	return &Window{x: x, ring: make([]ID, capacity)}, nil
}

// Push inserts a point, evicting the oldest one first when the window is
// full, and returns the new point's ID. The point is validated before
// anything is evicted, so an invalid point leaves the window unchanged.
func (w *Window) Push(p []float64) (ID, error) {
	if err := w.x.validatePoint(p); err != nil {
		return 0, err
	}
	if w.count == len(w.ring) {
		w.x.Delete(w.ring[w.head])
		w.head = (w.head + 1) % len(w.ring)
		w.count--
	}
	id, err := w.x.Insert(p)
	if err != nil {
		return 0, err
	}
	w.ring[(w.head+w.count)%len(w.ring)] = id
	w.count++
	return id, nil
}

// Oldest returns the ID next in line for eviction, or false when the
// window is empty.
func (w *Window) Oldest() (ID, bool) {
	if w.count == 0 {
		return 0, false
	}
	return w.ring[w.head], true
}

// Len returns the number of points currently in the window.
func (w *Window) Len() int { return w.count }

// Cap returns the window capacity.
func (w *Window) Cap() int { return len(w.ring) }

// SkylineSize returns the current skyline cardinality of the window.
func (w *Window) SkylineSize() int { return w.x.SkylineSize() }

// Snapshot returns the window's current skyline; see
// SkylineIndex.Snapshot.
func (w *Window) Snapshot() *Snapshot { return w.x.Snapshot() }

// Stats returns the underlying index's counters.
func (w *Window) Stats() Stats { return w.x.Stats() }

// Close releases the underlying index's resources.
func (w *Window) Close() { w.x.Close() }
