package stream

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"skybench"
)

// TestLiveEpochAdvances checks the live-set membership epoch: every
// insert and successful delete advances it — including mutations the
// band-membership (Snapshot) epoch never sees.
func TestLiveEpochAdvances(t *testing.T) {
	ix, err := New(2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.LiveEpoch() != 0 {
		t.Fatalf("fresh index LiveEpoch = %d, want 0", ix.LiveEpoch())
	}
	if _, err := ix.Insert([]float64{0.1, 0.1}); err != nil {
		t.Fatal(err)
	}
	e1 := ix.LiveEpoch()
	if e1 == 0 {
		t.Fatal("insert did not advance LiveEpoch")
	}
	bandEpoch := ix.Snapshot().Epoch()

	// A dominated insert changes the live set but not the band.
	id, err := ix.Insert([]float64{0.9, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if ix.LiveEpoch() <= e1 {
		t.Fatal("dominated insert did not advance LiveEpoch")
	}
	if got := ix.Snapshot().Epoch(); got != bandEpoch {
		t.Fatalf("dominated insert advanced the band epoch %d -> %d", bandEpoch, got)
	}
	e2 := ix.LiveEpoch()

	// Deleting a non-band point likewise.
	if !ix.Delete(id) {
		t.Fatal("delete failed")
	}
	if ix.LiveEpoch() <= e2 {
		t.Fatal("dominated-point delete did not advance LiveEpoch")
	}
	e3 := ix.LiveEpoch()
	// A failed delete must not.
	if ix.Delete(id) {
		t.Fatal("double delete succeeded")
	}
	if ix.LiveEpoch() != e3 {
		t.Fatal("failed delete advanced LiveEpoch")
	}
}

// TestLiveSnapshotContents checks that LiveSnapshot returns every live
// point (band member or not) with its original coordinates and ID,
// deterministically for an unchanged epoch, under non-identity prefs.
func TestLiveSnapshotContents(t *testing.T) {
	ix, err := New(3, Config{Prefs: []skybench.Pref{skybench.Min, skybench.Max, skybench.Ignore}})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	rng := rand.New(rand.NewSource(5))
	want := make(map[ID][]float64)
	for i := 0; i < 200; i++ {
		p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		id, err := ix.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = p
	}
	for id := range want {
		if len(want) <= 150 {
			break
		}
		if !ix.Delete(id) {
			t.Fatalf("delete of %d failed", id)
		}
		delete(want, id)
	}

	vals, ids, epoch := ix.LiveSnapshot()
	if epoch != ix.LiveEpoch() {
		t.Fatalf("snapshot epoch %d, LiveEpoch %d", epoch, ix.LiveEpoch())
	}
	if len(ids) != len(want) || len(vals) != len(want)*3 {
		t.Fatalf("snapshot has %d ids / %d vals, want %d live points", len(ids), len(vals), len(want))
	}
	for i, id := range ids {
		p, ok := want[ID(id)]
		if !ok {
			t.Fatalf("snapshot row %d has unknown id %d", i, id)
		}
		if fmt.Sprint(vals[i*3:(i+1)*3]) != fmt.Sprint(p) {
			t.Fatalf("id %d: snapshot row %v, want original %v", id, vals[i*3:(i+1)*3], p)
		}
	}

	// Determinism at an unchanged epoch.
	vals2, ids2, epoch2 := ix.LiveSnapshot()
	if epoch2 != epoch || fmt.Sprint(ids2) != fmt.Sprint(ids) || fmt.Sprint(vals2) != fmt.Sprint(vals) {
		t.Fatal("repeated LiveSnapshot at an unchanged epoch differs")
	}
}

// TestShardedRebuildOracle forces escalated recomputes through the
// shard-aware rebuild path (RebuildShards = 3) and checks the
// maintained band stays exactly the brute-force band of the live set,
// counts included.
func TestShardedRebuildOracle(t *testing.T) {
	for _, k := range []int{1, 3} {
		ix, err := New(4, Config{
			SkybandK:           k,
			RecomputeThreshold: 0.05, // escalate eagerly
			RebuildShards:      3,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(77 + k)))
		var live []ID
		for i := 0; i < 600; i++ {
			id, err := ix.Insert([]float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()})
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		}
		for i := 0; i < 400; i++ {
			p := rng.Intn(len(live))
			if !ix.Delete(live[p]) {
				t.Fatal("delete failed")
			}
			live[p] = live[len(live)-1]
			live = live[:len(live)-1]
			if rng.Float64() < 0.5 {
				id, err := ix.Insert([]float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()})
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, id)
			}
		}
		if ix.Stats().Rebuilds == 0 {
			t.Fatalf("k=%d: workload never escalated — the sharded rebuild path went unexercised", k)
		}

		// Oracle: a fresh engine run over the live set.
		vals, ids, _ := ix.LiveSnapshot()
		ds, err := skybench.DatasetFromFlat(vals, len(ids), 4)
		if err != nil {
			t.Fatal(err)
		}
		eng := skybench.NewEngine(2)
		q := skybench.Query{}
		if k > 1 {
			q.SkybandK = k
		}
		res, err := eng.Run(context.Background(), ds, q)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[ID]int32, len(res.Indices))
		for p, i := range res.Indices {
			var c int32
			if res.Counts != nil {
				c = res.Counts[p]
			}
			want[ID(ids[i])] = c
		}
		snap := ix.Snapshot()
		if snap.Len() != len(want) {
			t.Fatalf("k=%d: maintained band has %d points, oracle %d", k, snap.Len(), len(want))
		}
		for i := 0; i < snap.Len(); i++ {
			c, ok := want[snap.ID(i)]
			if !ok {
				t.Fatalf("k=%d: band point %d not in oracle band", k, snap.ID(i))
			}
			if int32(snap.Count(i)) != c {
				t.Fatalf("k=%d: band point %d count %d, oracle %d", k, snap.ID(i), snap.Count(i), c)
			}
		}
		eng.Close()
		ix.Close()
	}
}
