// Package stream maintains skylines incrementally under live mutation.
//
// The one-shot algorithms of package skybench recompute a skyline from
// an immutable Dataset on every query; a service facing continuous
// writes (price updates, sensor feeds, sliding time windows) cannot
// afford that. SkylineIndex keeps the exact skyline current across
// Insert and Delete in (typically) microseconds per update: an inserted
// point is tested against the current skyline with the flat dominance
// kernels the one-shot hot paths use; deleting a skyline point
// re-resolves only the points it exclusively dominated (its "bucket"),
// and when mutation churn degrades the structure the index escalates to
// one full Hybrid recompute through a skybench.Engine — amortized over
// the updates that made it necessary.
//
// Quick start:
//
//	ix, _ := stream.New(3, stream.Config{})
//	id, _ := ix.Insert([]float64{0.2, 0.7, 0.1})
//	snap := ix.Snapshot()           // zero-copy, safe while writers run
//	for i := 0; i < snap.Len(); i++ {
//		_ = snap.Row(i)             // a current skyline point
//	}
//	ix.Delete(id)
//
// Windowed streams use NewWindow(capacity, ...), whose Push evicts
// oldest-first once the window is full. Per-dimension preferences
// (skybench.Min, Max, Ignore) are honored exactly as in Query.Prefs, and
// Config.OnDelta subscribes to skyline membership changes.
//
// Concurrency: mutating methods serialize on an internal lock (one
// writer at a time makes that lock uncontended); any number of
// goroutines may concurrently call Snapshot and read the snapshots they
// were handed, without copying — a snapshot is immutable and stays valid
// forever, it just goes stale.
package stream

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"skybench"
	"skybench/internal/faults"
	"skybench/internal/point"
	"skybench/internal/shard"
	istream "skybench/internal/stream"
)

// ID identifies a point in a SkylineIndex for the lifetime of the index.
// IDs are assigned by Insert, never reused, and never zero.
type ID uint64

// Point pairs a point's ID with its coordinates in a delta callback.
// Values aliases index-internal storage and is valid only for the
// duration of the callback; copy it to retain it.
type Point struct {
	ID     ID
	Values []float64
}

// Config configures a SkylineIndex.
type Config struct {
	// Prefs states the per-dimension preference, exactly as
	// skybench.Query.Prefs: empty minimizes every dimension; otherwise
	// one entry per dimension, at least one of them not Ignore.
	// Preferences are fixed for the life of the index — the points are
	// stored pre-staged so the per-update hot path never sees them.
	Prefs []skybench.Pref
	// SkybandK generalizes the index from the skyline to the k-skyband,
	// exactly as skybench.Query.SkybandK: the maintained set is every
	// live point strictly dominated by fewer than SkybandK others, with
	// exact per-point dominator counts in Snapshot.Count. 0 and 1 both
	// select the plain skyline. Fixed for the life of the index; a
	// deletion that drops an excluded point's dominator count below
	// SkybandK promotes it back into the band. Per-point bookkeeping is
	// O(SkybandK), so very large values are better served by whole-set
	// queries. Negative values are invalid.
	SkybandK int
	// RecomputeThreshold tunes escalation: when the work accrued by
	// bucket re-resolutions (plus the next delete's pending bucket)
	// exceeds this fraction of the live point count, the index escalates
	// to one full Engine recompute that also rebalances its internal
	// structure. Zero selects the default (0.5); a negative value
	// disables escalation entirely.
	RecomputeThreshold float64
	// Engine, when non-nil, serves escalated recomputes (sharing its
	// context free-list and worker pool with any other load it carries).
	// When nil the index lazily creates a private Engine on first
	// escalation and closes it on Close.
	Engine *skybench.Engine
	// RebuildShards, when ≥ 2, makes escalated recomputes shard-aware:
	// the staged live set is split into that many contiguous partitions,
	// one Engine run is fanned out per partition, and the per-shard
	// bands are merged exactly (the same fan-out/merge a sharded
	// skybench.Collection performs; soundness in DESIGN.md §10). ≤ 1
	// keeps the single full recompute.
	RebuildShards int
	// OnDelta, when non-nil, receives every skyline membership change:
	// points that entered and points that left, after each mutating
	// operation that changed the skyline (for InsertBatch, after each
	// individual insert). It is called on the mutating goroutine with
	// the index lock held: it must not call back into the index, and the
	// slices (and their Values) are reused — copy what must outlive the
	// callback. It is fixed for the life of the index; subscribers that
	// come and go (network delta streams) should use the cancelable
	// SkylineIndex.OnDelta registration instead.
	OnDelta func(entered, left []Point)
	// Durable, when non-nil, makes the index crash-safe: every mutation
	// is written ahead to a segmented WAL in Durable.Dir, periodically
	// compacted into checkpoints, and stream.Recover restores the index
	// after a crash. See Durability for the policies. New refuses a
	// directory that already holds durable state — Recover is the only
	// way back into existing state.
	Durable *Durability
}

// SkylineIndex is a mutable set of points whose skyline is maintained
// incrementally. See the package comment for the concurrency contract.
type SkylineIndex struct {
	d, de    int
	k        int // band parameter (1 = skyline)
	ops      []point.PrefOp
	prefs    []skybench.Pref // as configured, for the durable meta file
	identity bool

	epoch   atomic.Uint64
	version atomic.Uint64 // live-set membership epoch (every insert/delete)
	snap    atomic.Pointer[Snapshot]

	rebuildShards int

	mu      sync.Mutex
	core    *istream.Index
	ids     []ID // slot-indexed
	orig    []float64
	loc     map[ID]int32
	next    ID
	stage   []float64
	eng     *skybench.Engine
	ownEng  bool
	closed  bool
	onDelta func(entered, left []Point)
	entered []Point
	left    []Point
	inserts uint64
	deletes uint64
	nEnter  uint64
	nLeave  uint64

	subs   []deltaSub // OnDelta registrations, in registration order
	subSeq uint64

	dur           *durableState    // nil for in-memory indexes
	rebuildFaults *faults.Injector // test hook: "stream.rebuild" site
}

// deltaSub is one cancelable OnDelta registration.
type deltaSub struct {
	id uint64
	fn func(entered, left []Point)
}

// New creates an empty SkylineIndex over d-dimensional points.
func New(d int, cfg Config) (*SkylineIndex, error) {
	if d < 1 {
		return nil, fmt.Errorf("%w: stream points must have at least one dimension", skybench.ErrBadDataset)
	}
	if d > point.MaxDims {
		return nil, fmt.Errorf("%w: at most %d dimensions supported, got %d", skybench.ErrBadDataset, point.MaxDims, d)
	}
	if cfg.SkybandK < 0 {
		return nil, fmt.Errorf("%w: negative SkybandK %d", skybench.ErrBadQuery, cfg.SkybandK)
	}
	k := cfg.SkybandK
	if k < 1 {
		k = 1
	}
	x := &SkylineIndex{
		d:             d,
		de:            d,
		k:             k,
		identity:      true,
		loc:           make(map[ID]int32),
		next:          1,
		eng:           cfg.Engine,
		onDelta:       cfg.OnDelta,
		rebuildShards: cfg.RebuildShards,
	}
	if len(cfg.Prefs) != 0 {
		if len(cfg.Prefs) != d {
			return nil, fmt.Errorf("%w: %d preferences for %d dimensions", skybench.ErrBadQuery, len(cfg.Prefs), d)
		}
		ops, err := prefOps(cfg.Prefs)
		if err != nil {
			return nil, err
		}
		if !point.IdentityOps(ops) {
			de := point.EffectiveDims(ops)
			if de == 0 {
				return nil, fmt.Errorf("%w: preferences ignore every dimension", skybench.ErrBadQuery)
			}
			x.ops, x.de, x.identity = ops, de, false
			x.stage = make([]float64, de)
		}
	}
	threshold := cfg.RecomputeThreshold
	if threshold < 0 {
		threshold = math.Inf(1)
	}
	x.core = istream.New(x.de, istream.Options{
		K:               k,
		RebuildFraction: threshold,
		Rebuild:         x.engineRebuild,
		OnEnter: func(slot int32) {
			x.entered = append(x.entered, Point{ID: x.ids[slot], Values: x.origRow(slot)})
		},
		OnLeave: func(slot int32) {
			x.left = append(x.left, Point{ID: x.ids[slot], Values: x.origRow(slot)})
		},
	})
	x.prefs = append([]skybench.Pref(nil), cfg.Prefs...)
	if cfg.Durable != nil {
		if err := x.initDurable(*cfg.Durable); err != nil {
			return nil, err
		}
	}
	return x, nil
}

// prefOps maps public preferences onto staging ops. It must mirror
// skybench.Pref.op exactly; the oracle property tests cross-check the
// two surfaces so they cannot drift silently.
func prefOps(prefs []skybench.Pref) ([]point.PrefOp, error) {
	ops := make([]point.PrefOp, len(prefs))
	for i, p := range prefs {
		switch p {
		case skybench.Min:
			ops[i] = point.PrefKeep
		case skybench.Max:
			ops[i] = point.PrefNegate
		case skybench.Ignore:
			ops[i] = point.PrefDrop
		default:
			return nil, fmt.Errorf("%w: invalid preference %d on dimension %d", skybench.ErrBadQuery, int(p), i)
		}
	}
	return ops, nil
}

// engineRebuild is the escalation hook handed to the core: a full
// skyline (or k-skyband) recompute over the staged live set, served by
// the Engine's context free-list so repeated escalations reuse warm
// scratch. With Config.RebuildShards ≥ 2 the recompute is shard-aware:
// per-partition runs fan out concurrently and merge exactly.
//
// A failed attempt is retried with backoff before falling back to the
// core's sequential rebuild: escalation failures are predominantly
// transient (an injected fault, a worker panic that poisoned one
// engine context), and the sequential fallback over a large live set
// is far more expensive than a 1–4 ms pause. Permanent failures —
// closed engine, structurally invalid inputs — skip the retries.
func (x *SkylineIndex) engineRebuild(vals []float64, n int) ([]int, []int32) {
	if x.eng == nil {
		x.eng = skybench.NewEngine(0)
		x.ownEng = true
	}
	const attempts = 3
	for attempt := 0; ; attempt++ {
		idx, counts, err := x.runRebuild(vals, n)
		if err == nil {
			return idx, counts
		}
		if attempt == attempts-1 ||
			errors.Is(err, skybench.ErrClosed) ||
			errors.Is(err, skybench.ErrBadQuery) ||
			errors.Is(err, skybench.ErrBadDataset) {
			return nil, nil // fall back to the core's sequential rebuild
		}
		time.Sleep(time.Millisecond << attempt)
	}
}

// runRebuild is one escalated recompute attempt.
func (x *SkylineIndex) runRebuild(vals []float64, n int) ([]int, []int32, error) {
	if err := faults.Check(x.rebuildFaults, "stream.rebuild"); err != nil {
		return nil, nil, err
	}
	if p := x.rebuildShards; p > 1 && n > 1 {
		return x.shardedRebuild(vals, n, p)
	}
	ds, err := skybench.DatasetFromFlat(vals, n, x.de)
	if err != nil {
		return nil, nil, err
	}
	q := skybench.Query{ReuseIndices: true}
	if x.k > 1 {
		q.SkybandK = x.k
	}
	// ReuseIndices is safe here: the core consumes the indices (and
	// counts) before this Engine serves its next query, and the index
	// lock serializes escalations.
	res, err := x.eng.Run(context.Background(), ds, q)
	if err != nil {
		return nil, nil, err
	}
	return res.Indices, res.Counts, nil
}

// shardedRebuild splits the staged live set into p contiguous
// partitions, computes each partition's band through the Engine
// concurrently (each run leasing its own context), and merges the
// union exactly — the same merge a sharded Collection performs, on
// already-staged values.
func (x *SkylineIndex) shardedRebuild(vals []float64, n, p int) ([]int, []int32, error) {
	ranges := shard.Split(n, p)
	results := make([]skybench.Result, len(ranges))
	errs := make([]error, len(ranges))
	q := skybench.Query{}
	if x.k > 1 {
		q.SkybandK = x.k
	}
	var wg sync.WaitGroup
	for i, r := range ranges {
		wg.Add(1)
		go func(i int, r shard.Range) {
			defer wg.Done()
			ds, err := skybench.DatasetFromFlat(vals[r.Lo*x.de:r.Hi*x.de:r.Hi*x.de], r.Len(), x.de)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = x.eng.Run(context.Background(), ds, q)
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	var cand []int
	for i, r := range ranges {
		for _, li := range results[i].Indices {
			cand = append(cand, r.Lo+li)
		}
	}
	buf := make([]float64, len(cand)*x.de)
	for pos, gi := range cand {
		copy(buf[pos*x.de:(pos+1)*x.de], vals[gi*x.de:(gi+1)*x.de])
	}
	// Small unions merge through the flat prefix-scan kernel; large ones
	// (high-skyline-fraction data) recount through one engine run over
	// the union, whose partition index prunes the cross-candidate tests
	// the quadratic scan cannot. Same recount either way (DESIGN.md §10),
	// same cutoff as the Collection merge.
	var keep []int
	var counts []int32
	if len(cand) <= shard.MergeKernelMax {
		var err error
		keep, counts, err = shard.MergeBand(context.Background(), buf, len(cand), x.de, x.k, nil)
		if err != nil {
			return nil, nil, err // unreachable with Background, kept for symmetry
		}
	} else {
		ds, err := skybench.DatasetFromFlat(buf, len(cand), x.de)
		if err != nil {
			return nil, nil, err
		}
		mq := skybench.Query{}
		if x.k > 1 {
			mq.SkybandK = x.k
		}
		res, err := x.eng.Run(context.Background(), ds, mq)
		if err != nil {
			return nil, nil, err
		}
		keep, counts = res.Indices, res.Counts
	}
	idx := make([]int, len(keep))
	for j, pos := range keep {
		idx[j] = cand[pos]
	}
	return idx, counts, nil
}

// D returns the dimensionality of the indexed points.
func (x *SkylineIndex) D() int { return x.d }

// BandK returns the band parameter the index maintains (1 = skyline).
func (x *SkylineIndex) BandK() int { return x.k }

// Prefs returns a copy of the per-dimension preferences the index was
// built with (nil when every dimension is minimized), in the same form
// as Config.Prefs and skybench.Query.Prefs.
func (x *SkylineIndex) Prefs() []skybench.Pref {
	if len(x.prefs) == 0 {
		return nil
	}
	return append([]skybench.Pref(nil), x.prefs...)
}

// Insert adds a point (copying p) and returns its ID. The point must
// have exactly D finite values. On a durable index the insert is
// logged before it is applied; a failed log append rejects the insert
// and leaves the index unchanged.
func (x *SkylineIndex) Insert(p []float64) (ID, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return 0, fmt.Errorf("%w: stream.SkylineIndex", skybench.ErrClosed)
	}
	if err := x.validatePoint(p); err != nil {
		return 0, err
	}
	if x.dur != nil {
		// The lock is held, so the ID the insert will assign is x.next.
		if err := x.durInsert(x.next, p); err != nil {
			return 0, err
		}
	}
	id := x.insertLocked(p)
	if x.dur != nil {
		x.durApplied(1)
	}
	return id, nil
}

// InsertBatch inserts every row (validating them all first, so an error
// means no mutation happened) and returns their IDs in order. On a
// durable index the whole batch is logged as one group commit — under
// Durability.FsyncAlways a batch costs a single fsync — and a failed
// append rejects the whole batch.
func (x *SkylineIndex) InsertBatch(rows [][]float64) ([]ID, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return nil, fmt.Errorf("%w: stream.SkylineIndex", skybench.ErrClosed)
	}
	for i, p := range rows {
		if err := x.validatePoint(p); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	if x.dur != nil && len(rows) > 0 {
		if err := x.durInsertBatch(rows); err != nil {
			return nil, err
		}
	}
	ids := make([]ID, len(rows))
	for i, p := range rows {
		ids[i] = x.insertLocked(p)
	}
	if x.dur != nil && len(rows) > 0 {
		x.durApplied(len(rows))
	}
	return ids, nil
}

func (x *SkylineIndex) insertLocked(p []float64) ID {
	x.entered, x.left = x.entered[:0], x.left[:0]
	staged := p
	if !x.identity {
		point.StagePrefs(x.stage, p, 1, x.d, x.ops)
		staged = x.stage
	}
	// Alloc and Place are split so the slot's ID and original values are
	// on record before membership callbacks fire.
	slot := x.core.Alloc(staged)
	id := x.noteSlot(slot, p)
	x.core.Place(slot)
	x.inserts++
	x.version.Add(1)
	x.finishOp()
	return id
}

// noteSlot records the wrapper-side metadata of a freshly allocated
// slot: its ID and, under non-identity preferences, the original
// (un-staged) coordinates snapshots and callbacks hand out.
func (x *SkylineIndex) noteSlot(slot int32, p []float64) ID {
	id := x.next
	x.next++
	x.noteSlotID(slot, id, p)
	return id
}

// noteSlotID is noteSlot with the ID chosen by the caller — recovery
// replays the IDs the original run assigned instead of minting new
// ones.
func (x *SkylineIndex) noteSlotID(slot int32, id ID, p []float64) {
	if n := int(slot) + 1; n > len(x.ids) {
		x.ids = append(x.ids, make([]ID, n-len(x.ids))...)
		if !x.identity {
			x.orig = append(x.orig, make([]float64, n*x.d-len(x.orig))...)
		}
	}
	x.ids[slot] = id
	x.loc[id] = slot
	if !x.identity {
		copy(x.orig[int(slot)*x.d:], p)
	}
}

// insertRecovered re-inserts a point under its original ID during
// recovery (checkpoint rows and replayed WAL inserts). The caller owns
// the index exclusively and the durable state is not yet attached, so
// nothing is re-logged.
func (x *SkylineIndex) insertRecovered(id ID, p []float64) {
	x.entered, x.left = x.entered[:0], x.left[:0]
	staged := p
	if !x.identity {
		point.StagePrefs(x.stage, p, 1, x.d, x.ops)
		staged = x.stage
	}
	slot := x.core.Alloc(staged)
	x.noteSlotID(slot, id, p)
	x.core.Place(slot)
	if x.next <= id {
		x.next = id + 1
	}
	x.inserts++
	x.version.Add(1)
	x.finishOp()
}

// origRow returns the original-space coordinates of a live slot.
func (x *SkylineIndex) origRow(slot int32) []float64 {
	if x.identity {
		return x.core.Row(slot)
	}
	return x.orig[int(slot)*x.d : (int(slot)+1)*x.d : (int(slot)+1)*x.d]
}

// Delete removes the point with the given ID, reporting whether it was
// present. Deleting a skyline point may re-admit points it dominated
// (and may escalate to a full recompute; see Config.RecomputeThreshold).
// On a durable index a delete whose log append fails is rejected —
// false with the point still live; Err reports why.
func (x *SkylineIndex) Delete(id ID) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return false
	}
	slot, ok := x.loc[id]
	if !ok {
		return false
	}
	if x.dur != nil {
		if err := x.durDelete(id); err != nil {
			return false
		}
	}
	x.deleteSlotLocked(id, slot)
	if x.dur != nil {
		x.durApplied(1)
	}
	return true
}

// deleteSlotLocked removes a live slot: the shared tail of Delete and
// WAL replay.
func (x *SkylineIndex) deleteSlotLocked(id ID, slot int32) {
	x.entered, x.left = x.entered[:0], x.left[:0]
	x.core.Delete(slot)
	delete(x.loc, id)
	x.deletes++
	x.version.Add(1)
	x.finishOp()
}

// Rebuild forces one full recompute and internal rebalance, as
// escalation would. Rarely needed; exposed for benchmarks and tests.
func (x *SkylineIndex) Rebuild() {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return
	}
	x.entered, x.left = x.entered[:0], x.left[:0]
	x.core.Rebuild()
	x.finishOp()
}

// finishOp publishes the effects of one mutation: the epoch advances
// when skyline membership changed (invalidating cached snapshots) and
// the delta subscribers fire.
func (x *SkylineIndex) finishOp() {
	if len(x.entered) == 0 && len(x.left) == 0 {
		return
	}
	x.nEnter += uint64(len(x.entered))
	x.nLeave += uint64(len(x.left))
	x.epoch.Add(1)
	if x.onDelta != nil {
		x.onDelta(x.entered, x.left)
	}
	for _, s := range x.subs {
		s.fn(x.entered, x.left)
	}
}

// OnDelta registers fn to receive every skyline (or k-skyband)
// membership change from now on, under the same contract as
// Config.OnDelta: fn runs on the mutating goroutine with the index lock
// held, must not call back into the index, and the slices (and their
// Values) are reused — copy what must outlive the call. Unlike
// Config.OnDelta the registration is cancelable: calling the returned
// function removes it, after which fn is never called again. cancel is
// idempotent and safe to call concurrently with mutations (it takes the
// index lock, so it never races a delivery in flight) — the lifecycle a
// network delta subscriber needs so a disconnected client does not leak
// its callback. Any number of registrations may coexist, alongside
// Config.OnDelta; they fire in registration order.
func (x *SkylineIndex) OnDelta(fn func(entered, left []Point)) (cancel func()) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.subSeq++
	id := x.subSeq
	x.subs = append(x.subs, deltaSub{id: id, fn: fn})
	return func() {
		x.mu.Lock()
		defer x.mu.Unlock()
		for i, s := range x.subs {
			if s.id == id {
				x.subs = append(x.subs[:i], x.subs[i+1:]...)
				return
			}
		}
	}
}

// validatePoint checks dimensionality and finiteness. It reads only
// immutable fields, so Window can call it before taking the lock.
func (x *SkylineIndex) validatePoint(p []float64) error {
	if len(p) != x.d {
		return fmt.Errorf("%w: %d dimensions, want %d", skybench.ErrBadPoint, len(p), x.d)
	}
	for i, v := range p {
		if !point.Finite(v) {
			return fmt.Errorf("%w: non-finite value %v on dimension %d", skybench.ErrBadPoint, v, i)
		}
	}
	return nil
}

// Len returns the number of live points.
func (x *SkylineIndex) Len() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.core.Len()
}

// SkylineSize returns the current skyline cardinality.
func (x *SkylineIndex) SkylineSize() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.core.SkylineSize()
}

// Contains reports whether the ID is live in the index.
func (x *SkylineIndex) Contains(id ID) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	_, ok := x.loc[id]
	return ok
}

// InSkyline reports whether the ID is live and currently a member of
// the maintained set — the skyline, or the k-skyband when
// Config.SkybandK ≥ 2.
func (x *SkylineIndex) InSkyline(id ID) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	slot, ok := x.loc[id]
	return ok && x.core.InSkyline(slot)
}

// Values returns a copy of the point's original coordinates, or false if
// the ID is not live.
func (x *SkylineIndex) Values(id ID) ([]float64, bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	slot, ok := x.loc[id]
	if !ok {
		return nil, false
	}
	return append([]float64(nil), x.origRow(slot)...), true
}

// Stats reports the index's lifetime counters.
type Stats struct {
	// Live and SkylineSize describe the current state.
	Live, SkylineSize int
	// Epoch counts skyline membership changes (the snapshot version).
	Epoch uint64
	// Inserts and Deletes count successful mutations; Entered and Left
	// count the membership changes they caused.
	Inserts, Deletes, Entered, Left uint64
	// Resurrections counts points re-admitted to the skyline by the
	// deletion of their bucket owner; Rebuilds counts full-recompute
	// escalations; DominanceTests is the machine-independent work
	// metric, as in skybench.Stats.
	Resurrections, Rebuilds, DominanceTests uint64
}

// Stats returns the current counters.
func (x *SkylineIndex) Stats() Stats {
	x.mu.Lock()
	defer x.mu.Unlock()
	cs := x.core.Stats()
	return Stats{
		Live:           x.core.Len(),
		SkylineSize:    x.core.SkylineSize(),
		Epoch:          x.epoch.Load(),
		Inserts:        x.inserts,
		Deletes:        x.deletes,
		Entered:        x.nEnter,
		Left:           x.nLeave,
		Resurrections:  cs.Resurrections,
		Rebuilds:       cs.Rebuilds,
		DominanceTests: cs.DominanceTests,
	}
}

// Close releases the index's private Engine (when it created one). A
// durable index writes a final checkpoint (best-effort — a failure is
// recorded, and recovery replays the WAL tail instead) and closes its
// WAL, so a clean restart recovers without replay. The index must not
// be mutated afterwards; existing Snapshots, and Snapshot itself,
// remain usable.
func (x *SkylineIndex) Close() {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return
	}
	x.closed = true
	if x.dur != nil {
		if x.dur.log.Err() == nil {
			if err := x.checkpointLocked(); err != nil {
				x.dur.lastErr = fmt.Errorf("stream: final checkpoint failed: %w", err)
			}
		}
		x.dur.log.Close()
	}
	if x.ownEng && x.eng != nil {
		x.eng.Close()
	}
	x.eng = nil
}

// LiveEpoch returns the membership epoch of the live point set: it
// advances on every successful Insert and Delete (whether or not band
// membership changed), unlike the Snapshot epoch, which tracks only
// band membership. It is the invalidation key a skybench.Store uses
// for cached whole-set query results, and is safe to call concurrently
// with mutations.
func (x *SkylineIndex) LiveEpoch() uint64 { return x.version.Load() }

// LiveSnapshot materializes the full live point set — every point, band
// member or not — as caller-owned row-major original coordinates with
// per-row IDs, plus the LiveEpoch the materialization corresponds to.
// Rows come back in ascending slot order, deterministic for an
// unchanged epoch. Together with D and LiveEpoch this implements
// skybench.StreamSource, so an index can back a Store collection.
func (x *SkylineIndex) LiveSnapshot() (vals []float64, ids []uint64, epoch uint64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	slots := x.core.AppendLiveSlots(nil)
	vals = make([]float64, len(slots)*x.d)
	ids = make([]uint64, len(slots))
	for i, slot := range slots {
		copy(vals[i*x.d:(i+1)*x.d], x.origRow(slot))
		ids[i] = uint64(x.ids[slot])
	}
	return vals, ids, x.version.Load()
}

// SkylineIndex satisfies skybench.StreamSource, the live-backing
// contract of Store collections.
var _ skybench.StreamSource = (*SkylineIndex)(nil)

// Snapshot is an immutable copy of the skyline (or k-skyband) at one
// epoch. It is safe to read from any goroutine, forever; it just stops
// being current once the index mutates past it.
type Snapshot struct {
	epoch  uint64
	d      int
	ids    []ID
	vals   []float64
	counts []int32 // per-point dominator counts (k-skyband indexes only)
}

// Snapshot returns the current skyline. Consecutive calls with no
// intervening membership change return the same *Snapshot without
// copying anything, so polling readers are cheap; after a change the
// next call rebuilds the snapshot once (taking the index lock briefly).
// The order of points within a snapshot is unspecified.
func (x *SkylineIndex) Snapshot() *Snapshot {
	if s := x.snap.Load(); s != nil && s.epoch == x.epoch.Load() {
		return s
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	ep := x.epoch.Load()
	if s := x.snap.Load(); s != nil && s.epoch == ep {
		return s
	}
	sky := x.core.Skyline()
	s := &Snapshot{
		epoch: ep,
		d:     x.d,
		ids:   make([]ID, len(sky)),
		vals:  make([]float64, len(sky)*x.d),
	}
	if x.k > 1 {
		s.counts = make([]int32, len(sky))
	}
	for i, slot := range sky {
		s.ids[i] = x.ids[slot]
		copy(s.vals[i*x.d:(i+1)*x.d], x.origRow(slot))
		if s.counts != nil {
			s.counts[i] = x.core.DominatorCount(slot)
		}
	}
	x.snap.Store(s)
	return s
}

// Len returns the number of skyline points in the snapshot.
func (s *Snapshot) Len() int { return len(s.ids) }

// Epoch returns the membership version the snapshot was taken at.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// ID returns the i-th skyline point's ID.
func (s *Snapshot) ID(i int) ID { return s.ids[i] }

// Row returns the i-th skyline point's original coordinates. The slice
// aliases the snapshot's storage: treat it as read-only.
func (s *Snapshot) Row(i int) []float64 {
	return s.vals[i*s.d : (i+1)*s.d : (i+1)*s.d]
}

// Count returns the i-th point's exact dominator count for a k-skyband
// index (always < SkybandK); for a skyline index it is always 0, every
// skyline point being undominated.
func (s *Snapshot) Count(i int) int {
	if s.counts == nil {
		return 0
	}
	return int(s.counts[i])
}

// IDs returns all skyline IDs in snapshot order (aliasing the
// snapshot's storage: treat it as read-only).
func (s *Snapshot) IDs() []ID { return s.ids }
