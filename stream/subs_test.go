package stream

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestOnDeltaDelivery: registered subscribers see the same deltas as
// Config.OnDelta, in registration order, and a canceled one sees
// nothing afterwards.
func TestOnDeltaDelivery(t *testing.T) {
	var cfgEvents, subEvents int
	x, err := New(2, Config{OnDelta: func(entered, left []Point) { cfgEvents++ }})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	var order []string
	c1 := x.OnDelta(func(entered, left []Point) {
		order = append(order, "first")
		subEvents++
	})
	c2 := x.OnDelta(func(entered, left []Point) { order = append(order, "second") })

	if _, err := x.Insert([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if cfgEvents != 1 || subEvents != 1 {
		t.Fatalf("after insert: cfg=%d sub=%d, want 1/1", cfgEvents, subEvents)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("delivery order = %v, want [first second]", order)
	}

	c1()
	c1() // cancel is idempotent
	if _, err := x.Insert([]float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	if subEvents != 1 {
		t.Fatal("canceled subscriber still delivered to")
	}
	if cfgEvents != 2 || len(order) != 3 {
		t.Fatalf("remaining subscribers starved: cfg=%d order=%v", cfgEvents, order)
	}
	c2()
}

// TestOnDeltaConcurrent hammers subscribe/unsubscribe from several
// goroutines while another mutates the index — the -race proof that
// registration, cancelation, and delivery are correctly serialized.
func TestOnDeltaConcurrent(t *testing.T) {
	x, err := New(2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	var stop atomic.Bool
	var delivered atomic.Uint64

	// Mutator: anti-diagonal points, so every insert changes membership
	// and fires the subscribers.
	var mutator sync.WaitGroup
	mutator.Add(1)
	go func() {
		defer mutator.Done()
		for i := 0; !stop.Load(); i++ {
			if _, err := x.Insert([]float64{float64(i), -float64(i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Churners: register, wait for one delivery, cancel — repeatedly and
	// concurrently with each other and the mutator.
	var churn sync.WaitGroup
	for g := 0; g < 4; g++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for round := 0; round < 40; round++ {
				var local atomic.Uint64
				cancel := x.OnDelta(func(entered, left []Point) {
					local.Add(1)
					delivered.Add(1)
					// Contract: the slices are only valid during the call.
					for _, p := range entered {
						_ = p.Values[0]
					}
				})
				for local.Load() == 0 {
					runtime.Gosched()
				}
				cancel()
				cancel() // idempotent under concurrency too
			}
		}()
	}

	churn.Wait()
	stop.Store(true)
	mutator.Wait()
	if delivered.Load() == 0 {
		t.Fatal("no deltas delivered during churn")
	}
}
