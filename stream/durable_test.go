package stream

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
	"syscall"
	"testing"
	"time"

	"skybench"
	"skybench/internal/faults"
)

// durWorkload replays a deterministic op script against any consumer:
// op i is a delete of a uniformly chosen live ID with probability
// delP (when any point is live), an insert of a fresh random point
// otherwise. The same (seed, d, nOps, delP) always yields the same
// script, so a crashed process's surviving prefix can be re-simulated
// exactly by anyone who knows how many ops survived.
type durWorkload struct {
	rng  *rand.Rand
	d    int
	delP float64
	live []ID
	vals map[ID][]float64
	next ID
}

func newDurWorkload(seed int64, d int, delP float64) *durWorkload {
	return &durWorkload{
		rng:  rand.New(rand.NewSource(seed)),
		d:    d,
		delP: delP,
		vals: make(map[ID][]float64),
		next: 1,
	}
}

// step generates op i and applies it to the simulated state, returning
// either a point to insert (del == 0) or an ID to delete.
func (w *durWorkload) step() (p []float64, del ID) {
	if len(w.live) > 0 && w.rng.Float64() < w.delP {
		i := w.rng.Intn(len(w.live))
		id := w.live[i]
		w.live[i] = w.live[len(w.live)-1]
		w.live = w.live[:len(w.live)-1]
		delete(w.vals, id)
		return nil, id
	}
	return w.insertStep(), 0
}

// insertStep generates an insert op unconditionally (the batch path
// needs rows, not deletes). Scripts that mix insertStep and step are
// deterministic per workload instance but not re-simulatable by a
// step-only replay; the crash tests use step exclusively.
func (w *durWorkload) insertStep() []float64 {
	p := make([]float64, w.d)
	for j := range p {
		p[j] = w.rng.Float64()
	}
	w.vals[w.next] = p
	w.live = append(w.live, w.next)
	w.next++
	return p
}

// apply runs one generated op against a real index, which must assign
// the same IDs the simulation predicted.
func (w *durWorkload) apply(t *testing.T, x *SkylineIndex) error {
	t.Helper()
	p, del := w.step()
	if del != 0 {
		if !x.Delete(del) {
			return fmt.Errorf("delete of live ID %d rejected: %v", del, x.Err())
		}
		return nil
	}
	id, err := x.Insert(p)
	if err != nil {
		return err
	}
	if want := w.next - 1; id != want {
		t.Fatalf("index assigned ID %d, workload predicted %d", id, want)
	}
	return nil
}

// state returns the simulated live set in a shape oracleCheck accepts.
func (w *durWorkload) state() (ids []ID, rows [][]float64) {
	ids = slices.Clone(w.live)
	slices.Sort(ids)
	rows = make([][]float64, len(ids))
	for i, id := range ids {
		rows[i] = w.vals[id]
	}
	return ids, rows
}

// checkRecovered asserts a recovered index is exactly the simulated
// state: same live membership and values, and a band that matches a
// fresh Engine.Run over the surviving rows.
func checkRecovered(t *testing.T, eng *skybench.Engine, x *SkylineIndex, prefs []skybench.Pref, w *durWorkload) {
	t.Helper()
	ids, rows := w.state()
	vals, gotIDs, _ := x.LiveSnapshot()
	if len(gotIDs) != len(ids) {
		t.Fatalf("recovered %d live points, want %d", len(gotIDs), len(ids))
	}
	got := make(map[uint64][]float64, len(gotIDs))
	for i, id := range gotIDs {
		got[id] = vals[i*x.D() : (i+1)*x.D()]
	}
	for i, id := range ids {
		gv, ok := got[uint64(id)]
		if !ok {
			t.Fatalf("recovered live set is missing ID %d", id)
		}
		if !slices.Equal(gv, rows[i]) {
			t.Fatalf("ID %d recovered as %v, want %v", id, gv, rows[i])
		}
	}
	if len(ids) == 0 {
		if x.SkylineSize() != 0 {
			t.Fatalf("empty live set but SkylineSize %d", x.SkylineSize())
		}
		return
	}
	oracleCheck(t, eng, x, prefs, ids, rows)
}

// TestDurableRoundTrip: a mixed workload against a durable index, a
// clean Close (final checkpoint), Recover — and the recovered index
// must be point-identical, keep the ID sequence, and accept new
// mutations that survive a second recovery.
func TestDurableRoundTrip(t *testing.T) {
	eng := skybench.NewEngine(2)
	defer eng.Close()
	for _, tc := range []struct {
		name  string
		prefs []skybench.Pref
		k     int
	}{
		{"skyline-min", nil, 0},
		{"skyband-prefs", []skybench.Pref{skybench.Min, skybench.Max, skybench.Ignore}, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := Config{
				Prefs:    tc.prefs,
				SkybandK: tc.k,
				Durable:  &Durability{Dir: dir, SegmentBytes: 1 << 10, CheckpointEvery: 23},
			}
			x, err := New(3, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !x.Durable() {
				t.Fatal("index with Config.Durable reports Durable() == false")
			}
			w := newDurWorkload(7, 3, 0.3)
			for i := 0; i < 150; i++ {
				if err := w.apply(t, x); err != nil {
					t.Fatal(err)
				}
			}
			// Batch path too: one group commit for all three rows.
			batch := make([][]float64, 3)
			for i := range batch {
				batch[i] = w.insertStep()
			}
			if _, err := x.InsertBatch(batch); err != nil {
				t.Fatal(err)
			}
			wantEpoch := x.LiveEpoch()
			x.Close()

			r, err := Recover(dir, Config{Prefs: tc.prefs, SkybandK: tc.k})
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			defer r.Close()
			if got := r.LiveEpoch(); got != wantEpoch {
				t.Fatalf("recovered LiveEpoch %d, want %d", got, wantEpoch)
			}
			checkRecovered(t, eng, r, tc.prefs, w)
			if err := r.Err(); err != nil {
				t.Fatalf("recovered index unhealthy: %v", err)
			}
			// The recovered index keeps appending to the same history.
			for i := 0; i < 40; i++ {
				if err := w.apply(t, r); err != nil {
					t.Fatal(err)
				}
			}
			checkRecovered(t, eng, r, tc.prefs, w)
		})
	}
}

// TestRecoverWithoutClose simulates a hard crash — the index is simply
// abandoned with its WAL open, no final checkpoint — and recovery must
// rebuild the exact state from checkpoint + WAL tail.
func TestRecoverWithoutClose(t *testing.T) {
	eng := skybench.NewEngine(2)
	defer eng.Close()
	dir := t.TempDir()
	x, err := New(2, Config{Durable: &Durability{Dir: dir, SegmentBytes: 512, CheckpointEvery: -1}})
	if err != nil {
		t.Fatal(err)
	}
	w := newDurWorkload(11, 2, 0.25)
	for i := 0; i < 90; i++ {
		if err := w.apply(t, x); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the only durable state is meta + WAL (checkpoints were
	// disabled), exactly a crashed process's leavings.
	r, err := Recover(dir, Config{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer r.Close()
	checkRecovered(t, eng, r, nil, w)
}

// TestNewRefusesExistingState: New must never append a second life to
// a directory holding durable state.
func TestNewRefusesExistingState(t *testing.T) {
	dir := t.TempDir()
	x, err := New(2, Config{Durable: &Durability{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Insert([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	x.Close()
	if _, err := New(2, Config{Durable: &Durability{Dir: dir}}); !errors.Is(err, skybench.ErrBadQuery) {
		t.Fatalf("New over existing state = %v, want ErrBadQuery directing to Recover", err)
	}
}

// TestRecoverRejects: shape mismatches and absent state fail with the
// right sentinels instead of silently recovering the wrong thing.
func TestRecoverRejects(t *testing.T) {
	dir := t.TempDir()
	prefs := []skybench.Pref{skybench.Min, skybench.Max}
	x, err := New(2, Config{Prefs: prefs, SkybandK: 2, Durable: &Durability{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Insert([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	x.Close()

	if _, err := Recover(t.TempDir(), Config{}); !errors.Is(err, skybench.ErrBadDataset) {
		t.Fatalf("Recover of empty dir = %v, want ErrBadDataset", err)
	}
	if _, err := Recover(dir, Config{SkybandK: 5}); !errors.Is(err, skybench.ErrBadQuery) {
		t.Fatalf("Recover with wrong k = %v, want ErrBadQuery", err)
	}
	if _, err := Recover(dir, Config{Prefs: []skybench.Pref{skybench.Min, skybench.Min}}); !errors.Is(err, skybench.ErrBadQuery) {
		t.Fatalf("Recover with wrong prefs = %v, want ErrBadQuery", err)
	}

	// Zero cfg adopts the recorded shape.
	r, err := Recover(dir, Config{})
	if err != nil {
		t.Fatalf("Recover with zero cfg: %v", err)
	}
	defer r.Close()
	if r.BandK() != 2 || r.D() != 2 {
		t.Fatalf("recovered shape k=%d d=%d, want k=2 d=2", r.BandK(), r.D())
	}
}

// segFrames parses one WAL segment file and returns every frame
// boundary offset, ascending, starting with 0 (parsing mirrors the
// wal frame format: u32 length, u32 CRC, payload).
func segFrames(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	offs := []int64{0}
	for off := 0; off+8 <= len(data); {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if off+8+n > len(data) {
			break
		}
		off += 8 + n
		offs = append(offs, int64(off))
	}
	return offs
}

// copyDir clones a durable directory so a cut can be applied without
// destroying the original.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// lastSegment returns the path and first-LSN of the newest WAL segment
// in dir, plus the LSN of the newest checkpoint (0 when none).
func lastSegment(t *testing.T, dir string) (path string, first uint64, ckptLSN uint64) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		switch {
		case strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg"):
			segs = append(segs, e.Name())
		case strings.HasPrefix(e.Name(), ckptPrefix) && strings.HasSuffix(e.Name(), ckptSuffix):
			if lsn, ok := parseCkptName(e.Name()); ok && lsn > ckptLSN {
				ckptLSN = lsn
			}
		}
	}
	if len(segs) == 0 {
		t.Fatal("no WAL segments")
	}
	slices.Sort(segs)
	name := segs[len(segs)-1]
	if _, err := fmt.Sscanf(name, "wal-%016x.seg", &first); err != nil {
		t.Fatalf("segment name %q: %v", name, err)
	}
	return filepath.Join(dir, name), first, ckptLSN
}

// TestRecoverEveryCutPoint is the crash-recovery property test: for
// preference sets × delete mixes × k, run a durable workload, then for
// EVERY record boundary of the WAL's final segment — and for torn
// offsets a few bytes past each boundary — truncate a copy of the
// directory there, Recover, and require the result to be exactly the
// surviving op prefix, verified against a fresh Engine.Run. LSN i is
// op i, so the surviving prefix of a cut at record boundary c is
// max(c, newest checkpoint LSN) — a crash can tear the log's tail, it
// cannot unwrite a checkpoint.
func TestRecoverEveryCutPoint(t *testing.T) {
	eng := skybench.NewEngine(2)
	defer eng.Close()
	const nOps = 120
	for _, tc := range []struct {
		name     string
		prefs    []skybench.Pref
		k        int
		delP     float64
		segBytes int64
		ckEvery  int
	}{
		// Small segments + frequent checkpoints: cuts land in a short
		// active segment behind a recent checkpoint.
		{"skyline-rotating", nil, 0, 0.3, 384, 37},
		// One big segment, no automatic checkpoints: every op of the run
		// is a cut point and recovery replays the whole surviving log.
		{"skyband-prefs-single-seg", []skybench.Pref{skybench.Max, skybench.Min, skybench.Min}, 3, 0.25, 1 << 20, -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			x, err := New(3, Config{
				Prefs:    tc.prefs,
				SkybandK: tc.k,
				Durable:  &Durability{Dir: dir, SegmentBytes: tc.segBytes, CheckpointEvery: tc.ckEvery},
			})
			if err != nil {
				t.Fatal(err)
			}
			// Record the op script once; each cut re-simulates its prefix.
			full := newDurWorkload(42, 3, tc.delP)
			for i := 0; i < nOps; i++ {
				if err := full.apply(t, x); err != nil {
					t.Fatal(err)
				}
			}
			// Abandon without Close: crash state.
			segPath, segFirst, ckptLSN := lastSegment(t, dir)
			bounds := segFrames(t, segPath)
			for _, torn := range []int64{0, 3} {
				for _, cut := range bounds {
					cutAt := cut + torn
					name := fmt.Sprintf("cut=%d+%d", cut, torn)
					cp := copyDir(t, dir)
					cpSeg, _, _ := lastSegment(t, cp)
					if fi, err := os.Stat(cpSeg); err != nil || cutAt > fi.Size() {
						continue // torn offset past the file's end
					}
					if err := os.Truncate(cpSeg, cutAt); err != nil {
						t.Fatal(err)
					}
					r, err := Recover(cp, Config{Prefs: tc.prefs, SkybandK: tc.k})
					if err != nil {
						t.Fatalf("%s: Recover: %v", name, err)
					}
					// Surviving records: everything below the cut boundary (a
					// torn frame is truncated by Open), floored by the newest
					// checkpoint, which captured its prefix outside the WAL.
					frames := int64(0)
					for _, b := range bounds {
						if b <= cut && b > 0 {
							frames++
						}
					}
					prefix := uint64(segFirst) + uint64(frames)
					if ckptLSN > prefix {
						prefix = ckptLSN
					}
					if got := r.LiveEpoch(); got != prefix {
						t.Fatalf("%s: recovered LiveEpoch %d, want surviving prefix %d", name, got, prefix)
					}
					w := newDurWorkload(42, 3, tc.delP)
					for i := uint64(0); i < prefix; i++ {
						w.step()
					}
					checkRecovered(t, eng, r, tc.prefs, w)
					r.Close()
				}
			}
		})
	}
}

// TestRecoverCorruptMidLog: damage in a non-final segment is not a
// tear (a crash only ever tears the log's very tail) — it must fail
// loudly with ErrCorruptWAL, never silently skip records.
func TestRecoverCorruptMidLog(t *testing.T) {
	dir := t.TempDir()
	x, err := New(2, Config{Durable: &Durability{Dir: dir, SegmentBytes: 128, CheckpointEvery: -1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := x.Insert([]float64{float64(i), float64(40 - i)}); err != nil {
			t.Fatal(err)
		}
	}
	x.dur.log.Close() // release the file; skip the final checkpoint

	// Find the first (non-final) segment and flip a payload byte in its
	// first record.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, e.Name())
		}
	}
	slices.Sort(segs)
	if len(segs) < 2 {
		t.Fatalf("need segment rotation, got %d segments", len(segs))
	}
	f, err := os.OpenFile(filepath.Join(dir, segs[0]), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 9); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := Recover(dir, Config{}); !errors.Is(err, skybench.ErrCorruptWAL) {
		t.Fatalf("Recover over mid-log damage = %v, want ErrCorruptWAL", err)
	}
}

// TestRecoverCorruptCheckpoint: a checkpoint that fails its CRC must
// fail recovery (the WAL below it was truncated — there is nothing to
// fall back to), and a stray .tmp checkpoint from a crashed writer is
// ignored.
func TestRecoverCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	x, err := New(2, Config{Durable: &Durability{Dir: dir, CheckpointEvery: -1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := x.Insert([]float64{float64(i), float64(10 - i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := x.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	x.dur.log.Close()

	// A torn checkpoint-in-progress must not affect recovery.
	if err := os.WriteFile(filepath.Join(dir, ckptName(99)+".tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(dir, Config{})
	if err != nil {
		t.Fatalf("Recover with stray .tmp: %v", err)
	}
	if r.Len() != 10 {
		t.Fatalf("recovered %d points, want 10", r.Len())
	}
	r.Close()

	// Now damage the real checkpoint.
	cks, err := listCkpts(dir)
	if err != nil || len(cks) == 0 {
		t.Fatalf("checkpoints: %v %v", cks, err)
	}
	path := filepath.Join(dir, ckptName(cks[len(cks)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, Config{}); !errors.Is(err, skybench.ErrCorruptWAL) {
		t.Fatalf("Recover over damaged checkpoint = %v, want ErrCorruptWAL", err)
	}
}

// TestWALFaultRejectsMutation: an injected append failure must reject
// the mutation, leave the index unchanged and healthy for the next op,
// and be visible through Err until a durable op succeeds.
func TestWALFaultRejectsMutation(t *testing.T) {
	dir := t.TempDir()
	in := faults.New(1)
	in.Arm(faults.Plan{Site: "wal.append", After: 1, Count: 2})
	x, err := New(2, Config{Durable: &Durability{Dir: dir, faults: in}})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	id1, err := x.Insert([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Fault 1: insert rejected, no ID consumed, no state change.
	if _, err := x.Insert([]float64{2, 1}); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("insert under append fault = %v, want ErrInjected", err)
	}
	if x.Len() != 1 {
		t.Fatalf("failed insert mutated the index: Len %d", x.Len())
	}
	if err := x.Err(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Err after failed insert = %v, want ErrInjected", err)
	}
	// Fault 2: delete rejected, point stays live.
	if x.Delete(id1) {
		t.Fatal("delete under append fault succeeded")
	}
	if !x.Contains(id1) {
		t.Fatal("failed delete removed the point")
	}
	// Faults exhausted: the next mutation succeeds and clears Err.
	id2, err := x.Insert([]float64{2, 1})
	if err != nil {
		t.Fatalf("insert after faults exhausted: %v", err)
	}
	if id2 != id1+1 {
		t.Fatalf("failed insert leaked an ID: got %d, want %d", id2, id1+1)
	}
	if err := x.Err(); err != nil {
		t.Fatalf("Err after recovery = %v, want nil", err)
	}
	if got := in.Hits("wal.append"); got < 3 {
		t.Fatalf("append site hit %d times, want ≥ 3", got)
	}
}

// TestRebuildRetries: a transient escalation failure is retried with
// backoff and the rebuild still lands; a persistent one falls back to
// the core's sequential rebuild — either way the band stays correct.
func TestRebuildRetries(t *testing.T) {
	eng := skybench.NewEngine(2)
	defer eng.Close()
	for _, tc := range []struct {
		name  string
		count int
	}{
		{"transient", 1}, // first attempt fails, retry succeeds
		{"persistent", 100},
	} {
		t.Run(tc.name, func(t *testing.T) {
			x, err := New(2, Config{})
			if err != nil {
				t.Fatal(err)
			}
			defer x.Close()
			in := faults.New(3)
			in.Arm(faults.Plan{Site: "stream.rebuild", Count: tc.count})
			x.rebuildFaults = in

			// The escalation hook only engages above the core's minimum
			// live size (256); stay comfortably over it.
			w := newDurWorkload(5, 2, 0.1)
			for i := 0; i < 400; i++ {
				if err := w.apply(t, x); err != nil {
					t.Fatal(err)
				}
			}
			x.Rebuild()
			if got := in.Hits("stream.rebuild"); got == 0 {
				t.Fatal("rebuild fault site never hit")
			}
			ids, rows := w.state()
			oracleCheck(t, eng, x, nil, ids, rows)
		})
	}
}

// TestAttachRecovered: the Store round-trip — attach a recovered index,
// query it, drop it, and the drop must close the WAL (ownership was
// transferred).
func TestAttachRecovered(t *testing.T) {
	dir := t.TempDir()
	x, err := New(2, Config{Durable: &Durability{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	w := newDurWorkload(9, 2, 0.2)
	for i := 0; i < 50; i++ {
		if err := w.apply(t, x); err != nil {
			t.Fatal(err)
		}
	}
	x.Close()

	st := skybench.NewStore(2)
	defer st.Close()
	col, r, err := AttachRecovered(st, "hotels", dir, Config{}, skybench.CollectionOptions{})
	if err != nil {
		t.Fatalf("AttachRecovered: %v", err)
	}
	res, err := col.Run(context.Background(), skybench.Query{})
	if err != nil {
		t.Fatalf("query over recovered collection: %v", err)
	}
	if res.Len() == 0 || res.Len() != r.SkylineSize() {
		t.Fatalf("recovered collection served %d band points, index has %d", res.Len(), r.SkylineSize())
	}
	if err := st.Drop("hotels"); err != nil {
		t.Fatal(err)
	}
	// Ownership: Drop closed the recovered index and its WAL.
	if _, err := r.Insert([]float64{0.1, 0.2}); !errors.Is(err, skybench.ErrClosed) {
		t.Fatalf("insert after Drop = %v, want ErrClosed", err)
	}
}

// TestKillAndRecover is the end-to-end crash oracle: a child process
// streams a deterministic durable workload at full speed until it is
// SIGKILLed mid-stream; the parent recovers the directory and requires
// the result to be exactly some prefix of the op script — recomputed
// from scratch and cross-checked against a fresh Engine.Run.
func TestKillAndRecover(t *testing.T) {
	if os.Getenv("SKYBENCH_CRASH_DIR") != "" {
		t.Skip("crash child must only run TestCrashChild")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashChild$", "-test.timeout=60s")
	cmd.Env = append(os.Environ(), "SKYBENCH_CRASH_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let the child stream until real WAL state exists, then kill it
	// mid-flight — no warning, no flush. Checkpoints keep truncating the
	// log, so total segment size stays bounded; a modest floor plus a
	// short grace period reliably lands the kill mid-stream (often
	// mid-checkpoint).
	deadline := time.Now().Add(20 * time.Second)
	for {
		if entries, err := os.ReadDir(dir); err == nil {
			var total int64
			for _, e := range entries {
				if info, err := e.Info(); err == nil && strings.HasSuffix(e.Name(), ".seg") {
					total += info.Size()
				}
			}
			if total > 8<<10 {
				break
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("crash child never produced WAL state")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // expected to be killed; the error is the point

	r, err := Recover(dir, Config{})
	if err != nil {
		t.Fatalf("Recover after SIGKILL: %v", err)
	}
	defer r.Close()
	// LSN i is op i, so the recovered log length IS the surviving
	// prefix; re-simulate it and compare exactly.
	prefix := r.dur.log.NextLSN()
	if prefix == 0 {
		t.Fatal("no ops survived the kill")
	}
	w := newDurWorkload(crashSeed, crashDims, crashDelP)
	for i := uint64(0); i < prefix; i++ {
		w.step()
	}
	eng := skybench.NewEngine(2)
	defer eng.Close()
	checkRecovered(t, eng, r, nil, w)
	t.Logf("recovered %d surviving ops, %d live points, band %d", prefix, r.Len(), r.SkylineSize())
}

const (
	crashSeed = 1337
	crashDims = 3
	crashDelP = 0.3
)

// TestCrashChild is the victim process of TestKillAndRecover: it only
// runs when re-executed with SKYBENCH_CRASH_DIR set, and then streams
// durable mutations until it is killed.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv("SKYBENCH_CRASH_DIR")
	if dir == "" {
		t.Skip("not a crash child")
	}
	x, err := New(crashDims, Config{Durable: &Durability{Dir: dir, SegmentBytes: 32 << 10, CheckpointEvery: 512}})
	if err != nil {
		t.Fatal(err)
	}
	w := newDurWorkload(crashSeed, crashDims, crashDelP)
	for {
		if err := w.apply(t, x); err != nil {
			t.Fatal(err)
		}
	}
}
