package stream

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"skybench"
	"skybench/internal/dataset"
)

// oracleCheck recomputes the skyline — or the k-skyband, when the index
// maintains one — of the surviving rows with a fresh Engine.Run under
// the same preferences, and compares ID sets (and exact dominator
// counts) with the index's snapshot.
func oracleCheck(t *testing.T, eng *skybench.Engine, ix *SkylineIndex, prefs []skybench.Pref, liveIDs []ID, liveRows [][]float64) {
	t.Helper()
	ds, err := skybench.NewDataset(liveRows)
	if err != nil {
		t.Fatalf("oracle dataset: %v", err)
	}
	q := skybench.Query{Prefs: prefs}
	if k := ix.BandK(); k > 1 {
		q.SkybandK = k
	}
	res, err := eng.Run(context.Background(), ds, q)
	if err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	want := make([]ID, len(res.Indices))
	wantCnt := make(map[ID]int32, len(res.Indices))
	for i, idx := range res.Indices {
		want[i] = liveIDs[idx]
		if res.Counts != nil {
			wantCnt[liveIDs[idx]] = res.Counts[i]
		}
	}
	slices.Sort(want)

	if ix.BandK() > 1 && len(res.Indices) > 0 && res.Counts == nil {
		t.Fatalf("skyband oracle query returned nil Counts")
	}
	snap := ix.Snapshot()
	got := slices.Clone(snap.IDs())
	slices.Sort(got)
	if !slices.Equal(got, want) {
		t.Fatalf("band IDs %v, oracle %v (live %d)", got, want, len(liveIDs))
	}
	if got := ix.SkylineSize(); got != len(want) {
		t.Fatalf("SkylineSize %d, oracle %d", got, len(want))
	}
	if res.Counts != nil {
		for i := 0; i < snap.Len(); i++ {
			if c, w := int32(snap.Count(i)), wantCnt[snap.ID(i)]; c != w {
				t.Fatalf("id %d dominator count %d, oracle %d", snap.ID(i), c, w)
			}
		}
	}
}

// TestSkylineIndexMatchesEngineOracle is the cross-surface property
// test: N random inserts/deletes against a SkylineIndex, cross-checked
// against a fresh Engine.Run over the surviving rows — across minimize,
// maximize, and subspace preference sets, so the index's private
// preference staging can never drift from the Engine's.
func TestSkylineIndexMatchesEngineOracle(t *testing.T) {
	eng := skybench.NewEngine(0)
	defer eng.Close()

	cases := []struct {
		name  string
		d     int
		prefs []skybench.Pref
	}{
		{"min-d4", 4, nil},
		{"max-d3", 3, []skybench.Pref{skybench.Max, skybench.Max, skybench.Max}},
		{"mixed-d5", 5, []skybench.Pref{skybench.Min, skybench.Max, skybench.Min, skybench.Max, skybench.Min}},
		{"subspace-d6", 6, []skybench.Pref{skybench.Ignore, skybench.Min, skybench.Ignore, skybench.Max, skybench.Min, skybench.Ignore}},
		{"min-d8", 8, nil},
	}
	for _, tc := range cases {
		for _, dist := range []dataset.Distribution{dataset.Independent, dataset.Anticorrelated} {
			t.Run(tc.name+"-"+dist.String(), func(t *testing.T) {
				runEngineOracleOps(t, eng, tc.d, 0, tc.prefs, dist, 600)
			})
		}
	}
}

// runEngineOracleOps drives one SkylineIndex (band parameter k; 0 =
// skyline) through a random insert/delete mix, cross-checking the
// snapshot against a fresh Engine.Run every few operations.
func runEngineOracleOps(t *testing.T, eng *skybench.Engine, d, k int, prefs []skybench.Pref, dist dataset.Distribution, nOps int) {
	t.Helper()
	m := dataset.Generate(dist, nOps, d, int64(d)*17+int64(k)*101+int64(dist))
	rng := rand.New(rand.NewSource(int64(d) + int64(k)*7 + 31))

	ix, err := New(d, Config{Prefs: prefs, SkybandK: k, Engine: eng, RecomputeThreshold: 0.3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer ix.Close()

	var liveIDs []ID
	var liveRows [][]float64
	next := 0
	for op := 0; op < nOps; op++ {
		if len(liveIDs) > 0 && rng.Float64() < 0.35 {
			i := rng.Intn(len(liveIDs))
			if !ix.Delete(liveIDs[i]) {
				t.Fatalf("delete of live id %d failed", liveIDs[i])
			}
			last := len(liveIDs) - 1
			liveIDs[i], liveRows[i] = liveIDs[last], liveRows[last]
			liveIDs, liveRows = liveIDs[:last], liveRows[:last]
		} else if next < m.N() {
			row := m.Row(next)
			next++
			id, err := ix.Insert(row)
			if err != nil {
				t.Fatalf("insert: %v", err)
			}
			liveIDs = append(liveIDs, id)
			liveRows = append(liveRows, row)
		}
		if op%40 == 39 || op == nOps-1 {
			oracleCheck(t, eng, ix, prefs, liveIDs, liveRows)
		}
	}
	if ix.Len() != len(liveIDs) {
		t.Fatalf("Len %d, want %d", ix.Len(), len(liveIDs))
	}
}

// TestSkybandIndexMatchesEngineOracle extends the cross-surface
// property test to incremental k-skyband maintenance: the maintained
// band and its per-point dominator counts must match a fresh
// Engine.Run skyband query over the surviving rows, across preference
// sets × distributions × k.
func TestSkybandIndexMatchesEngineOracle(t *testing.T) {
	eng := skybench.NewEngine(0)
	defer eng.Close()

	cases := []struct {
		name  string
		d     int
		prefs []skybench.Pref
	}{
		{"min-d4", 4, nil},
		{"mixed-d5", 5, []skybench.Pref{skybench.Min, skybench.Max, skybench.Min, skybench.Max, skybench.Min}},
		{"subspace-d6", 6, []skybench.Pref{skybench.Ignore, skybench.Min, skybench.Ignore, skybench.Max, skybench.Min, skybench.Ignore}},
	}
	for _, tc := range cases {
		for _, dist := range []dataset.Distribution{dataset.Independent, dataset.Anticorrelated} {
			for _, k := range []int{2, 4} {
				t.Run(fmt.Sprintf("%s-%s-k%d", tc.name, dist, k), func(t *testing.T) {
					runEngineOracleOps(t, eng, tc.d, k, tc.prefs, dist, 450)
				})
			}
		}
	}
}

// TestDeltaEventsReconstructMembership replays OnDelta events into a
// shadow set and checks it always equals the snapshot.
func TestDeltaEventsReconstructMembership(t *testing.T) {
	shadow := make(map[ID][]float64)
	ix, err := New(4, Config{
		RecomputeThreshold: 0.1, // force escalations through the event path too
		OnDelta: func(entered, left []Point) {
			for _, p := range left {
				if _, ok := shadow[p.ID]; !ok {
					t.Fatalf("left event for id %d not in shadow", p.ID)
				}
				delete(shadow, p.ID)
			}
			for _, p := range entered {
				if _, ok := shadow[p.ID]; ok {
					t.Fatalf("enter event for id %d already in shadow", p.ID)
				}
				shadow[p.ID] = append([]float64(nil), p.Values...)
			}
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer ix.Close()

	m := dataset.Generate(dataset.Anticorrelated, 500, 4, 77)
	rng := rand.New(rand.NewSource(78))
	var live []ID
	next := 0
	for op := 0; op < 500; op++ {
		if len(live) > 0 && rng.Float64() < 0.4 {
			i := rng.Intn(len(live))
			ix.Delete(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		} else if next < m.N() {
			id, err := ix.Insert(m.Row(next))
			if err != nil {
				t.Fatalf("insert: %v", err)
			}
			live = append(live, id)
			next++
		}
		snap := ix.Snapshot()
		if snap.Len() != len(shadow) {
			t.Fatalf("op %d: shadow has %d points, snapshot %d", op, len(shadow), snap.Len())
		}
		for i := 0; i < snap.Len(); i++ {
			vals, ok := shadow[snap.ID(i)]
			if !ok {
				t.Fatalf("op %d: snapshot id %d missing from shadow", op, snap.ID(i))
			}
			if !slices.Equal(vals, snap.Row(i)) {
				t.Fatalf("op %d: id %d values %v, shadow %v", op, snap.ID(i), snap.Row(i), vals)
			}
		}
	}
	st := ix.Stats()
	if st.Entered == 0 || st.Left == 0 {
		t.Fatalf("no membership churn recorded: %+v", st)
	}
}

// TestWindowSlides checks that a full window evicts oldest-first and its
// skyline always equals the skyline of the last W pushed rows.
func TestWindowSlides(t *testing.T) {
	eng := skybench.NewEngine(0)
	defer eng.Close()

	const w, d, total = 64, 3, 400
	win, err := NewWindow(w, d, Config{Engine: eng})
	if err != nil {
		t.Fatalf("NewWindow: %v", err)
	}
	defer win.Close()

	m := dataset.Generate(dataset.Independent, total, d, 5)
	var ids []ID
	for i := 0; i < total; i++ {
		id, err := win.Push(m.Row(i))
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		ids = append(ids, id)
		wantLen := min(i+1, w)
		if win.Len() != wantLen {
			t.Fatalf("push %d: Len %d, want %d", i, win.Len(), wantLen)
		}
		if oldest, ok := win.Oldest(); !ok || oldest != ids[max(0, i+1-w)] {
			t.Fatalf("push %d: Oldest %d, want %d", i, oldest, ids[max(0, i+1-w)])
		}
		if i%25 == 24 || i == total-1 {
			lo := max(0, i+1-w)
			var rows [][]float64
			for j := lo; j <= i; j++ {
				rows = append(rows, m.Row(j))
			}
			ds, _ := skybench.NewDataset(rows)
			res, err := eng.Run(context.Background(), ds, skybench.Query{})
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			want := make([]ID, len(res.Indices))
			for k, idx := range res.Indices {
				want[k] = ids[lo+idx]
			}
			slices.Sort(want)
			got := slices.Clone(win.Snapshot().IDs())
			slices.Sort(got)
			if !slices.Equal(got, want) {
				t.Fatalf("push %d: window skyline %v, oracle %v", i, got, want)
			}
		}
	}
	if win.Cap() != w {
		t.Fatalf("Cap %d", win.Cap())
	}
}

// TestSnapshotConcurrentReaders runs one writer against many snapshot
// readers; under -race this is the data-race probe for the epoch/COW
// publication path.
func TestSnapshotConcurrentReaders(t *testing.T) {
	ix, err := New(4, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer ix.Close()

	m := dataset.Generate(dataset.Independent, 3000, 4, 9)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := ix.Snapshot()
				if e := snap.Epoch(); e < lastEpoch {
					t.Errorf("epoch went backwards: %d -> %d", lastEpoch, e)
					return
				} else {
					lastEpoch = e
				}
				// Read every row: the race detector flags any writer
				// mutation of published storage.
				for i := 0; i < snap.Len(); i++ {
					if snap.ID(i) == 0 {
						t.Errorf("zero ID in snapshot")
						return
					}
					_ = snap.Row(i)[0]
				}
			}
		}()
	}
	rng := rand.New(rand.NewSource(10))
	var live []ID
	for i := 0; i < m.N(); i++ {
		if len(live) > 50 && rng.Float64() < 0.45 {
			j := rng.Intn(len(live))
			ix.Delete(live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		id, err := ix.Insert(m.Row(i))
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
		live = append(live, id)
	}
	close(stop)
	wg.Wait()

	// A snapshot taken with no concurrent writer is cached: the same
	// pointer must come back until the next membership change.
	s1, s2 := ix.Snapshot(), ix.Snapshot()
	if s1 != s2 {
		t.Fatalf("idle snapshots not cached")
	}
}

func TestValidationAndLifecycle(t *testing.T) {
	if _, err := New(0, Config{}); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := New(32, Config{}); err == nil {
		t.Fatal("d=32 accepted (MaxDims is 31)")
	}
	if _, err := New(2, Config{Prefs: []skybench.Pref{skybench.Min}}); err == nil {
		t.Fatal("pref arity mismatch accepted")
	}
	if _, err := New(2, Config{Prefs: []skybench.Pref{skybench.Ignore, skybench.Ignore}}); err == nil {
		t.Fatal("all-Ignore prefs accepted")
	}
	if _, err := New(2, Config{Prefs: []skybench.Pref{skybench.Pref(42), skybench.Min}}); err == nil {
		t.Fatal("invalid pref accepted")
	}
	if _, err := NewWindow(0, 2, Config{}); err == nil {
		t.Fatal("zero-capacity window accepted")
	}

	ix, err := New(2, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := ix.Insert([]float64{1}); err == nil {
		t.Fatal("short point accepted")
	}
	if _, err := ix.Insert([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := ix.Insert([]float64{math.Inf(1), 0}); err == nil {
		t.Fatal("+Inf accepted")
	}
	if _, err := ix.InsertBatch([][]float64{{1, 2}, {3, math.Inf(-1)}}); err == nil {
		t.Fatal("batch with -Inf accepted")
	}
	if ix.Len() != 0 {
		t.Fatalf("failed batch mutated the index: Len=%d", ix.Len())
	}

	ids, err := ix.InsertBatch([][]float64{{1, 2}, {2, 1}, {3, 3}})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(ids) != 3 || !ix.Contains(ids[2]) || !ix.InSkyline(ids[0]) || ix.InSkyline(ids[2]) {
		t.Fatalf("batch state wrong: %v", ids)
	}
	if v, ok := ix.Values(ids[1]); !ok || !slices.Equal(v, []float64{2, 1}) {
		t.Fatalf("Values: %v %v", v, ok)
	}
	if ix.Delete(ID(9999)) {
		t.Fatal("delete of unknown ID succeeded")
	}

	ix.Close()
	ix.Close() // idempotent
	if _, err := ix.Insert([]float64{0, 0}); err == nil {
		t.Fatal("insert after Close accepted")
	}
	if ix.Delete(ids[0]) {
		t.Fatal("delete after Close succeeded")
	}
	if snap := ix.Snapshot(); snap.Len() != 2 {
		t.Fatalf("snapshot after Close: %d", snap.Len())
	}
}

// TestForcedRebuildKeepsState covers the public Rebuild entry and the
// lazily created private Engine.
func TestForcedRebuildKeepsState(t *testing.T) {
	ix, err := New(6, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer ix.Close()
	m := dataset.Generate(dataset.Anticorrelated, 600, 6, 13)
	for i := 0; i < m.N(); i++ {
		if _, err := ix.Insert(m.Row(i)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	before := slices.Clone(ix.Snapshot().IDs())
	slices.Sort(before)
	ix.Rebuild()
	after := slices.Clone(ix.Snapshot().IDs())
	slices.Sort(after)
	if !slices.Equal(before, after) {
		t.Fatalf("rebuild changed membership")
	}
	if ix.Stats().Rebuilds == 0 {
		t.Fatalf("rebuild not counted")
	}
}

// BenchmarkInsertSteadyState measures the per-update cost of a warm
// index under insert/delete churn at the acceptance workload's d.
func BenchmarkInsertSteadyState(b *testing.B) {
	const warm, d = 20000, 8
	m := dataset.Generate(dataset.Independent, warm+1, d, 42)
	ix, err := New(d, Config{})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer ix.Close()
	ids := make([]ID, 0, warm)
	for i := 0; i < warm; i++ {
		id, err := ix.Insert(m.Row(i))
		if err != nil {
			b.Fatalf("insert: %v", err)
		}
		ids = append(ids, id)
	}
	rng := rand.New(rand.NewSource(1))
	row := slices.Clone(m.Row(warm))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Replace a random live point: one delete + one insert, holding
		// the live size constant.
		j := rng.Intn(len(ids))
		ix.Delete(ids[j])
		row[0] = rng.Float64()
		id, err := ix.Insert(row)
		if err != nil {
			b.Fatalf("insert: %v", err)
		}
		ids[j] = id
		row[0], row[d-1] = row[d-1], row[0]
	}
}
