package skybench_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"skybench"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/verify"
)

// stagedMatrix applies the preference rewrite to m so the brute-force
// oracle sees exactly what the engine computed over.
func stagedMatrix(t *testing.T, m point.Matrix, prefs []skybench.Pref) point.Matrix {
	t.Helper()
	if prefs == nil {
		return m
	}
	ops := make([]point.PrefOp, len(prefs))
	for i, p := range prefs {
		switch p {
		case skybench.Min:
			ops[i] = point.PrefKeep
		case skybench.Max:
			ops[i] = point.PrefNegate
		case skybench.Ignore:
			ops[i] = point.PrefDrop
		default:
			t.Fatalf("unhandled preference %v", p)
		}
	}
	de := point.EffectiveDims(ops)
	dst := make([]float64, m.N()*de)
	point.StagePrefs(dst, m.Flat(), m.N(), m.D(), ops)
	return point.FromFlat(dst, m.N(), de)
}

// TestEngineSkybandOracle is the acceptance cross-check: k-skyband
// output (indices and exact dominator counts) for Hybrid and Q-Flow
// must match the brute-force dominator-count oracle, across the paper's
// three distributions × min/max/subspace preference sets on datasets up
// to n = 2048.
func TestEngineSkybandOracle(t *testing.T) {
	eng := skybench.NewEngine(4)
	defer eng.Close()
	ctx := context.Background()

	prefCases := []struct {
		name  string
		prefs []skybench.Pref
	}{
		{"min", nil},
		{"max", []skybench.Pref{skybench.Max, skybench.Max, skybench.Min, skybench.Max, skybench.Min, skybench.Max}},
		{"subspace", []skybench.Pref{skybench.Min, skybench.Ignore, skybench.Max, skybench.Ignore, skybench.Min, skybench.Min}},
	}
	for _, dist := range dataset.AllDistributions {
		for _, pc := range prefCases {
			for _, n := range []int{64, 777, 2048} {
				m := dataset.Generate(dist, n, 6, int64(n)+int64(dist))
				ds, err := skybench.DatasetFromFlat(m.Flat(), m.N(), m.D())
				if err != nil {
					t.Fatal(err)
				}
				staged := stagedMatrix(t, m, pc.prefs)
				for _, k := range []int{2, 3, 8} {
					wantIdx, wantCnt := verify.BruteForceSkyband(staged, k)
					for _, alg := range []skybench.Algorithm{skybench.Hybrid, skybench.QFlow} {
						res, err := eng.Run(ctx, ds, skybench.Query{
							Algorithm: alg, Prefs: pc.prefs, SkybandK: k,
						})
						if err != nil {
							t.Fatalf("%s/%s/%s n=%d k=%d: %v", alg, dist, pc.name, n, k, err)
						}
						if !verify.SameBand(res.Indices, res.Counts, wantIdx, wantCnt) {
							t.Fatalf("%s/%s/%s n=%d k=%d: band mismatch (%d points, oracle %d)",
								alg, dist, pc.name, n, k, len(res.Indices), len(wantIdx))
						}
						if res.Stats.SkylineSize != len(wantIdx) {
							t.Fatalf("%s: Stats.SkylineSize %d, want %d", alg, res.Stats.SkylineSize, len(wantIdx))
						}
					}
				}
			}
		}
	}
}

// TestEngineSkybandEdgeCases is the table-driven edge sweep of the
// query surface: degenerate datasets and band parameters that stress
// boundaries rather than bulk behavior.
func TestEngineSkybandEdgeCases(t *testing.T) {
	eng := skybench.NewEngine(2)
	defer eng.Close()
	ctx := context.Background()

	ident := func(n, d int) [][]float64 {
		rows := make([][]float64, n)
		for i := range rows {
			row := make([]float64, d)
			for j := range row {
				row[j] = 0.5
			}
			rows[i] = row
		}
		return rows
	}
	// Duplicates on the band boundary: two copies of a point dominated
	// by exactly one other. Coincident points never dominate each other,
	// so at k=2 both duplicates are in (count 1 each); at k=1 both out.
	dupBoundary := [][]float64{
		{0, 0},   // dominates both duplicates
		{1, 1},   // duplicate A
		{1, 1},   // duplicate B
		{2, 0.5}, // dominated by {0,0} only
	}

	cases := []struct {
		name     string
		rows     [][]float64
		k        int
		alg      skybench.Algorithm
		alpha    int
		wantIdx  []int
		wantCnts []int32 // nil for k<=1
	}{
		{name: "empty", rows: nil, k: 3, wantIdx: nil},
		{name: "single-k1", rows: [][]float64{{1, 2, 3}}, k: 1, wantIdx: []int{0}},
		{name: "single-k5", rows: [][]float64{{1, 2, 3}}, k: 5, wantIdx: []int{0}, wantCnts: []int32{0}},
		{name: "identical-k1", rows: ident(7, 3), k: 1, wantIdx: []int{0, 1, 2, 3, 4, 5, 6}},
		{name: "identical-k3", rows: ident(7, 3), k: 3, wantIdx: []int{0, 1, 2, 3, 4, 5, 6},
			wantCnts: []int32{0, 0, 0, 0, 0, 0, 0}},
		{name: "dup-boundary-k1", rows: dupBoundary, k: 1, wantIdx: []int{0}},
		{name: "dup-boundary-k2", rows: dupBoundary, k: 2, wantIdx: []int{0, 1, 2, 3},
			wantCnts: []int32{0, 1, 1, 1}},
		// d=1, k=2: the two coincident {1}s are undominated; {2} has two
		// dominators (both {1}s) and is out; {3} has three and is out.
		{name: "d1-k2", rows: [][]float64{{3}, {1}, {2}, {1}}, k: 2, wantIdx: []int{1, 3},
			wantCnts: []int32{0, 0}},
		{name: "n-smaller-than-alpha", rows: dupBoundary, k: 2, alpha: 1 << 12, wantIdx: []int{0, 1, 2, 3},
			wantCnts: []int32{0, 1, 1, 1}},
		{name: "k-geq-n", rows: dupBoundary, k: 4, wantIdx: []int{0, 1, 2, 3},
			wantCnts: []int32{0, 1, 1, 1}},
		{name: "qflow-k-geq-n", rows: dupBoundary, k: 100, alg: skybench.QFlow, wantIdx: []int{0, 1, 2, 3},
			wantCnts: []int32{0, 1, 1, 1}},
	}
	for _, tc := range cases {
		for _, alg := range []skybench.Algorithm{skybench.Hybrid, skybench.QFlow} {
			if tc.alg != 0 && alg != tc.alg {
				continue
			}
			var ds *skybench.Dataset
			var err error
			if len(tc.rows) > 0 {
				if ds, err = skybench.NewDataset(tc.rows); err != nil {
					t.Fatal(err)
				}
			} else {
				ds = &skybench.Dataset{}
			}
			res, err := eng.Run(ctx, ds, skybench.Query{Algorithm: alg, SkybandK: tc.k, Alpha: tc.alpha})
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, alg, err)
			}
			if !verify.SameBand(res.Indices, res.Counts, tc.wantIdx, tc.wantCnts) {
				t.Fatalf("%s/%s: got %v counts %v, want %v counts %v",
					tc.name, alg, res.Indices, res.Counts, tc.wantIdx, tc.wantCnts)
			}
			if tc.k <= 1 && res.Counts != nil {
				t.Fatalf("%s/%s: skyline query returned counts", tc.name, alg)
			}
		}
	}
}

// TestEngineSkybandErrors exercises the validation surface of the new
// query field.
func TestEngineSkybandErrors(t *testing.T) {
	eng := skybench.NewEngine(2)
	defer eng.Close()
	ctx := context.Background()
	data := contextTestData(t, 50, 4)
	ds, err := skybench.NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := eng.Run(ctx, ds, skybench.Query{SkybandK: -1}); err == nil ||
		!strings.Contains(err.Error(), "negative SkybandK") {
		t.Fatalf("negative SkybandK: got %v", err)
	}
	for _, alg := range []skybench.Algorithm{skybench.BNL, skybench.BSkyTree, skybench.PSkyline} {
		_, err := eng.Run(ctx, ds, skybench.Query{Algorithm: alg, SkybandK: 2})
		if err == nil || !strings.Contains(err.Error(), "does not support k-skyband") {
			t.Fatalf("%s with SkybandK=2: got %v", alg, err)
		}
		// SkybandK=1 must be accepted everywhere and match the skyline.
		res, err := eng.Run(ctx, ds, skybench.Query{Algorithm: alg, SkybandK: 1})
		if err != nil {
			t.Fatalf("%s with SkybandK=1: %v", alg, err)
		}
		plain, err := eng.Run(ctx, ds, skybench.Query{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if !verify.SameSkyline(res.Indices, plain.Indices) {
			t.Fatalf("%s: SkybandK=1 diverges from plain skyline", alg)
		}
	}
}

// TestResultTopK pins the ranking helper: ascending dominator count,
// stable on ties, clamped to the band size, skyline passthrough.
func TestResultTopK(t *testing.T) {
	r := skybench.Result{
		Indices: []int{10, 11, 12, 13, 14},
		Counts:  []int32{2, 0, 1, 0, 2},
	}
	for _, tc := range []struct {
		w    int
		want []int
	}{
		{0, nil},
		{-3, nil},
		{1, []int{11}},
		{2, []int{11, 13}},
		{3, []int{11, 13, 12}},
		{5, []int{11, 13, 12, 10, 14}},
		{99, []int{11, 13, 12, 10, 14}},
	} {
		got := r.TopK(tc.w)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Fatalf("TopK(%d) = %v, want %v", tc.w, got, tc.want)
		}
	}
	// Skyline result: no counts, first-w passthrough, caller-owned.
	sky := skybench.Result{Indices: []int{4, 5, 6}}
	got := sky.TopK(2)
	if fmt.Sprint(got) != fmt.Sprint([]int{4, 5}) {
		t.Fatalf("skyline TopK = %v", got)
	}
	got[0] = 99
	if sky.Indices[0] != 4 {
		t.Fatalf("TopK aliases Result.Indices")
	}
}

// TestEngineSkybandZeroAlloc guards the steady-state allocation behavior
// of the new counting path: a warm Engine serving repeated skyband
// queries with ReuseIndices performs no allocations per Run, exactly
// like the skyline path.
func TestEngineSkybandZeroAlloc(t *testing.T) {
	data := contextTestData(t, 20000, 8)
	ds, err := skybench.NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	eng := skybench.NewEngine(4)
	defer eng.Close()
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		q    skybench.Query
	}{
		{"hybrid-k4", skybench.Query{SkybandK: 4, ReuseIndices: true}},
		{"qflow-k4", skybench.Query{Algorithm: skybench.QFlow, SkybandK: 4, ReuseIndices: true}},
	} {
		if _, err := eng.Run(ctx, ds, tc.q); err != nil { // warm scratch
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := eng.Run(ctx, ds, tc.q); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: Engine.Run allocates %.1f per call, want 0", tc.name, allocs)
		}
	}
}
