// Hotels: multi-criteria shortlisting, the classic skyline use case.
// A traveller wants a hotel that is cheap, close to the beach, and
// well-reviewed. No single weighting of those criteria is right for
// everyone; the skyline is exactly the set of hotels that are optimal
// under *some* preference — everything else is objectively worse than
// an alternative on all counts.
//
// Ratings are to be maximized, so they enter negated (the library's
// minimization convention).
//
// Run with: go run ./examples/hotels
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"skybench"
)

type hotel struct {
	name     string
	price    float64 // EUR per night   (minimize)
	distance float64 // km to the beach (minimize)
	rating   float64 // 1..5 stars      (maximize)
}

func main() {
	hotels := generateHotels(500)

	// Build the criteria matrix: negate the rating to maximize it.
	data := make([][]float64, len(hotels))
	for i, h := range hotels {
		data[i] = []float64{h.price, h.distance, -h.rating}
	}

	res, err := skybench.Compute(data, skybench.Options{Algorithm: skybench.Hybrid})
	if err != nil {
		log.Fatal(err)
	}

	short := make([]hotel, 0, len(res.Indices))
	for _, i := range res.Indices {
		short = append(short, hotels[i])
	}
	sort.Slice(short, func(a, b int) bool { return short[a].price < short[b].price })

	fmt.Printf("%d hotels reduced to a skyline shortlist of %d:\n\n", len(hotels), len(short))
	fmt.Printf("%-12s %10s %10s %8s\n", "hotel", "price", "distance", "rating")
	for _, h := range short {
		fmt.Printf("%-12s %9.0f€ %8.1fkm %8.1f\n", h.name, h.price, h.distance, h.rating)
	}
	fmt.Println("\nEvery hotel not listed is worse than some listed hotel on price,")
	fmt.Println("distance, AND rating simultaneously.")
}

// generateHotels synthesizes a plausible market: price anti-correlates
// with distance (seafront is expensive) and correlates with rating.
func generateHotels(n int) []hotel {
	rng := rand.New(rand.NewSource(7))
	out := make([]hotel, n)
	for i := range out {
		quality := rng.Float64()  // latent quality of the hotel
		seafront := rng.Float64() // latent location quality
		price := 40 + 260*quality*0.6 + 200*seafront*0.4 + 30*rng.Float64()
		distance := 12 * (1 - seafront) * (0.5 + 0.5*rng.Float64())
		rating := 1 + 4*(0.7*quality+0.3*rng.Float64())
		out[i] = hotel{
			name:     fmt.Sprintf("hotel-%03d", i),
			price:    float64(int(price)),
			distance: float64(int(distance*10)) / 10,
			rating:   float64(int(rating*10)) / 10,
		}
	}
	return out
}
