// Hotels: multi-criteria shortlisting, the classic skyline use case.
// A traveller wants a hotel that is cheap, close to the beach, and
// well-reviewed. No single weighting of those criteria is right for
// everyone; the skyline is exactly the set of hotels that are optimal
// under *some* preference — everything else is objectively worse than
// an alternative on all counts.
//
// This example uses the v2 API: the rating column is maximized by
// declaring skybench.Max in the query instead of negating it by hand,
// and the same prepared Dataset then answers a second, different query
// (a price/rating subspace skyline) without restaging.
//
// Run with: go run ./examples/hotels
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"skybench"
)

type hotel struct {
	name     string
	price    float64 // EUR per night   (minimize)
	distance float64 // km to the beach (minimize)
	rating   float64 // 1..5 stars      (maximize)
}

func main() {
	hotels := generateHotels(500)

	// Build the criteria matrix exactly as the data is: no caller-side
	// negation — the query says which way each column points.
	data := make([][]float64, len(hotels))
	for i, h := range hotels {
		data[i] = []float64{h.price, h.distance, h.rating}
	}
	ds, err := skybench.NewDataset(data)
	if err != nil {
		log.Fatal(err)
	}
	eng := skybench.NewEngine(0)
	defer eng.Close()
	ctx := context.Background()

	res, err := eng.Run(ctx, ds, skybench.Query{
		Prefs: []skybench.Pref{skybench.Min, skybench.Min, skybench.Max},
	})
	if err != nil {
		log.Fatal(err)
	}

	short := make([]hotel, 0, len(res.Indices))
	for _, i := range res.Indices {
		short = append(short, hotels[i])
	}
	sort.Slice(short, func(a, b int) bool { return short[a].price < short[b].price })

	fmt.Printf("%d hotels reduced to a skyline shortlist of %d:\n\n", len(hotels), len(short))
	fmt.Printf("%-12s %10s %10s %8s\n", "hotel", "price", "distance", "rating")
	for _, h := range short {
		fmt.Printf("%-12s %9.0f€ %8.1fkm %8.1f\n", h.name, h.price, h.distance, h.rating)
	}
	fmt.Println("\nEvery hotel not listed is worse than some listed hotel on price,")
	fmt.Println("distance, AND rating simultaneously.")

	// The same Dataset answers a different question with no restaging:
	// a traveller with a car doesn't care about the beach distance.
	noCar, err := eng.Run(ctx, ds, skybench.Query{
		Prefs: []skybench.Pref{skybench.Min, skybench.Ignore, skybench.Max},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIgnoring distance (price/rating subspace): %d hotels remain optimal.\n",
		len(noCar.Indices))
}

// generateHotels synthesizes a plausible market: price anti-correlates
// with distance (seafront is expensive) and correlates with rating.
func generateHotels(n int) []hotel {
	rng := rand.New(rand.NewSource(7))
	out := make([]hotel, n)
	for i := range out {
		quality := rng.Float64()  // latent quality of the hotel
		seafront := rng.Float64() // latent location quality
		price := 40 + 260*quality*0.6 + 200*seafront*0.4 + 30*rng.Float64()
		distance := 12 * (1 - seafront) * (0.5 + 0.5*rng.Float64())
		rating := 1 + 4*(0.7*quality+0.3*rng.Float64())
		out[i] = hotel{
			name:     fmt.Sprintf("hotel-%03d", i),
			price:    float64(int(price)),
			distance: float64(int(distance*10)) / 10,
			rating:   float64(int(rating*10)) / 10,
		}
	}
	return out
}
