// Progressive: stream skyline results as they are confirmed. The paper's
// global-skyline paradigm (unlike divide-and-conquer) reports results
// progressively: after each α-block the survivors are final skyline
// points, so a UI can render "best options so far" long before the full
// computation finishes — here over a 200K-point anticorrelated dataset.
//
// Run with: go run ./examples/progressive
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"skybench"
)

func main() {
	const n, d = 200000, 6
	data, err := skybench.GenerateDataset("anticorrelated", n, d, 1)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := skybench.NewDataset(data)
	if err != nil {
		log.Fatal(err)
	}
	eng := skybench.NewEngine(4)
	defer eng.Close()

	fmt.Printf("computing the skyline of %d points (%d dims) progressively...\n\n", n, d)
	start := time.Now()
	var batches, total int
	res, err := eng.Run(context.Background(), ds, skybench.Query{
		Algorithm: skybench.Hybrid,
		Alpha:     4096,
		Progressive: func(confirmed []int) {
			batches++
			total += len(confirmed)
			if batches <= 8 || batches%16 == 0 {
				fmt.Printf("  +%5dms  block %3d confirmed %5d points (total %6d)\n",
					time.Since(start).Milliseconds(), batches, len(confirmed), total)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndone in %v: %d blocks streamed %d skyline points\n",
		res.Stats.Elapsed, batches, len(res.Indices))
	fmt.Println("first results were available after the first block — no merge phase")
	fmt.Println("to wait for, unlike divide-and-conquer parallelization.")
}
