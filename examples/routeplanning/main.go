// Route planning: skyline queries over candidate routes, the paper's
// first motivating application ([14] Kriegel et al., [21] Yang et al.).
// A navigation system enumerates many feasible routes between two
// places; each has a travel time, fuel cost, toll cost, and a number of
// turns. The route skyline is the set a driver could rationally pick
// from — every other route is strictly worse than some skyline route on
// all criteria.
//
// The example demonstrates the serving pattern: one Engine answers all
// route queries under a per-query deadline, the way a navigation backend
// would — and a second pass reruns a query in the subspace a toll-badge
// holder cares about (tolls ignored) without rebuilding anything.
//
// Run with: go run ./examples/routeplanning
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"skybench"
)

type route struct {
	via     string
	minutes float64
	fuel    float64 // litres
	tolls   float64 // EUR
	turns   float64
}

func main() {
	queries := []string{"A→B (commute)", "B→C (cross-town)", "A→C (long haul)"}

	// One Engine for the whole service; each origin/destination pair
	// becomes a prepared Dataset that can answer many queries.
	eng := skybench.NewEngine(4)
	defer eng.Close()

	for qi, q := range queries {
		routes := enumerateRoutes(1500, int64(qi+1))
		data := make([][]float64, len(routes))
		for i, r := range routes {
			data[i] = []float64{r.minutes, r.fuel, r.tolls, r.turns}
		}
		ds, err := skybench.NewDataset(data)
		if err != nil {
			log.Fatal(err)
		}

		// A navigation backend answers within a latency budget: a blown
		// deadline returns context.DeadlineExceeded instead of stalling.
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		res, err := eng.Run(ctx, ds, skybench.Query{Algorithm: skybench.Hybrid})
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d candidate routes → %d skyline routes (%.1f%%), %v\n",
			q, len(routes), res.Stats.SkylineSize,
			100*float64(res.Stats.SkylineSize)/float64(len(routes)), res.Stats.Elapsed)
		for k, i := range res.Indices {
			if k >= 3 {
				fmt.Printf("   ...\n")
				break
			}
			r := routes[i]
			fmt.Printf("   via %-12s %5.1f min  %4.1f L  %4.2f €  %2.0f turns\n",
				r.via, r.minutes, r.fuel, r.tolls, r.turns)
		}

		// Same prepared Dataset, different driver: a toll badge makes the
		// tolls column irrelevant, shrinking the choice set.
		badge, err := eng.Run(context.Background(), ds, skybench.Query{
			Prefs: []skybench.Pref{skybench.Min, skybench.Min, skybench.Ignore, skybench.Min},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   with a toll badge (tolls ignored): %d skyline routes\n", len(badge.Indices))
	}
}

// enumerateRoutes synthesizes a candidate set with realistic trade-offs:
// highways are fast but tolled, back roads are slow but free and fuel
// expensive per km varies with congestion.
func enumerateRoutes(n int, seed int64) []route {
	rng := rand.New(rand.NewSource(seed))
	kinds := []string{"highway", "arterial", "back-roads", "mixed"}
	out := make([]route, n)
	for i := range out {
		kind := kinds[rng.Intn(len(kinds))]
		speed := 0.3 + 0.7*rng.Float64() // latent speediness
		direct := 0.3 + 0.7*rng.Float64()
		minutes := 20 + 90*(1-speed)*direct + 10*rng.Float64()
		fuel := 2 + 8*direct*(0.6+0.4*speed) + rng.Float64()
		tolls := 0.0
		if kind == "highway" || (kind == "mixed" && rng.Float64() < 0.5) {
			tolls = 2 + 10*speed*rng.Float64()
		}
		turns := 4 + 40*(1-direct)*rng.Float64()
		out[i] = route{
			via:     fmt.Sprintf("%s-%d", kind, i%17),
			minutes: float64(int(minutes*10)) / 10,
			fuel:    float64(int(fuel*10)) / 10,
			tolls:   float64(int(tolls*100)) / 100,
			turns:   float64(int(turns)),
		}
	}
	return out
}
