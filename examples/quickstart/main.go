// Quickstart: the smallest useful skybench program. It computes the
// skyline of a handful of two-dimensional points (the example of the
// paper's Figure 1a) and prints the result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"skybench"
)

func main() {
	// Points are (x, y) with smaller preferred on both dimensions —
	// e.g. (fuel consumption, expected travel time) of route options.
	points := [][]float64{
		{2, 4}, // p — skyline
		{4, 6}, // q — dominated by p
		{1, 7}, // r — skyline
		{5, 2}, // s — skyline
		{8, 1}, // t — skyline
	}
	names := []string{"p", "q", "r", "s", "t"}

	idx, err := skybench.Skyline(points)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("skyline (non-dominated) options:")
	for _, i := range idx {
		fmt.Printf("  %s = %v\n", names[i], points[i])
	}

	// The same computation through the serving API — prepare the dataset
	// once, then answer as many queries as needed (Engine is safe for
	// concurrent use and honors context deadlines):
	ds, err := skybench.NewDataset(points)
	if err != nil {
		log.Fatal(err)
	}
	eng := skybench.NewEngine(2)
	defer eng.Close()
	res, err := eng.Run(context.Background(), ds, skybench.Query{
		Algorithm: skybench.Hybrid,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d of %d points are in the skyline; %d dominance tests, %v\n",
		res.Stats.SkylineSize, res.Stats.InputSize,
		res.Stats.DominanceTests, res.Stats.Elapsed)

	// Preferences flip or drop dimensions per query: maximize y, keep x.
	maxY, err := eng.Run(context.Background(), ds, skybench.Query{
		Prefs: []skybench.Pref{skybench.Min, skybench.Max},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("with y maximized instead: ")
	for _, i := range maxY.Indices {
		fmt.Printf("%s ", names[i])
	}
	fmt.Println()
}
