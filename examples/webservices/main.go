// Web services: QoS-based service selection for composition, one of the
// paper's motivating applications ([1] Alrifai et al., WWW 2010). A
// composition engine must pick, per abstract task, a concrete service
// from hundreds of candidates described by quality-of-service vectors.
// Reducing each candidate pool to its skyline before optimization
// shrinks the search space without excluding any Pareto-optimal
// composition.
//
// This example also contrasts algorithms on the same pool, showing the
// dominance-test counts that make Hybrid the right default.
//
// Run with: go run ./examples/webservices
package main

import (
	"fmt"
	"log"
	"math/rand"

	"skybench"
)

func main() {
	const candidates = 4000
	pool := generateQoS(candidates)

	fmt.Printf("service pool: %d candidates × %d QoS attributes\n", len(pool), len(pool[0]))
	fmt.Println("attributes: latency(ms), cost(¢/call), error rate(%), load(%), jitter(ms)")
	fmt.Println()

	for _, alg := range []skybench.Algorithm{skybench.Hybrid, skybench.QFlow, skybench.PSkyline, skybench.BNL} {
		res, err := skybench.Compute(pool, skybench.Options{Algorithm: alg, Threads: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s skyline=%4d  dominance tests=%9d  time=%v\n",
			alg, res.Stats.SkylineSize, res.Stats.DominanceTests, res.Stats.Elapsed)
	}

	// Show a few skyline services.
	res, err := skybench.Compute(pool, skybench.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsample of Pareto-optimal services:")
	for k, i := range res.Indices {
		if k >= 5 {
			fmt.Printf("  ... and %d more\n", len(res.Indices)-5)
			break
		}
		p := pool[i]
		fmt.Printf("  svc-%04d: latency=%5.1fms cost=%4.1f¢ err=%4.2f%% load=%4.1f%% jitter=%4.1fms\n",
			i, p[0], p[1], p[2], p[3], p[4])
	}
}

// generateQoS synthesizes service QoS vectors: cheap services tend to be
// slow and flaky (anticorrelated trade-offs), plus measurement noise.
func generateQoS(n int) [][]float64 {
	rng := rand.New(rand.NewSource(99))
	out := make([][]float64, n)
	for i := range out {
		budget := rng.Float64() // latent "how much the operator spends"
		lat := 20 + 480*(1-budget)*(0.4+0.6*rng.Float64())
		cost := 0.5 + 9.5*budget*(0.4+0.6*rng.Float64())
		errRate := 5 * (1 - budget) * rng.Float64()
		load := 100 * rng.Float64()
		jitter := lat * 0.2 * rng.Float64()
		out[i] = []float64{
			float64(int(lat*10)) / 10,
			float64(int(cost*10)) / 10,
			float64(int(errRate*100)) / 100,
			float64(int(load*10)) / 10,
			float64(int(jitter*10)) / 10,
		}
	}
	return out
}
