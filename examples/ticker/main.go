// Ticker: maintain a live "best quotes" skyline over a sliding window of
// streaming market data. Each quote has four attributes — price and fee
// (lower is better), fill rate (higher is better), and a venue latency
// (lower is better) — and the skyline is the set of quotes no other
// quote beats on all four at once. A stream.Window keeps that set exact
// as quotes arrive and age out, publishing entered/left deltas the way a
// UI or alerting pipeline would consume them; a concurrent reader polls
// zero-copy snapshots while the feed is being ingested.
//
// Run with: go run ./examples/ticker
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"skybench"
	"skybench/stream"
)

func main() {
	const (
		capacity = 512  // quotes kept live (the sliding window)
		quotes   = 5000 // total feed length
		d        = 4    // price, fee, fill rate, latency
	)

	var mu sync.Mutex
	deltas := 0
	win, err := stream.NewWindow(capacity, d, stream.Config{
		// fill rate (dimension 2) is maximized; everything else minimized.
		Prefs: []skybench.Pref{skybench.Min, skybench.Min, skybench.Max, skybench.Min},
		OnDelta: func(entered, left []stream.Point) {
			// Called with the index lock held: count here, print later.
			mu.Lock()
			deltas += len(entered) + len(left)
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer win.Close()

	// A reader polls snapshots while the feed runs — snapshots are
	// immutable and zero-copy, so this costs the writer nothing while
	// the skyline is unchanged.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	polls := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if s := win.Snapshot(); s.Epoch() != last {
				last = s.Epoch()
				polls++
			}
			runtime.Gosched() // poll politely; don't monopolize a CPU
		}
	}()

	rng := rand.New(rand.NewSource(7))
	start := time.Now()
	for i := 0; i < quotes; i++ {
		quote := []float64{
			95 + 10*rng.Float64(),   // price drifts around 100
			0.1 + 0.4*rng.Float64(), // fee
			rng.Float64(),           // fill rate (maximized)
			1 + 49*rng.Float64(),    // latency ms
		}
		if _, err := win.Push(quote); err != nil {
			log.Fatal(err)
		}
		if i%100 == 99 {
			// Yield between feed bursts so the poller gets scheduled
			// even on a single-CPU host.
			runtime.Gosched()
		}
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	st := win.Stats()
	fmt.Printf("ingested %d quotes into a %d-quote window in %v (%.0f quotes/s)\n",
		quotes, capacity, elapsed.Round(time.Millisecond), float64(quotes)/elapsed.Seconds())
	mu.Lock()
	fmt.Printf("skyline churn: %d membership changes (%d resurrections after evictions), %d observed by deltas\n",
		st.Entered+st.Left, st.Resurrections, deltas)
	mu.Unlock()
	fmt.Printf("reader observed %d distinct skyline versions without blocking the feed\n\n", polls)

	snap := win.Snapshot()
	fmt.Printf("current best quotes (%d of %d live):\n", snap.Len(), win.Len())
	fmt.Printf("  %-6s %8s %6s %6s %9s\n", "id", "price", "fee", "fill", "latency")
	shown := 0
	for i := 0; i < snap.Len() && shown < 8; i++ {
		q := snap.Row(i)
		fmt.Printf("  %-6d %8.2f %6.3f %5.0f%% %7.1fms\n", snap.ID(i), q[0], q[1], 100*q[2], q[3])
		shown++
	}
	if snap.Len() > shown {
		fmt.Printf("  ... and %d more\n", snap.Len()-shown)
	}
	fmt.Println("\nevery quote above is unbeaten: no other live quote is at least as good")
	fmt.Println("on price, fee, fill rate, and latency — and strictly better somewhere.")
}
