package skybench_test

import (
	"context"
	"sort"
	"testing"

	"skybench"
)

// TestParsePivotRoundTrip checks ParsePivot against every strategy's
// String form (the satellite task: pivot strategies used to be
// unparseable).
func TestParsePivotRoundTrip(t *testing.T) {
	strategies := []skybench.PivotStrategy{
		skybench.PivotMedian, skybench.PivotBalanced, skybench.PivotManhattan,
		skybench.PivotVolume, skybench.PivotRandom,
	}
	for _, p := range strategies {
		got, err := skybench.ParsePivot(p.String())
		if err != nil {
			t.Errorf("ParsePivot(%q): %v", p.String(), err)
			continue
		}
		if got != p {
			t.Errorf("ParsePivot(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if _, err := skybench.ParsePivot("bogus"); err == nil {
		t.Error("ParsePivot accepted an unknown name")
	}
}

// TestAlgorithmNamesSorted checks that AlgorithmNames is sorted,
// complete, and round-trips through ParseAlgorithm.
func TestAlgorithmNamesSorted(t *testing.T) {
	names := skybench.AlgorithmNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("AlgorithmNames not sorted: %v", names)
	}
	// AlgorithmNames carries one extra entry beyond Algorithms: the
	// "auto" meta-algorithm, which is parseable and servable through a
	// Store but is not a comparison point the benchmarks iterate.
	if len(names) != len(skybench.Algorithms)+1 {
		t.Errorf("AlgorithmNames lists %d algorithms, Algorithms has %d (+auto)", len(names), len(skybench.Algorithms))
	}
	found := false
	for _, name := range names {
		if name == skybench.Auto.String() {
			found = true
		}
	}
	if !found {
		t.Errorf("AlgorithmNames %v is missing %q", names, skybench.Auto)
	}
	for _, name := range names {
		a, err := skybench.ParseAlgorithm(name)
		if err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", name, err)
			continue
		}
		if a.String() != name {
			t.Errorf("ParseAlgorithm(%q).String() = %q", name, a.String())
		}
	}
}

// TestResultClone checks that Clone detaches a result from any shared
// storage.
func TestResultClone(t *testing.T) {
	r := skybench.Result{Indices: []int{3, 1, 4}}
	c := r.Clone()
	r.Indices[0] = 99
	if c.Indices[0] != 3 {
		t.Errorf("Clone shares storage: got %v", c.Indices)
	}
	empty := skybench.Result{}.Clone()
	if len(empty.Indices) != 0 {
		t.Errorf("Clone of empty result: %v", empty.Indices)
	}
}

// skylineStaircase builds a dataset whose skyline is every point: x
// increases while y decreases, so the points are mutually incomparable.
func skylineStaircase(n int) [][]float64 {
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = []float64{float64(i), float64(n-i) + 0.5*float64(i)}
	}
	return rows
}

// singleWinner builds a dataset whose skyline is exactly {w}: every
// other point is a copy of a dominated value. w is picked to differ from
// firstConfirmed so overwriting is observable.
func singleWinner(n, firstConfirmed int) ([][]float64, int) {
	w := 0
	if firstConfirmed == 0 {
		w = 1
	}
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{10, 10}
	}
	rows[w] = []float64{0, 0}
	return rows, w
}

// TestContextAliasingRegression is the satellite regression test for the
// documented aliasing rule: a second Context.Compute call invalidates
// the first result's Indices (they alias reused storage), Clone detaches
// them, and Engine.Run without ReuseIndices hands out caller-owned
// indices that later queries cannot touch.
func TestContextAliasingRegression(t *testing.T) {
	allSky := skylineStaircase(6)

	ctx := skybench.NewContext()
	defer ctx.Close()
	first, err := ctx.Compute(allSky, skybench.Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Indices) != len(allSky) {
		t.Fatalf("staircase skyline has %d points, want %d", len(first.Indices), len(allSky))
	}
	wantFirst := append([]int(nil), first.Indices...)
	saved := first.Clone()
	// The second dataset's single skyline point is chosen to differ from
	// the slot it will overwrite.
	oneSky, _ := singleWinner(4, wantFirst[0])
	if _, err := ctx.Compute(oneSky, skybench.Options{Threads: 1}); err != nil {
		t.Fatal(err)
	}
	// The aliasing rule: first.Indices now reflects the second query's
	// scratch — its first entry has been overwritten with the second
	// skyline's sole index, proving invalidation.
	if first.Indices[0] == wantFirst[0] {
		t.Errorf("second Compute did not invalidate the first result's indices — "+
			"either the aliasing contract changed (update the docs!) or this test is stale: got %v",
			first.Indices[0])
	}
	for i := range wantFirst {
		if saved.Indices[i] != wantFirst[i] {
			t.Fatalf("Clone was corrupted by the second call: %v != %v", saved.Indices, wantFirst)
		}
	}

	// Engine.Run without ReuseIndices: caller-owned, later queries must
	// not touch it.
	eng := skybench.NewEngine(1)
	defer eng.Close()
	dsAll, err := skybench.NewDataset(allSky)
	if err != nil {
		t.Fatal(err)
	}
	bg := context.Background()
	got, err := eng.Run(bg, dsAll, skybench.Query{})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int(nil), got.Indices...)
	oneSky2, _ := singleWinner(4, want[0])
	dsOne, err := skybench.NewDataset(oneSky2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(bg, dsOne, skybench.Query{}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got.Indices[i] != want[i] {
			t.Fatalf("Engine.Run result without ReuseIndices was invalidated by a later query at %d: %v != %v",
				i, got.Indices, want)
		}
	}

	// Engine.Run with ReuseIndices aliases engine scratch, like the
	// legacy Context.
	reused, err := eng.Run(bg, dsAll, skybench.Query{ReuseIndices: true})
	if err != nil {
		t.Fatal(err)
	}
	reusedFirst := reused.Indices[0]
	if _, err := eng.Run(bg, dsOne, skybench.Query{ReuseIndices: true}); err != nil {
		t.Fatal(err)
	}
	if reused.Indices[0] == reusedFirst {
		t.Error("ReuseIndices result survived a later query — the zero-copy path is copying")
	}
}
