package skybench_test

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"skybench"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/verify"
)

// -update regenerates the golden files from the brute-force oracle:
//
//	go test -run TestGolden -update .
//
// The committed files are the contract: every algorithm's skyline (and
// Hybrid/QFlow's k-skybands) must keep selecting exactly these points,
// so a kernel refactor can never silently change results.
var updateGolden = flag.Bool("update", false, "regenerate testdata golden files from the brute-force oracle")

// goldenBand is one expected k-skyband: ascending indices with counts
// parallel to them.
type goldenBand struct {
	Indices []int   `json:"indices"`
	Counts  []int32 `json:"counts"`
}

// goldenFile pins one dataset and its expected outputs.
type goldenFile struct {
	Name     string                `json:"name"`
	Dist     string                `json:"dist"`
	N        int                   `json:"n"`
	D        int                   `json:"d"`
	Seed     int64                 `json:"seed"`
	Quantize int                   `json:"quantize,omitempty"`
	Rows     [][]float64           `json:"rows"`
	Skyline  []int                 `json:"skyline"`
	Skyband  map[string]goldenBand `json:"skyband"` // keys "1","2","4"
}

// goldenCases fixes the three datasets: one per distribution, with the
// correlated one quantized onto a coarse grid so coincident points sit
// on band boundaries.
var goldenCases = []struct {
	name     string
	dist     dataset.Distribution
	n, d     int
	seed     int64
	quantize int
}{
	{"independent-n60-d4", dataset.Independent, 60, 4, 7, 0},
	{"anticorrelated-n80-d2", dataset.Anticorrelated, 80, 2, 11, 0},
	{"correlated-n120-d3-q6", dataset.Correlated, 120, 3, 13, 6},
}

var goldenKs = []int{1, 2, 4}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden_"+name+".json")
}

// goldenMatrix regenerates a case's dataset from its parameters.
func goldenMatrix(c struct {
	name     string
	dist     dataset.Distribution
	n, d     int
	seed     int64
	quantize int
}) [][]float64 {
	m := dataset.Generate(c.dist, c.n, c.d, c.seed)
	if c.quantize > 0 {
		dataset.Quantize(m, c.quantize)
	}
	rows := make([][]float64, m.N())
	for i := range rows {
		rows[i] = append([]float64(nil), m.Row(i)...)
	}
	return rows
}

// TestGoldenUpdate regenerates the files under -update and is a no-op
// otherwise.
func TestGoldenUpdate(t *testing.T) {
	if !*updateGolden {
		t.Skip("run with -update to regenerate golden files")
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenCases {
		rows := goldenMatrix(c)
		m := point.FromRows(rows)
		g := goldenFile{
			Name: c.name, Dist: c.dist.String(), N: c.n, D: c.d,
			Seed: c.seed, Quantize: c.quantize, Rows: rows,
			Skyband: map[string]goldenBand{},
		}
		g.Skyline = verify.BruteForce(m)
		for _, k := range goldenKs {
			idx, cnt := verify.BruteForceSkyband(m, k)
			g.Skyband[fmt.Sprint(k)] = goldenBand{Indices: idx, Counts: cnt}
		}
		blob, err := json.MarshalIndent(&g, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(goldenPath(c.name), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath(c.name))
	}
}

// TestGoldenSkylineAllAlgorithms asserts every algorithm's skyline —
// and its SkybandK=1 run, which must be bit-identical to it — against
// the committed golden files.
func TestGoldenSkylineAllAlgorithms(t *testing.T) {
	eng := skybench.NewEngine(2)
	defer eng.Close()
	ctx := context.Background()
	for _, c := range goldenCases {
		g := loadGolden(t, c.name)
		ds, err := skybench.NewDataset(g.Rows)
		if err != nil {
			t.Fatal(err)
		}
		// The file's own k=1 band must agree with its skyline.
		if b := g.Skyband["1"]; !verify.SameSkyline(b.Indices, g.Skyline) {
			t.Fatalf("%s: golden file inconsistent: skyband[1] != skyline", c.name)
		}
		for _, alg := range skybench.Algorithms {
			res, err := eng.Run(ctx, ds, skybench.Query{Algorithm: alg})
			if err != nil {
				t.Fatalf("%s/%s: %v", c.name, alg, err)
			}
			if got := sortedInts(res.Indices); !slices.Equal(got, g.Skyline) {
				t.Fatalf("%s/%s: skyline %v, golden %v", c.name, alg, got, g.Skyline)
			}
			k1, err := eng.Run(ctx, ds, skybench.Query{Algorithm: alg, SkybandK: 1})
			if err != nil {
				t.Fatalf("%s/%s (SkybandK=1): %v", c.name, alg, err)
			}
			if !slices.Equal(k1.Indices, res.Indices) {
				t.Fatalf("%s/%s: SkybandK=1 order diverges from plain skyline", c.name, alg)
			}
			if k1.Counts != nil {
				t.Fatalf("%s/%s: SkybandK=1 returned counts", c.name, alg)
			}
		}
	}
}

// TestGoldenSkyband asserts Hybrid's and QFlow's k-skyband output —
// membership and exact dominator counts — against the committed golden
// files for k = 2 and 4 (k = 1 is covered index-for-index above).
func TestGoldenSkyband(t *testing.T) {
	eng := skybench.NewEngine(2)
	defer eng.Close()
	ctx := context.Background()
	for _, c := range goldenCases {
		g := loadGolden(t, c.name)
		ds, err := skybench.NewDataset(g.Rows)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range goldenKs[1:] {
			want := g.Skyband[fmt.Sprint(k)]
			for _, alg := range []skybench.Algorithm{skybench.Hybrid, skybench.QFlow} {
				res, err := eng.Run(ctx, ds, skybench.Query{Algorithm: alg, SkybandK: k})
				if err != nil {
					t.Fatalf("%s/%s k=%d: %v", c.name, alg, k, err)
				}
				if !verify.SameBand(res.Indices, res.Counts, want.Indices, want.Counts) {
					t.Fatalf("%s/%s k=%d: band (%d points) diverges from golden (%d points)",
						c.name, alg, k, len(res.Indices), len(want.Indices))
				}
			}
		}
	}
}

// TestGoldenDatasetsStable guards the generator itself: the committed
// rows must be reproducible from the recorded parameters, so the golden
// files cannot drift from the datasets they describe.
func TestGoldenDatasetsStable(t *testing.T) {
	for _, c := range goldenCases {
		g := loadGolden(t, c.name)
		rows := goldenMatrix(c)
		if len(rows) != len(g.Rows) {
			t.Fatalf("%s: regenerated %d rows, file has %d", c.name, len(rows), len(g.Rows))
		}
		for i := range rows {
			if !slices.Equal(rows[i], g.Rows[i]) {
				t.Fatalf("%s: row %d drifted: %v != %v", c.name, i, rows[i], g.Rows[i])
			}
		}
	}
}

func loadGolden(t *testing.T, name string) goldenFile {
	t.Helper()
	blob, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("golden file missing (run go test -run TestGoldenUpdate -update .): %v", err)
	}
	var g goldenFile
	if err := json.Unmarshal(blob, &g); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return g
}

func sortedInts(s []int) []int {
	out := append([]int(nil), s...)
	slices.Sort(out)
	return out
}
