// Package prefilter implements the two-pass parallel pre-filter of the
// Hybrid algorithm (Section VI-A1 of the paper).
//
// Most datasets contain points dominated by a large share of the input;
// the pre-filter removes them cheaply before the heavier initialization
// work (pivot selection, sorting). Each thread maintains a priority queue
// of the β points with smallest L1 norm it has seen; in a second pass all
// points are tested against the union of the per-thread queues.
package prefilter

import (
	"container/heap"

	"skybench/internal/par"
	"skybench/internal/point"
	"skybench/internal/stats"
)

// DefaultBeta is the queue capacity β = 8 the paper configured
// empirically (footnote 3; appreciable impact only on correlated data).
const DefaultBeta = 8

// maxHeap is a max-heap over point indices keyed by L1 norm, so the root
// is the *largest*-norm point in the queue and cheap to replace.
type maxHeap struct {
	idx []int
	l1  []float64
}

func (h *maxHeap) Len() int           { return len(h.idx) }
func (h *maxHeap) Less(i, j int) bool { return h.l1[h.idx[i]] > h.l1[h.idx[j]] }
func (h *maxHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *maxHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *maxHeap) Pop() interface{} {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// Filter removes easily-dominated points and returns the surviving
// indices in their original order. l1 must hold the L1 norm of every row.
// beta ≤ 0 selects DefaultBeta. dts, when non-nil, accumulates dominance
// tests per thread.
//
// Filter allocates per call; the Hybrid hot path uses a reusable Runner
// (see runner.go) instead.
func Filter(m point.Matrix, l1 []float64, beta, threads int, dts *stats.DTCounters) []int {
	n := m.N()
	if n == 0 {
		return nil
	}
	if beta <= 0 {
		beta = DefaultBeta
	}
	if threads <= 0 {
		threads = par.DefaultThreads()
	}

	pruned := make([]bool, n)
	queues := make([][]int, threads)

	// Pass 1: per-thread β-queues of smallest-L1 points; points that do
	// not enter a queue are tested against that thread's queue.
	par.ForRanges(threads, n, func(tid, lo, hi int) {
		h := &maxHeap{l1: l1}
		var localDTs uint64
		for i := lo; i < hi; i++ {
			if h.Len() < beta {
				heap.Push(h, i)
				continue
			}
			top := h.idx[0]
			if l1[i] < l1[top] {
				// i replaces the queue's largest point; the evicted point
				// is still tested against the updated queue below via the
				// second pass (it remains unpruned here).
				h.idx[0] = i
				heap.Fix(h, 0)
				continue
			}
			p := m.Row(i)
			for _, q := range h.idx {
				localDTs++
				if point.DominatesD(m.Row(q), p, m.D()) {
					pruned[i] = true
					break
				}
			}
		}
		queues[tid] = h.idx
		if dts != nil {
			dts.Inc(tid, localDTs)
		}
	})

	// Pass 2: every surviving point is tested against all queues.
	par.ForRanges(threads, n, func(tid, lo, hi int) {
		var localDTs uint64
		d := m.D()
		for i := lo; i < hi; i++ {
			if pruned[i] {
				continue
			}
			p := m.Row(i)
		scan:
			for _, q := range queues {
				for _, j := range q {
					if j == i {
						continue
					}
					localDTs++
					if point.DominatesD(m.Row(j), p, d) {
						pruned[i] = true
						break scan
					}
				}
			}
		}
		if dts != nil {
			dts.Inc(tid, localDTs)
		}
	})

	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !pruned[i] {
			out = append(out, i)
		}
	}
	return out
}
