package prefilter

import (
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/stats"
	"skybench/internal/verify"
)

func l1s(m point.Matrix) []float64 {
	out := make([]float64, m.N())
	m.L1All(out)
	return out
}

// The fundamental safety property: the pre-filter must never remove a
// skyline point, for any distribution and thread count.
func TestFilterPreservesSkyline(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		for _, threads := range []int{1, 2, 4} {
			m := dataset.Generate(dist, 800, 5, 3)
			surv := Filter(m, l1s(m), 0, threads, nil)
			kept := make(map[int]bool, len(surv))
			for _, i := range surv {
				kept[i] = true
			}
			for _, s := range verify.BruteForce(m) {
				if !kept[s] {
					t.Fatalf("%v t=%d: skyline point %d was pruned", dist, threads, s)
				}
			}
		}
	}
}

// On correlated data the filter should actually prune a large share of
// the input — that is its entire purpose.
func TestFilterPrunesCorrelatedData(t *testing.T) {
	m := dataset.Generate(dataset.Correlated, 2000, 4, 9)
	surv := Filter(m, l1s(m), 0, 2, nil)
	if len(surv) > m.N()/2 {
		t.Errorf("filter kept %d of %d correlated points; expected heavy pruning", len(surv), m.N())
	}
}

func TestFilterKeepsOrder(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 500, 4, 5)
	surv := Filter(m, l1s(m), 0, 3, nil)
	for i := 1; i < len(surv); i++ {
		if surv[i] <= surv[i-1] {
			t.Fatal("survivor indices not in ascending input order")
		}
	}
}

func TestFilterEmptyAndTiny(t *testing.T) {
	if got := Filter(point.Matrix{}, nil, 0, 2, nil); got != nil {
		t.Errorf("empty input: %v", got)
	}
	m := point.FromRows([][]float64{{1, 1}})
	if got := Filter(m, l1s(m), 0, 2, nil); len(got) != 1 {
		t.Errorf("single point: %v", got)
	}
}

func TestFilterDuplicatesSurvive(t *testing.T) {
	m := point.FromRows([][]float64{
		{0, 0}, {0, 0}, {0, 0}, // coincident minimal points
		{5, 5}, // dominated
	})
	surv := Filter(m, l1s(m), 2, 1, nil)
	kept := map[int]bool{}
	for _, i := range surv {
		kept[i] = true
	}
	if !kept[0] || !kept[1] || !kept[2] {
		t.Fatalf("coincident minimal points pruned: %v", surv)
	}
	if kept[3] {
		t.Fatalf("dominated point survived: %v", surv)
	}
}

func TestFilterCountsDTs(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 300, 4, 5)
	dts := stats.NewDTCounters(2)
	Filter(m, l1s(m), 0, 2, dts)
	if dts.Sum() == 0 {
		t.Error("expected nonzero dominance tests")
	}
}

func TestFilterBetaVariants(t *testing.T) {
	m := dataset.Generate(dataset.Correlated, 1000, 6, 11)
	norms := l1s(m)
	for _, beta := range []int{1, 4, 8, 32} {
		surv := Filter(m, norms, beta, 2, nil)
		kept := make(map[int]bool, len(surv))
		for _, i := range surv {
			kept[i] = true
		}
		for _, s := range verify.BruteForce(m) {
			if !kept[s] {
				t.Fatalf("beta=%d: skyline point %d pruned", beta, s)
			}
		}
	}
}
