package prefilter

import (
	"skybench/internal/par"
	"skybench/internal/point"
	"skybench/internal/stats"
)

// Runner is a reusable, allocation-free implementation of the two-pass
// pre-filter. All scratch (per-thread β-queues, the pruned bitmap, the
// gathered queue matrix, the survivor list) persists across calls, and
// both passes run on a caller-supplied persistent worker pool, so a
// steady-state Filter call performs no allocations and no goroutine
// spawns.
//
// Beyond reuse, the Runner improves on the free function in two ways: the
// union of the per-thread queues is gathered into a dense row-major
// matrix sorted by L1 norm, so pass 2 scans a contiguous run with the
// probe point's coordinates hoisted into registers (point.
// DominatedInFlatRun) and stops at the first queue point whose L1 norm is
// ≥ the probe's — by footnote 2 of the paper such a point can never
// dominate the probe. The surviving set is identical to Filter's.
type Runner struct {
	pruned []bool
	qheap  []int     // threads*beta flat queue storage (max-heaps by L1)
	qdense []float64 // threads*beta*d dense copies of the queue rows
	qcount []int
	allq   []int     // union of the queues, sorted by L1
	qrows  []float64 // gathered queue rows matching allq order
	ql1    []float64 // queue L1 norms matching allq order
	out    []int

	// Parallel-region parameters, set by Filter before each fan-out.
	m    point.Matrix
	l1   []float64
	beta int
	k    int // dominator budget: prune only points with ≥ k dominators
	nq   int
	dts  *stats.DTCounters

	pass1 func(tid, lo, hi int)
	pass2 func(tid, lo, hi int)
}

// NewRunner creates a Runner with its parallel bodies pre-bound (so
// dispatching them allocates nothing).
func NewRunner() *Runner {
	r := &Runner{}
	r.pass1 = r.runPass1
	r.pass2 = r.runPass2
	return r
}

// Filter is the reusable-scratch equivalent of the package-level Filter:
// same surviving set, same original order. The returned slice aliases the
// Runner and is valid until the next call. threads is the effective
// worker count for this run (≤ 0 or > pool size selects the pool size) —
// with a pool shared across computation contexts the caller's thread
// budget can be smaller than the pool. The passes run without a
// cancellation flag on purpose: skipping one would leave stale queue
// indices from a previous (possibly larger) dataset to be consumed below.
//
// k is the dominator budget of the run (≤ 1 selects the skyline): for a
// k-skyband computation the filter may only discard points that already
// have ≥ k dominators among the queue points, so both passes count
// dominators up to k instead of aborting on the first, and the queue
// union is pruned to its own k-skyband rather than its skyline. The
// counts themselves are discarded: queue points survive into the main
// algorithm's working set, which recounts every survivor's dominators
// exactly — carrying partial counts out of the filter would double-count
// them.
func (r *Runner) Filter(m point.Matrix, l1 []float64, beta, k int, pool *par.Pool, threads int, dts *stats.DTCounters) []int {
	n := m.N()
	if n == 0 {
		return nil
	}
	if beta <= 0 {
		beta = DefaultBeta
	}
	if k < 1 {
		k = 1
	}
	if threads <= 0 || threads > pool.Threads() {
		threads = pool.Threads()
	}

	if cap(r.pruned) < n {
		r.pruned = make([]bool, n)
	}
	r.pruned = r.pruned[:n]
	if cap(r.qheap) < threads*beta {
		r.qheap = make([]int, threads*beta)
		r.allq = make([]int, threads*beta)
	}
	r.qheap = r.qheap[:threads*beta]
	d := m.D()
	if cap(r.qdense) < threads*beta*d {
		r.qdense = make([]float64, threads*beta*d)
	}
	r.qdense = r.qdense[:threads*beta*d]
	if cap(r.qcount) < threads {
		r.qcount = make([]int, threads)
	}
	r.qcount = r.qcount[:threads]
	for i := range r.qcount {
		r.qcount[i] = 0
	}

	r.m, r.l1, r.beta, r.k, r.dts = m, l1, beta, k, dts

	// Pass 1: per-thread β-queues; non-queue points tested against the
	// local queue.
	pool.ForRangesCancel(threads, n, nil, r.pass1)

	// Gather the queue union, sort it by L1 ascending, materialize the
	// rows contiguously. The union holds ≤ threads·β points, so an
	// insertion sort is plenty.
	nq := 0
	allq := r.allq[:0]
	for tid := 0; tid < threads; tid++ {
		allq = append(allq, r.qheap[tid*beta:tid*beta+r.qcount[tid]]...)
	}
	nq = len(allq)
	for i := 1; i < nq; i++ {
		v := allq[i]
		j := i - 1
		for j >= 0 && l1[allq[j]] > l1[v] {
			allq[j+1] = allq[j]
			j--
		}
		allq[j+1] = v
	}
	// Prune the union to its own k-skyband (its skyline when k = 1): a
	// probe with ≥ k dominators in the union always has ≥ k dominators in
	// the union's k-skyband (every dominator of a band point is itself a
	// band point, by transitivity), so dropping the out-of-band queue
	// points leaves the surviving set unchanged while shrinking every
	// pass-2 scan. With t threads the union holds t·β points whose mutual
	// redundancy grows with t. L1 order means dominators precede, so
	// counting against the already-kept prefix is exact.
	flat := m.Flat()
	var unionDTs uint64
	kept := 0
	for i := 0; i < nq; i++ {
		p := allq[i]
		doms := 0
		for j := 0; j < kept && doms < k; j++ {
			if l1[allq[j]] == l1[p] {
				continue
			}
			if point.DominatesFlatCounted(flat, allq[j]*d, p*d, d, &unionDTs) {
				doms++
			}
		}
		if doms < k {
			allq[kept] = p
			kept++
		}
	}
	allq = allq[:kept]
	nq = kept
	if dts != nil {
		dts.Inc(0, unionDTs)
	}
	// qrows and ql1 are sized independently: a context warmed on a
	// high-d dataset can have qrows capacity to spare while a larger
	// queue union still outgrows ql1.
	if cap(r.qrows) < nq*d {
		r.qrows = make([]float64, nq*d)
	}
	if cap(r.ql1) < nq {
		r.ql1 = make([]float64, nq)
	}
	r.qrows, r.ql1 = r.qrows[:nq*d], r.ql1[:nq]
	for i, j := range allq {
		copy(r.qrows[i*d:(i+1)*d], flat[j*d:(j+1)*d])
		r.ql1[i] = l1[j]
	}
	r.nq = nq

	// Pass 2: every surviving point against the queue union.
	pool.ForRangesCancel(threads, n, nil, r.pass2)

	if cap(r.out) < n {
		r.out = make([]int, 0, n)
	}
	out := r.out[:0]
	for i := 0; i < n; i++ {
		if !r.pruned[i] {
			out = append(out, i)
		}
	}
	r.out = out
	return out
}

// runPass1 maintains the thread's β-queue as a max-heap over point
// indices (for the union gather) with a parallel dense row-major copy of
// the queued rows, so the per-point queue test scans β·d contiguous,
// L1-cache-resident floats through the flat run kernel instead of β
// scattered matrix rows. Heap swaps move the dense rows along.
func (r *Runner) runPass1(tid, lo, hi int) {
	m, l1, beta := r.m, r.l1, r.beta
	d := m.D()
	flat := m.Flat()
	heap := r.qheap[tid*beta : (tid+1)*beta]
	dense := r.qdense[tid*beta*d : (tid+1)*beta*d]
	cnt := 0
	var localDTs uint64
	for i := lo; i < hi; i++ {
		r.pruned[i] = false
		if cnt < beta {
			// Insert and sift up (max-heap by L1).
			heap[cnt] = i
			copy(dense[cnt*d:(cnt+1)*d], flat[i*d:(i+1)*d])
			c := cnt
			cnt++
			for c > 0 {
				p := (c - 1) / 2
				if l1[heap[p]] >= l1[heap[c]] {
					break
				}
				heapSwap(heap, dense, d, p, c)
				c = p
			}
			continue
		}
		top := heap[0]
		if l1[i] < l1[top] {
			// i replaces the queue's largest point; the evicted point is
			// re-tested in pass 2 (it remains unpruned here).
			heap[0] = i
			copy(dense[:d], flat[i*d:(i+1)*d])
			siftDown(heap, dense, d, l1)
			continue
		}
		q := flat[i*d : (i+1)*d : (i+1)*d]
		if k := r.k; k == 1 {
			if point.DominatedInFlatRun(dense, d, 0, cnt, q, l1[i], nil, nil, &localDTs) {
				r.pruned[i] = true
			}
		} else if point.CountDominatorsInFlatRun(dense, d, 0, cnt, q, l1[i], nil, nil, k, &localDTs) >= k {
			r.pruned[i] = true
		}
	}
	r.qcount[tid] = cnt
	if r.dts != nil {
		r.dts.Inc(tid, localDTs)
	}
}

func heapSwap(heap []int, dense []float64, d, a, b int) {
	heap[a], heap[b] = heap[b], heap[a]
	for k := 0; k < d; k++ {
		dense[a*d+k], dense[b*d+k] = dense[b*d+k], dense[a*d+k]
	}
}

func siftDown(heap []int, dense []float64, d int, l1 []float64) {
	n := len(heap)
	c := 0
	for {
		l, rt := 2*c+1, 2*c+2
		big := c
		if l < n && l1[heap[l]] > l1[heap[big]] {
			big = l
		}
		if rt < n && l1[heap[rt]] > l1[heap[big]] {
			big = rt
		}
		if big == c {
			return
		}
		heapSwap(heap, dense, d, c, big)
		c = big
	}
}

func (r *Runner) runPass2(tid, lo, hi int) {
	m := r.m
	d := m.D()
	flat := m.Flat()
	nq := r.nq
	ql1, qrows := r.ql1[:nq], r.qrows
	var localDTs uint64
	for i := lo; i < hi; i++ {
		if r.pruned[i] {
			continue
		}
		myL1 := r.l1[i]
		// Only queue points with strictly smaller L1 can dominate; ql1 is
		// ascending, so binary-search the cutoff and scan the prefix.
		a, b := 0, nq
		for a < b {
			mid := int(uint(a+b) >> 1)
			if ql1[mid] < myL1 {
				a = mid + 1
			} else {
				b = mid
			}
		}
		q := flat[i*d : (i+1)*d : (i+1)*d]
		if k := r.k; k == 1 {
			if point.DominatedInFlatRun(qrows, d, 0, a, q, myL1, nil, nil, &localDTs) {
				r.pruned[i] = true
			}
		} else if point.CountDominatorsInFlatRun(qrows, d, 0, a, q, myL1, nil, nil, k, &localDTs) >= k {
			r.pruned[i] = true
		}
	}
	if r.dts != nil {
		r.dts.Inc(tid, localDTs)
	}
}
