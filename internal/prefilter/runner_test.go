package prefilter

import (
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/par"
	"skybench/internal/point"
	"skybench/internal/stats"
)

// TestRunnerMatchesFilter checks that the reusable Runner selects exactly
// the same surviving set as the reference Filter, across distributions,
// thread counts, and repeated (reused) calls.
func TestRunnerMatchesFilter(t *testing.T) {
	r := NewRunner()
	for _, threads := range []int{1, 3, 8} {
		pool := par.NewPool(threads)
		for _, dist := range dataset.AllDistributions {
			for _, n := range []int{1, 17, 1000, 5000} {
				m := dataset.Generate(dist, n, 6, 99)
				l1 := make([]float64, n)
				m.L1All(l1)
				want := Filter(m, l1, 0, threads, nil)
				got := r.Filter(m, l1, 0, 1, pool, 0, nil)
				if len(got) != len(want) {
					t.Fatalf("%s n=%d t=%d: runner kept %d, filter kept %d",
						dist, n, threads, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s n=%d t=%d: survivor %d is %d, want %d",
							dist, n, threads, i, got[i], want[i])
					}
				}
			}
		}
		pool.Close()
	}
}

// TestRunnerZeroAlloc asserts the steady-state Filter call allocates
// nothing once scratch is warm.
func TestRunnerZeroAlloc(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 4000, 8, 5)
	l1 := make([]float64, m.N())
	m.L1All(l1)
	pool := par.NewPool(4)
	defer pool.Close()
	dts := stats.NewDTCounters(4)
	r := NewRunner()
	r.Filter(m, l1, 0, 1, pool, 0, dts) // warm scratch
	allocs := testing.AllocsPerRun(20, func() {
		r.Filter(m, l1, 0, 1, pool, 0, dts)
	})
	if allocs != 0 {
		t.Errorf("Runner.Filter allocates %.1f per call, want 0", allocs)
	}
}

// TestRunnerNeverPrunesSkyline re-checks the safety property on the
// Runner: no skyline point is ever pruned.
func TestRunnerNeverPrunesSkyline(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 800, 5, 31)
	l1 := make([]float64, m.N())
	m.L1All(l1)
	pool := par.NewPool(3)
	defer pool.Close()
	surv := NewRunner().Filter(m, l1, 4, 1, pool, 0, nil)
	kept := make(map[int]bool, len(surv))
	for _, i := range surv {
		kept[i] = true
	}
	for i := 0; i < m.N(); i++ {
		dominated := false
		for j := 0; j < m.N() && !dominated; j++ {
			if j != i && point.Dominates(m.Row(j), m.Row(i)) {
				dominated = true
			}
		}
		if !dominated && !kept[i] {
			t.Fatalf("skyline point %d was pruned", i)
		}
	}
}
