package shard

import (
	"context"
	"errors"
	"math/rand"
	"slices"
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/verify"
)

func TestSplit(t *testing.T) {
	for _, tc := range []struct{ n, p, want int }{
		{0, 4, 0},  // empty input → no ranges
		{10, 1, 1}, // unsharded
		{10, 3, 3}, // uneven split
		{10, 10, 10},
		{3, 8, 3},  // p clamped to n
		{10, 0, 1}, // p clamped up to 1
		{10, -2, 1},
	} {
		ranges := Split(tc.n, tc.p)
		if len(ranges) != tc.want {
			t.Fatalf("Split(%d, %d) = %d ranges, want %d", tc.n, tc.p, len(ranges), tc.want)
		}
		next := 0
		for i, r := range ranges {
			if r.Lo != next {
				t.Fatalf("Split(%d, %d): range %d starts at %d, want %d", tc.n, tc.p, i, r.Lo, next)
			}
			if r.Len() < 1 {
				t.Fatalf("Split(%d, %d): empty range %d", tc.n, tc.p, i)
			}
			next = r.Hi
		}
		if tc.n > 0 && next != tc.n {
			t.Fatalf("Split(%d, %d) covers [0, %d), want [0, %d)", tc.n, tc.p, next, tc.n)
		}
		// Balance: range lengths differ by at most one.
		lo, hi := tc.n, 0
		for _, r := range ranges {
			lo, hi = min(lo, r.Len()), max(hi, r.Len())
		}
		if tc.n > 0 && hi-lo > 1 {
			t.Fatalf("Split(%d, %d) unbalanced: lengths in [%d, %d]", tc.n, tc.p, lo, hi)
		}
	}
}

// TestMergeBandOracle is the soundness check of the shard merge: for
// every distribution, dimensionality, k, and shard count, the k-skyband
// of the union of per-shard k-skybands (with recounted dominators) must
// equal the global brute-force k-skyband with exact counts.
func TestMergeBandOracle(t *testing.T) {
	const n = 400
	for _, dist := range dataset.AllDistributions {
		for _, d := range []int{2, 5, 8} {
			m := dataset.Generate(dist, n, d, 99)
			flat := m.Flat()
			for _, k := range []int{1, 2, 4} {
				wantIdx, wantCnt := verify.BruteForceSkyband(m, k)
				for _, p := range []int{1, 2, 3, 7} {
					ranges := Split(n, p)
					// Union of per-shard brute-force bands, as global rows.
					var cand []int
					for _, r := range ranges {
						sub := point.FromFlat(flat[r.Lo*d:r.Hi*d], r.Len(), d)
						idx, _ := verify.BruteForceSkyband(sub, k)
						for _, li := range idx {
							cand = append(cand, r.Lo+li)
						}
					}
					buf := make([]float64, len(cand)*d)
					for pos, gi := range cand {
						copy(buf[pos*d:(pos+1)*d], flat[gi*d:(gi+1)*d])
					}
					var dts uint64
					keep, counts, err := MergeBand(context.Background(), buf, len(cand), d, k, &dts)
					if err != nil {
						t.Fatal(err)
					}
					got := make([]int, len(keep))
					for j, pos := range keep {
						got[j] = cand[pos]
					}
					// keep is ascending in candidate position and cand is
					// ascending (shards in order, ascending within), so got
					// is ascending like the oracle's output.
					if !slices.Equal(got, wantIdx) {
						t.Fatalf("%s d=%d k=%d p=%d: merged band %v, want %v", dist, d, k, p, got, wantIdx)
					}
					if k > 1 && !slices.Equal(counts, wantCnt) {
						t.Fatalf("%s d=%d k=%d p=%d: merged counts %v, want %v", dist, d, k, p, counts, wantCnt)
					}
					if k == 1 && counts != nil {
						t.Fatalf("%s d=%d k=%d p=%d: skyline merge returned counts", dist, d, k, p)
					}
					if len(cand) > 1 && dts == 0 {
						t.Fatalf("%s d=%d k=%d p=%d: merge reported zero dominance tests over %d candidates", dist, d, k, p, len(cand))
					}
				}
			}
		}
	}
}

// TestMergeBandDegenerate covers the edges the property loop skips.
func TestMergeBandDegenerate(t *testing.T) {
	if keep, counts, _ := MergeBand(context.Background(), nil, 0, 3, 2, nil); keep != nil || counts != nil {
		t.Fatalf("empty merge = (%v, %v), want (nil, nil)", keep, counts)
	}
	// Identical points never dominate each other: all survive any k.
	vals := []float64{1, 2, 1, 2, 1, 2}
	keep, counts, err := MergeBand(context.Background(), vals, 3, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != 3 {
		t.Fatalf("identical points: kept %v, want all 3", keep)
	}
	for _, c := range counts {
		if c != 0 {
			t.Fatalf("identical points: counts %v, want zeros", counts)
		}
	}
	// k clamps up to 1.
	keep, counts, err = MergeBand(context.Background(), vals, 3, 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != 3 || counts != nil {
		t.Fatalf("k=0 merge = (%v, %v), want all three, nil counts", keep, counts)
	}
}

// TestMergeBandCancellation: a merge whose context is already dead must
// abandon promptly with the context's error instead of finishing the
// quadratic recount.
func TestMergeBandCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, d := 400, 3
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, n*d)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	keep, counts, err := MergeBand(ctx, vals, n, d, 2, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if keep != nil || counts != nil {
		t.Fatalf("canceled merge leaked a partial result: (%v, %v)", keep, counts)
	}
}
