// Package shard partitions a dataset into contiguous row ranges and
// merges per-shard skyline / k-skyband results back into the exact
// global result.
//
// The merge is sound because per-shard results over-approximate the
// global one and the union carries every dominator that matters:
//
//   - Skyline: a global skyline point is undominated in the whole set,
//     hence undominated within its own shard, hence in that shard's
//     skyline. The union U of per-shard skylines therefore contains the
//     global skyline, and any point that dominates a member of U is
//     itself in U's own shard skyline or dominated by something that
//     is — so skyline(U) = global skyline.
//
//   - k-skyband: a point with fewer than k global dominators has fewer
//     than k dominators within its own shard, so the union U of
//     per-shard bands contains the global band. Counting dominators of
//     a candidate c over U alone is exact: every dominator p of c has
//     dom(p) ⊆ dom(c) \ {p} (transitivity), so if c has < k global
//     dominators then each of them has < k−1 and is in the global band
//     ⊆ U; and if c has ≥ k global dominators, its k smallest-L1
//     dominators each have all their own dominators strictly earlier in
//     L1 order inside dom(c), hence < k of them — all k are band
//     members, all in U, and the recount reaches k and discards c.
//
// DESIGN.md §10 states the argument in full. Like every L1-pruned path
// in this repository, the merge inherits the numeric precondition of
// DESIGN.md §9: "p dominates q ⟹ L1(p) < L1(q)" must hold, which exact
// arithmetic guarantees and float absorption can break.
package shard

import (
	"context"
	"sort"

	"skybench/internal/point"
)

// MergeKernelMax is the union size above which callers should recount
// through a full engine run over the candidate union instead of
// MergeBand's quadratic prefix scan — on low-correlation data the band
// is a large fraction of the input and the engine's partition index
// prunes the cross-candidate tests the flat scan cannot. Both merge
// call sites (the Collection fan-out and the stream's shard-aware
// rebuild) share this cutoff so the two paths cannot drift.
const MergeKernelMax = 1024

// Merge-path labels recorded in query traces and metrics: which of the
// two exact-merge implementations combined the per-shard bands. Both
// call sites and the trace layer share these strings so the vocabulary
// cannot drift.
const (
	// MergePathKernel is MergeBand's flat quadratic prefix recount
	// (unions of at most MergeKernelMax candidates).
	MergePathKernel = "kernel"
	// MergePathEngine is a full engine recompute over the candidate
	// union (larger unions).
	MergePathEngine = "engine"
)

// Range is one contiguous shard of dataset rows: [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of rows in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split partitions [0, n) into p contiguous, non-empty, balanced
// ranges. p is clamped to [1, n]; n = 0 yields no ranges. The first
// n mod p ranges are one row longer, mirroring par.staticRange.
func Split(n, p int) []Range {
	if n <= 0 {
		return nil
	}
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	out := make([]Range, p)
	size, rem := n/p, n%p
	lo := 0
	for i := range out {
		hi := lo + size
		if i < rem {
			hi++
		}
		out[i] = Range{Lo: lo, Hi: hi}
		lo = hi
	}
	return out
}

// SortByIndex orders a merged result by ascending global row index,
// keeping counts (nil for skyline queries) parallel — the documented
// deterministic order of sharded results. Both merge consumers — the
// in-process Collection fan-out and the cluster coordinator — share it
// so the ordering contract cannot drift between the two transports.
func SortByIndex(idx []int, counts []int32) {
	if counts == nil {
		sort.Ints(idx)
		return
	}
	order := make([]int, len(idx))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return idx[order[a]] < idx[order[b]] })
	idx2 := make([]int, len(idx))
	cnt2 := make([]int32, len(counts))
	for p, o := range order {
		idx2[p] = idx[o]
		cnt2[p] = counts[o]
	}
	copy(idx, idx2)
	copy(counts, cnt2)
}

// MergeBand computes the exact k-skyband of the nc candidate points
// (row-major flat values, d columns per row) — intended for candidates
// that are the union of per-shard bands, where the package comment's
// argument makes the result the exact global band with exact global
// dominator counts.
//
// It returns the positions (into the candidate ordering) of the
// surviving points, ascending, plus each survivor's dominator count
// when k ≥ 2 (nil when k ≤ 1, where every survivor has zero). When dts
// is non-nil it is advanced by the dominance tests performed.
//
// The recount is quadratic in nc, so MergeBand polls ctx between row
// batches and abandons the merge with an error wrapping ctx.Err() once
// the context is done — the merge is the only part of a sharded query
// that runs after the engine's own cancellation checkpoints, and a
// deadline that fires here must not go unnoticed.
func MergeBand(ctx context.Context, vals []float64, nc, d, k int, dts *uint64) ([]int, []int32, error) {
	if nc == 0 {
		return nil, nil, nil
	}
	if k < 1 {
		k = 1
	}

	// Sort candidates by ascending L1 so only strictly earlier rows can
	// dominate a probe (equal norms preclude strict dominance — the
	// kernels' l1 filter skips them).
	l1 := make([]float64, nc)
	for i := 0; i < nc; i++ {
		l1[i] = point.L1(vals[i*d : (i+1)*d])
	}
	order := make([]int, nc)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return l1[order[a]] < l1[order[b]] })
	sVals := make([]float64, nc*d)
	sL1 := make([]float64, nc)
	for p, i := range order {
		copy(sVals[p*d:(p+1)*d], vals[i*d:(i+1)*d])
		sL1[p] = l1[i]
	}

	var tests uint64
	kept := make([]bool, nc)
	var cnt []int32
	if k > 1 {
		cnt = make([]int32, nc)
	}
	// Cancellation checkpoint cadence: every 32 probe rows costs one
	// atomic-ish ctx.Err() per ~32·p dominance tests — noise next to the
	// recount itself, prompt enough for deadline control.
	const checkEvery = 32

	nKept := 0
	for p, i := range order {
		if p%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				if dts != nil {
					*dts += tests
				}
				return nil, nil, err
			}
		}
		q := sVals[p*d : (p+1)*d : (p+1)*d]
		c := point.CountDominatorsInFlatRun(sVals, d, 0, p, q, sL1[p], sL1, nil, k, &tests)
		if c < k {
			kept[i] = true
			if cnt != nil {
				cnt[i] = int32(c)
			}
			nKept++
		}
	}
	if dts != nil {
		*dts += tests
	}

	keep := make([]int, 0, nKept)
	var counts []int32
	if k > 1 {
		counts = make([]int32, 0, nKept)
	}
	for i := 0; i < nc; i++ {
		if kept[i] {
			keep = append(keep, i)
			if counts != nil {
				counts = append(counts, cnt[i])
			}
		}
	}
	return keep, counts, nil
}
