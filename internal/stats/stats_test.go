package stats

import (
	"strings"
	"testing"
	"time"
)

func TestPhaseString(t *testing.T) {
	if PhaseOne.String() != "phase1" {
		t.Errorf("PhaseOne = %q", PhaseOne.String())
	}
	if Phase(99).String() != "phase(99)" {
		t.Errorf("out of range = %q", Phase(99).String())
	}
}

func TestStatsTotalAndAdd(t *testing.T) {
	var a, b Stats
	a.Phases[PhaseOne] = time.Second
	a.DominanceTests = 10
	b.Phases[PhaseTwo] = 2 * time.Second
	b.DominanceTests = 5
	a.Add(&b)
	if a.Total() != 3*time.Second {
		t.Errorf("Total = %v", a.Total())
	}
	if a.DominanceTests != 15 {
		t.Errorf("DTs = %d", a.DominanceTests)
	}
}

func TestStatsScale(t *testing.T) {
	var s Stats
	s.DominanceTests = 100
	s.Phases[PhaseOne] = 10 * time.Second
	s.Scale(4)
	if s.DominanceTests != 25 || s.Phases[PhaseOne] != 2500*time.Millisecond {
		t.Errorf("after scale: %v", s.String())
	}
	s.Scale(0) // no-op
	if s.DominanceTests != 25 {
		t.Error("Scale(0) should be a no-op")
	}
}

func TestStatsString(t *testing.T) {
	var s Stats
	s.InputSize = 100
	s.SkylineSize = 7
	s.Phases[PhaseOne] = time.Millisecond
	out := s.String()
	if !strings.Contains(out, "|SKY|=7") || !strings.Contains(out, "phase1") {
		t.Errorf("String() = %q", out)
	}
}

func TestTimerAttributesPhases(t *testing.T) {
	var s Stats
	tm := NewTimer(&s)
	time.Sleep(2 * time.Millisecond)
	tm.Stop(PhaseInit)
	time.Sleep(1 * time.Millisecond)
	tm.Stop(PhaseOne)
	if s.Phases[PhaseInit] <= 0 || s.Phases[PhaseOne] <= 0 {
		t.Fatalf("phases not recorded: %v", s.String())
	}
}

func TestDTCounters(t *testing.T) {
	c := NewDTCounters(4)
	c.Inc(0, 3)
	c.Inc(3, 7)
	if c.Sum() != 10 {
		t.Fatalf("Sum = %d", c.Sum())
	}
	c.Reset()
	if c.Sum() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestDTCountersMinimumOne(t *testing.T) {
	c := NewDTCounters(0)
	c.Inc(0, 1)
	if c.Sum() != 1 {
		t.Fatal("zero-thread counters should still have one slot")
	}
}
