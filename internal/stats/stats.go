// Package stats collects the measurements the paper reports: per-phase
// wall-clock breakdowns (Figures 7–8) and dominance-test counts, the
// machine-independent work metric behind the paper's analysis.
//
// Dominance tests are counted per worker thread in padded slots and summed
// after each parallel region, so the hot loop never touches shared memory.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"skybench/internal/trace"
)

// Phase identifies one component of an algorithm's execution, matching the
// decompositions in Figures 7 and 8 of the paper.
type Phase int

const (
	PhaseInit     Phase = iota // L1 computation + sorting
	PhasePrefilt               // β-queue pre-filter (Hybrid)
	PhasePivot                 // pivot selection + partitioning (Hybrid)
	PhaseOne                   // Phase I: comparing to known skyline
	PhaseTwo                   // Phase II: comparing to peers / merge
	PhaseCompress              // α-block compression
	PhaseOther                 // everything else (structure updates, ...)
	numPhases
)

// phaseNames are the labels used by the experiment harness tables.
var phaseNames = [numPhases]string{
	"init", "prefilter", "pivot", "phase1", "phase2", "compress", "other",
}

// String returns the harness label for the phase.
func (p Phase) String() string {
	if p < 0 || p >= numPhases {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// NumPhases is the number of distinct phases tracked.
const NumPhases = int(numPhases)

// Stats aggregates the result of one algorithm run.
type Stats struct {
	// DominanceTests counts full point-to-point dominance tests performed
	// (cheap mask/L1 filter checks are not counted, mirroring the paper's
	// definition of a DT in Section IV-A).
	DominanceTests uint64
	// Phases holds wall-clock time per phase.
	Phases [NumPhases]time.Duration
	// SkylineSize is |SKY(P)|.
	SkylineSize int
	// InputSize is |P|.
	InputSize int
	// Threads is the thread count the run was configured with.
	Threads int
	// Cost holds the extended work counters behind query tracing
	// (prefilter prune hits, per-phase survivors, sort time).
	Cost trace.Cost
}

// Total returns the summed wall-clock time across phases.
func (s *Stats) Total() time.Duration {
	var t time.Duration
	for _, d := range s.Phases {
		t += d
	}
	return t
}

// Add accumulates other into s (used when averaging repeated runs).
func (s *Stats) Add(other *Stats) {
	s.DominanceTests += other.DominanceTests
	for i := range s.Phases {
		s.Phases[i] += other.Phases[i]
	}
	s.Cost.Add(other.Cost)
}

// Scale divides all additive metrics by k (completing an average).
func (s *Stats) Scale(k int) {
	if k <= 1 {
		return
	}
	s.DominanceTests /= uint64(k)
	for i := range s.Phases {
		s.Phases[i] /= time.Duration(k)
	}
	s.Cost.Scale(k)
}

// String renders a compact one-line summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d |SKY|=%d t=%d DTs=%d total=%v",
		s.InputSize, s.SkylineSize, s.Threads, s.DominanceTests, s.Total().Round(time.Microsecond))
	type pv struct {
		p Phase
		d time.Duration
	}
	var parts []pv
	for p := Phase(0); p < numPhases; p++ {
		if s.Phases[p] > 0 {
			parts = append(parts, pv{p, s.Phases[p]})
		}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].d > parts[j].d })
	for _, x := range parts {
		fmt.Fprintf(&b, " %s=%v", x.p, x.d.Round(time.Microsecond))
	}
	return b.String()
}

// Timer measures phases sequentially: call Start at a phase boundary, then
// Stop(phase) to attribute elapsed time since the previous boundary.
type Timer struct {
	s    *Stats
	last time.Time
}

// NewTimer begins timing against s.
func NewTimer(s *Stats) *Timer { return &Timer{s: s, last: time.Now()} }

// StartTimer is NewTimer returning a value, so hot paths that reuse a
// Context can time phases without a per-run allocation.
func StartTimer(s *Stats) Timer { return Timer{s: s, last: time.Now()} }

// Stop attributes the time since the previous boundary to phase and
// re-arms the timer.
func (t *Timer) Stop(p Phase) {
	now := time.Now()
	t.s.Phases[p] += now.Sub(t.last)
	t.last = now
}

// DTCounters are per-thread dominance-test counters padded to cache-line
// size so concurrent workers never share a line.
type DTCounters struct {
	slots []paddedCounter
}

type paddedCounter struct {
	n uint64
	_ [7]uint64 // pad to 64 bytes
}

// NewDTCounters allocates counters for t threads (minimum 1).
func NewDTCounters(t int) *DTCounters {
	if t < 1 {
		t = 1
	}
	return &DTCounters{slots: make([]paddedCounter, t)}
}

// Inc adds k dominance tests to thread tid's slot. Only tid itself may
// call Inc for its slot during a parallel region.
func (c *DTCounters) Inc(tid int, k uint64) { c.slots[tid].n += k }

// Threads returns the number of per-thread slots.
func (c *DTCounters) Threads() int { return len(c.slots) }

// Sum returns the total across threads. Call only outside parallel
// regions.
func (c *DTCounters) Sum() uint64 {
	var s uint64
	for i := range c.slots {
		s += c.slots[i].n
	}
	return s
}

// Reset zeroes all slots.
func (c *DTCounters) Reset() {
	for i := range c.slots {
		c.slots[i].n = 0
	}
}
