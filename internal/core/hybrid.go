package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"skybench/internal/par"
	"skybench/internal/pivot"
	"skybench/internal/point"
	"skybench/internal/prefilter"
	"skybench/internal/stats"
)

// DefaultAlphaHybrid is the α-block size for Hybrid. The paper finds
// α = 2^10 optimal (Section VII-C1, Figure 8).
const DefaultAlphaHybrid = 1 << 10

// HybridOptions configures a Hybrid run. The zero value selects
// GOMAXPROCS threads, the paper's default α, β, and the Median pivot.
type HybridOptions struct {
	// Threads is the number of worker goroutines (≤ 0 means GOMAXPROCS).
	Threads int
	// Alpha is the block size α (≤ 0 selects DefaultAlphaHybrid).
	Alpha int
	// Pivot selects the level-1 pivot strategy (default Median).
	Pivot pivot.Strategy
	// Beta is the pre-filter queue size (≤ 0 selects the paper's β = 8).
	Beta int
	// Seed drives the Random pivot strategy deterministically.
	Seed int64
	// NoPrefilter disables the β-queue pre-filter (ablation).
	NoPrefilter bool
	// NoMS disables the M(S) structure: Phase I scans the skyline
	// linearly with level-1 mask filtering only (ablation).
	NoMS bool
	// NoLevel2 disables level-2 re-partitioning inside M(S) (ablation).
	NoLevel2 bool
	// NoPhase2Split disables the three-loop decomposition of Phase II:
	// every preceding peer gets a full dominance test (ablation).
	NoPhase2Split bool
	// Stats, when non-nil, receives phase timings and DT counts.
	Stats *stats.Stats
	// Progressive, when non-nil, is invoked after each α-block with the
	// original indices of the skyline points that block confirmed.
	Progressive func(confirmed []int)
}

// Hybrid computes SKY(m) with the paper's full Hybrid algorithm and
// returns original row indices in confirmation order.
//
// Hybrid is Q-Flow plus point-based partitioning: after a cheap parallel
// pre-filter, the data is partitioned into 2^d regions around a pivot,
// sorted by (level, mask, L1), and processed in α-blocks against the
// global skyline indexed by the two-level M(S) structure, which lets
// Phase I skip entire incomparable regions and Phase II decompose its
// peer scan into three loops with different invariants.
func Hybrid(m point.Matrix, opt HybridOptions) []int {
	n := m.N()
	if n == 0 {
		return nil
	}
	d := m.D()
	if d > point.MaxDims {
		panic(fmt.Sprintf("core: Hybrid supports at most %d dimensions, got %d", point.MaxDims, d))
	}
	threads := opt.Threads
	if threads <= 0 {
		threads = par.DefaultThreads()
	}
	alpha := opt.Alpha
	if alpha <= 0 {
		alpha = DefaultAlphaHybrid
	}
	st := opt.Stats
	if st == nil {
		st = &stats.Stats{}
	}
	st.InputSize = n
	st.Threads = threads
	dts := stats.NewDTCounters(threads)
	timer := stats.NewTimer(st)

	// Initialization: L1 norms in parallel.
	l1 := make([]float64, n)
	par.ForRanges(threads, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			l1[i] = point.L1(m.Row(i))
		}
	})
	timer.Stop(stats.PhaseInit)

	// Pre-filter: discard points dominated by the β-queues (VI-A1).
	var surv []int
	if opt.NoPrefilter {
		surv = make([]int, n)
		for i := range surv {
			surv[i] = i
		}
	} else {
		surv = prefilter.Filter(m, l1, opt.Beta, threads, dts)
	}
	timer.Stop(stats.PhasePrefilt)

	// Materialize survivors, select the pivot, partition (VI-A2).
	work := m.Gather(surv)
	ns := work.N()
	wl1 := make([]float64, ns)
	for i, j := range surv {
		wl1[i] = l1[j]
	}
	pv := pivot.Select(opt.Pivot, work, wl1, opt.Seed)
	wmask := make([]point.Mask, ns)
	keys := make([]uint64, ns)
	par.ForRanges(threads, ns, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			wmask[i] = point.ComputeMask(work.Row(i), pv)
			keys[i] = wmask[i].CompoundKey(d)
		}
	})
	timer.Stop(stats.PhasePivot)

	// Three-key sort: level, mask (via the compound key), then L1 (VI-A3).
	idx := make([]int, ns)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if keys[ia] != keys[ib] {
			return keys[ia] < keys[ib]
		}
		return wl1[ia] < wl1[ib]
	})
	sorted := work.Gather(idx)
	sl1 := make([]float64, ns)
	smask := make([]point.Mask, ns)
	sorig := make([]int, ns)
	for i, j := range idx {
		sl1[i] = wl1[j]
		smask[i] = wmask[j]
		sorig[i] = surv[j]
	}
	work, wl1, wmask = sorted, sl1, smask
	timer.Stop(stats.PhaseInit)

	sky := newSkylineStore(d)
	flags := make([]uint32, alpha)
	level2 := !opt.NoLevel2

	for lo := 0; lo < ns; lo += alpha {
		hi := lo + alpha
		if hi > ns {
			hi = ns
		}
		block := hi - lo
		f := flags[:block]
		for i := range f {
			f[i] = 0
		}

		// Phase I (parallel, Algorithm 3): test block points against the
		// global skyline through M(S).
		par.ForRanges(threads, block, func(tid, blo, bhi int) {
			var local uint64
			for i := blo; i < bhi; i++ {
				q := work.Row(lo + i)
				var dominated bool
				if opt.NoMS {
					dominated = sky.dominatedFlat(q, wmask[lo+i], &local)
				} else {
					dominated = sky.dominatedHybrid(q, wmask[lo+i], level2, &local)
				}
				if dominated {
					f[i] = 1
				}
			}
			dts.Inc(tid, local)
		})
		timer.Stop(stats.PhaseOne)

		surv1 := compress(work, wl1, sorig, wmask, lo, block, f)
		timer.Stop(stats.PhaseCompress)

		// Phase II (parallel, Algorithm 4): three-loop peer comparison.
		f = f[:surv1]
		par.ForRanges(threads, surv1, func(tid, blo, bhi int) {
			var local uint64
			for i := blo; i < bhi; i++ {
				var dominated bool
				if opt.NoPhase2Split {
					dominated = comparedToPeersNaive(work, wl1, lo, i, f, d, &local)
				} else {
					dominated = comparedToPeers(work, wl1, wmask, lo, i, f, d, &local)
				}
				if dominated {
					atomic.StoreUint32(&f[i], 1)
				}
			}
			dts.Inc(tid, local)
		})
		timer.Stop(stats.PhaseTwo)

		final := compress(work, wl1, sorig, wmask, lo, surv1, f)
		timer.Stop(stats.PhaseCompress)

		// Update S and M(S) (Algorithm 2) — sequential O(α) work.
		firstNew := sky.size()
		sky.update(work, wl1, sorig, wmask, lo, final, level2)
		if opt.Progressive != nil && final > 0 {
			opt.Progressive(sky.orig[firstNew:])
		}
		timer.Stop(stats.PhaseOther)
	}

	st.SkylineSize = sky.size()
	st.DominanceTests = dts.Sum()
	return sky.orig
}

// comparedToPeersNaive is the no-decomposition ablation of Phase II:
// every unpruned preceding peer is tested with a full dominance test.
func comparedToPeersNaive(work point.Matrix, wl1 []float64, lo, me int, f []uint32, dim int, dts *uint64) bool {
	q := work.Row(lo + me)
	myL1 := wl1[lo+me]
	for i := 0; i < me; i++ {
		if atomic.LoadUint32(&f[i]) != 0 {
			continue
		}
		if wl1[lo+i] == myL1 {
			continue
		}
		*dts++
		if point.DominatesD(work.Row(lo+i), q, dim) {
			return true
		}
	}
	return false
}

// comparedToPeers implements Algorithm 4 (compareToPeers): test block
// point me against the surviving peers that precede it, in three loops.
// Loop 1 covers peers in strictly lower levels, where the mask subset
// test filters region-wise incomparability. Loop 2 skips peers of the
// same level but a different mask — necessarily incomparable. Loop 3
// covers peers in me's own partition, where a full DT is required.
// Pruned peers are skipped via their atomic flags (sound by
// transitivity: a pruned peer's dominator also precedes me).
func comparedToPeers(work point.Matrix, wl1 []float64, wmask []point.Mask, lo, me int, f []uint32, dim int, dts *uint64) bool {
	q := work.Row(lo + me)
	myMask := wmask[lo+me]
	myLevel := myMask.Level()
	myL1 := wl1[lo+me]
	i := 0
	// Loop 1: lower levels — cheap filter, then DT.
	for ; i < me && wmask[lo+i].Level() < myLevel; i++ {
		if atomic.LoadUint32(&f[i]) != 0 {
			continue
		}
		if !wmask[lo+i].Subset(myMask) {
			continue
		}
		if wl1[lo+i] == myL1 {
			continue
		}
		*dts++
		if point.DominatesD(work.Row(lo+i), q, dim) {
			return true
		}
	}
	// Loop 2: same level, different mask — incomparable, skip outright.
	for ; i < me && wmask[lo+i] != myMask; i++ {
	}
	// Loop 3: same partition — full DTs.
	for ; i < me; i++ {
		if atomic.LoadUint32(&f[i]) != 0 {
			continue
		}
		if wl1[lo+i] == myL1 {
			continue
		}
		*dts++
		if point.DominatesD(work.Row(lo+i), q, dim) {
			return true
		}
	}
	return false
}
