package core

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"skybench/internal/pivot"
	"skybench/internal/point"
	"skybench/internal/stats"
)

// DefaultAlphaHybrid is the α-block size for Hybrid. The paper finds
// α = 2^10 optimal (Section VII-C1, Figure 8).
const DefaultAlphaHybrid = 1 << 10

// HybridOptions configures a Hybrid run. The zero value selects
// GOMAXPROCS threads, the paper's default α, β, and the Median pivot.
type HybridOptions struct {
	// Threads is the number of worker goroutines (≤ 0 means GOMAXPROCS).
	Threads int
	// Alpha is the block size α (≤ 0 selects DefaultAlphaHybrid).
	Alpha int
	// Pivot selects the level-1 pivot strategy (default Median).
	Pivot pivot.Strategy
	// Beta is the pre-filter queue size (≤ 0 selects the paper's β = 8).
	Beta int
	// Seed drives the Random pivot strategy deterministically.
	Seed int64
	// NoPrefilter disables the β-queue pre-filter (ablation).
	NoPrefilter bool
	// NoMS disables the M(S) structure: Phase I scans the skyline
	// linearly with level-1 mask filtering only (ablation).
	NoMS bool
	// NoLevel2 disables level-2 re-partitioning inside M(S) (ablation).
	NoLevel2 bool
	// NoPhase2Split disables the three-loop decomposition of Phase II:
	// every preceding peer gets a full dominance test (ablation).
	NoPhase2Split bool
	// SkybandK generalizes the computation to the k-skyband: the result
	// is every point dominated by fewer than SkybandK others, with exact
	// per-point dominator counts available from Context.Counts. Values
	// ≤ 1 select the plain skyline path, which is bit-identical to a
	// zero SkybandK.
	SkybandK int
	// Stats, when non-nil, receives phase timings and DT counts.
	Stats *stats.Stats
	// Progressive, when non-nil, is invoked after each α-block with the
	// original indices of the skyline points that block confirmed.
	Progressive func(confirmed []int)
	// Cancel, when non-nil, is polled at every α-block boundary and
	// periodically inside the parallel phase bodies; once it reads true
	// the run abandons its remaining work and returns an unspecified
	// partial result, which the caller must discard.
	Cancel *atomic.Bool
}

// Hybrid computes SKY(m) with the paper's full Hybrid algorithm and
// returns original row indices in confirmation order. It is a convenience
// wrapper that runs a throwaway Context; services answering repeated
// queries should hold a Context and call its Hybrid method, which reuses
// all scratch state.
func Hybrid(m point.Matrix, opt HybridOptions) []int {
	c := NewContext()
	defer c.Close()
	return c.Hybrid(m, opt)
}

// Hybrid computes SKY(m) with the paper's full Hybrid algorithm and
// returns original row indices in confirmation order. The result aliases
// Context storage and is valid until the next call on c.
//
// Hybrid is Q-Flow plus point-based partitioning: after a cheap parallel
// pre-filter, the data is partitioned into 2^d regions around a pivot,
// sorted by (level, mask, L1), and processed in α-blocks against the
// global skyline indexed by the two-level M(S) structure, which lets
// Phase I skip entire incomparable regions and Phase II decompose its
// peer scan into three loops with different invariants.
func (c *Context) Hybrid(m point.Matrix, opt HybridOptions) []int {
	n := m.N()
	if n == 0 {
		return nil
	}
	d := m.D()
	if d > point.MaxDims {
		panic(fmt.Sprintf("core: Hybrid supports at most %d dimensions, got %d", point.MaxDims, d))
	}
	alpha := opt.Alpha
	if alpha <= 0 {
		alpha = DefaultAlphaHybrid
	}
	k := opt.SkybandK
	if k < 1 {
		k = 1
	}
	c.k = k
	c.lastCounts = nil
	st := opt.Stats
	if st == nil {
		c.st = stats.Stats{}
		st = &c.st
	}
	st.InputSize = n
	c.ensure(opt.Threads)
	st.Threads = c.tEff
	c.cancel = opt.Cancel
	timer := stats.StartTimer(st)

	// Initialization: L1 norms in parallel.
	c.l1 = grow(c.l1, n)
	c.curM = m
	c.d = d
	c.forRanges(n, c.l1Body)
	timer.Stop(stats.PhaseInit)

	// Pre-filter: discard points dominated by the β-queues (VI-A1).
	var surv []int
	if opt.NoPrefilter {
		c.seq = grow(c.seq, n)
		for i := range c.seq {
			c.seq[i] = i
		}
		surv = c.seq
	} else {
		surv = c.pf.Filter(m, c.l1, opt.Beta, k, c.pool, c.tEff, c.dts)
	}
	st.Cost.PrefilterPruned = n - len(surv)
	timer.Stop(stats.PhasePrefilt)
	if c.canceled() {
		return nil
	}

	// Materialize survivors into the reusable working set, select the
	// pivot, partition (VI-A2).
	ns := len(surv)
	c.work = grow(c.work, ns*d)
	c.wl1 = grow(c.wl1, ns)
	c.worig = grow(c.worig, ns)
	c.wmask = grow(c.wmask, ns)
	c.keys = grow(c.keys, ns)
	wk := point.FromFlat(c.work, ns, d)
	c.curWork = wk
	c.curSurv = surv
	c.forRanges(ns, c.gatherBody)

	c.pivotV = grow(c.pivotV, d)
	c.pivotC = grow(c.pivotC, pivot.MedianScratchLen(ns))
	c.pv = pivot.SelectInto(c.pivotV, c.pivotC, opt.Pivot, wk, c.wl1, opt.Seed)
	c.forRanges(ns, c.maskBody)
	timer.Stop(stats.PhasePivot)

	// Three-key sort (VI-A3): parallel radix on the compound
	// (level, mask) key, per-run L1 sorts, then one in-place permutation
	// apply over the working set. The sort's share of the init phase is
	// measured separately for the trace/cost model.
	sortStart := time.Now()
	keyBits := d + bits.Len(uint(d))
	idx := c.radixSortIdx(ns, keyBits)
	if c.canceled() {
		return nil
	}
	c.sortRunsByL1(idx)
	applyPerm(idx, c.work, d, c.wl1, c.wmask, c.worig)
	st.Cost.Sort += time.Since(sortStart)
	timer.Stop(stats.PhaseInit)

	c.sky.reset(d)
	c.flags = grow(c.flags, alpha)
	c.level2 = !opt.NoLevel2
	c.noMS = opt.NoMS
	c.noSplit = opt.NoPhase2Split
	p1, p2 := c.p1Body, c.p2Body
	var bcnt []int32
	if k > 1 {
		c.bcnt = grow(c.bcnt, alpha)
		bcnt = c.bcnt
		p1, p2 = c.p1kBody, c.p2kBody
	}

	for lo := 0; lo < ns; lo += alpha {
		// Cancellation checkpoint: one poll per α-block keeps the
		// between-poll work bounded by a block's worth of phases.
		if c.canceled() {
			return nil
		}
		hi := lo + alpha
		if hi > ns {
			hi = ns
		}
		block := hi - lo
		f := c.flags[:block]
		for i := range f {
			f[i] = 0
		}
		c.blockLo = lo
		c.blockF = f
		if bcnt != nil {
			c.blockC = bcnt[:block]
		}

		// Phase I (parallel, Algorithm 3): test block points against the
		// global skyline through M(S).
		c.forRanges(block, p1)
		timer.Stop(stats.PhaseOne)

		surv1 := compress(wk, c.wl1, c.worig, c.wmask, bcnt, lo, block, f)
		st.Cost.Phase1Survivors += surv1
		timer.Stop(stats.PhaseCompress)

		// Phase II (parallel, Algorithm 4): three-loop peer comparison.
		c.blockF = f[:surv1]
		c.forRanges(surv1, p2)
		timer.Stop(stats.PhaseTwo)

		final := compress(wk, c.wl1, c.worig, c.wmask, bcnt, lo, surv1, f)
		st.Cost.Phase2Survivors += final
		timer.Stop(stats.PhaseCompress)

		// Update S and M(S) (Algorithm 2) — sequential O(α) work.
		firstNew := c.sky.size()
		c.sky.update(wk, c.wl1, c.worig, c.wmask, bcnt, lo, final, c.level2)
		if opt.Progressive != nil && final > 0 {
			opt.Progressive(c.sky.orig[firstNew:])
		}
		timer.Stop(stats.PhaseOther)
	}

	st.SkylineSize = c.sky.size()
	st.DominanceTests = c.dts.Sum()
	if k > 1 {
		c.lastCounts = c.sky.counts
	}
	return c.sky.orig
}

// countPeersNaive is the counting form of comparedToPeersNaive: every
// unpruned preceding peer contributes to the dominator count, capped at
// budget.
func countPeersNaive(wf []float64, wl1 []float64, lo, me int, f []uint32, dim, budget int, dts *uint64) int {
	rows := wf[lo*dim:]
	off := me * dim
	q := rows[off : off+dim : off+dim]
	return point.CountDominatorsInFlatRun(rows, dim, 0, me, q, wl1[lo+me], wl1[lo:], f, budget, dts)
}

// countPeers is the counting form of comparedToPeers: the same
// three-loop decomposition of Algorithm 4, accumulating the probe's
// dominator count among preceding surviving peers instead of aborting
// on the first hit, and stopping once the count reaches budget. Pruned
// peers are skipped — sound for counting, not just for the boolean
// test, because a pruned peer has ≥ k dominators and therefore cannot
// be a band point, and only band points contribute to a band member's
// exact count (DESIGN.md §9).
func countPeers(wf []float64, wl1 []float64, wmask []point.Mask, lo, me int, f []uint32, dim, budget int, dts *uint64) int {
	qOff := (lo + me) * dim
	q := wf[qOff : qOff+dim : qOff+dim]
	myMask := wmask[lo+me]
	myLevel := myMask.Level()
	myL1 := wl1[lo+me]
	c := 0
	i := 0
	// Loop 1: lower levels — cheap filter, then DT.
	for ; i < me && wmask[lo+i].Level() < myLevel; i++ {
		if atomic.LoadUint32(&f[i]) != 0 {
			continue
		}
		if !wmask[lo+i].Subset(myMask) {
			continue
		}
		if wl1[lo+i] == myL1 {
			continue
		}
		if point.DominatesFlatCounted(wf, (lo+i)*dim, qOff, dim, dts) {
			c++
			if c >= budget {
				return c
			}
		}
	}
	// Loop 2: same level, different mask — incomparable, skip outright.
	for ; i < me && wmask[lo+i] != myMask; i++ {
	}
	// Loop 3: same partition — a contiguous counting run.
	if i < me {
		c += point.CountDominatorsInFlatRun(wf[lo*dim:], dim, i, me, q, myL1, wl1[lo:], f, budget-c, dts)
	}
	return c
}

// comparedToPeersNaive is the no-decomposition ablation of Phase II:
// every unpruned preceding peer is tested with a full dominance test
// (through the flat run kernel, which applies the same flag and L1
// skips).
func comparedToPeersNaive(wf []float64, wl1 []float64, lo, me int, f []uint32, dim int, dts *uint64) bool {
	rows := wf[lo*dim:]
	off := me * dim
	q := rows[off : off+dim : off+dim]
	return point.DominatedInFlatRun(rows, dim, 0, me, q, wl1[lo+me], wl1[lo:], f, dts)
}

// comparedToPeers implements Algorithm 4 (compareToPeers): test block
// point me against the surviving peers that precede it, in three loops.
// Loop 1 covers peers in strictly lower levels, where the mask subset
// test filters region-wise incomparability. Loop 2 skips peers of the
// same level but a different mask — necessarily incomparable. Loop 3
// covers peers in me's own partition — a contiguous run handed to the
// flat run kernel with full dominance tests. Pruned peers are skipped via
// their atomic flags (sound by transitivity: a pruned peer's dominator
// also precedes me).
func comparedToPeers(wf []float64, wl1 []float64, wmask []point.Mask, lo, me int, f []uint32, dim int, dts *uint64) bool {
	qOff := (lo + me) * dim
	q := wf[qOff : qOff+dim : qOff+dim]
	myMask := wmask[lo+me]
	myLevel := myMask.Level()
	myL1 := wl1[lo+me]
	i := 0
	// Loop 1: lower levels — cheap filter, then DT.
	for ; i < me && wmask[lo+i].Level() < myLevel; i++ {
		if atomic.LoadUint32(&f[i]) != 0 {
			continue
		}
		if !wmask[lo+i].Subset(myMask) {
			continue
		}
		if wl1[lo+i] == myL1 {
			continue
		}
		if point.DominatesFlatCounted(wf, (lo+i)*dim, qOff, dim, dts) {
			return true
		}
	}
	// Loop 2: same level, different mask — incomparable, skip outright.
	for ; i < me && wmask[lo+i] != myMask; i++ {
	}
	// Loop 3: same partition — a contiguous run of full DTs. The equal-L1
	// filter stays on here: unlike Q-Flow's global scans, ties cluster
	// inside a partition (coincident points share a mask), and the block's
	// L1 slice is already cache-resident.
	if i < me {
		return point.DominatedInFlatRun(wf[lo*dim:], dim, i, me, q, myL1, wl1[lo:], f, dts)
	}
	return false
}
