package core

import (
	"sync/atomic"

	"skybench/internal/point"
)

// Parallel three-key sort (Section VI-A3). The seed implementation used a
// sequential sort.Slice over (level, mask, L1) — the single-threaded
// initialization bottleneck the paper's Figure 7 phase breakdown calls
// out. Here the compound (level, mask) key is sorted with a parallel
// stable LSD radix sort (per-thread histograms, static ranges, exclusive
// scatter slots), and the L1 order inside each equal-key run is restored
// with per-run quicksort/insertion sorts fanned out over the pool. The
// same radix machinery sorts Q-Flow's input by the order-preserving bit
// transform of the L1 norm, making both inits O(n).

// radixW is the digit width per LSD pass. 11 bits keeps the per-thread
// histograms (threads × 2048 ints) small enough that the sequential
// prefix sum stays negligible next to the scatter passes.
const radixW = 11

const radixBuckets = 1 << radixW

// storeFlag marks a block point dominated. Atomic because Phase II
// readers (the run kernels' skip loads) race with it by design.
func storeFlag(f *uint32) { atomic.StoreUint32(f, 1) }

// floatKey maps a float64 to a uint64 whose unsigned order matches the
// float's total order — point.OrderBits, shared with the partition-mask
// kernel so the two transforms can never diverge.
func floatKey(f float64) uint64 { return point.OrderBits(f) }

// radixSortIdx sorts the identity permutation of [0, n) stably by
// c.keys[i] restricted to keyBits, using ceil(keyBits/radixW) parallel
// scatter passes. It returns the sorted permutation, which aliases either
// c.idx or c.idxT.
//
// Cancellation safety: a canceled fan-out leaves its output buffer with
// stale values from a previous run, which downstream code indexes with —
// so each pass checks the flag before consuming the previous fan-out's
// output and the function only ever returns a buffer that holds a
// complete, valid permutation of [0, n). Callers must still check
// canceled() before trusting the *order* of the result.
func (c *Context) radixSortIdx(n, keyBits int) []int {
	c.idx = grow(c.idx, n)
	c.idxT = grow(c.idxT, n)
	src, dst := c.idx, c.idxT
	for i := range src {
		src[i] = i
	}
	t := c.tEff
	if t > n {
		t = n
	}
	c.rt = t
	c.hist = grow(c.hist, t*radixBuckets)
	passes := (keyBits + radixW - 1) / radixW
	for p := 0; p < passes; p++ {
		c.rsrc, c.rdst = src, dst
		c.rshift = uint(p * radixW)
		c.forRanges(n, c.histBody)
		// A canceled histogram fan-out leaves stale counts whose prefix
		// sums would scatter out of range; src still holds a valid
		// permutation, so hand it back untouched.
		if c.canceled() {
			return src
		}
		// Exclusive prefix over (digit-major, thread-minor) so each
		// thread scatters its static range into exclusive slots.
		sum := 0
		hist := c.hist
		for b := 0; b < radixBuckets; b++ {
			for w := 0; w < t; w++ {
				v := hist[w*radixBuckets+b]
				hist[w*radixBuckets+b] = sum
				sum += v
			}
		}
		c.forRanges(n, c.scatBody)
		// A partially-skipped scatter leaves dst incomplete; src is the
		// last fully-written permutation.
		if c.canceled() {
			return src
		}
		src, dst = dst, src
	}
	return src
}

func (c *Context) runHist(tid, lo, hi int) {
	hist := c.hist[tid*radixBuckets : (tid+1)*radixBuckets]
	for i := range hist {
		hist[i] = 0
	}
	keys, src := c.keys, c.rsrc
	shift := c.rshift
	for i := lo; i < hi; i++ {
		hist[(keys[src[i]]>>shift)&(radixBuckets-1)]++
	}
}

func (c *Context) runScatter(tid, lo, hi int) {
	hist := c.hist[tid*radixBuckets : (tid+1)*radixBuckets]
	keys, src, dst := c.keys, c.rsrc, c.rdst
	shift := c.rshift
	for i := lo; i < hi; i++ {
		v := src[i]
		b := (keys[v] >> shift) & (radixBuckets - 1)
		dst[hist[b]] = v
		hist[b]++
	}
}

// sortRunsByL1 restores ascending L1 order inside each run of equal
// compound keys (the third key of the three-key sort), in parallel over
// the runs. Correctness of Phase II depends on this order: within a
// partition a dominator always has a strictly smaller L1 norm, so
// ascending L1 guarantees dominators precede their victims.
func (c *Context) sortRunsByL1(idx []int) {
	keys := c.keys
	runs := c.runs[:0]
	start := 0
	for i := 1; i <= len(idx); i++ {
		if i == len(idx) || keys[idx[i]] != keys[idx[start]] {
			if i-start > 1 {
				runs = append(runs, start, i)
			}
			start = i
		}
	}
	c.runs = runs
	c.rsrc = idx
	c.pool.ForChunkedCancel(c.tEff, len(runs)/2, 0, c.cancel, c.runBody)
}

func (c *Context) runSortRun(i int) {
	a, b := c.runs[2*i], c.runs[2*i+1]
	sortIdxByFloat(c.rsrc[a:b], c.wl1)
}

// sortIdxByFloat sorts idx ascending by key[idx[i]]: iterative quicksort
// with median-of-three pivots and insertion sort below a small cutoff.
// Allocation-free (the work stack lives on the goroutine stack).
func sortIdxByFloat(idx []int, key []float64) {
	var stack [64][2]int
	top := 0
	stack[0] = [2]int{0, len(idx)}
	for top >= 0 {
		a, b := stack[top][0], stack[top][1]
		top--
		for b-a > 16 {
			mid := int(uint(a+b) >> 1)
			// Median-of-three into mid.
			if key[idx[mid]] < key[idx[a]] {
				idx[mid], idx[a] = idx[a], idx[mid]
			}
			if key[idx[b-1]] < key[idx[mid]] {
				idx[b-1], idx[mid] = idx[mid], idx[b-1]
				if key[idx[mid]] < key[idx[a]] {
					idx[mid], idx[a] = idx[a], idx[mid]
				}
			}
			p := key[idx[mid]]
			i, j := a, b-1
			for i <= j {
				for key[idx[i]] < p {
					i++
				}
				for key[idx[j]] > p {
					j--
				}
				if i <= j {
					idx[i], idx[j] = idx[j], idx[i]
					i++
					j--
				}
			}
			// Recurse into the smaller side, loop on the larger.
			if j-a < b-i {
				if i < b {
					top++
					stack[top] = [2]int{i, b}
				}
				b = j + 1
			} else {
				if a < j+1 {
					top++
					stack[top] = [2]int{a, j + 1}
				}
				a = i
			}
		}
		// Insertion sort the remainder.
		for i := a + 1; i < b; i++ {
			v := idx[i]
			kv := key[v]
			j := i - 1
			for j >= a && key[idx[j]] > kv {
				idx[j+1] = idx[j]
				j--
			}
			idx[j+1] = v
		}
	}
}

// applyPerm rearranges the working set in place so that row i becomes the
// old row perm[i], moving the matrix rows and the parallel metadata
// arrays (L1, mask when non-nil, original index) together by following
// permutation cycles. perm is consumed (entries are overwritten with
// negative visit markers). This replaces the seed implementation's second
// Gather — no allocation and no second matrix buffer.
func applyPerm(perm []int, flat []float64, d int, wl1 []float64, wmask []point.Mask, worig []int) {
	var tmp [point.MaxDims + 1]float64
	for s := range perm {
		k := perm[s]
		if k < 0 || k == s {
			continue
		}
		copy(tmp[:d], flat[s*d:(s+1)*d])
		tl1 := wl1[s]
		to := worig[s]
		var tm point.Mask
		if wmask != nil {
			tm = wmask[s]
		}
		j := s
		for {
			k = perm[j]
			perm[j] = ^k
			if k == s {
				copy(flat[j*d:(j+1)*d], tmp[:d])
				wl1[j] = tl1
				worig[j] = to
				if wmask != nil {
					wmask[j] = tm
				}
				break
			}
			copy(flat[j*d:(j+1)*d], flat[k*d:(k+1)*d])
			wl1[j] = wl1[k]
			worig[j] = worig[k]
			if wmask != nil {
				wmask[j] = wmask[k]
			}
			j = k
		}
	}
}
