package core

import (
	"fmt"
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/pivot"
	"skybench/internal/point"
	"skybench/internal/verify"
)

// checkBand asserts that (idx, counts) is exactly the k-skyband of m
// with exact dominator counts.
func checkBand(t *testing.T, m point.Matrix, k int, idx []int, counts []int32, label string) {
	t.Helper()
	wantIdx, wantCnt := verify.BruteForceSkyband(m, k)
	if !verify.SameBand(idx, counts, wantIdx, wantCnt) {
		t.Fatalf("%s: k=%d band mismatch: got %d points %v (counts %v), want %d points %v (counts %v)",
			label, k, len(idx), idx, counts, len(wantIdx), wantIdx, wantCnt)
	}
}

func TestHybridSkybandMatchesOracle(t *testing.T) {
	c := NewContext()
	defer c.Close()
	for _, dist := range dataset.AllDistributions {
		for _, d := range []int{2, 4, 7, 8} {
			for _, n := range []int{1, 17, 400, 1500} {
				m := dataset.Generate(dist, n, d, 99)
				for _, k := range []int{1, 2, 3, 4, 8, n, n + 5} {
					for _, threads := range []int{1, 4} {
						idx := c.Hybrid(m, HybridOptions{Threads: threads, Alpha: 64, SkybandK: k})
						counts := c.Counts()
						if k <= 1 {
							if counts != nil {
								t.Fatalf("skyline run returned counts")
							}
							continue // skyline equivalence covered elsewhere
						}
						if len(counts) != len(idx) {
							t.Fatalf("counts length %d != indices length %d", len(counts), len(idx))
						}
						label := fmt.Sprintf("hybrid %s n=%d d=%d t=%d", dist, n, d, threads)
						checkBand(t, m, k, idx, counts, label)
					}
				}
			}
		}
	}
}

func TestQFlowSkybandMatchesOracle(t *testing.T) {
	c := NewContext()
	defer c.Close()
	for _, dist := range dataset.AllDistributions {
		for _, d := range []int{2, 5, 8} {
			for _, n := range []int{1, 17, 400, 1500} {
				m := dataset.Generate(dist, n, d, 7)
				for _, k := range []int{2, 3, 5, n + 1} {
					for _, threads := range []int{1, 4} {
						idx := c.QFlow(m, QFlowOptions{Threads: threads, Alpha: 128, SkybandK: k})
						counts := c.Counts()
						if len(counts) != len(idx) {
							t.Fatalf("counts length %d != indices length %d", len(counts), len(idx))
						}
						label := fmt.Sprintf("qflow %s n=%d d=%d t=%d", dist, n, d, threads)
						checkBand(t, m, k, idx, counts, label)
					}
				}
			}
		}
	}
}

// TestHybridSkybandAblations drives every ablation through the counting
// path: each combination must still produce the exact k-skyband.
func TestHybridSkybandAblations(t *testing.T) {
	c := NewContext()
	defer c.Close()
	m := dataset.Generate(dataset.Anticorrelated, 600, 6, 3)
	for _, abl := range []HybridOptions{
		{NoPrefilter: true},
		{NoMS: true},
		{NoLevel2: true},
		{NoPhase2Split: true},
		{NoPrefilter: true, NoMS: true, NoPhase2Split: true},
		{Pivot: pivot.Manhattan},
	} {
		abl.Threads = 2
		abl.Alpha = 96
		abl.SkybandK = 3
		idx := c.Hybrid(m, abl)
		checkBand(t, m, 3, idx, c.Counts(), fmt.Sprintf("ablation %+v", abl))
	}
}

// TestSkybandK1BitIdentical locks the promise that SkybandK ≤ 1 runs the
// untouched skyline path: same indices in the same order as a plain run.
func TestSkybandK1BitIdentical(t *testing.T) {
	a, b := NewContext(), NewContext()
	defer a.Close()
	defer b.Close()
	for _, dist := range dataset.AllDistributions {
		m := dataset.Generate(dist, 3000, 8, 21)
		plainH := append([]int(nil), a.Hybrid(m, HybridOptions{Threads: 2})...)
		bandH := b.Hybrid(m, HybridOptions{Threads: 2, SkybandK: 1})
		if len(plainH) != len(bandH) {
			t.Fatalf("%s hybrid: k=1 size %d != plain %d", dist, len(bandH), len(plainH))
		}
		for i := range plainH {
			if plainH[i] != bandH[i] {
				t.Fatalf("%s hybrid: k=1 order diverges at %d", dist, i)
			}
		}
		plainQ := append([]int(nil), a.QFlow(m, QFlowOptions{Threads: 2})...)
		bandQ := b.QFlow(m, QFlowOptions{Threads: 2, SkybandK: 0})
		if len(plainQ) != len(bandQ) {
			t.Fatalf("%s qflow: k=0 size %d != plain %d", dist, len(bandQ), len(plainQ))
		}
		for i := range plainQ {
			if plainQ[i] != bandQ[i] {
				t.Fatalf("%s qflow: k=0 order diverges at %d", dist, i)
			}
		}
	}
}
