// Package core implements the paper's contribution: the Q-Flow flow of
// control (Algorithm 1, Section V) and the full Hybrid multicore skyline
// algorithm (Algorithms 2–4, Section VI) with its two-level partition
// data structure M(S) over the shared global skyline.
package core

import (
	"sync/atomic"
	"time"

	"skybench/internal/point"
	"skybench/internal/stats"
)

// DefaultAlphaQFlow is the α-block size for Q-Flow. The paper finds
// α = 2^13 optimal across all three distributions (Section VII-C1).
const DefaultAlphaQFlow = 1 << 13

// QFlowOptions configures a Q-Flow run. The zero value selects
// GOMAXPROCS threads and the paper's default α.
type QFlowOptions struct {
	// Threads is the number of worker goroutines (≤ 0 means GOMAXPROCS).
	Threads int
	// Alpha is the block size α (≤ 0 selects DefaultAlphaQFlow).
	Alpha int
	// Stats, when non-nil, receives phase timings and DT counts.
	Stats *stats.Stats
	// Progressive, when non-nil, is invoked after each α-block with the
	// original indices of the skyline points confirmed by that block —
	// the progressive reporting the global-skyline paradigm enables.
	Progressive func(confirmed []int)
	// Cancel, when non-nil, is polled at every α-block boundary and
	// periodically inside the parallel phase bodies; once it reads true
	// the run abandons its remaining work and returns an unspecified
	// partial result, which the caller must discard.
	Cancel *atomic.Bool
	// SkybandK generalizes the computation to the k-skyband: the result
	// is every point dominated by fewer than SkybandK others, with exact
	// per-point dominator counts available from Context.Counts. Values
	// ≤ 1 select the plain skyline path, which is bit-identical to a
	// zero SkybandK.
	SkybandK int
}

// QFlow computes SKY(m) with the Q-Flow algorithm (Algorithm 1) and
// returns original row indices in confirmation (L1) order. It runs a
// throwaway Context; services answering repeated queries should hold a
// Context and call its QFlow method, which reuses all scratch state.
func QFlow(m point.Matrix, opt QFlowOptions) []int {
	c := NewContext()
	defer c.Close()
	return c.QFlow(m, opt)
}

// QFlow computes SKY(m) with the Q-Flow algorithm (Algorithm 1) and
// returns original row indices in confirmation (L1) order. The result
// aliases Context storage and is valid until the next call on c.
//
// The input is sorted by L1 norm so dominance can only point backwards,
// then processed in α-blocks: Phase I compares each block point to the
// global skyline in parallel; survivors are compressed; Phase II compares
// each survivor to the surviving peers that precede it in the block;
// after a final compression the survivors are appended to the global
// skyline, which is therefore always exact to within one block.
func (c *Context) QFlow(m point.Matrix, opt QFlowOptions) []int {
	n := m.N()
	if n == 0 {
		return nil
	}
	alpha := opt.Alpha
	if alpha <= 0 {
		alpha = DefaultAlphaQFlow
	}
	k := opt.SkybandK
	if k < 1 {
		k = 1
	}
	c.k = k
	c.lastCounts = nil
	st := opt.Stats
	if st == nil {
		c.st = stats.Stats{}
		st = &c.st
	}
	st.InputSize = n
	c.ensure(opt.Threads)
	st.Threads = c.tEff
	c.cancel = opt.Cancel
	timer := stats.StartTimer(st)
	d := m.D()
	c.d = d

	// Initialization: L1 norms in parallel, then a parallel radix sort of
	// the order-preserving L1 bit keys (replacing the seed's sequential
	// sort.Slice), then one gather into the reusable working set.
	c.l1 = grow(c.l1, n)
	c.curM = m
	c.forRanges(n, c.l1Body)
	c.keys = grow(c.keys, n)
	c.forRanges(n, c.keyBody)
	sortStart := time.Now()
	order := c.radixSortIdx(n, 64)
	st.Cost.Sort += time.Since(sortStart)
	if c.canceled() {
		return nil
	}

	c.work = grow(c.work, n*d)
	c.wl1 = grow(c.wl1, n)
	c.worig = grow(c.worig, n)
	wk := point.FromFlat(c.work, n, d)
	c.curWork = wk
	c.curSurv = order
	c.forRanges(n, c.gatherBody)
	timer.Stop(stats.PhaseInit)

	// Global skyline storage: contiguous rows + matching metadata,
	// reused across runs (capacity survives, length resets).
	skyData := c.qskyData[:0]
	skyL1 := c.qskyL1[:0]
	skyOrig := c.qskyOrig[:0]
	skyCnt := c.qskyCnt[:0]

	c.flags = grow(c.flags, alpha)
	p1, p2 := c.qp1Body, c.qp2Body
	var bcnt []int32
	if k > 1 {
		c.bcnt = grow(c.bcnt, alpha)
		bcnt = c.bcnt
		p1, p2 = c.qp1kBody, c.qp2kBody
	}

	for lo := 0; lo < n; lo += alpha {
		// Cancellation checkpoint: one poll per α-block keeps the
		// between-poll work bounded by a block's worth of phases.
		if c.canceled() {
			c.qskyData, c.qskyL1, c.qskyOrig, c.qskyCnt = skyData, skyL1, skyOrig, skyCnt
			return nil
		}
		hi := lo + alpha
		if hi > n {
			hi = n
		}
		block := hi - lo
		f := c.flags[:block]
		for i := range f {
			f[i] = 0
		}
		c.blockLo = lo
		c.blockF = f
		if bcnt != nil {
			c.blockC = bcnt[:block]
		}
		c.qskyData, c.qskyL1 = skyData, skyL1

		// Phase I (parallel): compare each block point to the global
		// skyline in L1 order, aborting on the first dominator (skyline)
		// or at the k-th one (skyband).
		c.forRanges(block, p1)
		timer.Stop(stats.PhaseOne)

		// Compression: shift survivors left, re-establishing contiguity.
		surv := compress(wk, c.wl1, c.worig, nil, bcnt, lo, block, f)
		st.Cost.Phase1Survivors += surv
		timer.Stop(stats.PhaseCompress)

		// Phase II (parallel): compare each survivor to preceding
		// survivors in the block. Flags are atomic so threads can skip
		// peers already known to be dominated (sound by transitivity).
		c.blockF = f[:surv]
		c.forRanges(surv, p2)
		timer.Stop(stats.PhaseTwo)

		final := compress(wk, c.wl1, c.worig, nil, bcnt, lo, surv, f)
		st.Cost.Phase2Survivors += final
		timer.Stop(stats.PhaseCompress)

		// Append the block's confirmed skyline points to the global
		// skyline (sequential O(α) work).
		firstNew := len(skyOrig)
		for i := 0; i < final; i++ {
			skyData = append(skyData, wk.Row(lo+i)...)
			skyL1 = append(skyL1, c.wl1[lo+i])
			skyOrig = append(skyOrig, c.worig[lo+i])
		}
		if bcnt != nil {
			skyCnt = append(skyCnt, bcnt[:final]...)
		}
		if opt.Progressive != nil && final > 0 {
			opt.Progressive(skyOrig[firstNew:])
		}
		timer.Stop(stats.PhaseOther)
	}

	c.qskyData, c.qskyL1, c.qskyOrig, c.qskyCnt = skyData, skyL1, skyOrig, skyCnt
	st.SkylineSize = len(skyOrig)
	st.DominanceTests = c.dts.Sum()
	if k > 1 {
		c.lastCounts = skyCnt
	}
	return skyOrig
}

// compress shifts the unflagged rows of the block starting at row lo with
// the given length to the front of the block, moving the parallel
// metadata arrays (l1, orig, and — when non-nil — mask and the
// block-relative dominator counts) along with the point data. It returns
// the number of survivors. This is the synchronization-point compression
// of Section V-D: it removes branches and restores the contiguous layout
// Phase II and the skyline append depend on.
func compress(work point.Matrix, wl1 []float64, worig []int, wmask []point.Mask, bcnt []int32, lo, length int, flags []uint32) int {
	w := 0
	for i := 0; i < length; i++ {
		if flags[i] != 0 {
			continue
		}
		if w != i {
			copy(work.Row(lo+w), work.Row(lo+i))
			wl1[lo+w] = wl1[lo+i]
			worig[lo+w] = worig[lo+i]
			if wmask != nil {
				wmask[lo+w] = wmask[lo+i]
			}
			if bcnt != nil {
				bcnt[w] = bcnt[i]
			}
			flags[w] = 0
		}
		w++
	}
	return w
}
