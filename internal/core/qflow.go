// Package core implements the paper's contribution: the Q-Flow flow of
// control (Algorithm 1, Section V) and the full Hybrid multicore skyline
// algorithm (Algorithms 2–4, Section VI) with its two-level partition
// data structure M(S) over the shared global skyline.
package core

import (
	"sort"
	"sync/atomic"

	"skybench/internal/par"
	"skybench/internal/point"
	"skybench/internal/stats"
)

// DefaultAlphaQFlow is the α-block size for Q-Flow. The paper finds
// α = 2^13 optimal across all three distributions (Section VII-C1).
const DefaultAlphaQFlow = 1 << 13

// QFlowOptions configures a Q-Flow run. The zero value selects
// GOMAXPROCS threads and the paper's default α.
type QFlowOptions struct {
	// Threads is the number of worker goroutines (≤ 0 means GOMAXPROCS).
	Threads int
	// Alpha is the block size α (≤ 0 selects DefaultAlphaQFlow).
	Alpha int
	// Stats, when non-nil, receives phase timings and DT counts.
	Stats *stats.Stats
	// Progressive, when non-nil, is invoked after each α-block with the
	// original indices of the skyline points confirmed by that block —
	// the progressive reporting the global-skyline paradigm enables.
	Progressive func(confirmed []int)
}

// QFlow computes SKY(m) with the Q-Flow algorithm (Algorithm 1) and
// returns original row indices in confirmation (L1) order.
//
// The input is sorted by L1 norm so dominance can only point backwards,
// then processed in α-blocks: Phase I compares each block point to the
// global skyline in parallel; survivors are compressed; Phase II compares
// each survivor to the surviving peers that precede it in the block;
// after a final compression the survivors are appended to the global
// skyline, which is therefore always exact to within one block.
func QFlow(m point.Matrix, opt QFlowOptions) []int {
	n := m.N()
	if n == 0 {
		return nil
	}
	threads := opt.Threads
	if threads <= 0 {
		threads = par.DefaultThreads()
	}
	alpha := opt.Alpha
	if alpha <= 0 {
		alpha = DefaultAlphaQFlow
	}
	st := opt.Stats
	if st == nil {
		st = &stats.Stats{}
	}
	st.InputSize = n
	st.Threads = threads
	dts := stats.NewDTCounters(threads)
	timer := stats.NewTimer(st)
	d := m.D()

	// Initialization: compute L1 norms in parallel, sort by them.
	l1 := make([]float64, n)
	par.ForRanges(threads, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			l1[i] = point.L1(m.Row(i))
		}
	})
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return l1[order[a]] < l1[order[b]] })

	// Materialize the sorted working set for contiguous block processing.
	work := m.Gather(order)
	wl1 := make([]float64, n)
	worig := make([]int, n)
	for i, j := range order {
		wl1[i] = l1[j]
		worig[i] = j
	}
	timer.Stop(stats.PhaseInit)

	// Global skyline storage: contiguous rows + matching metadata.
	skyData := make([]float64, 0, 1024*d)
	skyL1 := make([]float64, 0, 1024)
	skyOrig := make([]int, 0, 1024)

	flags := make([]uint32, alpha)

	for lo := 0; lo < n; lo += alpha {
		hi := lo + alpha
		if hi > n {
			hi = n
		}
		block := hi - lo
		f := flags[:block]
		for i := range f {
			f[i] = 0
		}

		// Phase I (parallel): compare each block point to the global
		// skyline in L1 order, aborting on the first dominator.
		nSky := len(skyL1)
		par.ForRanges(threads, block, func(tid, blo, bhi int) {
			var local uint64
			for i := blo; i < bhi; i++ {
				p := work.Row(lo + i)
				myL1 := wl1[lo+i]
				for j := 0; j < nSky; j++ {
					if skyL1[j] == myL1 {
						continue // equal L1 ⇒ cannot dominate
					}
					local++
					if point.DominatesD(skyData[j*d:(j+1)*d], p, d) {
						f[i] = 1
						break
					}
				}
			}
			dts.Inc(tid, local)
		})
		timer.Stop(stats.PhaseOne)

		// Compression: shift survivors left, re-establishing contiguity.
		surv := compress(work, wl1, worig, nil, lo, block, f)
		timer.Stop(stats.PhaseCompress)

		// Phase II (parallel): compare each survivor to preceding
		// survivors in the block. Flags are atomic so threads can skip
		// peers already known to be dominated (sound by transitivity).
		f = f[:surv]
		par.ForRanges(threads, surv, func(tid, blo, bhi int) {
			var local uint64
			for i := blo; i < bhi; i++ {
				p := work.Row(lo + i)
				myL1 := wl1[lo+i]
				for j := 0; j < i; j++ {
					if atomic.LoadUint32(&f[j]) != 0 {
						continue
					}
					if wl1[lo+j] == myL1 {
						continue
					}
					local++
					if point.DominatesD(work.Row(lo+j), p, d) {
						atomic.StoreUint32(&f[i], 1)
						break
					}
				}
			}
			dts.Inc(tid, local)
		})
		timer.Stop(stats.PhaseTwo)

		final := compress(work, wl1, worig, nil, lo, surv, f)
		timer.Stop(stats.PhaseCompress)

		// Append the block's confirmed skyline points to the global
		// skyline (sequential O(α) work).
		firstNew := len(skyOrig)
		for i := 0; i < final; i++ {
			skyData = append(skyData, work.Row(lo+i)...)
			skyL1 = append(skyL1, wl1[lo+i])
			skyOrig = append(skyOrig, worig[lo+i])
		}
		if opt.Progressive != nil && final > 0 {
			opt.Progressive(skyOrig[firstNew:])
		}
		timer.Stop(stats.PhaseOther)
	}

	st.SkylineSize = len(skyOrig)
	st.DominanceTests = dts.Sum()
	return skyOrig
}

// compress shifts the unflagged rows of the block starting at row lo with
// the given length to the front of the block, moving the parallel
// metadata arrays (l1, orig, and mask when non-nil) along with the point
// data. It returns the number of survivors. This is the synchronization-
// point compression of Section V-D: it removes branches and restores the
// contiguous layout Phase II and the skyline append depend on.
func compress(work point.Matrix, wl1 []float64, worig []int, wmask []point.Mask, lo, length int, flags []uint32) int {
	w := 0
	for i := 0; i < length; i++ {
		if flags[i] != 0 {
			continue
		}
		if w != i {
			copy(work.Row(lo+w), work.Row(lo+i))
			wl1[lo+w] = wl1[lo+i]
			worig[lo+w] = worig[lo+i]
			if wmask != nil {
				wmask[lo+w] = wmask[lo+i]
			}
			flags[w] = 0
		}
		w++
	}
	return w
}
