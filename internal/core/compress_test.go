package core

import (
	"math/rand"
	"testing"

	"skybench/internal/point"
)

func TestCompressBasics(t *testing.T) {
	work := point.FromRows([][]float64{
		{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4},
	})
	wl1 := []float64{0, 2, 4, 6, 8}
	worig := []int{10, 11, 12, 13, 14}
	wmask := []point.Mask{0, 1, 2, 3, 0}
	flags := []uint32{0, 1, 0, 1, 0} // drop rows 1 and 3

	n := compress(work, wl1, worig, wmask, nil, 0, 5, flags)
	if n != 3 {
		t.Fatalf("survivors = %d, want 3", n)
	}
	wantOrig := []int{10, 12, 14}
	wantMask := []point.Mask{0, 2, 0}
	for i := 0; i < n; i++ {
		if worig[i] != wantOrig[i] || wmask[i] != wantMask[i] {
			t.Fatalf("pos %d: orig=%d mask=%d", i, worig[i], wmask[i])
		}
		if work.Row(i)[0] != float64(wantOrig[i]-10) {
			t.Fatalf("pos %d: row=%v", i, work.Row(i))
		}
		if flags[i] != 0 {
			t.Fatalf("pos %d: stale flag", i)
		}
	}
}

func TestCompressAllSurviveAndAllPruned(t *testing.T) {
	work := point.FromRows([][]float64{{1}, {2}, {3}})
	wl1 := []float64{1, 2, 3}
	worig := []int{0, 1, 2}
	none := []uint32{0, 0, 0}
	if n := compress(work, wl1, worig, nil, nil, 0, 3, none); n != 3 {
		t.Fatalf("all-survive: %d", n)
	}
	all := []uint32{1, 1, 1}
	if n := compress(work, wl1, worig, nil, nil, 0, 3, all); n != 0 {
		t.Fatalf("all-pruned: %d", n)
	}
}

func TestCompressWithOffset(t *testing.T) {
	// The block starts mid-array; earlier rows must be untouched.
	work := point.FromRows([][]float64{{9}, {8}, {1}, {2}, {3}})
	wl1 := []float64{9, 8, 1, 2, 3}
	worig := []int{0, 1, 2, 3, 4}
	flags := []uint32{1, 0, 0} // block rows 2..4; drop block-local 0
	n := compress(work, wl1, worig, nil, nil, 2, 3, flags)
	if n != 2 {
		t.Fatalf("survivors = %d", n)
	}
	if work.Row(0)[0] != 9 || work.Row(1)[0] != 8 {
		t.Fatal("rows before the block were touched")
	}
	if work.Row(2)[0] != 2 || work.Row(3)[0] != 3 {
		t.Fatalf("block not compressed: %v %v", work.Row(2), work.Row(3))
	}
}

// Compression must preserve relative order — the sort-order invariants
// of Phase II depend on it.
func TestCompressPreservesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		work := point.NewMatrix(n, 1)
		wl1 := make([]float64, n)
		worig := make([]int, n)
		flags := make([]uint32, n)
		for i := 0; i < n; i++ {
			work.Row(i)[0] = float64(i)
			wl1[i] = float64(i)
			worig[i] = i
			if rng.Intn(2) == 0 {
				flags[i] = 1
			}
		}
		surv := compress(work, wl1, worig, nil, nil, 0, n, flags)
		for i := 1; i < surv; i++ {
			if worig[i] <= worig[i-1] {
				t.Fatalf("order violated at %d: %v", i, worig[:surv])
			}
		}
	}
}
