package core

import (
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/pivot"
	"skybench/internal/point"
	"skybench/internal/stats"
	"skybench/internal/verify"
)

func TestQFlowMatchesOracle(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		for _, threads := range []int{1, 2, 4} {
			for _, n := range []int{1, 2, 100, 700} {
				m := dataset.Generate(dist, n, 5, int64(n+threads))
				got := QFlow(m, QFlowOptions{Threads: threads, Alpha: 64})
				if !verify.SameSkyline(got, verify.BruteForce(m)) {
					t.Fatalf("QFlow %v t=%d n=%d: wrong skyline", dist, threads, n)
				}
			}
		}
	}
}

func TestHybridMatchesOracle(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		for _, threads := range []int{1, 2, 4} {
			for _, n := range []int{1, 2, 100, 700} {
				m := dataset.Generate(dist, n, 5, int64(2*n+threads))
				got := Hybrid(m, HybridOptions{Threads: threads, Alpha: 64})
				if !verify.SameSkyline(got, verify.BruteForce(m)) {
					t.Fatalf("Hybrid %v t=%d n=%d: wrong skyline", dist, threads, n)
				}
			}
		}
	}
}

func TestHybridAlphaSweep(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 1500, 6, 3)
	want := verify.BruteForce(m)
	for _, alpha := range []int{1, 2, 7, 64, 1024, 4096} {
		got := Hybrid(m, HybridOptions{Threads: 2, Alpha: alpha})
		if !verify.SameSkyline(got, want) {
			t.Fatalf("alpha=%d: wrong skyline", alpha)
		}
	}
}

func TestQFlowAlphaSweep(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 1500, 6, 4)
	want := verify.BruteForce(m)
	for _, alpha := range []int{1, 3, 128, 1 << 13} {
		got := QFlow(m, QFlowOptions{Threads: 3, Alpha: alpha})
		if !verify.SameSkyline(got, want) {
			t.Fatalf("alpha=%d: wrong skyline", alpha)
		}
	}
}

func TestHybridAllPivotStrategies(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 1000, 5, 8)
	want := verify.BruteForce(m)
	for _, s := range pivot.AllStrategies {
		got := Hybrid(m, HybridOptions{Threads: 2, Pivot: s, Seed: 42})
		if !verify.SameSkyline(got, want) {
			t.Fatalf("pivot=%v: wrong skyline", s)
		}
	}
}

func TestHybridAblations(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 1200, 6, 5)
	want := verify.BruteForce(m)
	cases := []HybridOptions{
		{NoPrefilter: true},
		{NoMS: true},
		{NoLevel2: true},
		{NoPhase2Split: true},
		{NoPrefilter: true, NoMS: true, NoLevel2: true, NoPhase2Split: true},
	}
	for i, opt := range cases {
		opt.Threads = 2
		opt.Alpha = 128
		if !verify.SameSkyline(Hybrid(m, opt), want) {
			t.Fatalf("ablation case %d (%+v): wrong skyline", i, opt)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	if got := QFlow(point.Matrix{}, QFlowOptions{}); got != nil {
		t.Errorf("QFlow empty: %v", got)
	}
	if got := Hybrid(point.Matrix{}, HybridOptions{}); got != nil {
		t.Errorf("Hybrid empty: %v", got)
	}
}

func TestDuplicateHeavyInputs(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 900, 4, 6)
	dataset.Quantize(m, 4)
	want := verify.BruteForce(m)
	if !verify.SameSkyline(QFlow(m, QFlowOptions{Threads: 2, Alpha: 64}), want) {
		t.Fatal("QFlow wrong on quantized data")
	}
	if !verify.SameSkyline(Hybrid(m, HybridOptions{Threads: 2, Alpha: 64}), want) {
		t.Fatal("Hybrid wrong on quantized data")
	}
}

func TestAllCoincidentPoints(t *testing.T) {
	rows := make([][]float64, 50)
	for i := range rows {
		rows[i] = []float64{3, 1, 4}
	}
	m := point.FromRows(rows)
	if got := Hybrid(m, HybridOptions{Alpha: 8}); len(got) != 50 {
		t.Fatalf("coincident input: kept %d of 50", len(got))
	}
	if got := QFlow(m, QFlowOptions{Alpha: 8}); len(got) != 50 {
		t.Fatalf("QFlow coincident input: kept %d of 50", len(got))
	}
}

func TestStatsPopulated(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 2000, 6, 7)
	var qs, hs stats.Stats
	QFlow(m, QFlowOptions{Threads: 2, Stats: &qs})
	Hybrid(m, HybridOptions{Threads: 2, Stats: &hs})
	if qs.DominanceTests == 0 || hs.DominanceTests == 0 {
		t.Error("DTs not recorded")
	}
	if qs.SkylineSize != hs.SkylineSize {
		t.Errorf("skyline sizes disagree: qflow=%d hybrid=%d", qs.SkylineSize, hs.SkylineSize)
	}
	if qs.Phases[stats.PhaseOne] == 0 {
		t.Error("QFlow Phase I time missing")
	}
	if hs.Phases[stats.PhasePivot] == 0 {
		t.Error("Hybrid pivot time missing")
	}
}

// Hybrid's raison d'être: M(S) + partitioning must cut dominance tests
// versus plain Q-Flow on hard (anticorrelated) workloads.
func TestHybridDoesFewerDTsThanQFlow(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 4000, 8, 11)
	var qs, hs stats.Stats
	QFlow(m, QFlowOptions{Threads: 1, Stats: &qs})
	Hybrid(m, HybridOptions{Threads: 1, Stats: &hs})
	if hs.DominanceTests >= qs.DominanceTests {
		t.Errorf("Hybrid DTs (%d) not below Q-Flow DTs (%d)", hs.DominanceTests, qs.DominanceTests)
	}
}

// The ablations should cost DTs: removing M(S) or level-2 partitioning
// must not *reduce* dominance tests.
func TestAblationsIncreaseDTs(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 3000, 8, 13)
	run := func(opt HybridOptions) uint64 {
		var st stats.Stats
		opt.Threads = 1
		opt.Stats = &st
		Hybrid(m, opt)
		return st.DominanceTests
	}
	full := run(HybridOptions{})
	noMS := run(HybridOptions{NoMS: true})
	noL2 := run(HybridOptions{NoLevel2: true})
	if noMS < full {
		t.Errorf("NoMS did fewer DTs (%d) than full Hybrid (%d)", noMS, full)
	}
	if noL2 < full {
		t.Errorf("NoLevel2 did fewer DTs (%d) than full Hybrid (%d)", noL2, full)
	}
}

func TestProgressiveReporting(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 2000, 5, 9)
	var batches [][]int
	got := Hybrid(m, HybridOptions{
		Threads: 2,
		Alpha:   128,
		Progressive: func(confirmed []int) {
			cp := append([]int(nil), confirmed...)
			batches = append(batches, cp)
		},
	})
	var flat []int
	for _, b := range batches {
		flat = append(flat, b...)
	}
	if !verify.SameSkyline(flat, got) {
		t.Fatal("progressive batches do not reassemble the final skyline")
	}
	if len(batches) < 2 {
		t.Errorf("expected multiple progressive batches, got %d", len(batches))
	}
}

func TestQFlowProgressiveOrderIsL1Sorted(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 1000, 4, 14)
	got := QFlow(m, QFlowOptions{Threads: 2, Alpha: 64})
	last := -1.0
	for _, i := range got {
		l1 := point.L1(m.Row(i))
		if l1 < last {
			t.Fatal("QFlow output not in L1 order")
		}
		last = l1
	}
}

func TestHybridThreadInvariance(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 2500, 7, 15)
	want := Hybrid(m, HybridOptions{Threads: 1})
	for _, threads := range []int{2, 3, 8} {
		got := Hybrid(m, HybridOptions{Threads: threads})
		if !verify.SameSkyline(got, want) {
			t.Fatalf("t=%d disagrees with t=1", threads)
		}
	}
}

func TestHybridTooManyDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for d > MaxDims")
		}
	}()
	Hybrid(point.NewMatrix(4, 32), HybridOptions{})
}
