package core

import (
	"math/rand"
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/verify"
)

// TestContextHybridMatchesFresh runs one Context across many workloads
// and checks every result against a fresh throwaway run — scratch reuse
// must never leak state between runs.
func TestContextHybridMatchesFresh(t *testing.T) {
	c := NewContext()
	defer c.Close()
	for _, dist := range dataset.AllDistributions {
		for _, n := range []int{50, 1000, 3000} {
			for _, d := range []int{2, 5, 8, 12} {
				m := dataset.Generate(dist, n, d, int64(n+d))
				got := c.Hybrid(m, HybridOptions{Threads: 4})
				want := Hybrid(m, HybridOptions{Threads: 4})
				if !verify.SameSkyline(got, want) {
					t.Fatalf("%s n=%d d=%d: context result diverges from fresh run", dist, n, d)
				}
				if !verify.IsSkyline(m, got) {
					t.Fatalf("%s n=%d d=%d: context result is not the skyline", dist, n, d)
				}
			}
		}
	}
}

// TestContextQFlowMatchesFresh is the same check for Q-Flow, including
// the L1 output-order contract.
func TestContextQFlowMatchesFresh(t *testing.T) {
	c := NewContext()
	defer c.Close()
	for _, dist := range dataset.AllDistributions {
		for _, n := range []int{50, 1000, 3000} {
			m := dataset.Generate(dist, n, 6, int64(n))
			got := c.QFlow(m, QFlowOptions{Threads: 4, Alpha: 256})
			if !verify.IsSkyline(m, got) {
				t.Fatalf("%s n=%d: context Q-Flow result is not the skyline", dist, n)
			}
			last := -1.0
			for _, i := range got {
				l1 := point.L1(m.Row(i))
				if l1 < last {
					t.Fatalf("%s n=%d: context Q-Flow output not in L1 order", dist, n)
				}
				last = l1
			}
		}
	}
}

// TestContextThreadResize checks that a Context survives thread-count
// changes between runs (the pool is rebuilt transparently).
func TestContextThreadResize(t *testing.T) {
	c := NewContext()
	defer c.Close()
	m := dataset.Generate(dataset.Anticorrelated, 2000, 7, 3)
	want := Hybrid(m, HybridOptions{Threads: 1})
	for _, threads := range []int{1, 4, 2, 8, 3} {
		got := c.Hybrid(m, HybridOptions{Threads: threads})
		if !verify.SameSkyline(got, want) {
			t.Fatalf("threads=%d: result diverges after pool resize", threads)
		}
	}
}

// TestContextZeroAlloc is the steady-state guard of the issue: after a
// warm-up call, repeated Hybrid and QFlow runs on a reused Context must
// perform zero allocations.
func TestContextZeroAlloc(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 20000, 8, 42)
	c := NewContext()
	defer c.Close()

	opt := HybridOptions{Threads: 4}
	c.Hybrid(m, opt) // warm scratch
	if allocs := testing.AllocsPerRun(10, func() { c.Hybrid(m, opt) }); allocs != 0 {
		t.Errorf("Context.Hybrid allocates %.1f per run, want 0", allocs)
	}

	qopt := QFlowOptions{Threads: 4}
	c.QFlow(m, qopt) // warm scratch
	if allocs := testing.AllocsPerRun(10, func() { c.QFlow(m, qopt) }); allocs != 0 {
		t.Errorf("Context.QFlow allocates %.1f per run, want 0", allocs)
	}
}

// TestRadixSortIdx cross-checks the parallel radix sort against the
// expected stable order on random keys.
func TestRadixSortIdx(t *testing.T) {
	c := NewContext()
	defer c.Close()
	c.ensure(4)
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 17, 1000, 10000} {
		for _, keyBits := range []int{4, 13, 21, 64} {
			c.keys = grow(c.keys, n)
			limit := uint64(1)<<uint(keyBits%64) - 1
			if keyBits == 64 {
				limit = ^uint64(0)
			}
			for i := range c.keys {
				c.keys[i] = rng.Uint64() & limit
			}
			idx := c.radixSortIdx(n, keyBits)
			if len(idx) != n {
				t.Fatalf("n=%d bits=%d: got %d indices", n, keyBits, len(idx))
			}
			seen := make([]bool, n)
			for i, v := range idx {
				if seen[v] {
					t.Fatalf("n=%d bits=%d: duplicate index %d", n, keyBits, v)
				}
				seen[v] = true
				if i > 0 {
					ka, kb := c.keys[idx[i-1]], c.keys[v]
					if ka > kb {
						t.Fatalf("n=%d bits=%d: keys out of order at %d", n, keyBits, i)
					}
					if ka == kb && idx[i-1] > v {
						t.Fatalf("n=%d bits=%d: sort not stable at %d", n, keyBits, i)
					}
				}
			}
		}
	}
}

// TestFloatKeyMonotone checks the order-preserving float transform on
// representative values including negatives and zeros.
func TestFloatKeyMonotone(t *testing.T) {
	vals := []float64{-1e300, -5, -1, -0.25, 0, 0.25, 1, 5, 1e300}
	for i := 1; i < len(vals); i++ {
		if floatKey(vals[i-1]) >= floatKey(vals[i]) {
			t.Fatalf("floatKey not monotone between %g and %g", vals[i-1], vals[i])
		}
	}
}

// TestApplyPerm checks the in-place cycle-following permutation apply
// against a reference gather on random permutations.
func TestApplyPerm(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		d := 1 + rng.Intn(8)
		flat := make([]float64, n*d)
		wl1 := make([]float64, n)
		worig := make([]int, n)
		wmask := make([]point.Mask, n)
		for i := 0; i < n; i++ {
			for k := 0; k < d; k++ {
				flat[i*d+k] = rng.Float64()
			}
			wl1[i] = rng.Float64()
			worig[i] = rng.Int()
			wmask[i] = point.Mask(rng.Intn(256))
		}
		perm := rng.Perm(n)

		wantFlat := make([]float64, n*d)
		wantL1 := make([]float64, n)
		wantOrig := make([]int, n)
		wantMask := make([]point.Mask, n)
		for i, j := range perm {
			copy(wantFlat[i*d:(i+1)*d], flat[j*d:(j+1)*d])
			wantL1[i] = wl1[j]
			wantOrig[i] = worig[j]
			wantMask[i] = wmask[j]
		}

		maskArg := wmask
		if trial%3 == 0 {
			maskArg = nil
			wantMask = wmask
		}
		applyPerm(perm, flat, d, wl1, maskArg, worig)
		for i := 0; i < n*d; i++ {
			if flat[i] != wantFlat[i] {
				t.Fatalf("trial %d: row data mismatch at %d", trial, i)
			}
		}
		for i := 0; i < n; i++ {
			if wl1[i] != wantL1[i] || worig[i] != wantOrig[i] || wmask[i] != wantMask[i] {
				t.Fatalf("trial %d: metadata mismatch at %d", trial, i)
			}
		}
	}
}

// TestSortIdxByFloat exercises the allocation-free quicksort on adversarial
// patterns (sorted, reversed, constant, random).
func TestSortIdxByFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	patterns := []func(i, n int) float64{
		func(i, n int) float64 { return float64(i) },
		func(i, n int) float64 { return float64(n - i) },
		func(i, n int) float64 { return 1.0 },
		func(i, n int) float64 { return rng.Float64() },
		func(i, n int) float64 { return float64(i % 7) },
	}
	for _, n := range []int{0, 1, 2, 15, 16, 17, 100, 5000} {
		for pi, pat := range patterns {
			key := make([]float64, n)
			for i := range key {
				key[i] = pat(i, n)
			}
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			sortIdxByFloat(idx, key)
			seen := make([]bool, n)
			for i, v := range idx {
				if seen[v] {
					t.Fatalf("n=%d pat=%d: duplicate index", n, pi)
				}
				seen[v] = true
				if i > 0 && key[idx[i-1]] > key[v] {
					t.Fatalf("n=%d pat=%d: out of order at %d", n, pi, i)
				}
			}
		}
	}
}
