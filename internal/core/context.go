package core

import (
	"sync/atomic"

	"skybench/internal/par"
	"skybench/internal/point"
	"skybench/internal/prefilter"
	"skybench/internal/stats"
)

// Context holds everything Hybrid and Q-Flow need across runs: a
// persistent worker pool, per-thread dominance-test counters, and every
// scratch array the algorithms previously reallocated per call (L1 norms,
// masks, sort keys and permutations, block flags, the gathered working
// matrix, the global-skyline storage, radix-sort histograms, and the
// pre-filter's queues). After a warm-up call with a given workload shape,
// repeated Hybrid/QFlow calls perform zero steady-state allocations —
// the property a server answering millions of skyline queries needs.
//
// A Context is not safe for concurrent use; create one per worker.
// Results returned by Hybrid/QFlow alias Context storage and are valid
// until the next call on the same Context. Close releases the worker
// pool (contexts are also cleaned up by the garbage collector if
// forgotten).
type Context struct {
	pool   *par.Pool
	shared bool // pool is caller-owned: never resized or closed here
	tEff   int  // effective thread count of the current run
	cancel *atomic.Bool
	dts    *stats.DTCounters
	pf     *prefilter.Runner
	st     stats.Stats // sink when the caller passes no Stats

	// Working-set scratch, sized to the current input.
	l1    []float64 // per-input-row L1 norms
	seq   []int     // identity survivor list (NoPrefilter ablation)
	work  []float64 // gathered working matrix (row-major)
	wl1   []float64 // working-set L1 norms
	worig []int     // working-set original indices
	wmask []point.Mask
	keys  []uint64 // compound sort keys (Hybrid) / L1 bit keys (Q-Flow)
	idx   []int    // sort permutation
	idxT  []int    // radix ping-pong buffer
	hist  []int    // per-thread radix histograms
	runs  []int    // equal-key run boundaries (pairs)
	flags []uint32

	pivotV []float64
	pivotC []float64 // median-strategy scratch column

	sky skylineStore // Hybrid global skyline + M(S)

	qskyData []float64 // Q-Flow global skyline rows
	qskyL1   []float64
	qskyOrig []int
	qskyCnt  []int32 // Q-Flow dominator counts (k-skyband runs only)

	// Parallel-region parameters, set before each fan-out. Bodies are
	// pre-bound once in NewContext so dispatching them allocates nothing.
	curM    point.Matrix
	curWork point.Matrix
	curSurv []int
	d       int
	k       int // dominator budget: 1 = skyline, ≥ 2 = k-skyband
	blockLo int
	blockF  []uint32
	blockC  []int32 // per-block dominator counts (k ≥ 2 only)
	bcnt    []int32 // backing storage for blockC, α-sized
	level2  bool
	noMS    bool
	noSplit bool
	pv      []float64

	lastCounts []int32 // Counts() result of the latest run (nil for skyline)

	rsrc, rdst []int
	rshift     uint
	rt         int

	l1Body     func(tid, lo, hi int)
	gatherBody func(tid, lo, hi int)
	maskBody   func(tid, lo, hi int)
	keyBody    func(tid, lo, hi int)
	p1Body     func(tid, lo, hi int)
	p2Body     func(tid, lo, hi int)
	p1kBody    func(tid, lo, hi int)
	p2kBody    func(tid, lo, hi int)
	qp1Body    func(tid, lo, hi int)
	qp2Body    func(tid, lo, hi int)
	qp1kBody   func(tid, lo, hi int)
	qp2kBody   func(tid, lo, hi int)
	histBody   func(tid, lo, hi int)
	scatBody   func(tid, lo, hi int)
	runBody    func(i int)
}

// NewContext creates an empty Context. The worker pool is created lazily
// on the first run (sized to that run's thread count) and resized only
// when the requested thread count changes.
func NewContext() *Context {
	c := &Context{pf: prefilter.NewRunner()}
	c.l1Body = c.runL1
	c.gatherBody = c.runGather
	c.maskBody = c.runMask
	c.keyBody = c.runKey
	c.p1Body = c.runPhase1
	c.p2Body = c.runPhase2
	c.p1kBody = c.runPhase1K
	c.p2kBody = c.runPhase2K
	c.qp1Body = c.runQPhase1
	c.qp2Body = c.runQPhase2
	c.qp1kBody = c.runQPhase1K
	c.qp2kBody = c.runQPhase2K
	c.histBody = c.runHist
	c.scatBody = c.runScatter
	c.runBody = c.runSortRun
	return c
}

// NewContextShared creates a Context whose parallel regions run on the
// caller's pool, which may concurrently serve other Contexts (Pool
// dispatches serialize internally). The Context does not own the pool:
// Close leaves it open, and requested thread counts are capped at the
// pool's size. This is what lets an Engine keep a free-list of Contexts
// over one worker pool instead of one pool per concurrent query.
func NewContextShared(p *par.Pool) *Context {
	c := NewContext()
	c.pool = p
	c.shared = true
	return c
}

// Close releases the Context's worker pool unless the pool is shared
// (NewContextShared), in which case the owner closes it. The Context must
// not be used afterwards.
func (c *Context) Close() {
	if c.pool != nil && !c.shared {
		c.pool.Close()
	}
	c.pool = nil
}

// ensure (re)creates the pool and counters for the requested thread
// count and records the effective thread count of the run (a shared pool
// is never resized, so the request is capped at its size).
func (c *Context) ensure(threads int) {
	if threads <= 0 {
		if c.shared {
			threads = c.pool.Threads()
		} else {
			threads = par.DefaultThreads()
		}
	}
	if c.pool == nil {
		c.pool = par.NewPool(threads)
	} else if !c.shared && c.pool.Threads() != threads {
		c.pool.Close()
		c.pool = par.NewPool(threads)
	}
	if pt := c.pool.Threads(); threads > pt {
		threads = pt
	}
	c.tEff = threads
	if c.dts == nil || c.dts.Threads() < threads {
		c.dts = stats.NewDTCounters(threads)
	}
	c.dts.Reset()
}

// canceled reports whether the current run's cancellation flag is set.
// The flag is polled at every α-block boundary and periodically inside
// the parallel phase bodies, so a canceled run abandons its remaining
// work within a bounded number of dominance tests.
func (c *Context) canceled() bool { return c.cancel != nil && c.cancel.Load() }

// forRanges fans body out over the pool with the run's effective thread
// count and cancellation flag (canceled fan-outs are skipped wholesale at
// the barrier).
func (c *Context) forRanges(n int, body func(tid, lo, hi int)) {
	c.pool.ForRangesCancel(c.tEff, n, c.cancel, body)
}

// grow returns s resized to n, reallocating only when capacity is short.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// ---- pre-bound parallel bodies -------------------------------------------

func (c *Context) runL1(_, lo, hi int) {
	m := c.curM
	for i := lo; i < hi; i++ {
		c.l1[i] = point.L1(m.Row(i))
	}
}

// runGather copies rows selected by curSurv from curM into curWork and
// fills the working-set metadata — the single gather that replaces the
// seed implementation's allocate-and-copy Gather calls.
func (c *Context) runGather(_, lo, hi int) {
	src := c.curM.Flat()
	dst := c.curWork.Flat()
	d := c.d
	l1 := c.l1
	for i := lo; i < hi; i++ {
		j := c.curSurv[i]
		copy(dst[i*d:(i+1)*d], src[j*d:(j+1)*d])
		c.wl1[i] = l1[j]
		c.worig[i] = j
	}
}

func (c *Context) runMask(_, lo, hi int) {
	wk := c.curWork
	d := c.d
	for i := lo; i < hi; i++ {
		c.wmask[i] = point.ComputeMask(wk.Row(i), c.pv)
		c.keys[i] = c.wmask[i].CompoundKey(d)
	}
}

// runKey fills keys with the order-preserving bit transform of the L1
// norms (Q-Flow sorts by L1 alone).
func (c *Context) runKey(_, lo, hi int) {
	for i := lo; i < hi; i++ {
		c.keys[i] = floatKey(c.l1[i])
	}
}

// cancelStride is how many phase-body iterations run between cancellation
// polls. Each iteration can cost up to |SKY| dominance tests, so the
// stride bounds post-cancel work without putting an atomic load in front
// of every point.
const cancelStride = 64

func (c *Context) runPhase1(tid, blo, bhi int) {
	var local uint64
	wf := c.curWork.Flat()
	d := c.d
	lo := c.blockLo
	f := c.blockF
	cancel := c.cancel
	for i := blo; i < bhi; i++ {
		if cancel != nil && i%cancelStride == 0 && cancel.Load() {
			break
		}
		off := (lo + i) * d
		q := wf[off : off+d : off+d]
		var dominated bool
		if c.noMS {
			dominated = c.sky.dominatedFlat(q, c.wmask[lo+i], &local)
		} else {
			dominated = c.sky.dominatedHybrid(q, c.wmask[lo+i], c.level2, &local)
		}
		if dominated {
			f[i] = 1
		}
	}
	c.dts.Inc(tid, local)
}

func (c *Context) runPhase2(tid, blo, bhi int) {
	var local uint64
	wf := c.curWork.Flat()
	d := c.d
	lo := c.blockLo
	f := c.blockF
	cancel := c.cancel
	for i := blo; i < bhi; i++ {
		if cancel != nil && i%cancelStride == 0 && cancel.Load() {
			break
		}
		var dominated bool
		if c.noSplit {
			dominated = comparedToPeersNaive(wf, c.wl1, lo, i, f, d, &local)
		} else {
			dominated = comparedToPeers(wf, c.wl1, c.wmask, lo, i, f, d, &local)
		}
		if dominated {
			storeFlag(&f[i])
		}
	}
	c.dts.Inc(tid, local)
}

func (c *Context) runQPhase1(tid, blo, bhi int) {
	var local uint64
	wf := c.curWork.Flat()
	d := c.d
	lo := c.blockLo
	f := c.blockF
	skyData := c.qskyData
	nSky := len(c.qskyL1)
	cancel := c.cancel
	// No equal-L1 filter here: an equal-L1 row can never pass the strict
	// dominance test, and skipping the ties is not worth streaming the
	// skyline's L1 array through cache alongside its rows.
	for i := blo; i < bhi; i++ {
		if cancel != nil && i%cancelStride == 0 && cancel.Load() {
			break
		}
		off := (lo + i) * d
		q := wf[off : off+d : off+d]
		if point.DominatedInFlatRun(skyData, d, 0, nSky, q, 0, nil, nil, &local) {
			f[i] = 1
		}
	}
	c.dts.Inc(tid, local)
}

// Counts returns the per-point dominator counts of the latest Hybrid or
// QFlow run, parallel to its returned indices, or nil for a skyline run
// (SkybandK ≤ 1), where every returned point trivially has zero
// dominators. The slice aliases Context storage and is valid until the
// next call on c.
func (c *Context) Counts() []int32 { return c.lastCounts }

// runPhase1K is the k-skyband Phase I: instead of flagging a block point
// on its first dominator in the global band, it counts the point's band
// dominators up to the budget k and eliminates only points that reach
// it. Band membership is decidable against band points alone: a point
// with ≥ k dominators overall always has ≥ k dominators inside the band
// (every dominator of a band point is itself a band point, by
// transitivity — see DESIGN.md §9), so the count each survivor carries
// out of Phase I is its exact dominator count so far.
func (c *Context) runPhase1K(tid, blo, bhi int) {
	var local uint64
	wf := c.curWork.Flat()
	d := c.d
	k := c.k
	lo := c.blockLo
	f := c.blockF
	cnt := c.blockC
	cancel := c.cancel
	for i := blo; i < bhi; i++ {
		if cancel != nil && i%cancelStride == 0 && cancel.Load() {
			break
		}
		off := (lo + i) * d
		q := wf[off : off+d : off+d]
		var n int
		if c.noMS {
			n = c.sky.countDominatorsFlat(q, c.wmask[lo+i], k, &local)
		} else {
			n = c.sky.countDominators(q, c.wmask[lo+i], c.level2, k, &local)
		}
		cnt[i] = int32(n)
		if n >= k {
			f[i] = 1
		}
	}
	c.dts.Inc(tid, local)
}

// runPhase2K is the k-skyband Phase II: each survivor adds the dominator
// count it accrues against preceding block peers to its Phase I count,
// and is eliminated only when the total reaches k. Flagged peers are
// skipped: a peer is only ever flagged once its own measured count
// reached k, which makes it a non-band point, and a non-band point can
// never dominate a band point — so skipping it cannot disturb a
// survivor's exact count, and the flag race is benign (counting a
// concurrently-flagged peer only inflates the count of a point that
// point p's dominators already doom).
func (c *Context) runPhase2K(tid, blo, bhi int) {
	var local uint64
	wf := c.curWork.Flat()
	d := c.d
	k := c.k
	lo := c.blockLo
	f := c.blockF
	cnt := c.blockC
	cancel := c.cancel
	for i := blo; i < bhi; i++ {
		if cancel != nil && i%cancelStride == 0 && cancel.Load() {
			break
		}
		budget := k - int(cnt[i])
		var n int
		if c.noSplit {
			n = countPeersNaive(wf, c.wl1, lo, i, f, d, budget, &local)
		} else {
			n = countPeers(wf, c.wl1, c.wmask, lo, i, f, d, budget, &local)
		}
		if n >= budget {
			cnt[i] = int32(k)
			storeFlag(&f[i])
		} else {
			cnt[i] += int32(n)
		}
	}
	c.dts.Inc(tid, local)
}

// runQPhase1K is Q-Flow's counting Phase I: block points accumulate
// dominators against the global band, capped at k.
func (c *Context) runQPhase1K(tid, blo, bhi int) {
	var local uint64
	wf := c.curWork.Flat()
	d := c.d
	k := c.k
	lo := c.blockLo
	f := c.blockF
	cnt := c.blockC
	skyData := c.qskyData
	nSky := len(c.qskyL1)
	cancel := c.cancel
	for i := blo; i < bhi; i++ {
		if cancel != nil && i%cancelStride == 0 && cancel.Load() {
			break
		}
		off := (lo + i) * d
		q := wf[off : off+d : off+d]
		n := point.CountDominatorsInFlatRun(skyData, d, 0, nSky, q, 0, nil, nil, k, &local)
		cnt[i] = int32(n)
		if n >= k {
			f[i] = 1
		}
	}
	c.dts.Inc(tid, local)
}

// runQPhase2K is Q-Flow's counting Phase II; see runPhase2K for why the
// peer-flag race cannot disturb a survivor's exact count.
func (c *Context) runQPhase2K(tid, blo, bhi int) {
	var local uint64
	d := c.d
	k := c.k
	lo := c.blockLo
	f := c.blockF
	cnt := c.blockC
	rows := c.curWork.Flat()[lo*c.d:]
	cancel := c.cancel
	for i := blo; i < bhi; i++ {
		if cancel != nil && i%cancelStride == 0 && cancel.Load() {
			break
		}
		off := i * d
		q := rows[off : off+d : off+d]
		budget := k - int(cnt[i])
		n := point.CountDominatorsInFlatRun(rows, d, 0, i, q, 0, nil, f, budget, &local)
		if n >= budget {
			cnt[i] = int32(k)
			storeFlag(&f[i])
		} else {
			cnt[i] += int32(n)
		}
	}
	c.dts.Inc(tid, local)
}

func (c *Context) runQPhase2(tid, blo, bhi int) {
	var local uint64
	d := c.d
	lo := c.blockLo
	f := c.blockF
	rows := c.curWork.Flat()[lo*c.d:]
	cancel := c.cancel
	// As in Phase I, the seed's equal-L1 peer skip is dropped: ties fail
	// the strict dominance test anyway, so the skip only saves work that
	// costs less than its extra array stream. DT counts are accordingly
	// slightly higher than the seed's on tie-heavy inputs.
	for i := blo; i < bhi; i++ {
		if cancel != nil && i%cancelStride == 0 && cancel.Load() {
			break
		}
		off := i * d
		q := rows[off : off+d : off+d]
		if point.DominatedInFlatRun(rows, d, 0, i, q, 0, nil, f, &local) {
			storeFlag(&f[i])
		}
	}
	c.dts.Inc(tid, local)
}
