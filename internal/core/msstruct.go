package core

import (
	"skybench/internal/point"
)

// msEntry is one element of the M(S) vector: a level-1 partition mask and
// the index of the first skyline point carrying it (Figure 3b). The final
// entry is a sentinel whose start is |S|, so a partition's extent is
// [entry.start, next.start).
type msEntry struct {
	mask  point.Mask
	start int
}

// skylineStore holds the global, shared skyline and the M(S) structure
// over it. Rows are contiguous (row-major in data) because blocks are
// appended already compressed; partitions are contiguous because the
// sort order groups masks and compression preserves order. The store is
// embedded in a Context and reused across runs: reset keeps the
// underlying capacity so steady-state runs allocate nothing.
type skylineStore struct {
	d      int
	data   []float64    // len = n*d, row-major skyline points
	mask1  []point.Mask // level-1 mask of every skyline point
	mask2  []point.Mask // level-2 mask (Algorithm 2); pivots retain level-1
	orig   []int        // original input indices
	counts []int32      // dominator counts (k-skyband runs only; else empty)
	ms     []msEntry    // M(S): partition directory + trailing sentinel
}

func newSkylineStore(d int) *skylineStore {
	return &skylineStore{d: d}
}

// reset prepares the store for a fresh run of dimensionality d, keeping
// the capacity accumulated by previous runs.
func (s *skylineStore) reset(d int) {
	s.d = d
	s.data = s.data[:0]
	s.mask1 = s.mask1[:0]
	s.mask2 = s.mask2[:0]
	s.orig = s.orig[:0]
	s.counts = s.counts[:0]
	s.ms = s.ms[:0]
}

// size returns |S|.
func (s *skylineStore) size() int { return len(s.orig) }

// row returns skyline point j's coordinates.
func (s *skylineStore) row(j int) []float64 {
	return s.data[j*s.d : (j+1)*s.d]
}

// update implements Algorithm 2 (updateS&M): append the compressed block
// Q to S and extend M(S). Points falling into the partition that is
// currently last in M(S) are re-partitioned at level 2 around that
// partition's pivot (its first point, the one with smallest L1); each new
// partition's first point becomes its level-2 pivot and retains its
// level-1 mask.
//
// When level2 is false (ablation), points keep their level-1 masks and no
// re-partitioning happens, but the partition directory is still extended.
//
// bcnt, when non-nil, holds the block-relative dominator counts of the
// appended points (k-skyband runs); they are recorded alongside so the
// caller can surface per-point counts. Skyline runs pass nil and the
// counts column stays empty.
func (s *skylineStore) update(work point.Matrix, wl1 []float64, worig []int, wmask []point.Mask, bcnt []int32, lo, count int, level2 bool) {
	if count == 0 {
		return
	}
	// Pop the sentinel; remember the current top partition, if any.
	curMask := point.Mask(0)
	curPivot := -1
	if len(s.ms) > 0 {
		s.ms = s.ms[:len(s.ms)-1] // pop sentinel
		top := s.ms[len(s.ms)-1]
		curMask, curPivot = top.mask, top.start
	}
	for i := 0; i < count; i++ {
		j := len(s.orig) // index this point will take in S
		m1 := wmask[lo+i]
		s.data = append(s.data, work.Row(lo+i)...)
		s.orig = append(s.orig, worig[lo+i])
		if bcnt != nil {
			s.counts = append(s.counts, bcnt[i])
		}
		s.mask1 = append(s.mask1, m1)
		if curPivot >= 0 && m1 == curMask {
			// Same partition as the current top: assign level-2 mask
			// relative to the partition's pivot.
			m2 := m1
			if level2 {
				m2 = point.ComputeMask(work.Row(lo+i), s.row(curPivot))
			}
			s.mask2 = append(s.mask2, m2)
		} else {
			// First point of a new partition: it becomes the level-2
			// pivot and retains its level-1 mask.
			s.ms = append(s.ms, msEntry{mask: m1, start: j})
			curMask, curPivot = m1, j
			s.mask2 = append(s.mask2, m1)
		}
	}
	// Push the sentinel (the paper uses mask 2^d, any out-of-band value).
	s.ms = append(s.ms, msEntry{mask: point.FullMask(s.d) + 1, start: len(s.orig)})
}

// dominatedHybrid implements Algorithm 3 (compareToSky): test q against
// the skyline using both partition levels. qMask is q's level-1 mask.
// Returns true iff some skyline point dominates q. dts accumulates the
// dominance tests performed (mask computations against level-2 pivots
// count as one DT each — they inspect all d dimensions). All point
// accesses index the store's flat row-major data directly; the
// no-level-2 partition scan is a contiguous run handed to the flat run
// kernel.
func (s *skylineStore) dominatedHybrid(q []float64, qMask point.Mask, level2 bool, dts *uint64) bool {
	full := point.FullMask(s.d)
	d := s.d
	data := s.data
	for e := 0; e+1 < len(s.ms); e++ {
		pm := s.ms[e].mask
		if !pm.Subset(qMask) {
			continue // whole region incomparable with q — skip all DTs
		}
		lo, hi := s.ms[e].start, s.ms[e+1].start
		if !level2 {
			if point.DominatedInFlatRun(data, d, lo, hi, q, 0, nil, nil, dts) {
				return true
			}
			continue
		}
		// Compare q to the partition's level-2 pivot, producing q's
		// level-2 mask m′ (one full-width comparison).
		*dts++
		m2 := point.ComputeMask(q, data[lo*d:(lo+1)*d:(lo+1)*d])
		if m2 == full {
			if point.EqualsFlat2(data, lo*d, q, 0, d) {
				// q coincides with a skyline point: nothing can dominate
				// it (a dominator would dominate the pivot too).
				return false
			}
			return true // the pivot dominates q
		}
		// Scan the rest of the partition with level-2 incomparability
		// filtering fused into the masked run kernel.
		if point.DominatedInFlatRunMasked(data, d, lo+1, hi, q, s.mask2, m2, dts) {
			return true
		}
	}
	return false
}

// dominatedFlat is the no-M(S) ablation of Phase I: scan the skyline
// linearly, filtering by level-1 masks only.
func (s *skylineStore) dominatedFlat(q []float64, qMask point.Mask, dts *uint64) bool {
	return point.DominatedInFlatRunMasked(s.data, s.d, 0, s.size(), q, s.mask1, qMask, dts)
}

// countDominators is the k-skyband generalization of dominatedHybrid:
// it accumulates the number of stored band points that dominate q, in
// partition-directory order, stopping as soon as the count reaches
// budget (a probe with ≥ budget dominators is discarded, so the excess
// is never needed). Two skyline-path shortcuts change shape here. A
// full level-2 mask against a segment pivot contributes one dominator
// and the segment scan continues, instead of ending the probe. And a
// probe coinciding with a segment pivot only skips that segment — the
// pivot has the segment's smallest L1 norm, so no other member can
// dominate it (or the coincident probe) — rather than proving the probe
// undominated outright: a band pivot, unlike a skyline pivot, may
// itself be dominated by points in subset-mask segments, which this
// loop visits on its own.
func (s *skylineStore) countDominators(q []float64, qMask point.Mask, level2 bool, budget int, dts *uint64) int {
	full := point.FullMask(s.d)
	d := s.d
	data := s.data
	c := 0
	for e := 0; e+1 < len(s.ms); e++ {
		pm := s.ms[e].mask
		if !pm.Subset(qMask) {
			continue // whole region incomparable with q — skip all DTs
		}
		lo, hi := s.ms[e].start, s.ms[e+1].start
		if !level2 {
			c += point.CountDominatorsInFlatRun(data, d, lo, hi, q, 0, nil, nil, budget-c, dts)
			if c >= budget {
				return c
			}
			continue
		}
		*dts++
		m2 := point.ComputeMask(q, data[lo*d:(lo+1)*d:(lo+1)*d])
		if m2 == full {
			if point.EqualsFlat2(data, lo*d, q, 0, d) {
				continue // coincides with the pivot: segment contributes 0
			}
			c++ // the pivot dominates q
			if c >= budget {
				return c
			}
		}
		c += point.CountDominatorsInFlatRunMasked(data, d, lo+1, hi, q, s.mask2, m2, budget-c, dts)
		if c >= budget {
			return c
		}
	}
	return c
}

// countDominatorsFlat is the no-M(S) ablation of the counting Phase I.
func (s *skylineStore) countDominatorsFlat(q []float64, qMask point.Mask, budget int, dts *uint64) int {
	return point.CountDominatorsInFlatRunMasked(s.data, s.d, 0, s.size(), q, s.mask1, qMask, budget, dts)
}
