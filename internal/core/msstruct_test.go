package core

import (
	"math/rand"
	"testing"

	"skybench/internal/point"
)

// buildStore feeds rows into a skylineStore the way Hybrid does: sorted
// by (level, mask, L1) relative to pivot, appended in one batch per
// block. Rows must already be mutually non-dominating.
func buildStore(t *testing.T, rows [][]float64, pivot []float64, blockSize int, level2 bool) *skylineStore {
	t.Helper()
	d := len(pivot)
	m := point.FromRows(rows)
	n := m.N()
	masks := make([]point.Mask, n)
	keys := make([]uint64, n)
	l1 := make([]float64, n)
	for i := 0; i < n; i++ {
		masks[i] = point.ComputeMask(m.Row(i), pivot)
		keys[i] = masks[i].CompoundKey(d)
		l1[i] = point.L1(m.Row(i))
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// three-key sort
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			ia, ib := idx[a], idx[b]
			if keys[ib] < keys[ia] || (keys[ib] == keys[ia] && l1[ib] < l1[ia]) {
				idx[a], idx[b] = idx[b], idx[a]
			}
		}
	}
	sorted := m.Gather(idx)
	sl1 := make([]float64, n)
	smask := make([]point.Mask, n)
	sorig := make([]int, n)
	for i, j := range idx {
		sl1[i] = l1[j]
		smask[i] = masks[j]
		sorig[i] = j
	}
	s := newSkylineStore(d)
	for lo := 0; lo < n; lo += blockSize {
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		s.update(sorted, sl1, sorig, smask, nil, lo, hi-lo, level2)
	}
	return s
}

// mutuallyNonDominating filters a random set down to its skyline so it
// is a legal skylineStore payload.
func mutuallyNonDominating(rows [][]float64) [][]float64 {
	var out [][]float64
	for i, p := range rows {
		dominated := false
		for j, q := range rows {
			if i != j && point.Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

func TestStoreStructuralInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pivot := []float64{2, 2, 2}
	for trial := 0; trial < 50; trial++ {
		var rows [][]float64
		for i := 0; i < 60; i++ {
			rows = append(rows, []float64{
				float64(rng.Intn(5)), float64(rng.Intn(5)), float64(rng.Intn(5)),
			})
		}
		rows = mutuallyNonDominating(rows)
		if len(rows) == 0 {
			continue
		}
		s := buildStore(t, rows, pivot, 7, true)

		if s.size() != len(rows) {
			t.Fatalf("store size %d, want %d", s.size(), len(rows))
		}
		// Sentinel terminates M(S) and points one past the end.
		if s.ms[len(s.ms)-1].start != s.size() {
			t.Fatalf("sentinel start = %d, want %d", s.ms[len(s.ms)-1].start, s.size())
		}
		// Entries have strictly increasing starts and strictly
		// increasing compound keys (partitions arrive in sort order).
		for e := 1; e < len(s.ms); e++ {
			if s.ms[e].start <= s.ms[e-1].start {
				t.Fatalf("entry %d start %d not increasing", e, s.ms[e].start)
			}
		}
		for e := 1; e+1 < len(s.ms); e++ {
			if s.ms[e].mask.CompoundKey(3) <= s.ms[e-1].mask.CompoundKey(3) {
				t.Fatalf("entry %d mask %b out of order", e, s.ms[e].mask)
			}
		}
		// Every point's level-1 mask matches its partition's mask.
		for e := 0; e+1 < len(s.ms); e++ {
			for j := s.ms[e].start; j < s.ms[e+1].start; j++ {
				if s.mask1[j] != s.ms[e].mask {
					t.Fatalf("point %d mask1 %b ≠ partition %b", j, s.mask1[j], s.ms[e].mask)
				}
			}
			// The partition pivot retains its level-1 mask in mask2.
			lo := s.ms[e].start
			if s.mask2[lo] != s.mask1[lo] {
				t.Fatalf("partition pivot %d level-2 mask altered", lo)
			}
			// Members' level-2 masks are relative to the pivot.
			for j := lo + 1; j < s.ms[e+1].start; j++ {
				want := point.ComputeMask(s.row(j), s.row(lo))
				if s.mask2[j] != want {
					t.Fatalf("point %d level-2 mask %b, want %b", j, s.mask2[j], want)
				}
			}
		}
	}
}

// dominatedHybrid must agree with a brute-force scan of the stored
// skyline for arbitrary query points, with and without level-2.
func TestDominatedHybridMatchesBruteScan(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pivot := []float64{3, 3, 3, 3}
	for trial := 0; trial < 40; trial++ {
		var rows [][]float64
		for i := 0; i < 80; i++ {
			rows = append(rows, []float64{
				float64(rng.Intn(7)), float64(rng.Intn(7)),
				float64(rng.Intn(7)), float64(rng.Intn(7)),
			})
		}
		rows = mutuallyNonDominating(rows)
		if len(rows) == 0 {
			continue
		}
		for _, level2 := range []bool{true, false} {
			s := buildStore(t, rows, pivot, 9, level2)
			for probe := 0; probe < 200; probe++ {
				q := []float64{
					float64(rng.Intn(7)), float64(rng.Intn(7)),
					float64(rng.Intn(7)), float64(rng.Intn(7)),
				}
				want := false
				for _, r := range rows {
					if point.Dominates(r, q) {
						want = true
						break
					}
				}
				var dts uint64
				got := s.dominatedHybrid(q, point.ComputeMask(q, pivot), level2, &dts)
				if got != want {
					t.Fatalf("level2=%v: dominatedHybrid(%v) = %v, want %v", level2, q, got, want)
				}
				gotFlat := s.dominatedFlat(q, point.ComputeMask(q, pivot), &dts)
				if gotFlat != want {
					t.Fatalf("dominatedFlat(%v) = %v, want %v", q, gotFlat, want)
				}
			}
		}
	}
}

func TestStoreUpdateEmptyBlockIsNoop(t *testing.T) {
	s := newSkylineStore(2)
	s.update(point.NewMatrix(0, 2), nil, nil, nil, nil, 0, 0, true)
	if s.size() != 0 || len(s.ms) != 0 {
		t.Fatal("empty update must not create entries")
	}
}
