package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"skybench/internal/point"
	"skybench/internal/stats"
	"skybench/internal/verify"
)

// randomGridMatrix builds a small matrix over a coarse integer grid so
// that ties, duplicates, and dense dominance chains all occur.
func randomGridMatrix(rng *rand.Rand) point.Matrix {
	n := 1 + rng.Intn(120)
	d := 1 + rng.Intn(6)
	m := point.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			m.Row(i)[j] = float64(rng.Intn(5))
		}
	}
	return m
}

// Property: Hybrid computes exactly SKY(P) for arbitrary small inputs,
// arbitrary α, and arbitrary thread counts.
func TestHybridPropertyOracle(t *testing.T) {
	f := func(seed int64, alphaRaw uint8, threadsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomGridMatrix(rng)
		alpha := 1 + int(alphaRaw)%97
		threads := 1 + int(threadsRaw)%5
		got := Hybrid(m, HybridOptions{Threads: threads, Alpha: alpha})
		return verify.IsSkyline(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: Q-Flow computes exactly SKY(P) under the same fuzzing.
func TestQFlowPropertyOracle(t *testing.T) {
	f := func(seed int64, alphaRaw uint8, threadsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomGridMatrix(rng)
		alpha := 1 + int(alphaRaw)%97
		threads := 1 + int(threadsRaw)%5
		got := QFlow(m, QFlowOptions{Threads: threads, Alpha: alpha})
		return verify.IsSkyline(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: the three-key sort order used by Hybrid is topological with
// respect to dominance — if q ≺ p then q's (compound key, L1) pair
// strictly precedes p's. This is the invariant that makes confirming a
// block's survivors sound.
func TestSortOrderTopologicalProperty(t *testing.T) {
	f := func(a, b, piv [5]uint8) bool {
		d := 5
		p, q, v := make([]float64, d), make([]float64, d), make([]float64, d)
		for i := 0; i < d; i++ {
			p[i], q[i], v[i] = float64(a[i]%6), float64(b[i]%6), float64(piv[i]%6)
		}
		if !point.Dominates(q, p) {
			return true
		}
		kq := point.ComputeMask(q, v).CompoundKey(d)
		kp := point.ComputeMask(p, v).CompoundKey(d)
		if kq > kp {
			return false
		}
		if kq == kp && point.L1(q) >= point.L1(p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Hybrid's dominance-test count never exceeds the quadratic
// worst case n(n−1), for any configuration (DTs are only ever skipped,
// never repeated, relative to the naive nested loop... modulo the
// bounded α-block overlap, which stays within the same bound for n > 1).
func TestHybridDTUpperBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomGridMatrix(rng)
		var st stats.Stats
		Hybrid(m, HybridOptions{Threads: 2, Alpha: 16, Stats: &st})
		n := uint64(m.N())
		if n <= 1 {
			return st.DominanceTests == 0
		}
		return st.DominanceTests <= 2*n*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
