package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"skybench"

	"skybench/internal/dataset"
)

// plannerWarmup is the number of Auto queries spent before measuring:
// enough to cover the planner's ε-greedy explore budget and fill the
// exploited arm's cost history past its MinSamples threshold.
const plannerWarmup = 12

// Planner is the adaptive-planner experiment: per distribution, the
// Auto meta-algorithm runs on a sharded collection until its explore
// budget is spent, then its converged steady-state latency is compared
// against every fixed arm the planner chooses between (Hybrid and
// Q-Flow, unsharded and at full fan-out). The "plan" column shows what
// Auto converged to; every Auto answer is cross-checked for
// set-identity against the unsharded Hybrid baseline.
func (cfg Config) Planner(w io.Writer) {
	maxP := 4
	for _, p := range cfg.Shards {
		if p > maxP {
			maxP = p
		}
	}
	header(w, "adaptive planner: Algorithm Auto vs fixed arms (extension)",
		fmt.Sprintf("Store collection, shards=%d; n=%d d=%d t=%d; %d warm-up queries before measuring",
			maxP, cfg.N, cfg.D, cfg.MaxThreads, plannerWarmup))
	fmt.Fprintf(w, "%-16s %-10s %6s %12s %14s %6s  %s\n",
		"distribution", "arm", "shards", "ms", "dom. tests", "exact", "plan")

	st := skybench.NewStore(cfg.MaxThreads)
	defer st.Close()
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	ctx := context.Background()

	type arm struct {
		name   string
		alg    skybench.Algorithm
		shards int
	}
	arms := []arm{
		{"hybrid", skybench.Hybrid, 1},
		{"hybrid", skybench.Hybrid, maxP},
		{"qflow", skybench.QFlow, 1},
		{"qflow", skybench.QFlow, maxP},
	}

	for _, dist := range dataset.AllDistributions {
		m := cfg.gen(dist, cfg.N, cfg.D)
		ds, err := skybench.DatasetFromFlat(m.Flat(), m.N(), m.D())
		if err != nil {
			panic(fmt.Sprintf("bench: planner dataset: %v", err))
		}

		// Fixed arms first; the unsharded Hybrid row doubles as the
		// exactness baseline.
		var baseline map[int]int32
		for _, a := range arms {
			col, err := st.Attach(fmt.Sprintf("%s-%s-p%d", dist, a.name, a.shards), ds,
				skybench.CollectionOptions{Shards: a.shards, CacheCapacity: -1})
			if err != nil {
				panic(fmt.Sprintf("bench: planner attach: %v", err))
			}
			elapsed, last := timeReplay(ctx, col, skybench.Query{Algorithm: a.alg}, reps)
			if baseline == nil {
				baseline = resultSet(last)
			}
			fmt.Fprintf(w, "%-16s %-10s %6d %12s %14d %6s\n",
				dist, a.name, a.shards, ms(elapsed), last.Stats.DominanceTests,
				exactMark(resultSet(last), baseline))
		}

		// Auto: spend the explore budget, then measure the converged plan.
		col, err := st.Attach(fmt.Sprintf("%s-auto", dist), ds,
			skybench.CollectionOptions{Shards: maxP, CacheCapacity: -1})
		if err != nil {
			panic(fmt.Sprintf("bench: planner attach auto: %v", err))
		}
		q := skybench.Query{Algorithm: skybench.Auto}
		for i := 0; i < plannerWarmup; i++ {
			if _, err := col.Run(ctx, q); err != nil {
				panic(fmt.Sprintf("bench: planner warmup %s: %v", dist, err))
			}
		}
		elapsed, last := timeReplay(ctx, col, q, reps)
		plan := last.Plan
		desc := "-"
		shards := 0
		if plan != nil {
			shards = plan.Shards
			desc = fmt.Sprintf("%s/%d alpha=%d beta=%d no_prefilter=%v class=%s explore=%v",
				plan.Algorithm, plan.Shards, plan.Alpha, plan.Beta, plan.NoPrefilter,
				plan.Class, plan.Explore)
		}
		fmt.Fprintf(w, "%-16s %-10s %6d %12s %14d %6s  %s\n",
			dist, "auto", shards, ms(elapsed), last.Stats.DominanceTests,
			exactMark(resultSet(last), baseline), desc)
	}
}

// timeReplay runs q reps times and returns the mean wall time (charging
// Auto for its planning overhead) with the final result.
func timeReplay(ctx context.Context, col *skybench.Collection, q skybench.Query, reps int) (time.Duration, *skybench.QueryResult) {
	var total time.Duration
	var last *skybench.QueryResult
	for r := 0; r < reps; r++ {
		start := time.Now()
		res, err := col.Run(ctx, q)
		if err != nil {
			panic(fmt.Sprintf("bench: planner query: %v", err))
		}
		total += time.Since(start)
		last = res
	}
	return total / time.Duration(reps), last
}

// resultSet keys a result by row index for order-insensitive
// comparison (sharded and downshifted runs order results differently).
func resultSet(res *skybench.QueryResult) map[int]int32 {
	got := make(map[int]int32, res.Len())
	for pos, i := range res.Indices {
		if res.Counts != nil {
			got[i] = res.Counts[pos]
		} else {
			got[i] = 0
		}
	}
	return got
}

// exactMark compares two result sets for identity of membership and
// dominator counts.
func exactMark(got, want map[int]int32) string {
	if len(got) != len(want) {
		return "NO"
	}
	for i, c := range want {
		if gc, ok := got[i]; !ok || gc != c {
			return "NO"
		}
	}
	return "yes"
}
