package bench

import (
	"fmt"
	"io"

	"skybench"

	"skybench/internal/dataset"
	"skybench/internal/point"
)

// Table1 prints the real-dataset specifications: paper-published values
// next to the measured properties of this repository's stand-ins.
func (cfg Config) Table1(w io.Writer) {
	header(w, "Table I: specifications of real datasets",
		fmt.Sprintf("synthetic stand-ins at scale %.2f (see DESIGN.md §5)", cfg.RealScale))
	fmt.Fprintf(w, "%-10s %10s %4s %14s %14s %12s %12s\n",
		"dataset", "n", "d", "|SKY| paper", "|SKY| ours", "frac paper", "frac ours")
	for _, r := range dataset.AllRealDatasets {
		spec := r.Spec()
		m := r.Load(cfg.RealScale)
		res := cfg.Run(skybench.Hybrid, m, cfg.MaxThreads, nil)
		frac := float64(res.Stats.SkylineSize) / float64(m.N())
		fmt.Fprintf(w, "%-10s %10d %4d %14d %14d %12.4f %12.4f\n",
			spec.Name, m.N(), spec.Dimensionality, spec.SkylineSize,
			res.Stats.SkylineSize, spec.SkylineFrac, frac)
	}
}

// Table2 reports runtimes on the real datasets at full thread count,
// with each parallel algorithm's speedup over its own single-threaded
// run (the paper's Table II).
func (cfg Config) Table2(w io.Writer) {
	header(w, "Table II: performance on real data",
		fmt.Sprintf("stand-ins at scale %.2f; speedup is t=%d over t=1", cfg.RealScale, cfg.MaxThreads))
	algos := []skybench.Algorithm{
		skybench.BSkyTree, skybench.PBSkyTree, skybench.PSkyline,
		skybench.QFlow, skybench.Hybrid,
	}
	fmt.Fprintf(w, "%-12s", "algorithm")
	for _, r := range dataset.AllRealDatasets {
		name := r.Spec().Name
		fmt.Fprintf(w, " %12s %9s", name+"(ms)", "speedup")
	}
	fmt.Fprintln(w)
	mats := make([]point.Matrix, len(dataset.AllRealDatasets))
	for i, r := range dataset.AllRealDatasets {
		mats[i] = r.Load(cfg.RealScale)
	}
	for _, a := range algos {
		fmt.Fprintf(w, "%-12s", a)
		for _, m := range mats {
			multi := cfg.Run(a, m, cfg.MaxThreads, nil)
			if a == skybench.BSkyTree {
				fmt.Fprintf(w, " %12s %9s", ms(multi.Elapsed), "-")
				continue
			}
			single := cfg.Run(a, m, 1, nil)
			speedup := float64(single.Elapsed) / float64(multi.Elapsed)
			fmt.Fprintf(w, " %12s %8.1fx", ms(multi.Elapsed), speedup)
		}
		fmt.Fprintln(w)
	}
}

// Table3 reports the parallelization overhead of PBSkyTree: the runtime
// of single-threaded PBSkyTree relative to natively sequential BSkyTree
// across the cardinality sweep (the paper's Table III).
func (cfg Config) Table3(w io.Writer) {
	header(w, "Table III: BSkyTree relative to PBSkyTree (t=1)",
		fmt.Sprintf("d=%d; ratio > 1 means the Appendix-A batching costs time at t=1", cfg.D))
	fmt.Fprintf(w, "%-16s %10s %14s %16s %8s\n",
		"distribution", "n", "bskytree(ms)", "pbskytree1(ms)", "ratio")
	for _, dist := range dataset.AllDistributions {
		for _, n := range cfg.NSweep {
			m := cfg.gen(dist, n, cfg.D)
			seq := cfg.Run(skybench.BSkyTree, m, 1, nil)
			par1 := cfg.Run(skybench.PBSkyTree, m, 1, nil)
			ratio := float64(par1.Elapsed) / float64(seq.Elapsed)
			fmt.Fprintf(w, "%-16s %10d %14s %16s %7.1fx\n",
				dist, n, ms(seq.Elapsed), ms(par1.Elapsed), ratio)
		}
	}
}

// Ablations quantifies each Hybrid design component by disabling it:
// the M(S) index, level-2 re-partitioning, and the pre-filter.
func (cfg Config) Ablations(w io.Writer) {
	header(w, "Ablation study: Hybrid design components",
		fmt.Sprintf("n=%d d=%d t=%d; DTs are the machine-independent cost", cfg.N, cfg.D, cfg.MaxThreads))
	variants := []struct {
		name string
		ab   skybench.Ablation
	}{
		{"full", skybench.Ablation{}},
		{"no-ms", skybench.Ablation{NoMS: true}},
		{"no-level2", skybench.Ablation{NoLevel2: true}},
		{"no-prefilter", skybench.Ablation{NoPrefilter: true}},
		{"no-p2split", skybench.Ablation{NoPhase2Split: true}},
	}
	fmt.Fprintf(w, "%-16s %-14s %12s %16s %12s\n",
		"distribution", "variant", "time(ms)", "DTs", "|skyline|")
	for _, dist := range dataset.AllDistributions {
		m := cfg.gen(dist, cfg.N, cfg.D)
		for _, v := range variants {
			r := cfg.Run(skybench.Hybrid, m, cfg.MaxThreads, func(o *skybench.Options) { o.Ablation = v.ab })
			fmt.Fprintf(w, "%-16s %-14s %12s %16d %12d\n",
				dist, v.name, ms(r.Elapsed), r.Stats.DominanceTests, r.Stats.SkylineSize)
		}
	}
}

// Multicore compares all six multicore algorithms in the suite — the
// paper's Hybrid/Q-Flow/PBSkyTree/PSkyline plus the related-work PSFS
// and APSkyline — on the three distributions. This extends the paper's
// evaluation, which omits PSFS and APSkyline from its figures.
func (cfg Config) Multicore(w io.Writer) {
	header(w, "Extension: all multicore algorithms",
		fmt.Sprintf("n=%d d=%d t=%d", cfg.N, cfg.D, cfg.MaxThreads))
	algos := []skybench.Algorithm{
		skybench.Hybrid, skybench.QFlow, skybench.PBSkyTree,
		skybench.PSkyline, skybench.PSFS, skybench.APSkyline,
	}
	fmt.Fprintf(w, "%-16s %-12s %12s %16s %12s\n",
		"distribution", "algorithm", "time(ms)", "DTs", "|skyline|")
	for _, dist := range dataset.AllDistributions {
		m := cfg.gen(dist, cfg.N, cfg.D)
		for _, a := range algos {
			r := cfg.Run(a, m, cfg.MaxThreads, nil)
			fmt.Fprintf(w, "%-16s %-12s %12s %16d %12d\n",
				dist, a, ms(r.Elapsed), r.Stats.DominanceTests, r.Stats.SkylineSize)
		}
	}
}

// Experiments maps experiment names to their implementations, in paper
// order. cmd/experiments iterates this registry.
func Experiments() []struct {
	Name string
	Desc string
	Run  func(Config, io.Writer)
} {
	return []struct {
		Name string
		Desc string
		Run  func(Config, io.Writer)
	}{
		{"fig4", "skyline sizes in synthetic data", Config.Fig4},
		{"table1", "real dataset specifications", Config.Table1},
		{"fig5", "runtime vs dimensionality, 5 algorithms", Config.Fig5},
		{"fig6", "runtime vs cardinality, 5 algorithms", Config.Fig6},
		{"table2", "performance on real data with speedups", Config.Table2},
		{"fig7", "effect of alpha on Q-Flow, phase decomposition", Config.Fig7},
		{"fig8", "effect of alpha on Hybrid, phase decomposition", Config.Fig8},
		{"fig9", "pivot selection strategies", Config.Fig9},
		{"fig10", "Q-Flow vs PSkyline thread scaling over d", Config.Fig10},
		{"fig11", "Q-Flow vs PSkyline thread scaling over n", Config.Fig11},
		{"fig12", "Hybrid vs PBSkyTree thread scaling over d", Config.Fig12},
		{"fig13", "Hybrid vs PBSkyTree thread scaling over n", Config.Fig13},
		{"table3", "PBSkyTree single-thread overhead", Config.Table3},
		{"ablations", "Hybrid component ablations", Config.Ablations},
		{"multicore", "all six multicore algorithms (extension)", Config.Multicore},
		{"stream", "incremental maintenance vs recompute (extension)", Config.StreamMaintenance},
		{"skyband", "k-skyband cost curve over k (extension)", Config.Skyband},
		{"shard", "sharded serving fan-out + merge vs single partition (extension)", Config.Shard},
		{"planner", "adaptive planner (Algorithm Auto) vs fixed arms (extension)", Config.Planner},
	}
}
