package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"skybench"

	"skybench/internal/dataset"
)

// defaultShardPs is the partition sweep of the shard experiment when
// the config leaves it empty: the unsharded baseline plus doubling
// fan-outs.
var defaultShardPs = []int{1, 2, 4, 8}

// Shard is the serving-facade experiment: the cost of partitioned
// fan-out + exact merge against the single-partition engine, per
// distribution, for skylines and a k-skyband cut. Every sharded row is
// cross-checked for set-identity against the unsharded answer (column
// "exact"), and the merge's share of the dominance tests shows what the
// union recount costs.
func (cfg Config) Shard(w io.Writer) {
	ps := cfg.Shards
	if len(ps) == 0 {
		ps = defaultShardPs
	}
	header(w, "sharded serving: fan-out + merge vs single partition (extension)",
		fmt.Sprintf("Store collection over shard counts; n=%d d=%d t=%d", cfg.N, cfg.D, cfg.MaxThreads))
	fmt.Fprintf(w, "%-16s %6s %6s %12s %12s %14s %6s\n",
		"distribution", "shards", "k", "band", "ms", "dom. tests", "exact")

	st := skybench.NewStore(cfg.MaxThreads)
	defer st.Close()
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	ctx := context.Background()
	for _, dist := range dataset.AllDistributions {
		m := cfg.gen(dist, cfg.N, cfg.D)
		ds, err := skybench.DatasetFromFlat(m.Flat(), m.N(), m.D())
		if err != nil {
			panic(fmt.Sprintf("bench: shard dataset: %v", err))
		}
		for _, k := range []int{1, 4} {
			var baseline map[int]int32
			for _, p := range ps {
				col, err := st.Attach(fmt.Sprintf("%s-k%d-p%d", dist, k, p), ds,
					skybench.CollectionOptions{Shards: p, CacheCapacity: -1})
				if err != nil {
					panic(fmt.Sprintf("bench: shard attach: %v", err))
				}
				q := skybench.Query{SkybandK: k}
				var total time.Duration
				var last *skybench.QueryResult
				for r := 0; r < reps; r++ {
					start := time.Now()
					res, err := col.Run(ctx, q)
					if err != nil {
						panic(fmt.Sprintf("bench: shard %s p=%d k=%d: %v", dist, p, k, err))
					}
					total += time.Since(start)
					last = res
				}
				exact := "-"
				got := make(map[int]int32, last.Len())
				for pos, i := range last.Indices {
					if last.Counts != nil {
						got[i] = last.Counts[pos]
					} else {
						got[i] = 0
					}
				}
				if p == ps[0] && ps[0] == 1 {
					baseline = got
				} else if baseline != nil {
					exact = "yes"
					if len(got) != len(baseline) {
						exact = "NO"
					} else {
						for i, c := range baseline {
							// Membership must be checked explicitly: at
							// k=1 all counts are 0, so a missing row's
							// map zero value would masquerade as a match.
							if gc, ok := got[i]; !ok || gc != c {
								exact = "NO"
								break
							}
						}
					}
				}
				fmt.Fprintf(w, "%-16s %6d %6d %12d %12s %14d %6s\n",
					dist, p, k, last.Len(), ms(total/time.Duration(reps)),
					last.Stats.DominanceTests, exact)
			}
		}
	}
}
