package bench

import (
	"fmt"
	"io"

	"skybench"

	"skybench/internal/dataset"
)

// fig56Algos are the five algorithms of Figures 5 and 6: the sequential
// state of the art plus the four parallel competitors.
var fig56Algos = []skybench.Algorithm{
	skybench.BSkyTree, skybench.Hybrid, skybench.PBSkyTree,
	skybench.QFlow, skybench.PSkyline,
}

// Fig4 reports skyline sizes for the synthetic workloads: |SKY| as a
// function of cardinality (d fixed) and of dimensionality (n fixed),
// for all three distributions.
func (cfg Config) Fig4(w io.Writer) {
	header(w, "Figure 4: skyline sizes in synthetic data",
		fmt.Sprintf("left: vary n at d=%d; right: vary d at n=%d", cfg.D, cfg.N))
	fmt.Fprintf(w, "%-16s %10s %6s %12s %8s\n", "distribution", "n", "d", "|skyline|", "frac")
	for _, dist := range dataset.AllDistributions {
		for _, n := range cfg.NSweep {
			m := cfg.gen(dist, n, cfg.D)
			res := cfg.Run(skybench.Hybrid, m, cfg.MaxThreads, nil)
			fmt.Fprintf(w, "%-16s %10d %6d %12d %8.4f\n",
				dist, n, cfg.D, res.Stats.SkylineSize, float64(res.Stats.SkylineSize)/float64(n))
		}
	}
	for _, dist := range dataset.AllDistributions {
		for _, d := range cfg.Dims {
			m := cfg.gen(dist, cfg.N, d)
			res := cfg.Run(skybench.Hybrid, m, cfg.MaxThreads, nil)
			fmt.Fprintf(w, "%-16s %10d %6d %12d %8.4f\n",
				dist, cfg.N, d, res.Stats.SkylineSize, float64(res.Stats.SkylineSize)/float64(cfg.N))
		}
	}
}

// Fig5 reports runtimes of the five algorithms as dimensionality grows
// (n fixed), per distribution. DT counts are included because on this
// host wall-clock cannot express thread scaling (see DESIGN.md §5).
func (cfg Config) Fig5(w io.Writer) {
	header(w, "Figure 5: state-of-the-art performance w.r.t. d",
		fmt.Sprintf("n=%d, parallel algorithms at t=%d, BSkyTree sequential", cfg.N, cfg.MaxThreads))
	cfg.varyDimTable(w, fig56Algos)
}

// Fig6 reports runtimes of the five algorithms as cardinality grows
// (d fixed), per distribution.
func (cfg Config) Fig6(w io.Writer) {
	header(w, "Figure 6: state-of-the-art performance w.r.t. n",
		fmt.Sprintf("d=%d, parallel algorithms at t=%d, BSkyTree sequential", cfg.D, cfg.MaxThreads))
	cfg.varyCardTable(w, fig56Algos)
}

func (cfg Config) varyDimTable(w io.Writer, algos []skybench.Algorithm) {
	fmt.Fprintf(w, "%-16s %4s", "distribution", "d")
	for _, a := range algos {
		fmt.Fprintf(w, " %12s %14s", a.String()+"(ms)", a.String()+"(DTs)")
	}
	fmt.Fprintln(w)
	for _, dist := range dataset.AllDistributions {
		for _, d := range cfg.Dims {
			m := cfg.gen(dist, cfg.N, d)
			fmt.Fprintf(w, "%-16s %4d", dist, d)
			for _, a := range algos {
				threads := cfg.MaxThreads
				if a == skybench.BSkyTree {
					threads = 1
				}
				r := cfg.Run(a, m, threads, nil)
				fmt.Fprintf(w, " %12s %14d", ms(r.Elapsed), r.Stats.DominanceTests)
			}
			fmt.Fprintln(w)
		}
	}
}

func (cfg Config) varyCardTable(w io.Writer, algos []skybench.Algorithm) {
	fmt.Fprintf(w, "%-16s %10s", "distribution", "n")
	for _, a := range algos {
		fmt.Fprintf(w, " %12s %14s", a.String()+"(ms)", a.String()+"(DTs)")
	}
	fmt.Fprintln(w)
	for _, dist := range dataset.AllDistributions {
		for _, n := range cfg.NSweep {
			m := cfg.gen(dist, n, cfg.D)
			fmt.Fprintf(w, "%-16s %10d", dist, n)
			for _, a := range algos {
				threads := cfg.MaxThreads
				if a == skybench.BSkyTree {
					threads = 1
				}
				r := cfg.Run(a, m, threads, nil)
				fmt.Fprintf(w, " %12s %14d", ms(r.Elapsed), r.Stats.DominanceTests)
			}
			fmt.Fprintln(w)
		}
	}
}

// alphaSweepQFlow is the α grid of Figure 7 (2^7 … 2^16).
var alphaSweepQFlow = []int{1 << 7, 1 << 10, 1 << 13, 1 << 16}

// Fig7 decomposes Q-Flow runtime by phase across the α sweep and prints
// PSkyline for comparison, per distribution.
func (cfg Config) Fig7(w io.Writer) {
	header(w, "Figure 7: effect of α in Q-Flow (phase decomposition)",
		fmt.Sprintf("n=%d d=%d t=%d; PSkyline shown for comparison", cfg.N, cfg.D, cfg.MaxThreads))
	fmt.Fprintf(w, "%-16s %-10s %10s %10s %10s %10s %10s\n",
		"distribution", "config", "init(ms)", "phase1", "phase2", "other", "total")
	for _, dist := range dataset.AllDistributions {
		m := cfg.gen(dist, cfg.N, cfg.D)
		for _, alpha := range alphaSweepQFlow {
			r := cfg.Run(skybench.QFlow, m, cfg.MaxThreads, func(o *skybench.Options) { o.Alpha = alpha })
			tm := r.Stats.Timings
			other := tm.Compress + tm.Other
			fmt.Fprintf(w, "%-16s alpha=2^%-2d %10s %10s %10s %10s %10s\n",
				dist, log2(alpha), ms(tm.Init), ms(tm.PhaseOne), ms(tm.PhaseTwo), ms(other), ms(r.Elapsed))
		}
		r := cfg.Run(skybench.PSkyline, m, cfg.MaxThreads, nil)
		tm := r.Stats.Timings
		fmt.Fprintf(w, "%-16s %-10s %10s %10s %10s %10s %10s\n",
			dist, "pskyline", ms(0), ms(tm.PhaseOne), ms(tm.PhaseTwo), ms(0), ms(r.Elapsed))
	}
}

// Fig8 decomposes Hybrid runtime by phase across the α sweep.
func (cfg Config) Fig8(w io.Writer) {
	header(w, "Figure 8: effect of α on Hybrid (phase decomposition)",
		fmt.Sprintf("n=%d d=%d t=%d", cfg.N, cfg.D, cfg.MaxThreads))
	fmt.Fprintf(w, "%-16s %-10s %9s %9s %9s %9s %9s %9s %9s %9s\n",
		"distribution", "config", "init", "prefilt", "pivot", "phase1", "phase2", "compress", "other", "total")
	for _, dist := range dataset.AllDistributions {
		m := cfg.gen(dist, cfg.N, cfg.D)
		for _, alpha := range alphaSweepQFlow {
			r := cfg.Run(skybench.Hybrid, m, cfg.MaxThreads, func(o *skybench.Options) { o.Alpha = alpha })
			tm := r.Stats.Timings
			fmt.Fprintf(w, "%-16s alpha=2^%-2d %9s %9s %9s %9s %9s %9s %9s %9s\n",
				dist, log2(alpha), ms(tm.Init), ms(tm.Prefilter), ms(tm.Pivot),
				ms(tm.PhaseOne), ms(tm.PhaseTwo), ms(tm.Compress), ms(tm.Other), ms(r.Elapsed))
		}
	}
}

// pivotAlphaSweep is the α grid of Figure 9 (16 … 8192).
var pivotAlphaSweep = []int{16, 128, 1024, 8192}

// Fig9 compares Hybrid's five pivot-selection strategies across α.
func (cfg Config) Fig9(w io.Writer) {
	header(w, "Figure 9: effect of pivot selection in Hybrid",
		fmt.Sprintf("n=%d d=%d t=%d", cfg.N, cfg.D, cfg.MaxThreads))
	pivots := []skybench.PivotStrategy{
		skybench.PivotBalanced, skybench.PivotVolume, skybench.PivotManhattan,
		skybench.PivotRandom, skybench.PivotMedian,
	}
	fmt.Fprintf(w, "%-16s %8s", "distribution", "alpha")
	for _, p := range pivots {
		fmt.Fprintf(w, " %12s", p.String()+"(ms)")
	}
	fmt.Fprintln(w)
	for _, dist := range dataset.AllDistributions {
		m := cfg.gen(dist, cfg.N, cfg.D)
		for _, alpha := range pivotAlphaSweep {
			fmt.Fprintf(w, "%-16s %8d", dist, alpha)
			for _, p := range pivots {
				r := cfg.Run(skybench.Hybrid, m, cfg.MaxThreads, func(o *skybench.Options) {
					o.Alpha = alpha
					o.Pivot = p
					o.Seed = cfg.Seed
				})
				fmt.Fprintf(w, " %12s", ms(r.Elapsed))
			}
			fmt.Fprintln(w)
		}
	}
}

// Fig10 reports Q-Flow vs PSkyline thread scaling across dimensionality.
func (cfg Config) Fig10(w io.Writer) {
	header(w, "Figure 10: Q-Flow versus PSkyline w.r.t. d (thread sweep)",
		fmt.Sprintf("n=%d", cfg.N))
	cfg.threadScalingDim(w, skybench.QFlow, skybench.PSkyline)
}

// Fig11 reports Q-Flow vs PSkyline thread scaling across cardinality.
func (cfg Config) Fig11(w io.Writer) {
	header(w, "Figure 11: Q-Flow versus PSkyline w.r.t. n (thread sweep)",
		fmt.Sprintf("d=%d", cfg.D))
	cfg.threadScalingCard(w, skybench.QFlow, skybench.PSkyline)
}

// Fig12 reports Hybrid vs PBSkyTree thread scaling across dimensionality.
func (cfg Config) Fig12(w io.Writer) {
	header(w, "Figure 12: parallel scalability in Hybrid w.r.t. d",
		fmt.Sprintf("n=%d, versus PBSkyTree", cfg.N))
	cfg.threadScalingDim(w, skybench.Hybrid, skybench.PBSkyTree)
}

// Fig13 reports Hybrid vs PBSkyTree thread scaling across cardinality.
func (cfg Config) Fig13(w io.Writer) {
	header(w, "Figure 13: parallel scalability in Hybrid w.r.t. n",
		fmt.Sprintf("d=%d, versus PBSkyTree", cfg.D))
	cfg.threadScalingCard(w, skybench.Hybrid, skybench.PBSkyTree)
}

func (cfg Config) threadScalingDim(w io.Writer, a, b skybench.Algorithm) {
	fmt.Fprintf(w, "%-16s %4s %4s %14s %14s\n", "distribution", "d", "t", a.String()+"(ms)", b.String()+"(ms)")
	for _, dist := range dataset.AllDistributions {
		for _, d := range cfg.Dims {
			m := cfg.gen(dist, cfg.N, d)
			for _, t := range cfg.Threads {
				ra := cfg.Run(a, m, t, nil)
				rb := cfg.Run(b, m, t, nil)
				fmt.Fprintf(w, "%-16s %4d %4d %14s %14s\n", dist, d, t, ms(ra.Elapsed), ms(rb.Elapsed))
			}
		}
	}
}

func (cfg Config) threadScalingCard(w io.Writer, a, b skybench.Algorithm) {
	fmt.Fprintf(w, "%-16s %10s %4s %14s %14s\n", "distribution", "n", "t", a.String()+"(ms)", b.String()+"(ms)")
	for _, dist := range dataset.AllDistributions {
		for _, n := range cfg.NSweep {
			m := cfg.gen(dist, n, cfg.D)
			for _, t := range cfg.Threads {
				ra := cfg.Run(a, m, t, nil)
				rb := cfg.Run(b, m, t, nil)
				fmt.Fprintf(w, "%-16s %10d %4d %14s %14s\n", dist, n, t, ms(ra.Elapsed), ms(rb.Elapsed))
			}
		}
	}
}

func log2(x int) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}
