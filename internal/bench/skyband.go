package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"skybench"

	"skybench/internal/dataset"
)

// defaultSkybandKs is the k sweep of the skyband experiment when the
// config leaves it empty: the skyline baseline plus doubling budgets.
var defaultSkybandKs = []int{1, 2, 4, 8, 16}

// Skyband is the extension experiment for the k-skyband query path: the
// band's cost curve over k, per distribution, for Hybrid and Q-Flow —
// how much the generalization from "dead at the first dominator" to
// "count dominators up to k" costs in wall-clock and dominance tests,
// and how fast the result set grows with k. k = 1 runs the untouched
// skyline path and anchors the curve.
func (cfg Config) Skyband(w io.Writer) {
	ks := cfg.SkybandKs
	if len(ks) == 0 {
		ks = defaultSkybandKs
	}
	header(w, "k-skyband cost curve (extension)",
		fmt.Sprintf("Hybrid/Q-Flow skyband queries over k; n=%d d=%d t=%d", cfg.N, cfg.D, cfg.MaxThreads))
	fmt.Fprintf(w, "%-16s %-8s %6s %12s %12s %14s\n",
		"distribution", "algo", "k", "band", "ms", "dom. tests")

	eng := skybench.NewEngine(cfg.MaxThreads)
	defer eng.Close()
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	for _, dist := range dataset.AllDistributions {
		m := cfg.gen(dist, cfg.N, cfg.D)
		ds, err := skybench.DatasetFromFlat(m.Flat(), m.N(), m.D())
		if err != nil {
			panic(fmt.Sprintf("bench: skyband dataset: %v", err))
		}
		for _, alg := range []skybench.Algorithm{skybench.Hybrid, skybench.QFlow} {
			for _, k := range ks {
				q := skybench.Query{Algorithm: alg, SkybandK: k, ReuseIndices: true}
				var total time.Duration
				var last skybench.Result
				for r := 0; r < reps; r++ {
					res, err := eng.Run(context.Background(), ds, q)
					if err != nil {
						panic(fmt.Sprintf("bench: skyband %s k=%d: %v", alg, k, err))
					}
					total += res.Stats.Elapsed
					last = res
				}
				fmt.Fprintf(w, "%-16s %-8s %6d %12d %12s %14d\n",
					dist, alg, k, last.Stats.SkylineSize,
					ms(total/time.Duration(reps)), last.Stats.DominanceTests)
			}
		}
	}
}
