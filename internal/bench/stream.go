package bench

import (
	"context"
	"fmt"
	"io"
	"slices"
	"time"

	"skybench"

	"skybench/internal/dataset"
	istream "skybench/internal/stream"
	"skybench/stream"
)

// StreamMaintenance is the extension experiment for the skybench/stream
// subsystem: per-distribution, replay N warm inserts plus StreamUpdates
// mixed operations (StreamChurn deletes) into a SkylineIndex and compare
// its update throughput with the recompute-per-update cost of Engine.Run
// over the same live set.
func (cfg Config) StreamMaintenance(w io.Writer) {
	kband := cfg.StreamSkybandK
	if kband < 1 {
		kband = 1
	}
	header(w, "stream maintenance (extension)",
		fmt.Sprintf("incremental SkylineIndex vs Engine.Run recompute-per-update; warm=%d updates=%d churn=%.2f d=%d k=%d",
			cfg.N, cfg.StreamUpdates, cfg.StreamChurn, cfg.D, kband))
	fmt.Fprintf(w, "%-16s %12s %12s %12s %10s %9s %9s\n",
		"distribution", "updates/s", "p99 µs", "recompute/s", "speedup", "skyline", "rebuilds")

	eng := skybench.NewEngine(cfg.MaxThreads)
	defer eng.Close()

	for _, dist := range dataset.AllDistributions {
		tr := istream.GenerateTrace(dist, cfg.N, cfg.StreamUpdates, cfg.D, cfg.StreamChurn, cfg.Seed)
		ix, err := stream.New(cfg.D, stream.Config{Engine: eng, SkybandK: kband})
		if err != nil {
			panic(fmt.Sprintf("bench: stream index: %v", err))
		}

		apply := func(op istream.Op) {
			if op.Kind == istream.OpDelete {
				ix.Delete(stream.ID(op.Key))
				return
			}
			if _, err := ix.Insert(op.Row); err != nil {
				panic(fmt.Sprintf("bench: stream insert: %v", err))
			}
		}
		for _, op := range tr.Ops[:tr.Warm] {
			apply(op)
		}
		lat := make([]int64, 0, tr.Updates())
		var total time.Duration
		for _, op := range tr.Ops[tr.Warm:] {
			t0 := time.Now()
			apply(op)
			el := time.Since(t0)
			total += el
			lat = append(lat, el.Nanoseconds())
		}

		// Price one recompute of the final live set (the per-update cost
		// of the recompute-every-change alternative).
		rows := liveRows(tr)
		base := time.Duration(0)
		if len(rows) > 0 {
			ds, err := skybench.NewDataset(rows)
			if err != nil {
				panic(fmt.Sprintf("bench: stream baseline: %v", err))
			}
			q := skybench.Query{}
			if kband > 1 {
				q.SkybandK = kband
			}
			t0 := time.Now()
			if _, err := eng.Run(context.Background(), ds, q); err != nil {
				panic(fmt.Sprintf("bench: stream baseline: %v", err))
			}
			base = time.Since(t0)
		}

		st := ix.Stats()
		upsPerSec := float64(len(lat)) / total.Seconds()
		speedup := 0.0
		if base > 0 {
			speedup = upsPerSec * base.Seconds()
		}
		fmt.Fprintf(w, "%-16s %12.0f %12.1f %12.1f %9.0fx %9d %9d\n",
			dist, upsPerSec, p99(lat), 1/base.Seconds(), speedup, st.SkylineSize, st.Rebuilds)
		ix.Close()
	}
}

// liveRows returns the rows surviving a trace, in key order (sorted so
// the baseline recompute sees a reproducible input: skyline runtimes
// are input-order-sensitive, and map iteration order is not).
func liveRows(tr *istream.Trace) [][]float64 {
	rows := make(map[uint64][]float64)
	for _, op := range tr.Ops {
		if op.Kind == istream.OpInsert {
			rows[op.Key] = op.Row
		} else {
			delete(rows, op.Key)
		}
	}
	keys := make([]uint64, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	out := make([][]float64, len(keys))
	for i, k := range keys {
		out[i] = rows[k]
	}
	return out
}

// p99 returns the 99th-percentile of nanosecond samples, in microseconds.
func p99(lat []int64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]int64(nil), lat...)
	slices.Sort(s)
	return float64(s[(len(s)-1)*99/100]) / 1e3
}
