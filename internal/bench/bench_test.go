package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"skybench"

	"skybench/internal/dataset"
)

// tiny returns a configuration small enough that every experiment runs
// in well under a second.
func tiny() Config {
	return Config{
		N:          400,
		D:          5,
		Dims:       []int{3, 5},
		NSweep:     []int{200, 400},
		Threads:    []int{1, 2},
		MaxThreads: 2,
		Reps:       1,
		Seed:       7,
		RealScale:  0.01,
	}
}

// Every experiment must run end-to-end and produce a non-empty table.
func TestAllExperimentsProduceOutput(t *testing.T) {
	cfg := tiny()
	for _, exp := range Experiments() {
		var buf bytes.Buffer
		exp.Run(cfg, &buf)
		out := buf.String()
		if !strings.Contains(out, "===") {
			t.Errorf("%s: missing banner:\n%s", exp.Name, out)
		}
		if len(strings.Split(out, "\n")) < 4 {
			t.Errorf("%s: suspiciously short output:\n%s", exp.Name, out)
		}
	}
}

func TestExperimentRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, exp := range Experiments() {
		if seen[exp.Name] {
			t.Errorf("duplicate experiment %q", exp.Name)
		}
		seen[exp.Name] = true
		if exp.Desc == "" {
			t.Errorf("experiment %q lacks a description", exp.Name)
		}
	}
	for _, want := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "table1", "table2", "table3"} {
		if !seen[want] {
			t.Errorf("missing experiment %q (every paper table/figure must be covered)", want)
		}
	}
}

func TestRunAveragesReps(t *testing.T) {
	cfg := tiny()
	cfg.Reps = 3
	m := dataset.Generate(dataset.Independent, 500, 4, 1)
	meas := cfg.Run(skybench.Hybrid, m, 2, nil)
	if meas.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
	if meas.Stats.SkylineSize == 0 {
		t.Error("no skyline")
	}
}

func TestDefaultAndPaperScaleSane(t *testing.T) {
	d := Default()
	p := PaperScale()
	if d.N <= 0 || d.MaxThreads <= 0 || len(d.Dims) == 0 || len(d.NSweep) == 0 {
		t.Errorf("Default misconfigured: %+v", d)
	}
	if p.N != 1000000 || p.D != 12 {
		t.Errorf("PaperScale should match the paper: %+v", p)
	}
}

func TestMsFormatting(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != "1.50" {
		t.Errorf("ms = %q", got)
	}
}
