// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (Section VII) as textual tables.
// cmd/experiments exposes it on the command line; the repository-root
// benchmarks exercise the same workloads under testing.B.
//
// Scales default to laptop-affordable sizes (the paper used a 16-core
// Xeon with n up to 8M; see DESIGN.md §5) but every sweep is
// configurable up to paper scale through Config.
package bench

import (
	"fmt"
	"io"
	"time"

	"skybench"

	"skybench/internal/dataset"
	"skybench/internal/point"
)

// Config sets the workload scales shared by all experiments.
type Config struct {
	// N is the base cardinality (the paper's 1M default, scaled down).
	N int
	// D is the base dimensionality (the paper uses 12).
	D int
	// Dims is the dimensionality sweep (the paper uses 6–16).
	Dims []int
	// NSweep is the cardinality sweep (the paper uses 0.5M–8M).
	NSweep []int
	// Threads is the thread sweep for scalability experiments.
	Threads []int
	// MaxThreads is the thread count for "t = 16"-style comparisons.
	MaxThreads int
	// Reps is the number of repetitions averaged per measurement.
	Reps int
	// Seed drives dataset generation.
	Seed int64
	// RealScale scales the real-dataset stand-ins (1 = published size).
	RealScale float64
	// MaxDims lists dimension indices whose values are maximized instead
	// of minimized: the generated workloads are rewritten once (columns
	// negated) so every experiment measures the mixed-preference variant
	// of its workload. Indices beyond a sweep's dimensionality are
	// ignored.
	MaxDims []int
	// SubDims, when non-empty, restricts the workloads to a subspace:
	// only the listed dimension indices are kept. Indices beyond a
	// sweep's dimensionality are ignored.
	SubDims []int
	// StreamUpdates is the measured operation count of the stream
	// maintenance experiment (after N warm-up inserts).
	StreamUpdates int
	// StreamChurn is the delete fraction of the stream experiment's
	// update mix.
	StreamChurn float64
	// SkybandKs is the k sweep of the skyband experiment (empty selects
	// 1,2,4,8,16). It also sets the band parameter of the stream
	// experiment when StreamSkybandK is set.
	SkybandKs []int
	// StreamSkybandK is the band parameter of the stream maintenance
	// experiment (≤ 1 maintains the plain skyline).
	StreamSkybandK int
	// Shards is the partition sweep of the sharded-serving experiment
	// (empty selects 1,2,4,8; the leading 1 anchors the exactness
	// cross-check).
	Shards []int
}

// Default returns the laptop-scale defaults documented in DESIGN.md.
func Default() Config {
	return Config{
		N:             20000,
		D:             8,
		Dims:          []int{4, 6, 8, 10, 12},
		NSweep:        []int{5000, 10000, 20000, 40000, 80000},
		Threads:       []int{1, 2, 4, 8, 16},
		MaxThreads:    16,
		Reps:          1,
		Seed:          42,
		RealScale:     0.05,
		StreamUpdates: 20000,
		StreamChurn:   0.2,
	}
}

// PaperScale returns the paper's original workload parameters. Running
// them in Go on a small machine takes hours; provided for completeness.
func PaperScale() Config {
	return Config{
		N:             1000000,
		D:             12,
		Dims:          []int{6, 8, 10, 12, 14, 16},
		NSweep:        []int{500000, 1000000, 2000000, 4000000, 8000000},
		Threads:       []int{1, 2, 4, 8, 16},
		MaxThreads:    16,
		Reps:          1,
		Seed:          42,
		RealScale:     1,
		StreamUpdates: 1000000,
		StreamChurn:   0.2,
	}
}

// rowsView adapts a matrix to the public API without copying values.
func rowsView(m point.Matrix) [][]float64 { return m.Rows() }

// Measurement is one timed algorithm run.
type Measurement struct {
	Algorithm skybench.Algorithm
	Threads   int
	Elapsed   time.Duration
	Stats     skybench.Stats
}

// Run executes one algorithm over m, averaging cfg.Reps repetitions.
func (cfg Config) Run(alg skybench.Algorithm, m point.Matrix, threads int, extra func(*skybench.Options)) Measurement {
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	opt := skybench.Options{Algorithm: alg, Threads: threads}
	if extra != nil {
		extra(&opt)
	}
	rows := rowsView(m)
	var total time.Duration
	var last skybench.Result
	for r := 0; r < reps; r++ {
		res, err := skybench.Compute(rows, opt)
		if err != nil {
			panic(fmt.Sprintf("bench: %s failed: %v", alg, err))
		}
		total += res.Stats.Elapsed
		last = res
	}
	return Measurement{
		Algorithm: alg,
		Threads:   threads,
		Elapsed:   total / time.Duration(reps),
		Stats:     last.Stats,
	}
}

// gen produces a dataset for the experiment grid, applying the
// preference rewrite (MaxDims/SubDims) when one is configured.
func (cfg Config) gen(dist dataset.Distribution, n, d int) point.Matrix {
	m := dataset.Generate(dist, n, d, cfg.Seed)
	if len(cfg.MaxDims) == 0 && len(cfg.SubDims) == 0 {
		return m
	}
	ops := make([]point.PrefOp, d)
	if len(cfg.SubDims) > 0 {
		for i := range ops {
			ops[i] = point.PrefDrop
		}
		for _, i := range cfg.SubDims {
			if i >= 0 && i < d {
				ops[i] = point.PrefKeep
			}
		}
	}
	for _, i := range cfg.MaxDims {
		if i >= 0 && i < d && ops[i] != point.PrefDrop {
			ops[i] = point.PrefNegate
		}
	}
	de := point.EffectiveDims(ops)
	if de == 0 {
		// Every configured SubDims index fell outside this sweep's
		// dimensionality; silently measuring the full space would label
		// baseline numbers as subspace numbers.
		panic(fmt.Sprintf("bench: SubDims %v leave no dimensions at d=%d", cfg.SubDims, d))
	}
	if point.IdentityOps(ops) {
		return m
	}
	dst := make([]float64, n*de)
	point.StagePrefs(dst, m.Flat(), n, d, ops)
	return point.FromFlat(dst, n, de)
}

// ms formats a duration as fractional milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e6)
}

// header prints an experiment banner.
func header(w io.Writer, title, note string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
	if note != "" {
		fmt.Fprintf(w, "%s\n", note)
	}
}
