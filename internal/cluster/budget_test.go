package cluster

import (
	"testing"
	"time"
)

func TestBudget(t *testing.T) {
	now := time.Unix(1000, 0)
	cases := []struct {
		name     string
		deadline time.Time
		margin   time.Duration
		want     time.Duration
		ok       bool
	}{
		{
			name:     "plenty of budget",
			deadline: now.Add(500 * time.Millisecond),
			margin:   5 * time.Millisecond,
			want:     495 * time.Millisecond,
			ok:       true,
		},
		{
			name:     "remaining budget only, never the original grant",
			deadline: now.Add(80 * time.Millisecond), // 120ms of a 200ms grant already spent upstream
			margin:   5 * time.Millisecond,
			want:     75 * time.Millisecond,
			ok:       true,
		},
		{
			name:     "already expired",
			deadline: now.Add(-time.Millisecond),
			ok:       false,
		},
		{
			name:     "expired exactly now",
			deadline: now,
			ok:       false,
		},
		{
			name:     "margin consumes the rest",
			deadline: now.Add(4 * time.Millisecond),
			margin:   5 * time.Millisecond,
			ok:       false,
		},
		{
			name:     "margin exactly consumes the rest",
			deadline: now.Add(5 * time.Millisecond),
			margin:   5 * time.Millisecond,
			ok:       false,
		},
		{
			name:     "zero margin forwards the full remainder",
			deadline: now.Add(30 * time.Millisecond),
			margin:   0,
			want:     30 * time.Millisecond,
			ok:       true,
		},
		{
			name:     "negative margin clamps to zero",
			deadline: now.Add(30 * time.Millisecond),
			margin:   -time.Second,
			want:     30 * time.Millisecond,
			ok:       true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := Budget(now, tc.deadline, tc.margin)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if ok && got != tc.want {
				t.Fatalf("budget = %v, want %v", got, tc.want)
			}
			if !ok && got != 0 {
				t.Fatalf("budget = %v, want 0 when not ok", got)
			}
		})
	}
}
