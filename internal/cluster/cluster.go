// Package cluster takes the shard layer cross-process: a Coordinator
// implements the Store-facing query surface (skybench.RemoteBackend)
// by placing contiguous row-range shards of a collection across N
// worker skyserved processes, fanning each query out concurrently
// through the typed wire client, and merging the per-worker bands with
// the exact internal/shard semantics — skyline-of-union plus band
// recount (DESIGN.md §10) — so cluster answers are set- and
// count-identical to single-node runs, including cross-shard skyband
// counts.
//
// The merge is sound across the wire for the same reason it is sound
// across goroutines: each worker's band over-approximates its shard's
// contribution to the global band, and the recount over the union is
// exact (DESIGN.md §15 restates the argument for the wire transport).
// What the wire adds is partial failure, and the package's stance is
// that a degraded answer must always be *typed*: a worker that cannot
// answer yields either ErrWorkerUnavailable (fail-fast policy) or a
// result explicitly flagged Partial (partial policy) — and worker
// responses computed at different membership epochs are rejected with
// ErrEpochSkew rather than merged, because a cross-epoch union is a
// silently wrong answer, not a degraded one.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"skybench"
	"skybench/internal/point"
	"skybench/internal/shard"
	"skybench/serve"
	"skybench/serve/client"
)

// Policy is the degraded-answer policy of a cluster collection: what a
// query returns when a worker cannot answer.
type Policy int

const (
	// FailFast fails the whole query with ErrWorkerUnavailable on any
	// worker failure — the default: never serve an answer missing rows
	// unless the operator opted in.
	FailFast Policy = iota
	// Partial merges the surviving workers' bands and flags the result
	// Partial — the AllowStale-style graceful degradation of the
	// cluster layer. The merged set is the exact band of the surviving
	// rows; the failed workers' rows are missing and the response says
	// so.
	Partial
)

// String returns the policy's configuration spelling.
func (p Policy) String() string {
	if p == Partial {
		return "partial"
	}
	return "failfast"
}

// ParsePolicy parses a policy's configuration spelling.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "failfast", "fail-fast":
		return FailFast, nil
	case "partial":
		return Partial, nil
	}
	return 0, fmt.Errorf("%w: cluster policy %q (want failfast|partial)", skybench.ErrBadQuery, s)
}

// WorkerSpec places one contiguous global row range [Lo, Hi) on the
// worker skyserved process at Addr.
type WorkerSpec struct {
	Addr   string
	Lo, Hi int
}

// Config configures a Coordinator.
type Config struct {
	// Collection is the collection name on the workers (Distribute
	// ships shards under the same name the coordinator serves).
	Collection string
	// D is the dimensionality of the placed points.
	D int
	// Workers is the placement: contiguous ascending ranges starting at
	// 0, one per worker.
	Workers []WorkerSpec
	// Policy is the degraded-answer policy (default FailFast).
	Policy Policy
	// Margin is the RTT-and-merge margin subtracted from the request
	// deadline when deriving per-worker budgets (0 = DefaultMargin).
	Margin time.Duration
	// Retries bounds the wire client's transport retries per worker
	// call (0 = 2, negative = disabled).
	Retries int
	// Backoff is the client's first retry backoff (0 = client default).
	Backoff time.Duration
	// ProbeInterval is the worker health-probe cadence (0 = 2s,
	// negative = no probing; workers then stay reported healthy).
	ProbeInterval time.Duration
	// Engine, when set, merges unions larger than shard.MergeKernelMax
	// through a full engine recompute instead of the quadratic flat
	// recount — the same cutoff the in-process fan-out uses.
	Engine *skybench.Engine
	// HTTPClient, when set, is shared by every worker's wire client
	// (tests inject httptest transports here). Default: one private
	// transport per worker.
	HTTPClient *http.Client
}

// worker is one placed worker: its spec, its wire client, and its
// health and fan-out counters.
type worker struct {
	spec     WorkerSpec
	cli      *client.Client
	healthy  atomic.Bool
	queries  atomic.Uint64
	failures atomic.Uint64
}

// Coordinator fans queries out over a static cluster placement and
// merges the per-worker bands exactly. It implements
// skybench.RemoteBackend: attach it with Store.AttachRemote and query
// the resulting Collection like any other.
type Coordinator struct {
	cfg      Config
	n        int
	workers  []*worker
	epoch    atomic.Uint64
	partials atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New validates the placement and starts the health-probe loop. The
// workers are not contacted here — the first query (or probe) is the
// first wire traffic — so a coordinator can be built before its
// workers finish booting.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Collection == "" {
		return nil, fmt.Errorf("%w: cluster config needs a collection name", skybench.ErrBadQuery)
	}
	if cfg.D < 1 {
		return nil, fmt.Errorf("%w: cluster config needs the dimensionality (got %d)", skybench.ErrBadQuery, cfg.D)
	}
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("%w: cluster config needs at least one worker", skybench.ErrBadQuery)
	}
	lo := 0
	for i, ws := range cfg.Workers {
		if ws.Addr == "" {
			return nil, fmt.Errorf("%w: worker %d has no address", skybench.ErrBadQuery, i)
		}
		if ws.Lo != lo || ws.Hi <= ws.Lo {
			return nil, fmt.Errorf("%w: worker %d range [%d,%d) is not contiguous from %d", skybench.ErrBadQuery, i, ws.Lo, ws.Hi, lo)
		}
		lo = ws.Hi
	}
	co := &Coordinator{cfg: cfg, n: lo, stop: make(chan struct{})}
	retries := cfg.Retries
	if retries == 0 {
		retries = 2
	}
	for _, ws := range cfg.Workers {
		var cli *client.Client
		if cfg.HTTPClient != nil {
			cli = client.NewWithHTTPClient(ws.Addr, cfg.HTTPClient)
		} else {
			cli = client.New(ws.Addr)
		}
		if retries > 0 {
			cli.SetRetryPolicy(client.RetryPolicy{MaxAttempts: retries + 1, Backoff: cfg.Backoff})
		}
		w := &worker{spec: ws, cli: cli}
		w.healthy.Store(true)
		co.workers = append(co.workers, w)
	}
	if cfg.ProbeInterval >= 0 {
		interval := cfg.ProbeInterval
		if interval == 0 {
			interval = 2 * time.Second
		}
		co.wg.Add(1)
		go co.probeLoop(interval)
	}
	return co, nil
}

// Close stops the health probes and releases the worker clients' idle
// connections. Store.Drop/Close call it for collections attached with
// CloseOnDrop.
func (co *Coordinator) Close() {
	co.stopOnce.Do(func() { close(co.stop) })
	co.wg.Wait()
	for _, w := range co.workers {
		w.cli.Close()
	}
}

// D returns the dimensionality of the placed points.
func (co *Coordinator) D() int { return co.cfg.D }

// Len returns the total number of rows placed across workers.
func (co *Coordinator) Len() int { return co.n }

// Epoch returns the membership epoch the workers last agreed on (0
// until the first successful query, and forever for static shards).
func (co *Coordinator) Epoch() uint64 { return co.epoch.Load() }

// Placement reports the placement, worker health, and fan-out counters.
func (co *Coordinator) Placement() skybench.PlacementStats {
	ps := skybench.PlacementStats{
		Policy:   co.cfg.Policy.String(),
		Partials: co.partials.Load(),
	}
	for _, w := range co.workers {
		ps.Workers = append(ps.Workers, skybench.WorkerPlacement{
			Addr:     w.spec.Addr,
			Lo:       w.spec.Lo,
			Hi:       w.spec.Hi,
			Healthy:  w.healthy.Load(),
			Queries:  w.queries.Load(),
			Failures: w.failures.Load(),
			Retries:  w.cli.RetryCount(),
		})
	}
	return ps
}

// probeLoop probes every worker's /healthz on a fixed cadence.
func (co *Coordinator) probeLoop(interval time.Duration) {
	defer co.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
			co.Probe()
		}
	}
}

// Probe probes every worker's health endpoint once, concurrently, and
// updates the Healthy flags Placement reports.
func (co *Coordinator) Probe() {
	var wg sync.WaitGroup
	for _, w := range co.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			w.healthy.Store(w.cli.Healthz(ctx) == nil)
		}(w)
	}
	wg.Wait()
}

// margin returns the configured per-query deadline margin.
func (co *Coordinator) margin() time.Duration {
	if co.cfg.Margin > 0 {
		return co.cfg.Margin
	}
	return DefaultMargin
}

// callOut is the outcome of one worker call.
type callOut struct {
	resp    *serve.QueryResponse
	err     error
	wire    time.Duration
	retries uint64
}

// deadlineErr builds the triple-wrapped deadline error every deadline
// path in the repository reports, so errors.Is works for ErrCanceled,
// ErrDeadlineExceeded, and context.DeadlineExceeded alike.
func deadlineErr(format string, args ...any) error {
	return fmt.Errorf("%w: %w: %w: %s", skybench.ErrCanceled, skybench.ErrDeadlineExceeded,
		context.DeadlineExceeded, fmt.Sprintf(format, args...))
}

// wrapCtxErr wraps a raw context error the way the rest of the
// repository reports cancellation.
func wrapCtxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w: %w", skybench.ErrCanceled, skybench.ErrDeadlineExceeded, err)
	}
	return fmt.Errorf("%w: %w", skybench.ErrCanceled, err)
}

// Run answers one query over the placed rows: concurrent fan-out over
// the wire, exact merge, typed failure containment. It implements the
// skybench.RemoteBackend contract — ascending global Indices, exact
// Counts, Partial flagged, never a silently short merge.
func (co *Coordinator) Run(ctx context.Context, q skybench.Query) (*skybench.QueryResult, error) {
	if q.Progressive != nil {
		return nil, fmt.Errorf("%w: progressive delivery cannot cross the cluster wire", skybench.ErrBadQuery)
	}
	if q.Ablation != (skybench.Ablation{}) {
		return nil, fmt.Errorf("%w: ablation flags cannot cross the cluster wire", skybench.ErrBadQuery)
	}
	if len(q.Prefs) != 0 && len(q.Prefs) != co.cfg.D {
		return nil, fmt.Errorf("%w: %d preferences for %d dimensions", skybench.ErrBadQuery, len(q.Prefs), co.cfg.D)
	}
	start := time.Now()

	// The wire request: the query's result-determining fields only.
	// Trace and AllowStale stay coordinator-side (worker traces are
	// rebuilt from the responses' always-on stats; stale degradation
	// belongs to the Collection wrapping this backend — a worker-stale
	// answer would be a cross-epoch merge hazard). Values are always
	// requested: the merge recount needs the candidate coordinates.
	wreq := serve.QueryRequest{
		Algorithm: q.Algorithm.String(),
		SkybandK:  q.SkybandK,
		Alpha:     q.Alpha,
		Beta:      q.Beta,
		Pivot:     q.Pivot.String(),
		Seed:      q.Seed,
	}
	if len(q.Prefs) > 0 {
		wreq.Prefs = make([]string, len(q.Prefs))
		for i, p := range q.Prefs {
			wreq.Prefs[i] = p.String()
		}
	}

	outs := make([]callOut, len(co.workers))
	var wg sync.WaitGroup
	for i, w := range co.workers {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			outs[i] = co.callWorker(ctx, w, &wreq)
		}(i, w)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, wrapCtxErr(err)
	}

	// Classify the failures. Caller errors (bad query) and merge-safety
	// errors (epoch skew) are hard failures under every policy; a
	// deadline or cancel is the caller's budget expiring, not a worker
	// being away; only genuine worker unavailability is policy-shaped.
	var badErr, skewErr, dlErr, cancelErr, workerErr error
	failed := 0
	for i, out := range outs {
		if out.err == nil {
			continue
		}
		failed++
		err := out.err
		addr := co.workers[i].spec.Addr
		switch {
		case errors.Is(err, skybench.ErrEpochSkew):
			if skewErr == nil {
				skewErr = err
			}
		case errors.Is(err, skybench.ErrBadQuery), errors.Is(err, skybench.ErrUnknownAlgorithm),
			errors.Is(err, skybench.ErrBadDataset), errors.Is(err, skybench.ErrBadPoint):
			if badErr == nil {
				badErr = err
			}
		case errors.Is(err, skybench.ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
			if dlErr == nil {
				dlErr = fmt.Errorf("%w: %w: %w: worker %s: %v", skybench.ErrCanceled,
					skybench.ErrDeadlineExceeded, context.DeadlineExceeded, addr, err)
			}
		case errors.Is(err, skybench.ErrCanceled), errors.Is(err, context.Canceled):
			if cancelErr == nil {
				cancelErr = fmt.Errorf("%w: worker %s: %v", skybench.ErrCanceled, addr, err)
			}
		default:
			if workerErr == nil {
				workerErr = fmt.Errorf("%w: worker %s: %v", skybench.ErrWorkerUnavailable, addr, err)
			}
		}
	}
	switch {
	case badErr != nil:
		return nil, badErr
	case skewErr != nil:
		return nil, skewErr
	case dlErr != nil:
		return nil, dlErr
	case cancelErr != nil:
		return nil, cancelErr
	}
	partial := false
	if workerErr != nil {
		if co.cfg.Policy == FailFast {
			return nil, workerErr
		}
		if failed == len(co.workers) {
			return nil, fmt.Errorf("%w: all %d workers failed: %v", skybench.ErrWorkerUnavailable, len(co.workers), workerErr)
		}
		partial = true
	}

	// Epoch agreement across the surviving responses: merging bands
	// computed over different membership epochs would silently mix two
	// point sets, so skew is a hard error under every policy
	// (epoch-consistent stream shipping is the documented non-goal this
	// fences off).
	var epoch uint64
	seen := false
	for i, out := range outs {
		if out.resp == nil {
			continue
		}
		if !seen {
			epoch, seen = out.resp.Epoch, true
			continue
		}
		if out.resp.Epoch != epoch {
			return nil, fmt.Errorf("%w: worker %s answered at epoch %d, others at %d",
				skybench.ErrEpochSkew, co.workers[i].spec.Addr, out.resp.Epoch, epoch)
		}
	}
	co.epoch.Store(epoch)

	// Candidates: the union of per-worker bands as global row indices,
	// with the shipped coordinates (and stream IDs when every worker
	// has them) kept parallel.
	d := co.cfg.D
	total, input := 0, 0
	var dts uint64
	hasIDs := true
	for _, out := range outs {
		if out.resp == nil {
			continue
		}
		total += len(out.resp.Indices)
		input += out.resp.Stats.InputSize
		dts += out.resp.Stats.DominanceTests
		if len(out.resp.IDs) != len(out.resp.Indices) {
			hasIDs = false
		}
	}
	candIdx := make([]int, 0, total)
	candVals := make([][]float64, 0, total)
	var candIDs []uint64
	if hasIDs {
		candIDs = make([]uint64, 0, total)
	}
	for i, out := range outs {
		if out.resp == nil {
			continue
		}
		off := co.workers[i].spec.Lo
		for j, li := range out.resp.Indices {
			candIdx = append(candIdx, off+li)
			candVals = append(candVals, out.resp.Values[j])
			if hasIDs {
				candIDs = append(candIDs, out.resp.IDs[j])
			}
		}
	}

	// Re-stage the candidates under the query's preferences — the
	// recount must compare in the same transformed space the workers
	// computed in — then run the same exact merge as the in-process
	// fan-out.
	k := q.SkybandK
	if k < 1 {
		k = 1
	}
	nc := len(candIdx)
	raw := make([]float64, nc*d)
	for p, vals := range candVals {
		copy(raw[p*d:(p+1)*d], vals)
	}
	buf, de := raw, d
	if len(q.Prefs) == d {
		ops := make([]point.PrefOp, d)
		identity := true
		for i, p := range q.Prefs {
			switch p {
			case skybench.Max:
				ops[i] = point.PrefNegate
				identity = false
			case skybench.Ignore:
				ops[i] = point.PrefDrop
				identity = false
			default:
				ops[i] = point.PrefKeep
			}
		}
		if !identity {
			de = point.EffectiveDims(ops)
			buf = make([]float64, nc*de)
			point.StagePrefs(buf, raw, nc, d, ops)
		}
	}
	keep, counts, mergePath, err := co.merge(ctx, buf, nc, de, k, &dts)
	if err != nil {
		return nil, err
	}

	idx := make([]int, len(keep))
	rows := make([][]float64, len(keep))
	var ids []uint64
	if hasIDs {
		ids = make([]uint64, len(keep))
	}
	for j, p := range keep {
		idx[j] = candIdx[p]
		rows[j] = candVals[p]
		if hasIDs {
			ids[j] = candIDs[p]
		}
	}
	sortResult(idx, counts, rows, ids)

	res := skybench.Result{Indices: idx, Counts: counts}
	res.Stats = skybench.Stats{
		DominanceTests: dts,
		SkylineSize:    len(idx),
		InputSize:      input,
		Elapsed:        time.Since(start),
	}
	if partial {
		co.partials.Add(1)
	}
	if q.Trace {
		tr := &skybench.QueryTrace{
			Algorithm:      q.Algorithm.String(),
			SkybandK:       q.SkybandK,
			Epoch:          epoch,
			Partial:        partial,
			InputSize:      input,
			Output:         len(idx),
			DominanceTests: dts,
			Elapsed:        res.Stats.Elapsed,
			MergePath:      mergePath,
			Workers:        make([]skybench.WorkerTrace, len(co.workers)),
		}
		for i, w := range co.workers {
			wt := skybench.WorkerTrace{
				Worker:  i,
				Addr:    w.spec.Addr,
				Lo:      w.spec.Lo,
				Hi:      w.spec.Hi,
				Wire:    outs[i].wire,
				Retries: int(outs[i].retries),
			}
			if resp := outs[i].resp; resp != nil {
				wt.InputSize = resp.Stats.InputSize
				wt.Output = len(resp.Indices)
				wt.DominanceTests = resp.Stats.DominanceTests
				wt.Elapsed = time.Duration(resp.Stats.ElapsedNs)
			} else {
				wt.Failed = true
				wt.Err = outs[i].err.Error()
			}
			tr.Workers[i] = wt
		}
		res.Trace = tr
	}
	return skybench.NewRemoteQueryResult(res, epoch, partial, rows, ids), nil
}

// callWorker issues one worker's slice of the fan-out: derive the
// worker's deadline budget from the caller's remaining one, round-trip
// the query, and validate the response against the placement.
func (co *Coordinator) callWorker(ctx context.Context, w *worker, req *serve.QueryRequest) callOut {
	w.queries.Add(1)
	var out callOut
	wctx := ctx
	if dl, ok := ctx.Deadline(); ok {
		budget, live := Budget(time.Now(), dl, co.margin())
		if !live {
			w.failures.Add(1)
			out.err = deadlineErr("no budget left for worker %s", w.spec.Addr)
			return out
		}
		var cancel context.CancelFunc
		wctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	r0 := w.cli.RetryCount()
	startCall := time.Now()
	resp, err := w.cli.Query(wctx, co.cfg.Collection, req)
	out.wire = time.Since(startCall)
	out.retries = w.cli.RetryCount() - r0
	if err == nil {
		err = validateResp(w, resp, co.cfg.D)
	}
	if err != nil {
		w.failures.Add(1)
		out.err = err
		return out
	}
	out.resp = resp
	return out
}

// validateResp guards the merge against a worker whose answer cannot
// be combined soundly: a row count that drifted from the placement, a
// stale (cross-epoch) degraded answer, or a malformed response shape.
func validateResp(w *worker, resp *serve.QueryResponse, d int) error {
	want := w.spec.Hi - w.spec.Lo
	if resp.Stats.InputSize != want {
		return fmt.Errorf("%w: worker %s answered over %d rows, placement says [%d,%d)",
			skybench.ErrEpochSkew, w.spec.Addr, resp.Stats.InputSize, w.spec.Lo, w.spec.Hi)
	}
	if resp.Stale {
		return fmt.Errorf("%w: worker %s served a stale answer into a fan-out", skybench.ErrEpochSkew, w.spec.Addr)
	}
	if len(resp.Values) != len(resp.Indices) {
		return fmt.Errorf("worker %s returned %d value rows for %d indices", w.spec.Addr, len(resp.Values), len(resp.Indices))
	}
	if resp.Counts != nil && len(resp.Counts) != len(resp.Indices) {
		return fmt.Errorf("worker %s returned %d counts for %d indices", w.spec.Addr, len(resp.Counts), len(resp.Indices))
	}
	for j, li := range resp.Indices {
		if li < 0 || li >= want {
			return fmt.Errorf("%w: worker %s returned row %d outside its %d-row shard",
				skybench.ErrEpochSkew, w.spec.Addr, li, want)
		}
		if len(resp.Values[j]) != d {
			return fmt.Errorf("worker %s returned a %d-dimensional row, want %d", w.spec.Addr, len(resp.Values[j]), d)
		}
	}
	return nil
}

// merge recounts the candidate union into the exact global band: the
// shared flat kernel for small unions, a full engine recompute for
// large ones when an Engine was configured — the same cutoff and the
// same DESIGN.md §10 recount as the in-process fan-out.
func (co *Coordinator) merge(ctx context.Context, buf []float64, nc, de, k int, dts *uint64) ([]int, []int32, string, error) {
	if nc <= shard.MergeKernelMax || co.cfg.Engine == nil {
		keep, counts, err := shard.MergeBand(ctx, buf, nc, de, k, dts)
		if err != nil {
			return nil, nil, "", wrapCtxErr(err)
		}
		return keep, counts, shard.MergePathKernel, nil
	}
	ds, err := skybench.DatasetFromFlat(buf, nc, de)
	if err != nil {
		return nil, nil, "", err
	}
	var q skybench.Query
	if k > 1 {
		q.SkybandK = k
	}
	res, err := co.cfg.Engine.Run(ctx, ds, q)
	if err != nil {
		return nil, nil, "", err
	}
	*dts += res.Stats.DominanceTests
	return res.Indices, res.Counts, shard.MergePathEngine, nil
}

// sortResult orders the merged result by ascending global row index,
// keeping counts, rows, and ids parallel — the same deterministic
// order shard.SortByIndex gives in-process sharded results.
func sortResult(idx []int, counts []int32, rows [][]float64, ids []uint64) {
	order := make([]int, len(idx))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return idx[order[a]] < idx[order[b]] })
	idx2 := make([]int, len(idx))
	rows2 := make([][]float64, len(rows))
	for p, o := range order {
		idx2[p] = idx[o]
		rows2[p] = rows[o]
	}
	copy(idx, idx2)
	copy(rows, rows2)
	if counts != nil {
		cnt2 := make([]int32, len(counts))
		for p, o := range order {
			cnt2[p] = counts[o]
		}
		copy(counts, cnt2)
	}
	if ids != nil {
		ids2 := make([]uint64, len(ids))
		for p, o := range order {
			ids2[p] = ids[o]
		}
		copy(ids, ids2)
	}
}
