package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"skybench"
	"skybench/internal/dataset"
	"skybench/internal/shard"
	"skybench/serve"
	"skybench/stream"
)

// startWorker boots one worker skyserved over its own Store, attaches
// the given dataset slice under name "c", and returns its base URL.
func startWorker(t *testing.T, flat []float64, n, d int) string {
	t.Helper()
	ds, err := skybench.DatasetFromFlat(flat, n, d)
	if err != nil {
		t.Fatalf("DatasetFromFlat: %v", err)
	}
	st := skybench.NewStore(2)
	if _, err := st.Attach("c", ds, skybench.CollectionOptions{Shards: 2}); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	srv := serve.New(st, serve.Options{})
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return hs.URL
}

// startCluster shards flat row-wise across nw workers and returns a
// Coordinator over them (probing disabled for determinism).
func startCluster(t *testing.T, flat []float64, n, d, nw int, policy Policy) *Coordinator {
	t.Helper()
	specs := make([]WorkerSpec, 0, nw)
	for _, r := range shard.Split(n, nw) {
		addr := startWorker(t, flat[r.Lo*d:r.Hi*d], r.Hi-r.Lo, d)
		specs = append(specs, WorkerSpec{Addr: addr, Lo: r.Lo, Hi: r.Hi})
	}
	co, err := New(Config{
		Collection:    "c",
		D:             d,
		Workers:       specs,
		Policy:        policy,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(co.Close)
	return co
}

// reference runs the same query single-node and returns its result.
func reference(t *testing.T, flat []float64, n, d int, q skybench.Query) *skybench.QueryResult {
	t.Helper()
	ds, err := skybench.DatasetFromFlat(flat, n, d)
	if err != nil {
		t.Fatalf("DatasetFromFlat: %v", err)
	}
	st := skybench.NewStore(2)
	t.Cleanup(func() { st.Close() })
	col, err := st.Attach("ref", ds, skybench.CollectionOptions{})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	res, err := col.Run(context.Background(), q)
	if err != nil {
		t.Fatalf("reference Run: %v", err)
	}
	return res
}

// canonical returns an (indices, counts) copy sorted by ascending
// global index — the single-shard engine path reports algorithm order,
// so comparisons normalize both sides to the cluster's sorted order.
func canonical(r *skybench.QueryResult) ([]int, []int32) {
	idx := append([]int(nil), r.Indices...)
	var counts []int32
	if r.Counts != nil {
		counts = append([]int32(nil), r.Counts...)
	}
	shard.SortByIndex(idx, counts)
	return idx, counts
}

func sameResult(t *testing.T, got, want *skybench.QueryResult, label string) {
	t.Helper()
	gi, gc := canonical(got)
	wi, wc := canonical(want)
	if len(gi) != len(wi) {
		t.Fatalf("%s: %d indices, want %d", label, len(gi), len(wi))
	}
	for i := range gi {
		if gi[i] != wi[i] {
			t.Fatalf("%s: index[%d] = %d, want %d", label, i, gi[i], wi[i])
		}
	}
	if (gc == nil) != (wc == nil) {
		t.Fatalf("%s: counts presence mismatch (%v vs %v)", label, gc != nil, wc != nil)
	}
	for i := range gc {
		if gc[i] != wc[i] {
			t.Fatalf("%s: count[%d] = %d, want %d", label, i, gc[i], wc[i])
		}
	}
	if got.Epoch != want.Epoch {
		t.Fatalf("%s: epoch %d, want %d", label, got.Epoch, want.Epoch)
	}
}

// TestClusterMatchesSingleNode is the property test pinning the
// tentpole's soundness claim: cluster answers are bit-identical —
// indices, skyband counts, epochs — to single-node answers, across
// data distributions × preference vectors × worker counts × band
// widths.
func TestClusterMatchesSingleNode(t *testing.T) {
	const n, d = 360, 4
	prefCases := [][]skybench.Pref{
		nil,
		{skybench.Min, skybench.Max, skybench.Min, skybench.Max},
		{skybench.Max, skybench.Ignore, skybench.Min, skybench.Min},
	}
	for _, dist := range dataset.AllDistributions {
		m := dataset.Generate(dist, n, d, 42)
		flat := m.Flat()
		for _, nw := range []int{1, 2, 3} {
			co := startCluster(t, flat, n, d, nw, FailFast)
			for _, k := range []int{1, 2} {
				for pi, prefs := range prefCases {
					q := skybench.Query{SkybandK: k, Prefs: prefs, Trace: true}
					label := fmt.Sprintf("%v/w%d/k%d/p%d", dist, nw, k, pi)
					got, err := co.Run(context.Background(), q)
					if err != nil {
						t.Fatalf("%s: cluster Run: %v", label, err)
					}
					want := reference(t, flat, n, d, q)
					sameResult(t, got, want, label)
					if got.Partial {
						t.Fatalf("%s: result flagged partial with all workers up", label)
					}
					if got.Trace == nil || len(got.Trace.Workers) != nw {
						t.Fatalf("%s: trace has %d worker entries, want %d", label, len(got.Trace.Workers), nw)
					}
					for wi, wt := range got.Trace.Workers {
						if wt.Failed {
							t.Fatalf("%s: worker %d trace flagged failed: %s", label, wi, wt.Err)
						}
						if wt.InputSize != wt.Hi-wt.Lo {
							t.Fatalf("%s: worker %d input %d over range [%d,%d)", label, wi, wt.InputSize, wt.Lo, wt.Hi)
						}
					}
					// Row values come back over the wire: every result row
					// must match the source matrix at its global index.
					for p, gi := range got.Indices {
						row := got.Row(p)
						for j := 0; j < d; j++ {
							if row[j] != flat[gi*d+j] {
								t.Fatalf("%s: row %d value[%d] = %v, want %v", label, p, j, row[j], flat[gi*d+j])
							}
						}
					}
				}
			}
		}
	}
}

// TestClusterThroughStore runs the cluster through Store.AttachRemote —
// the Collection surface a skyserved coordinator actually serves — and
// checks results, caching, and placement stats.
func TestClusterThroughStore(t *testing.T) {
	const n, d = 240, 3
	m := dataset.Generate(dataset.Anticorrelated, n, d, 7)
	flat := m.Flat()
	co := startCluster(t, flat, n, d, 2, FailFast)

	st := skybench.NewStore(2)
	defer st.Close()
	col, err := st.AttachRemote("c", co, skybench.CollectionOptions{})
	if err != nil {
		t.Fatalf("AttachRemote: %v", err)
	}
	if !col.ClusterBacked() {
		t.Fatal("ClusterBacked = false")
	}
	if cn, err := col.N(); err != nil || cn != n || col.D() != d {
		t.Fatalf("N,D = %d,%d (%v) want %d,%d", cn, col.D(), err, n, d)
	}
	q := skybench.Query{SkybandK: 2}
	got, err := col.Run(context.Background(), q)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := reference(t, flat, n, d, q)
	sameResult(t, got, want, "store")

	// Second run must be a cache hit: same epoch, no new worker queries.
	before := co.Placement()
	again, err := col.Run(context.Background(), skybench.Query{SkybandK: 2, Trace: true})
	if err != nil {
		t.Fatalf("cached Run: %v", err)
	}
	sameResult(t, again, want, "cached")
	if again.Trace == nil || !again.Trace.CacheHit {
		t.Fatal("second identical query should hit the result cache")
	}
	after := co.Placement()
	for i := range after.Workers {
		if after.Workers[i].Queries != before.Workers[i].Queries {
			t.Fatalf("cache hit still queried worker %d", i)
		}
	}

	stats, err := col.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.Placement == nil || len(stats.Placement.Workers) != 2 {
		t.Fatalf("Stats().Placement = %+v, want 2 workers", stats.Placement)
	}
	for i, w := range stats.Placement.Workers {
		if w.Queries == 0 {
			t.Fatalf("placement worker %d shows zero queries", i)
		}
		if !w.Healthy {
			t.Fatalf("placement worker %d unhealthy", i)
		}
	}
}

// TestEpochSkewRejected pins the merge-safety rule: workers answering
// at different membership epochs are rejected, not merged.
func TestEpochSkewRejected(t *testing.T) {
	const d = 2
	rows := [][][]float64{
		{{1, 9}, {2, 8}, {3, 7}},
		{{9, 1}, {8, 2}, {7, 3}, {6, 4}},
	}
	specs := make([]WorkerSpec, 0, 2)
	lo := 0
	for _, shardRows := range rows {
		ix, err := stream.New(d, stream.Config{})
		if err != nil {
			t.Fatalf("stream.New: %v", err)
		}
		// Each insert bumps the live epoch, so unequal insert counts
		// leave the two workers at different epochs (3 vs 4).
		if _, err := ix.InsertBatch(shardRows); err != nil {
			t.Fatalf("InsertBatch: %v", err)
		}
		st := skybench.NewStore(1)
		if _, err := st.AttachStream("c", ix, skybench.CollectionOptions{CloseOnDrop: true}); err != nil {
			t.Fatalf("AttachStream: %v", err)
		}
		srv := serve.New(st, serve.Options{})
		hs := httptest.NewServer(srv)
		t.Cleanup(func() {
			hs.Close()
			srv.Close()
		})
		specs = append(specs, WorkerSpec{Addr: hs.URL, Lo: lo, Hi: lo + len(shardRows)})
		lo += len(shardRows)
	}
	co, err := New(Config{Collection: "c", D: d, Workers: specs, ProbeInterval: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer co.Close()
	_, err = co.Run(context.Background(), skybench.Query{})
	if !errors.Is(err, skybench.ErrEpochSkew) {
		t.Fatalf("err = %v, want ErrEpochSkew", err)
	}
}

// TestPolicies pins the degraded-answer matrix: a dead worker fails the
// query under failfast, yields an exact-over-survivors Partial result
// under partial, and an all-dead cluster is ErrWorkerUnavailable under
// both.
func TestPolicies(t *testing.T) {
	const n, d = 120, 3
	m := dataset.Generate(dataset.Independent, n, d, 11)
	flat := m.Flat()
	ranges := shard.Split(n, 2)

	build := func(t *testing.T, policy Policy, kill ...int) *Coordinator {
		specs := make([]WorkerSpec, 0, 2)
		urls := make([]string, 0, 2)
		for _, r := range ranges {
			urls = append(urls, startWorker(t, flat[r.Lo*d:r.Hi*d], r.Hi-r.Lo, d))
		}
		for i, r := range ranges {
			specs = append(specs, WorkerSpec{Addr: urls[i], Lo: r.Lo, Hi: r.Hi})
		}
		for _, i := range kill {
			// Point the worker at a dead address: connection refused is
			// the transport failure a SIGKILLed worker presents.
			dead := httptest.NewServer(http.NotFoundHandler())
			dead.Close()
			specs[i].Addr = dead.URL
		}
		co, err := New(Config{
			Collection: "c", D: d, Workers: specs,
			Policy: policy, Retries: 1, Backoff: time.Millisecond,
			ProbeInterval: -1,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		t.Cleanup(co.Close)
		return co
	}

	t.Run("failfast", func(t *testing.T) {
		co := build(t, FailFast, 1)
		_, err := co.Run(context.Background(), skybench.Query{})
		if !errors.Is(err, skybench.ErrWorkerUnavailable) {
			t.Fatalf("err = %v, want ErrWorkerUnavailable", err)
		}
	})

	t.Run("partial", func(t *testing.T) {
		co := build(t, Partial, 1)
		res, err := co.Run(context.Background(), skybench.Query{Trace: true})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if !res.Partial {
			t.Fatal("result not flagged Partial with a dead worker")
		}
		// The answer must be the exact band of the surviving rows — a
		// degraded answer is still never a wrong one.
		r0 := ranges[0]
		want := reference(t, flat[r0.Lo*d:r0.Hi*d], r0.Hi-r0.Lo, d, skybench.Query{})
		ri, _ := canonical(res)
		wi, _ := canonical(want)
		if len(ri) != len(wi) {
			t.Fatalf("partial result has %d indices, want %d (survivor band)", len(ri), len(wi))
		}
		for i := range ri {
			if ri[i] != wi[i] {
				t.Fatalf("partial index[%d] = %d, want %d", i, ri[i], wi[i])
			}
		}
		if res.Trace == nil || len(res.Trace.Workers) != 2 {
			t.Fatal("partial trace should list both workers")
		}
		if res.Trace.Workers[1].Failed == false || res.Trace.Workers[1].Err == "" {
			t.Fatalf("worker 1 trace should be flagged failed, got %+v", res.Trace.Workers[1])
		}
		if !res.Trace.Partial {
			t.Fatal("trace not flagged partial")
		}
		if co.Placement().Partials != 1 {
			t.Fatalf("Partials = %d, want 1", co.Placement().Partials)
		}
	})

	t.Run("all-dead", func(t *testing.T) {
		co := build(t, Partial, 0, 1)
		_, err := co.Run(context.Background(), skybench.Query{})
		if !errors.Is(err, skybench.ErrWorkerUnavailable) {
			t.Fatalf("err = %v, want ErrWorkerUnavailable even under partial policy", err)
		}
	})
}

// TestDeadlineForwarding pins the propagation fix: the budget a worker
// receives is the *remaining* budget minus the margin, never the
// caller's original grant — and an already-expired budget never burns a
// wire round trip.
func TestDeadlineForwarding(t *testing.T) {
	const n, d = 60, 2
	m := dataset.Generate(dataset.Independent, n, d, 3)
	flat := m.Flat()
	real := startWorker(t, flat, n, d)

	var mu sync.Mutex
	var hdrs []string
	hits := 0
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		if h := r.Header.Get(serve.DeadlineHeader); h != "" {
			hdrs = append(hdrs, h)
		}
		mu.Unlock()
		req, err := http.NewRequestWithContext(r.Context(), r.Method, real+r.URL.Path, r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32*1024)
		for {
			nr, rerr := resp.Body.Read(buf)
			if nr > 0 {
				_, _ = w.Write(buf[:nr])
			}
			if rerr != nil {
				break
			}
		}
	}))
	defer proxy.Close()

	const margin = 20 * time.Millisecond
	co, err := New(Config{
		Collection: "c", D: d,
		Workers:       []WorkerSpec{{Addr: proxy.URL, Lo: 0, Hi: n}},
		Margin:        margin,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer co.Close()

	const grant = 2 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), grant)
	defer cancel()
	// Spend some of the budget before the fan-out, as a real handler
	// would parsing and queueing.
	time.Sleep(50 * time.Millisecond)
	if _, err := co.Run(ctx, skybench.Query{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	recorded := append([]string(nil), hdrs...)
	mu.Unlock()
	if len(recorded) == 0 {
		t.Fatal("worker saw no deadline header")
	}
	ms, err := strconv.ParseInt(recorded[0], 10, 64)
	if err != nil {
		t.Fatalf("deadline header %q: %v", recorded[0], err)
	}
	max := (grant - margin - 40*time.Millisecond).Milliseconds()
	if ms <= 0 || ms > max {
		t.Fatalf("worker budget %dms; want in (0, %dms] — remaining minus margin, not the original %v", ms, max, grant)
	}

	// Already-expired budget: fail typed, zero wire traffic.
	mu.Lock()
	hitsBefore := hits
	mu.Unlock()
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	_, err = co.Run(expired, skybench.Query{})
	if !errors.Is(err, skybench.ErrDeadlineExceeded) {
		t.Fatalf("expired err = %v, want ErrDeadlineExceeded", err)
	}
	mu.Lock()
	if hits != hitsBefore {
		t.Fatalf("expired query still reached the worker (%d new hits)", hits-hitsBefore)
	}
	mu.Unlock()
}

// TestEngineMergePath checks the large-union merge falls back to a full
// engine recompute above the kernel cutoff and agrees with the kernel.
func TestEngineMergePath(t *testing.T) {
	// All points on an anti-diagonal: pairwise incomparable, so the
	// merged band is everything and both paths must agree exactly.
	nc := shard.MergeKernelMax + 101
	buf := make([]float64, 0, nc*2)
	for i := 0; i < nc; i++ {
		buf = append(buf, float64(i), float64(nc-i))
	}
	eng := skybench.NewEngine(2)
	defer eng.Close()

	co := &Coordinator{cfg: Config{Engine: eng, D: 2}}
	var dts uint64
	keep, _, path, err := co.merge(context.Background(), buf, nc, 2, 1, &dts)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if path != shard.MergePathEngine {
		t.Fatalf("path = %q, want %q above the kernel cutoff", path, shard.MergePathEngine)
	}
	if len(keep) != nc {
		t.Fatalf("engine merge kept %d of %d incomparable points", len(keep), nc)
	}

	noEng := &Coordinator{cfg: Config{D: 2}}
	keep2, _, path2, err := noEng.merge(context.Background(), buf, nc, 2, 1, &dts)
	if err != nil {
		t.Fatalf("kernel merge: %v", err)
	}
	if path2 != shard.MergePathKernel {
		t.Fatalf("path = %q, want %q without an engine", path2, shard.MergePathKernel)
	}
	if len(keep2) != len(keep) {
		t.Fatalf("kernel kept %d, engine kept %d", len(keep2), len(keep))
	}
}

// TestDistribute round-trips a CSV through Distribute and checks the
// cluster over the shipped shards matches single-node exactly.
func TestDistribute(t *testing.T) {
	const n, d = 150, 3
	m := dataset.Generate(dataset.Correlated, n, d, 5)
	dir := t.TempDir()
	src := filepath.Join(dir, "src.csv")
	if err := dataset.WriteFile(src, m); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	urls := make([]string, 2)
	for i := range urls {
		st := skybench.NewStore(1)
		srv := serve.New(st, serve.Options{})
		hs := httptest.NewServer(srv)
		t.Cleanup(func() {
			hs.Close()
			srv.Close()
		})
		urls[i] = hs.URL
	}
	specs, gotN, gotD, err := Distribute(context.Background(), src, DistributeOptions{
		Collection: "c",
		Workers:    urls,
		ScratchDir: filepath.Join(dir, "scratch"),
	})
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	if gotN != n || gotD != d || len(specs) != 2 {
		t.Fatalf("Distribute = %d specs, n=%d d=%d", len(specs), gotN, gotD)
	}
	// Re-running without Replace hits the duplicate; with Replace it
	// succeeds idempotently.
	if _, _, _, err := Distribute(context.Background(), src, DistributeOptions{
		Collection: "c", Workers: urls, ScratchDir: filepath.Join(dir, "scratch"),
	}); !errors.Is(err, skybench.ErrDuplicateCollection) {
		t.Fatalf("re-distribute err = %v, want ErrDuplicateCollection", err)
	}
	if _, _, _, err := Distribute(context.Background(), src, DistributeOptions{
		Collection: "c", Workers: urls, ScratchDir: filepath.Join(dir, "scratch"), Replace: true,
	}); err != nil {
		t.Fatalf("re-distribute with Replace: %v", err)
	}

	co, err := New(Config{Collection: "c", D: d, Workers: specs, ProbeInterval: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer co.Close()
	q := skybench.Query{SkybandK: 2}
	got, err := co.Run(context.Background(), q)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The reference reads the same CSV back: the comparison includes any
	// CSV round-trip of the coordinates.
	rm, err := dataset.ReadFile(src)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	want := reference(t, rm.Flat(), n, d, q)
	sameResult(t, got, want, "distribute")
}

// TestConfigValidation pins placement validation: gaps, overlaps, and
// empty ranges are construction-time errors.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{D: 2, Workers: []WorkerSpec{{Addr: "x", Lo: 0, Hi: 5}}},            // no name
		{Collection: "c", Workers: []WorkerSpec{{Addr: "x", Lo: 0, Hi: 5}}}, // no dims
		{Collection: "c", D: 2}, // no workers
		{Collection: "c", D: 2, Workers: []WorkerSpec{{Addr: "x", Lo: 1, Hi: 5}}},                            // gap at 0
		{Collection: "c", D: 2, Workers: []WorkerSpec{{Addr: "x", Lo: 0, Hi: 0}}},                            // empty range
		{Collection: "c", D: 2, Workers: []WorkerSpec{{Addr: "x", Lo: 0, Hi: 5}, {Addr: "y", Lo: 6, Hi: 8}}}, // gap
		{Collection: "c", D: 2, Workers: []WorkerSpec{{Addr: "x", Lo: 0, Hi: 5}, {Addr: "y", Lo: 4, Hi: 8}}}, // overlap
		{Collection: "c", D: 2, Workers: []WorkerSpec{{Lo: 0, Hi: 5}}},                                       // no addr
	}
	for i, cfg := range bad {
		cfg.ProbeInterval = -1
		if _, err := New(cfg); !errors.Is(err, skybench.ErrBadQuery) {
			t.Fatalf("config %d: err = %v, want ErrBadQuery", i, err)
		}
	}
	co, err := New(Config{Collection: "c", D: 2, ProbeInterval: -1,
		Workers: []WorkerSpec{{Addr: "x", Lo: 0, Hi: 5}, {Addr: "y", Lo: 5, Hi: 8}}})
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	co.Close()
	if co.Len() != 8 || co.D() != 2 {
		t.Fatalf("Len,D = %d,%d want 8,2", co.Len(), co.D())
	}
}

// TestUnforwardableQueries pins the wire boundary: progressive delivery
// and ablation flags cannot cross it.
func TestUnforwardableQueries(t *testing.T) {
	co, err := New(Config{Collection: "c", D: 2, ProbeInterval: -1,
		Workers: []WorkerSpec{{Addr: "http://127.0.0.1:1", Lo: 0, Hi: 5}}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer co.Close()
	if _, err := co.Run(context.Background(), skybench.Query{Ablation: skybench.Ablation{NoPrefilter: true}}); !errors.Is(err, skybench.ErrBadQuery) {
		t.Fatalf("ablation err = %v, want ErrBadQuery", err)
	}
	if _, err := co.Run(context.Background(), skybench.Query{Prefs: []skybench.Pref{skybench.Min}}); !errors.Is(err, skybench.ErrBadQuery) {
		t.Fatalf("pref-arity err = %v, want ErrBadQuery", err)
	}
}
