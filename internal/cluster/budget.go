package cluster

import "time"

// DefaultMargin is the RTT-and-merge margin reserved out of the
// caller's deadline when Config.Margin is zero: the coordinator must
// get every worker's answer back over the wire and still have time to
// merge before the caller's deadline fires, so workers get strictly
// less budget than the caller granted.
const DefaultMargin = 5 * time.Millisecond

// Budget derives the per-worker deadline budget from the remaining
// request budget at fan-out time: the caller's deadline minus now
// (time already spent upstream never counts twice) minus the margin
// reserved for the return trip and the merge. ok is false when nothing
// useful remains — the deadline already passed, or the margin consumes
// all of it — in which case the coordinator fails the query without
// burning a wire round trip it could never merge in time.
//
// This is the deadline-propagation fix in one place: the coordinator
// forwards the *remaining* budget, never the caller's original header
// verbatim — a verbatim forward would grant each worker time the
// coordinator already spent, and the fan-out would sail past the
// caller's deadline by exactly the accumulated overhead.
func Budget(now, deadline time.Time, margin time.Duration) (time.Duration, bool) {
	if margin < 0 {
		margin = 0
	}
	remaining := deadline.Sub(now)
	if remaining <= 0 {
		return 0, false
	}
	budget := remaining - margin
	if budget <= 0 {
		return 0, false
	}
	return budget, true
}
