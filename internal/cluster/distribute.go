package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"skybench"
	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/shard"
	"skybench/serve"
	"skybench/serve/client"
)

// DistributeOptions configures Distribute.
type DistributeOptions struct {
	// Collection is the name the shards attach under on every worker.
	Collection string
	// Workers are the worker base URLs, in placement order.
	Workers []string
	// ScratchDir receives the per-shard CSVs ("" = a fresh temp dir).
	// The workers read the shard files from this directory, so it must
	// be reachable from every worker process — the static-attach
	// transport is a shared filesystem, same as single-node `-static`.
	ScratchDir string
	// WorkerShards is the in-process shard count each worker uses for
	// its slice (0 = the worker store's default).
	WorkerShards int
	// Replace drops an existing collection of the same name on a worker
	// before re-attaching, instead of failing on the duplicate.
	Replace bool
}

// Distribute splits the CSV at path into one contiguous shard per
// worker (shard.Split balance: sizes differ by at most one row), writes
// each shard to the scratch directory, and attaches it on its worker
// under opts.Collection. It returns the placement a Coordinator needs:
// worker specs with the global [Lo, Hi) each worker owns, plus the
// dataset shape.
//
// Distribution is idempotent with Replace set, and all-or-nothing in
// intent but not in effect: a mid-flight failure leaves earlier workers
// attached (re-run with Replace, or drop by hand).
func Distribute(ctx context.Context, path string, opts DistributeOptions) ([]WorkerSpec, int, int, error) {
	if opts.Collection == "" {
		return nil, 0, 0, fmt.Errorf("%w: distribute needs a collection name", skybench.ErrBadQuery)
	}
	if len(opts.Workers) == 0 {
		return nil, 0, 0, fmt.Errorf("%w: distribute needs at least one worker", skybench.ErrBadQuery)
	}
	m, err := dataset.ReadFile(path)
	if err != nil {
		return nil, 0, 0, err
	}
	n, d := m.N(), m.D()
	if n < len(opts.Workers) {
		return nil, 0, 0, fmt.Errorf("%w: %d rows cannot cover %d workers", skybench.ErrBadDataset, n, len(opts.Workers))
	}
	scratch := opts.ScratchDir
	if scratch == "" {
		scratch, err = os.MkdirTemp("", "skybench-cluster-")
		if err != nil {
			return nil, 0, 0, err
		}
	} else if err := os.MkdirAll(scratch, 0o755); err != nil {
		return nil, 0, 0, err
	}

	ranges := shard.Split(n, len(opts.Workers))
	flat := m.Flat()
	specs := make([]WorkerSpec, len(opts.Workers))
	for i, r := range ranges {
		specs[i] = WorkerSpec{Addr: opts.Workers[i], Lo: r.Lo, Hi: r.Hi}
		sub := point.FromFlat(flat[r.Lo*d:r.Hi*d], r.Hi-r.Lo, d)
		shardPath := filepath.Join(scratch, fmt.Sprintf("%s-shard%d.csv", opts.Collection, i))
		if err := dataset.WriteFile(shardPath, sub); err != nil {
			return nil, 0, 0, err
		}
		if err := attachShard(ctx, specs[i].Addr, opts, shardPath); err != nil {
			return nil, 0, 0, fmt.Errorf("worker %s: %w", specs[i].Addr, err)
		}
	}
	return specs, n, d, nil
}

// attachShard attaches one shard CSV on one worker, dropping a
// same-named collection first when Replace is set.
func attachShard(ctx context.Context, addr string, opts DistributeOptions, shardPath string) error {
	cli := client.New(addr)
	defer cli.Close()
	req := &serve.AttachRequest{
		Static: &serve.StaticSpec{Path: shardPath},
		Shards: opts.WorkerShards,
	}
	_, err := cli.Attach(ctx, opts.Collection, req)
	if err != nil && opts.Replace && errors.Is(err, skybench.ErrDuplicateCollection) {
		if err = cli.Drop(ctx, opts.Collection); err != nil {
			return err
		}
		_, err = cli.Attach(ctx, opts.Collection, req)
	}
	return err
}
