// Package dataset provides the synthetic workload generators used
// throughout the paper's evaluation (correlated, independent, and
// anticorrelated distributions in the style of the standard skyline data
// generator of Börzsönyi et al.), deterministic stand-ins for the paper's
// three real datasets, and CSV input/output.
package dataset

import (
	"fmt"
	"math/rand"

	"skybench/internal/point"
)

// Distribution selects one of the three synthetic data distributions of
// the paper's evaluation (Section VII-A3).
type Distribution int

const (
	// Correlated data: points cluster around the main diagonal, so a few
	// points dominate almost everything and the skyline is tiny.
	Correlated Distribution = iota
	// Independent data: each dimension is drawn uniformly at random.
	Independent
	// Anticorrelated data: points lie near a constant-L1 hyperplane, so
	// being good in one dimension implies being bad in others and the
	// skyline is huge.
	Anticorrelated
)

// String returns the lowercase name used in harness output and CLI flags.
func (d Distribution) String() string {
	switch d {
	case Correlated:
		return "correlated"
	case Independent:
		return "independent"
	case Anticorrelated:
		return "anticorrelated"
	}
	return fmt.Sprintf("distribution(%d)", int(d))
}

// ParseDistribution converts a CLI flag value to a Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "correlated", "corr", "c":
		return Correlated, nil
	case "independent", "indep", "i":
		return Independent, nil
	case "anticorrelated", "anti", "a":
		return Anticorrelated, nil
	}
	return 0, fmt.Errorf("dataset: unknown distribution %q (want correlated|independent|anticorrelated)", s)
}

// AllDistributions lists the three distributions in the order the paper's
// figures present them.
var AllDistributions = []Distribution{Correlated, Independent, Anticorrelated}

// Generate produces an n×d dataset of the given distribution using a
// deterministic stream seeded by seed. Values lie in [0, 1); smaller is
// better, matching the paper's convention.
func Generate(dist Distribution, n, d int, seed int64) point.Matrix {
	if d < 1 || d > point.MaxDims {
		panic(fmt.Sprintf("dataset: dimensionality %d out of range [1,%d]", d, point.MaxDims))
	}
	rng := rand.New(rand.NewSource(seed))
	m := point.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		switch dist {
		case Correlated:
			fillCorrelated(rng, row)
		case Independent:
			fillIndependent(rng, row)
		case Anticorrelated:
			fillAnticorrelated(rng, row)
		default:
			panic(fmt.Sprintf("dataset: invalid distribution %d", dist))
		}
	}
	return m
}

// fillIndependent draws each coordinate uniformly from [0, 1).
func fillIndependent(rng *rand.Rand, row []float64) {
	for i := range row {
		row[i] = rng.Float64()
	}
}

// peak returns a sample from a bell-shaped distribution on [0, 1) obtained
// by averaging k uniforms, as in the original generator's random_peak.
func peak(rng *rand.Rand, k int) float64 {
	s := 0.0
	for i := 0; i < k; i++ {
		s += rng.Float64()
	}
	return s / float64(k)
}

// fillCorrelated places a point near the main diagonal: all coordinates
// start at a common bell-shaped value v and small amounts are transferred
// between random coordinate pairs, keeping the point close to the
// diagonal (the original generator's correlated scheme).
func fillCorrelated(rng *rand.Rand, row []float64) {
	d := len(row)
	v := peak(rng, d)
	l := v
	if 1-v < l {
		l = 1 - v
	}
	for i := range row {
		row[i] = v
	}
	for k := 0; k < d-1; k++ {
		i, j := rng.Intn(d), rng.Intn(d)
		if i == j {
			continue
		}
		h := (rng.Float64()*2 - 1) * l / 2
		row[i] = clamp01(row[i] + h)
		row[j] = clamp01(row[j] - h)
	}
}

// fillAnticorrelated places a point on a hyperplane Σx ≈ d·v, then adds
// zero-sum noise within the plane. Points on lower planes dominate points
// on higher ones, but within a plane coordinates are negatively
// correlated and mutually incomparable — the combination that makes
// anticorrelated skylines explode with d while staying well below 100%
// at low dimensionality. The plane-offset spread (σ ≈ 0.04) was
// calibrated so skyline fractions track the paper's Figure 4 shape.
func fillAnticorrelated(rng *rand.Rand, row []float64) {
	d := len(row)
	v := clamp01(0.5 + (peak(rng, 12)-0.5)*0.5)
	l := v
	if 1-v < l {
		l = 1 - v
	}
	// Zero-sum noise perturbs every coordinate while keeping the point
	// on the plane Σx = d·v: within a plane all pairs are incomparable,
	// and cross-plane dominance requires beating all d noisy coordinates
	// at once, so the skyline grows steeply with d.
	mean := 0.0
	for i := range row {
		e := (rng.Float64()*2 - 1) * l
		row[i] = e
		mean += e
	}
	mean /= float64(d)
	for i := range row {
		row[i] = clamp01(v + row[i] - mean)
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Quantize rounds every value of m in place to a grid of the given number
// of distinct levels per dimension. It is used to break the distinct-value
// condition, producing the duplicate-heavy data of the paper's real-data
// experiments (Section VII-B3).
func Quantize(m point.Matrix, levels int) {
	if levels < 2 {
		panic("dataset: need at least 2 quantization levels")
	}
	vals := m.Flat()
	k := float64(levels)
	for i, v := range vals {
		q := float64(int(v*k)) / k
		if q >= 1 {
			q = (k - 1) / k
		}
		vals[i] = q
	}
}
