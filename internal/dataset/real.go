package dataset

import (
	"fmt"
	"math/rand"

	"skybench/internal/point"
)

// RealDataset identifies one of the paper's three real datasets
// (Table I). The original files (NBA player statistics, house expenditure
// percentages, and a weather archive) are not redistributable here, so
// Load synthesizes deterministic stand-ins that preserve the properties
// the experiment exercises: the exact cardinality and dimensionality, a
// duplicate-heavy value domain (the distinct-value condition does not
// hold), and a skyline density close to the reported one. See DESIGN.md §5.
type RealDataset int

const (
	// NBA: 17,264 player-season rows over 8 statistics; 10.40% skyline.
	NBA RealDataset = iota
	// House: 127,931 households over 6 expenditure shares; 4.51% skyline.
	House
	// Weather: 566,268 observations over 15 attributes; 11.20% skyline.
	Weather
)

// RealSpec records the published specification of a real dataset
// (Table I of the paper) so the harness can print paper-vs-measured rows.
type RealSpec struct {
	Name           string
	Cardinality    int
	Dimensionality int
	SkylineSize    int     // |SKY| reported in Table I
	SkylineFrac    float64 // fraction reported in Table I
}

// Spec returns the published specification for the dataset.
func (r RealDataset) Spec() RealSpec {
	switch r {
	case NBA:
		return RealSpec{Name: "NBA", Cardinality: 17264, Dimensionality: 8, SkylineSize: 1796, SkylineFrac: 0.1040}
	case House:
		return RealSpec{Name: "HOUSE", Cardinality: 127931, Dimensionality: 6, SkylineSize: 5774, SkylineFrac: 0.0451}
	case Weather:
		return RealSpec{Name: "WEATHER", Cardinality: 566268, Dimensionality: 15, SkylineSize: 63398, SkylineFrac: 0.1120}
	}
	panic(fmt.Sprintf("dataset: invalid real dataset %d", int(r)))
}

// String returns the dataset's name as printed in the paper.
func (r RealDataset) String() string { return r.Spec().Name }

// AllRealDatasets lists the stand-ins in Table I order.
var AllRealDatasets = []RealDataset{NBA, House, Weather}

// Load synthesizes the stand-in dataset at the given scale ∈ (0, 1]; scale
// 1 reproduces the published cardinality. Scaling down keeps dimensionality
// and value distribution fixed so per-point behaviour is unchanged while
// harness runs stay affordable on small machines.
func (r RealDataset) Load(scale float64) point.Matrix {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("dataset: scale %v out of range (0,1]", scale))
	}
	spec := r.Spec()
	n := int(float64(spec.Cardinality) * scale)
	if n < 1 {
		n = 1
	}
	switch r {
	case NBA:
		// Player-season stats behave like mildly correlated independent
		// draws with a coarse integer domain (games, points, rebounds...).
		// The 0.35 correlated blend calibrates the skyline fraction to
		// Table I's 10.40% at full cardinality (measured 10.65%).
		m := Generate(Independent, n, spec.Dimensionality, 4801)
		blend(m, Correlated, 0.35, 4802)
		Quantize(m, 64)
		return m
	case House:
		// Expenditure shares are lightly anticorrelated (money spent on
		// one category is unavailable for others) with many duplicates.
		// The 0.45 blend lands at 4.73% vs Table I's 4.51%.
		m := Generate(Independent, n, spec.Dimensionality, 4811)
		blend(m, Anticorrelated, 0.45, 4812)
		Quantize(m, 1024)
		return m
	case Weather:
		// Weather observations share a strong common factor (season /
		// air mass) with substantial per-attribute variation, recorded
		// at instrument precision (heavy duplication). A per-row common
		// level v blended with per-dimension uniforms at weight 0.55
		// tracks Table I's 11.20% (12.9% at quarter scale, decreasing
		// with n).
		m := commonFactor(n, spec.Dimensionality, 0.55, 4821)
		Quantize(m, 128)
		return m
	}
	panic("unreachable")
}

// commonFactor synthesizes rows as (1−w)·v + w·uᵢ where v is a per-row
// common level (bell-shaped) and uᵢ are per-dimension uniforms: a simple
// one-factor correlation model.
func commonFactor(n, d int, w float64, seed int64) point.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := point.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		v := (rng.Float64() + rng.Float64()) / 2
		for j := range row {
			row[j] = (1-w)*v + w*rng.Float64()
		}
	}
	return m
}

// blend mixes a second distribution into m: each row becomes
// (1−w)·row + w·aux-row. This shifts skyline density toward the target
// without changing cardinality or dimensionality.
func blend(m point.Matrix, dist Distribution, w float64, seed int64) {
	aux := Generate(dist, m.N(), m.D(), seed)
	a, b := m.Flat(), aux.Flat()
	for i := range a {
		a[i] = (1-w)*a[i] + w*b[i]
	}
}
