package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"skybench/internal/point"
)

// WriteCSV writes the matrix as headerless CSV, one point per row, with
// full float64 round-trip precision.
func WriteCSV(w io.Writer, m point.Matrix) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	rec := make([]string, m.D())
	for i := 0; i < m.N(); i++ {
		row := m.Row(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a headerless CSV of floats into a matrix. All rows must
// have the same number of fields.
func ReadCSV(r io.Reader) (point.Matrix, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.ReuseRecord = true
	var rows [][]float64
	d := -1
	for lineNo := 1; ; lineNo++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return point.Matrix{}, fmt.Errorf("dataset: line %d: %w", lineNo, err)
		}
		if d == -1 {
			d = len(rec)
		} else if len(rec) != d {
			return point.Matrix{}, fmt.Errorf("dataset: line %d has %d fields, want %d", lineNo, len(rec), d)
		}
		row := make([]float64, d)
		for j, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return point.Matrix{}, fmt.Errorf("dataset: line %d field %d: %w", lineNo, j+1, err)
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	return point.FromRows(rows), nil
}

// WriteFile writes the matrix to path as CSV.
func WriteFile(path string, m point.Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a CSV dataset from path.
func ReadFile(path string) (point.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return point.Matrix{}, err
	}
	defer f.Close()
	return ReadCSV(f)
}
