package dataset

import (
	"bytes"
	"math"
	"testing"

	"skybench/internal/point"
)

func TestGenerateShapes(t *testing.T) {
	for _, dist := range AllDistributions {
		m := Generate(dist, 500, 6, 1)
		if m.N() != 500 || m.D() != 6 {
			t.Fatalf("%v: shape %d×%d", dist, m.N(), m.D())
		}
		for i := 0; i < m.N(); i++ {
			for _, v := range m.Row(i) {
				if v < 0 || v >= 1.0000001 {
					t.Fatalf("%v: value %v out of [0,1]", dist, v)
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Anticorrelated, 100, 8, 42)
	b := Generate(Anticorrelated, 100, 8, 42)
	for i := range a.Flat() {
		if a.Flat()[i] != b.Flat()[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := Generate(Anticorrelated, 100, 8, 43)
	same := true
	for i := range a.Flat() {
		if a.Flat()[i] != c.Flat()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateBadDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(Independent, 10, 0, 1)
}

// Correlation structure: correlated data should have strongly positively
// correlated dimension pairs; anticorrelated strongly negative;
// independent near zero.
func TestDistributionCorrelationSign(t *testing.T) {
	const n, d = 4000, 4
	pearson := func(m point.Matrix) float64 {
		// average pairwise correlation over dimension pairs
		var sum float64
		var cnt int
		for a := 0; a < d; a++ {
			for b := a + 1; b < d; b++ {
				var ma, mb float64
				for i := 0; i < n; i++ {
					ma += m.Row(i)[a]
					mb += m.Row(i)[b]
				}
				ma /= n
				mb /= n
				var cov, va, vb float64
				for i := 0; i < n; i++ {
					xa, xb := m.Row(i)[a]-ma, m.Row(i)[b]-mb
					cov += xa * xb
					va += xa * xa
					vb += xb * xb
				}
				sum += cov / math.Sqrt(va*vb)
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	if r := pearson(Generate(Correlated, n, d, 5)); r < 0.3 {
		t.Errorf("correlated data has mean pairwise r=%.3f, want > 0.3", r)
	}
	if r := pearson(Generate(Anticorrelated, n, d, 5)); r > -0.1 {
		t.Errorf("anticorrelated data has mean pairwise r=%.3f, want < -0.1", r)
	}
	if r := pearson(Generate(Independent, n, d, 5)); math.Abs(r) > 0.1 {
		t.Errorf("independent data has mean pairwise r=%.3f, want ≈ 0", r)
	}
}

func TestParseDistribution(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Distribution
	}{
		{"correlated", Correlated}, {"c", Correlated},
		{"independent", Independent}, {"i", Independent},
		{"anticorrelated", Anticorrelated}, {"anti", Anticorrelated},
	} {
		got, err := ParseDistribution(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseDistribution(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseDistribution("bogus"); err == nil {
		t.Error("expected error for bogus distribution")
	}
}

func TestDistributionString(t *testing.T) {
	if Correlated.String() != "correlated" || Distribution(9).String() != "distribution(9)" {
		t.Error("Distribution.String broken")
	}
}

func TestQuantizeCreatesDuplicates(t *testing.T) {
	m := Generate(Independent, 1000, 2, 7)
	Quantize(m, 4)
	distinct := map[float64]bool{}
	for _, v := range m.Flat() {
		distinct[v] = true
		if v < 0 || v >= 1 {
			t.Fatalf("quantized value %v out of range", v)
		}
	}
	if len(distinct) > 4 {
		t.Fatalf("quantize(4) produced %d distinct values", len(distinct))
	}
}

func TestQuantizeBadLevelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantize(point.NewMatrix(1, 1), 1)
}

func TestRealSpecs(t *testing.T) {
	for _, r := range AllRealDatasets {
		spec := r.Spec()
		if spec.Cardinality <= 0 || spec.Dimensionality <= 0 {
			t.Fatalf("%v: bad spec %+v", r, spec)
		}
	}
	if NBA.String() != "NBA" {
		t.Errorf("NBA name = %q", NBA.String())
	}
}

func TestRealLoadShapesAndDuplicates(t *testing.T) {
	for _, r := range AllRealDatasets {
		spec := r.Spec()
		m := r.Load(0.05)
		wantN := int(float64(spec.Cardinality) * 0.05)
		if m.N() != wantN || m.D() != spec.Dimensionality {
			t.Fatalf("%v: shape %d×%d, want %d×%d", r, m.N(), m.D(), wantN, spec.Dimensionality)
		}
		// The stand-ins must violate the distinct-value condition.
		col := map[float64]int{}
		for i := 0; i < m.N(); i++ {
			col[m.Row(i)[0]]++
		}
		if len(col) == m.N() {
			t.Errorf("%v: first column has all-distinct values; stand-in must contain duplicates", r)
		}
	}
}

func TestRealLoadBadScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NBA.Load(0)
}

func TestCSVRoundTrip(t *testing.T) {
	m := Generate(Independent, 50, 3, 11)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != m.N() || back.D() != m.D() {
		t.Fatalf("round-trip shape %d×%d", back.N(), back.D())
	}
	for i := range m.Flat() {
		if m.Flat()[i] != back.Flat()[i] {
			t.Fatalf("value %d changed: %v -> %v", i, m.Flat()[i], back.Flat()[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("1,2\n3\n")); err == nil {
		t.Error("expected error for ragged CSV")
	}
	if _, err := ReadCSV(bytes.NewBufferString("1,abc\n")); err == nil {
		t.Error("expected error for non-numeric CSV")
	}
	m, err := ReadCSV(bytes.NewBufferString(""))
	if err != nil || m.N() != 0 {
		t.Errorf("empty CSV: %v, n=%d", err, m.N())
	}
}
