package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"skybench/internal/faults"
)

func collect(t *testing.T, dir string, from uint64) (recs [][]byte, next uint64) {
	t.Helper()
	next, err := Replay(dir, from, func(lsn uint64, payload []byte) error {
		if lsn != from+uint64(len(recs)) {
			t.Fatalf("lsn %d out of order (want %d)", lsn, from+uint64(len(recs)))
		}
		recs = append(recs, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, next
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, 0, 100)
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		lsn, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
		want = append(want, p)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, next := collect(t, dir, 0)
	if next != 100 || len(recs) != 100 {
		t.Fatalf("replayed %d records, next=%d", len(recs), next)
	}
	for i, r := range recs {
		if string(r) != string(want[i]) {
			t.Fatalf("record %d = %q, want %q", i, r, want[i])
		}
	}
	// Replay from an offset.
	recs, _ = collect(t, dir, 97)
	if len(recs) != 3 || string(recs[0]) != "record-097" {
		t.Fatalf("offset replay got %d records, first %q", len(recs), recs[0])
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	for i := 0; i < 10; i++ {
		l.Append([]byte{byte(i)})
	}
	l.Close()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append([]byte{0xff})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 10 {
		t.Fatalf("resumed lsn = %d, want 10", lsn)
	}
	l.Close()
	recs, _ := collect(t, dir, 0)
	if len(recs) != 11 {
		t.Fatalf("got %d records, want 11", len(recs))
	}
}

func TestSegmentRotationAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{SegmentBytes: 64})
	for i := 0; i < 40; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("payload-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	recs, next := collect(t, dir, 0)
	if len(recs) != 40 || next != 40 {
		t.Fatalf("replayed %d records across segments, next=%d", len(recs), next)
	}

	// Drop segments wholly below LSN 20: replay from 20 still works.
	if err := l.TruncateBefore(20); err != nil {
		t.Fatal(err)
	}
	after, _ := listSegments(dir)
	if len(after) >= len(segs) {
		t.Fatalf("TruncateBefore removed nothing (%d -> %d segments)", len(segs), len(after))
	}
	_, err := Replay(dir, 20, func(lsn uint64, p []byte) error {
		if string(p) != fmt.Sprintf("payload-%02d", lsn) {
			return fmt.Errorf("lsn %d payload %q", lsn, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
}

// lastSegPath returns the path of the final segment.
func lastSegPath(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	return filepath.Join(dir, segName(segs[len(segs)-1]))
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	for _, cut := range []string{"header", "payload", "crc"} {
		t.Run(cut, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := Open(dir, Options{})
			for i := 0; i < 5; i++ {
				l.Append([]byte(fmt.Sprintf("intact-%d", i)))
			}
			l.Close()
			path := lastSegPath(t, dir)
			fi, _ := os.Stat(path)
			switch cut {
			case "header":
				os.Truncate(path, fi.Size()-13) // mid-payload of last record
			case "payload":
				os.Truncate(path, fi.Size()-3)
			case "crc":
				// Flip a payload byte of the final record: CRC mismatch.
				data, _ := os.ReadFile(path)
				data[len(data)-1] ^= 0xff
				os.WriteFile(path, data, 0o644)
			}
			recs, next := collect(t, dir, 0)
			if len(recs) != 4 || next != 4 {
				t.Fatalf("torn tail: replayed %d records, next=%d, want 4", len(recs), next)
			}
			// Open truncates the tear and appends resume cleanly.
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if lsn, err := l.Append([]byte("after-tear")); err != nil || lsn != 4 {
				t.Fatalf("append after tear: lsn=%d err=%v", lsn, err)
			}
			l.Close()
			recs, _ = collect(t, dir, 0)
			if len(recs) != 5 || string(recs[4]) != "after-tear" {
				t.Fatalf("after reopen: %d records, last %q", len(recs), recs[len(recs)-1])
			}
		})
	}
}

func TestMidLogCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{SegmentBytes: 32})
	for i := 0; i < 10; i++ {
		l.Append([]byte(fmt.Sprintf("rec-%d", i)))
	}
	l.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatal("need at least two segments")
	}
	// Corrupt the FIRST segment's first record payload.
	path := filepath.Join(dir, segName(segs[0]))
	data, _ := os.ReadFile(path)
	data[frameHeader] ^= 0xff
	os.WriteFile(path, data, 0o644)
	_, err := Replay(dir, 0, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay of mid-log corruption: err = %v, want ErrCorrupt", err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestGarbageLengthTreatedAsTear(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	l.Append([]byte("good"))
	l.Close()
	path := lastSegPath(t, dir)
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], ^uint32(0)) // absurd length
	f.Write(hdr[:])
	f.Close()
	recs, _ := collect(t, dir, 0)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
}

func TestAppendBatchGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{Sync: SyncAlways})
	batch := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	first, err := l.AppendBatch(batch)
	if err != nil || first != 0 {
		t.Fatalf("AppendBatch: first=%d err=%v", first, err)
	}
	if n := l.NextLSN(); n != 3 {
		t.Fatalf("NextLSN = %d, want 3", n)
	}
	l.Close()
	recs, _ := collect(t, dir, 0)
	if len(recs) != 3 || string(recs[2]) != "ccc" {
		t.Fatalf("batch replay: %d records", len(recs))
	}
}

func TestInjectedAppendErrorRollsBack(t *testing.T) {
	in := faults.New(1)
	in.Arm(faults.Plan{Site: "wal.append", After: 2}) // 3rd append fails
	dir := t.TempDir()
	l, _ := Open(dir, Options{Faults: in})
	l.Append([]byte("one"))
	l.Append([]byte("two"))
	if _, err := l.Append([]byte("three")); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if l.Err() != nil {
		t.Fatalf("rolled-back append must not poison the log: %v", l.Err())
	}
	// The failed record was rolled back; the next append gets its LSN.
	if lsn, err := l.Append([]byte("three-retried")); err != nil || lsn != 2 {
		t.Fatalf("retry: lsn=%d err=%v", lsn, err)
	}
	l.Close()
	recs, _ := collect(t, dir, 0)
	if len(recs) != 3 || string(recs[2]) != "three-retried" {
		t.Fatalf("after rollback: %v", recs)
	}
}

func TestClosedLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{Sync: SyncInterval, Interval: time.Millisecond})
	l.Append([]byte("x"))
	l.Close()
	if _, err := l.Append([]byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
