// Package wal is a segmented, CRC-framed write-ahead log: the
// durability primitive under a stream.SkylineIndex. Records are opaque
// payloads; the log assigns each a monotonically increasing LSN (its
// ordinal since the log was created) and guarantees that whatever
// prefix of appended records survives a crash is exactly recoverable.
//
// On-disk layout: a directory of segment files named
// wal-<firstLSN>.seg, each a concatenation of frames
//
//	uint32 payload length | uint32 CRC-32C(payload) | payload
//
// (little-endian). A crash can tear the final frame of the final
// segment; Open detects the torn tail (short frame, or CRC mismatch)
// and truncates the file back to the last intact frame, so appends
// resume on a clean boundary. A corrupt frame anywhere else — in a
// non-final segment, or followed by intact frames — is real data loss
// and surfaces as ErrCorrupt rather than being silently skipped.
//
// Sync policy is configurable: SyncAlways fsyncs every append (and
// every batch once — AppendBatch is the group-commit path), SyncOS
// issues plain write(2)s and lets the kernel flush (survives process
// crashes, not power loss), SyncInterval runs a background fsync loop.
// TruncateBefore removes whole segments below a checkpointed LSN.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"skybench/internal/faults"
)

// ErrCorrupt reports a WAL whose damage exceeds a torn final frame: a
// bad CRC or impossible length in the middle of the record sequence.
// The public surfaces wrap it into skybench.ErrCorruptWAL.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrClosed reports use of a closed Log.
var ErrClosed = errors.New("wal: log closed")

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncOS issues buffered write(2)s and never fsyncs explicitly: the
	// data survives a process crash the moment Append returns (it is in
	// the kernel page cache), but not a power failure. The default.
	SyncOS SyncPolicy = iota
	// SyncAlways fsyncs after every Append and once per AppendBatch —
	// the group-commit policy: a batch of N records costs one fsync.
	SyncAlways
	// SyncInterval fsyncs from a background loop every Options.Interval
	// (default 50ms): bounded data loss under power failure, near-SyncOS
	// throughput.
	SyncInterval
)

// Options configures a Log.
type Options struct {
	// SegmentBytes rotates to a fresh segment once the active one
	// exceeds this size (default 4 MiB).
	SegmentBytes int64
	// Sync selects the fsync policy.
	Sync SyncPolicy
	// Interval is the SyncInterval period (default 50ms).
	Interval time.Duration
	// Faults, when non-nil, arms the "wal.append", "wal.sync", and
	// "wal.rotate" injection sites.
	Faults *faults.Injector
}

const (
	frameHeader        = 8 // uint32 length + uint32 crc
	defaultSegmentSize = 4 << 20
	defaultInterval    = 50 * time.Millisecond
	segPrefix          = "wal-"
	segSuffix          = ".seg"
	// MaxRecord bounds a single payload; anything larger (or a frame
	// length claiming it) is treated as corruption, which keeps torn-
	// tail detection from allocating absurd buffers on garbage lengths.
	MaxRecord = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an append-only segmented record log. Append, Sync, and
// TruncateBefore are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	segStart uint64 // LSN of the active segment's first record
	segSize  int64
	next     uint64   // LSN the next Append receives
	segments []uint64 // first LSN of every on-disk segment, ascending
	failed   error    // sticky: the log can no longer guarantee a clean tail
	closed   bool

	fsyncs  uint64 // fsync calls issued (all sites: sync, rotate, loop, close)
	fsyncNs int64  // total wall-clock nanoseconds inside fsync

	syncStop chan struct{}
	syncDone chan struct{}
	scratch  []byte
}

// Stats is a point-in-time snapshot of the log's durability counters —
// the WAL half of a collection's DurabilityStats.
type Stats struct {
	// Fsyncs counts fsync calls issued on segment files; FsyncTime is
	// the total wall-clock time spent inside them.
	Fsyncs    uint64
	FsyncTime time.Duration
	// Segments is the current number of on-disk segments.
	Segments int
}

// Stats returns the log's durability counters. Safe for concurrent use.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Fsyncs:    l.fsyncs,
		FsyncTime: time.Duration(l.fsyncNs),
		Segments:  len(l.segments),
	}
}

// fsyncLocked is the single instrumented fsync site: every policy path
// (explicit Sync, per-append SyncAlways, rotation, the interval loop,
// Close) funnels through it so the counters cover all of them.
func (l *Log) fsyncLocked() error {
	start := time.Now()
	err := l.f.Sync()
	l.fsyncNs += int64(time.Since(start))
	l.fsyncs++
	return err
}

func segName(first uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// listSegments returns the first-LSNs of the directory's segments,
// ascending. An empty directory yields none.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range entries {
		if first, ok := parseSegName(e.Name()); ok {
			segs = append(segs, first)
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	return segs, nil
}

// Open opens (or creates) the log in dir, scanning existing segments to
// find the next LSN and truncating a torn final frame so appends resume
// on a clean boundary. Corruption before the final frame returns an
// error wrapping ErrCorrupt.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentSize
	}
	if opts.Interval <= 0 {
		opts.Interval = defaultInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, segments: segs}
	if len(segs) == 0 {
		if err := l.openSegment(0); err != nil {
			return nil, err
		}
		l.segments = []uint64{0}
	} else {
		// Verify every non-final segment ends cleanly, then scan the
		// final one, truncating its torn tail if any.
		for i, first := range segs {
			final := i == len(segs)-1
			path := filepath.Join(dir, segName(first))
			n, good, err := scanSegment(path, first, nil)
			if err != nil {
				return nil, err
			}
			if !final {
				if fi, err := os.Stat(path); err != nil {
					return nil, err
				} else if fi.Size() != good {
					return nil, fmt.Errorf("%w: segment %s has a torn tail but is not the final segment", ErrCorrupt, segName(first))
				}
				continue
			}
			if fi, err := os.Stat(path); err != nil {
				return nil, err
			} else if fi.Size() != good {
				if err := os.Truncate(path, good); err != nil {
					return nil, err
				}
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			l.f = f
			l.segStart = first
			l.segSize = good
			l.next = first + uint64(n)
		}
	}
	if opts.Sync == SyncInterval {
		l.syncStop = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// openSegment creates a fresh active segment whose first record will be
// LSN first.
func (l *Log) openSegment(first uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(first)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.segStart = first
	l.segSize = 0
	l.next = first
	return nil
}

// scanSegment walks one segment's frames starting at LSN first, calling
// fn (when non-nil) per intact record, and returns the record count and
// the byte offset of the end of the last intact frame. A torn tail is
// not an error here — the caller decides whether it is legal (final
// segment) or corruption (anywhere else).
func scanSegment(path string, first uint64, fn func(lsn uint64, payload []byte) error) (n int, good int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	var hdr [frameHeader]byte
	var buf []byte
	lsn := first
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return n, good, nil // clean EOF or torn header: stop at last intact frame
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length > MaxRecord {
			return n, good, nil // garbage length: treat as torn from here
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := io.ReadFull(f, buf); err != nil {
			return n, good, nil // torn payload
		}
		if crc32.Checksum(buf, castagnoli) != crc {
			return n, good, nil // torn or corrupt frame; caller judges
		}
		if fn != nil {
			if err := fn(lsn, buf); err != nil {
				return n, good, err
			}
		}
		lsn++
		n++
		good += frameHeader + int64(length)
	}
}

// Replay calls fn for every record with LSN ≥ from, in order, across
// all segments, without opening the log for writing. A torn final frame
// of the final segment is skipped (a crash tore it mid-append; the
// record was never acknowledged); any earlier damage returns an error
// wrapping ErrCorrupt. It returns the next LSN (one past the last
// intact record).
func Replay(dir string, from uint64, fn func(lsn uint64, payload []byte) error) (next uint64, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		return 0, nil
	}
	next = segs[0]
	for i, first := range segs {
		if i > 0 && first != next {
			return 0, fmt.Errorf("%w: segment gap, %s begins at lsn %d but previous segment ended at %d", ErrCorrupt, segName(first), first, next)
		}
		final := i == len(segs)-1
		path := filepath.Join(dir, segName(first))
		deliver := func(lsn uint64, payload []byte) error {
			if lsn < from || fn == nil {
				return nil
			}
			return fn(lsn, payload)
		}
		n, good, err := scanSegment(path, first, deliver)
		if err != nil {
			return 0, err
		}
		fi, err := os.Stat(path)
		if err != nil {
			return 0, err
		}
		if fi.Size() != good && !final {
			return 0, fmt.Errorf("%w: segment %s has a torn tail but is not the final segment", ErrCorrupt, segName(first))
		}
		next = first + uint64(n)
	}
	return next, nil
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Err returns the sticky failure, if the log can no longer guarantee a
// clean tail (a failed append it could not roll back).
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Append writes one record and returns its LSN, honoring the sync
// policy. On a write error it rolls the file back to the last clean
// frame boundary; if even the rollback fails the log is marked failed
// and every later Append returns the sticky error.
func (l *Log) Append(payload []byte) (uint64, error) {
	return l.AppendBatch([][]byte{payload})
}

// AppendBatch appends every payload as one contiguous write — the
// group-commit path: under SyncAlways the whole batch costs a single
// fsync, and a crash either keeps a prefix of the batch or none of it
// (records are framed individually, so a torn batch recovers its intact
// prefix). It returns the LSN of the first record.
func (l *Log) AppendBatch(payloads [][]byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.failed != nil {
		return 0, l.failed
	}
	if len(payloads) == 0 {
		return l.next, nil
	}
	if l.segSize >= l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}

	total := 0
	for _, p := range payloads {
		if len(p) > MaxRecord {
			return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(p))
		}
		total += frameHeader + len(p)
	}
	if cap(l.scratch) < total {
		l.scratch = make([]byte, 0, total)
	}
	buf := l.scratch[:0]
	for _, p := range payloads {
		var hdr [frameHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(p, castagnoli))
		buf = append(buf, hdr[:]...)
		buf = append(buf, p...)
	}
	l.scratch = buf[:0]

	first := l.next
	if err := l.write(buf); err != nil {
		return 0, err
	}
	l.next += uint64(len(payloads))
	if l.opts.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return first, nil
}

// write appends buf to the active segment, rolling back to the previous
// clean boundary on error (marking the log failed only when the
// rollback itself fails, i.e. the tail state is unknown).
func (l *Log) write(buf []byte) error {
	if err := faults.Check(l.opts.Faults, "wal.append"); err != nil {
		return l.rollback(fmt.Errorf("wal: append: %w", err))
	}
	n, err := l.f.Write(buf)
	if err != nil {
		if n == 0 {
			// Nothing reached the file; the tail is still clean.
			return fmt.Errorf("wal: append: %w", err)
		}
		return l.rollback(fmt.Errorf("wal: append: %w", err))
	}
	l.segSize += int64(len(buf))
	return nil
}

// rollback truncates the active segment back to the last acknowledged
// frame boundary after a failed or injected write. If the truncate
// fails too the log is poisoned.
func (l *Log) rollback(cause error) error {
	if err := l.f.Truncate(l.segSize); err != nil {
		l.failed = fmt.Errorf("wal: failed append could not be rolled back (%v): %w", err, cause)
		return l.failed
	}
	if _, err := l.f.Seek(l.segSize, io.SeekStart); err != nil {
		l.failed = fmt.Errorf("wal: failed append could not be rolled back (%v): %w", err, cause)
		return l.failed
	}
	return cause
}

// rotate fsyncs and closes the active segment and opens a fresh one.
func (l *Log) rotate() error {
	if err := faults.Check(l.opts.Faults, "wal.rotate"); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if err := l.fsyncLocked(); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if err := l.openSegment(l.next); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	l.segments = append(l.segments, l.segStart)
	return nil
}

// Sync forces an fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := faults.Check(l.opts.Faults, "wal.sync"); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	if err := l.fsyncLocked(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.syncStop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				l.fsyncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// TruncateBefore removes every segment whose records all have LSN <
// lsn — the post-checkpoint cleanup. The active segment is never
// removed.
func (l *Log) TruncateBefore(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	keep := l.segments[:0]
	for i, first := range l.segments {
		// A segment's records end where the next one begins; the last
		// (active) segment always stays.
		if i+1 < len(l.segments) && l.segments[i+1] <= lsn {
			if err := os.Remove(filepath.Join(l.dir, segName(first))); err != nil && !os.IsNotExist(err) {
				l.segments = append(keep, l.segments[i:]...)
				return err
			}
			continue
		}
		keep = append(keep, first)
	}
	l.segments = keep
	return nil
}

// Close fsyncs and closes the active segment (and stops the interval
// syncer). The log must not be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	if l.syncStop != nil {
		close(l.syncStop)
		<-l.syncDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.failed == nil {
		err = l.fsyncLocked()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
