package dnc

import (
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/verify"
)

func TestSkylineMatchesOracle(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		for _, n := range []int{1, 2, 31, 32, 33, 64, 500} {
			for _, d := range []int{1, 2, 4, 7} {
				m := dataset.Generate(dist, n, d, int64(5*n+d))
				if !verify.SameSkyline(Skyline(m), verify.BruteForce(m)) {
					t.Fatalf("%v n=%d d=%d: wrong skyline", dist, n, d)
				}
			}
		}
	}
}

func TestSkylineEmpty(t *testing.T) {
	if got := Skyline(point.Matrix{}); got != nil {
		t.Fatalf("empty: %v", got)
	}
}

// The split-dimension tie case the merge's cleanup pass exists for: a
// lower-half point dominated by an upper-half point that ties on the
// split dimension.
func TestSplitDimensionTies(t *testing.T) {
	rows := [][]float64{}
	// Many points with identical first coordinate, differing elsewhere.
	for i := 0; i < 100; i++ {
		rows = append(rows, []float64{5, float64(100 - i), float64(i % 10)})
	}
	rows = append(rows, []float64{5, 0, 0}) // dominates most of the above
	m := point.FromRows(rows)
	if !verify.SameSkyline(Skyline(m), verify.BruteForce(m)) {
		t.Fatal("tie-heavy split dimension handled incorrectly")
	}
}

func TestDuplicateRows(t *testing.T) {
	rows := [][]float64{}
	for i := 0; i < 80; i++ {
		rows = append(rows, []float64{1, 1})
	}
	m := point.FromRows(rows)
	if got := Skyline(m); len(got) != 80 {
		t.Fatalf("coincident rows: kept %d of 80", len(got))
	}
}

func TestQuantizedData(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 600, 4, 3)
	dataset.Quantize(m, 4)
	if !verify.SameSkyline(Skyline(m), verify.BruteForce(m)) {
		t.Fatal("wrong skyline on quantized data")
	}
}

func TestDTCounting(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 400, 4, 2)
	_, dts := SkylineDT(m)
	if dts == 0 {
		t.Error("expected DTs > 0")
	}
}
