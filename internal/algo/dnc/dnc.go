// Package dnc implements the divide-and-conquer skyline algorithm that
// accompanied BNL in the operator's introducing paper (Börzsönyi et al.,
// ICDE 2001, the paper's reference [4]).
//
// The input is split at the median of the first dimension; the skylines
// of both halves are computed recursively; then points of the worse half
// are removed if dominated by a skyline point of the better half. The
// divide-and-conquer paradigm is exactly what PSkyline parallelizes —
// and what the paper's global-skyline paradigm argues against — so the
// sequential original belongs in the benchmark suite.
package dnc

import (
	"sort"

	"skybench/internal/point"
)

// recursionFloor is the sub-problem size below which a window scan beats
// further recursion.
const recursionFloor = 32

// Skyline computes SKY(m) and returns original row indices.
func Skyline(m point.Matrix) []int {
	idx, _ := SkylineDT(m)
	return idx
}

// SkylineDT is Skyline with a dominance-test count.
func SkylineDT(m point.Matrix) ([]int, uint64) {
	n := m.N()
	if n == 0 {
		return nil, 0
	}
	pts := make([]int, n)
	for i := range pts {
		pts[i] = i
	}
	var dts uint64
	out := skylineRec(m, pts, 0, &dts)
	return out, dts
}

// skylineRec computes the skyline of pts, cycling the split dimension by
// recursion depth for balanced cuts on correlated data.
func skylineRec(m point.Matrix, pts []int, depth int, dts *uint64) []int {
	if len(pts) <= recursionFloor {
		return windowScan(m, pts, dts)
	}
	dim := depth % m.D()
	// Split at the median of the split dimension. Sorting also gives the
	// invariant that points in the lower half cannot be dominated by
	// points in the upper half except through ties on the split value.
	sort.Slice(pts, func(a, b int) bool { return m.Row(pts[a])[dim] < m.Row(pts[b])[dim] })
	mid := len(pts) / 2
	lower := append([]int(nil), pts[:mid]...)
	upper := append([]int(nil), pts[mid:]...)

	skyLower := skylineRec(m, lower, depth+1, dts)
	skyUpper := skylineRec(m, upper, depth+1, dts)

	// Merge: upper-half skyline points survive only if no lower-half
	// skyline point dominates them. Lower-half points can still be
	// dominated by upper-half points when the split values tie, so the
	// symmetric check runs too (a windowed merge handles both).
	merged := make([]int, 0, len(skyLower)+len(skyUpper))
	merged = append(merged, skyLower...)
	for _, u := range skyUpper {
		p := m.Row(u)
		dominated := false
		for _, l := range skyLower {
			*dts++
			if point.Dominates(m.Row(l), p) {
				dominated = true
				break
			}
		}
		if !dominated {
			merged = append(merged, u)
		}
	}
	// Upper points cannot dominate lower skyline points: every lower
	// point has a split-dimension value ≤ every upper point's, and if
	// equal, dominance would require the upper point to be better
	// elsewhere — possible! — so complete with a reverse pass over ties.
	return cleanupTies(m, merged, len(skyLower), dim, dts)
}

// cleanupTies removes lower-half skyline points dominated by a surviving
// upper-half point with an equal split-dimension value.
func cleanupTies(m point.Matrix, merged []int, lowerCount, dim int, dts *uint64) []int {
	out := merged[:0]
	for k, i := range merged {
		if k >= lowerCount {
			out = append(out, i)
			continue
		}
		p := m.Row(i)
		dominated := false
		for _, j := range merged[lowerCount:] {
			if m.Row(j)[dim] > p[dim] {
				continue // strictly worse on the split dim: cannot dominate
			}
			*dts++
			if point.Dominates(m.Row(j), p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// windowScan is the leaf case: a BNL-style window over a small group.
func windowScan(m point.Matrix, pts []int, dts *uint64) []int {
	window := make([]int, 0, len(pts))
	for _, i := range pts {
		p := m.Row(i)
		dominated := false
		w := 0
		for k, j := range window {
			*dts++
			rel := point.Compare(m.Row(j), p)
			if rel == point.LeftDominates {
				w += copy(window[w:], window[k:])
				dominated = true
				break
			}
			if rel == point.RightDominates {
				continue
			}
			window[w] = j
			w++
		}
		window = window[:w]
		if !dominated {
			window = append(window, i)
		}
	}
	return window
}
