package bnl

import (
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/verify"
)

func TestSkylineMatchesOracle(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		for _, n := range []int{1, 2, 50, 400} {
			for _, d := range []int{1, 2, 5, 8} {
				m := dataset.Generate(dist, n, d, int64(n*d))
				got := Skyline(m)
				if !verify.SameSkyline(got, verify.BruteForce(m)) {
					t.Fatalf("%v n=%d d=%d: wrong skyline", dist, n, d)
				}
			}
		}
	}
}

func TestSkylineEmpty(t *testing.T) {
	if got := Skyline(point.Matrix{}); got != nil {
		t.Fatalf("empty: %v", got)
	}
}

func TestSkylineDuplicates(t *testing.T) {
	m := point.FromRows([][]float64{{1, 1}, {1, 1}, {0, 3}, {1, 1}, {2, 2}})
	got := Skyline(m)
	if !verify.SameSkyline(got, []int{0, 1, 2, 3}) {
		t.Fatalf("duplicates: got %v", got)
	}
}

func TestSkylineAllIdentical(t *testing.T) {
	m := point.FromRows([][]float64{{2, 2}, {2, 2}, {2, 2}})
	if got := Skyline(m); len(got) != 3 {
		t.Fatalf("identical points: got %v", got)
	}
}

func TestSkylineDTCountsSomething(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 200, 4, 1)
	_, dts := SkylineDT(m)
	if dts == 0 {
		t.Error("expected dominance tests > 0")
	}
}

func TestQuantizedInputs(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 300, 4, 9)
	dataset.Quantize(m, 8)
	if !verify.SameSkyline(Skyline(m), verify.BruteForce(m)) {
		t.Fatal("wrong skyline on duplicate-heavy data")
	}
}
