// Package bnl implements the Block-Nested-Loops skyline algorithm of
// Börzsönyi et al. (ICDE 2001), the original baseline every later skyline
// algorithm is measured against. It maintains a window of candidate
// points; each input point is compared against the window, evicting
// dominated candidates and being discarded if dominated itself.
//
// The in-memory variant here keeps the whole window resident (the
// paper's evaluation is entirely main-memory, Section VII-A1).
package bnl

import (
	"skybench/internal/point"
)

// Skyline computes SKY(m) and returns the original row indices of the
// skyline points.
func Skyline(m point.Matrix) []int {
	idx, _ := SkylineDT(m)
	return idx
}

// SkylineDT is Skyline instrumented with a dominance-test count. One
// window comparison via point.Compare counts as a single dominance test,
// matching the paper's accounting (one check of p ≺ q, here fused with
// the reverse direction in a single pass).
func SkylineDT(m point.Matrix) ([]int, uint64) {
	n := m.N()
	if n == 0 {
		return nil, 0
	}
	var dts uint64
	d := m.D()
	flat := m.Flat()
	window := make([]int, 0, 64)
	for i := 0; i < n; i++ {
		dominated := false
		w := 0
		for k, j := range window {
			dts++
			rel := point.CompareFlat(flat, j*d, i*d, d)
			if rel == point.LeftDominates {
				// p is dominated: keep j and every remaining candidate.
				w += copy(window[w:], window[k:])
				dominated = true
				break
			}
			if rel == point.RightDominates {
				continue // p dominates j: evict j from the window
			}
			window[w] = j
			w++
		}
		window = window[:w]
		if !dominated {
			window = append(window, i)
		}
	}
	return window, dts
}
