// Package less implements LESS (Linear Elimination Sort for Skyline) of
// Godfrey et al. (VLDB J 2007). LESS improves SFS by doing dominance
// work during the sorting pass: an elimination-filter (EF) window of a
// few best points (smallest L1 norms) seen so far discards the bulk of
// dominated points before the sort, shrinking the input to the SFS-style
// filter phase.
package less

import (
	"sort"

	"skybench/internal/point"
)

// DefaultEFSize is the elimination-filter window capacity. Godfrey et
// al. observe a handful of entries suffices; we match the paper's β = 8.
const DefaultEFSize = 8

// Skyline computes SKY(m) and returns original row indices.
func Skyline(m point.Matrix) []int {
	idx, _ := SkylineDT(m, DefaultEFSize)
	return idx
}

// SkylineDT is Skyline with a dominance-test count and a configurable
// elimination-filter size (ef ≤ 0 selects DefaultEFSize).
func SkylineDT(m point.Matrix, ef int) ([]int, uint64) {
	n := m.N()
	if n == 0 {
		return nil, 0
	}
	if ef <= 0 {
		ef = DefaultEFSize
	}
	l1 := make([]float64, n)
	m.L1All(l1)
	d := m.D()
	flat := m.Flat()
	var dts uint64

	// Pass 1 (during "sort"): maintain the EF window of the ef points
	// with smallest L1; every point is tested against it.
	filter := make([]int, 0, ef)
	worst := -1 // position in filter of the largest-L1 entry
	recomputeWorst := func() {
		worst = 0
		for k := 1; k < len(filter); k++ {
			if l1[filter[k]] > l1[filter[worst]] {
				worst = k
			}
		}
	}
	survivors := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if len(filter) < ef {
			filter = append(filter, i)
			recomputeWorst()
			survivors = append(survivors, i)
			continue
		}
		if l1[i] < l1[filter[worst]] {
			filter[worst] = i
			recomputeWorst()
			survivors = append(survivors, i)
			continue
		}
		dominated := false
		for _, j := range filter {
			if l1[j] == l1[i] {
				continue
			}
			dts++
			if point.DominatesFlat(flat, j*d, i*d, d) {
				dominated = true
				break
			}
		}
		if !dominated {
			survivors = append(survivors, i)
		}
	}

	// Sort survivors by L1, then run the SFS filter phase.
	sort.Slice(survivors, func(a, b int) bool { return l1[survivors[a]] < l1[survivors[b]] })
	sky := make([]int, 0, 64)
	for _, i := range survivors {
		dominated := false
		for _, j := range sky {
			if l1[j] == l1[i] {
				continue
			}
			dts++
			if point.DominatesFlat(flat, j*d, i*d, d) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, i)
		}
	}
	return sky, dts
}
