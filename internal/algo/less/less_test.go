package less

import (
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/verify"
)

func TestSkylineMatchesOracle(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		for _, n := range []int{1, 2, 50, 400} {
			for _, d := range []int{1, 2, 5, 8} {
				m := dataset.Generate(dist, n, d, int64(3*n+d))
				if !verify.SameSkyline(Skyline(m), verify.BruteForce(m)) {
					t.Fatalf("%v n=%d d=%d: wrong skyline", dist, n, d)
				}
			}
		}
	}
}

func TestSkylineEmpty(t *testing.T) {
	if got := Skyline(point.Matrix{}); got != nil {
		t.Fatalf("empty: %v", got)
	}
}

func TestEFSizes(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 600, 5, 4)
	want := verify.BruteForce(m)
	for _, ef := range []int{1, 2, 8, 64} {
		got, _ := SkylineDT(m, ef)
		if !verify.SameSkyline(got, want) {
			t.Fatalf("ef=%d: wrong skyline", ef)
		}
	}
}

// The elimination filter should cut the SFS phase's input on correlated
// data: DTs with the filter must not exceed plain quadratic behaviour.
func TestEliminationReducesWork(t *testing.T) {
	m := dataset.Generate(dataset.Correlated, 2000, 4, 6)
	_, dts := SkylineDT(m, DefaultEFSize)
	n := uint64(m.N())
	if dts > n*n/4 {
		t.Errorf("LESS did %d DTs on easy correlated data (n²=%d)", dts, n*n)
	}
}

func TestSkylineDuplicates(t *testing.T) {
	m := point.FromRows([][]float64{{1, 1}, {1, 1}, {0, 2}, {2, 2}})
	if !verify.SameSkyline(Skyline(m), []int{0, 1, 2}) {
		t.Fatalf("duplicates: %v", Skyline(m))
	}
}
