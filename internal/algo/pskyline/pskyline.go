// Package pskyline implements PSkyline (Im & Park, Inf. Syst. 2011), the
// state-of-the-art multicore divide-and-conquer algorithm the paper
// compares against.
//
// The input is cut linearly into one block per thread; each thread
// computes the local skyline of its block in isolation (the "map" phase,
// which the paper calls PSkyline's Phase I); the local skylines are then
// folded into a global skyline with a parallelized merge (the "reduce" /
// Phase II). The merge phase is PSkyline's bottleneck on hard workloads
// because dominance between blocks is only discovered there — the
// motivating weakness for the paper's global-skyline paradigm.
package pskyline

import (
	"time"

	"skybench/internal/par"
	"skybench/internal/point"
	"skybench/internal/stats"
)

// Skyline computes SKY(m) using threads worker threads and returns
// original row indices.
func Skyline(m point.Matrix, threads int) []int {
	return SkylineStats(m, threads, nil)
}

// SkylineStats is Skyline with phase timings and DT counts recorded into
// st when non-nil. Phase I holds the local (map) skylines, Phase II the
// merge.
func SkylineStats(m point.Matrix, threads int, st *stats.Stats) []int {
	n := m.N()
	if n == 0 {
		return nil
	}
	if threads <= 0 {
		threads = par.DefaultThreads()
	}
	dts := stats.NewDTCounters(threads)
	start := time.Now()

	// Map: local skyline per linear block, one per thread.
	locals := make([][]int, threads)
	par.ForRanges(threads, n, func(tid, lo, hi int) {
		var local uint64
		locals[tid] = sskyline(m, lo, hi, &local)
		dts.Inc(tid, local)
	})
	mapDone := time.Now()

	// Reduce: fold the local skylines into a global skyline. Each merge
	// of two disjoint skylines keeps exactly the points not dominated by
	// the other side; both directions are checked in parallel.
	global := locals[0]
	for k := 1; k < threads; k++ {
		if len(locals[k]) > 0 {
			global = pmerge(m, global, locals[k], threads, dts)
		}
	}
	end := time.Now()

	if st != nil {
		st.InputSize = n
		st.Threads = threads
		st.SkylineSize = len(global)
		st.DominanceTests = dts.Sum()
		st.Phases[stats.PhaseOne] += mapDone.Sub(start)
		st.Phases[stats.PhaseTwo] += end.Sub(mapDone)
	}
	return global
}

// sskyline computes the skyline of rows [lo, hi) with an in-place
// BNL-style scan (Im & Park's sequential building block).
func sskyline(m point.Matrix, lo, hi int, dts *uint64) []int {
	window := make([]int, 0, 64)
	for i := lo; i < hi; i++ {
		p := m.Row(i)
		dominated := false
		w := 0
		for k, j := range window {
			*dts++
			rel := point.Compare(m.Row(j), p)
			if rel == point.LeftDominates {
				w += copy(window[w:], window[k:])
				dominated = true
				break
			}
			if rel == point.RightDominates {
				continue
			}
			window[w] = j
			w++
		}
		window = window[:w]
		if !dominated {
			window = append(window, i)
		}
	}
	return window
}

// pmerge merges two skylines of disjoint subsets: a point of A survives
// iff no point of B dominates it, and vice versa. Because A and B are
// each internally dominance-free, testing against the full opposite side
// is equivalent to testing against its survivors, so both directions run
// in parallel without ordering.
func pmerge(m point.Matrix, a, b []int, threads int, dts *stats.DTCounters) []int {
	keepA := make([]bool, len(a))
	keepB := make([]bool, len(b))
	d := m.D()
	total := len(a) + len(b)
	par.ForRanges(threads, total, func(tid, lo, hi int) {
		var local uint64
		for k := lo; k < hi; k++ {
			if k < len(a) {
				p := m.Row(a[k])
				keepA[k] = true
				for _, j := range b {
					local++
					if point.DominatesD(m.Row(j), p, d) {
						keepA[k] = false
						break
					}
				}
			} else {
				p := m.Row(b[k-len(a)])
				keepB[k-len(a)] = true
				for _, j := range a {
					local++
					if point.DominatesD(m.Row(j), p, d) {
						keepB[k-len(a)] = false
						break
					}
				}
			}
		}
		dts.Inc(tid, local)
	})
	out := make([]int, 0, len(a)+len(b))
	for k, keep := range keepA {
		if keep {
			out = append(out, a[k])
		}
	}
	for k, keep := range keepB {
		if keep {
			out = append(out, b[k])
		}
	}
	return out
}
