package pskyline

import (
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/stats"
	"skybench/internal/verify"
)

func TestMatchesOracle(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		for _, threads := range []int{1, 2, 3, 8} {
			for _, n := range []int{1, 2, 10, 500} {
				m := dataset.Generate(dist, n, 5, int64(n+threads))
				if !verify.SameSkyline(Skyline(m, threads), verify.BruteForce(m)) {
					t.Fatalf("%v t=%d n=%d: wrong skyline", dist, threads, n)
				}
			}
		}
	}
}

func TestEmpty(t *testing.T) {
	if got := Skyline(point.Matrix{}, 4); got != nil {
		t.Fatalf("empty: %v", got)
	}
}

func TestMoreThreadsThanPoints(t *testing.T) {
	m := point.FromRows([][]float64{{1, 2}, {2, 1}})
	if got := Skyline(m, 16); len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestDuplicatesAcrossBlocks(t *testing.T) {
	// Coincident minima land in different thread blocks; the merge must
	// keep both.
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = []float64{float64(5 + i%7), float64(5 + (i*3)%7)}
	}
	rows[3] = []float64{0, 0}
	rows[97] = []float64{0, 0}
	m := point.FromRows(rows)
	got := Skyline(m, 4)
	if !verify.SameSkyline(got, verify.BruteForce(m)) {
		t.Fatalf("duplicates across blocks: %v", got)
	}
}

func TestStatsRecorded(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 1000, 6, 9)
	var st stats.Stats
	got := SkylineStats(m, 4, &st)
	if st.SkylineSize != len(got) || st.InputSize != 1000 {
		t.Errorf("sizes: %+v", st)
	}
	if st.DominanceTests == 0 {
		t.Error("no DTs recorded")
	}
	if st.Phases[stats.PhaseOne] == 0 && st.Phases[stats.PhaseTwo] == 0 {
		t.Error("no phase time recorded")
	}
}

func TestThreadCountInvariance(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 800, 6, 4)
	want := Skyline(m, 1)
	for _, threads := range []int{2, 5, 7} {
		if !verify.SameSkyline(Skyline(m, threads), want) {
			t.Fatalf("t=%d disagrees with t=1", threads)
		}
	}
}
