// Package sfs implements the Sort-Filter Skyline algorithm of Chomicki
// et al. (ICDE 2003). The input is presorted by a monotone scoring
// function (here the L1 norm, as in the paper's Q-Flow) so that no point
// can be dominated by a later point; the BNL window then only ever grows,
// and every point that survives the window scan is immediately known to
// be a skyline point — enabling progressive output.
package sfs

import (
	"sort"

	"skybench/internal/point"
)

// Skyline computes SKY(m) and returns original row indices.
func Skyline(m point.Matrix) []int {
	idx, _ := SkylineDT(m)
	return idx
}

// SkylineDT is Skyline with a dominance-test count.
func SkylineDT(m point.Matrix) ([]int, uint64) {
	n := m.N()
	if n == 0 {
		return nil, 0
	}
	l1 := make([]float64, n)
	m.L1All(l1)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return l1[order[a]] < l1[order[b]] })

	var dts uint64
	d := m.D()
	flat := m.Flat()
	sky := make([]int, 0, 64)
	for _, i := range order {
		dominated := false
		for _, j := range sky {
			// Cheap filter: a window point with equal L1 cannot dominate
			// p unless coincident, and coincident points never dominate.
			if l1[j] == l1[i] {
				continue
			}
			dts++
			if point.DominatesFlat(flat, j*d, i*d, d) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, i)
		}
	}
	return sky, dts
}
