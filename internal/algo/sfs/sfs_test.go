package sfs

import (
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/verify"
)

func TestSkylineMatchesOracle(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		for _, n := range []int{1, 2, 50, 400} {
			for _, d := range []int{1, 2, 5, 8} {
				m := dataset.Generate(dist, n, d, int64(n+d))
				if !verify.SameSkyline(Skyline(m), verify.BruteForce(m)) {
					t.Fatalf("%v n=%d d=%d: wrong skyline", dist, n, d)
				}
			}
		}
	}
}

func TestSkylineEmpty(t *testing.T) {
	if got := Skyline(point.Matrix{}); got != nil {
		t.Fatalf("empty: %v", got)
	}
}

func TestSkylineDuplicates(t *testing.T) {
	m := point.FromRows([][]float64{{1, 1}, {1, 1}, {2, 0}, {3, 3}})
	if !verify.SameSkyline(Skyline(m), []int{0, 1, 2}) {
		t.Fatalf("duplicates: %v", Skyline(m))
	}
}

// SFS should do far fewer dominance tests than BNL-style scanning on
// data where the sort front-loads strong pruners. Here we simply check
// DTs are bounded by the quadratic worst case and nonzero.
func TestSkylineDTBounds(t *testing.T) {
	m := dataset.Generate(dataset.Correlated, 500, 4, 3)
	_, dts := SkylineDT(m)
	if dts == 0 {
		t.Error("expected DTs > 0")
	}
	n := uint64(m.N())
	if dts > n*n {
		t.Errorf("DTs = %d exceeds n² = %d", dts, n*n)
	}
}

func TestQuantizedInputs(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 300, 4, 9)
	dataset.Quantize(m, 8)
	if !verify.SameSkyline(Skyline(m), verify.BruteForce(m)) {
		t.Fatal("wrong skyline on duplicate-heavy data")
	}
}
