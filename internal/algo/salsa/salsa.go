// Package salsa implements the Sort and Limit Skyline algorithm (SaLSa)
// of Bartolini et al. (TODS 2008). Points are sorted by their minimum
// coordinate (with L1 as tiebreak), which both preserves the
// no-backward-dominance property and enables early termination: once the
// best "stop point" seen so far has a maximum coordinate strictly smaller
// than the minimum coordinate of the next input point, every remaining
// point is dominated and the scan can stop.
package salsa

import (
	"math"
	"sort"

	"skybench/internal/point"
)

// Skyline computes SKY(m) and returns original row indices.
func Skyline(m point.Matrix) []int {
	idx, _, _ := SkylineDT(m)
	return idx
}

// SkylineDT is Skyline with a dominance-test count; it also reports how
// many input points the early-termination rule skipped entirely.
func SkylineDT(m point.Matrix) (sky []int, dts uint64, skipped int) {
	n := m.N()
	if n == 0 {
		return nil, 0, 0
	}
	minC := make([]float64, n)
	l1 := make([]float64, n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		minC[i] = point.MinCoord(row)
		l1[i] = point.L1(row)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if minC[ia] != minC[ib] {
			return minC[ia] < minC[ib]
		}
		return l1[ia] < l1[ib]
	})

	d := m.D()
	flat := m.Flat()
	stop := math.Inf(1) // smallest max-coordinate among skyline points so far
	sky = make([]int, 0, 64)
	for pos, i := range order {
		if stop < minC[i] {
			// The stop point is strictly better on every dimension than
			// any remaining point (all their coordinates are ≥ minC ≥
			// stop): everything left is dominated.
			skipped = n - pos
			break
		}
		dominated := false
		for _, j := range sky {
			if l1[j] == l1[i] {
				continue // equal L1 ⇒ no dominance possible
			}
			dts++
			if point.DominatesFlat(flat, j*d, i*d, d) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, i)
			if mx := point.MaxCoord(m.Row(i)); mx < stop {
				stop = mx
			}
		}
	}
	return sky, dts, skipped
}
