package salsa

import (
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/verify"
)

func TestSkylineMatchesOracle(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		for _, n := range []int{1, 2, 50, 400} {
			for _, d := range []int{1, 2, 5, 8} {
				m := dataset.Generate(dist, n, d, int64(2*n+d))
				if !verify.SameSkyline(Skyline(m), verify.BruteForce(m)) {
					t.Fatalf("%v n=%d d=%d: wrong skyline", dist, n, d)
				}
			}
		}
	}
}

func TestSkylineEmpty(t *testing.T) {
	if got := Skyline(point.Matrix{}); got != nil {
		t.Fatalf("empty: %v", got)
	}
}

// Early termination must actually fire on correlated data, where a
// near-origin point dominates the bulk of the input.
func TestEarlyTerminationFires(t *testing.T) {
	m := dataset.Generate(dataset.Correlated, 3000, 2, 5)
	_, _, skipped := SkylineDT(m)
	if skipped == 0 {
		t.Error("expected early termination to skip points on correlated 2-d data")
	}
}

// And termination must never skip an actual skyline point.
func TestEarlyTerminationIsSafe(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		m := dataset.Generate(dataset.Correlated, 500, 3, seed)
		dataset.Quantize(m, 16) // ties stress the strict-< condition
		if !verify.SameSkyline(Skyline(m), verify.BruteForce(m)) {
			t.Fatalf("seed %d: early termination lost a skyline point", seed)
		}
	}
}

func TestSkylineDuplicates(t *testing.T) {
	m := point.FromRows([][]float64{{1, 1}, {1, 1}, {0, 2}, {2, 2}})
	if !verify.SameSkyline(Skyline(m), []int{0, 1, 2}) {
		t.Fatalf("duplicates: %v", Skyline(m))
	}
}

func TestConstantData(t *testing.T) {
	// All points identical: all are skyline; the stop point equals every
	// minC, so strict-< must not terminate early and drop points.
	m := point.FromRows([][]float64{{3, 3}, {3, 3}, {3, 3}, {3, 3}})
	if got := Skyline(m); len(got) != 4 {
		t.Fatalf("constant data: %v", got)
	}
}
