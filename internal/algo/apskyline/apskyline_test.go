package apskyline

import (
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/stats"
	"skybench/internal/verify"
)

func TestMatchesOracle(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		for _, threads := range []int{1, 2, 3, 8} {
			for _, n := range []int{1, 2, 10, 500} {
				m := dataset.Generate(dist, n, 5, int64(n*13+threads))
				if !verify.SameSkyline(Skyline(m, threads), verify.BruteForce(m)) {
					t.Fatalf("%v t=%d n=%d: wrong skyline", dist, threads, n)
				}
			}
		}
	}
}

func TestEmpty(t *testing.T) {
	if got := Skyline(point.Matrix{}, 4); got != nil {
		t.Fatalf("empty: %v", got)
	}
}

func TestDuplicatesAcrossPartitions(t *testing.T) {
	rows := make([][]float64, 60)
	for i := range rows {
		rows[i] = []float64{float64(1 + i%5), float64(1 + (i*7)%5)}
	}
	rows[10] = []float64{0, 0}
	rows[50] = []float64{0, 0}
	m := point.FromRows(rows)
	if !verify.SameSkyline(Skyline(m, 4), verify.BruteForce(m)) {
		t.Fatal("coincident minima across angular partitions mishandled")
	}
}

func TestZeroVectorAngles(t *testing.T) {
	// The origin and on-axis points exercise Atan2's edge cases.
	m := point.FromRows([][]float64{
		{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1},
	})
	if !verify.SameSkyline(Skyline(m, 2), verify.BruteForce(m)) {
		t.Fatal("axis-aligned points mishandled")
	}
}

// The angle partitioning should make local skylines smaller than
// PSkyline's linear cut on anticorrelated data — the merge workload
// (and hence total DTs) should not explode.
func TestAngularPartitioningEffectiveness(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 2000, 4, 9)
	c := stats.NewDTCounters(4)
	_, dts := SkylineDT(m, 4)
	_ = c
	n := uint64(m.N())
	if dts > n*n {
		t.Errorf("APSkyline did %d DTs (> n² = %d)", dts, n*n)
	}
}

func TestThreadInvariance(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 900, 6, 4)
	want := Skyline(m, 1)
	for _, threads := range []int{2, 7} {
		if !verify.SameSkyline(Skyline(m, threads), want) {
			t.Fatalf("t=%d disagrees with t=1", threads)
		}
	}
}
