// Package apskyline implements APSkyline (Liknes et al., DASFAA 2014),
// the third multicore algorithm in the paper's related work
// (Section III). APSkyline keeps PSkyline's divide–compute–merge
// pattern but partitions the data by *angle* instead of by position in
// the input file: points are mapped to hyperspherical coordinates and
// split into equi-depth angular ranges. Angular partitions cut across
// the skyline, so each partition's local skyline is small and the merge
// is cheaper than PSkyline's — but, as the paper notes, the approach
// does not scale with dimensionality (the angle transform degrades as d
// grows; the original evaluation stops at d = 5).
//
// Partitioning here uses the first hyperspherical angle with equi-depth
// boundaries, the one-dimensional variant of the original's equi-depth
// scheme.
package apskyline

import (
	"math"
	"sort"

	"skybench/internal/par"
	"skybench/internal/point"
	"skybench/internal/stats"
)

// Skyline computes SKY(m) with threads workers and returns original row
// indices.
func Skyline(m point.Matrix, threads int) []int {
	idx, _ := SkylineDT(m, threads)
	return idx
}

// SkylineDT is Skyline with a dominance-test count.
func SkylineDT(m point.Matrix, threads int) ([]int, uint64) {
	n := m.N()
	if n == 0 {
		return nil, 0
	}
	if threads <= 0 {
		threads = par.DefaultThreads()
	}
	if threads > n {
		threads = n
	}
	dts := stats.NewDTCounters(threads)

	// First hyperspherical angle of every point: the angle between the
	// first coordinate axis and the remaining-coordinate norm. Points
	// with angle 0 hug the first axis; π/2 the complementary subspace.
	angles := make([]float64, n)
	par.ForRanges(threads, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			rest := 0.0
			for _, v := range row[1:] {
				rest += v * v
			}
			angles[i] = math.Atan2(math.Sqrt(rest), row[0])
		}
	})

	// Equi-depth angular partitioning: sort by angle, cut into t equal
	// slices. (The original splits multiple angles recursively; one
	// equi-depth angle is its d→2 projection and keeps the property
	// that partitions intersect the skyline rather than contain it.)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return angles[order[a]] < angles[order[b]] })

	// Local skylines per angular slice, in parallel.
	locals := make([][]int, threads)
	par.ForRanges(threads, n, func(tid, lo, hi int) {
		var local uint64
		locals[tid] = windowScan(m, order[lo:hi], &local)
		dts.Inc(tid, local)
	})

	// Merge with the same parallel fold PSkyline uses.
	global := locals[0]
	for k := 1; k < threads; k++ {
		if len(locals[k]) > 0 {
			global = pmerge(m, global, locals[k], threads, dts)
		}
	}
	return global, dts.Sum()
}

// windowScan computes the skyline of the given rows with a BNL window.
func windowScan(m point.Matrix, pts []int, dts *uint64) []int {
	window := make([]int, 0, 64)
	for _, i := range pts {
		p := m.Row(i)
		dominated := false
		w := 0
		for k, j := range window {
			*dts++
			rel := point.Compare(m.Row(j), p)
			if rel == point.LeftDominates {
				w += copy(window[w:], window[k:])
				dominated = true
				break
			}
			if rel == point.RightDominates {
				continue
			}
			window[w] = j
			w++
		}
		window = window[:w]
		if !dominated {
			window = append(window, i)
		}
	}
	return window
}

// pmerge merges two internally dominance-free sets: each side keeps the
// points not dominated by the other side.
func pmerge(m point.Matrix, a, b []int, threads int, dts *stats.DTCounters) []int {
	keepA := make([]bool, len(a))
	keepB := make([]bool, len(b))
	d := m.D()
	total := len(a) + len(b)
	par.ForRanges(threads, total, func(tid, lo, hi int) {
		var local uint64
		for k := lo; k < hi; k++ {
			if k < len(a) {
				p := m.Row(a[k])
				keepA[k] = true
				for _, j := range b {
					local++
					if point.DominatesD(m.Row(j), p, d) {
						keepA[k] = false
						break
					}
				}
			} else {
				p := m.Row(b[k-len(a)])
				keepB[k-len(a)] = true
				for _, j := range a {
					local++
					if point.DominatesD(m.Row(j), p, d) {
						keepB[k-len(a)] = false
						break
					}
				}
			}
		}
		dts.Inc(tid, local)
	})
	out := make([]int, 0, len(a)+len(b))
	for k, keep := range keepA {
		if keep {
			out = append(out, a[k])
		}
	}
	for k, keep := range keepB {
		if keep {
			out = append(out, b[k])
		}
	}
	return out
}
