// Package bskytree implements BSkyTree (Lee & Hwang, Inf. Syst. 2014),
// the state-of-the-art sequential skyline algorithm the paper compares
// against, and PBSkyTree, the paper's own parallelization of it
// (Appendix A).
//
// BSkyTree recursively partitions the data around a balanced pivot into
// 2^d regions identified by bitmasks and stores confirmed skyline points
// in a SkyTree. A new point is tested only against tree regions whose
// mask is a subset of its own (partial dominance), skipping whole regions
// of incomparable points.
//
// PBSkyTree keeps the depth-first recursion for its pruning power but (1)
// halts recursion below RecursionFloor points, and (2) accumulates the
// current leaf group together with its right siblings into work batches
// of up to BatchFactor·threads points whose Phase-I-style filtering
// against the SkyTree runs in parallel.
package bskytree

import (
	"sort"

	"skybench/internal/par"
	"skybench/internal/point"
	"skybench/internal/stats"
)

// RecursionFloor is the partition size below which PBSkyTree stops
// recursing (Appendix A: "we halt the recursion when there are fewer
// than 64 points on which to recurse").
const RecursionFloor = 64

// BatchFactor scales the parallel work-batch size: batches hold up to
// BatchFactor · threads points (Appendix A: 16 · num_threads).
const BatchFactor = 16

// node is one SkyTree node: a confirmed skyline point (the subtree's
// pivot) plus children keyed by their partition mask relative to it.
type node struct {
	pivot    int        // row index of the pivot (a skyline point)
	mask     point.Mask // mask of this subtree relative to the parent pivot
	dups     []int      // rows coincident with the pivot (also skyline)
	children []*node    // ordered by ascending (level, mask) compound key
}

// computer carries the immutable inputs and counters through recursion.
type computer struct {
	m        point.Matrix
	d        int
	full     point.Mask
	threads  int // 1 = sequential BSkyTree
	floor    int
	batchCap int
	dts      *stats.DTCounters
}

// Skyline computes SKY(m) with sequential BSkyTree and returns original
// row indices.
func Skyline(m point.Matrix) []int {
	idx, _ := SkylineDT(m, nil)
	return idx
}

// SkylineDT is Skyline with optional dominance-test counting.
func SkylineDT(m point.Matrix, dts *stats.DTCounters) ([]int, uint64) {
	return run(m, 1, dts)
}

// ParallelSkyline computes SKY(m) with PBSkyTree on the given thread
// count (Appendix A).
func ParallelSkyline(m point.Matrix, threads int) []int {
	idx, _ := ParallelSkylineDT(m, threads, nil)
	return idx
}

// ParallelSkylineDT is ParallelSkyline with optional DT counting.
func ParallelSkylineDT(m point.Matrix, threads int, dts *stats.DTCounters) ([]int, uint64) {
	if threads <= 0 {
		threads = par.DefaultThreads()
	}
	return run(m, threads, dts)
}

func run(m point.Matrix, threads int, dts *stats.DTCounters) ([]int, uint64) {
	n := m.N()
	if n == 0 {
		return nil, 0
	}
	if dts == nil {
		dts = stats.NewDTCounters(threads)
	}
	c := &computer{
		m:        m,
		d:        m.D(),
		full:     point.FullMask(m.D()),
		threads:  threads,
		floor:    RecursionFloor,
		batchCap: BatchFactor * threads,
	}
	c.dts = dts
	pts := make([]int, n)
	for i := range pts {
		pts[i] = i
	}
	root := c.build(pts)
	var out []int
	collect(root, &out)
	return out, dts.Sum()
}

// collect gathers all skyline indices stored in the tree.
func collect(nd *node, out *[]int) {
	if nd == nil {
		return
	}
	*out = append(*out, nd.pivot)
	*out = append(*out, nd.dups...)
	for _, c := range nd.children {
		collect(c, out)
	}
}

// build computes the skyline of pts and returns it as a SkyTree. The
// caller guarantees that no point outside pts dominates a point in pts.
func (c *computer) build(pts []int) *node {
	switch {
	case len(pts) == 0:
		return nil
	case len(pts) == 1:
		return &node{pivot: pts[0]}
	case c.threads > 1 && len(pts) < c.floor,
		c.threads == 1 && len(pts) <= 2:
		return c.buildSmall(pts)
	}

	v := c.selectBalancedPivot(pts)
	nd := &node{pivot: v}
	pv := c.m.Row(v)

	// Partition around the pivot, pruning points it dominates. Mask
	// computation is "parallelized as in Hybrid" (Appendix A) when the
	// input is large enough to amortize goroutines.
	masks := make([]point.Mask, len(pts))
	computeOne := func(k int) {
		masks[k] = point.ComputeMask(c.m.Row(pts[k]), pv)
	}
	if c.threads > 1 && len(pts) >= 4096 {
		par.For(c.threads, len(pts), computeOne)
	} else {
		for k := range pts {
			computeOne(k)
		}
	}
	groups := make(map[point.Mask][]int)
	for k, p := range pts {
		if p == v {
			continue
		}
		msk := masks[k]
		if msk == c.full {
			// The pivot weakly dominates p; only coincident points
			// survive (they are skyline because the pivot is).
			if point.Equals(c.m.Row(p), pv) {
				nd.dups = append(nd.dups, p)
			}
			continue
		}
		groups[msk] = append(groups[msk], p)
	}

	// Process partitions in ascending (level, mask) order so that any
	// partition that can dominate another is fully processed first.
	order := make([]point.Mask, 0, len(groups))
	for msk := range groups {
		order = append(order, msk)
	}
	sort.Slice(order, func(a, b int) bool {
		return order[a].CompoundKey(c.d) < order[b].CompoundKey(c.d)
	})

	if c.threads > 1 {
		c.processGroupsBatched(nd, order, groups)
	} else {
		for _, msk := range order {
			surv := c.filterSequential(nd, groups[msk])
			c.attach(nd, msk, surv)
		}
	}
	return nd
}

// attach recurses on a filtered group and links the resulting subtree.
func (c *computer) attach(nd *node, msk point.Mask, surv []int) {
	sub := c.build(surv)
	if sub == nil {
		return
	}
	sub.mask = msk
	nd.children = append(nd.children, sub)
}

// processGroupsBatched implements Appendix A's work batching: consecutive
// sibling groups are accumulated until the batch reaches batchCap points,
// then the whole batch is filtered against the current tree in parallel,
// and each group's survivors are recursed on in order.
func (c *computer) processGroupsBatched(nd *node, order []point.Mask, groups map[point.Mask][]int) {
	for gi := 0; gi < len(order); {
		batchEnd := gi
		batchPoints := 0
		for batchEnd < len(order) && (batchPoints == 0 || batchPoints+len(groups[order[batchEnd]]) <= c.batchCap) {
			batchPoints += len(groups[order[batchEnd]])
			batchEnd++
		}
		// Filter every point of the batch against the tree as built so
		// far, in parallel. Points in later groups of the batch may miss
		// dominators from earlier groups of the same batch — exactly the
		// bounded extra work Appendix A accepts (≤ batch size points
		// processed "too early") — so a cross-group cleanup pass inside
		// the batch restores exactness before recursion.
		type job struct {
			pt    int
			group int
		}
		var jobs []job
		for g := gi; g < batchEnd; g++ {
			for _, p := range groups[order[g]] {
				jobs = append(jobs, job{p, g})
			}
		}
		keep := make([]bool, len(jobs))
		par.ForRanges(c.threads, len(jobs), func(tid, lo, hi int) {
			var local uint64
			for k := lo; k < hi; k++ {
				keep[k] = !c.dominatedByTree(nd, jobs[k].pt, &local)
			}
			c.dts.Inc(tid, local)
		})
		// Cleanup: test batch survivors against survivors from earlier
		// groups within the same batch (cross-group dominance the
		// parallel pass could not see). Masks decide comparability.
		surv := make([][]int, batchEnd-gi)
		for k, j := range jobs {
			if !keep[k] {
				continue
			}
			p := c.m.Row(j.pt)
			dominated := false
			var local uint64
		cleanup:
			for g := gi; g < j.group; g++ {
				if !order[g].Subset(order[j.group]) {
					continue
				}
				for _, q := range surv[g-gi] {
					local++
					if point.DominatesD(c.m.Row(q), p, c.d) {
						dominated = true
						break cleanup
					}
				}
			}
			c.dts.Inc(0, local)
			if !dominated {
				surv[j.group-gi] = append(surv[j.group-gi], j.pt)
			}
		}
		for g := gi; g < batchEnd; g++ {
			c.attach(nd, order[g], surv[g-gi])
		}
		gi = batchEnd
	}
}

// filterSequential removes group points dominated by the tree built so
// far (sequential BSkyTree's Phase-I analogue).
func (c *computer) filterSequential(nd *node, group []int) []int {
	surv := group[:0]
	var local uint64
	for _, p := range group {
		if !c.dominatedByTree(nd, p, &local) {
			surv = append(surv, p)
		}
	}
	c.dts.Inc(0, local)
	return surv
}

// dominatedByTree reports whether any confirmed skyline point in the tree
// dominates row q, descending only into regions whose mask is a subset of
// q's mask relative to each node's pivot (partial dominance).
func (c *computer) dominatedByTree(nd *node, q int, dts *uint64) bool {
	qr := c.m.Row(q)
	mq := point.ComputeMask(qr, c.m.Row(nd.pivot))
	if mq == c.full {
		*dts++
		if !point.Equals(qr, c.m.Row(nd.pivot)) {
			return true
		}
	}
	for _, ch := range nd.children {
		if !ch.mask.Subset(mq) {
			continue
		}
		if c.dominatedByTree(ch, q, dts) {
			return true
		}
	}
	return false
}

// buildSmall computes the skyline of a small group with an SFS-style
// scan and returns it as a flat one-level tree rooted at the minimum-L1
// survivor.
func (c *computer) buildSmall(pts []int) *node {
	l1 := make([]float64, len(pts))
	for k, p := range pts {
		l1[k] = point.L1(c.m.Row(p))
	}
	ord := make([]int, len(pts))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return l1[ord[a]] < l1[ord[b]] })

	var local uint64
	sky := make([]int, 0, len(pts))
	for _, k := range ord {
		p := c.m.Row(pts[k])
		dominated := false
		for _, j := range sky {
			local++
			if point.DominatesD(c.m.Row(j), p, c.d) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, pts[k])
		}
	}
	c.dts.Inc(0, local)

	root := &node{pivot: sky[0]}
	pv := c.m.Row(sky[0])
	for _, p := range sky[1:] {
		msk := point.ComputeMask(c.m.Row(p), pv)
		if msk == c.full { // coincident with the root pivot
			root.dups = append(root.dups, p)
			continue
		}
		root.children = append(root.children, &node{pivot: p, mask: msk})
	}
	return root
}

// selectBalancedPivot returns the index (within pts) of the skyline point
// minimizing the range of min-max normalized coordinates — BSkyTree's
// balanced pivot criterion.
func (c *computer) selectBalancedPivot(pts []int) int {
	d := c.d
	lo := make([]float64, d)
	hi := make([]float64, d)
	copy(lo, c.m.Row(pts[0]))
	copy(hi, c.m.Row(pts[0]))
	for _, p := range pts[1:] {
		for j, x := range c.m.Row(p) {
			if x < lo[j] {
				lo[j] = x
			}
			if x > hi[j] {
				hi[j] = x
			}
		}
	}
	span := make([]float64, d)
	for j := range span {
		span[j] = hi[j] - lo[j]
		if span[j] == 0 {
			span[j] = 1
		}
	}
	rangeOf := func(p int) float64 {
		mn, mx := 2.0, -1.0
		for j, x := range c.m.Row(p) {
			nv := (x - lo[j]) / span[j]
			if nv < mn {
				mn = nv
			}
			if nv > mx {
				mx = nv
			}
		}
		return mx - mn
	}
	var local uint64
	cand := pts[0]
	candRange := rangeOf(cand)
	for _, p := range pts[1:] {
		local += 2
		switch {
		case point.DominatesD(c.m.Row(p), c.m.Row(cand), d):
			cand, candRange = p, rangeOf(p)
		case point.DominatesD(c.m.Row(cand), c.m.Row(p), d):
		default:
			if r := rangeOf(p); r < candRange {
				cand, candRange = p, r
			}
		}
	}
	// Refine until no point dominates the candidate (guarantees a true
	// skyline point, so coincident full-mask points can be kept safely).
	for changed := true; changed; {
		changed = false
		for _, p := range pts {
			local++
			if point.DominatesD(c.m.Row(p), c.m.Row(cand), d) {
				cand = p
				changed = true
			}
		}
	}
	c.dts.Inc(0, local)
	return cand
}
