package bskytree

import (
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/stats"
	"skybench/internal/verify"
)

func TestSequentialMatchesOracle(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		for _, n := range []int{1, 2, 63, 64, 65, 500} {
			for _, d := range []int{1, 2, 4, 8} {
				m := dataset.Generate(dist, n, d, int64(n*31+d))
				if !verify.SameSkyline(Skyline(m), verify.BruteForce(m)) {
					t.Fatalf("%v n=%d d=%d: wrong skyline", dist, n, d)
				}
			}
		}
	}
}

func TestParallelMatchesOracle(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		for _, threads := range []int{1, 2, 4} {
			m := dataset.Generate(dist, 700, 5, 77)
			if !verify.SameSkyline(ParallelSkyline(m, threads), verify.BruteForce(m)) {
				t.Fatalf("%v t=%d: wrong skyline", dist, threads)
			}
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		m := dataset.Generate(dataset.Anticorrelated, 900, 6, seed)
		seq := Skyline(m)
		parl := ParallelSkyline(m, 3)
		if !verify.SameSkyline(seq, parl) {
			t.Fatalf("seed %d: parallel and sequential disagree", seed)
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if got := Skyline(point.Matrix{}); got != nil {
		t.Fatalf("empty: %v", got)
	}
	if got := Skyline(point.FromRows([][]float64{{1, 2}})); len(got) != 1 {
		t.Fatalf("single: %v", got)
	}
}

func TestDuplicatePivots(t *testing.T) {
	// Many copies of the same minimal point: all must be in the skyline
	// even though they are coincident with the pivot (full mask).
	rows := [][]float64{{5, 5}, {9, 9}}
	for i := 0; i < 10; i++ {
		rows = append(rows, []float64{1, 1})
	}
	m := point.FromRows(rows)
	got := Skyline(m)
	if len(got) != 11 { // ten coincident minima + {5,5}? {5,5} dominated by {1,1}
		// {5,5} and {9,9} are dominated; only 10 minima survive.
		if len(got) != 10 {
			t.Fatalf("duplicates around pivot: got %d points %v", len(got), got)
		}
	}
	if !verify.SameSkyline(got, verify.BruteForce(m)) {
		t.Fatalf("wrong skyline with coincident pivot copies: %v", got)
	}
}

func TestQuantizedHeavyDuplicates(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 800, 5, 21)
	dataset.Quantize(m, 4)
	if !verify.SameSkyline(Skyline(m), verify.BruteForce(m)) {
		t.Fatal("wrong skyline on heavily quantized data")
	}
	if !verify.SameSkyline(ParallelSkyline(m, 4), verify.BruteForce(m)) {
		t.Fatal("parallel wrong on heavily quantized data")
	}
}

func TestDTCounting(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 400, 4, 2)
	c := stats.NewDTCounters(2)
	_, dts := ParallelSkylineDT(m, 2, c)
	if dts == 0 || c.Sum() != dts {
		t.Errorf("DT accounting: returned %d, counter %d", dts, c.Sum())
	}
}

// BSkyTree's whole point: it should need far fewer DTs than quadratic on
// anticorrelated data where region-wise incomparability abounds.
func TestRegionSkippingReducesDTs(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 2000, 8, 5)
	_, dts := SkylineDT(m, nil)
	n := uint64(m.N())
	if dts > n*n/4 {
		t.Errorf("BSkyTree did %d DTs; expected ≪ n²=%d from region skipping", dts, n*n)
	}
}
