// Package psfs implements PSFS (Im & Park, Inf. Syst. 2011), the
// parallel Sort-Filter-Skyline variant the paper describes as "a weaker
// version of our Q-Flow ... introduced as a naive baseline"
// (Section III).
//
// Like Q-Flow, PSFS sorts by a monotone score and maintains a global
// skyline; unlike Q-Flow it processes only one tiny batch of t points at
// a time (one per thread) with a sequential resolution step after each
// batch, so synchronization costs are paid every t points instead of
// every α, and there is no compression machinery. It exists in this
// suite to show why the α-block design matters.
package psfs

import (
	"sort"

	"skybench/internal/par"
	"skybench/internal/point"
)

// Skyline computes SKY(m) with threads workers and returns original row
// indices in L1-confirmation order.
func Skyline(m point.Matrix, threads int) []int {
	idx, _ := SkylineDT(m, threads)
	return idx
}

// SkylineDT is Skyline with a dominance-test count.
func SkylineDT(m point.Matrix, threads int) ([]int, uint64) {
	n := m.N()
	if n == 0 {
		return nil, 0
	}
	if threads <= 0 {
		threads = par.DefaultThreads()
	}
	d := m.D()
	flat := m.Flat()
	l1 := make([]float64, n)
	m.L1All(l1)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return l1[order[a]] < l1[order[b]] })

	var dts uint64
	dominated := make([]bool, threads)
	localDTs := make([]uint64, threads)
	sky := make([]int, 0, 64)

	for lo := 0; lo < n; lo += threads {
		hi := lo + threads
		if hi > n {
			hi = n
		}
		batch := order[lo:hi]
		// Parallel: each batch point against the confirmed skyline.
		par.Run(len(batch), func(tid int) {
			i := batch[tid]
			dominated[tid] = false
			var local uint64
			for _, j := range sky {
				if l1[j] == l1[i] {
					continue
				}
				local++
				if point.DominatesFlat(flat, j*d, i*d, d) {
					dominated[tid] = true
					break
				}
			}
			localDTs[tid] = local
		})
		// Sequential: resolve in-batch dominance and append survivors.
		for k, i := range batch {
			dts += localDTs[k]
			if dominated[k] {
				continue
			}
			skip := false
			for _, j := range batch[:k] {
				if l1[j] == l1[i] {
					continue
				}
				dts++
				if point.DominatesFlat(flat, j*d, i*d, d) {
					skip = true
					break
				}
			}
			if !skip {
				sky = append(sky, i)
			}
		}
	}
	return sky, dts
}
