package psfs

import (
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/verify"
)

func TestMatchesOracle(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		for _, threads := range []int{1, 2, 3, 8} {
			for _, n := range []int{1, 2, 7, 8, 9, 500} {
				m := dataset.Generate(dist, n, 5, int64(n*7+threads))
				if !verify.SameSkyline(Skyline(m, threads), verify.BruteForce(m)) {
					t.Fatalf("%v t=%d n=%d: wrong skyline", dist, threads, n)
				}
			}
		}
	}
}

func TestEmpty(t *testing.T) {
	if got := Skyline(point.Matrix{}, 4); got != nil {
		t.Fatalf("empty: %v", got)
	}
}

func TestDuplicates(t *testing.T) {
	m := point.FromRows([][]float64{{1, 1}, {1, 1}, {0, 3}, {2, 2}})
	if !verify.SameSkyline(Skyline(m, 2), []int{0, 1, 2}) {
		t.Fatalf("duplicates: %v", Skyline(m, 2))
	}
}

func TestThreadInvariance(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 700, 5, 3)
	want := Skyline(m, 1)
	for _, threads := range []int{2, 5, 16} {
		if !verify.SameSkyline(Skyline(m, threads), want) {
			t.Fatalf("t=%d disagrees", threads)
		}
	}
}

func TestDTCounting(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 300, 4, 1)
	_, dts := SkylineDT(m, 2)
	if dts == 0 {
		t.Error("expected DTs > 0")
	}
}
