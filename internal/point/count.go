package point

import "sync/atomic"

// Counting dominance kernels: the k-skyband companions of the boolean
// run kernels in flat.go. Where DominatedInFlatRun answers "is the probe
// dominated at all" and aborts on the first dominator, these kernels
// answer "by how many rows is the probe dominated, up to a budget":
// CountDominatorsInFlatRun accumulates the probe's dominator count and
// stops as soon as the count reaches the caller's budget, because a
// k-skyband algorithm only ever needs to know whether a point has
// reached k dominators, never the exact excess. With budget 1 the
// kernels degenerate to the boolean ones; the hot paths keep calling
// the unrolled k=1 kernels directly so the skyline path is untouched.

// CountDominatorsInFlatRun counts the rows j ∈ [lo, hi) of the
// row-major flat matrix rows (d columns per row) that strictly dominate
// the probe q (length d), stopping early once the count reaches budget
// (which must be ≥ 1); the return value is min(true count, budget).
// The optional per-row filters match DominatedInFlatRun exactly: when
// l1 is non-nil, rows with l1[j] == qL1 are skipped (equal L1 norms
// preclude dominance, footnote 2 of the paper); when skip is non-nil,
// rows with a nonzero skip[j] are passed over, read with atomic loads so
// concurrent phase workers may set flags mid-scan. *dts is advanced by
// the number of dominance tests actually performed.
func CountDominatorsInFlatRun(rows []float64, d, lo, hi int, q []float64, qL1 float64, l1 []float64, skip []uint32, budget int, dts *uint64) int {
	switch d {
	case 4:
		return cntRun4(rows, lo, hi, q, qL1, l1, skip, budget, dts)
	case 6:
		return cntRun6(rows, lo, hi, q, qL1, l1, skip, budget, dts)
	case 8:
		return cntRun8(rows, lo, hi, q, qL1, l1, skip, budget, dts)
	default:
		return cntRunGeneric(rows, d, lo, hi, q, qL1, l1, skip, budget, dts)
	}
}

func cntRunGeneric(rows []float64, d, lo, hi int, q []float64, qL1 float64, l1 []float64, skip []uint32, budget int, dts *uint64) int {
	n := *dts
	c := 0
	off := lo * d
	for j := lo; j < hi; j, off = j+1, off+d {
		if skip != nil && atomic.LoadUint32(&skip[j]) != 0 {
			continue
		}
		if l1 != nil && l1[j] == qL1 {
			continue
		}
		n++
		r := rows[off : off+d : off+d]
		strict := false
		dominates := true
		for k, v := range r {
			w := q[k]
			if v > w {
				dominates = false
				break
			}
			if v < w {
				strict = true
			}
		}
		if dominates && strict {
			c++
			if c >= budget {
				break
			}
		}
	}
	*dts = n
	return c
}

func cntRun4(rows []float64, lo, hi int, q []float64, qL1 float64, l1 []float64, skip []uint32, budget int, dts *uint64) int {
	q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
	n := *dts
	c := 0
	off := lo * 4
	for j := lo; j < hi; j, off = j+1, off+4 {
		if skip != nil && atomic.LoadUint32(&skip[j]) != 0 {
			continue
		}
		if l1 != nil && l1[j] == qL1 {
			continue
		}
		n++
		r := rows[off : off+4 : off+4]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 {
			c++
			if c >= budget {
				break
			}
		}
	}
	*dts = n
	return c
}

func cntRun6(rows []float64, lo, hi int, q []float64, qL1 float64, l1 []float64, skip []uint32, budget int, dts *uint64) int {
	q0, q1, q2, q3, q4, q5 := q[0], q[1], q[2], q[3], q[4], q[5]
	n := *dts
	c := 0
	off := lo * 6
	for j := lo; j < hi; j, off = j+1, off+6 {
		if skip != nil && atomic.LoadUint32(&skip[j]) != 0 {
			continue
		}
		if l1 != nil && l1[j] == qL1 {
			continue
		}
		n++
		r := rows[off : off+6 : off+6]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 || r[4] > q4 || r[5] > q5 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 || r[4] < q4 || r[5] < q5 {
			c++
			if c >= budget {
				break
			}
		}
	}
	*dts = n
	return c
}

func cntRun8(rows []float64, lo, hi int, q []float64, qL1 float64, l1 []float64, skip []uint32, budget int, dts *uint64) int {
	q0, q1, q2, q3, q4, q5, q6, q7 := q[0], q[1], q[2], q[3], q[4], q[5], q[6], q[7]
	n := *dts
	c := 0
	off := lo * 8
	for j := lo; j < hi; j, off = j+1, off+8 {
		if skip != nil && atomic.LoadUint32(&skip[j]) != 0 {
			continue
		}
		if l1 != nil && l1[j] == qL1 {
			continue
		}
		n++
		r := rows[off : off+8 : off+8]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 ||
			r[4] > q4 || r[5] > q5 || r[6] > q6 || r[7] > q7 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 ||
			r[4] < q4 || r[5] < q5 || r[6] < q6 || r[7] < q7 {
			c++
			if c >= budget {
				break
			}
		}
	}
	*dts = n
	return c
}

// CountDominatorsInFlatRunMasked is CountDominatorsInFlatRun with the
// partition-mask filter of DominatedInFlatRunMasked fused in: row j is
// dominance-tested only when masks[j] ⊆ qm. It is the kernel behind the
// skyband variant of the M(S) partition scans.
func CountDominatorsInFlatRunMasked(rows []float64, d, lo, hi int, q []float64, masks []Mask, qm Mask, budget int, dts *uint64) int {
	n := *dts
	c := 0
	off := lo * d
	for j := lo; j < hi; j, off = j+1, off+d {
		if masks[j]&qm != masks[j] {
			continue
		}
		n++
		r := rows[off : off+d : off+d]
		strict := false
		dominates := true
		for k, v := range r {
			w := q[k]
			if v > w {
				dominates = false
				break
			}
			if v < w {
				strict = true
			}
		}
		if dominates && strict {
			c++
			if c >= budget {
				break
			}
		}
	}
	*dts = n
	return c
}

// AppendDominatorsInFlatRun appends to dst the indices j ∈ [lo, hi) of
// up to budget rows that strictly dominate the probe q, in scan order,
// and returns the extended slice. It is the collecting companion of
// FirstDominatorInFlatRun for incremental k-skyband maintenance, where
// a dominated point must be filed under every dominator the structure
// tracks, not just the first. l1, when non-nil, holds the L1 norm of
// every row and prunes rows with l1[j] >= qL1 before the dominance test
// (a dominator's L1 norm is strictly smaller, footnote 2 of the paper).
// *dts is advanced by the number of dominance tests performed.
func AppendDominatorsInFlatRun(dst []int32, rows []float64, d, lo, hi int, q []float64, qL1 float64, l1 []float64, budget int, dts *uint64) []int32 {
	n := *dts
	need := budget - len(dst)
	off := lo * d
	for j := lo; j < hi && need > 0; j, off = j+1, off+d {
		if l1 != nil && l1[j] >= qL1 {
			continue
		}
		n++
		r := rows[off : off+d : off+d]
		strict := false
		dominates := true
		for k, v := range r {
			w := q[k]
			if v > w {
				dominates = false
				break
			}
			if v < w {
				strict = true
			}
		}
		if dominates && strict {
			dst = append(dst, int32(j))
			need--
		}
	}
	*dts = n
	return dst
}
