package point

import (
	"math/rand"
	"testing"
)

// randPair produces a (p, q) pair embedded at random row offsets of two
// flat matrices, exercising the interesting relations: random pairs,
// forced weak-dominance pairs, and coincident pairs.
func randPair(rng *rand.Rand, d int) (p, q []float64) {
	p = make([]float64, d)
	q = make([]float64, d)
	for i := range p {
		p[i] = float64(rng.Intn(5)) / 4 // coarse grid → frequent ties
		q[i] = float64(rng.Intn(5)) / 4
	}
	switch rng.Intn(4) {
	case 0: // force p ⪯ q
		for i := range p {
			if p[i] > q[i] {
				p[i] = q[i]
			}
		}
	case 1: // force coincidence
		copy(q, p)
	}
	return p, q
}

// flatten embeds row into a larger flat array at row index ri so offset
// arithmetic (not slice identity) is what's being tested.
func flatten(rng *rand.Rand, row []float64, ri, rows int) []float64 {
	d := len(row)
	vals := make([]float64, rows*d)
	for i := range vals {
		vals[i] = rng.Float64() * 10
	}
	copy(vals[ri*d:], row)
	return vals
}

func TestFlatKernelsMatchGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for d := 2; d <= 16; d++ {
		for trial := 0; trial < 500; trial++ {
			p, q := randPair(rng, d)
			pi, qi := rng.Intn(4), rng.Intn(4)
			pv := flatten(rng, p, pi, 4)
			qv := flatten(rng, q, qi, 4)

			if got, want := DominatesFlat2(pv, pi*d, qv, qi*d, d), Dominates(p, q); got != want {
				t.Fatalf("d=%d DominatesFlat2=%v want %v (p=%v q=%v)", d, got, want, p, q)
			}
			if got, want := WeakDominatesFlat2(pv, pi*d, qv, qi*d, d), WeakDominates(p, q); got != want {
				t.Fatalf("d=%d WeakDominatesFlat2=%v want %v", d, got, want)
			}
			if got, want := CompareFlat2(pv, pi*d, qv, qi*d, d), Compare(p, q); got != want {
				t.Fatalf("d=%d CompareFlat2=%v want %v", d, got, want)
			}
			if got, want := EqualsFlat2(pv, pi*d, qv, qi*d, d), Equals(p, q); got != want {
				t.Fatalf("d=%d EqualsFlat2=%v want %v", d, got, want)
			}

			// Same-array variants.
			both := make([]float64, 2*d)
			copy(both, p)
			copy(both[d:], q)
			if got, want := DominatesFlat(both, 0, d, d), Dominates(p, q); got != want {
				t.Fatalf("d=%d DominatesFlat=%v want %v", d, got, want)
			}
			if got, want := WeakDominatesFlat(both, 0, d, d), WeakDominates(p, q); got != want {
				t.Fatalf("d=%d WeakDominatesFlat=%v want %v", d, got, want)
			}
			if got, want := CompareFlat(both, 0, d, d), Compare(p, q); got != want {
				t.Fatalf("d=%d CompareFlat=%v want %v", d, got, want)
			}

			// Unrolled DominatesD must agree with the generic loop too.
			if got, want := DominatesD(p, q, d), Dominates(p, q); got != want {
				t.Fatalf("d=%d DominatesD=%v want %v", d, got, want)
			}

			piv := make([]float64, d)
			for i := range piv {
				piv[i] = float64(rng.Intn(5)) / 4
			}
			if got, want := ComputeMaskFlat(pv, pi*d, piv), ComputeMask(p, piv); got != want {
				t.Fatalf("d=%d ComputeMaskFlat=%v want %v", d, got, want)
			}
		}
	}
}

// TestDominatedInFlatRun cross-checks the run kernels (including the
// specialized dimensionalities) against a reference scan for every
// d ∈ [2,16], with and without the L1 and skip filters.
func TestDominatedInFlatRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for d := 2; d <= 16; d++ {
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(20)
			rows := make([]float64, n*d)
			l1 := make([]float64, n)
			skip := make([]uint32, n)
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < d; k++ {
					v := float64(rng.Intn(4)) / 4
					rows[j*d+k] = v
					s += v
				}
				l1[j] = s
				if rng.Intn(3) == 0 {
					skip[j] = 1
				}
			}
			q, _ := randPair(rng, d)
			if trial%5 == 0 { // sometimes copy a row so coincidence occurs
				copy(q, rows[rng.Intn(n)*d:][:d])
			}
			qL1 := L1(q)
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo+1)

			for variant := 0; variant < 4; variant++ {
				var useL1 []float64
				var useSkip []uint32
				if variant&1 != 0 {
					useL1 = l1
				}
				if variant&2 != 0 {
					useSkip = skip
				}
				want := false
				wantDTs := uint64(0)
				for j := lo; j < hi && !want; j++ {
					if useSkip != nil && useSkip[j] != 0 {
						continue
					}
					if useL1 != nil && useL1[j] == qL1 {
						continue
					}
					wantDTs++
					if Dominates(rows[j*d:(j+1)*d], q) {
						want = true
					}
				}
				var dts uint64
				got := DominatedInFlatRun(rows, d, lo, hi, q, qL1, useL1, useSkip, &dts)
				if got != want || dts != wantDTs {
					t.Fatalf("d=%d variant=%d run=[%d,%d): got (%v,%d) want (%v,%d)",
						d, variant, lo, hi, got, dts, want, wantDTs)
				}
			}
		}
	}
}

// TestFirstDominatorInFlatRun cross-checks the index-returning dominator
// scan (generic and specialized) against a per-row brute force, with and
// without the L1 pruning filter.
func TestFirstDominatorInFlatRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{2, 3, 4, 5, 6, 7, 8, 9, 12} {
		for trial := 0; trial < 300; trial++ {
			n := 1 + rng.Intn(24)
			rows := make([]float64, n*d)
			l1 := make([]float64, n)
			for j := 0; j < n; j++ {
				for k := 0; k < d; k++ {
					v := float64(rng.Intn(5)) / 4 // coarse grid → frequent ties
					rows[j*d+k] = v
					l1[j] += v
				}
			}
			q := make([]float64, d)
			qL1 := 0.0
			for k := range q {
				q[k] = float64(rng.Intn(5)) / 4
				qL1 += q[k]
			}

			want := -1
			for j := 0; j < n; j++ {
				if Dominates(rows[j*d:(j+1)*d], q) {
					want = j
					break
				}
			}
			var dts uint64
			if got := FirstDominatorInFlatRun(rows, d, 0, n, q, qL1, nil, &dts); got != want {
				t.Fatalf("d=%d no-filter: got %d want %d (q=%v)", d, got, want, q)
			}
			if got := FirstDominatorInFlatRun(rows, d, 0, n, q, qL1, l1, &dts); got != want {
				t.Fatalf("d=%d l1-filter: got %d want %d (q=%v rows=%v)", d, got, want, q, rows)
			}
			// Sub-range scan: restricting [lo, hi) must find the first
			// dominator inside the range only.
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo+1)
			want = -1
			for j := lo; j < hi; j++ {
				if Dominates(rows[j*d:(j+1)*d], q) {
					want = j
					break
				}
			}
			if got := FirstDominatorInFlatRun(rows, d, lo, hi, q, qL1, l1, &dts); got != want {
				t.Fatalf("d=%d range [%d,%d): got %d want %d", d, lo, hi, got, want)
			}
		}
	}
	if FirstDominatorInFlatRun(nil, 8, 0, 0, make([]float64, 8), 0, nil, new(uint64)) != -1 {
		t.Fatalf("empty run must report no dominator")
	}
}
