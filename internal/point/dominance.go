package point

// Relation classifies the dominance relationship between two points under
// minimization preference (Definition 1/2 of the paper).
type Relation uint8

const (
	// Incomparable: neither point weakly dominates the other.
	Incomparable Relation = iota
	// LeftDominates: p ≺ q.
	LeftDominates
	// RightDominates: q ≺ p.
	RightDominates
	// Equal: p ≡ q (coincident); neither dominates.
	Equal
)

// String implements fmt.Stringer for debugging output.
func (r Relation) String() string {
	switch r {
	case Incomparable:
		return "incomparable"
	case LeftDominates:
		return "left≺right"
	case RightDominates:
		return "right≺left"
	case Equal:
		return "equal"
	}
	return "invalid"
}

// Dominates reports p ≺ q: p is no worse on every dimension and strictly
// better on at least one (Definition 2). It aborts as soon as p exceeds q
// on any dimension, which is the dominant case on random inputs.
func Dominates(p, q []float64) bool {
	strict := false
	for i, v := range p {
		w := q[i]
		if v > w {
			return false
		}
		if v < w {
			strict = true
		}
	}
	return strict
}

// WeakDominates reports p ⪯ q: p is no worse than q on every dimension
// (Definition 1, "potential dominance").
func WeakDominates(p, q []float64) bool {
	for i, v := range p {
		if v > q[i] {
			return false
		}
	}
	return true
}

// Equals reports p ≡ q (coincident points).
func Equals(p, q []float64) bool {
	for i, v := range p {
		if v != q[i] {
			return false
		}
	}
	return true
}

// Compare performs one pass over both points and classifies the pair.
// It is used where both directions matter (e.g. BNL windows) so that a
// single scan replaces two Dominates calls.
func Compare(p, q []float64) Relation {
	pBetter, qBetter := false, false
	for i, v := range p {
		w := q[i]
		if v < w {
			pBetter = true
			if qBetter {
				return Incomparable
			}
		} else if v > w {
			qBetter = true
			if pBetter {
				return Incomparable
			}
		}
	}
	switch {
	case pBetter && !qBetter:
		return LeftDominates
	case qBetter && !pBetter:
		return RightDominates
	case !pBetter && !qBetter:
		return Equal
	}
	return Incomparable
}

// DominatesD is a dimension-specialized strict dominance kernel. The paper
// vectorizes dominance tests with AVX; in Go we obtain a comparable
// constant-factor win by specializing the loop for every dimensionality of
// the evaluation range (2 ≤ d ≤ 16) so the compiler can fully unroll it.
// Callers that know d at the call site should prefer this entry point.
func DominatesD(p, q []float64, d int) bool {
	switch d {
	case 2:
		return dom2(p, q)
	case 3:
		return dom3(p, q)
	case 4:
		return dom4(p, q)
	case 5:
		return dom5(p, q)
	case 6:
		return dom6(p, q)
	case 7:
		return dom7(p, q)
	case 8:
		return dom8(p, q)
	case 9:
		return dom9(p, q)
	case 10:
		return dom10(p, q)
	case 11:
		return dom11(p, q)
	case 12:
		return dom12(p, q)
	case 13:
		return dom13(p, q)
	case 14:
		return dom14(p, q)
	case 15:
		return dom15(p, q)
	case 16:
		return dom16(p, q)
	default:
		return Dominates(p, q)
	}
}

func dom2(p, q []float64) bool {
	_ = p[1]
	_ = q[1]
	if p[0] > q[0] || p[1] > q[1] {
		return false
	}
	return p[0] < q[0] || p[1] < q[1]
}

func dom3(p, q []float64) bool {
	_ = p[2]
	_ = q[2]
	if p[0] > q[0] || p[1] > q[1] || p[2] > q[2] {
		return false
	}
	return p[0] < q[0] || p[1] < q[1] || p[2] < q[2]
}

func dom4(p, q []float64) bool {
	_ = p[3]
	_ = q[3]
	if p[0] > q[0] || p[1] > q[1] || p[2] > q[2] || p[3] > q[3] {
		return false
	}
	return p[0] < q[0] || p[1] < q[1] || p[2] < q[2] || p[3] < q[3]
}

func dom5(p, q []float64) bool {
	_ = p[4]
	_ = q[4]
	if p[0] > q[0] || p[1] > q[1] || p[2] > q[2] || p[3] > q[3] || p[4] > q[4] {
		return false
	}
	return p[0] < q[0] || p[1] < q[1] || p[2] < q[2] || p[3] < q[3] || p[4] < q[4]
}

func dom6(p, q []float64) bool {
	_ = p[5]
	_ = q[5]
	if p[0] > q[0] || p[1] > q[1] || p[2] > q[2] || p[3] > q[3] || p[4] > q[4] || p[5] > q[5] {
		return false
	}
	return p[0] < q[0] || p[1] < q[1] || p[2] < q[2] || p[3] < q[3] || p[4] < q[4] || p[5] < q[5]
}

func dom7(p, q []float64) bool {
	_ = p[6]
	_ = q[6]
	if p[0] > q[0] || p[1] > q[1] || p[2] > q[2] || p[3] > q[3] ||
		p[4] > q[4] || p[5] > q[5] || p[6] > q[6] {
		return false
	}
	return p[0] < q[0] || p[1] < q[1] || p[2] < q[2] || p[3] < q[3] ||
		p[4] < q[4] || p[5] < q[5] || p[6] < q[6]
}

func dom8(p, q []float64) bool {
	_ = p[7]
	_ = q[7]
	if p[0] > q[0] || p[1] > q[1] || p[2] > q[2] || p[3] > q[3] ||
		p[4] > q[4] || p[5] > q[5] || p[6] > q[6] || p[7] > q[7] {
		return false
	}
	return p[0] < q[0] || p[1] < q[1] || p[2] < q[2] || p[3] < q[3] ||
		p[4] < q[4] || p[5] < q[5] || p[6] < q[6] || p[7] < q[7]
}

func dom9(p, q []float64) bool {
	_ = p[8]
	_ = q[8]
	if p[0] > q[0] || p[1] > q[1] || p[2] > q[2] || p[3] > q[3] ||
		p[4] > q[4] || p[5] > q[5] || p[6] > q[6] || p[7] > q[7] || p[8] > q[8] {
		return false
	}
	return p[0] < q[0] || p[1] < q[1] || p[2] < q[2] || p[3] < q[3] ||
		p[4] < q[4] || p[5] < q[5] || p[6] < q[6] || p[7] < q[7] || p[8] < q[8]
}

func dom10(p, q []float64) bool {
	_ = p[9]
	_ = q[9]
	if p[0] > q[0] || p[1] > q[1] || p[2] > q[2] || p[3] > q[3] || p[4] > q[4] ||
		p[5] > q[5] || p[6] > q[6] || p[7] > q[7] || p[8] > q[8] || p[9] > q[9] {
		return false
	}
	return p[0] < q[0] || p[1] < q[1] || p[2] < q[2] || p[3] < q[3] || p[4] < q[4] ||
		p[5] < q[5] || p[6] < q[6] || p[7] < q[7] || p[8] < q[8] || p[9] < q[9]
}

func dom11(p, q []float64) bool {
	_ = p[10]
	_ = q[10]
	if p[0] > q[0] || p[1] > q[1] || p[2] > q[2] || p[3] > q[3] || p[4] > q[4] ||
		p[5] > q[5] || p[6] > q[6] || p[7] > q[7] || p[8] > q[8] || p[9] > q[9] ||
		p[10] > q[10] {
		return false
	}
	return p[0] < q[0] || p[1] < q[1] || p[2] < q[2] || p[3] < q[3] || p[4] < q[4] ||
		p[5] < q[5] || p[6] < q[6] || p[7] < q[7] || p[8] < q[8] || p[9] < q[9] ||
		p[10] < q[10]
}

func dom12(p, q []float64) bool {
	_ = p[11]
	_ = q[11]
	if p[0] > q[0] || p[1] > q[1] || p[2] > q[2] || p[3] > q[3] || p[4] > q[4] ||
		p[5] > q[5] || p[6] > q[6] || p[7] > q[7] || p[8] > q[8] || p[9] > q[9] ||
		p[10] > q[10] || p[11] > q[11] {
		return false
	}
	return p[0] < q[0] || p[1] < q[1] || p[2] < q[2] || p[3] < q[3] || p[4] < q[4] ||
		p[5] < q[5] || p[6] < q[6] || p[7] < q[7] || p[8] < q[8] || p[9] < q[9] ||
		p[10] < q[10] || p[11] < q[11]
}

func dom13(p, q []float64) bool {
	_ = p[12]
	_ = q[12]
	if p[0] > q[0] || p[1] > q[1] || p[2] > q[2] || p[3] > q[3] || p[4] > q[4] ||
		p[5] > q[5] || p[6] > q[6] || p[7] > q[7] || p[8] > q[8] || p[9] > q[9] ||
		p[10] > q[10] || p[11] > q[11] || p[12] > q[12] {
		return false
	}
	return p[0] < q[0] || p[1] < q[1] || p[2] < q[2] || p[3] < q[3] || p[4] < q[4] ||
		p[5] < q[5] || p[6] < q[6] || p[7] < q[7] || p[8] < q[8] || p[9] < q[9] ||
		p[10] < q[10] || p[11] < q[11] || p[12] < q[12]
}

func dom14(p, q []float64) bool {
	_ = p[13]
	_ = q[13]
	if p[0] > q[0] || p[1] > q[1] || p[2] > q[2] || p[3] > q[3] || p[4] > q[4] ||
		p[5] > q[5] || p[6] > q[6] || p[7] > q[7] || p[8] > q[8] || p[9] > q[9] ||
		p[10] > q[10] || p[11] > q[11] || p[12] > q[12] || p[13] > q[13] {
		return false
	}
	return p[0] < q[0] || p[1] < q[1] || p[2] < q[2] || p[3] < q[3] || p[4] < q[4] ||
		p[5] < q[5] || p[6] < q[6] || p[7] < q[7] || p[8] < q[8] || p[9] < q[9] ||
		p[10] < q[10] || p[11] < q[11] || p[12] < q[12] || p[13] < q[13]
}

func dom15(p, q []float64) bool {
	_ = p[14]
	_ = q[14]
	if p[0] > q[0] || p[1] > q[1] || p[2] > q[2] || p[3] > q[3] || p[4] > q[4] ||
		p[5] > q[5] || p[6] > q[6] || p[7] > q[7] || p[8] > q[8] || p[9] > q[9] ||
		p[10] > q[10] || p[11] > q[11] || p[12] > q[12] || p[13] > q[13] || p[14] > q[14] {
		return false
	}
	return p[0] < q[0] || p[1] < q[1] || p[2] < q[2] || p[3] < q[3] || p[4] < q[4] ||
		p[5] < q[5] || p[6] < q[6] || p[7] < q[7] || p[8] < q[8] || p[9] < q[9] ||
		p[10] < q[10] || p[11] < q[11] || p[12] < q[12] || p[13] < q[13] || p[14] < q[14]
}

func dom16(p, q []float64) bool {
	_ = p[15]
	_ = q[15]
	if p[0] > q[0] || p[1] > q[1] || p[2] > q[2] || p[3] > q[3] || p[4] > q[4] ||
		p[5] > q[5] || p[6] > q[6] || p[7] > q[7] || p[8] > q[8] || p[9] > q[9] ||
		p[10] > q[10] || p[11] > q[11] || p[12] > q[12] || p[13] > q[13] ||
		p[14] > q[14] || p[15] > q[15] {
		return false
	}
	return p[0] < q[0] || p[1] < q[1] || p[2] < q[2] || p[3] < q[3] || p[4] < q[4] ||
		p[5] < q[5] || p[6] < q[6] || p[7] < q[7] || p[8] < q[8] || p[9] < q[9] ||
		p[10] < q[10] || p[11] < q[11] || p[12] < q[12] || p[13] < q[13] ||
		p[14] < q[14] || p[15] < q[15]
}
