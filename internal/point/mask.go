package point

import (
	"math"
	"math/bits"
)

// Mask is a 2^d-region partition mask relative to a pivot point
// (Section VI-A2). Bit i is set iff the point is ≥ the pivot on dimension
// i; a clear bit means the point is strictly better than the pivot there.
// Dimensionality is limited to 31 so masks (plus the level in the compound
// sort key) fit comfortably in 32 bits on all platforms.
type Mask uint32

// MaxDims is the largest dimensionality supported by mask-based
// partitioning. The paper evaluates up to d = 16.
const MaxDims = 31

// ComputeMask assigns p to a partition relative to pivot v:
// bit i = (p[i] < v[i] ? 0 : 1). The bit is derived branchlessly —
// partition bits are close to uniform on real data, so a per-dimension
// compare-and-branch mispredicts half the time. Each operand is
// normalized with +0.0 (sending -0 to +0), mapped through the
// order-preserving bit transform, and compared via the borrow flag of an
// unsigned subtract, which matches x ≥ v exactly for every non-NaN input
// including ±Inf.
func ComputeMask(p, v []float64) Mask {
	var m uint32
	for i, x := range p {
		_, borrow := bits.Sub64(OrderBits(x+0.0), OrderBits(v[i]+0.0), 0)
		m |= uint32(1-borrow) << uint(i)
	}
	return Mask(m)
}

// OrderBits maps a float64 to a uint64 whose unsigned order matches the
// float total order (negatives reversed, sign flipped), without branches.
// It is the standard radix-sortable transform; Q-Flow's L1 sort keys use
// it too. Callers that must treat -0 and +0 as equal (as ComputeMask
// does) should normalize with +0.0 first.
func OrderBits(f float64) uint64 {
	b := math.Float64bits(f)
	sign := uint64(int64(b) >> 63) // all ones iff f is negative
	return b ^ (sign | 1<<63)
}

// Level returns |m|, the number of set bits — the "level" of the partition
// in the paper's three-key sort.
func (m Mask) Level() int { return bits.OnesCount32(uint32(m)) }

// Subset reports m ⊆ m2, i.e. every bit set in m is also set in m2.
// A point with mask m can dominate a point with mask m2 only if m ⊆ m2
// (both cheap-filter properties of Section VI-A2 reduce to this test).
func (m Mask) Subset(m2 Mask) bool { return m&m2 == m }

// FullMask returns the all-ones mask for dimensionality d (the partition
// of points weakly dominated by the pivot).
func FullMask(d int) Mask { return Mask(1<<uint(d)) - 1 }

// CompoundKey packs (level, mask) into one integer so the three-key sort
// of Section VI-A3 can compare level-then-mask with a single value:
// K = (|m| << d) | m. It needs d + ⌈lg d⌉ bits, well within 64.
func (m Mask) CompoundKey(d int) uint64 {
	return uint64(m.Level())<<uint(d) | uint64(m)
}

// MaskFromKey recovers the mask from a compound key: m = K & (2^d − 1).
func MaskFromKey(k uint64, d int) Mask { return Mask(k) & FullMask(d) }

// LevelFromKey recovers the level from a compound key: |m| = K >> d.
func LevelFromKey(k uint64, d int) int { return int(k >> uint(d)) }
