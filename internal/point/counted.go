package point

// DominatesFlatCounted reports whether the d-dimensional row at pOff
// strictly dominates the row at qOff, advancing *dts by one. It gives
// the pairwise boolean test the same counting convention as the run
// kernels (DominatedInFlatRun, CountDominatorsInFlatRun, ...), so call
// sites thread a counter through the kernel instead of booking
// dominance tests by hand next to it.
func DominatesFlatCounted(vals []float64, pOff, qOff, d int, dts *uint64) bool {
	*dts++
	return DominatesFlat(vals, pOff, qOff, d)
}
