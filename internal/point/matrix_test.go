package point

import (
	"math"
	"testing"
)

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.N() != 3 || m.D() != 4 {
		t.Fatalf("shape = %d×%d, want 3×4", m.N(), m.D())
	}
	if len(m.Flat()) != 12 {
		t.Fatalf("flat len = %d, want 12", len(m.Flat()))
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative shape")
		}
	}()
	NewMatrix(-1, 2)
}

func TestFromRowsRoundTrip(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	m := FromRows(rows)
	for i, r := range rows {
		for j, v := range r {
			if m.Row(i)[j] != v {
				t.Fatalf("m[%d][%d] = %v, want %v", i, j, m.Row(i)[j], v)
			}
		}
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.N() != 0 {
		t.Fatalf("empty FromRows N = %d", m.N())
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromFlat(t *testing.T) {
	m := FromFlat([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if m.Row(1)[2] != 6 {
		t.Fatalf("Row(1)[2] = %v, want 6", m.Row(1)[2])
	}
}

func TestFromFlatWrongLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong flat length")
		}
	}()
	FromFlat([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Row(0)[0] = 99
	if m.Row(0)[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestGather(t *testing.T) {
	m := FromRows([][]float64{{0, 0}, {1, 1}, {2, 2}})
	g := m.Gather([]int{2, 0})
	if g.N() != 2 || g.Row(0)[0] != 2 || g.Row(1)[0] != 0 {
		t.Fatalf("Gather wrong: %v", g.Rows())
	}
}

func TestNorms(t *testing.T) {
	p := []float64{3, 1, 2}
	if got := L1(p); got != 6 {
		t.Errorf("L1 = %v, want 6", got)
	}
	if got := MinCoord(p); got != 1 {
		t.Errorf("MinCoord = %v, want 1", got)
	}
	if got := MaxCoord(p); got != 3 {
		t.Errorf("MaxCoord = %v, want 3", got)
	}
	if got := Volume(p); got != 6 {
		t.Errorf("Volume = %v, want 6", got)
	}
}

func TestMinCoordEmpty(t *testing.T) {
	if !math.IsInf(MinCoord(nil), 1) {
		t.Error("MinCoord(nil) should be +Inf")
	}
	if !math.IsInf(MaxCoord(nil), -1) {
		t.Error("MaxCoord(nil) should be -Inf")
	}
}

func TestL1All(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	out := make([]float64, 2)
	m.L1All(out)
	if out[0] != 3 || out[1] != 7 {
		t.Fatalf("L1All = %v, want [3 7]", out)
	}
}

func TestL1AllLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := NewMatrix(2, 2)
	m.L1All(make([]float64, 1))
}
