package point

import "testing"

func TestStagePrefs(t *testing.T) {
	// 3 points × 4 dims: keep, negate, drop, keep.
	src := []float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
	}
	ops := []PrefOp{PrefKeep, PrefNegate, PrefDrop, PrefKeep}
	if got := EffectiveDims(ops); got != 3 {
		t.Fatalf("EffectiveDims = %d, want 3", got)
	}
	dst := make([]float64, 3*3)
	de := StagePrefs(dst, src, 3, 4, ops)
	if de != 3 {
		t.Fatalf("StagePrefs returned d=%d, want 3", de)
	}
	want := []float64{
		1, -2, 4,
		5, -6, 8,
		9, -10, 12,
	}
	for i, v := range want {
		if dst[i] != v {
			t.Fatalf("dst[%d] = %v, want %v (dst=%v)", i, dst[i], v, dst)
		}
	}
}

func TestStagePrefsIdentity(t *testing.T) {
	if !IdentityOps([]PrefOp{PrefKeep, PrefKeep}) {
		t.Error("all-keep ops should be identity")
	}
	if IdentityOps([]PrefOp{PrefKeep, PrefNegate}) {
		t.Error("negate is not identity")
	}
	if IdentityOps([]PrefOp{PrefDrop}) {
		t.Error("drop is not identity")
	}
	if IdentityOps(nil) != true {
		t.Error("empty ops are identity")
	}
}

func TestStagePrefsAllDrop(t *testing.T) {
	src := []float64{1, 2, 3, 4}
	de := StagePrefs(nil, src, 2, 2, []PrefOp{PrefDrop, PrefDrop})
	if de != 0 {
		t.Fatalf("all-drop staged d=%d, want 0", de)
	}
}

func TestStagePrefsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched ops length did not panic")
		}
	}()
	StagePrefs(make([]float64, 4), make([]float64, 4), 2, 2, []PrefOp{PrefKeep})
}
