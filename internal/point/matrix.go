// Package point provides the dense point-matrix substrate shared by all
// skyline algorithms in this repository, together with the dominance-test
// kernels that are their primary operation.
//
// Points live in a flat, row-major []float64 so that a block of points is
// contiguous in memory; the paper's algorithms (notably the compression
// step of Q-Flow, Section V-D) depend on contiguous layouts for locality.
package point

import (
	"fmt"
	"math"
)

// Matrix is a dense n×d collection of points stored row-major. The zero
// value is an empty matrix. Matrix is cheap to copy (it is a slice header
// plus two ints); the underlying values are shared.
type Matrix struct {
	vals []float64
	n, d int
}

// NewMatrix allocates an n×d matrix of zeros.
func NewMatrix(n, d int) Matrix {
	if n < 0 || d < 0 {
		panic(fmt.Sprintf("point: invalid matrix shape %d×%d", n, d))
	}
	return Matrix{vals: make([]float64, n*d), n: n, d: d}
}

// FromRows builds a matrix by copying the given rows. All rows must have
// the same length. An empty input yields an empty matrix.
func FromRows(rows [][]float64) Matrix {
	if len(rows) == 0 {
		return Matrix{}
	}
	d := len(rows[0])
	m := NewMatrix(len(rows), d)
	for i, r := range rows {
		if len(r) != d {
			panic(fmt.Sprintf("point: row %d has %d values, want %d", i, len(r), d))
		}
		copy(m.Row(i), r)
	}
	return m
}

// FromFlat wraps an existing row-major slice without copying. The slice
// length must be exactly n*d.
func FromFlat(vals []float64, n, d int) Matrix {
	if len(vals) != n*d {
		panic(fmt.Sprintf("point: flat slice has %d values, want %d×%d=%d", len(vals), n, d, n*d))
	}
	return Matrix{vals: vals, n: n, d: d}
}

// N returns the number of points.
func (m Matrix) N() int { return m.n }

// D returns the dimensionality.
func (m Matrix) D() int { return m.d }

// Row returns point i as a slice aliasing the matrix storage.
func (m Matrix) Row(i int) []float64 {
	return m.vals[i*m.d : (i+1)*m.d : (i+1)*m.d]
}

// Flat returns the underlying row-major storage (aliased, not copied).
func (m Matrix) Flat() []float64 { return m.vals }

// Clone returns a deep copy of the matrix.
func (m Matrix) Clone() Matrix {
	c := NewMatrix(m.n, m.d)
	copy(c.vals, m.vals)
	return c
}

// Gather returns a new matrix containing the rows of m selected by idx, in
// order. Used to materialize pre-filter survivors and sorted layouts.
func (m Matrix) Gather(idx []int) Matrix {
	out := NewMatrix(len(idx), m.d)
	for i, j := range idx {
		copy(out.Row(i), m.Row(j))
	}
	return out
}

// Rows returns a [][]float64 view of the matrix (each row aliases storage).
func (m Matrix) Rows() [][]float64 {
	rows := make([][]float64, m.n)
	for i := range rows {
		rows[i] = m.Row(i)
	}
	return rows
}

// Finite reports whether v is an ordinary float64 — not NaN and not ±Inf.
// NaN poisons every dominance comparison (all comparisons are false, so a
// NaN point is simultaneously never dominated and never dominating) and
// Inf breaks the L1-norm filters, so validating entry points reject both.
func Finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// L1 returns the Manhattan norm Σᵢ p[i] of a point. The paper uses the L1
// norm as its cheap filter: p ≺ q implies L1(p) < L1(q) (footnote 2).
func L1(p []float64) float64 {
	s := 0.0
	for _, v := range p {
		s += v
	}
	return s
}

// MinCoord returns the smallest coordinate of p. SaLSa sorts by this key
// to enable early termination.
func MinCoord(p []float64) float64 {
	mn := math.Inf(1)
	for _, v := range p {
		if v < mn {
			mn = v
		}
	}
	return mn
}

// MaxCoord returns the largest coordinate of p.
func MaxCoord(p []float64) float64 {
	mx := math.Inf(-1)
	for _, v := range p {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Volume returns Πᵢ p[i], the hyper-volume pivot criterion ([2] in the
// paper's pivot study).
func Volume(p []float64) float64 {
	v := 1.0
	for _, x := range p {
		v *= x
	}
	return v
}

// L1All computes the L1 norm of every row into out (which must have length
// m.N()).
func (m Matrix) L1All(out []float64) {
	if len(out) != m.n {
		panic("point: L1All output length mismatch")
	}
	for i := 0; i < m.n; i++ {
		out[i] = L1(m.Row(i))
	}
}
