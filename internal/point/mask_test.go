package point

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComputeMask(t *testing.T) {
	v := []float64{5, 5}
	cases := []struct {
		p    []float64
		want Mask
	}{
		{[]float64{1, 1}, 0b00},
		{[]float64{9, 1}, 0b01},
		{[]float64{1, 9}, 0b10},
		{[]float64{9, 9}, 0b11},
		{[]float64{5, 5}, 0b11}, // equality counts as "not better"
	}
	for _, c := range cases {
		if got := ComputeMask(c.p, v); got != c.want {
			t.Errorf("ComputeMask(%v) = %04b, want %04b", c.p, got, c.want)
		}
	}
}

func TestLevelAndSubset(t *testing.T) {
	if Mask(0b1011).Level() != 3 {
		t.Error("Level(0b1011) != 3")
	}
	if !Mask(0b001).Subset(0b011) {
		t.Error("0b001 should be subset of 0b011")
	}
	if Mask(0b100).Subset(0b011) {
		t.Error("0b100 should not be subset of 0b011")
	}
	if !Mask(0).Subset(0) {
		t.Error("0 ⊆ 0")
	}
}

func TestFullMask(t *testing.T) {
	if FullMask(4) != 0b1111 {
		t.Errorf("FullMask(4) = %b", FullMask(4))
	}
	if FullMask(1) != 0b1 {
		t.Errorf("FullMask(1) = %b", FullMask(1))
	}
}

func TestCompoundKeyRoundTrip(t *testing.T) {
	for d := 1; d <= 16; d++ {
		for trial := 0; trial < 100; trial++ {
			m := Mask(rand.Uint32()) & FullMask(d)
			k := m.CompoundKey(d)
			if MaskFromKey(k, d) != m {
				t.Fatalf("d=%d mask=%b: MaskFromKey(%d) = %b", d, m, k, MaskFromKey(k, d))
			}
			if LevelFromKey(k, d) != m.Level() {
				t.Fatalf("d=%d mask=%b: LevelFromKey = %d, want %d", d, m, LevelFromKey(k, d), m.Level())
			}
		}
	}
}

// Property (Section VI-A2, both cheap-filter rules): if q dominates p then
// mask(q) ⊆ mask(p) relative to any pivot. The compound-key sort therefore
// orders dominators before dominatees.
func TestDominatorMaskIsSubset(t *testing.T) {
	f := func(a, b, piv [4]uint8) bool {
		q, p, v := make([]float64, 4), make([]float64, 4), make([]float64, 4)
		for i := 0; i < 4; i++ {
			q[i], p[i], v[i] = float64(a[i]%6), float64(b[i]%6), float64(piv[i]%6)
		}
		if Dominates(q, p) {
			mq, mp := ComputeMask(q, v), ComputeMask(p, v)
			if !mq.Subset(mp) {
				return false
			}
			if mq.CompoundKey(4) > mp.CompoundKey(4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: equal-level distinct masks are incomparable regions — no point
// in one can dominate a point in the other (first property of VI-A2).
func TestEqualLevelDistinctMasksIncomparable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	v := []float64{3, 3, 3, 3}
	for trial := 0; trial < 20000; trial++ {
		p, q := make([]float64, 4), make([]float64, 4)
		for i := range p {
			p[i] = float64(rng.Intn(6))
			q[i] = float64(rng.Intn(6))
		}
		mp, mq := ComputeMask(p, v), ComputeMask(q, v)
		if mp.Level() == mq.Level() && mp != mq {
			if Dominates(p, q) || Dominates(q, p) {
				t.Fatalf("masks %b/%b same level but %v and %v comparable", mp, mq, p, q)
			}
		}
	}
}

// TestComputeMaskBranchless pins the branchless sign-trick implementation
// to the reference predicate (bit i ⇔ p[i] ≥ v[i]), including the signed
// zeros that the +0.0 normalization exists for and exact ties.
func TestComputeMaskBranchless(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -2, -1, math.Copysign(0, -1), 0, 1e-300, 1, 2, 1e300, math.Inf(1)}
	for _, x := range vals {
		for _, v := range vals {
			got := ComputeMask([]float64{x}, []float64{v})
			want := Mask(0)
			if x >= v {
				want = 1
			}
			if got != want {
				t.Errorf("ComputeMask(%g vs %g) = %b, want %b", x, v, got, want)
			}
		}
	}
}
