package point

import "sync/atomic"

// Flat dominance kernels: offset-based entry points that index row-major
// matrix storage directly instead of materializing per-row slice headers,
// plus loop-level "run" kernels that test one probe point against a
// contiguous run of rows with the probe's coordinates hoisted out of the
// loop. The paper's C++ implementation gets its constant factors from AVX
// kernels over contiguous blocks (Section IV); these kernels are the Go
// analogue and are what the hot paths of Hybrid and Q-Flow call.

// DominatesFlat reports strict dominance between two rows of the same flat
// row-major storage: vals[pOff:pOff+d] ≺ vals[qOff:qOff+d].
func DominatesFlat(vals []float64, pOff, qOff, d int) bool {
	return DominatesD(vals[pOff:pOff+d:pOff+d], vals[qOff:qOff+d:qOff+d], d)
}

// DominatesFlat2 is DominatesFlat across two different flat storages:
// p[pOff:pOff+d] ≺ q[qOff:qOff+d].
func DominatesFlat2(p []float64, pOff int, q []float64, qOff, d int) bool {
	return DominatesD(p[pOff:pOff+d:pOff+d], q[qOff:qOff+d:qOff+d], d)
}

// WeakDominatesFlat reports vals[pOff:] ⪯ vals[qOff:] over d dimensions.
func WeakDominatesFlat(vals []float64, pOff, qOff, d int) bool {
	return WeakDominates(vals[pOff:pOff+d:pOff+d], vals[qOff:qOff+d:qOff+d])
}

// WeakDominatesFlat2 is WeakDominatesFlat across two flat storages.
func WeakDominatesFlat2(p []float64, pOff int, q []float64, qOff, d int) bool {
	return WeakDominates(p[pOff:pOff+d:pOff+d], q[qOff:qOff+d:qOff+d])
}

// CompareFlat classifies two rows of the same flat storage in one pass.
func CompareFlat(vals []float64, pOff, qOff, d int) Relation {
	return Compare(vals[pOff:pOff+d:pOff+d], vals[qOff:qOff+d:qOff+d])
}

// CompareFlat2 is CompareFlat across two flat storages.
func CompareFlat2(p []float64, pOff int, q []float64, qOff, d int) Relation {
	return Compare(p[pOff:pOff+d:pOff+d], q[qOff:qOff+d:qOff+d])
}

// EqualsFlat2 reports coincidence of p[pOff:pOff+d] and q[qOff:qOff+d].
func EqualsFlat2(p []float64, pOff int, q []float64, qOff, d int) bool {
	return Equals(p[pOff:pOff+d:pOff+d], q[qOff:qOff+d:qOff+d])
}

// ComputeMaskFlat assigns row pOff of the flat storage to a partition
// relative to pivot v: bit i = (vals[pOff+i] < v[i] ? 0 : 1).
func ComputeMaskFlat(vals []float64, pOff int, v []float64) Mask {
	return ComputeMask(vals[pOff:pOff+len(v):pOff+len(v)], v)
}

// DominatedInFlatRun reports whether any row j ∈ [lo, hi) of the row-major
// flat matrix rows (d columns per row) strictly dominates the probe q
// (length d). Two optional per-row filters are applied before a dominance
// test: when l1 is non-nil, rows with l1[j] == qL1 are skipped (equal L1
// norms preclude dominance, footnote 2 of the paper); when skip is
// non-nil, rows with a nonzero skip[j] are passed over — skip is read with
// atomic loads so Phase II workers may concurrently set flags. *dts is
// advanced by the number of dominance tests actually performed.
//
// The specialized variants hoist q's coordinates into locals so the inner
// loop re-reads only the candidate row — the analogue of keeping the probe
// point in vector registers in the paper's AVX kernels.
func DominatedInFlatRun(rows []float64, d, lo, hi int, q []float64, qL1 float64, l1 []float64, skip []uint32, dts *uint64) bool {
	switch d {
	case 4:
		return domRun4(rows, lo, hi, q, qL1, l1, skip, dts)
	case 6:
		return domRun6(rows, lo, hi, q, qL1, l1, skip, dts)
	case 8:
		return domRun8(rows, lo, hi, q, qL1, l1, skip, dts)
	case 10:
		return domRun10(rows, lo, hi, q, qL1, l1, skip, dts)
	case 12:
		return domRun12(rows, lo, hi, q, qL1, l1, skip, dts)
	case 16:
		return domRun16(rows, lo, hi, q, qL1, l1, skip, dts)
	default:
		return domRunGeneric(rows, d, lo, hi, q, qL1, l1, skip, dts)
	}
}

// FirstDominatorInFlatRun returns the index j ∈ [lo, hi) of the first row
// of the row-major flat matrix rows that strictly dominates the probe q,
// or -1 when no row does. It is the bucket-assignment companion of
// DominatedInFlatRun: incremental maintenance needs not just whether a
// probe is dominated but by whom, so the dominated point can be filed
// under that skyline point's exclusive-dominance bucket.
//
// l1, when non-nil, holds the L1 norm of every row and prunes rows with
// l1[j] >= qL1 before the dominance test: a dominator is componentwise no
// worse and strictly better somewhere, so its L1 norm is strictly smaller
// (footnote 2 of the paper). *dts is advanced by the number of dominance
// tests actually performed.
func FirstDominatorInFlatRun(rows []float64, d, lo, hi int, q []float64, qL1 float64, l1 []float64, dts *uint64) int {
	switch d {
	case 4:
		return firstDom4(rows, lo, hi, q, qL1, l1, dts)
	case 6:
		return firstDom6(rows, lo, hi, q, qL1, l1, dts)
	case 8:
		return firstDom8(rows, lo, hi, q, qL1, l1, dts)
	default:
		return firstDomGeneric(rows, d, lo, hi, q, qL1, l1, dts)
	}
}

func firstDomGeneric(rows []float64, d, lo, hi int, q []float64, qL1 float64, l1 []float64, dts *uint64) int {
	n := *dts
	off := lo * d
	for j := lo; j < hi; j, off = j+1, off+d {
		if l1 != nil && l1[j] >= qL1 {
			continue
		}
		n++
		r := rows[off : off+d : off+d]
		strict := false
		dominates := true
		for k, v := range r {
			w := q[k]
			if v > w {
				dominates = false
				break
			}
			if v < w {
				strict = true
			}
		}
		if dominates && strict {
			*dts = n
			return j
		}
	}
	*dts = n
	return -1
}

func firstDom4(rows []float64, lo, hi int, q []float64, qL1 float64, l1 []float64, dts *uint64) int {
	q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
	n := *dts
	off := lo * 4
	for j := lo; j < hi; j, off = j+1, off+4 {
		if l1 != nil && l1[j] >= qL1 {
			continue
		}
		n++
		r := rows[off : off+4 : off+4]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 {
			*dts = n
			return j
		}
	}
	*dts = n
	return -1
}

func firstDom6(rows []float64, lo, hi int, q []float64, qL1 float64, l1 []float64, dts *uint64) int {
	q0, q1, q2, q3, q4, q5 := q[0], q[1], q[2], q[3], q[4], q[5]
	n := *dts
	off := lo * 6
	for j := lo; j < hi; j, off = j+1, off+6 {
		if l1 != nil && l1[j] >= qL1 {
			continue
		}
		n++
		r := rows[off : off+6 : off+6]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 || r[4] > q4 || r[5] > q5 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 || r[4] < q4 || r[5] < q5 {
			*dts = n
			return j
		}
	}
	*dts = n
	return -1
}

func firstDom8(rows []float64, lo, hi int, q []float64, qL1 float64, l1 []float64, dts *uint64) int {
	q0, q1, q2, q3, q4, q5, q6, q7 := q[0], q[1], q[2], q[3], q[4], q[5], q[6], q[7]
	n := *dts
	off := lo * 8
	for j := lo; j < hi; j, off = j+1, off+8 {
		if l1 != nil && l1[j] >= qL1 {
			continue
		}
		n++
		r := rows[off : off+8 : off+8]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 ||
			r[4] > q4 || r[5] > q5 || r[6] > q6 || r[7] > q7 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 ||
			r[4] < q4 || r[5] < q5 || r[6] < q6 || r[7] < q7 {
			*dts = n
			return j
		}
	}
	*dts = n
	return -1
}

func domRunGeneric(rows []float64, d, lo, hi int, q []float64, qL1 float64, l1 []float64, skip []uint32, dts *uint64) bool {
	n := *dts
	off := lo * d
	for j := lo; j < hi; j, off = j+1, off+d {
		if skip != nil && atomic.LoadUint32(&skip[j]) != 0 {
			continue
		}
		if l1 != nil && l1[j] == qL1 {
			continue
		}
		n++
		r := rows[off : off+d : off+d]
		strict := false
		dominates := true
		for k, v := range r {
			w := q[k]
			if v > w {
				dominates = false
				break
			}
			if v < w {
				strict = true
			}
		}
		if dominates && strict {
			*dts = n
			return true
		}
	}
	*dts = n
	return false
}

func domRun4(rows []float64, lo, hi int, q []float64, qL1 float64, l1 []float64, skip []uint32, dts *uint64) bool {
	q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
	n := *dts
	off := lo * 4
	for j := lo; j < hi; j, off = j+1, off+4 {
		if skip != nil && atomic.LoadUint32(&skip[j]) != 0 {
			continue
		}
		if l1 != nil && l1[j] == qL1 {
			continue
		}
		n++
		r := rows[off : off+4 : off+4]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 {
			*dts = n
			return true
		}
	}
	*dts = n
	return false
}

func domRun6(rows []float64, lo, hi int, q []float64, qL1 float64, l1 []float64, skip []uint32, dts *uint64) bool {
	q0, q1, q2, q3, q4, q5 := q[0], q[1], q[2], q[3], q[4], q[5]
	n := *dts
	off := lo * 6
	for j := lo; j < hi; j, off = j+1, off+6 {
		if skip != nil && atomic.LoadUint32(&skip[j]) != 0 {
			continue
		}
		if l1 != nil && l1[j] == qL1 {
			continue
		}
		n++
		r := rows[off : off+6 : off+6]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 || r[4] > q4 || r[5] > q5 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 || r[4] < q4 || r[5] < q5 {
			*dts = n
			return true
		}
	}
	*dts = n
	return false
}

func domRun8(rows []float64, lo, hi int, q []float64, qL1 float64, l1 []float64, skip []uint32, dts *uint64) bool {
	q0, q1, q2, q3, q4, q5, q6, q7 := q[0], q[1], q[2], q[3], q[4], q[5], q[6], q[7]
	n := *dts
	off := lo * 8
	for j := lo; j < hi; j, off = j+1, off+8 {
		if skip != nil && atomic.LoadUint32(&skip[j]) != 0 {
			continue
		}
		if l1 != nil && l1[j] == qL1 {
			continue
		}
		n++
		r := rows[off : off+8 : off+8]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 ||
			r[4] > q4 || r[5] > q5 || r[6] > q6 || r[7] > q7 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 ||
			r[4] < q4 || r[5] < q5 || r[6] < q6 || r[7] < q7 {
			*dts = n
			return true
		}
	}
	*dts = n
	return false
}

func domRun10(rows []float64, lo, hi int, q []float64, qL1 float64, l1 []float64, skip []uint32, dts *uint64) bool {
	q0, q1, q2, q3, q4 := q[0], q[1], q[2], q[3], q[4]
	q5, q6, q7, q8, q9 := q[5], q[6], q[7], q[8], q[9]
	n := *dts
	off := lo * 10
	for j := lo; j < hi; j, off = j+1, off+10 {
		if skip != nil && atomic.LoadUint32(&skip[j]) != 0 {
			continue
		}
		if l1 != nil && l1[j] == qL1 {
			continue
		}
		n++
		r := rows[off : off+10 : off+10]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 || r[4] > q4 ||
			r[5] > q5 || r[6] > q6 || r[7] > q7 || r[8] > q8 || r[9] > q9 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 || r[4] < q4 ||
			r[5] < q5 || r[6] < q6 || r[7] < q7 || r[8] < q8 || r[9] < q9 {
			*dts = n
			return true
		}
	}
	*dts = n
	return false
}

func domRun12(rows []float64, lo, hi int, q []float64, qL1 float64, l1 []float64, skip []uint32, dts *uint64) bool {
	q0, q1, q2, q3, q4, q5 := q[0], q[1], q[2], q[3], q[4], q[5]
	q6, q7, q8, q9, q10, q11 := q[6], q[7], q[8], q[9], q[10], q[11]
	n := *dts
	off := lo * 12
	for j := lo; j < hi; j, off = j+1, off+12 {
		if skip != nil && atomic.LoadUint32(&skip[j]) != 0 {
			continue
		}
		if l1 != nil && l1[j] == qL1 {
			continue
		}
		n++
		r := rows[off : off+12 : off+12]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 || r[4] > q4 || r[5] > q5 ||
			r[6] > q6 || r[7] > q7 || r[8] > q8 || r[9] > q9 || r[10] > q10 || r[11] > q11 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 || r[4] < q4 || r[5] < q5 ||
			r[6] < q6 || r[7] < q7 || r[8] < q8 || r[9] < q9 || r[10] < q10 || r[11] < q11 {
			*dts = n
			return true
		}
	}
	*dts = n
	return false
}

func domRun16(rows []float64, lo, hi int, q []float64, qL1 float64, l1 []float64, skip []uint32, dts *uint64) bool {
	q0, q1, q2, q3, q4, q5, q6, q7 := q[0], q[1], q[2], q[3], q[4], q[5], q[6], q[7]
	q8, q9, q10, q11, q12, q13, q14, q15 := q[8], q[9], q[10], q[11], q[12], q[13], q[14], q[15]
	n := *dts
	off := lo * 16
	for j := lo; j < hi; j, off = j+1, off+16 {
		if skip != nil && atomic.LoadUint32(&skip[j]) != 0 {
			continue
		}
		if l1 != nil && l1[j] == qL1 {
			continue
		}
		n++
		r := rows[off : off+16 : off+16]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 ||
			r[4] > q4 || r[5] > q5 || r[6] > q6 || r[7] > q7 ||
			r[8] > q8 || r[9] > q9 || r[10] > q10 || r[11] > q11 ||
			r[12] > q12 || r[13] > q13 || r[14] > q14 || r[15] > q15 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 ||
			r[4] < q4 || r[5] < q5 || r[6] < q6 || r[7] < q7 ||
			r[8] < q8 || r[9] < q9 || r[10] < q10 || r[11] < q11 ||
			r[12] < q12 || r[13] < q13 || r[14] < q14 || r[15] < q15 {
			*dts = n
			return true
		}
	}
	*dts = n
	return false
}
