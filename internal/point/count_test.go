package point

import (
	"math/rand"
	"testing"
)

// countOracle is the scalar reference for every counting kernel: the
// number of rows in [lo, hi) that strictly dominate q, subject to the
// same optional filters, capped at budget.
func countOracle(rows []float64, d, lo, hi int, q []float64, qL1 float64, l1 []float64, skip []uint32, budget int) int {
	c := 0
	for j := lo; j < hi; j++ {
		if skip != nil && skip[j] != 0 {
			continue
		}
		if l1 != nil && l1[j] == qL1 {
			continue
		}
		if Dominates(rows[j*d:(j+1)*d], q) {
			c++
			if c >= budget {
				return c
			}
		}
	}
	return c
}

// randRun builds a small flat matrix on a coarse grid (frequent ties and
// dominance) plus a probe drawn the same way.
func randRun(rng *rand.Rand, n, d int) (rows []float64, q []float64) {
	rows = make([]float64, n*d)
	for i := range rows {
		rows[i] = float64(rng.Intn(4)) / 3
	}
	q = make([]float64, d)
	for i := range q {
		q[i] = float64(rng.Intn(4)) / 3
	}
	return rows, q
}

func TestCountDominatorsInFlatRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 12} {
		for trial := 0; trial < 400; trial++ {
			n := 1 + rng.Intn(24)
			rows, q := randRun(rng, n, d)
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo+1)
			budget := 1 + rng.Intn(5)

			var l1 []float64
			qL1 := L1(q)
			if rng.Intn(2) == 0 {
				l1 = make([]float64, n)
				for j := 0; j < n; j++ {
					l1[j] = L1(rows[j*d : (j+1)*d])
				}
			}
			var skip []uint32
			if rng.Intn(2) == 0 {
				skip = make([]uint32, n)
				for j := range skip {
					skip[j] = uint32(rng.Intn(2))
				}
			}

			var dts uint64
			got := CountDominatorsInFlatRun(rows, d, lo, hi, q, qL1, l1, skip, budget, &dts)
			want := countOracle(rows, d, lo, hi, q, qL1, l1, skip, budget)
			if got != want {
				t.Fatalf("d=%d n=%d [%d,%d) budget=%d: got %d want %d", d, n, lo, hi, budget, got, want)
			}
			if want < budget && dts == 0 && want > 0 {
				t.Fatalf("dominators found without dominance tests")
			}
		}
	}
}

func TestCountDominatorsBudgetOneMatchesBoolean(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, d := range []int{2, 4, 6, 8, 10} {
		for trial := 0; trial < 300; trial++ {
			n := 1 + rng.Intn(16)
			rows, q := randRun(rng, n, d)
			var a, b uint64
			got := CountDominatorsInFlatRun(rows, d, 0, n, q, 0, nil, nil, 1, &a)
			want := DominatedInFlatRun(rows, d, 0, n, q, 0, nil, nil, &b)
			if (got == 1) != want {
				t.Fatalf("d=%d budget-1 count=%d, boolean=%v", d, got, want)
			}
		}
	}
}

func TestCountDominatorsInFlatRunMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, d := range []int{2, 3, 4, 6, 8} {
		pivot := make([]float64, d)
		for i := range pivot {
			pivot[i] = 0.5
		}
		for trial := 0; trial < 300; trial++ {
			n := 1 + rng.Intn(24)
			rows, q := randRun(rng, n, d)
			masks := make([]Mask, n)
			for j := 0; j < n; j++ {
				masks[j] = ComputeMask(rows[j*d:(j+1)*d], pivot)
			}
			qm := ComputeMask(q, pivot)
			budget := 1 + rng.Intn(4)

			var dts uint64
			got := CountDominatorsInFlatRunMasked(rows, d, 0, n, q, masks, qm, budget, &dts)

			// Oracle: mask filter, then dominance, capped.
			want := 0
			for j := 0; j < n && want < budget; j++ {
				if !masks[j].Subset(qm) {
					continue
				}
				if Dominates(rows[j*d:(j+1)*d], q) {
					want++
				}
			}
			if got != want {
				t.Fatalf("d=%d n=%d budget=%d: got %d want %d", d, n, budget, got, want)
			}

			// The mask filter must never drop a dominator: unfiltered count
			// with an unbounded budget matches the brute-force total.
			var dts2 uint64
			unf := CountDominatorsInFlatRunMasked(rows, d, 0, n, q, masks, qm, n+1, &dts2)
			brute := countOracle(rows, d, 0, n, q, 0, nil, nil, n+1)
			if unf != brute {
				t.Fatalf("d=%d mask filter dropped dominators: %d vs %d", d, unf, brute)
			}
		}
	}
}

func TestAppendDominatorsInFlatRun(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, d := range []int{1, 2, 4, 6, 8} {
		for trial := 0; trial < 300; trial++ {
			n := 1 + rng.Intn(24)
			rows, q := randRun(rng, n, d)
			qL1 := L1(q)
			l1 := make([]float64, n)
			for j := 0; j < n; j++ {
				l1[j] = L1(rows[j*d : (j+1)*d])
			}
			budget := 1 + rng.Intn(4)

			var dts uint64
			got := AppendDominatorsInFlatRun(nil, rows, d, 0, n, q, qL1, l1, budget, &dts)

			var want []int32
			for j := 0; j < n && len(want) < budget; j++ {
				if Dominates(rows[j*d:(j+1)*d], q) {
					want = append(want, int32(j))
				}
			}
			if len(got) != len(want) {
				t.Fatalf("d=%d budget=%d: got %v want %v", d, budget, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("d=%d budget=%d: got %v want %v", d, budget, got, want)
				}
			}

			// Budget 1 agrees with FirstDominatorInFlatRun.
			var a, b uint64
			one := AppendDominatorsInFlatRun(nil, rows, d, 0, n, q, qL1, l1, 1, &a)
			first := FirstDominatorInFlatRun(rows, d, 0, n, q, qL1, l1, &b)
			if (len(one) == 0) != (first < 0) || (first >= 0 && one[0] != int32(first)) {
				t.Fatalf("d=%d: Append budget-1 %v disagrees with FirstDominator %d", d, one, first)
			}
		}
	}
}
