package point

import "fmt"

// Preference staging transform: the kernels in this package implement
// one convention only — every dimension minimized — because a single
// convention is what keeps the dominance tests branch-free. Richer
// queries (maximize a dimension, restrict the skyline to a subspace) are
// expressed by rewriting the input once, during staging, so that the hot
// path never learns preferences exist: maximized columns are negated
// (min(-x) = max(x)) and ignored columns are dropped from the staged
// copy entirely, shrinking every subsequent dominance test.

// PrefOp describes how the staging transform treats one source
// dimension.
type PrefOp int8

const (
	// PrefKeep copies the column unchanged (minimize).
	PrefKeep PrefOp = iota
	// PrefNegate copies the column negated (maximize).
	PrefNegate
	// PrefDrop omits the column (subspace skyline).
	PrefDrop
)

// EffectiveDims returns the number of dimensions a staged point has
// under ops: the count of non-Drop entries.
func EffectiveDims(ops []PrefOp) int {
	k := 0
	for _, op := range ops {
		if op != PrefDrop {
			k++
		}
	}
	return k
}

// IdentityOps reports whether ops is a no-op transform (every dimension
// kept as-is), in which case staging can be skipped and the source
// storage used directly.
func IdentityOps(ops []PrefOp) bool {
	for _, op := range ops {
		if op != PrefKeep {
			return false
		}
	}
	return true
}

// StagePrefs writes the transform of the n×d row-major matrix src into
// dst under ops (one op per source dimension) and returns the effective
// dimensionality. Row order is preserved, so indices into the staged
// matrix are indices into src. dst must have capacity for
// n*EffectiveDims(ops) values; dst and src must not overlap.
func StagePrefs(dst, src []float64, n, d int, ops []PrefOp) int {
	if len(ops) != d {
		panic(fmt.Sprintf("point: %d preference ops for %d dimensions", len(ops), d))
	}
	de := EffectiveDims(ops)
	if len(dst) < n*de {
		panic(fmt.Sprintf("point: staging buffer holds %d values, want %d", len(dst), n*de))
	}
	w := 0
	for i := 0; i < n; i++ {
		row := src[i*d : (i+1)*d]
		for j, op := range ops {
			switch op {
			case PrefKeep:
				dst[w] = row[j]
				w++
			case PrefNegate:
				dst[w] = -row[j]
				w++
			}
		}
	}
	return de
}
