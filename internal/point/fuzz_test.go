package point

import (
	"math"
	"testing"
)

// Native fuzz targets for the dominance kernels. Each target decodes an
// arbitrary byte string into a small flat matrix plus probe (coarse
// value grid so ties and dominance are frequent, with occasional ±Inf
// and extreme magnitudes) and cross-checks the optimized kernel —
// including every unrolled d specialization — against a scalar
// brute-force oracle written from the dominance definition alone. CI
// runs each target briefly with -fuzz as a smoke step; longer local
// campaigns just need `go test -fuzz=FuzzCount ./internal/point`.

// fuzzVal maps one byte onto the value grid.
func fuzzVal(b byte) float64 {
	switch b & 0x0f {
	case 12:
		return math.Inf(1)
	case 13:
		return math.Inf(-1)
	case 14:
		return 1e300
	case 15:
		return -1e300
	default:
		return float64(b&0x0f) / 8
	}
}

// fuzzMatrix decodes bytes into (rows, q, d): dimensionality from the
// first byte, probe next, then as many full rows as the data affords.
func fuzzMatrix(data []byte) (rows []float64, q []float64, d int) {
	if len(data) < 2 {
		return nil, nil, 0
	}
	d = int(data[0]%16) + 1 // 1..16 covers generic + every unrolled width
	data = data[1:]
	if len(data) < d {
		return nil, nil, 0
	}
	q = make([]float64, d)
	for i := 0; i < d; i++ {
		q[i] = fuzzVal(data[i])
	}
	data = data[d:]
	n := len(data) / d
	if n > 64 {
		n = 64
	}
	rows = make([]float64, n*d)
	for i := range rows[:n*d] {
		rows[i] = fuzzVal(data[i])
	}
	return rows, q, d
}

// dominatesOracle restates Definition 2 with no shared helpers.
func dominatesOracle(p, q []float64) bool {
	strict := false
	for i := range p {
		if p[i] > q[i] {
			return false
		}
		if p[i] < q[i] {
			strict = true
		}
	}
	return strict
}

func FuzzDominatesFlat(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{7, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, q, d := fuzzMatrix(data)
		if d == 0 {
			return
		}
		n := len(rows) / d
		for j := 0; j < n; j++ {
			r := rows[j*d : (j+1)*d]
			if got, want := DominatesFlat2(rows, j*d, q, 0, d), dominatesOracle(r, q); got != want {
				t.Fatalf("d=%d row %d: DominatesFlat2=%v oracle=%v (r=%v q=%v)", d, j, got, want, r, q)
			}
			if got, want := DominatesD(r, q, d), dominatesOracle(r, q); got != want {
				t.Fatalf("d=%d row %d: DominatesD=%v oracle=%v", d, j, got, want)
			}
		}
	})
}

func FuzzFirstDominatorInFlatRun(f *testing.F) {
	f.Add([]byte{4, 9, 9, 9, 9, 1, 1, 1, 1, 2, 2, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, q, d := fuzzMatrix(data)
		if d == 0 {
			return
		}
		n := len(rows) / d
		l1 := make([]float64, n)
		for j := 0; j < n; j++ {
			l1[j] = L1(rows[j*d : (j+1)*d])
		}
		qL1 := L1(q)

		// The oracle mirrors the kernel's contract, not the mathematical
		// claim behind it: rows with l1[j] >= qL1 are skipped unexamined.
		// (In exact arithmetic a dominator always has a strictly smaller
		// L1 norm; under float absorption — 1e300 + 0.5 == 1e300 — the
		// computed norms can tie, which is why huge-magnitude data is a
		// documented precondition violation of the L1-ordered pipeline
		// rather than a kernel bug. See DESIGN.md §9.)
		want := -1
		for j := 0; j < n; j++ {
			if l1[j] >= qL1 {
				continue
			}
			if dominatesOracle(rows[j*d:(j+1)*d], q) {
				want = j
				break
			}
		}
		var dts uint64
		if got := FirstDominatorInFlatRun(rows, d, 0, n, q, qL1, l1, &dts); got != want {
			t.Fatalf("d=%d n=%d: FirstDominator=%d oracle=%d (q=%v rows=%v l1=%v)", d, n, got, want, q, rows, l1)
		}
	})
}

func FuzzDominatedInFlatRun(f *testing.F) {
	f.Add([]byte{8, 1, 2, 3, 4, 5, 6, 7, 8, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, q, d := fuzzMatrix(data)
		if d == 0 {
			return
		}
		n := len(rows) / d
		want := false
		for j := 0; j < n && !want; j++ {
			want = dominatesOracle(rows[j*d:(j+1)*d], q)
		}
		var dts uint64
		if got := DominatedInFlatRun(rows, d, 0, n, q, 0, nil, nil, &dts); got != want {
			t.Fatalf("d=%d n=%d: DominatedInFlatRun=%v oracle=%v (q=%v rows=%v)", d, n, got, want, q, rows)
		}
	})
}

func FuzzCountDominatorsInFlatRun(f *testing.F) {
	f.Add([]byte{2, 4, 9, 9, 1, 1, 2, 2, 0, 3})
	f.Add([]byte{6, 3, 3, 3, 3, 3, 3, 3, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		budget := int(data[0]%8) + 1
		rows, q, d := fuzzMatrix(data[1:])
		if d == 0 {
			return
		}
		n := len(rows) / d

		want := 0
		for j := 0; j < n && want < budget; j++ {
			if dominatesOracle(rows[j*d:(j+1)*d], q) {
				want++
			}
		}
		var dts uint64
		if got := CountDominatorsInFlatRun(rows, d, 0, n, q, 0, nil, nil, budget, &dts); got != want {
			t.Fatalf("d=%d n=%d budget=%d: count=%d oracle=%d (q=%v rows=%v)", d, n, budget, got, want, q, rows)
		}

		// Budget 1 must agree with the boolean kernel on the same input.
		var a, b uint64
		one := CountDominatorsInFlatRun(rows, d, 0, n, q, 0, nil, nil, 1, &a)
		if dom := DominatedInFlatRun(rows, d, 0, n, q, 0, nil, nil, &b); (one == 1) != dom {
			t.Fatalf("d=%d: budget-1 count %d disagrees with boolean %v", d, one, dom)
		}
	})
}
