package point

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominatesBasics(t *testing.T) {
	cases := []struct {
		p, q []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // coincident
		{[]float64{1, 1}, []float64{1, 2}, true},  // equal on one dim
		{[]float64{2, 2}, []float64{1, 1}, false},
		{[]float64{0, 5, 3}, []float64{1, 5, 3}, true},
	}
	for _, c := range cases {
		if got := Dominates(c.p, c.q); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestWeakDominates(t *testing.T) {
	if !WeakDominates([]float64{1, 1}, []float64{1, 1}) {
		t.Error("coincident points should weakly dominate each other")
	}
	if WeakDominates([]float64{1, 3}, []float64{2, 2}) {
		t.Error("incomparable points should not weakly dominate")
	}
}

func TestEquals(t *testing.T) {
	if !Equals([]float64{1, 2}, []float64{1, 2}) {
		t.Error("identical points should be Equal")
	}
	if Equals([]float64{1, 2}, []float64{1, 3}) {
		t.Error("distinct points should not be Equal")
	}
}

func TestCompareMatchesDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		d := 1 + rng.Intn(8)
		p, q := make([]float64, d), make([]float64, d)
		for j := 0; j < d; j++ {
			// Small integer grid ensures frequent ties and coincidence.
			p[j] = float64(rng.Intn(4))
			q[j] = float64(rng.Intn(4))
		}
		rel := Compare(p, q)
		pd, qd, eq := Dominates(p, q), Dominates(q, p), Equals(p, q)
		switch rel {
		case LeftDominates:
			if !pd || qd || eq {
				t.Fatalf("Compare(%v,%v)=Left but Dominates says %v/%v/%v", p, q, pd, qd, eq)
			}
		case RightDominates:
			if pd || !qd || eq {
				t.Fatalf("Compare(%v,%v)=Right but Dominates says %v/%v/%v", p, q, pd, qd, eq)
			}
		case Equal:
			if !eq {
				t.Fatalf("Compare(%v,%v)=Equal but Equals=false", p, q)
			}
		case Incomparable:
			if pd || qd || eq {
				t.Fatalf("Compare(%v,%v)=Incomparable but %v/%v/%v", p, q, pd, qd, eq)
			}
		}
	}
}

func TestDominatesDMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []int{2, 3, 4, 5, 6, 7, 8, 12, 16} {
		for i := 0; i < 1000; i++ {
			p, q := make([]float64, d), make([]float64, d)
			for j := 0; j < d; j++ {
				p[j] = float64(rng.Intn(3))
				q[j] = float64(rng.Intn(3))
			}
			if DominatesD(p, q, d) != Dominates(p, q) {
				t.Fatalf("d=%d: DominatesD(%v,%v) != Dominates", d, p, q)
			}
		}
	}
}

// Property: dominance is irreflexive, antisymmetric, and transitive.
func TestDominancePartialOrderProperties(t *testing.T) {
	type triple struct{ A, B, C [5]uint8 }
	f := func(tr triple) bool {
		conv := func(a [5]uint8) []float64 {
			out := make([]float64, 5)
			for i, v := range a {
				out[i] = float64(v % 4)
			}
			return out
		}
		p, q, r := conv(tr.A), conv(tr.B), conv(tr.C)
		// Irreflexive.
		if Dominates(p, p) {
			return false
		}
		// Antisymmetric.
		if Dominates(p, q) && Dominates(q, p) {
			return false
		}
		// Transitive.
		if Dominates(p, q) && Dominates(q, r) && !Dominates(p, r) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: p ≺ q implies L1(p) < L1(q) — the basis of the sort-based
// cheap filter (footnote 2 of the paper).
func TestDominanceImpliesSmallerL1(t *testing.T) {
	f := func(a, b [6]uint8) bool {
		p, q := make([]float64, 6), make([]float64, 6)
		for i := 0; i < 6; i++ {
			p[i], q[i] = float64(a[i]%8), float64(b[i]%8)
		}
		if Dominates(p, q) && L1(p) >= L1(q) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDominatesGeneric(b *testing.B) {
	p := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	q := []float64{2, 3, 4, 5, 6, 7, 8, 9}
	for i := 0; i < b.N; i++ {
		Dominates(p, q)
	}
}

func BenchmarkDominatesUnrolled8(b *testing.B) {
	p := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	q := []float64{2, 3, 4, 5, 6, 7, 8, 9}
	for i := 0; i < b.N; i++ {
		DominatesD(p, q, 8)
	}
}
