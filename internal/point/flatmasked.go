package point

// DominatedInFlatRunMasked is DominatedInFlatRun with the partition-mask
// filter fused into the loop: row j is dominance-tested only when
// masks[j] ⊆ qm (the region-compatibility condition of Section VI-A2).
// It is the kernel behind M(S) partition scans, where most rows fail the
// subset filter and the probe's coordinates must stay hoisted across the
// whole run for the scan to be cheap. *dts is advanced by the number of
// dominance tests actually performed (filtered rows cost none).
func DominatedInFlatRunMasked(rows []float64, d, lo, hi int, q []float64, masks []Mask, qm Mask, dts *uint64) bool {
	switch d {
	case 4:
		return domRunM4(rows, lo, hi, q, masks, qm, dts)
	case 6:
		return domRunM6(rows, lo, hi, q, masks, qm, dts)
	case 8:
		return domRunM8(rows, lo, hi, q, masks, qm, dts)
	case 10:
		return domRunM10(rows, lo, hi, q, masks, qm, dts)
	case 12:
		return domRunM12(rows, lo, hi, q, masks, qm, dts)
	case 16:
		return domRunM16(rows, lo, hi, q, masks, qm, dts)
	default:
		return domRunMGeneric(rows, d, lo, hi, q, masks, qm, dts)
	}
}

func domRunMGeneric(rows []float64, d, lo, hi int, q []float64, masks []Mask, qm Mask, dts *uint64) bool {
	n := *dts
	off := lo * d
	for j := lo; j < hi; j, off = j+1, off+d {
		if masks[j]&qm != masks[j] {
			continue
		}
		n++
		r := rows[off : off+d : off+d]
		strict := false
		dominates := true
		for k, v := range r {
			w := q[k]
			if v > w {
				dominates = false
				break
			}
			if v < w {
				strict = true
			}
		}
		if dominates && strict {
			*dts = n
			return true
		}
	}
	*dts = n
	return false
}

func domRunM4(rows []float64, lo, hi int, q []float64, masks []Mask, qm Mask, dts *uint64) bool {
	q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
	n := *dts
	off := lo * 4
	for j := lo; j < hi; j, off = j+1, off+4 {
		if masks[j]&qm != masks[j] {
			continue
		}
		n++
		r := rows[off : off+4 : off+4]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 {
			*dts = n
			return true
		}
	}
	*dts = n
	return false
}

func domRunM6(rows []float64, lo, hi int, q []float64, masks []Mask, qm Mask, dts *uint64) bool {
	q0, q1, q2, q3, q4, q5 := q[0], q[1], q[2], q[3], q[4], q[5]
	n := *dts
	off := lo * 6
	for j := lo; j < hi; j, off = j+1, off+6 {
		if masks[j]&qm != masks[j] {
			continue
		}
		n++
		r := rows[off : off+6 : off+6]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 || r[4] > q4 || r[5] > q5 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 || r[4] < q4 || r[5] < q5 {
			*dts = n
			return true
		}
	}
	*dts = n
	return false
}

func domRunM8(rows []float64, lo, hi int, q []float64, masks []Mask, qm Mask, dts *uint64) bool {
	q0, q1, q2, q3, q4, q5, q6, q7 := q[0], q[1], q[2], q[3], q[4], q[5], q[6], q[7]
	n := *dts
	off := lo * 8
	for j := lo; j < hi; j, off = j+1, off+8 {
		if masks[j]&qm != masks[j] {
			continue
		}
		n++
		r := rows[off : off+8 : off+8]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 ||
			r[4] > q4 || r[5] > q5 || r[6] > q6 || r[7] > q7 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 ||
			r[4] < q4 || r[5] < q5 || r[6] < q6 || r[7] < q7 {
			*dts = n
			return true
		}
	}
	*dts = n
	return false
}

func domRunM10(rows []float64, lo, hi int, q []float64, masks []Mask, qm Mask, dts *uint64) bool {
	q0, q1, q2, q3, q4 := q[0], q[1], q[2], q[3], q[4]
	q5, q6, q7, q8, q9 := q[5], q[6], q[7], q[8], q[9]
	n := *dts
	off := lo * 10
	for j := lo; j < hi; j, off = j+1, off+10 {
		if masks[j]&qm != masks[j] {
			continue
		}
		n++
		r := rows[off : off+10 : off+10]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 || r[4] > q4 ||
			r[5] > q5 || r[6] > q6 || r[7] > q7 || r[8] > q8 || r[9] > q9 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 || r[4] < q4 ||
			r[5] < q5 || r[6] < q6 || r[7] < q7 || r[8] < q8 || r[9] < q9 {
			*dts = n
			return true
		}
	}
	*dts = n
	return false
}

func domRunM12(rows []float64, lo, hi int, q []float64, masks []Mask, qm Mask, dts *uint64) bool {
	q0, q1, q2, q3, q4, q5 := q[0], q[1], q[2], q[3], q[4], q[5]
	q6, q7, q8, q9, q10, q11 := q[6], q[7], q[8], q[9], q[10], q[11]
	n := *dts
	off := lo * 12
	for j := lo; j < hi; j, off = j+1, off+12 {
		if masks[j]&qm != masks[j] {
			continue
		}
		n++
		r := rows[off : off+12 : off+12]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 || r[4] > q4 || r[5] > q5 ||
			r[6] > q6 || r[7] > q7 || r[8] > q8 || r[9] > q9 || r[10] > q10 || r[11] > q11 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 || r[4] < q4 || r[5] < q5 ||
			r[6] < q6 || r[7] < q7 || r[8] < q8 || r[9] < q9 || r[10] < q10 || r[11] < q11 {
			*dts = n
			return true
		}
	}
	*dts = n
	return false
}

func domRunM16(rows []float64, lo, hi int, q []float64, masks []Mask, qm Mask, dts *uint64) bool {
	q0, q1, q2, q3, q4, q5, q6, q7 := q[0], q[1], q[2], q[3], q[4], q[5], q[6], q[7]
	q8, q9, q10, q11, q12, q13, q14, q15 := q[8], q[9], q[10], q[11], q[12], q[13], q[14], q[15]
	n := *dts
	off := lo * 16
	for j := lo; j < hi; j, off = j+1, off+16 {
		if masks[j]&qm != masks[j] {
			continue
		}
		n++
		r := rows[off : off+16 : off+16]
		if r[0] > q0 || r[1] > q1 || r[2] > q2 || r[3] > q3 ||
			r[4] > q4 || r[5] > q5 || r[6] > q6 || r[7] > q7 ||
			r[8] > q8 || r[9] > q9 || r[10] > q10 || r[11] > q11 ||
			r[12] > q12 || r[13] > q13 || r[14] > q14 || r[15] > q15 {
			continue
		}
		if r[0] < q0 || r[1] < q1 || r[2] < q2 || r[3] < q3 ||
			r[4] < q4 || r[5] < q5 || r[6] < q6 || r[7] < q7 ||
			r[8] < q8 || r[9] < q9 || r[10] < q10 || r[11] < q11 ||
			r[12] < q12 || r[13] < q13 || r[14] < q14 || r[15] < q15 {
			*dts = n
			return true
		}
	}
	*dts = n
	return false
}
