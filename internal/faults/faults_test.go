package faults

import (
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	if err := Check(nil, "any.site"); err != nil {
		t.Fatal(err)
	}
}

func TestCountedPlanFiresOnExactHit(t *testing.T) {
	in := New(1)
	in.Arm(Plan{Site: "s", After: 2}) // fires on hit 3 only
	for i := 1; i <= 5; i++ {
		err := Check(in, "s")
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: err = %v, want injected", i, err)
			}
		} else if err != nil {
			t.Fatalf("hit %d: unexpected %v", i, err)
		}
	}
	ev := in.Events()
	if len(ev) != 1 || ev[0].Hit != 3 || ev[0].Site != "s" {
		t.Fatalf("events = %+v", ev)
	}
}

func TestCountBoundsRepeatedFiring(t *testing.T) {
	in := New(1)
	in.Arm(Plan{Site: "s", Count: 2})
	fired := 0
	for i := 0; i < 10; i++ {
		if Check(in, "s") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2", fired)
	}
}

func TestCustomError(t *testing.T) {
	sentinel := errors.New("boom")
	in := New(1)
	in.Arm(Plan{Site: "s", Err: sentinel})
	if err := Check(in, "s"); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestPanicPlan(t *testing.T) {
	in := New(1)
	in.Arm(Plan{Site: "s", Panic: true})
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok || pv.Site != "s" {
			t.Fatalf("recovered %v", r)
		}
	}()
	Check(in, "s")
	t.Fatal("expected panic")
}

func TestDelayPlanStallsButSucceeds(t *testing.T) {
	in := New(1)
	in.Arm(Plan{Site: "s", Delay: 20 * time.Millisecond})
	t0 := time.Now()
	if err := Check(in, "s"); err != nil {
		t.Fatal(err)
	}
	if time.Since(t0) < 15*time.Millisecond {
		t.Fatal("delay did not stall")
	}
}

func TestProbabilisticPlanIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		in := New(seed)
		in.Arm(Plan{Site: "s", P: 0.3, Count: 1 << 30})
		var hits []int
		for i := 1; i <= 50; i++ {
			if Check(in, "s") != nil {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) == 50 {
		t.Fatalf("p=0.3 fired %d/50 times", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestSitesAreIndependent(t *testing.T) {
	in := New(1)
	in.Arm(Plan{Site: "a"})
	if err := Check(in, "b"); err != nil {
		t.Fatal(err)
	}
	if err := Check(in, "a"); err == nil {
		t.Fatal("armed site did not fire")
	}
	if in.Hits("a") != 1 || in.Hits("b") != 1 {
		t.Fatalf("hits: a=%d b=%d", in.Hits("a"), in.Hits("b"))
	}
}
