// Package faults is the deterministic fault-injection harness behind
// the robustness tests: named injection points ("sites") scattered
// through the serving stack call Check, and an armed Injector decides —
// reproducibly — whether that call errors, panics, or stalls.
//
// Determinism comes in two forms. Counted plans fire on exact hit
// ordinals ("the 3rd WAL append fails"), which is what the recovery and
// containment tests use to place a fault at a known point of an update
// trace. Probabilistic plans draw from a seeded PRNG, for smoke
// matrices that want coverage rather than a scripted scenario; the same
// seed replays the same faults.
//
// A nil *Injector is inert: Check(nil, site) is free, so production
// paths carry injection points at no cost and with no configuration.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the default error payload of an error-kind plan, so
// tests can assert a failure came from the harness and not from a real
// fault: errors.Is(err, faults.ErrInjected).
var ErrInjected = errors.New("faults: injected error")

// PanicValue is the value an injected panic carries; containment tests
// assert on its Site to prove the recovered panic was the injected one.
type PanicValue struct {
	Site string
}

func (p PanicValue) String() string { return "faults: injected panic at " + p.Site }

// Plan arms one fault at one site.
type Plan struct {
	// Site names the injection point the plan applies to.
	Site string
	// After skips that many hits of the site before firing (0 fires on
	// the first hit).
	After int
	// Count bounds how many hits fire once triggered (≤ 0 means one).
	Count int
	// P, when > 0, makes the plan probabilistic instead of counted:
	// every hit past After fires independently with probability P (Count
	// still bounds the total), drawn from the Injector's seeded PRNG.
	P float64
	// Err is returned from Check when the plan fires (nil selects
	// ErrInjected, unless the plan is a pure Panic or Delay).
	Err error
	// Panic makes the firing hit panic with a PanicValue instead of
	// returning an error.
	Panic bool
	// Delay stalls the firing hit before erroring/panicking/returning —
	// the "slow shard" and deadline-pressure fault.
	Delay time.Duration
}

// Event records one fired fault, for post-hoc assertions.
type Event struct {
	Site     string
	Hit      int // 1-based hit ordinal at the site
	Err      error
	Panicked bool
}

// Injector is a set of armed plans plus the per-site hit counters they
// consume. Safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	hits   map[string]int
	fired  map[*Plan]int
	plans  []*Plan
	events []Event
}

// New creates an Injector whose probabilistic plans draw from the given
// seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		hits:  make(map[string]int),
		fired: make(map[*Plan]int),
	}
}

// Arm adds plans to the injector.
func (in *Injector) Arm(plans ...Plan) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range plans {
		p := plans[i]
		in.plans = append(in.plans, &p)
	}
}

// Hits returns how many times the site has been reached.
func (in *Injector) Hits(site string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// Events returns a copy of the fired-fault log.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// Check is the injection point: count a hit at site and fire the first
// matching armed plan. It returns the plan's error, panics for panic
// plans, and sleeps for delay plans (the delay happens outside the
// injector's lock, so concurrent sites never serialize on a stall). A
// nil Injector never fires.
func Check(in *Injector, site string) error {
	if in == nil {
		return nil
	}
	return in.check(site)
}

func (in *Injector) check(site string) error {
	in.mu.Lock()
	in.hits[site]++
	hit := in.hits[site]
	var fire *Plan
	for _, p := range in.plans {
		if p.Site != site || hit <= p.After {
			continue
		}
		count := p.Count
		if count <= 0 {
			count = 1
		}
		if in.fired[p] >= count {
			continue
		}
		if p.P > 0 && in.rng.Float64() >= p.P {
			continue
		}
		in.fired[p]++
		fire = p
		break
	}
	var err error
	if fire != nil {
		switch {
		case fire.Panic:
			// The panic below is the payload.
		case fire.Err != nil:
			err = fire.Err
		case fire.Delay > 0:
			// A pure delay stalls but reports success.
		default:
			err = ErrInjected
		}
		in.events = append(in.events, Event{Site: site, Hit: hit, Err: err, Panicked: fire.Panic})
	}
	in.mu.Unlock()
	if fire == nil {
		return nil
	}
	if fire.Delay > 0 {
		time.Sleep(fire.Delay)
	}
	if fire.Panic {
		panic(PanicValue{Site: site})
	}
	return err
}

// String summarizes the fired events (for failure messages).
func (in *Injector) String() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return fmt.Sprintf("faults.Injector{%d plans, %d fired}", len(in.plans), len(in.events))
}
