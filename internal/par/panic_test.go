package par

import (
	"strings"
	"sync/atomic"
	"testing"
)

// wantWorkerPanic runs f expecting it to rethrow a *WorkerPanic whose
// value is val, on the calling goroutine.
func wantWorkerPanic(t *testing.T, val string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		wp, ok := r.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T %v, want *WorkerPanic", r, r)
		}
		if wp.Value != val {
			t.Fatalf("panic value = %v, want %q", wp.Value, val)
		}
		if !strings.Contains(string(wp.Stack), "goroutine") {
			t.Fatalf("WorkerPanic carries no stack: %q", wp.Stack)
		}
	}()
	f()
	t.Fatal("expected rethrown panic")
}

func TestForPropagatesWorkerPanic(t *testing.T) {
	wantWorkerPanic(t, "boom-for", func() {
		For(4, 1000, func(i int) {
			if i == 617 {
				panic("boom-for")
			}
		})
	})
}

func TestForRangesPropagatesWorkerPanic(t *testing.T) {
	wantWorkerPanic(t, "boom-ranges", func() {
		ForRanges(4, 100, func(tid, lo, hi int) {
			if tid == 2 {
				panic("boom-ranges")
			}
		})
	})
}

func TestRunPropagatesWorkerPanic(t *testing.T) {
	wantWorkerPanic(t, "boom-run", func() {
		Run(3, func(tid int) {
			if tid == 1 {
				panic("boom-run")
			}
		})
	})
}

func TestPoolSurvivesWorkerPanic(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	wantWorkerPanic(t, "boom-pool-for", func() {
		p.For(1000, func(i int) {
			if i == 421 {
				panic("boom-pool-for")
			}
		})
	})
	wantWorkerPanic(t, "boom-pool-ranges", func() {
		p.ForRanges(100, func(tid, lo, hi int) {
			if tid == 3 {
				panic("boom-pool-ranges")
			}
		})
	})

	// The pool must stay fully serviceable after contained panics: the
	// panic slot is cleared and the barrier is intact.
	for rep := 0; rep < 3; rep++ {
		var sum atomic.Int64
		p.For(1000, func(i int) { sum.Add(int64(i)) })
		if sum.Load() != 999*1000/2 {
			t.Fatalf("rep %d: pool miscounted after panic: %d", rep, sum.Load())
		}
		var hitsR atomic.Int64
		p.ForRanges(100, func(tid, lo, hi int) { hitsR.Add(int64(hi - lo)) })
		if hitsR.Load() != 100 {
			t.Fatalf("rep %d: ForRanges covered %d items", rep, hitsR.Load())
		}
	}
}

func TestPoolDispatcherShareCaptured(t *testing.T) {
	// Worker 0 is the dispatching goroutine itself; its panic must take
	// the same contained path so region state is reset under mu.
	p := NewPool(2)
	defer p.Close()
	wantWorkerPanic(t, "boom-self", func() {
		p.ForRanges(2, func(tid, lo, hi int) {
			if tid == 0 {
				panic("boom-self")
			}
		})
	})
	var n atomic.Int64
	p.ForRanges(2, func(tid, lo, hi int) { n.Add(1) })
	if n.Load() != 2 {
		t.Fatalf("pool wedged after dispatcher-share panic: %d regions ran", n.Load())
	}
}

func TestCancelStillWorksAfterPanic(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	wantWorkerPanic(t, "x", func() { p.For(100, func(i int) { panic("x") }) })
	var stop atomic.Bool
	stop.Store(true)
	ran := false
	p.ForRangesCancel(4, 100, &stop, func(tid, lo, hi int) { ran = true })
	if ran {
		t.Fatal("stop flag ignored after panic recovery")
	}
}
