package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 16} {
		for _, n := range []int{0, 1, 7, 100, 1001} {
			seen := make([]int32, n)
			For(threads, n, func(i int) { atomic.AddInt32(&seen[i], 1) })
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("t=%d n=%d: index %d visited %d times", threads, n, i, c)
				}
			}
		}
	}
}

func TestForChunkedExplicitChunk(t *testing.T) {
	var sum int64
	ForChunked(4, 1000, 3, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 999*1000/2 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	For(4, -5, func(int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestForRangesPartition(t *testing.T) {
	for _, threads := range []int{1, 3, 8} {
		for _, n := range []int{1, 10, 97} {
			covered := make([]int32, n)
			tids := make(map[int]bool)
			var mu atomic.Int32
			ForRanges(threads, n, func(tid, lo, hi int) {
				mu.Add(1)
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
				_ = tids // tid ranges checked via coverage
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("t=%d n=%d: index %d covered %d times", threads, n, i, c)
				}
			}
		}
	}
}

func TestForRangesTidsDistinct(t *testing.T) {
	n, threads := 100, 4
	seen := make([]int32, threads)
	ForRanges(threads, n, func(tid, lo, hi int) { atomic.AddInt32(&seen[tid], 1) })
	for tid, c := range seen {
		if c != 1 {
			t.Fatalf("tid %d used %d times", tid, c)
		}
	}
}

func TestForRangesMoreThreadsThanWork(t *testing.T) {
	var count int32
	ForRanges(16, 3, func(tid, lo, hi int) { atomic.AddInt32(&count, int32(hi-lo)) })
	if count != 3 {
		t.Fatalf("covered %d items, want 3", count)
	}
}

func TestRun(t *testing.T) {
	var mask int64
	Run(5, func(tid int) { atomic.AddInt64(&mask, 1<<uint(tid)) })
	if mask != 0b11111 {
		t.Fatalf("mask = %b", mask)
	}
}

func TestNormalize(t *testing.T) {
	if normalize(0, 10) < 1 {
		t.Error("normalize(0, 10) < 1")
	}
	if normalize(8, 3) != 3 {
		t.Error("normalize should clamp to n")
	}
	if normalize(2, 0) != 1 {
		t.Error("normalize floor is 1")
	}
}
