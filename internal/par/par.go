// Package par is a minimal parallel runtime that mirrors the OpenMP
// constructs used by the paper's C++ implementation: a chunked parallel
// for over a fixed thread count, and a static partition of an index range.
//
// All algorithms in this repository take an explicit thread count t so the
// paper's thread-scaling experiments (Figures 10–13) can sweep t
// regardless of GOMAXPROCS.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultThreads returns the thread count used when the caller passes
// t <= 0: the number of usable CPUs.
func DefaultThreads() int { return runtime.GOMAXPROCS(0) }

// WorkerPanic carries a panic across a parallel-region barrier: the
// original panic value plus the panicking worker's stack. A panic on a
// worker goroutine would otherwise kill the whole process (recover only
// works on the panicking goroutine), so every region here recovers it,
// completes the barrier, and rethrows *WorkerPanic on the dispatching
// goroutine — where the caller's own defer/recover can contain it.
type WorkerPanic struct {
	Value any
	Stack []byte
}

func (p *WorkerPanic) String() string {
	return fmt.Sprintf("par: worker panic: %v\n%s", p.Value, p.Stack)
}

// panicSlot records the first panic among a region's workers.
type panicSlot struct{ p atomic.Pointer[WorkerPanic] }

// capture must be invoked via defer inside the function whose panic it
// recovers. An already-wrapped *WorkerPanic (a nested region) passes
// through with its original stack.
func (s *panicSlot) capture() {
	if r := recover(); r != nil {
		wp, ok := r.(*WorkerPanic)
		if !ok {
			wp = &WorkerPanic{Value: r, Stack: debug.Stack()}
		}
		s.p.CompareAndSwap(nil, wp)
	}
}

// rethrow re-raises the recorded panic, if any, on the caller's
// goroutine. Call it after the region's barrier.
func (s *panicSlot) rethrow() {
	if wp := s.p.Load(); wp != nil {
		panic(wp)
	}
}

// tripped reports whether a panic has been recorded; workers poll it
// between chunks so a poisoned region winds down instead of burning the
// remaining work.
func (s *panicSlot) tripped() bool { return s.p.Load() != nil }

// normalize clamps a requested thread count to [1, n] for n work items
// (never more workers than items, never fewer than one).
func normalize(t, n int) int {
	if t <= 0 {
		t = DefaultThreads()
	}
	if n < t {
		t = n
	}
	if t < 1 {
		t = 1
	}
	return t
}

// For runs body(i) for every i in [0, n) using t goroutines with dynamic
// chunked scheduling (analogous to OpenMP schedule(dynamic, chunk)).
// Dynamic scheduling matters for skyline phases because per-point work is
// highly skewed: a point dominated by the first skyline point costs one
// dominance test while a skyline point costs |S| of them.
func For(t, n int, body func(i int)) {
	ForChunked(t, n, 0, body)
}

// ForChunked is For with an explicit chunk size (0 picks a heuristic).
func ForChunked(t, n, chunk int, body func(i int)) {
	if n <= 0 {
		return
	}
	t = normalize(t, n)
	if t == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	if chunk <= 0 {
		chunk = n / (t * 8)
		if chunk < 1 {
			chunk = 1
		}
		if chunk > 1024 {
			chunk = 1024
		}
	}
	var next int64
	var pan panicSlot
	var wg sync.WaitGroup
	wg.Add(t)
	for w := 0; w < t; w++ {
		go func() {
			defer wg.Done()
			defer pan.capture()
			for {
				if pan.tripped() {
					return
				}
				lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
	pan.rethrow()
}

// ForRanges runs body(tid, lo, hi) over a static partition of [0, n) into
// t nearly equal contiguous ranges (analogous to OpenMP schedule(static)).
// It is used where each worker needs private state indexed by tid, e.g.
// the pre-filter's per-thread priority queues and per-thread DT counters.
func ForRanges(t, n int, body func(tid, lo, hi int)) {
	if n <= 0 {
		return
	}
	t = normalize(t, n)
	if t == 1 {
		body(0, 0, n)
		return
	}
	var pan panicSlot
	var wg sync.WaitGroup
	wg.Add(t)
	size := n / t
	rem := n % t
	lo := 0
	for w := 0; w < t; w++ {
		hi := lo + size
		if w < rem {
			hi++
		}
		go func(tid, lo, hi int) {
			defer wg.Done()
			defer pan.capture()
			body(tid, lo, hi)
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
	pan.rethrow()
}

// Run launches t goroutines executing body(tid) and waits for all of them.
func Run(t int, body func(tid int)) {
	if t <= 0 {
		t = DefaultThreads()
	}
	if t == 1 {
		body(0)
		return
	}
	var pan panicSlot
	var wg sync.WaitGroup
	wg.Add(t)
	for w := 0; w < t; w++ {
		go func(tid int) {
			defer wg.Done()
			defer pan.capture()
			body(tid)
		}(w)
	}
	wg.Wait()
	pan.rethrow()
}
