package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent team of worker goroutines with a reusable barrier —
// the analogue of OpenMP's thread team, which the paper's C++
// implementation creates once and reuses for every parallel region.
// Hybrid and Q-Flow issue one ForRanges fan-out per phase per α-block;
// with the free functions each fan-out pays goroutine creation and
// WaitGroup churn, while a Pool pays two channel operations per worker.
//
// The calling goroutine participates as worker 0, so a Pool of t threads
// owns t−1 goroutines and a single-threaded Pool runs everything inline.
// Dispatch methods are safe for concurrent use: concurrent parallel
// regions serialize on an internal mutex, so one Pool can be shared by
// many computation contexts (the Engine serving concurrent skyline
// queries relies on this). A dispatch method must not be called from
// inside a body running on the same Pool. Close releases the workers; a
// finalizer releases them anyway if a Pool is garbage-collected while
// still open, so an un-Closed Pool does not leak goroutines permanently.
type Pool struct {
	*pool
}

// pool is the inner state shared with the worker goroutines. Keeping it
// behind a wrapper lets the cleanup run when the caller drops the Pool:
// the workers only reference the inner struct, so the wrapper can become
// unreachable while they are parked.
type pool struct {
	t  int
	mu sync.Mutex // serializes multi-threaded dispatches

	// Current parallel region, written by the dispatcher under mu before
	// waking workers (the channel send orders these writes before the
	// reads).
	mode   int
	bodyR  func(tid, lo, hi int)
	bodyI  func(i int)
	n      int
	tEff   int
	chunk  int64
	stop   *atomic.Bool // when non-nil and set, workers skip their share
	cursor atomic.Int64

	pan panicSlot // first worker panic of the current region

	start []chan struct{} // one per worker goroutine, wakes it for a region
	done  chan struct{}   // workers report region completion
	quit  chan struct{}   // closed to release the workers
	once  sync.Once
}

const (
	modeRanges = iota
	modeFor
)

// NewPool creates a pool of t workers (t ≤ 0 selects DefaultThreads).
func NewPool(t int) *Pool {
	if t <= 0 {
		t = DefaultThreads()
	}
	p := &pool{
		t:     t,
		start: make([]chan struct{}, t-1),
		done:  make(chan struct{}, t-1),
		quit:  make(chan struct{}),
	}
	for w := range p.start {
		p.start[w] = make(chan struct{})
		go p.worker(w + 1)
	}
	wrapper := &Pool{pool: p}
	runtime.AddCleanup(wrapper, func(inner *pool) { inner.close() }, p)
	return wrapper
}

// Threads returns the pool's worker count.
func (p *pool) Threads() int { return p.t }

// Close releases the worker goroutines. The pool must not be used after.
func (p *pool) Close() { p.close() }

func (p *pool) close() {
	p.once.Do(func() { close(p.quit) })
}

func (p *pool) worker(tid int) {
	for {
		select {
		case <-p.quit:
			return
		case <-p.start[tid-1]:
		}
		switch p.mode {
		case modeRanges:
			if (p.stop == nil || !p.stop.Load()) && !p.pan.tripped() {
				lo, hi := staticRange(tid, p.n, p.tEff)
				p.guard(func() { p.bodyR(tid, lo, hi) })
			}
		case modeFor:
			p.guard(p.runChunks)
		}
		p.done <- struct{}{}
	}
}

// guard runs one worker's share of a region, recovering any panic into
// the region's panic slot. The worker still reaches the barrier, so a
// panicking body can never wedge the pool; the dispatcher rethrows the
// panic on its own goroutine after the barrier completes.
func (p *pool) guard(f func()) {
	defer p.pan.capture()
	f()
}

// staticRange returns worker tid's contiguous share of [0, n) split into t
// nearly equal ranges (OpenMP schedule(static)).
func staticRange(tid, n, t int) (lo, hi int) {
	size := n / t
	rem := n % t
	lo = tid*size + min(tid, rem)
	hi = lo + size
	if tid < rem {
		hi++
	}
	return lo, hi
}

// dispatch wakes t−1 workers, runs the caller's own share via self, and
// waits on the barrier. t is the effective worker count for this region.
func (p *pool) dispatch(t int, self func()) {
	for w := 1; w < t; w++ {
		p.start[w-1] <- struct{}{}
	}
	self()
	for w := 1; w < t; w++ {
		<-p.done
	}
}

// ForRanges runs body(tid, lo, hi) over a static partition of [0, n) into
// min(t, n) contiguous ranges, reusing the pool's workers. It is the
// persistent-team replacement for the free function ForRanges.
func (p *pool) ForRanges(n int, body func(tid, lo, hi int)) {
	p.ForRangesCancel(p.t, n, nil, body)
}

// ForRangesCancel is ForRanges restricted to min(t, pool size) workers,
// with an optional cancellation flag: when stop is non-nil and set, the
// fan-out is abandoned — workers that have not started their share skip
// it entirely and the barrier completes immediately. This is how a
// canceled skyline query stops paying for parallel regions it no longer
// needs; bodies themselves are responsible for intra-range checkpoints.
func (p *pool) ForRangesCancel(t, n int, stop *atomic.Bool, body func(tid, lo, hi int)) {
	if n <= 0 {
		return
	}
	if t <= 0 || t > p.t {
		t = p.t
	}
	if t > n {
		t = n
	}
	if t == 1 {
		if stop == nil || !stop.Load() {
			body(0, 0, n)
		}
		return
	}
	p.mu.Lock()
	p.mode = modeRanges
	p.bodyR = body
	p.n = n
	p.tEff = t
	p.stop = stop
	p.dispatch(t, func() {
		if stop == nil || !stop.Load() {
			lo, hi := staticRange(0, n, t)
			p.guard(func() { body(0, lo, hi) })
		}
	})
	p.bodyR = nil
	p.stop = nil
	wp := p.pan.p.Swap(nil)
	p.mu.Unlock()
	if wp != nil {
		panic(wp)
	}
}

// For runs body(i) for every i in [0, n) with dynamic chunked scheduling
// over the pool's workers (OpenMP schedule(dynamic)).
func (p *pool) For(n int, body func(i int)) {
	p.ForChunkedCancel(p.t, n, 0, nil, body)
}

// ForChunked is For with an explicit chunk size (0 picks a heuristic).
func (p *pool) ForChunked(n, chunk int, body func(i int)) {
	p.ForChunkedCancel(p.t, n, chunk, nil, body)
}

// ForChunkedCancel is ForChunked restricted to min(t, pool size) workers
// with an optional cancellation flag, checked between chunks.
func (p *pool) ForChunkedCancel(t, n, chunk int, stop *atomic.Bool, body func(i int)) {
	if n <= 0 {
		return
	}
	if t <= 0 || t > p.t {
		t = p.t
	}
	if t > n {
		t = n
	}
	if t == 1 {
		for i := 0; i < n; i++ {
			if stop != nil && stop.Load() {
				return
			}
			body(i)
		}
		return
	}
	if chunk <= 0 {
		chunk = n / (t * 8)
		if chunk < 1 {
			chunk = 1
		}
		if chunk > 1024 {
			chunk = 1024
		}
	}
	p.mu.Lock()
	p.mode = modeFor
	p.bodyI = body
	p.n = n
	p.chunk = int64(chunk)
	p.stop = stop
	p.cursor.Store(0)
	p.dispatch(t, func() { p.guard(p.runChunks) })
	p.bodyI = nil
	p.stop = nil
	wp := p.pan.p.Swap(nil)
	p.mu.Unlock()
	if wp != nil {
		panic(wp)
	}
}

// runChunks claims dynamic chunks until the shared cursor passes n, the
// region's stop flag is raised, or another worker panicked.
func (p *pool) runChunks() {
	n, chunk, body, stop := p.n, p.chunk, p.bodyI, p.stop
	for {
		if stop != nil && stop.Load() {
			return
		}
		if p.pan.tripped() {
			return
		}
		lo := int(p.cursor.Add(chunk)) - int(chunk)
		if lo >= n {
			return
		}
		hi := lo + int(chunk)
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			body(i)
		}
	}
}
