package par

import (
	"sync/atomic"
	"testing"
)

// TestPoolForRangesCoversRange checks that repeated fan-outs over one pool
// partition the index space exactly (every index once, correct tids).
func TestPoolForRangesCoversRange(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 8} {
		p := NewPool(threads)
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			seen := make([]int32, n)
			p.ForRanges(n, func(tid, lo, hi int) {
				if tid < 0 || tid >= threads {
					t.Errorf("threads=%d: bad tid %d", threads, tid)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("threads=%d n=%d: index %d visited %d times", threads, n, i, c)
				}
			}
		}
		p.Close()
	}
}

// TestPoolForCoversRange checks the dynamic scheduler the same way.
func TestPoolForCoversRange(t *testing.T) {
	for _, threads := range []int{1, 2, 4} {
		p := NewPool(threads)
		for _, n := range []int{0, 1, 13, 500} {
			seen := make([]int32, n)
			p.For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("threads=%d n=%d: index %d visited %d times", threads, n, i, c)
				}
			}
		}
		p.Close()
	}
}

// TestPoolReuse hammers one pool with many regions back to back — the
// reuse pattern Hybrid's per-block fan-outs produce — and validates a sum
// each round. Run with -race this also proves the barrier establishes
// happens-before between regions.
func TestPoolReuse(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 257
	data := make([]int, n)
	for round := 0; round < 500; round++ {
		p.ForRanges(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				data[i] = round + i
			}
		})
		// Read on the dispatcher side without synchronization other than
		// the pool barrier.
		sum := 0
		for _, v := range data {
			sum += v
		}
		want := round*n + n*(n-1)/2
		if sum != want {
			t.Fatalf("round %d: sum=%d want %d", round, sum, want)
		}
	}
}

// TestPoolAllocFree asserts the steady-state dispatch path performs no
// allocations when the body closure is pre-bound (as the core Context
// does).
func TestPoolAllocFree(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	body := func(tid, lo, hi int) { sink.Add(int64(hi - lo)) }
	p.ForRanges(100, body) // warm up
	allocs := testing.AllocsPerRun(100, func() {
		p.ForRanges(100, body)
	})
	if allocs != 0 {
		t.Errorf("pool dispatch allocates %.1f per region, want 0", allocs)
	}
}

func TestStaticRange(t *testing.T) {
	for _, tc := range []struct{ n, t int }{{10, 3}, {7, 7}, {100, 8}, {5, 1}} {
		prev := 0
		for tid := 0; tid < tc.t; tid++ {
			lo, hi := staticRange(tid, tc.n, tc.t)
			if lo != prev {
				t.Fatalf("n=%d t=%d tid=%d: lo=%d want %d", tc.n, tc.t, tid, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d t=%d tid=%d: hi=%d < lo=%d", tc.n, tc.t, tid, hi, lo)
			}
			prev = hi
		}
		if prev != tc.n {
			t.Fatalf("n=%d t=%d: ranges end at %d", tc.n, tc.t, prev)
		}
	}
}
